#!/usr/bin/env bash
# bench.sh — benchmark-regression snapshot.
#
# Runs the hot-path microbenchmarks and the end-to-end figure macrobenchmark,
# then writes a dated JSON artifact (bench/BENCH_<date>.json) via
# scripts/benchjson. Commit the artifact to give future PRs a perf
# trajectory; compare two snapshots with e.g.
#
#   jq -s '[.[0].results, .[1].results]' bench/BENCH_A.json bench/BENCH_B.json
#
# Environment knobs:
#   BENCH_DATE        stamp to use instead of today       (default: date +%F)
#   BENCH_COUNT       -count for the microbenchmarks      (default: 1)
#   BENCH_TIME        -benchtime for the microbenchmarks  (default: 1s)
#   BENCH_MACRO_TIME  -benchtime for the macrobenchmark   (default: 1x)
set -euo pipefail
cd "$(dirname "$0")/.."

date_stamp=${BENCH_DATE:-$(date +%F)}
out="bench/BENCH_${date_stamp}.json"
mkdir -p bench

micro='BenchmarkLMDist$|BenchmarkBeamSearch$|BenchmarkSelect$|BenchmarkVerifyTree$|BenchmarkCostModel$|BenchmarkEngineIteration$'
macro='BenchmarkFigure8and9Llama$|BenchmarkFigureGrid$|BenchmarkAutoscaleGrid$|BenchmarkFaultGrid$|BenchmarkPrefixGrid$|BenchmarkTraceGrid$|BenchmarkObsOverhead$'

{
  go test -run '^$' -bench "$micro" -benchmem \
    -count "${BENCH_COUNT:-1}" -benchtime "${BENCH_TIME:-1s}" .
  go test -run '^$' -bench "$macro" -benchtime "${BENCH_MACRO_TIME:-1x}" .
} | tee /dev/stderr | go run ./scripts/benchjson -date "$date_stamp" > "$out"

echo "wrote $out" >&2
