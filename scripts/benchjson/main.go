// benchjson converts `go test -bench` output on stdin into a stable JSON
// artifact for benchmark-regression tracking (see scripts/bench.sh).
//
// Each benchmark line like
//
//	BenchmarkLMDist-8   1000000   27.4 ns/op   0 B/op   0 allocs/op   97.2 attain%
//
// becomes one result object keyed by the benchmark name (CPU-count suffix
// stripped) with ns/op, B/op, allocs/op and any custom metrics. Environment
// lines (goos/goarch/pkg/cpu) are captured once.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the full benchmark snapshot written to BENCH_<date>.json.
type Artifact struct {
	Date      string            `json:"date"`
	GoVersion string            `json:"go_version"`
	Env       map[string]string `json:"env,omitempty"`
	Results   []Result          `json:"results"`
}

func main() {
	date := flag.String("date", "", "date stamp recorded in the artifact (e.g. 2026-07-27)")
	flag.Parse()

	art := Artifact{
		Date:      *date,
		GoVersion: runtime.Version(),
		Env:       map[string]string{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				art.Env[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			art.Results = append(art.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line into a Result.
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Result{}, false
	}
	name := f[0]
	// Strip the -<GOMAXPROCS> suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsOp = v
		default:
			r.Metrics[unit] = v
		}
	}
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	return r, true
}
