package main

import (
	"strings"
	"testing"
)

// TestRunValidation is the CLI validation table: invalid invocations that
// used to print an empty CSV (or nothing at all) now fail with a one-line
// error, and valid ones emit the CSV header plus at least one bin row.
func TestRunValidation(t *testing.T) {
	cases := []struct {
		name     string
		kind     string
		rps      float64
		duration float64
		bin      float64
		args     []string
		wantErr  string
		wantHdr  string
	}{
		{name: "real ok", kind: "real", rps: 4, duration: 120, bin: 30, wantHdr: "time_s,requests"},
		{name: "synthetic ok", kind: "synthetic", rps: 4, duration: 120, bin: 30, wantHdr: "time_s,coding,chat,summarization"},
		{name: "unknown kind", kind: "bogus", rps: 4, duration: 120, bin: 30, wantErr: "unknown trace kind"},
		{name: "stray argument", kind: "real", rps: 4, duration: 120, bin: 30, args: []string{"real"}, wantErr: "unexpected argument"},
		{name: "zero rps", kind: "real", rps: 0, duration: 120, bin: 30, wantErr: "positive rate"},
		{name: "negative duration", kind: "real", rps: 4, duration: -1, bin: 30, wantErr: "positive duration"},
		{name: "zero bin", kind: "real", rps: 4, duration: 120, bin: 0, wantErr: "bin width"},
		{name: "bin wider than trace", kind: "real", rps: 4, duration: 120, bin: 600, wantErr: "bin width"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out strings.Builder
			err := run(&out, c.kind, c.rps, c.duration, c.bin, 1, c.args)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error = %v, want one containing %q", err, c.wantErr)
				}
				if out.Len() != 0 {
					t.Fatalf("invalid invocation still wrote output:\n%s", out.String())
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			got := out.String()
			if !strings.Contains(got, c.wantHdr) {
				t.Fatalf("output missing header %q:\n%s", c.wantHdr, got)
			}
			if strings.Count(got, "\n") < 3 {
				t.Fatalf("output has no bin rows:\n%s", got)
			}
		})
	}
}
