package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaserve/internal/trace"
)

// TestRunValidation is the CLI validation table: invalid invocations that
// used to print an empty CSV (or nothing at all) now fail with a one-line
// error, and valid ones emit the CSV header plus at least one bin row.
func TestRunValidation(t *testing.T) {
	cases := []struct {
		name     string
		kind     string
		rps      float64
		duration float64
		bin      float64
		args     []string
		wantErr  string
		wantHdr  string
	}{
		{name: "real ok", kind: "real", rps: 4, duration: 120, bin: 30, wantHdr: "time_s,requests"},
		{name: "synthetic ok", kind: "synthetic", rps: 4, duration: 120, bin: 30, wantHdr: "time_s,coding,chat,summarization"},
		{name: "unknown kind", kind: "bogus", rps: 4, duration: 120, bin: 30, wantErr: "unknown trace kind"},
		{name: "stray argument", kind: "real", rps: 4, duration: 120, bin: 30, args: []string{"real"}, wantErr: "unexpected argument"},
		{name: "zero rps", kind: "real", rps: 0, duration: 120, bin: 30, wantErr: "positive rate"},
		{name: "negative duration", kind: "real", rps: 4, duration: -1, bin: 30, wantErr: "positive duration"},
		{name: "zero bin", kind: "real", rps: 4, duration: 120, bin: 0, wantErr: "bin width"},
		{name: "bin wider than trace", kind: "real", rps: 4, duration: 120, bin: 600, wantErr: "bin width"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out strings.Builder
			err := run(&out, c.kind, c.rps, c.duration, c.bin, 1, c.args)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error = %v, want one containing %q", err, c.wantErr)
				}
				if out.Len() != 0 {
					t.Fatalf("invalid invocation still wrote output:\n%s", out.String())
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			got := out.String()
			if !strings.Contains(got, c.wantHdr) {
				t.Fatalf("output missing header %q:\n%s", c.wantHdr, got)
			}
			if strings.Count(got, "\n") < 3 {
				t.Fatalf("output has no bin rows:\n%s", got)
			}
		})
	}
}

// writeFile drops content into a temp file and returns its path.
func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testSpec = `#adaserve-spec v1
#meta seed 3
#meta duration 12
#meta name tiny
cohort a class=chat rate=2 arrival=poisson prompt=fixed:32 output=fixed:32
`

// TestDispatchErrors is the subcommand validation table: unknown
// subcommands, malformed or missing files, and format-version mismatches
// all fail with a one-line error (main turns these into a non-zero exit).
func TestDispatchErrors(t *testing.T) {
	dir := t.TempDir()
	badSpec := writeFile(t, dir, "bad.spec", "#adaserve-spec v1\n#meta duration 5\ncohort a class=chat arrival=poisson prompt=fixed:1 output=fixed:1\n")
	v2Spec := writeFile(t, dir, "v2.spec", "#adaserve-spec v2\n")
	v2Trace := writeFile(t, dir, "v2.trace", "#adaserve-trace v2\n")
	notTrace := writeFile(t, dir, "not.trace", "time_s,requests\n0,3\n")
	cases := []struct {
		name    string
		cmd     string
		args    []string
		wantErr string
	}{
		{"unknown subcommand", "replay", nil, "unknown subcommand"},
		{"gen without spec", "gen", nil, "needs -spec"},
		{"gen missing file", "gen", []string{"-spec", filepath.Join(dir, "nope.spec")}, "no such file"},
		{"gen bad spec", "gen", []string{"-spec", badSpec}, "needs rate="},
		{"gen spec version mismatch", "gen", []string{"-spec", v2Spec}, "unsupported spec format version 2"},
		{"gen unknown model", "gen", []string{"-spec", v2Spec, "-model", "gpt"}, "unknown model"},
		{"gen stray argument", "gen", []string{"-spec", v2Spec, "extra"}, "unexpected argument"},
		{"stats without file", "stats", nil, "exactly one trace file"},
		{"stats missing file", "stats", []string{filepath.Join(dir, "nope.trace")}, "no such file"},
		{"stats version mismatch", "stats", []string{v2Trace}, "unsupported trace format version 2"},
		{"stats not a trace", "stats", []string{notTrace}, "not a trace file"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out strings.Builder
			err := dispatch(&out, c.cmd, c.args)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("dispatch error = %v, want one containing %q", err, c.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("error is not one line: %q", err)
			}
		})
	}
}

// TestGenStats pins the gen → stats loop: a spec compiles to a canonical
// trace file, deterministically per seed, and stats reads it back.
func TestGenStats(t *testing.T) {
	dir := t.TempDir()
	spec := writeFile(t, dir, "tiny.spec", testSpec)
	out := filepath.Join(dir, "tiny.trace")

	var w strings.Builder
	if err := dispatch(&w, "gen", []string{"-spec", spec, "-o", out}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.String(), "wrote "+out) {
		t.Fatalf("gen summary: %q", w.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Parse(string(data))
	if err != nil {
		t.Fatalf("gen output does not parse: %v", err)
	}
	if tr.Format() != string(data) {
		t.Fatal("gen output not canonical")
	}
	if tr.Header.Source != "spec:tiny" || tr.Header.Seed != 3 || len(tr.Arrivals) == 0 {
		t.Fatalf("gen output header/body: %+v", tr.Header)
	}

	// Stdout mode (no -o) emits the identical trace text.
	var direct strings.Builder
	if err := dispatch(&direct, "gen", []string{"-spec", spec}); err != nil {
		t.Fatal(err)
	}
	if direct.String() != string(data) {
		t.Fatal("gen -o and stdout outputs differ")
	}

	// A seed override changes the trace and is recorded in the header.
	var reseeded strings.Builder
	if err := dispatch(&reseeded, "gen", []string{"-spec", spec, "-seed", "99"}); err != nil {
		t.Fatal(err)
	}
	if reseeded.String() == string(data) {
		t.Fatal("seed override produced identical trace")
	}

	// The qwen setup resolves too; the coding class's TPOT SLO scales with
	// the baseline decode latency, so the two setups compile different
	// headers from the same spec.
	coding := writeFile(t, dir, "coding.spec",
		"#adaserve-spec v1\n#meta seed 3\n#meta duration 12\ncohort a class=coding rate=2 arrival=poisson prompt=fixed:32 output=fixed:32\n")
	var llamaOut, qwenOut strings.Builder
	if err := dispatch(&llamaOut, "gen", []string{"-spec", coding}); err != nil {
		t.Fatal(err)
	}
	if err := dispatch(&qwenOut, "gen", []string{"-spec", coding, "-model", "qwen"}); err != nil {
		t.Fatal(err)
	}
	if qwenOut.String() == llamaOut.String() {
		t.Fatal("qwen and llama setups compiled identical traces")
	}

	var stats strings.Builder
	if err := dispatch(&stats, "stats", []string{out}); err != nil {
		t.Fatal(err)
	}
	got := stats.String()
	for _, want := range []string{"format:   v1 (s)", "seed:     3", "source:   spec:tiny", "chat"} {
		if !strings.Contains(got, want) {
			t.Fatalf("stats output missing %q:\n%s", want, got)
		}
	}
}
