// adaserve-trace generates and inspects the simulator's workload traces.
//
// Subcommands:
//
//	adaserve-trace gen -spec bursty.spec [-o out.trace] [-seed N] [-duration S] [-model llama]
//	    compile a declarative workload spec into a trace file (format v1);
//	    deterministic per seed.
//	adaserve-trace stats file.trace
//	    print a trace's header, per-class arrival counts and length/rate
//	    summary.
//
// Invoked with flags only (no subcommand), it keeps the original shape
// synthesis: per-bin arrival counts of the Figure 7 real-world shape or
// the Figure 13 synthetic per-category trace, as CSV for plotting. Invalid
// invocations — an unknown subcommand, a malformed spec or trace file, a
// format-version mismatch, or a non-positive rate, duration or bin width —
// exit non-zero with a one-line error.
//
// Usage:
//
//	adaserve-trace gen -spec internal/experiments/testdata/specs/bursty.spec -o bursty.trace
//	adaserve-trace stats bursty.trace
//	adaserve-trace -kind real -rps 4.0 -duration 1200 -bin 30
//	adaserve-trace -kind synthetic -duration 360
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"adaserve/internal/experiments"
	"adaserve/internal/mathutil"
	"adaserve/internal/trace"
	"adaserve/internal/workload"
)

func main() {
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		if err := dispatch(os.Stdout, os.Args[1], os.Args[2:]); err != nil {
			log.Fatal(err)
		}
		return
	}

	kind := flag.String("kind", "real", "trace kind: real (Fig. 7) or synthetic (Fig. 13)")
	rps := flag.Float64("rps", 4.0, "mean request rate (real) / peak rate (synthetic)")
	duration := flag.Float64("duration", 1200, "trace duration in seconds")
	bin := flag.Float64("bin", 30, "histogram bin width in seconds")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if err := run(os.Stdout, *kind, *rps, *duration, *bin, *seed, flag.Args()); err != nil {
		log.Fatal(err)
	}
}

// dispatch routes a subcommand invocation. It is the whole CLI behind
// argument splitting, so subcommand behavior is testable without spawning
// a process.
func dispatch(w io.Writer, cmd string, args []string) error {
	switch cmd {
	case "gen":
		return runGen(w, args)
	case "stats":
		return runStats(w, args)
	}
	return fmt.Errorf("unknown subcommand %q (gen, stats; or flags only for shape synthesis)", cmd)
}

// resolveModel maps the -model flag to an experiment setup, matching
// adaserve-sim's naming.
func resolveModel(name string) (experiments.ModelSetup, error) {
	switch name {
	case "llama":
		return experiments.Llama70B(), nil
	case "qwen":
		return experiments.Qwen32B(), nil
	}
	return experiments.ModelSetup{}, fmt.Errorf("unknown model %q (llama, qwen)", name)
}

// runGen compiles a workload spec into a trace file.
func runGen(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	specPath := fs.String("spec", "", "workload spec file to compile (required)")
	out := fs.String("o", "", "output trace file (default: stdout)")
	seed := fs.Uint64("seed", 0, "compilation seed (0: the spec's)")
	duration := fs.Float64("duration", 0, "trace duration in seconds (0: the spec's)")
	model := fs.String("model", "llama", "model setup resolving class SLOs: llama or qwen")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (gen takes only flags: -spec, -o, -seed, -duration, -model)", fs.Arg(0))
	}
	if *specPath == "" {
		return fmt.Errorf("gen needs -spec <file>")
	}
	setup, err := resolveModel(*model)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	spec, err := trace.ParseSpec(string(data))
	if err != nil {
		return fmt.Errorf("%s: %w", *specPath, err)
	}
	tr, err := trace.Compile(spec, trace.CompileOptions{
		BaselineLatency: setup.BaselineLatency(),
		Duration:        *duration,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}
	if *out == "" {
		_, err := io.WriteString(w, tr.Format())
		return err
	}
	if err := os.WriteFile(*out, []byte(tr.Format()), 0o644); err != nil {
		return err
	}
	st := tr.Stats()
	fmt.Fprintf(w, "wrote %s: %d arrivals over %.1fs (mean %.2f rps)\n",
		*out, st.Arrivals, tr.Duration(), st.MeanRPS)
	return nil
}

// runStats prints a trace file's header and summary.
func runStats(w io.Writer, args []string) error {
	if len(args) != 1 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("stats wants exactly one trace file argument")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	tr, err := trace.Parse(string(data))
	if err != nil {
		return fmt.Errorf("%s: %w", args[0], err)
	}
	h := tr.Header
	fmt.Fprintf(w, "format:   v%d (%s)\n", h.Version, h.TimeUnit)
	fmt.Fprintf(w, "seed:     %d\n", h.Seed)
	if h.Source != "" {
		fmt.Fprintf(w, "source:   %s\n", h.Source)
	}
	st := tr.Stats()
	fmt.Fprintf(w, "arrivals: %d over %.1fs (mean %.2f rps)\n", st.Arrivals, tr.Duration(), st.MeanRPS)
	fmt.Fprintf(w, "lengths:  mean prompt %.0f, mean output %.0f tokens\n", st.MeanPrompt, st.MeanOutput)
	for i, c := range h.Classes {
		fmt.Fprintf(w, "class %d:  %s tpot=%gs ttft=%gs — %d arrivals\n",
			c.ID, c.Name, c.TPOT, c.TTFT, st.PerClass[i])
	}
	return nil
}

// run validates the legacy flag set and writes the requested shape CSV. It
// is the flags-only CLI behind flag parsing, so the validation table is
// testable without spawning a process.
func run(w io.Writer, kind string, rps, duration, bin float64, seed uint64, args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("unexpected argument %q (adaserve-trace takes only flags: -kind, -rps, -duration, -bin, -seed)", args[0])
	}
	if rps <= 0 {
		return fmt.Errorf("-rps %g: need a positive rate", rps)
	}
	if duration <= 0 {
		return fmt.Errorf("-duration %g: need a positive duration", duration)
	}
	if bin <= 0 || bin > duration {
		return fmt.Errorf("-bin %g: need a bin width in (0, duration]", bin)
	}

	rng := mathutil.NewRNG(seed)
	switch kind {
	case "real":
		ts := workload.RealTrace(rng, rps, duration)
		fmt.Fprintf(w, "# real trace: %d arrivals, mean %.2f rps\n",
			len(ts), float64(len(ts))/duration)
		fmt.Fprintln(w, "time_s,requests")
		for i, c := range workload.BinCounts(ts, duration, bin) {
			fmt.Fprintf(w, "%.0f,%d\n", float64(i)*bin, c)
		}
	case "synthetic":
		perCat := workload.SyntheticCategoryTrace(rng, rps, duration)
		names := []string{"coding", "chat", "summarization"}
		fmt.Fprintln(w, "time_s,coding,chat,summarization")
		bins := make([][]int, len(perCat))
		for i, ts := range perCat {
			bins[i] = workload.BinCounts(ts, duration, bin)
		}
		for j := range bins[0] {
			fmt.Fprintf(w, "%.0f", float64(j)*bin)
			for i := range bins {
				fmt.Fprintf(w, ",%d", bins[i][j])
			}
			fmt.Fprintln(w)
		}
		for i, ts := range perCat {
			fmt.Fprintf(w, "# %s: %d arrivals\n", names[i], len(ts))
		}
	default:
		return fmt.Errorf("unknown trace kind %q (real, synthetic)", kind)
	}
	return nil
}
