// adaserve-trace synthesizes and inspects the evaluation's arrival traces:
// the Figure 7 real-world shape and the Figure 13 synthetic per-category
// trace. It prints per-bin counts as CSV for plotting.
//
// Usage:
//
//	adaserve-trace -kind real -rps 4.0 -duration 1200 -bin 30
//	adaserve-trace -kind synthetic -duration 360
package main

import (
	"flag"
	"fmt"
	"log"

	"adaserve/internal/mathutil"
	"adaserve/internal/workload"
)

func main() {
	kind := flag.String("kind", "real", "trace kind: real (Fig. 7) or synthetic (Fig. 13)")
	rps := flag.Float64("rps", 4.0, "mean request rate (real) / peak rate (synthetic)")
	duration := flag.Float64("duration", 1200, "trace duration in seconds")
	bin := flag.Float64("bin", 30, "histogram bin width in seconds")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	rng := mathutil.NewRNG(*seed)
	switch *kind {
	case "real":
		ts := workload.RealTrace(rng, *rps, *duration)
		fmt.Printf("# real trace: %d arrivals, mean %.2f rps\n",
			len(ts), float64(len(ts))/(*duration))
		fmt.Println("time_s,requests")
		for i, c := range workload.BinCounts(ts, *duration, *bin) {
			fmt.Printf("%.0f,%d\n", float64(i)*(*bin), c)
		}
	case "synthetic":
		perCat := workload.SyntheticCategoryTrace(rng, *rps, *duration)
		names := []string{"coding", "chat", "summarization"}
		fmt.Println("time_s,coding,chat,summarization")
		bins := make([][]int, len(perCat))
		for i, ts := range perCat {
			bins[i] = workload.BinCounts(ts, *duration, *bin)
		}
		for j := range bins[0] {
			fmt.Printf("%.0f", float64(j)*(*bin))
			for i := range bins {
				fmt.Printf(",%d", bins[i][j])
			}
			fmt.Println()
		}
		for i, ts := range perCat {
			fmt.Printf("# %s: %d arrivals\n", names[i], len(ts))
		}
	default:
		log.Fatalf("unknown trace kind %q", *kind)
	}
}
