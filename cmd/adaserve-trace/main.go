// adaserve-trace synthesizes and inspects the evaluation's arrival traces:
// the Figure 7 real-world shape and the Figure 13 synthetic per-category
// trace. It prints per-bin counts as CSV for plotting. Invalid invocations
// — an unknown kind, stray positional arguments, or a non-positive rate,
// duration or bin width (which would silently produce an empty CSV) — exit
// non-zero with a one-line error.
//
// Usage:
//
//	adaserve-trace -kind real -rps 4.0 -duration 1200 -bin 30
//	adaserve-trace -kind synthetic -duration 360
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"adaserve/internal/mathutil"
	"adaserve/internal/workload"
)

func main() {
	kind := flag.String("kind", "real", "trace kind: real (Fig. 7) or synthetic (Fig. 13)")
	rps := flag.Float64("rps", 4.0, "mean request rate (real) / peak rate (synthetic)")
	duration := flag.Float64("duration", 1200, "trace duration in seconds")
	bin := flag.Float64("bin", 30, "histogram bin width in seconds")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if err := run(os.Stdout, *kind, *rps, *duration, *bin, *seed, flag.Args()); err != nil {
		log.Fatal(err)
	}
}

// run validates the flag set and writes the requested trace CSV. It is the
// whole CLI behind flag parsing, so the validation table is testable without
// spawning a process.
func run(w io.Writer, kind string, rps, duration, bin float64, seed uint64, args []string) error {
	if len(args) > 0 {
		return fmt.Errorf("unexpected argument %q (adaserve-trace takes only flags: -kind, -rps, -duration, -bin, -seed)", args[0])
	}
	if rps <= 0 {
		return fmt.Errorf("-rps %g: need a positive rate", rps)
	}
	if duration <= 0 {
		return fmt.Errorf("-duration %g: need a positive duration", duration)
	}
	if bin <= 0 || bin > duration {
		return fmt.Errorf("-bin %g: need a bin width in (0, duration]", bin)
	}

	rng := mathutil.NewRNG(seed)
	switch kind {
	case "real":
		ts := workload.RealTrace(rng, rps, duration)
		fmt.Fprintf(w, "# real trace: %d arrivals, mean %.2f rps\n",
			len(ts), float64(len(ts))/duration)
		fmt.Fprintln(w, "time_s,requests")
		for i, c := range workload.BinCounts(ts, duration, bin) {
			fmt.Fprintf(w, "%.0f,%d\n", float64(i)*bin, c)
		}
	case "synthetic":
		perCat := workload.SyntheticCategoryTrace(rng, rps, duration)
		names := []string{"coding", "chat", "summarization"}
		fmt.Fprintln(w, "time_s,coding,chat,summarization")
		bins := make([][]int, len(perCat))
		for i, ts := range perCat {
			bins[i] = workload.BinCounts(ts, duration, bin)
		}
		for j := range bins[0] {
			fmt.Fprintf(w, "%.0f", float64(j)*bin)
			for i := range bins {
				fmt.Fprintf(w, ",%d", bins[i][j])
			}
			fmt.Fprintln(w)
		}
		for i, ts := range perCat {
			fmt.Fprintf(w, "# %s: %d arrivals\n", names[i], len(ts))
		}
	default:
		return fmt.Errorf("unknown trace kind %q (real, synthetic)", kind)
	}
	return nil
}
