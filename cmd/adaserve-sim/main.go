// adaserve-sim runs one serving configuration over one synthesized workload
// and dumps the full metric summary — the single-run counterpart of
// adaserve-bench's sweeps. Every run goes through the unified event-driven
// driver (internal/serve); unknown flag values fail fast with a one-line
// error.
//
// By default the workload is a closed trace replay (the paper's bursty
// real-world shape). With -rate-profile the run is open-loop instead:
// arrivals are synthesized on the fly from a time-varying Poisson process
// (constant, ramp, spike, diurnal), so the trace is never materialized.
// With -live the run streams periodic snapshots — windowed attainment and
// goodput per SLO class — plus SLO-violation events as they become certain.
//
// With -replicas > 1 it runs a multi-replica cluster instead: N independent
// copies of the system behind the chosen router policy, fed from one global
// arrival stream, reporting cluster-aggregate and per-replica metrics. In
// cluster mode -rps is the per-replica rate (the workload carries
// rps × replicas requests per second).
//
// With -roles the cluster is disaggregated: "-roles 2P2D" runs two dedicated
// prefill replicas and two dedicated decode replicas, migrating each request
// at prefill completion over the modeled interconnect. -roles implies the
// replica count; setting -replicas to a contradictory value is an error.
//
// With -autoscale the fleet is elastic: -replicas/-roles define the capacity
// fleet, the run starts at one active replica per role pool, and the chosen
// policy (target-queue, rate-prop, slo-feedback) scales within the capacity
// — provisioning cold starts, drain migrations and all. -live then also
// shows the fleet size and every scale event.
//
// With -adaptive a closed-loop controller retunes AdaServe's speculation
// envelope (depth/width ceilings) from rolling acceptance and windowed SLO
// attainment; with -admission an overload gate degrades or rejects arrivals
// the saturated fleet provably cannot serve. The two compose (the full
// closed loop) and -live streams every degrade/reject decision.
//
// With -prefix the run replays the multi-turn session workload (per-tenant
// shared system prompts, each follow-up turn re-sending the full prior
// conversation, submitted closed-loop as turns finish) with shared-prefix KV
// caching enabled: admitted requests skip prefill for any prompt prefix whose
// blocks are already resident, and cold blocks spill to a host offload tier
// sized by -prefix-tier (reloads pay the modeled interconnect). -live then
// also streams [pfx] hit/evict/reload lines.
//
// With -trace the run replays a recorded trace file (format v1, see
// internal/trace) as its arrival stream; with -spec it first compiles a
// declarative workload spec into such a trace (deterministic per -seed, with
// -duration overriding the spec's when set). With -export any run records
// its admitted arrival stream to a trace file afterward, closing the loop:
// an open-loop run exported once replays identically forever. -trace, -spec,
// -rate-profile and -prefix each pick the workload source, so at most one
// may be set; trace replay ignores -rps and -urgent (the file carries the
// arrivals).
//
// With -faults the run replays a deterministic failure schedule — replica
// crashes, stragglers, KV-transfer link faults, or a Poisson crash hazard —
// and -recovery picks the response: none, retry (timeout detection, budgeted
// re-dispatch with backoff, failover), or retry+hedge (plus duplicate
// dispatches for TTFT-at-risk requests on suspect replicas). Cluster mode
// only; -live then also streams every crash, recovery, retry and hedge.
//
// Usage:
//
//	adaserve-sim -system AdaServe -model llama -rps 3.8 -duration 120
//	adaserve-sim -system "vLLM-Spec (6)" -urgent 0.7 -slo-scale 0.8
//	adaserve-sim -rate-profile spike -live
//	adaserve-sim -replicas 4 -router slo-aware -live
//	adaserve-sim -roles 2P2D -router least-loaded
//	adaserve-sim -replicas 4 -autoscale rate-prop -rate-profile diurnal -live
//	adaserve-sim -replicas 2 -adaptive -admission -rate-profile spike -live
//	adaserve-sim -replicas 4 -faults "crash@30+10:r0" -recovery retry+hedge -live
//	adaserve-sim -replicas 3 -router prefix-affinity -prefix -live
//	adaserve-sim -spec internal/experiments/testdata/specs/bursty.spec -replicas 2 -admission
//	adaserve-sim -trace recorded.trace -replicas 2 -live
//	adaserve-sim -rate-profile spike -export spike.trace
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"adaserve/internal/adaptive"
	"adaserve/internal/autoscale"
	"adaserve/internal/cluster"
	"adaserve/internal/experiments"
	"adaserve/internal/faults"
	"adaserve/internal/kvcache"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/obs"
	"adaserve/internal/request"
	"adaserve/internal/sched"
	"adaserve/internal/serve"
	"adaserve/internal/trace"
	"adaserve/internal/workload"
)

// resolveFleet validates the -replicas/-roles pair and returns the fleet
// layout: the role list (nil for a colocated fleet) and the replica count.
// -roles implies the count; an explicitly set -replicas that contradicts it
// is rejected rather than silently overridden.
func resolveFleet(replicas int, replicasSet bool, rolesSpec string) ([]cluster.Role, int, error) {
	if replicas < 1 {
		return nil, 0, fmt.Errorf("-replicas %d: need at least 1", replicas)
	}
	if rolesSpec == "" {
		return nil, replicas, nil
	}
	roles, err := cluster.ParseSplit(rolesSpec)
	if err != nil {
		return nil, 0, err
	}
	if replicasSet && replicas != len(roles) {
		return nil, 0, fmt.Errorf("-replicas %d contradicts -roles %s (%d replicas); drop -replicas or make them agree",
			replicas, rolesSpec, len(roles))
	}
	return roles, len(roles), nil
}

// resolveAutoscale validates the -autoscale flag against the fleet size and
// returns the scaling policy (nil when autoscaling is off).
func resolveAutoscale(name string, replicas int) (autoscale.Policy, error) {
	if name == "" {
		return nil, nil
	}
	policy, err := autoscale.NewPolicy(name)
	if err != nil {
		return nil, err
	}
	if replicas < 2 {
		return nil, fmt.Errorf("-autoscale %s needs a capacity fleet: set -replicas > 1 or -roles", name)
	}
	return policy, nil
}

// resolveFaults validates the -faults/-recovery pair and returns the parsed
// fault schedule (empty when -faults is unset) and recovery mode. Both flags
// are validated unconditionally, so a typo fails fast even when the other
// flag would have made it moot.
func resolveFaults(spec, recovery string) (faults.Spec, faults.Recovery, error) {
	s, err := faults.ParseSpec(spec)
	if err != nil {
		return faults.Spec{}, 0, err
	}
	rec, err := faults.ParseRecovery(recovery)
	if err != nil {
		return faults.Spec{}, 0, err
	}
	return s, rec, nil
}

// resolveSource validates the workload-source flag combination: -trace,
// -spec, -rate-profile and -prefix each replace the default closed trace
// replay with their own arrival stream, so at most one may be set.
func resolveSource(tracePath, specPath, profile string, prefix bool) error {
	var set []string
	if tracePath != "" {
		set = append(set, "-trace")
	}
	if specPath != "" {
		set = append(set, "-spec")
	}
	if profile != "" {
		set = append(set, "-rate-profile")
	}
	if prefix {
		set = append(set, "-prefix")
	}
	if len(set) > 1 {
		return fmt.Errorf("%s each pick the workload source; set at most one", strings.Join(set, " and "))
	}
	return nil
}

// loadReplayTrace builds the replay trace behind -trace/-spec (exactly one
// path is non-empty): a trace file parses as-is, a spec file compiles against
// the model setup's class SLOs, with -duration overriding the spec's only
// when explicitly set and the run seed governing compilation.
func loadReplayTrace(tracePath, specPath string, setup experiments.ModelSetup,
	duration float64, durationSet bool, seed uint64) (*trace.Trace, error) {
	if tracePath != "" {
		data, err := os.ReadFile(tracePath)
		if err != nil {
			return nil, err
		}
		tr, err := trace.Parse(string(data))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", tracePath, err)
		}
		return tr, nil
	}
	data, err := os.ReadFile(specPath)
	if err != nil {
		return nil, err
	}
	spec, err := trace.ParseSpec(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", specPath, err)
	}
	if !durationSet {
		duration = 0 // keep the spec's
	}
	return trace.Compile(spec, trace.CompileOptions{
		BaselineLatency: setup.BaselineLatency(),
		Duration:        duration,
		Seed:            seed,
	})
}

// resolveAdaptive maps the -adaptive/-admission pair to a controller config:
// nil when both are off, tuning-only or admission-only when one is set, the
// full closed loop when both are. Timing follows the adaptive experiment's
// duration-proportional cadence.
func resolveAdaptive(tuning, admission bool, duration float64) *adaptive.Config {
	if !tuning && !admission {
		return nil
	}
	return &adaptive.Config{
		Interval:         experiments.AdaptiveInterval(duration),
		Window:           experiments.AutoscaleWindow(duration),
		DisableTuning:    !tuning,
		DisableAdmission: !admission,
	}
}

func main() {
	system := flag.String("system", "AdaServe", "serving system name (AdaServe, vLLM, Sarathi-Serve, vLLM-Spec (4|6|8), vLLM + Priority, FastServe, VTC, AdaServe (interleaved))")
	model := flag.String("model", "llama", "model setup: llama or qwen")
	rps := flag.Float64("rps", 3.8, "mean request rate (per replica in cluster mode)")
	duration := flag.Float64("duration", 120, "trace duration in seconds")
	urgent := flag.Float64("urgent", 0, "urgent-request proportion (0 = default 60/20/20 mix)")
	sloScale := flag.Float64("slo-scale", 1.0, "scale applied to the most urgent SLO")
	replicas := flag.Int("replicas", 1, "number of serving replicas (cluster mode when > 1)")
	router := flag.String("router", "slo-aware", "cluster router policy: round-robin, least-loaded, slo-aware, prefix-affinity")
	rolesFlag := flag.String("roles", "", "disaggregated role split, e.g. 2P2D (implies the replica count)")
	autoscaleFlag := flag.String("autoscale", "", "elastic-fleet scaling policy: target-queue, rate-prop, slo-feedback (empty: static fleet)")
	adaptiveFlag := flag.Bool("adaptive", false, "close the loop: retune the speculation envelope from rolling acceptance and attainment (AdaServe only)")
	admissionFlag := flag.Bool("admission", false, "arm the overload gate: degrade or reject arrivals a saturated fleet cannot serve")
	prefixFlag := flag.Bool("prefix", false, "enable shared-prefix KV caching and replay the closed-loop multi-turn session workload")
	prefixTier := flag.Int("prefix-tier", experiments.PrefixHostTier, "host offload tier size in KV blocks for -prefix (0: GPU-only, evicted prefixes are dropped)")
	faultsFlag := flag.String("faults", "", `fault schedule, e.g. "crash@30+10:r0; slow@60+20:x4; link@40+30:p0.3; hazard@0.01+10" (cluster mode only)`)
	recoveryFlag := flag.String("recovery", "retry", "fault recovery mode: none, retry, retry+hedge")
	profile := flag.String("rate-profile", "", "open-loop arrival shape: constant, ramp, spike, diurnal (empty: closed trace replay)")
	traceFlag := flag.String("trace", "", "replay a recorded trace file (format v1) as the arrival stream")
	specFlag := flag.String("spec", "", "compile a declarative workload spec into the arrival stream (deterministic per -seed)")
	exportFlag := flag.String("export", "", "write the run's admitted arrival stream to a trace file afterward")
	live := flag.Bool("live", false, "stream periodic rolling-metric snapshots and SLO-violation events")
	snapEvery := flag.Float64("snapshot-every", 5, "simulated seconds between -live snapshots")
	spanOut := flag.String("span-out", "", "write per-request span timelines (Chrome/Perfetto trace-event JSON) to this file")
	metricsOut := flag.String("metrics-out", "", "write run metrics to this file: .json = JSON series, anything else = Prometheus text exposition")
	percentiles := flag.Bool("percentiles", false, "print the per-class latency percentile table after the run")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	// Validate every enumerated flag up front: a typo exits non-zero with
	// one line, never a panic deep in setup.
	kind, err := experiments.ParseSystem(*system)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.NewRouter(*router); err != nil {
		log.Fatal(err)
	}
	replicasSet, prefixTierSet, durationSet := false, false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "replicas":
			replicasSet = true
		case "prefix-tier":
			prefixTierSet = true
		case "duration":
			durationSet = true
		}
	})
	if prefixTierSet && !*prefixFlag {
		log.Fatal("-prefix-tier needs -prefix")
	}
	if err := resolveSource(*traceFlag, *specFlag, *profile, *prefixFlag); err != nil {
		log.Fatal(err)
	}
	if *prefixTier < 0 {
		log.Fatalf("-prefix-tier %d: need a non-negative block count", *prefixTier)
	}
	roles, nReplicas, err := resolveFleet(*replicas, replicasSet, *rolesFlag)
	if err != nil {
		log.Fatal(err)
	}
	*replicas = nReplicas
	policy, err := resolveAutoscale(*autoscaleFlag, *replicas)
	if err != nil {
		log.Fatal(err)
	}
	faultSpec, faultRec, err := resolveFaults(*faultsFlag, *recoveryFlag)
	if err != nil {
		log.Fatal(err)
	}
	if !faultSpec.Empty() && *replicas < 2 && len(roles) == 0 {
		log.Fatal("-faults needs a cluster: set -replicas > 1 or -roles")
	}
	var setup experiments.ModelSetup
	switch *model {
	case "llama":
		setup = experiments.Llama70B()
	case "qwen":
		setup = experiments.Qwen32B()
	default:
		log.Fatalf("unknown model %q (llama, qwen)", *model)
	}
	if *snapEvery <= 0 {
		log.Fatalf("-snapshot-every %g: need a positive interval", *snapEvery)
	}
	totalRPS := *rps * float64(*replicas)
	var rate workload.RateFn
	var maxRate float64
	if *profile != "" {
		rate, maxRate, err = workload.RateProfile(*profile, totalRPS, *duration)
		if err != nil {
			log.Fatal(err)
		}
	}

	mix := workload.DefaultMix
	if *urgent > 0 {
		mix = workload.UrgentMix(*urgent)
	}
	gen, err := experiments.NewGenerator(setup, mix, *sloScale, mathutil.Hash2(*seed, 0x51e))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s (baseline %.1f ms/token)\n", setup.Name, 1e3*setup.BaselineLatency())

	// Build the source: closed trace replay by default, trace-file replay
	// under -trace (or -spec, which compiles one first), open-loop with the
	// chosen rate shape when -rate-profile is set, closed-loop sessions under
	// -prefix (follow-up turns submitted from the finish observer below).
	var src serve.Source
	var traceReqs []*request.Request
	var sessions *workload.Sessions
	var submitSrc *serve.SubmitSource
	if *traceFlag != "" || *specFlag != "" {
		tr, err := loadReplayTrace(*traceFlag, *specFlag, setup, *duration, durationSet, *seed)
		if err != nil {
			log.Fatal(err)
		}
		src, err = trace.NewSource(tr)
		if err != nil {
			log.Fatal(err)
		}
		// Downstream cadences (autoscale, adaptive, fault horizon) follow the
		// replayed trace's span, not the synthetic default.
		*duration = tr.Duration()
		st := tr.Stats()
		what := "replaying " + *traceFlag
		if *specFlag != "" {
			what = fmt.Sprintf("compiled %s (seed %d)", *specFlag, tr.Header.Seed)
		}
		fmt.Printf("trace: %s: %d arrivals over %.1fs (mean %.2f rps, %d classes; -rps ignored)\n",
			what, st.Arrivals, tr.Duration(), st.MeanRPS, len(tr.Header.Classes))
	} else if *prefixFlag {
		sessions, err = experiments.NewSessions(setup, *seed)
		if err != nil {
			log.Fatal(err)
		}
		submitSrc = serve.NewSubmitSource()
		init := sessions.InitialRequests()
		for _, r := range init {
			if err := submitSrc.Submit(r); err != nil {
				log.Fatal(err)
			}
		}
		src = submitSrc
		fmt.Printf("workload: %d multi-turn sessions, closed-loop follow-ups (host tier %d blocks; -duration and -rps ignored)\n",
			len(init), *prefixTier)
	} else if rate != nil {
		src, err = serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(*seed, 0x7a)), rate, maxRate, *duration)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload: open-loop %s profile, mean %.2f rps over %.0fs\n", *profile, totalRPS, *duration)
	} else {
		ts := workload.RealTrace(mathutil.NewRNG(mathutil.Hash2(*seed, 0x7a)), totalRPS, *duration)
		traceReqs = gen.FromTimestamps(ts)
		st := workload.StreamStats(traceReqs)
		fmt.Printf("trace: %d requests, %.2f rps, mean prompt %.0f, mean output %.0f\n",
			st.Requests, st.MeanRPS, st.MeanPrompt, st.MeanOutput)
		ts2, err := serve.NewTraceSource(traceReqs)
		if err != nil {
			log.Fatal(err)
		}
		src = ts2
	}

	// Build the backend: one system, or a (possibly disaggregated, possibly
	// elastic) cluster.
	var backend serve.Backend
	var cl *cluster.Cluster
	var sys sched.System
	buildOpts := experiments.BuildOptions{Seed: *seed}
	if *prefixFlag {
		buildOpts.Prefix = true
		buildOpts.PrefixHostBlocks = *prefixTier
	}
	switch {
	case policy != nil:
		eopts := cluster.ElasticOptions{
			ColdStart:     experiments.AutoscaleColdStart(*duration),
			InitialActive: 1,
		}
		if len(roles) > 0 {
			cl, err = experiments.BuildElasticDisagg(kind, setup, roles, *router, eopts, buildOpts)
		} else {
			cl, err = experiments.BuildElasticCluster(kind, setup, *replicas, *router, eopts, buildOpts)
		}
		if err != nil {
			log.Fatal(err)
		}
		backend = cl
	case *replicas > 1 || len(roles) > 0:
		if len(roles) > 0 {
			cl, err = experiments.BuildDisagg(kind, setup, roles, *router, buildOpts)
		} else {
			cl, err = experiments.BuildCluster(kind, setup, *replicas, *router, buildOpts)
		}
		if err != nil {
			log.Fatal(err)
		}
		backend = cl
	default:
		sys, err = experiments.Build(kind, setup, buildOpts)
		if err != nil {
			log.Fatal(err)
		}
		backend = serve.SingleSystem(sys)
	}

	opts := serve.Options{}
	if *live || *metricsOut != "" {
		// The metrics exporter's series is the same snapshot grid -live tails.
		opts.SnapshotEvery = *snapEvery
	}
	var inj *faults.Injector
	if !faultSpec.Empty() {
		inj, err = faults.New(cl, faultSpec, faults.Options{
			Seed: *seed, Horizon: *duration, Recovery: faultRec,
		})
		if err != nil {
			log.Fatal(err)
		}
		opts.Faults = inj
		fmt.Printf("faults: %s [recovery %s]\n", faultSpec, faultRec)
	}
	if policy != nil {
		ctrl, err := autoscale.New(cl, policy, autoscale.Options{
			Interval: experiments.AutoscaleInterval(*duration),
			Window:   experiments.AutoscaleWindow(*duration),
		})
		if err != nil {
			log.Fatal(err)
		}
		opts.Autoscaler = ctrl
		fmt.Printf("autoscale: %s policy over a %d-replica capacity fleet (cold start %.1fs, decisions every %.1fs)\n",
			policy.Name(), *replicas, experiments.AutoscaleColdStart(*duration), experiments.AutoscaleInterval(*duration))
	}
	var actrl *adaptive.Controller
	if cfg := resolveAdaptive(*adaptiveFlag, *admissionFlag, *duration); cfg != nil {
		actrl, err = adaptive.New(backend, *cfg)
		if err != nil {
			log.Fatal(err)
		}
		parts := ""
		if *adaptiveFlag {
			parts = "speculation tuning"
		}
		if *admissionFlag {
			if parts != "" {
				parts += " + "
			}
			parts += "overload admission"
		}
		fmt.Printf("adaptive: %s (retune every %.1fs, %.1fs windows)\n",
			parts, cfg.Interval, cfg.Window)
		opts.Adaptive = actrl
	}
	srv, err := serve.NewServer(backend, opts)
	if err != nil {
		log.Fatal(err)
	}
	var exporter *trace.Exporter
	if *exportFlag != "" {
		exporter = trace.NewExporter(trace.ExportOptions{Seed: *seed, Source: "export:adaserve-sim"})
		srv.Subscribe(exporter)
	}
	var spans *obs.SpanRecorder
	if *spanOut != "" {
		spans = obs.NewSpanRecorder()
		srv.Subscribe(spans)
	}
	var mexp *obs.MetricsExporter
	if *metricsOut != "" {
		mexp = obs.NewMetricsExporter()
		srv.Subscribe(mexp)
	}
	if *live {
		fmt.Println()
		pfx := prefixStatsFn(*prefixFlag, cl, sys)
		srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) { liveEvent(ev, cl, pfx) }))
	}
	var submitErr error
	if sessions != nil {
		srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
			e, ok := ev.(serve.RequestFinished)
			if !ok {
				return
			}
			if next := sessions.FollowUp(e.Req, e.Time); next != nil {
				if err := submitSrc.Submit(next); err != nil && submitErr == nil {
					submitErr = err
				}
			}
		}))
	}
	rr, err := srv.Run(src)
	if err != nil {
		log.Fatal(err)
	}
	if submitErr != nil {
		log.Fatal(submitErr)
	}
	if exporter != nil {
		tr, err := exporter.Trace()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*exportFlag, []byte(tr.Format()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exported %d admitted arrivals to %s\n", len(tr.Arrivals), *exportFlag)
	}

	if cl != nil {
		// Closed replay aggregates over the trace in trace order (matching
		// cluster.Run byte-for-byte); open-loop runs aggregate over every
		// dispatched request.
		res := cl.Results(rr, traceReqs)
		if policy != nil {
			res.Summary.Autoscale.Policy = policy.Name()
		}
		if actrl != nil {
			asum := actrl.Summary()
			res.Summary.Admission = &asum
		}
		if inj != nil {
			fsum := inj.Summary(rr.EndTime)
			res.Summary.Faults = &fsum
		}
		printCluster(res, *replicas)
		finishObs(spans, *spanOut, mexp, *metricsOut, *percentiles, res.Summary.Aggregate)
		return
	}
	reqs := traceReqs
	if reqs == nil {
		reqs = sys.Pool().Done()
	}
	sum := metrics.Summarize(sys.Name(), reqs, rr.Breakdown)
	printSingle(sum, rr)
	if actrl != nil {
		fmt.Println(actrl.Summary().String())
	}
	if pfx := prefixStatsFn(*prefixFlag, nil, sys); pfx != nil {
		fmt.Println(pfx().String())
	}
	finishObs(spans, *spanOut, mexp, *metricsOut, *percentiles, sum)
}

// finishObs renders the observability outputs after the run: the Perfetto
// span-timeline file (-span-out), the metrics export in the format the
// -metrics-out extension selects, and the -percentiles latency table.
func finishObs(spans *obs.SpanRecorder, spanPath string, mexp *obs.MetricsExporter, metricsPath string, percentiles bool, sum *metrics.Summary) {
	if spans != nil {
		var buf bytes.Buffer
		if err := spans.WriteTrace(&buf); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(spanPath, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d span timelines to %s (load in ui.perfetto.dev or chrome://tracing)\n",
			len(spans.Timelines()), spanPath)
	}
	if mexp != nil {
		var buf bytes.Buffer
		var err error
		if strings.HasSuffix(metricsPath, ".json") {
			err = mexp.WriteJSON(&buf, sum)
		} else {
			err = mexp.WritePrometheus(&buf, sum)
		}
		if err == nil {
			err = os.WriteFile(metricsPath, buf.Bytes(), 0o644)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d metric snapshots + terminal summary to %s\n", len(mexp.Snapshots()), metricsPath)
	}
	if percentiles {
		fmt.Println()
		fmt.Print(obs.PercentileTable(sum))
	}
}

// kvPrefixStatser is implemented by every scheduler through the shared base.
type kvPrefixStatser interface {
	KVPrefixStats() (kvcache.PrefixStats, bool)
}

// prefixStatsFn returns a poller that sums the live prefix-cache counters
// across the backend's replicas into a printable summary, or nil when -prefix
// is off.
func prefixStatsFn(on bool, cl *cluster.Cluster, sys sched.System) func() *metrics.PrefixSummary {
	if !on {
		return nil
	}
	return func() *metrics.PrefixSummary {
		tot := &metrics.PrefixSummary{}
		add := func(s sched.System) {
			p, ok := s.(kvPrefixStatser)
			if !ok {
				return
			}
			st, enabled := p.KVPrefixStats()
			if !enabled {
				return
			}
			tot.Add(metrics.PrefixSummary{
				Lookups: st.Lookups, Hits: st.Hits, HitTokens: st.HitTokens,
				Evictions: st.Evictions, HostEvictions: st.HostEvictions,
				Reloads: st.Reloads, ReloadedTokens: st.ReloadedTokens,
				ReloadStallTime: st.ReloadStall,
			})
		}
		if cl != nil {
			for _, rep := range cl.Replicas() {
				add(rep.System())
			}
		} else {
			add(sys)
		}
		return tot
	}
}

// liveEvent renders the -live stream: one line per rolling-metric snapshot
// (with the fleet size when the cluster is elastic, plus a [pfx] cache line
// when -prefix is on), SLO violations the moment they become certain, and
// every autoscaler action.
func liveEvent(ev serve.Event, cl *cluster.Cluster, pfx func() *metrics.PrefixSummary) {
	switch e := ev.(type) {
	case serve.Snapshot:
		s := e.Stats
		tag := "live"
		if e.Final {
			tag = "done"
		}
		fmt.Printf("[%s t=%7.1fs] run %3d wait %3d | finished %5d/%5d | attain %5.1f%% (win %5.1f%%) | goodput %7.1f tok/s (win %7.1f)",
			tag, e.Time, s.Running, s.Queued, s.Finished, s.Admitted,
			100*s.Attainment(), 100*s.WindowAttainment(), s.Goodput, s.WindowGoodput)
		if s.WindowTPOTTail.Count > 0 {
			fmt.Printf(" | p99 TPOT %5.1fms (win %5.1fms)", 1e3*s.TPOTTail.P99, 1e3*s.WindowTPOTTail.P99)
		}
		if cl != nil && cl.Elastic() {
			fmt.Printf(" | %s", fleetString(cl))
		}
		for cat := 0; cat < request.NumCategories; cat++ {
			c := s.PerClass[cat]
			if c.WindowFinished > 0 {
				fmt.Printf(" | %s %.0f%%", request.Category(cat), 100*c.WindowAttainment())
			}
		}
		fmt.Println()
		if pfx != nil {
			fmt.Printf("[pfx  t=%7.1fs] %s\n", e.Time, pfx())
		}
	case serve.SLOViolated:
		fmt.Printf("[viol t=%7.1fs] request %d (%s) missed its %s SLO\n",
			e.Time, e.Req.ID, e.Req.Category, e.Kind)
	case serve.RequestRejected:
		fmt.Printf("[admt t=%7.1fs] request %d (%s) rejected: %s\n",
			e.Time, e.Req.ID, e.Req.Category, e.Reason)
	case serve.RequestDegraded:
		fmt.Printf("[admt t=%7.1fs] request %d degraded %s -> %s: %s\n",
			e.Time, e.Req.ID, e.From, e.To, e.Reason)
	case serve.ScaleUp:
		fmt.Printf("[scal t=%7.1fs] +replica %d (%s): %s -> fleet %d\n",
			e.Time, e.Action.Instance, e.Action.Role, e.Action.Reason, e.Action.Fleet)
	case serve.ScaleDown:
		fmt.Printf("[scal t=%7.1fs] -replica %d (%s): %s -> fleet %d\n",
			e.Time, e.Action.Instance, e.Action.Role, e.Action.Reason, e.Action.Fleet)
	case serve.ReplicaFailed:
		fmt.Printf("[falt t=%7.1fs] replica %d crashed (%s), %d resident requests frozen\n",
			e.Time, e.Instance, e.Reason, e.Lost)
	case serve.ReplicaRecovered:
		fmt.Printf("[falt t=%7.1fs] replica %d recovered after %.1fs down\n",
			e.Time, e.Instance, e.Downtime)
	case serve.RequestRetried:
		fmt.Printf("[falt t=%7.1fs] request %d retried (attempt %d) on replica %d\n",
			e.Time, e.Req.ID, e.Attempt, e.Instance)
	case serve.RequestHedged:
		fmt.Printf("[falt t=%7.1fs] request %d hedged onto replica %d\n",
			e.Time, e.Req.ID, e.Instance)
	case serve.RequestMigrated:
		fmt.Printf("[mig  t=%7.1fs] request %d KV %d -> %d (%.1f MB in %.1f ms)\n",
			e.Time, e.Req.ID, e.From, e.To, e.Bytes/1e6, 1e3*(e.Time-e.Depart))
	}
}

// fleetString renders an elastic fleet's occupancy, e.g. "fleet 3/4 (+1 prov)".
func fleetString(cl *cluster.Cluster) string {
	active, prov, draining, failed := 0, 0, 0, 0
	for _, rep := range cl.Replicas() {
		switch rep.State() {
		case cluster.StateActive:
			active++
		case cluster.StateProvisioning:
			prov++
		case cluster.StateDraining:
			draining++
		case cluster.StateFailed:
			failed++
		}
	}
	s := fmt.Sprintf("fleet %d/%d", active, cl.Size())
	if prov > 0 {
		s += fmt.Sprintf(" (+%d prov)", prov)
	}
	if draining > 0 {
		s += fmt.Sprintf(" (-%d drain)", draining)
	}
	if failed > 0 {
		s += fmt.Sprintf(" (%d failed)", failed)
	}
	return s
}

func printSingle(s *metrics.Summary, rr *serve.Result) {
	fmt.Println()
	fmt.Println(s)
	fmt.Printf("\nthroughput %.1f tok/s | mean TTFT %.2fs | p50 TPOT %.1fms | p99 TPOT %.1fms\n",
		s.Throughput, s.MeanTTFT, 1e3*s.P50TPOT(), 1e3*s.P99TPOT())
	b := s.Breakdown
	fmt.Printf("breakdown: scheduling %.2f%%, speculation %.1f%%, verification %.1f%%, prefill %.1f%%\n",
		100*b.Scheduling/b.Total(), 100*b.Speculation/b.Total(),
		100*b.Verification/b.Total(), 100*b.Prefill/b.Total())
	fmt.Printf("simulated: %.1fs over %d iterations\n", rr.EndTime, rr.Iterations)
}

func printCluster(res *cluster.Result, n int) {
	s := res.Summary
	fmt.Println()
	fmt.Println(s)
	fmt.Printf("\ncluster: attainment %.1f%% | TTFT attainment %.1f%% | goodput %.1f tok/s | request imbalance %.2f\n",
		100*s.Attainment(), 100*s.TTFTAttainment(), s.Goodput(), s.RequestImbalance())
	fmt.Printf("throughput %.1f tok/s | mean TTFT %.2fs | p50 TPOT %.1fms | p99 TPOT %.1fms\n",
		s.Aggregate.Throughput, s.Aggregate.MeanTTFT, 1e3*s.Aggregate.P50TPOT(), 1e3*s.Aggregate.P99TPOT())
	for _, rs := range s.Roles {
		if rs.Role == "mixed" && s.Transfer.Count == 0 {
			continue
		}
		fmt.Printf("role %-8s x%d: %s, %s\n", rs.Role, rs.Replicas,
			stageStat(rs.PrefillRequests, "prefills", "TTFT attain", rs.TTFTAttainment()),
			stageStat(rs.DecodeRequests, "decodes", "TPOT attain", rs.TPOTAttainment()))
	}
	if s.Transfer.Count > 0 {
		fmt.Printf("KV transfers: %d over %s, %.1f GB total, mean %.1f ms\n",
			s.Transfer.Count, experiments.DisaggLink.Name, s.Transfer.Bytes/1e9, 1e3*s.Transfer.MeanLatency())
	}
	if s.Autoscale != nil && s.Autoscale.Policy != "" {
		fmt.Printf("autoscale %s\n", s.Autoscale)
	}
	if s.Admission != nil {
		fmt.Println(s.Admission.String())
	}
	if s.Prefix != nil {
		fmt.Println(s.Prefix.String())
	}
	if s.Faults != nil {
		fmt.Printf("faults %s\n", s.Faults)
	}
	fmt.Printf("simulated: %.1fs over %d iterations across %d replicas\n", res.EndTime, res.Iterations, n)
}

// stageStat renders one stage of a role row, eliding the attainment of a
// stage the role never served (an empty denominator is not a 0% failure).
func stageStat(n int, noun, metric string, attain float64) string {
	if n == 0 {
		return fmt.Sprintf("%4d %s", n, noun)
	}
	return fmt.Sprintf("%4d %s (%s %.1f%%)", n, noun, metric, 100*attain)
}
