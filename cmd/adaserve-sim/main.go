// adaserve-sim runs one serving configuration over one synthesized trace
// and dumps the full metric summary — the single-run counterpart of
// adaserve-bench's sweeps.
//
// With -replicas > 1 it runs a multi-replica cluster instead: N independent
// copies of the system behind the chosen router policy, fed from one global
// arrival stream, reporting cluster-aggregate and per-replica metrics. In
// cluster mode -rps is the per-replica rate (the trace carries
// rps × replicas requests per second).
//
// With -roles the cluster is disaggregated: "-roles 2P2D" runs two dedicated
// prefill replicas and two dedicated decode replicas, migrating each request
// at prefill completion over the modeled interconnect. -roles implies the
// replica count (overriding -replicas).
//
// Usage:
//
//	adaserve-sim -system AdaServe -model llama -rps 3.8 -duration 120
//	adaserve-sim -system "vLLM-Spec (6)" -urgent 0.7 -slo-scale 0.8
//	adaserve-sim -replicas 4 -router slo-aware
//	adaserve-sim -roles 2P2D -router least-loaded
package main

import (
	"flag"
	"fmt"
	"log"

	"adaserve/internal/cluster"
	"adaserve/internal/experiments"
	"adaserve/internal/mathutil"
	"adaserve/internal/request"
	"adaserve/internal/sim"
	"adaserve/internal/workload"
)

func main() {
	system := flag.String("system", "AdaServe", "serving system name (AdaServe, vLLM, Sarathi-Serve, vLLM-Spec (4|6|8), vLLM + Priority, FastServe, VTC, AdaServe (interleaved))")
	model := flag.String("model", "llama", "model setup: llama or qwen")
	rps := flag.Float64("rps", 3.8, "mean request rate (per replica in cluster mode)")
	duration := flag.Float64("duration", 120, "trace duration in seconds")
	urgent := flag.Float64("urgent", 0, "urgent-request proportion (0 = default 60/20/20 mix)")
	sloScale := flag.Float64("slo-scale", 1.0, "scale applied to the most urgent SLO")
	replicas := flag.Int("replicas", 1, "number of serving replicas (cluster mode when > 1)")
	router := flag.String("router", "slo-aware", "cluster router policy: round-robin, least-loaded, slo-aware")
	rolesFlag := flag.String("roles", "", "disaggregated role split, e.g. 2P2D (overrides -replicas)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if *replicas < 1 {
		log.Fatalf("-replicas %d: need at least 1", *replicas)
	}
	var roles []cluster.Role
	if *rolesFlag != "" {
		var err error
		roles, err = cluster.ParseSplit(*rolesFlag)
		if err != nil {
			log.Fatal(err)
		}
		*replicas = len(roles)
	}

	var setup experiments.ModelSetup
	switch *model {
	case "llama":
		setup = experiments.Llama70B()
	case "qwen":
		setup = experiments.Qwen32B()
	default:
		log.Fatalf("unknown model %q", *model)
	}

	mix := workload.DefaultMix
	if *urgent > 0 {
		mix = workload.UrgentMix(*urgent)
	}
	gen, err := experiments.NewGenerator(setup, mix, *sloScale, mathutil.Hash2(*seed, 0x51e))
	if err != nil {
		log.Fatal(err)
	}
	totalRPS := *rps * float64(*replicas)
	ts := workload.RealTrace(mathutil.NewRNG(mathutil.Hash2(*seed, 0x7a)), totalRPS, *duration)
	reqs := gen.FromTimestamps(ts)
	st := workload.StreamStats(reqs)
	fmt.Printf("model: %s (baseline %.1f ms/token)\n", setup.Name, 1e3*setup.BaselineLatency())
	fmt.Printf("trace: %d requests, %.2f rps, mean prompt %.0f, mean output %.0f\n",
		st.Requests, st.MeanRPS, st.MeanPrompt, st.MeanOutput)

	if *replicas > 1 || len(roles) > 0 {
		runCluster(experiments.SystemKind(*system), setup, *replicas, roles, *router, *seed, reqs)
		return
	}

	sys, err := experiments.Build(experiments.SystemKind(*system), setup, experiments.BuildOptions{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(sys, reqs, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Summary
	fmt.Println()
	fmt.Println(s)
	fmt.Printf("\nthroughput %.1f tok/s | mean TTFT %.2fs | p50 TPOT %.1fms | p99 TPOT %.1fms\n",
		s.Throughput, s.MeanTTFT, 1e3*s.P50TPOT(), 1e3*s.P99TPOT())
	b := s.Breakdown
	fmt.Printf("breakdown: scheduling %.2f%%, speculation %.1f%%, verification %.1f%%, prefill %.1f%%\n",
		100*b.Scheduling/b.Total(), 100*b.Speculation/b.Total(),
		100*b.Verification/b.Total(), 100*b.Prefill/b.Total())
	fmt.Printf("simulated: %.1fs over %d iterations\n", res.EndTime, res.Iterations)
}

func runCluster(kind experiments.SystemKind, setup experiments.ModelSetup, n int, roles []cluster.Role, router string, seed uint64, reqs []*request.Request) {
	var cl *cluster.Cluster
	var err error
	if len(roles) > 0 {
		cl, err = experiments.BuildDisagg(kind, setup, roles, router, experiments.BuildOptions{Seed: seed})
	} else {
		cl, err = experiments.BuildCluster(kind, setup, n, router, experiments.BuildOptions{Seed: seed})
	}
	if err != nil {
		log.Fatal(err)
	}
	res, err := cl.Run(reqs, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Summary
	fmt.Println()
	fmt.Println(s)
	fmt.Printf("\ncluster: attainment %.1f%% | TTFT attainment %.1f%% | goodput %.1f tok/s | request imbalance %.2f\n",
		100*s.Attainment(), 100*s.TTFTAttainment(), s.Goodput(), s.RequestImbalance())
	fmt.Printf("throughput %.1f tok/s | mean TTFT %.2fs | p50 TPOT %.1fms | p99 TPOT %.1fms\n",
		s.Aggregate.Throughput, s.Aggregate.MeanTTFT, 1e3*s.Aggregate.P50TPOT(), 1e3*s.Aggregate.P99TPOT())
	for _, rs := range s.Roles {
		if rs.Role == "mixed" && s.Transfer.Count == 0 {
			continue
		}
		fmt.Printf("role %-8s x%d: %s, %s\n", rs.Role, rs.Replicas,
			stageStat(rs.PrefillRequests, "prefills", "TTFT attain", rs.TTFTAttainment()),
			stageStat(rs.DecodeRequests, "decodes", "TPOT attain", rs.TPOTAttainment()))
	}
	if s.Transfer.Count > 0 {
		fmt.Printf("KV transfers: %d over %s, %.1f GB total, mean %.1f ms\n",
			s.Transfer.Count, experiments.DisaggLink.Name, s.Transfer.Bytes/1e9, 1e3*s.Transfer.MeanLatency())
	}
	fmt.Printf("simulated: %.1fs over %d iterations across %d replicas\n", res.EndTime, res.Iterations, n)
}

// stageStat renders one stage of a role row, eliding the attainment of a
// stage the role never served (an empty denominator is not a 0% failure).
func stageStat(n int, noun, metric string, attain float64) string {
	if n == 0 {
		return fmt.Sprintf("%4d %s", n, noun)
	}
	return fmt.Sprintf("%4d %s (%s %.1f%%)", n, noun, metric, 100*attain)
}
