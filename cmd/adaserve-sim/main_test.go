package main

import (
	"strings"
	"testing"

	"adaserve/internal/cluster"
	"adaserve/internal/experiments"
	"adaserve/internal/serve"
)

// TestResolveFleet is the -replicas/-roles validation table: -roles implies
// the count, and an explicitly set -replicas that contradicts it fails with
// a one-line error instead of being silently overridden.
func TestResolveFleet(t *testing.T) {
	cases := []struct {
		name        string
		replicas    int
		replicasSet bool
		roles       string
		wantN       int
		wantRoles   int
		wantErr     string
	}{
		{name: "default single", replicas: 1, wantN: 1},
		{name: "explicit cluster", replicas: 4, replicasSet: true, wantN: 4},
		{name: "zero replicas", replicas: 0, replicasSet: true, wantErr: "need at least 1"},
		{name: "roles imply count", replicas: 1, roles: "2P2D", wantN: 4, wantRoles: 4},
		{name: "agreeing replicas", replicas: 4, replicasSet: true, roles: "2P2D", wantN: 4, wantRoles: 4},
		{name: "contradicting replicas", replicas: 3, replicasSet: true, roles: "2P2D", wantErr: "contradicts"},
		{name: "contradicting mixed split", replicas: 2, replicasSet: true, roles: "mixed4", wantErr: "contradicts"},
		{name: "bad split", replicas: 1, roles: "2X2D", wantErr: "bad role split"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			roles, n, err := resolveFleet(c.replicas, c.replicasSet, c.roles)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error = %v, want one containing %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if n != c.wantN || len(roles) != c.wantRoles {
				t.Fatalf("got %d replicas, %d roles; want %d, %d", n, len(roles), c.wantN, c.wantRoles)
			}
		})
	}
}

// TestResolveAdaptive is the -adaptive/-admission mapping table: both off
// means no controller, and each flag disables exactly the other half of the
// closed loop.
func TestResolveAdaptive(t *testing.T) {
	cases := []struct {
		name              string
		tuning, admission bool
		wantNil           bool
		wantNoTuning      bool
		wantNoAdmission   bool
	}{
		{name: "both off", wantNil: true},
		{name: "tuning only", tuning: true, wantNoAdmission: true},
		{name: "admission only", admission: true, wantNoTuning: true},
		{name: "full closed loop", tuning: true, admission: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := resolveAdaptive(c.tuning, c.admission, 120)
			if (cfg == nil) != c.wantNil {
				t.Fatalf("cfg = %+v, wantNil = %v", cfg, c.wantNil)
			}
			if cfg == nil {
				return
			}
			if cfg.DisableTuning != c.wantNoTuning || cfg.DisableAdmission != c.wantNoAdmission {
				t.Fatalf("cfg = %+v, want DisableTuning=%v DisableAdmission=%v",
					cfg, c.wantNoTuning, c.wantNoAdmission)
			}
			if cfg.Interval != experiments.AdaptiveInterval(120) || cfg.Window != experiments.AutoscaleWindow(120) {
				t.Fatalf("cfg timing %+v does not follow the experiment cadence", cfg)
			}
		})
	}
}

// TestFleetString covers the -live fleet renderer across lifecycle states.
func TestFleetString(t *testing.T) {
	cl, err := experiments.BuildElasticCluster(experiments.SysAdaServe, experiments.Llama70B(),
		3, "round-robin", cluster.ElasticOptions{ColdStart: 1, InitialActive: 2},
		experiments.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := fleetString(cl); got != "fleet 2/3" {
		t.Fatalf("fleetString = %q, want \"fleet 2/3\"", got)
	}
	var q serve.Queue
	if _, ok := cl.ScaleUp(cluster.RoleMixed, 1.0, &q); !ok {
		t.Fatal("scale-up refused")
	}
	if got := fleetString(cl); got != "fleet 2/3 (+1 prov)" {
		t.Fatalf("fleetString = %q, want provisioning marker", got)
	}
}

// TestStageStat covers the role-row renderer, including the elided
// attainment of a stage the role never served.
func TestStageStat(t *testing.T) {
	if got := stageStat(0, "prefills", "TTFT attain", 0); strings.Contains(got, "%") {
		t.Fatalf("empty stage rendered an attainment: %q", got)
	}
	got := stageStat(12, "decodes", "TPOT attain", 0.925)
	if !strings.Contains(got, "12 decodes") || !strings.Contains(got, "TPOT attain 92.5%") {
		t.Fatalf("stageStat = %q", got)
	}
}

// TestResolveAutoscale is the -autoscale validation table: unknown policies
// and single-replica fleets are rejected up front.
func TestResolveAutoscale(t *testing.T) {
	cases := []struct {
		name     string
		policy   string
		replicas int
		wantNil  bool
		wantErr  string
	}{
		{name: "disabled", policy: "", replicas: 1, wantNil: true},
		{name: "target-queue", policy: "target-queue", replicas: 4},
		{name: "rate-prop", policy: "rate-prop", replicas: 2},
		{name: "slo-feedback", policy: "slo-feedback", replicas: 8},
		{name: "unknown policy", policy: "bogus", replicas: 4, wantErr: "unknown policy"},
		{name: "single replica", policy: "rate-prop", replicas: 1, wantErr: "capacity fleet"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := resolveAutoscale(c.policy, c.replicas)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error = %v, want one containing %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if (p == nil) != c.wantNil {
				t.Fatalf("policy = %v, wantNil = %v", p, c.wantNil)
			}
			if p != nil && p.Name() != c.policy {
				t.Fatalf("policy name %q, want %q", p.Name(), c.policy)
			}
		})
	}
}
