package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adaserve/internal/cluster"
	"adaserve/internal/experiments"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/obs"
	"adaserve/internal/request"
	"adaserve/internal/serve"
	"adaserve/internal/workload"
)

// TestResolveFleet is the -replicas/-roles validation table: -roles implies
// the count, and an explicitly set -replicas that contradicts it fails with
// a one-line error instead of being silently overridden.
func TestResolveFleet(t *testing.T) {
	cases := []struct {
		name        string
		replicas    int
		replicasSet bool
		roles       string
		wantN       int
		wantRoles   int
		wantErr     string
	}{
		{name: "default single", replicas: 1, wantN: 1},
		{name: "explicit cluster", replicas: 4, replicasSet: true, wantN: 4},
		{name: "zero replicas", replicas: 0, replicasSet: true, wantErr: "need at least 1"},
		{name: "roles imply count", replicas: 1, roles: "2P2D", wantN: 4, wantRoles: 4},
		{name: "agreeing replicas", replicas: 4, replicasSet: true, roles: "2P2D", wantN: 4, wantRoles: 4},
		{name: "contradicting replicas", replicas: 3, replicasSet: true, roles: "2P2D", wantErr: "contradicts"},
		{name: "contradicting mixed split", replicas: 2, replicasSet: true, roles: "mixed4", wantErr: "contradicts"},
		{name: "bad split", replicas: 1, roles: "2X2D", wantErr: "bad role split"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			roles, n, err := resolveFleet(c.replicas, c.replicasSet, c.roles)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error = %v, want one containing %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if n != c.wantN || len(roles) != c.wantRoles {
				t.Fatalf("got %d replicas, %d roles; want %d, %d", n, len(roles), c.wantN, c.wantRoles)
			}
		})
	}
}

// TestResolveSource is the workload-source validation table: -trace, -spec,
// -rate-profile and -prefix each replace the default arrival stream, so any
// pair of them fails with a one-line error naming the clashing flags.
func TestResolveSource(t *testing.T) {
	cases := []struct {
		name          string
		tracef, specf string
		profile       string
		prefix        bool
		wantErr       string
	}{
		{name: "default closed replay"},
		{name: "trace only", tracef: "x.trace"},
		{name: "spec only", specf: "x.spec"},
		{name: "profile only", profile: "spike"},
		{name: "prefix only", prefix: true},
		{name: "trace and spec", tracef: "x", specf: "y", wantErr: "-trace and -spec"},
		{name: "spec and profile", specf: "y", profile: "spike", wantErr: "-spec and -rate-profile"},
		{name: "trace and prefix", tracef: "x", prefix: true, wantErr: "-trace and -prefix"},
		{name: "profile and prefix", profile: "spike", prefix: true, wantErr: "-rate-profile and -prefix"},
		{name: "all four", tracef: "x", specf: "y", profile: "spike", prefix: true, wantErr: "at most one"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := resolveSource(c.tracef, c.specf, c.profile, c.prefix)
			if c.wantErr == "" {
				if err != nil {
					t.Fatal(err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want one containing %q", err, c.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("error is not one line: %q", err)
			}
		})
	}
}

// TestLoadReplayTrace covers both halves of the -trace/-spec loader: a spec
// compiles deterministically per seed with -duration overriding the spec's
// only when explicitly set, a trace file parses as-is, and malformed input
// surfaces the parser's line-numbered error prefixed with the path.
func TestLoadReplayTrace(t *testing.T) {
	setup := experiments.Llama70B()
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	spec := write("tiny.spec", "#adaserve-spec v1\n#meta seed 3\n#meta duration 12\ncohort a class=chat rate=2 arrival=poisson prompt=fixed:32 output=fixed:32\n")

	tr, err := loadReplayTrace("", spec, setup, 120, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Arrivals) == 0 || tr.Duration() > 12 {
		t.Fatalf("spec compile ignored the spec's duration: %d arrivals over %.1fs", len(tr.Arrivals), tr.Duration())
	}
	again, err := loadReplayTrace("", spec, setup, 120, false, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Format() != again.Format() {
		t.Fatal("same seed compiled different traces")
	}
	long, err := loadReplayTrace("", spec, setup, 48, true, 7)
	if err != nil {
		t.Fatal(err)
	}
	if long.Duration() <= 12 {
		t.Fatalf("explicit -duration 48 did not extend the trace: %.1fs", long.Duration())
	}

	// A trace file replays as-is, and byte-identically round-trips through
	// the file form the spec path would have written.
	tracePath := write("tiny.trace", tr.Format())
	parsed, err := loadReplayTrace(tracePath, "", setup, 120, false, 99)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Format() != tr.Format() {
		t.Fatal("trace file replay differs from the compiled original")
	}

	if _, err := loadReplayTrace(write("bad.trace", "nope\n"), "", setup, 120, false, 1); err == nil || !strings.Contains(err.Error(), "bad.trace") {
		t.Fatalf("malformed trace error = %v, want one naming the file", err)
	}
	if _, err := loadReplayTrace("", write("bad.spec", "#adaserve-spec v2\n"), setup, 120, false, 1); err == nil || !strings.Contains(err.Error(), "bad.spec") {
		t.Fatalf("malformed spec error = %v, want one naming the file", err)
	}
}

// TestResolveAdaptive is the -adaptive/-admission mapping table: both off
// means no controller, and each flag disables exactly the other half of the
// closed loop.
func TestResolveAdaptive(t *testing.T) {
	cases := []struct {
		name              string
		tuning, admission bool
		wantNil           bool
		wantNoTuning      bool
		wantNoAdmission   bool
	}{
		{name: "both off", wantNil: true},
		{name: "tuning only", tuning: true, wantNoAdmission: true},
		{name: "admission only", admission: true, wantNoTuning: true},
		{name: "full closed loop", tuning: true, admission: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := resolveAdaptive(c.tuning, c.admission, 120)
			if (cfg == nil) != c.wantNil {
				t.Fatalf("cfg = %+v, wantNil = %v", cfg, c.wantNil)
			}
			if cfg == nil {
				return
			}
			if cfg.DisableTuning != c.wantNoTuning || cfg.DisableAdmission != c.wantNoAdmission {
				t.Fatalf("cfg = %+v, want DisableTuning=%v DisableAdmission=%v",
					cfg, c.wantNoTuning, c.wantNoAdmission)
			}
			if cfg.Interval != experiments.AdaptiveInterval(120) || cfg.Window != experiments.AutoscaleWindow(120) {
				t.Fatalf("cfg timing %+v does not follow the experiment cadence", cfg)
			}
		})
	}
}

// TestFleetString covers the -live fleet renderer across lifecycle states.
func TestFleetString(t *testing.T) {
	cl, err := experiments.BuildElasticCluster(experiments.SysAdaServe, experiments.Llama70B(),
		3, "round-robin", cluster.ElasticOptions{ColdStart: 1, InitialActive: 2},
		experiments.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := fleetString(cl); got != "fleet 2/3" {
		t.Fatalf("fleetString = %q, want \"fleet 2/3\"", got)
	}
	var q serve.Queue
	if _, ok := cl.ScaleUp(cluster.RoleMixed, 1.0, &q); !ok {
		t.Fatal("scale-up refused")
	}
	if got := fleetString(cl); got != "fleet 2/3 (+1 prov)" {
		t.Fatalf("fleetString = %q, want provisioning marker", got)
	}
}

// TestStageStat covers the role-row renderer, including the elided
// attainment of a stage the role never served.
func TestStageStat(t *testing.T) {
	if got := stageStat(0, "prefills", "TTFT attain", 0); strings.Contains(got, "%") {
		t.Fatalf("empty stage rendered an attainment: %q", got)
	}
	got := stageStat(12, "decodes", "TPOT attain", 0.925)
	if !strings.Contains(got, "12 decodes") || !strings.Contains(got, "TPOT attain 92.5%") {
		t.Fatalf("stageStat = %q", got)
	}
}

// TestResolveAutoscale is the -autoscale validation table: unknown policies
// and single-replica fleets are rejected up front.
func TestResolveAutoscale(t *testing.T) {
	cases := []struct {
		name     string
		policy   string
		replicas int
		wantNil  bool
		wantErr  string
	}{
		{name: "disabled", policy: "", replicas: 1, wantNil: true},
		{name: "target-queue", policy: "target-queue", replicas: 4},
		{name: "rate-prop", policy: "rate-prop", replicas: 2},
		{name: "slo-feedback", policy: "slo-feedback", replicas: 8},
		{name: "unknown policy", policy: "bogus", replicas: 4, wantErr: "unknown policy"},
		{name: "single replica", policy: "rate-prop", replicas: 1, wantErr: "capacity fleet"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := resolveAutoscale(c.policy, c.replicas)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error = %v, want one containing %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if (p == nil) != c.wantNil {
				t.Fatalf("policy = %v, wantNil = %v", p, c.wantNil)
			}
			if p != nil && p.Name() != c.policy {
				t.Fatalf("policy name %q, want %q", p.Name(), c.policy)
			}
		})
	}
}

// TestResolveFaults is the -faults/-recovery validation table: a malformed
// schedule or recovery mode fails with a one-line error before any setup.
func TestResolveFaults(t *testing.T) {
	cases := []struct {
		name     string
		spec     string
		recovery string
		wantLen  int
		wantErr  string
	}{
		{name: "disabled", spec: "", recovery: "retry"},
		{name: "crash", spec: "crash@30+10:r0", recovery: "none", wantLen: 1},
		{name: "full schedule", spec: "crash@30+10:r0; slow@60+20:x4; link@40+30:p0.3", recovery: "retry+hedge", wantLen: 3},
		{name: "missing time", spec: "crash", recovery: "retry", wantErr: "faults:"},
		{name: "negative time", spec: "crash@-1", recovery: "retry", wantErr: "faults:"},
		{name: "slow without factor", spec: "slow@1+2", recovery: "retry", wantErr: "faults:"},
		{name: "link per replica", spec: "link@1+2:p0.5:r1", recovery: "retry", wantErr: "faults:"},
		{name: "unknown kind", spec: "flood@1", recovery: "retry", wantErr: "flood"},
		{name: "bad recovery", spec: "crash@30", recovery: "prayer", wantErr: "prayer"},
		{name: "bad recovery without faults", spec: "", recovery: "prayer", wantErr: "prayer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, _, err := resolveFaults(c.spec, c.recovery)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error = %v, want one containing %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(spec.Events) != c.wantLen {
				t.Fatalf("parsed %d events, want %d", len(spec.Events), c.wantLen)
			}
			if (c.spec == "") != spec.Empty() {
				t.Fatalf("Empty() = %v for spec %q", spec.Empty(), c.spec)
			}
		})
	}
}

// TestLiveEventRendersEveryKind drives the -live renderer with one event of
// every kind it formats and checks each line carries its tag and payload —
// the stream a user watches during a faulted run must name crashes,
// recoveries, retries and hedges explicitly.
func TestLiveEventRendersEveryKind(t *testing.T) {
	req := &request.Request{ID: 7, Category: request.Coding}
	cases := []struct {
		name string
		ev   serve.Event
		want []string
	}{
		{name: "snapshot", ev: serve.Snapshot{Stats: metrics.RollingStats{Running: 2, Queued: 1}},
			want: []string{"[live", "run   2", "wait   1"}},
		{name: "final snapshot", ev: serve.Snapshot{Final: true}, want: []string{"[done"}},
		{name: "violation", ev: serve.SLOViolated{Req: req, Kind: serve.ViolationTTFT},
			want: []string{"[viol", "request 7", "ttft"}},
		{name: "rejected", ev: serve.RequestRejected{Req: req, Reason: "overload"},
			want: []string{"[admt", "rejected: overload"}},
		{name: "degraded", ev: serve.RequestDegraded{Req: req, From: request.Coding, To: request.Summarization, Reason: "pressure"},
			want: []string{"[admt", "degraded"}},
		{name: "scale up", ev: serve.ScaleUp{Action: serve.ScaleAction{Up: true, Instance: 3, Role: "mixed", Reason: "load", Fleet: 4}},
			want: []string{"[scal", "+replica 3", "fleet 4"}},
		{name: "scale down", ev: serve.ScaleDown{Action: serve.ScaleAction{Instance: 3, Role: "mixed", Reason: "idle", Fleet: 3}},
			want: []string{"[scal", "-replica 3"}},
		{name: "replica failed", ev: serve.ReplicaFailed{Instance: 1, Lost: 4, Reason: "injected crash"},
			want: []string{"[falt", "replica 1 crashed", "4 resident"}},
		{name: "replica recovered", ev: serve.ReplicaRecovered{Instance: 1, Downtime: 2.5},
			want: []string{"[falt", "replica 1 recovered", "2.5s down"}},
		{name: "retried", ev: serve.RequestRetried{Req: req, Instance: 2, Attempt: 3},
			want: []string{"[falt", "request 7 retried", "attempt 3", "replica 2"}},
		{name: "hedged", ev: serve.RequestHedged{Req: req, Instance: 2},
			want: []string{"[falt", "request 7 hedged", "replica 2"}},
		{name: "migrated", ev: serve.RequestMigrated{Req: req, From: 0, To: 1, Depart: 0, Bytes: 2e6},
			want: []string{"[mig", "request 7 KV 0 -> 1", "2.0 MB"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := captureStdout(t, func() { liveEvent(c.ev, nil, nil) })
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Fatalf("liveEvent output %q missing %q", out, w)
				}
			}
		})
	}
}

// TestFleetStringStates checks the elastic-fleet occupancy tag across
// lifecycle states, including the failed count a faulted run surfaces.
func TestFleetStringStates(t *testing.T) {
	cl, err := experiments.BuildElasticCluster(experiments.SysAdaServe, experiments.Llama70B(),
		3, "round-robin", cluster.ElasticOptions{ColdStart: 1, InitialActive: 2},
		experiments.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := fleetString(cl); !strings.Contains(got, "fleet 2/3") {
		t.Fatalf("fleet tag %q, want active/size occupancy", got)
	}
	cl.ArmFaults()
	if _, ok := cl.Fail(0, 0.5); !ok {
		t.Fatal("Fail(0) refused")
	}
	got := fleetString(cl)
	if !strings.Contains(got, "fleet 1/3") || !strings.Contains(got, "(1 failed)") {
		t.Fatalf("fleet tag %q, want failed replica surfaced", got)
	}
}

// captureStdout runs f with os.Stdout redirected into a pipe and returns
// what it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPrefixStatsFn covers the -prefix live-poller wiring: off returns no
// poller at all, a prefix-enabled fleet sums per-replica counters, and a
// prefix-enabled single system reports through the same path.
func TestPrefixStatsFn(t *testing.T) {
	setup := experiments.Llama70B()
	if prefixStatsFn(false, nil, nil) != nil {
		t.Fatal("-prefix off must disable the poller")
	}

	bopts := experiments.BuildOptions{Seed: 1, Prefix: true, PrefixHostBlocks: 64}
	cl, err := experiments.BuildCluster(experiments.SysAdaServe, setup, 2, "least-loaded", bopts)
	if err != nil {
		t.Fatal(err)
	}
	pfx := prefixStatsFn(true, cl, nil)
	if pfx == nil {
		t.Fatal("-prefix on returned no poller")
	}
	sum := pfx()
	if sum == nil || sum.Lookups != 0 {
		t.Fatalf("idle fleet summary %+v, want zero counters", sum)
	}

	sys, err := experiments.Build(experiments.SysAdaServe, setup, bopts)
	if err != nil {
		t.Fatal(err)
	}
	if sum := prefixStatsFn(true, nil, sys)(); sum == nil {
		t.Fatal("single-system poller returned nil summary")
	}

	// A prefix-disabled backend contributes nothing even when polled.
	plain, err := experiments.Build(experiments.SysAdaServe, setup, experiments.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum := prefixStatsFn(true, nil, plain)(); sum.Lookups != 0 || sum.Hits != 0 {
		t.Fatalf("disabled backend leaked counters: %+v", sum)
	}
}

// TestLiveEventPrefixLine covers the [pfx] cache line appended to snapshots.
func TestLiveEventPrefixLine(t *testing.T) {
	out := captureStdout(t, func() {
		liveEvent(serve.Snapshot{EventMeta: serve.EventMeta{Time: 12}, Stats: metrics.RollingStats{}}, nil,
			func() *metrics.PrefixSummary {
				return &metrics.PrefixSummary{Lookups: 4, Hits: 3, HitTokens: 96}
			})
	})
	if !strings.Contains(out, "[pfx") || !strings.Contains(out, "75.0% hit") {
		t.Fatalf("snapshot missing the prefix cache line:\n%s", out)
	}
}

// TestFinishObs drives the post-run observability rendering end to end: the
// Perfetto span file, the metrics export in both extension-selected formats,
// and the percentile table — all from one synthetic finished request.
func TestFinishObs(t *testing.T) {
	dir := t.TempDir()
	req := request.New(1, request.Chat, 0.05, 0, 8, 16, 1)
	req.AdmitTime = 0.1
	req.FirstDecodeTime = 0.2
	req.FirstTokenTime = 0.3
	req.DoneTime = 1.0
	req.Phase = request.Done
	req.Output = append(req.Output, 1, 2, 3, 4)

	spans := obs.NewSpanRecorder()
	spans.OnEvent(serve.RequestFinished{
		EventMeta: serve.EventMeta{Time: 1.0, Seq: 1},
		Req:       req, Attained: true, TTFTAttained: true,
	})
	mexp := obs.NewMetricsExporter()
	mexp.OnEvent(serve.Snapshot{
		EventMeta: serve.EventMeta{Time: 5, Seq: 2},
		Stats:     metrics.RollingStats{Running: 1},
	})
	sum := metrics.Summarize("adaserve", []*request.Request{req}, metrics.Breakdown{})

	spanPath := filepath.Join(dir, "spans.json")
	promPath := filepath.Join(dir, "run.prom")
	out := captureStdout(t, func() { finishObs(spans, spanPath, mexp, promPath, true, sum) })
	for _, w := range []string{"wrote 1 span timelines", "wrote 1 metric snapshots", "p99"} {
		if !strings.Contains(out, w) {
			t.Fatalf("finishObs output %q missing %q", out, w)
		}
	}
	span, err := os.ReadFile(spanPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{`"traceEvents"`, `"queued"`, `"decode"`} {
		if !strings.Contains(string(span), w) {
			t.Fatalf("span file missing %q", w)
		}
	}
	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "# TYPE") {
		t.Fatalf("prometheus file missing # TYPE header:\n%s", prom)
	}

	// A .json extension flips the metrics export to the JSON document.
	jsonPath := filepath.Join(dir, "metrics.json")
	out = captureStdout(t, func() { finishObs(nil, "", mexp, jsonPath, false, sum) })
	if strings.Contains(out, "span timelines") {
		t.Fatalf("nil recorder still reported spans: %q", out)
	}
	js, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("metrics .json output is not valid JSON: %v", err)
	}
	if _, ok := doc["series"]; !ok {
		t.Fatalf("metrics JSON missing series key: %v", doc)
	}
}

// TestPrintSummaries runs a short two-replica fleet and renders both report
// paths, pinning the headline lines a user scans for after a run.
func TestPrintSummaries(t *testing.T) {
	setup := experiments.Llama70B()
	roles, err := cluster.ParseSplit("1P1D")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := experiments.BuildDisagg(experiments.SysAdaServe, setup, roles, "slo-aware",
		experiments.BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(cl, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(1, 0xada))
	if err != nil {
		t.Fatal(err)
	}
	const dur = 3.0
	rate, maxRate, err := workload.RateProfile("constant", experiments.AdaptiveMeanRPS(setup), dur)
	if err != nil {
		t.Fatal(err)
	}
	src, err := serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(1, 0x7a)), rate, maxRate, dur)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := srv.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Results(rr, nil)
	// Populate the optional sections so the report renders every branch a
	// fully-featured run would.
	res.Summary.Autoscale = &metrics.AutoscaleSummary{Policy: "none"}
	res.Summary.Admission = &metrics.AdmissionSummary{}
	res.Summary.Prefix = &metrics.PrefixSummary{}
	res.Summary.Faults = &metrics.FaultSummary{}

	out := captureStdout(t, func() { printCluster(res, 2) })
	for _, w := range []string{"cluster: attainment", "goodput", "p50 TPOT", "p99 TPOT", "KV transfers:", "autoscale", "faults", "simulated:", "across 2 replicas"} {
		if !strings.Contains(out, w) {
			t.Fatalf("printCluster output missing %q:\n%s", w, out)
		}
	}

	out = captureStdout(t, func() { printSingle(res.Summary.Aggregate, rr) })
	for _, w := range []string{"throughput", "p50 TPOT", "breakdown: scheduling", "simulated:"} {
		if !strings.Contains(out, w) {
			t.Fatalf("printSingle output missing %q:\n%s", w, out)
		}
	}
}
