// adaserve-bench regenerates the paper's evaluation artifacts: for every
// table and figure it replays the corresponding workload through AdaServe
// and the baselines on the simulated substrate and prints the series the
// paper reports.
//
// Usage:
//
//	adaserve-bench                       # run every experiment
//	adaserve-bench -exp fig8 -model llama
//	adaserve-bench -exp fig10,fig11 -duration 120 -seed 7
//
// Experiments: fig1, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14,
// fig15, ablations, cluster (replica scaling × router policy), disagg
// (colocated vs prefill/decode-disaggregated fleets × router × SLO mix),
// autoscale (equal-peak static fleet vs elastic scaling policies × arrival
// profile × router, reporting goodput per replica-second), adaptive (static
// AdaServe vs closed-loop speculation tuning and overload admission under a
// flash crowd), faults (chaos sweep: replica crash, straggler and
// KV-transfer link faults × recovery modes none/retry/retry+hedge; -faults
// replaces the built-in scenarios with a custom schedule), prefix
// (shared-prefix KV caching on a multi-turn session workload: hit rate and
// TTFT attainment across caching off/on × router, including the
// prefix-affinity policy), trace (committed adversarial workload specs —
// correlated bursts, heavy-tail prompts — compiled per seed and replayed
// through static, admission-gated and autoscaled fleets).
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"

	"adaserve/internal/experiments"
	"adaserve/internal/faults"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/workload"
)

// knownExps is the one list the validation map and the error message both
// derive from; keep it in sync with the dispatch in main.
func knownExps() []string {
	return []string{"all", "fig1", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "ablations", "cluster", "disagg",
		"autoscale", "adaptive", "faults", "prefix", "trace", "hardware"}
}

// parseExps validates the comma-separated -exp list against knownExps,
// failing with a one-line error on any unknown token.
func parseExps(expFlag string) (map[string]bool, error) {
	known := map[string]bool{}
	for _, name := range knownExps() {
		known[name] = true
	}
	want := map[string]bool{}
	for _, e := range strings.Split(expFlag, ",") {
		name := strings.TrimSpace(e)
		if !known[name] {
			return nil, fmt.Errorf("unknown -exp %q (have %s)", name, strings.Join(knownExps(), ", "))
		}
		want[name] = true
	}
	return want, nil
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiments (fig1,fig7..fig15,ablations,cluster,disagg,autoscale,adaptive,faults,prefix,all)")
	modelFlag := flag.String("model", "both", "model setup: llama, qwen, or both")
	duration := flag.Float64("duration", 120, "trace duration in seconds")
	seed := flag.Uint64("seed", 1, "random seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker goroutines for independent grid points (results are identical at any value)")
	faultsFlag := flag.String("faults", "",
		`custom fault schedule for -exp faults, e.g. "crash@30+10:r0; slow@60+20:x4" (empty: built-in scenarios)`)
	flag.Parse()

	var setups []experiments.ModelSetup
	switch *modelFlag {
	case "llama":
		setups = []experiments.ModelSetup{experiments.Llama70B()}
	case "qwen":
		setups = []experiments.ModelSetup{experiments.Qwen32B()}
	case "both":
		setups = experiments.Setups()
	default:
		log.Fatalf("unknown model %q (llama, qwen, both)", *modelFlag)
	}

	want, err := parseExps(*expFlag)
	if err != nil {
		log.Fatal(err)
	}
	customFaults, err := faults.ParseSpec(*faultsFlag)
	if err != nil {
		log.Fatal(err)
	}
	all := want["all"]
	opts := experiments.RunOptions{Seed: *seed, Duration: *duration, Parallel: *parallel}

	if all || want["fig7"] {
		runFig7(*seed)
	}
	if all || want["fig13"] {
		runFig13(*seed, *duration)
	}
	for _, setup := range setups {
		fmt.Printf("\n================ %s (baseline %.1f ms/token) ================\n",
			setup.Name, 1e3*setup.BaselineLatency())
		if all || want["fig1"] {
			runFig1(setup, opts)
		}
		if all || want["fig8"] || want["fig9"] || want["fig12"] {
			runFig8912(setup, opts, all || want["fig8"], all || want["fig9"], all || want["fig12"])
		}
		if all || want["fig10"] {
			runSweep("Figure 10: urgent-request proportion (RPS=4.0)", setup, opts, experiments.Figure10, "urgent")
		}
		if all || want["fig11"] {
			runSweep("Figure 11: SLO scale (RPS=4.0, urgent=60%)", setup, opts, experiments.Figure11, "slo-scale")
		}
		if all || want["fig14"] {
			runFig14(setup, opts)
		}
		if all || want["fig15"] {
			runFig15(setup, opts)
		}
		if all || want["ablations"] {
			runAblations(setup, opts)
		}
		if all || want["cluster"] {
			runClusterScaling(setup, opts)
		}
		if all || want["disagg"] {
			runDisagg(setup, opts)
		}
		if all || want["autoscale"] {
			runAutoscale(setup, opts)
		}
		if all || want["adaptive"] {
			runAdaptive(setup, opts)
		}
		if all || want["faults"] {
			runFaults(setup, opts, customFaults)
		}
		if all || want["prefix"] {
			runPrefix(setup, opts)
		}
		if all || want["trace"] {
			runTrace(setup, opts)
		}
		if all || want["hardware"] {
			runHardware(setup)
		}
	}
}

func runClusterScaling(setup experiments.ModelSetup, opts experiments.RunOptions) {
	fmt.Printf("\n--- Replica scaling: attainment vs replica count x router (%.1f rps per replica) ---\n",
		experiments.ClusterPerReplicaRPS(setup))
	pts, err := experiments.ClusterScaling(setup, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderClusterScaling(pts))
}

func runDisagg(setup experiments.ModelSetup, opts experiments.RunOptions) {
	fmt.Printf("\n--- Disaggregated prefill/decode: 4-replica fleet splits x router x mix (%.1f rps aggregate, %s) ---\n",
		experiments.DisaggAggregateRPS(setup), experiments.DisaggLink.Name)
	pts, err := experiments.Disaggregation(setup, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderDisagg(pts))
	fmt.Println()
}

func runAutoscale(setup experiments.ModelSetup, opts experiments.RunOptions) {
	fmt.Printf("\n--- Autoscaling: equal-peak static fleet vs scaling policies x profile x router (capacity %d, cold start %.1fs) ---\n",
		experiments.AutoscaleFleet, experiments.AutoscaleColdStart(opts.Duration))
	pts, err := experiments.Autoscaling(setup, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderAutoscale(pts))
	fmt.Println()
}

func runAdaptive(setup experiments.ModelSetup, opts experiments.RunOptions) {
	fmt.Printf("\n--- Adaptive control: static vs closed-loop speculation tuning and overload admission (fleet %d, mean %.1f rps) ---\n",
		experiments.AdaptiveFleet, experiments.AdaptiveMeanRPS(setup))
	pts, err := experiments.AdaptiveControl(setup, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderAdaptive(pts))
	fmt.Println()
}

func runFaults(setup experiments.ModelSetup, opts experiments.RunOptions, custom faults.Spec) {
	fmt.Printf("\n--- Faults: failure scenarios x recovery modes (fleet %d elastic, link on 2P2D, mean %.1f rps; %.1f with hedge headroom) ---\n",
		experiments.FaultFleet, experiments.FaultMeanRPS(setup, "crash"), experiments.FaultMeanRPS(setup, "straggler"))
	var pts []experiments.FaultPoint
	var err error
	if custom.Empty() {
		pts, err = experiments.Faults(setup, opts)
	} else {
		pts, err = experiments.FaultsWithSpec(setup, custom, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderFaults(pts))
	fmt.Println()
}

func runPrefix(setup experiments.ModelSetup, opts experiments.RunOptions) {
	fmt.Printf("\n--- Prefix caching: hit rate x TTFT attainment, caching off/on x router (fleet %d, %d tenants, host tier %d blocks) ---\n",
		experiments.PrefixFleet, experiments.PrefixTenants, experiments.PrefixHostTier)
	pts, err := experiments.PrefixCaching(setup, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderPrefix(pts))
	fmt.Println()
}

func runTrace(setup experiments.ModelSetup, opts experiments.RunOptions) {
	fmt.Printf("\n--- Trace replay: committed adversarial specs x control configuration (fleet %d static, %d elastic, %s router) ---\n",
		experiments.TraceFleet, experiments.TraceCapacity, experiments.TraceRouter)
	pts, err := experiments.TraceReplay(setup, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderTrace(pts))
	fmt.Println()
}

func runHardware(setup experiments.ModelSetup) {
	fmt.Println("\n--- Hardware sensitivity: profiled budget across GPU platforms ---")
	rows, err := experiments.HardwareSensitivity(setup, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderHardware(setup, rows))
}

func runFig7(seed uint64) {
	fmt.Println("\n--- Figure 7: real-world trace shape (requests per 30s bin, mean 1 rps) ---")
	ts := workload.RealTrace(mathutil.NewRNG(seed), 1.0, 1200)
	bins := workload.BinCounts(ts, 1200, 30)
	renderSpark(bins, 30)
}

func runFig13(seed uint64, duration float64) {
	fmt.Println("\n--- Figure 13: synthetic per-category trace (requests per bin) ---")
	perCat := workload.SyntheticCategoryTrace(mathutil.NewRNG(seed), 4.0, duration)
	names := []string{"coding", "chat", "summarization"}
	for i, ts := range perCat {
		fmt.Printf("%-14s", names[i])
		renderSpark(workload.BinCounts(ts, duration, duration/20), 0)
	}
}

func renderSpark(bins []int, width int) {
	max := 1
	for _, b := range bins {
		if b > max {
			max = b
		}
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, b := range bins {
		sb.WriteRune(glyphs[b*(len(glyphs)-1)/max])
	}
	fmt.Printf("%s  (peak %d)\n", sb.String(), max)
}

func runFig1(setup experiments.ModelSetup, opts experiments.RunOptions) {
	fmt.Println("\n--- Figure 1: baselines on a two-SLO workload ---")
	pts, err := experiments.Figure1(setup, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %14s %14s %12s %12s\n",
		"system", "cat1 TPOT ms", "cat2 TPOT ms", "cat1 viol%", "cat2 viol%")
	for _, p := range pts {
		c1 := p.Sum.PerCategory[0]
		c2 := p.Sum.PerCategory[1]
		fmt.Printf("%-18s %14.1f %14.1f %12.0f %12.0f\n", p.System,
			1e3*c1.MeanTPOT, 1e3*c2.MeanTPOT,
			100*(1-c1.Attainment()), 100*(1-c2.Attainment()))
	}
}

func runFig8912(setup experiments.ModelSetup, opts experiments.RunOptions, f8, f9, f12 bool) {
	pts, err := experiments.Figure8and9(setup, opts)
	if err != nil {
		log.Fatal(err)
	}
	if f8 {
		fmt.Println("\n--- Figure 8: SLO attainment (%) vs RPS ---")
		fmt.Print(experiments.RenderSeries(pts, "rps", "attainment %",
			func(s *metrics.Summary) float64 { return 100 * s.Attainment() }))
	}
	if f9 {
		fmt.Println("\n--- Figure 9: goodput (tokens/s) vs RPS ---")
		fmt.Print(experiments.RenderSeries(pts, "rps", "goodput tok/s",
			func(s *metrics.Summary) float64 { return s.Goodput }))
	}
	if f12 {
		fmt.Println("\n--- Figure 12: mean accepted tokens per verification step vs RPS ---")
		spec := map[experiments.SystemKind]bool{}
		for _, k := range experiments.Figure12Systems() {
			spec[k] = true
		}
		var specPts []experiments.Point
		for _, p := range pts {
			if spec[p.System] {
				specPts = append(specPts, p)
			}
		}
		fmt.Print(experiments.RenderSeries(specPts, "rps", "mean acc",
			func(s *metrics.Summary) float64 { return s.MeanAcceptedPerStep }))
	}
}

type sweepFn func(experiments.ModelSetup, experiments.RunOptions) ([]experiments.Point, error)

func runSweep(title string, setup experiments.ModelSetup, opts experiments.RunOptions, fn sweepFn, xName string) {
	fmt.Println("\n--- " + title + " ---")
	pts, err := fn(setup, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderSeries(pts, xName, "attainment %",
		func(s *metrics.Summary) float64 { return 100 * s.Attainment() }))
	fmt.Println()
	fmt.Print(experiments.RenderSeries(pts, xName, "goodput tok/s",
		func(s *metrics.Summary) float64 { return s.Goodput }))
}

func runFig14(setup experiments.ModelSetup, opts experiments.RunOptions) {
	fmt.Println("\n--- Figure 14: SLO attainment under the synthetic trace ---")
	pts, err := experiments.Figure13and14(setup, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("%-18s %6.1f%%\n", p.System, 100*p.Sum.Attainment())
	}
}

func runFig15(setup experiments.ModelSetup, opts experiments.RunOptions) {
	fmt.Println("\n--- Figure 15: AdaServe latency breakdown ---")
	sum, err := experiments.Figure15(setup, opts)
	if err != nil {
		log.Fatal(err)
	}
	b := sum.Breakdown
	total := b.Total()
	fmt.Printf("scheduling %.2f%%, speculation %.1f%%, verification %.1f%% (prefill co-batched into verification)\n",
		100*b.Scheduling/total, 100*b.Speculation/total, 100*(b.Verification+b.Prefill)/total)
}

func runAblations(setup experiments.ModelSetup, opts experiments.RunOptions) {
	fmt.Println("\n--- Ablations (RPS 3.8, default mix) ---")
	rows, err := experiments.Ablations(setup, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderAblations(rows))
}
