package main

import (
	"strings"
	"testing"

	"adaserve/internal/faults"
)

// TestParseExps is the -exp validation table: every known token (including
// the autoscale experiment) parses, lists parse as sets, and any unknown
// token fails with the one-line error that names the valid set.
func TestParseExps(t *testing.T) {
	for _, name := range knownExps() {
		if _, err := parseExps(name); err != nil {
			t.Errorf("known experiment %q rejected: %v", name, err)
		}
	}
	cases := []struct {
		name    string
		exps    string
		want    []string
		wantErr string
	}{
		{name: "list", exps: "fig8,fig9,autoscale", want: []string{"fig8", "fig9", "autoscale"}},
		{name: "spaces", exps: " cluster , disagg ", want: []string{"cluster", "disagg"}},
		{name: "all", exps: "all", want: []string{"all"}},
		{name: "unknown", exps: "fig8,bogus", wantErr: `unknown -exp "bogus"`},
		{name: "near miss", exps: "autoscaling", wantErr: `unknown -exp "autoscaling"`},
		{name: "empty token", exps: "fig8,", wantErr: `unknown -exp ""`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := parseExps(c.exps)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error = %v, want one containing %q", err, c.wantErr)
				}
				if err != nil && !strings.Contains(err.Error(), "autoscale") {
					t.Fatalf("error %v does not list the valid experiments", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(c.want) {
				t.Fatalf("parsed %d experiments, want %d", len(got), len(c.want))
			}
			for _, w := range c.want {
				if !got[w] {
					t.Fatalf("parsed set %v missing %q", got, w)
				}
			}
		})
	}
}

// TestBenchFaultsFlag is the -faults validation table: the schedule is
// parsed up front, so a malformed spec exits with a one-line error before
// any experiment runs.
func TestBenchFaultsFlag(t *testing.T) {
	for _, ok := range []string{
		"",
		"crash@30+10:r0",
		"crash@30+10:r0; slow@60+20:x4; link@40+30:p0.3; hazard@0.01+10",
	} {
		if _, err := faults.ParseSpec(ok); err != nil {
			t.Errorf("valid -faults %q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{
		"crash",            // no @time
		"crash@-5",         // negative time
		"slow@1+2",         // no factor
		"link@1+2:p0.5:r1", // link is cluster-wide
		"flood@1",          // unknown kind
	} {
		if _, err := faults.ParseSpec(bad); err == nil {
			t.Errorf("malformed -faults %q accepted", bad)
		}
	}
	if _, err := parseExps("faults"); err != nil {
		t.Errorf("-exp faults rejected: %v", err)
	}
}
