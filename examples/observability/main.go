// Observability: record per-request span timelines and stream bounded-memory
// metrics from a disaggregated cluster run, then export them in the formats
// real observability stacks ingest.
//
// The example runs a 1-prefill/1-decode AdaServe pair under an open-loop
// flash crowd and subscribes the two internal/obs observers:
//
//   - a SpanRecorder assembles each request's queued → prefill →
//     KV-transfer → decode timeline from the event stream and writes it as
//     Chrome/Perfetto trace-event JSON (load spans.json in ui.perfetto.dev
//     to see every request as a swimlane), and
//   - a MetricsExporter captures the driver's periodic snapshots and writes
//     the series plus the terminal summary as Prometheus text exposition —
//     including full log-bucketed TPOT/TTFT histograms — and as JSON.
//
// Both are pure derivations of the event stream: the run is byte-identical
// with or without them, and every export is deterministic for a fixed seed.
//
// Run with: go run ./examples/observability
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"adaserve/internal/cluster"
	"adaserve/internal/experiments"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/obs"
	"adaserve/internal/serve"
	"adaserve/internal/workload"
)

const duration = 20 // simulated seconds of arrivals

func main() {
	// 1. Build a 1P1D disaggregated pair: every request prefills on replica 0,
	//    migrates its KV over the interconnect, and decodes on replica 1 — so
	//    each timeline shows all four phase kinds.
	setup := experiments.Llama70B()
	roles, err := cluster.ParseSplit("1P1D")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := experiments.BuildDisagg(experiments.SysAdaServe, setup, roles, "slo-aware",
		experiments.BuildOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.NewServer(cl, serve.Options{SnapshotEvery: 5})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Subscribe the observers before the run.
	spans := obs.NewSpanRecorder()
	mexp := obs.NewMetricsExporter()
	srv.Subscribe(spans)
	srv.Subscribe(mexp)

	// 3. Serve a spike-profile open loop at the fleet's operating point.
	gen, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(1, 0xada))
	if err != nil {
		log.Fatal(err)
	}
	rate, maxRate, err := workload.RateProfile("spike", experiments.AdaptiveMeanRPS(setup), duration)
	if err != nil {
		log.Fatal(err)
	}
	src, err := serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(1, 0x7a)), rate, maxRate, duration)
	if err != nil {
		log.Fatal(err)
	}
	rr, err := srv.Run(src)
	if err != nil {
		log.Fatal(err)
	}
	res := cl.Results(rr, nil)
	sum := res.Summary.Aggregate

	// 4. Export the span timelines as a Perfetto trace.
	var trace bytes.Buffer
	if err := spans.WriteTrace(&trace); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("spans.json", trace.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	timelines := spans.Timelines()
	transfers := 0
	for _, tl := range timelines {
		for _, p := range tl.Phases {
			if p.Name == "kv-transfer" {
				transfers++
			}
		}
	}
	fmt.Printf("spans.json: %d request timelines, %d KV-transfer spans (open in ui.perfetto.dev)\n",
		len(timelines), transfers)

	// 5. Export the metrics series both ways.
	var prom, js bytes.Buffer
	if err := mexp.WritePrometheus(&prom, sum); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("metrics.prom", prom.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := mexp.WriteJSON(&js, sum); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("metrics.json", js.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics.prom / metrics.json: %d snapshot grid points + terminal summary\n",
		len(mexp.Snapshots()))

	// 6. The same digests back the terminal percentile table — computed from
	//    fixed-size histograms, never from retained per-request slices.
	fmt.Println()
	fmt.Print(obs.PercentileTable(sum))
	fmt.Printf("\n%s\n", summaryLine(sum, rr))
}

// summaryLine condenses the run outcome to one line.
func summaryLine(sum *metrics.Summary, rr *serve.Result) string {
	return fmt.Sprintf("%d requests, attainment %.1f%%, goodput %.1f tok/s, simulated %.1fs over %d iterations",
		sum.Requests, 100*sum.Attainment(), sum.Goodput, rr.EndTime, rr.Iterations)
}
