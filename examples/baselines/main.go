// Baseline shoot-out: every serving system in the repository on the same
// multi-SLO trace — the quick way to reproduce the paper's qualitative
// ordering (AdaServe > static speculation > chunked prefill > continuous
// batching, with fairness/priority baselines unable to hold tight SLOs).
//
// Run with: go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"sort"

	"adaserve/internal/experiments"
	"adaserve/internal/mathutil"
	"adaserve/internal/request"
	"adaserve/internal/sim"
	"adaserve/internal/workload"
)

func main() {
	setup := experiments.Llama70B()
	gen, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, 11)
	if err != nil {
		log.Fatal(err)
	}
	ts := workload.RealTrace(mathutil.NewRNG(5), 4.0, 75)
	reqs := gen.FromTimestamps(ts)
	st := workload.StreamStats(reqs)
	fmt.Printf("trace: %d requests at %.1f req/s (60%% coding / 20%% chat / 20%% summarization)\n\n",
		st.Requests, st.MeanRPS)

	systems := []experiments.SystemKind{
		experiments.SysAdaServe,
		experiments.SysVLLMSpec4,
		experiments.SysVLLMSpec6,
		experiments.SysVLLMSpec8,
		experiments.SysSarathi,
		experiments.SysVLLM,
		experiments.SysVLLMPriority,
		experiments.SysFastServe,
		experiments.SysVTC,
	}

	type row struct {
		name    string
		attain  float64
		goodput float64
		acc     float64
	}
	var rows []row
	for _, kind := range systems {
		sys, err := experiments.Build(kind, setup, experiments.BuildOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		cp := make([]*request.Request, len(reqs))
		for i, r := range reqs {
			cp[i] = request.New(r.ID, r.Category, r.TPOTSLO, r.ArrivalTime, r.PromptLen, r.MaxNewTokens, r.Seed)
		}
		res, err := sim.Run(sys, cp, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		rows = append(rows, row{
			name: s.System, attain: s.Attainment(),
			goodput: s.Goodput, acc: s.MeanAcceptedPerStep,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].attain > rows[j].attain })

	fmt.Printf("%-20s %12s %14s %10s\n", "system", "attainment", "goodput tok/s", "mean acc")
	for _, r := range rows {
		fmt.Printf("%-20s %11.1f%% %14.0f %10.2f\n", r.name, 100*r.attain, r.goodput, r.acc)
	}
}
