// Multi-SLO serving: the paper's headline scenario. Three application
// classes with very different TPOT SLOs (coding copilot at 1.2x baseline,
// chatbot at 50 ms, summarization at 150 ms) share one engine; AdaServe
// serves each at exactly the speed its SLO needs, where continuous batching
// forces one uniform speed on all of them.
//
// Run with: go run ./examples/multislo
package main

import (
	"fmt"
	"log"

	"adaserve/internal/experiments"
	"adaserve/internal/mathutil"
	"adaserve/internal/request"
	"adaserve/internal/sim"
	"adaserve/internal/workload"
)

func main() {
	setup := experiments.Llama70B()
	base := setup.BaselineLatency()
	fmt.Printf("model %s, baseline %.1f ms/token\n", setup.Name, 1e3*base)
	fmt.Printf("SLOs: coding %.0f ms, chat 50 ms, summarization 150 ms\n\n", 1.2*1e3*base)

	// A bursty 90-second trace at 4 req/s, 60% coding.
	gen, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, 11)
	if err != nil {
		log.Fatal(err)
	}
	ts := workload.RealTrace(mathutil.NewRNG(5), 4.0, 90)
	reqs := gen.FromTimestamps(ts)

	for _, kind := range []experiments.SystemKind{experiments.SysAdaServe, experiments.SysVLLM} {
		sys, err := experiments.Build(kind, setup, experiments.BuildOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		cp := make([]*request.Request, len(reqs))
		for i, r := range reqs {
			cp[i] = request.New(r.ID, r.Category, r.TPOTSLO, r.ArrivalTime, r.PromptLen, r.MaxNewTokens, r.Seed)
		}
		res, err := sim.Run(sys, cp, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%s: attainment %.1f%%, goodput %.0f tok/s\n",
			s.System, 100*s.Attainment(), s.Goodput)
		for cat := request.Category(0); cat < request.Category(request.NumCategories); cat++ {
			cs := s.PerCategory[cat]
			if cs == nil {
				continue
			}
			fmt.Printf("  %-14s mean TPOT %6.1f ms  (SLO attain %.0f%%)\n",
				cat, 1e3*cs.MeanTPOT, 100*cs.Attainment())
		}
		fmt.Println()
	}
	fmt.Println("Note how AdaServe's summarization TPOT floats toward (but under) its")
	fmt.Println("relaxed 150 ms SLO — the freed budget is what keeps coding under its")
	fmt.Println("tight SLO, the fine-grained decoding-speed control of the paper.")
}
