// Prefixcache: shared-prefix KV reuse and prefix-affinity routing on a
// multi-tenant session workload.
//
// Twelve tenants each hold a multi-turn conversation against a three-replica
// AdaServe cluster. Every turn re-sends the tenant's shared system prompt
// plus the full conversation so far, so consecutive turns share a long token
// prefix — exactly what the block-hashed prefix cache (internal/kvcache)
// recognizes: an admitted request skips prefill for every prompt block whose
// content hash is already resident, and cold blocks spill to a host offload
// tier instead of being dropped.
//
// The example runs the same closed-loop workload twice — once behind the
// least-loaded router, once behind prefix-affinity, which routes each turn to
// the replica holding the longest cached prefix of its prompt — and compares
// TTFT attainment and cache economics. Affinity wins because a tenant's
// growing history lives only on the replica that served the previous turn;
// load-signal routing fragments it across the fleet.
//
// Run with: go run ./examples/prefixcache
package main

import (
	"fmt"
	"log"

	"adaserve/internal/experiments"
	"adaserve/internal/serve"
)

func runRouter(routerName string) {
	setup := experiments.Llama70B()

	// 1. The session workload: per-tenant system prompts and follow-up turns
	// (the same generator adaserve-sim's -prefix flag uses). Sampling is
	// per-session, so both routers face byte-identical offered load.
	sessions, err := experiments.NewSessions(setup, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A three-replica cluster with prefix caching and a host tier enabled
	// on every replica's KV allocator.
	cl, err := experiments.BuildCluster(experiments.SysAdaServe, setup,
		experiments.PrefixFleet, routerName, experiments.BuildOptions{
			Seed:             1,
			Prefix:           true,
			PrefixHostBlocks: experiments.PrefixHostTier,
		})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.NewServer(cl, serve.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Closed-loop submission: seed the opening turns, then submit each
	// tenant's next turn from the finish callback of the previous one.
	src := serve.NewSubmitSource()
	for _, r := range sessions.InitialRequests() {
		if err := src.Submit(r); err != nil {
			log.Fatal(err)
		}
	}
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
		e, ok := ev.(serve.RequestFinished)
		if !ok {
			return
		}
		if next := sessions.FollowUp(e.Req, e.Time); next != nil {
			if err := src.Submit(next); err != nil {
				log.Fatal(err)
			}
		}
	}))
	rr, err := srv.Run(src)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report: cluster attainment plus the cache's own accounting — hit
	// rate, prefill tokens skipped, evictions and host-tier reloads.
	s := cl.Results(rr, nil).Summary
	fmt.Printf("\n%-16s TTFT attainment %5.1f%% | goodput %6.1f tok/s | %d turns\n",
		routerName, 100*s.TTFTAttainment(), s.Goodput(), s.Aggregate.Finished)
	fmt.Printf("%-16s %s\n", "", s.Prefix)
}

func main() {
	fmt.Println("shared-prefix KV reuse: least-loaded vs prefix-affinity routing")
	for _, routerName := range []string{"least-loaded", "prefix-affinity"} {
		runRouter(routerName)
	}
}
