// Disaggregation walkthrough: serve one arrival stream with a colocated
// 4-replica AdaServe fleet and with the same four replicas split into
// dedicated prefill and decode instances, and compare TTFT/TPOT attainment,
// goodput and the KV-transfer overhead of the prefill-to-decode handoff.
//
// Run with: go run ./examples/disagg
package main

import (
	"fmt"
	"log"

	"adaserve/internal/cluster"
	"adaserve/internal/experiments"
	"adaserve/internal/mathutil"
	"adaserve/internal/request"
	"adaserve/internal/workload"
)

func main() {
	// 1. Pick the Llama-3.1-70B setup at the disaggregation experiment's
	//    aggregate load: four replicas' worth of a contended per-replica
	//    rate, offered to every fleet layout identically.
	setup := experiments.Llama70B()
	aggRPS := experiments.DisaggAggregateRPS(setup)
	fmt.Printf("model: %s, 4 replicas, %.1f req/s aggregate, link %s\n",
		setup.Name, aggRPS, experiments.DisaggLink.Name)

	// 2. Synthesize one shared trace with the default 60/20/20 mix. Every
	//    request carries both a TPOT SLO and a TTFT SLO; disaggregation
	//    changes who owns each (prefill replicas own TTFT, decode replicas
	//    own TPOT, the interconnect sits in between).
	gen, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	ts := workload.RealTrace(mathutil.NewRNG(7), aggRPS, 120)
	reqs := gen.FromTimestamps(ts)
	fmt.Printf("trace: %d requests over 120s\n\n", len(reqs))

	// 3. Replay the identical trace through each fleet layout behind the
	//    slo-aware router (which balances prompt backlog across prefill
	//    replicas and per-class residency across decode replicas).
	for _, split := range experiments.DisaggSplits() {
		var cl *cluster.Cluster
		if split == "colocated" {
			cl, err = experiments.BuildCluster(experiments.SysAdaServe, setup, 4,
				"slo-aware", experiments.BuildOptions{Seed: 1})
		} else {
			var roles []cluster.Role
			roles, err = cluster.ParseSplit(split)
			if err == nil {
				cl, err = experiments.BuildDisagg(experiments.SysAdaServe, setup, roles,
					"slo-aware", experiments.BuildOptions{Seed: 1})
			}
		}
		if err != nil {
			log.Fatal(err)
		}
		res, err := cl.Run(request.CloneAll(reqs), cluster.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-10s TTFT attain %5.1f%% | TPOT attain %5.1f%% | goodput %7.1f tok/s",
			split, 100*s.TTFTAttainment(), 100*s.Attainment(), s.Goodput())
		if s.Transfer.Count > 0 {
			fmt.Printf(" | %d transfers, mean %.1f ms", s.Transfer.Count, 1e3*s.Transfer.MeanLatency())
		}
		fmt.Println()
	}

	// 4. Rerun the balanced split and show the per-role view: who served
	//    which stage, and how attainment splits across the fleet.
	fmt.Println("\nper-role detail (2P2D, slo-aware):")
	roles, err := cluster.ParseSplit("2P2D")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := experiments.BuildDisagg(experiments.SysAdaServe, setup, roles,
		"slo-aware", experiments.BuildOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := cl.Run(reqs, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	stage := func(n int, noun, metric string, attain float64) string {
		if n == 0 {
			return fmt.Sprintf("%4d %s", n, noun)
		}
		return fmt.Sprintf("%4d %s (%s %5.1f%%)", n, noun, metric, 100*attain)
	}
	for _, rs := range res.Summary.Roles {
		fmt.Printf("  role %-8s x%d: %s, %s\n", rs.Role, rs.Replicas,
			stage(rs.PrefillRequests, "prefills", "TTFT attain", rs.TTFTAttainment()),
			stage(rs.DecodeRequests, "decodes", "TPOT attain", rs.TPOTAttainment()))
	}
	for _, rr := range res.PerReplica {
		s := rr.Summary
		fmt.Printf("  %s: %3d reqs, %4d iterations, local end %.1fs\n",
			s.System, s.Requests, rr.Iterations, rr.EndTime)
	}
}
