// Traces: compile a declarative workload spec into a versioned trace,
// replay it through a small AdaServe cluster, export the run's admitted
// arrival stream back to a trace, and replay the export through a fresh
// identically built cluster to show the loop closes: the second export is
// byte-identical to the first.
//
// Run with: go run ./examples/traces
package main

import (
	"fmt"
	"log"

	"adaserve/internal/experiments"
	"adaserve/internal/serve"
	"adaserve/internal/trace"
)

// spec is a two-cohort scenario: a steady coding cohort and a chat cohort
// arriving in correlated 10-second bursts.
const spec = `#adaserve-spec v1
#meta seed 7
#meta duration 40
#meta name example
cohort ide class=coding rate=2 arrival=poisson prompt=lognormal:160,0.45,32,1024 output=lognormal:90,0.5,16,512
cohort flash class=chat arrival=bursts:10,24,1 prompt=fixed:64 output=fixed:96 tenants=4
`

func main() {
	// 1. Parse the spec and compile it against the Llama-3.1-70B setup: class
	//    SLOs resolve from the baseline decode latency, and every sample —
	//    arrival instants, lengths, tenant tags — is drawn from per-cohort
	//    seeded streams, so the same (spec, seed) always compiles to the same
	//    trace.
	setup := experiments.Llama70B()
	sp, err := trace.ParseSpec(spec)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Compile(sp, trace.CompileOptions{BaselineLatency: setup.BaselineLatency()})
	if err != nil {
		log.Fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("compiled %q: %d arrivals over %.1fs (mean %.2f rps, %d classes)\n",
		sp.Name, st.Arrivals, tr.Duration(), st.MeanRPS, len(tr.Header.Classes))

	// 2. Replay it through a 2-replica AdaServe cluster, recording every
	//    admitted arrival with an export observer. runOnce is reused for the
	//    replay leg below: same build, same seed, different source.
	runOnce := func(src serve.Source) *trace.Trace {
		cl, err := experiments.BuildCluster(experiments.SysAdaServe, setup, 2, "slo-aware",
			experiments.BuildOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		srv, err := serve.NewServer(cl, serve.Options{})
		if err != nil {
			log.Fatal(err)
		}
		exp := trace.NewExporter(trace.ExportOptions{Seed: tr.Header.Seed, Source: "export:example"})
		srv.Subscribe(exp)
		rr, err := srv.Run(src)
		if err != nil {
			log.Fatal(err)
		}
		res := cl.Results(rr, nil)
		fmt.Printf("  served %d requests: attainment %.1f%%, goodput %.1f tok/s\n",
			res.Summary.Aggregate.Requests, 100*res.Summary.Attainment(), res.Summary.Goodput())
		out, err := exp.Trace()
		if err != nil {
			log.Fatal(err)
		}
		return out
	}
	src, err := trace.NewSource(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreplaying the compiled trace:")
	exported := runOnce(src)

	// 3. Round-trip the export through its file form — Format is canonical,
	//    so parse(format(t)) is t — and replay it through a fresh cluster.
	parsed, err := trace.Parse(exported.Format())
	if err != nil {
		log.Fatal(err)
	}
	replaySrc, err := trace.NewSource(parsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreplaying the exported trace:")
	replayed := runOnce(replaySrc)

	// 4. The loop closes: the replayed run admitted exactly the arrivals the
	//    original exported, so its own export is byte-identical.
	if replayed.Format() != exported.Format() {
		log.Fatal("export→replay loop did not close")
	}
	fmt.Printf("\nexport→replay loop closed: both exports are identical (%d arrivals, %d bytes)\n",
		len(exported.Arrivals), len(exported.Format()))
}
