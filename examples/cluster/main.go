// Cluster walkthrough: serve one global arrival stream with a 4-replica
// AdaServe cluster under each router policy and compare cluster-aggregate
// SLO attainment, goodput and per-replica balance.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"adaserve/internal/cluster"
	"adaserve/internal/experiments"
	"adaserve/internal/mathutil"
	"adaserve/internal/request"
	"adaserve/internal/workload"
)

func main() {
	// 1. Pick the Llama-3.1-70B setup and a 4-replica deployment at a
	//    contended per-replica load (3.8 req/s each, 15.2 req/s total).
	setup := experiments.Llama70B()
	const replicas = 4
	const perReplicaRPS = 3.8
	fmt.Printf("model: %s, %d replicas, %.1f req/s per replica\n",
		setup.Name, replicas, perReplicaRPS)

	// 2. Synthesize one shared trace: a bursty real-world arrival shape
	//    with the default 60/20/20 coding/chat/summarization mix.
	gen, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	ts := workload.RealTrace(mathutil.NewRNG(7), perReplicaRPS*replicas, 120)
	reqs := gen.FromTimestamps(ts)
	fmt.Printf("trace: %d requests over 120s\n\n", len(reqs))

	// 3. Replay the identical trace through each router policy. Every run
	//    builds a fresh cluster (replicas and requests are single-use).
	for _, routerName := range cluster.RouterNames() {
		cl, err := experiments.BuildCluster(experiments.SysAdaServe, setup, replicas,
			routerName, experiments.BuildOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		res, err := cl.Run(request.CloneAll(reqs), cluster.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-14s attainment %5.1f%% | goodput %7.1f tok/s | imbalance %.2f\n",
			routerName, 100*s.Attainment(), s.Goodput(), s.RequestImbalance())
	}

	// 4. Rerun the winner and show its per-replica breakdown.
	fmt.Println("\nper-replica detail (slo-aware):")
	cl, err := experiments.BuildCluster(experiments.SysAdaServe, setup, replicas,
		"slo-aware", experiments.BuildOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := cl.Run(reqs, cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, rr := range res.PerReplica {
		s := rr.Summary
		fmt.Printf("  %s: %3d reqs, attain %5.1f%%, %4d iterations, local end %.1fs\n",
			s.System, s.Requests, 100*s.Attainment(), rr.Iterations, rr.EndTime)
	}
}
