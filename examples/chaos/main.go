// Chaos walkthrough: inject a replica crash and a straggler into an elastic
// AdaServe fleet, watch the failure lifecycle on the event stream, and
// compare what each recovery mode buys back.
//
// A crash freezes a replica mid-run: its queued and running requests — and
// all their cached KV — are gone. With no recovery those requests simply
// never finish (every one is an SLO violation). With retry, timeout
// detection harvests the frozen pool and re-dispatches it across the
// survivors with budgeted exponential backoff, while the autoscaler
// provisions replacement capacity as if the crash had been an organic
// scale-down. With retry+hedge, requests whose TTFT deadline is at risk on
// a suspect replica additionally race a duplicate on a healthy one — first
// finish wins, the loser is cancelled but billed. Hedging is the only mode
// that helps against a straggler: a slowed-but-alive replica never trips
// timeout detection.
//
// Every fault instant, detection, retry and hedge is a pure function of the
// seed: rerun this example and you get byte-identical output.
//
// Run with: go run ./examples/chaos
package main

import (
	"fmt"
	"log"

	"adaserve/internal/autoscale"
	"adaserve/internal/cluster"
	"adaserve/internal/experiments"
	"adaserve/internal/faults"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/serve"
	"adaserve/internal/workload"
)

const (
	duration = 60.0
	capacity = experiments.FaultFleet
	active   = experiments.FaultInitialActive
)

// source builds the steady open-loop arrival stream at the scenario's
// operating point. Every run gets a fresh source seeded identically, so all
// recovery modes face the same requests at the same instants.
func source(setup experiments.ModelSetup, scenario string) (*serve.OpenLoop, error) {
	rate, maxRate, err := workload.RateProfile("constant", experiments.FaultMeanRPS(setup, scenario), duration)
	if err != nil {
		return nil, err
	}
	gen, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(1, 0xfa))
	if err != nil {
		return nil, err
	}
	return serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(1, 0x7a)), rate, maxRate, duration)
}

// run serves the stream against the given fault schedule under one recovery
// mode, optionally narrating the failure lifecycle.
func run(setup experiments.ModelSetup, scenario, spec string, recovery faults.Recovery, narrate bool) (*metrics.ClusterSummary, error) {
	src, err := source(setup, scenario)
	if err != nil {
		return nil, err
	}
	cl, err := experiments.BuildElasticCluster(experiments.SysAdaServe, setup, capacity,
		experiments.FaultRouter, cluster.ElasticOptions{
			ColdStart:     experiments.AutoscaleColdStart(duration),
			InitialActive: active,
		}, experiments.BuildOptions{Seed: 1})
	if err != nil {
		return nil, err
	}
	policy, err := autoscale.NewPolicy("rate-prop")
	if err != nil {
		return nil, err
	}
	ctrl, err := autoscale.New(cl, policy, autoscale.Options{
		Interval: experiments.AutoscaleInterval(duration),
		Window:   experiments.AutoscaleWindow(duration),
	})
	if err != nil {
		return nil, err
	}
	parsed, err := faults.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	inj, err := faults.New(cl, parsed, faults.Options{Seed: 1, Horizon: duration, Recovery: recovery})
	if err != nil {
		return nil, err
	}
	srv, err := serve.NewServer(cl, serve.Options{Autoscaler: ctrl, Faults: inj})
	if err != nil {
		return nil, err
	}
	if narrate {
		hedges := 0
		srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
			switch e := ev.(type) {
			case serve.ReplicaFailed:
				fmt.Printf("  t=%6.1fs  replica %d crashed (%s): %d resident requests frozen\n",
					e.Time, e.Instance, e.Reason, e.Lost)
			case serve.ReplicaRecovered:
				fmt.Printf("  t=%6.1fs  replica %d recovered after %.1fs down\n",
					e.Time, e.Instance, e.Downtime)
			case serve.RequestRetried:
				fmt.Printf("  t=%6.1fs  request %d retried (attempt %d) on replica %d\n",
					e.Time, e.Req.ID, e.Attempt, e.Instance)
			case serve.RequestHedged:
				if hedges++; hedges <= 5 {
					fmt.Printf("  t=%6.1fs  request %d hedged onto replica %d\n",
						e.Time, e.Req.ID, e.Instance)
				} else if hedges == 6 {
					fmt.Println("  ... (further hedges elided)")
				}
			case serve.ScaleUp:
				fmt.Printf("  t=%6.1fs  +replica %d -> fleet %d  (%s)\n",
					e.Time, e.Action.Instance, e.Action.Fleet, e.Action.Reason)
			}
		}))
	}
	rr, err := srv.Run(src)
	if err != nil {
		return nil, err
	}
	res := cl.Results(rr, nil)
	sum := inj.Summary(rr.EndTime)
	res.Summary.Faults = &sum
	return res.Summary, nil
}

// compare prints the recovery-mode table for one fault schedule.
func compare(setup experiments.ModelSetup, scenario, title, spec string) {
	fmt.Printf("\n%s (%s, %.1f req/s):\n", title, spec, experiments.FaultMeanRPS(setup, scenario))
	fmt.Printf("%-14s %10s %10s %10s %6s %8s %7s\n",
		"recovery", "goodput", "attain %", "maxTTFT", "lost", "retried", "hedged")
	for _, rec := range []faults.Recovery{faults.RecoveryNone, faults.RecoveryRetry, faults.RecoveryRetryHedge} {
		sum, err := run(setup, scenario, spec, rec, false)
		if err != nil {
			log.Fatal(err)
		}
		f := sum.Faults
		fmt.Printf("%-14s %10.1f %10.1f %10.2f %6d %8d %7d\n",
			rec, sum.Goodput(), 100*sum.Attainment(), sum.Aggregate.MaxTTFT,
			f.LostRequests, f.Retried, f.Hedged)
	}
}

func main() {
	setup := experiments.Llama70B()
	fmt.Printf("model: %s | constant load over %.0fs | fleet %d of %d active\n",
		setup.Name, duration, active, capacity)

	// 1. Watch one crash's full lifecycle: injection, detection + harvest,
	//    backed-off retries, autoscale-driven replacement, repair.
	crash := "crash@15+10:r0"
	fmt.Printf("\nfailure lifecycle under retry+hedge (%s):\n", crash)
	if _, err := run(setup, "crash", crash, faults.RecoveryRetryHedge, true); err != nil {
		log.Fatal(err)
	}

	// 2. Compare recovery modes on the crash (at the contended operating
	//    point) and on a straggler (with the headroom hedging races in).
	compare(setup, "crash", "replica crash", crash)
	compare(setup, "straggler", "6x straggler", "slow@15+30:r0:x6")

	fmt.Println("\nRetry recovers the crash's lost requests — goodput and attainment return.")
	fmt.Println("Against the straggler only hedging helps: the replica is alive, so timeout")
	fmt.Println("detection never fires, but duplicates racing on healthy replicas put a")
	fmt.Println("bound back on the worst-case TTFT.")
}
