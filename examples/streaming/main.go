// Streaming: drive AdaServe through the event-driven serving API
// (internal/serve) with programmatic request submission instead of a
// pre-built trace.
//
// The example plays a multi-turn chat: an opening request per user is
// Submitted up front, and every time a turn finishes an observer callback
// submits the user's follow-up turn after a think-time pause — request
// arrivals depend on earlier completions, which no closed trace replay can
// express. The same observer prints the per-request lifecycle (admission,
// first token, token progress, SLO violations, completion) and the driver's
// periodic rolling-metric snapshots.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"adaserve/internal/experiments"
	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/serve"
	"adaserve/internal/workload"
)

const (
	users     = 4   // concurrent chat users
	turns     = 3   // turns per user
	thinkTime = 2.5 // seconds between a reply and the user's next turn
)

func main() {
	// 1. Build the serving system and wrap it as a single-instance backend.
	setup := experiments.Llama70B()
	sys, err := experiments.Build(experiments.SysAdaServe, setup, experiments.BuildOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.NewServer(serve.SingleSystem(sys), serve.Options{
		SnapshotEvery: 5, // rolling-metric snapshot every 5 simulated seconds
		Window:        10,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. A SubmitSource feeds the driver programmatically. Seed it with one
	//    opening turn per user.
	gen, err := experiments.NewGenerator(setup, workload.Mix{0, 1, 0}, 1.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	src := serve.NewSubmitSource()
	turn := map[int]int{} // request ID -> turn number
	for u := 0; u < users; u++ {
		r := gen.MakeAt(request.Chat, 0.3*float64(u))
		turn[r.ID] = 1
		if err := src.Submit(r); err != nil {
			log.Fatal(err)
		}
	}

	// 3. The observer narrates the lifecycle and, on each finished turn,
	//    submits the user's next one — submission from inside a callback is
	//    the streaming API's whole point.
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
		switch e := ev.(type) {
		case serve.RequestAdmitted:
			fmt.Printf("[t=%6.2fs] turn %d of req %-3d admitted (prompt %d tok)\n",
				e.Time, turn[e.Req.ID], e.Req.ID, e.Req.PromptLen)
		case serve.FirstToken:
			fmt.Printf("[t=%6.2fs] req %-3d first token after %.0f ms\n",
				e.Time, e.Req.ID, 1e3*e.TTFT)
		case serve.SLOViolated:
			fmt.Printf("[t=%6.2fs] req %-3d missed its %s SLO\n", e.Time, e.Req.ID, e.Kind)
		case serve.RequestFinished:
			verdict := "met SLO"
			if !e.Attained {
				verdict = "MISSED SLO"
			}
			fmt.Printf("[t=%6.2fs] req %-3d finished: %d tok, avg TPOT %.1f ms (%s)\n",
				e.Time, e.Req.ID, e.Req.OutputLen(), 1e3*e.TPOT, verdict)
			if t := turn[e.Req.ID]; t < turns {
				next := gen.MakeAt(request.Chat, e.Time+thinkTime)
				turn[next.ID] = t + 1
				if err := src.Submit(next); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("[t=%6.2fs]   ... user types turn %d (req %d) arriving t=%.2fs\n",
					e.Time, t+1, next.ID, next.ArrivalTime)
			}
		case serve.Snapshot:
			s := e.Stats
			fmt.Printf("[t=%6.2fs] -- snapshot: %d running, %d finished, attain %.0f%%, window goodput %.1f tok/s\n",
				e.Time, s.Running, s.Finished, 100*s.Attainment(), s.WindowGoodput)
		}
	}))

	// 4. Run to completion: the driver drains submissions, callbacks keep
	//    feeding it, and the run ends when the last turn retires.
	rr, err := srv.Run(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	sum := metrics.Summarize(sys.Name(), sys.Pool().Done(), rr.Breakdown)
	fmt.Println(sum)
	fmt.Printf("\n%d turns across %d users, %d events streamed, simulated %.1fs over %d iterations\n",
		users*turns, users, rr.Events, rr.EndTime, rr.Iterations)
}
