// Quickstart: serve a small multi-SLO workload with AdaServe and print the
// attainment, goodput and per-category latency summary.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adaserve/internal/experiments"
	"adaserve/internal/mathutil"
	"adaserve/internal/sim"
	"adaserve/internal/workload"
)

func main() {
	// 1. Pick the Llama-3.1-70B setup from Table 1 (4-way TP on 4xA100).
	setup := experiments.Llama70B()
	fmt.Printf("model: %s, baseline decode latency: %.1f ms/token\n",
		setup.Name, 1e3*setup.BaselineLatency())

	// 2. Build the AdaServe serving system on the simulated substrate.
	sys, err := experiments.Build(experiments.SysAdaServe, setup, experiments.BuildOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Synthesize a 60-second three-category trace at 3.5 req/s
	//    (60% coding copilot, 20% chatbot, 20% summarization — Table 2).
	gen, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, 42)
	if err != nil {
		log.Fatal(err)
	}
	ts := workload.RealTrace(mathutil.NewRNG(7), 3.5, 60)
	reqs := gen.FromTimestamps(ts)
	st := workload.StreamStats(reqs)
	fmt.Printf("trace: %d requests, %.1f req/s, mean prompt %.0f tok, mean output %.0f tok\n",
		st.Requests, st.MeanRPS, st.MeanPrompt, st.MeanOutput)

	// 4. Replay the trace to completion and report.
	res, err := sim.Run(sys, reqs, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.Summary)
	fmt.Printf("\niterations: %d, simulated end: %.1fs\n", res.Iterations, res.EndTime)
	fmt.Printf("breakdown: scheduling %.2f%%, speculation %.1f%%, verification %.1f%%, prefill %.1f%%\n",
		100*res.Summary.Breakdown.SchedulingShare(),
		100*res.Summary.Breakdown.Speculation/res.Summary.Breakdown.Total(),
		100*res.Summary.Breakdown.Verification/res.Summary.Breakdown.Total(),
		100*res.Summary.Breakdown.Prefill/res.Summary.Breakdown.Total())
}
