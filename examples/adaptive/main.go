// Adaptive speculation control: shows Eq. 8-9 in action. As the active
// request count n rises, AdaServe shrinks the beam depth d and width w so
// speculative work stays inside the verification budget; a static
// configuration wastes draft compute at high load and under-speculates at
// low load.
//
// The last section closes the loop at runtime: a controller subscribed to
// the serving event stream retunes the envelope the per-iteration law works
// within, and an admission gate sheds the part of a flash crowd the fleet
// provably cannot serve — degrading first, rejecting only at saturation.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"adaserve/internal/adaptive"
	"adaserve/internal/cluster"
	"adaserve/internal/core"
	"adaserve/internal/experiments"
	"adaserve/internal/gpu"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sched"
	"adaserve/internal/serve"
	"adaserve/internal/sim"
	"adaserve/internal/workload"
)

func main() {
	setup := experiments.Llama70B()

	// 1. The control law itself: profile the verifier, derive the budget,
	//    and print (d, w) across load levels.
	cm := gpu.MustCostModel(setup.HW, setup.Target, setup.TargetTP)
	prof, err := gpu.ProfileCostModel(cm, 4096, 512)
	if err != nil {
		log.Fatal(err)
	}
	budget := prof.BudgetFor(1.3 * prof.Base)
	ctrl := core.DefaultController(budget)
	fmt.Printf("profiled verifier: base %.1f ms, knee %d tokens, budget B=%d\n\n",
		1e3*prof.Base, prof.Knee, budget)
	fmt.Println("active requests n ->  depth d, width w   (Eq. 8-9)")
	for _, n := range []int{1, 4, 8, 16, 32, 64, 128} {
		d, w := ctrl.Params(n)
		fmt.Printf("  n = %3d            ->  d = %d, w = %d\n", n, d, w)
	}

	// 2. End to end: adaptive vs static speculation under a load burst.
	gen, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, 11)
	if err != nil {
		log.Fatal(err)
	}
	ts := workload.RealTrace(mathutil.NewRNG(5), 4.2, 75)
	reqs := gen.FromTimestamps(ts)

	run := func(name string, opts experiments.BuildOptions) {
		sys, err := experiments.Build(experiments.SysAdaServe, setup, opts)
		if err != nil {
			log.Fatal(err)
		}
		cp := make([]*request.Request, len(reqs))
		for i, r := range reqs {
			cp[i] = request.New(r.ID, r.Category, r.TPOTSLO, r.ArrivalTime, r.PromptLen, r.MaxNewTokens, r.Seed)
		}
		res, err := sim.Run(sys, cp, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		extra := ""
		if a, ok := sys.(*sched.AdaServe); ok && a.Debug.DecodeIters > 0 {
			extra = fmt.Sprintf("  (avg depth %.1f)",
				float64(a.Debug.SumDepth)/float64(a.Debug.DecodeIters))
		}
		fmt.Printf("%-22s attainment %5.1f%%, goodput %5.0f tok/s, mean acc %.2f%s\n",
			name, 100*s.Attainment(), s.Goodput, s.MeanAcceptedPerStep, extra)
	}

	fmt.Println("\nadaptive vs static speculation at 4.2 req/s:")
	run("adaptive (Eq. 8-9)", experiments.BuildOptions{Seed: 1})
	run("static d=2 w=1", experiments.BuildOptions{Seed: 1, StaticD: 2, StaticW: 1})
	run("static d=8 w=4", experiments.BuildOptions{Seed: 1, StaticD: 8, StaticW: 4})

	// 3. The closed loop at runtime: a two-replica fleet under a flash crowd
	//    (spike profile, burst ~5.6x the mean), with and without the
	//    controller gating admission and retuning the envelope ceilings.
	const duration = 30.0
	mean := experiments.AdaptiveMeanRPS(setup)
	fmt.Printf("\nflash crowd on a %d-replica fleet (mean %.1f rps, spike burst):\n",
		experiments.AdaptiveFleet, mean)
	closed := func(name string, cfg *adaptive.Config) {
		rate, maxRate, err := workload.RateProfile("spike", mean, duration)
		if err != nil {
			log.Fatal(err)
		}
		gen2, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(1, 0xada))
		if err != nil {
			log.Fatal(err)
		}
		src, err := serve.NewOpenLoop(gen2, mathutil.NewRNG(mathutil.Hash2(1, 0x7a)), rate, maxRate, duration)
		if err != nil {
			log.Fatal(err)
		}
		cl, err := experiments.BuildCluster(experiments.SysAdaServe, setup,
			experiments.AdaptiveFleet, experiments.AdaptiveRouter, experiments.BuildOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		opts := serve.Options{}
		var actrl *adaptive.Controller
		if cfg != nil {
			if actrl, err = adaptive.New(cl, *cfg); err != nil {
				log.Fatal(err)
			}
			opts.Adaptive = actrl
		}
		srv, err := serve.NewServer(cl, opts)
		if err != nil {
			log.Fatal(err)
		}
		rr, err := srv.Run(src)
		if err != nil {
			log.Fatal(err)
		}
		s := res2sum(cl, rr)
		fmt.Printf("%-22s attainment %5.1f%%, goodput %5.0f tok/s, max TTFT %.2fs",
			name, 100*s.Attainment(), s.Goodput(), s.Aggregate.MaxTTFT)
		if actrl != nil {
			a := actrl.Summary()
			d, w := actrl.Envelope()
			fmt.Printf("  (%d degraded, %d rejected; envelope d<=%d w<=%d)", a.Degraded, a.Rejected, d, w)
		}
		fmt.Println()
	}
	closed("static", nil)
	cfg, err := experiments.AdaptiveConfig("adaptive+admission", duration)
	if err != nil {
		log.Fatal(err)
	}
	closed("closed loop + gate", cfg)
}

// res2sum aggregates a cluster run over its admitted requests.
func res2sum(cl *cluster.Cluster, rr *serve.Result) *metrics.ClusterSummary {
	return cl.Results(rr, nil).Summary
}
