// Autoscaling walkthrough: serve one diurnal open-loop arrival stream with
// an equal-peak static 4-replica fleet and with an elastic fleet under each
// scaling policy, then compare the cost-efficiency headline — goodput per
// replica-second — and watch one elastic run's scale timeline.
//
// The static fleet is what a peak-capacity planner deploys: it meets the
// midday swell and then idles three replicas through the trough. The
// elastic fleet starts at one replica and lets the policy buy capacity only
// while the swell needs it, paying a provisioning cold start on every
// scale-up and draining (migrating waiting requests) on every scale-down.
//
// Run with: go run ./examples/autoscale
package main

import (
	"fmt"
	"log"

	"adaserve/internal/autoscale"
	"adaserve/internal/cluster"
	"adaserve/internal/experiments"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/serve"
	"adaserve/internal/workload"
)

const (
	duration = 120.0
	capacity = experiments.AutoscaleFleet
)

// source builds the diurnal open-loop arrival stream. Every run gets a
// fresh source seeded identically, so all configurations face the same
// requests at the same instants.
func source(setup experiments.ModelSetup) (*serve.OpenLoop, error) {
	mean, err := experiments.AutoscaleMeanRPS(setup, "diurnal")
	if err != nil {
		return nil, err
	}
	rate, maxRate, err := workload.RateProfile("diurnal", mean, duration)
	if err != nil {
		return nil, err
	}
	gen, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(1, 0x51e))
	if err != nil {
		return nil, err
	}
	return serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(1, 0x7a)), rate, maxRate, duration)
}

// run serves the stream with the named configuration ("static" or a policy
// name) and returns the cluster summary, optionally logging scale events.
func run(setup experiments.ModelSetup, config string, logScale bool) (*metrics.ClusterSummary, error) {
	src, err := source(setup)
	if err != nil {
		return nil, err
	}
	var cl *cluster.Cluster
	opts := serve.Options{}
	if config == "static" {
		cl, err = experiments.BuildCluster(experiments.SysAdaServe, setup, capacity,
			"least-loaded", experiments.BuildOptions{Seed: 1})
	} else {
		cl, err = experiments.BuildElasticCluster(experiments.SysAdaServe, setup, capacity,
			"least-loaded", cluster.ElasticOptions{
				ColdStart:     experiments.AutoscaleColdStart(duration),
				InitialActive: 1,
			}, experiments.BuildOptions{Seed: 1})
		if err != nil {
			return nil, err
		}
		policy, err := autoscale.NewPolicy(config)
		if err != nil {
			return nil, err
		}
		ctrl, err := autoscale.New(cl, policy, autoscale.Options{
			Interval: experiments.AutoscaleInterval(duration),
			Window:   experiments.AutoscaleWindow(duration),
		})
		if err != nil {
			return nil, err
		}
		opts.Autoscaler = ctrl
	}
	if err != nil {
		return nil, err
	}
	srv, err := serve.NewServer(cl, opts)
	if err != nil {
		return nil, err
	}
	if logScale {
		srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
			switch e := ev.(type) {
			case serve.ScaleUp:
				fmt.Printf("  t=%6.1fs  +replica %d -> fleet %d  (%s)\n",
					e.Time, e.Action.Instance, e.Action.Fleet, e.Action.Reason)
			case serve.ScaleDown:
				fmt.Printf("  t=%6.1fs  -replica %d -> fleet %d  (%s)\n",
					e.Time, e.Action.Instance, e.Action.Fleet, e.Action.Reason)
			}
		}))
	}
	rr, err := srv.Run(src)
	if err != nil {
		return nil, err
	}
	res := cl.Results(rr, nil)
	res.Summary.Autoscale.Policy = config
	return res.Summary, nil
}

func main() {
	setup := experiments.Llama70B()
	mean, err := experiments.AutoscaleMeanRPS(setup, "diurnal")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s | diurnal load, mean %.1f req/s over %.0fs | capacity %d replicas\n\n",
		setup.Name, mean, duration, capacity)

	// 1. Watch one elastic run's scale timeline: the fleet follows the
	//    sinusoidal swell up and back down.
	fmt.Println("rate-prop scale timeline:")
	if _, err := run(setup, "rate-prop", true); err != nil {
		log.Fatal(err)
	}

	// 2. Compare every configuration on the cost-efficiency headline.
	fmt.Printf("\n%-14s %10s %12s %16s %12s\n",
		"config", "attain %", "replica-s", "good tok/repl-s", "fleet range")
	for _, config := range experiments.AutoscaleConfigs() {
		sum, err := run(setup, config, false)
		if err != nil {
			log.Fatal(err)
		}
		a := sum.Autoscale
		fmt.Printf("%-14s %10.1f %12.1f %16.2f %9d-%d\n",
			config, 100*sum.Attainment(), a.ReplicaSeconds,
			a.GoodputPerReplicaSecond(), a.MinReplicas, a.PeakReplicas)
	}
	fmt.Println("\nThe elastic fleets trade a few attainment points during cold starts for a")
	fmt.Println("fraction of the static fleet's replica-seconds: goodput per replica-second")
	fmt.Println("— the bill a serving operator actually pays — improves accordingly.")
}
