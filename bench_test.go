// Package adaserve_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`), plus microbenchmarks of the hot paths.
//
// Each BenchmarkFigureN emits one sub-benchmark per (system, sweep point)
// cell and reports the paper's metrics (attainment %, goodput tokens/s,
// mean accepted tokens) via b.ReportMetric, so the full series can be read
// straight from the benchmark output. Trace durations are kept short (the
// paper replays 20-minute traces; EXPERIMENTS.md documents the rescaling).
package adaserve_test

import (
	"fmt"
	"runtime"
	"testing"

	"adaserve/internal/core"
	"adaserve/internal/engine"
	"adaserve/internal/experiments"
	"adaserve/internal/gpu"
	"adaserve/internal/lm"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/obs"
	"adaserve/internal/request"
	"adaserve/internal/serve"
	"adaserve/internal/sim"
	"adaserve/internal/toktree"
	"adaserve/internal/workload"
)

// benchDuration is the trace length used by the figure benchmarks.
const benchDuration = 20.0

// runCell replays one (system, workload) cell and reports its metrics.
func runCell(b *testing.B, kind experiments.SystemKind, setup experiments.ModelSetup,
	reqs []*request.Request, build experiments.BuildOptions) {
	b.Helper()
	var sum *metrics.Summary
	for i := 0; i < b.N; i++ {
		sys, err := experiments.Build(kind, setup, build)
		if err != nil {
			b.Fatal(err)
		}
		cp := make([]*request.Request, len(reqs))
		for j, r := range reqs {
			cp[j] = request.New(r.ID, r.Category, r.TPOTSLO, r.ArrivalTime, r.PromptLen, r.MaxNewTokens, r.Seed)
		}
		res, err := sim.Run(sys, cp, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		sum = res.Summary
	}
	b.ReportMetric(100*sum.Attainment(), "attain%")
	b.ReportMetric(sum.Goodput, "goodput_tok/s")
	b.ReportMetric(sum.MeanAcceptedPerStep, "mean_acc")
}

// trace synthesizes the standard real-shape trace for a cell.
func trace(b *testing.B, setup experiments.ModelSetup, mix workload.Mix, scale, rps float64) []*request.Request {
	b.Helper()
	gen, err := experiments.NewGenerator(setup, mix, scale, mathutil.Hash2(1, 0x77a1))
	if err != nil {
		b.Fatal(err)
	}
	ts := workload.RealTrace(mathutil.NewRNG(mathutil.Hash2(1, 0x7071)), rps, benchDuration)
	return gen.FromTimestamps(ts)
}

// BenchmarkFigure1 reproduces the motivating study: five baseline systems on
// a two-SLO workload (Figure 1).
func BenchmarkFigure1(b *testing.B) {
	setup := experiments.Llama70B()
	reqs := trace(b, setup, workload.Mix{0.5, 0.5, 0}, 1.0, 3.0)
	for _, kind := range experiments.Figure1Systems() {
		b.Run(string(kind), func(b *testing.B) {
			runCell(b, kind, setup, reqs, experiments.BuildOptions{Seed: 1})
		})
	}
}

// figureSweep runs the Figure 8/9/12 RPS sweep for one model setup.
func figureSweep(b *testing.B, setup experiments.ModelSetup, systems []experiments.SystemKind) {
	for _, rps := range experiments.RPSSweepsForSetup(setup) {
		reqs := trace(b, setup, workload.DefaultMix, 1.0, rps)
		for _, kind := range systems {
			b.Run(fmt.Sprintf("%s/rps=%.1f", kind, rps), func(b *testing.B) {
				runCell(b, kind, setup, reqs, experiments.BuildOptions{Seed: 1})
			})
		}
	}
}

// BenchmarkFigure8and9Llama sweeps request rate on Llama-70B: SLO attainment
// (Figure 8) and goodput (Figure 9) come from the reported metrics.
func BenchmarkFigure8and9Llama(b *testing.B) {
	figureSweep(b, experiments.Llama70B(), experiments.EndToEndSystems())
}

// BenchmarkFigure8and9Qwen is the Qwen2.5-32B column of Figures 8 and 9.
func BenchmarkFigure8and9Qwen(b *testing.B) {
	figureSweep(b, experiments.Qwen32B(), experiments.EndToEndSystems())
}

// BenchmarkFigure10 sweeps the urgent-request proportion at RPS 4.0
// (Figure 10).
func BenchmarkFigure10(b *testing.B) {
	setup := experiments.Llama70B()
	for _, urgent := range []float64{0.3, 0.5, 0.7, 0.9} {
		reqs := trace(b, setup, workload.UrgentMix(urgent), 1.0, 4.0)
		for _, kind := range experiments.EndToEndSystems() {
			b.Run(fmt.Sprintf("%s/urgent=%.0f%%", kind, 100*urgent), func(b *testing.B) {
				runCell(b, kind, setup, reqs, experiments.BuildOptions{Seed: 1})
			})
		}
	}
}

// BenchmarkFigure11 sweeps the SLO scale of the most urgent category at
// RPS 4.0 with 60% urgent requests (Figure 11).
func BenchmarkFigure11(b *testing.B) {
	setup := experiments.Llama70B()
	for _, scale := range []float64{1.6, 1.2, 1.0, 0.8, 0.6} {
		reqs := trace(b, setup, workload.UrgentMix(0.6), scale, 4.0)
		for _, kind := range experiments.EndToEndSystems() {
			b.Run(fmt.Sprintf("%s/scale=%.1f", kind, scale), func(b *testing.B) {
				runCell(b, kind, setup, reqs, experiments.BuildOptions{Seed: 1})
			})
		}
	}
}

// BenchmarkFigure12 reports mean accepted tokens per verification step for
// the speculative systems across the RPS sweep (Figure 12; read the
// mean_acc metric).
func BenchmarkFigure12(b *testing.B) {
	figureSweep(b, experiments.Llama70B(), experiments.Figure12Systems())
}

// BenchmarkFigure13and14 replays the synthetic trace whose categories peak
// at different times (Figure 13) and reports SLO attainment under it
// (Figure 14).
func BenchmarkFigure13and14(b *testing.B) {
	setup := experiments.Llama70B()
	gen, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, 0x1314)
	if err != nil {
		b.Fatal(err)
	}
	perCat := workload.SyntheticCategoryTrace(mathutil.NewRNG(0x13), 4.0, 30)
	reqs := gen.FromCategoryTimestamps(perCat)
	for _, kind := range experiments.EndToEndSystems() {
		b.Run(string(kind), func(b *testing.B) {
			runCell(b, kind, setup, reqs, experiments.BuildOptions{Seed: 1})
		})
	}
}

// BenchmarkFigure15 measures AdaServe's serving-time breakdown; the
// sched_share% metric is the paper's CPU-scheduling slice.
func BenchmarkFigure15(b *testing.B) {
	for _, setup := range experiments.Setups() {
		b.Run(setup.Name, func(b *testing.B) {
			var sum *metrics.Summary
			for i := 0; i < b.N; i++ {
				s, err := experiments.Figure15(setup, experiments.RunOptions{Seed: 1, Duration: benchDuration})
				if err != nil {
					b.Fatal(err)
				}
				sum = s
			}
			b.ReportMetric(100*sum.Breakdown.SchedulingShare(), "sched_share%")
			b.ReportMetric(100*sum.Breakdown.Speculation/sum.Breakdown.Total(), "spec_share%")
		})
	}
}

// BenchmarkTable2Workloads reports the per-category request statistics of
// the Table 2 workload categories (prompt/output lengths and SLOs).
func BenchmarkTable2Workloads(b *testing.B) {
	setup := experiments.Llama70B()
	for _, spec := range workload.DefaultCategories() {
		b.Run(spec.App, func(b *testing.B) {
			rng := mathutil.NewRNG(7)
			var prompt, output int
			for i := 0; i < b.N; i++ {
				prompt = spec.Prompt.Sample(rng)
				output = spec.Output.Sample(rng)
			}
			b.ReportMetric(float64(prompt), "prompt_tok")
			b.ReportMetric(float64(output), "output_tok")
			b.ReportMetric(1e3*spec.TPOT(setup.BaselineLatency()), "slo_ms")
		})
	}
}

// BenchmarkAblations runs the design-choice ablation table.
func BenchmarkAblations(b *testing.B) {
	setup := experiments.Llama70B()
	reqs := trace(b, setup, workload.DefaultMix, 1.0, 3.8)
	cells := []struct {
		name  string
		kind  experiments.SystemKind
		build experiments.BuildOptions
	}{
		{"full", experiments.SysAdaServe, experiments.BuildOptions{Seed: 1}},
		{"interleaved-alg1", experiments.SysAdaServeInterleaved, experiments.BuildOptions{Seed: 1}},
		{"static-d4w1", experiments.SysAdaServe, experiments.BuildOptions{Seed: 1, StaticD: 4, StaticW: 1}},
		{"static-d8w4", experiments.SysAdaServe, experiments.BuildOptions{Seed: 1, StaticD: 8, StaticW: 4}},
		{"no-nmax", experiments.SysAdaServe, experiments.BuildOptions{Seed: 1, DisableNMax: true}},
		{"no-cuda-graphs", experiments.SysAdaServe, experiments.BuildOptions{Seed: 1, DisableCUDAGraphs: true}},
		{"greedy-verify", experiments.SysAdaServe, experiments.BuildOptions{Seed: 1, Rule: lm.RuleGreedy}},
	}
	for _, c := range cells {
		b.Run(c.name, func(b *testing.B) {
			runCell(b, c.kind, setup, reqs, c.build)
		})
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the hot paths (true per-op costs, -benchmem friendly).
// ---------------------------------------------------------------------------

func benchModels(b *testing.B) (*lm.SyntheticLM, *lm.DraftLM) {
	b.Helper()
	target := lm.MustSyntheticLM("t", 1, 4096, 16, 3.2, 0.02)
	return target, lm.MustDraftLM("d", target, 0.88, 2)
}

// BenchmarkLMDist measures one synthetic next-token distribution lookup.
func BenchmarkLMDist(b *testing.B) {
	target, _ := benchModels(b)
	ctx := lm.NewContext(7, []lm.Token{1, 2, 3, 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = target.Dist(ctx)
	}
}

// BenchmarkBeamSearch measures candidate-tree construction (d=6, w=4) on
// the pooled path the engine uses: a reused tree and beam builder.
func BenchmarkBeamSearch(b *testing.B) {
	_, draft := benchModels(b)
	ctx := lm.Context{ReqSeed: 9}
	var pool toktree.TreePool
	var bb toktree.BeamBuilder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := pool.Get(ctx, 5)
		if _, _, err := bb.Search(t, draft, 6, 4); err != nil {
			b.Fatal(err)
		}
		pool.Put(t)
	}
}

// BenchmarkSelect measures Algorithm 2's selection phases over 16 candidate
// trees with a 128-token budget — the per-iteration CPU cost Figure 15
// bounds — on the pooled Selector path schedulers use.
func BenchmarkSelect(b *testing.B) {
	_, draft := benchModels(b)
	var reqs []core.SelectRequest
	for i := 0; i < 16; i++ {
		br, err := toktree.BeamSearch(draft, lm.Context{ReqSeed: uint64(i)}, 5, 6, 4)
		if err != nil {
			b.Fatal(err)
		}
		reqs = append(reqs, core.SelectRequest{Cand: br.Tree, MinAccept: 1.5})
	}
	var sel core.Selector
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sel.Select(reqs, core.SelectConfig{Budget: 128, Depth: 6, PerRequestMax: 12}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyTree measures one tree verification walk.
func BenchmarkVerifyTree(b *testing.B) {
	target, draft := benchModels(b)
	br, err := toktree.BeamSearch(draft, lm.Context{ReqSeed: 3}, 5, 6, 4)
	if err != nil {
		b.Fatal(err)
	}
	sel := toktree.NewSelection(br.Tree)
	for id := 1; id < br.Tree.Size(); id++ {
		if sel.Has(br.Tree.Nodes[id].Parent) {
			sel.Add(id)
		}
	}
	v := lm.NewVerifier(target, draft, lm.RuleSampleMatch, mathutil.NewRNG(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = toktree.Verify(sel, v)
	}
}

// BenchmarkCostModel measures one roofline latency evaluation.
func BenchmarkCostModel(b *testing.B) {
	cm := gpu.MustCostModel(gpu.A100, gpu.Llama70B, 4)
	shape := gpu.BatchShape{Tokens: 128, Seqs: 32, KVTokens: 32 * 700}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cm.ForwardLatencyPure(shape)
	}
}

// BenchmarkEngineIteration measures one full AdaServe speculate-select-
// verify iteration over an 8-request batch (simulated time excluded; this
// is the real CPU cost of the simulator itself).
func BenchmarkEngineIteration(b *testing.B) {
	target, draft := benchModels(b)
	eng := engine.MustNew(engine.Config{
		Target: target, Draft: draft,
		TargetCost: gpu.MustCostModel(gpu.A100, gpu.Llama70B, 4),
		DraftCost:  gpu.MustCostModel(gpu.A100, gpu.Llama1B, 1),
		Seed:       3,
	})
	reqs := make([]*request.Request, 8)
	for i := range reqs {
		r := request.New(i, request.Chat, 0.05, 0, 64, 1<<30, uint64(i)*17+3)
		r.Phase = request.Decoding
		r.PrefillDone = 64
		reqs[i] = r
	}
	// Per-iteration scratch reused the way schedulers reuse it.
	var sel core.Selector
	selReqs := make([]core.SelectRequest, len(reqs))
	items := make([]engine.VerifyItem, len(reqs))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec, err := eng.SpeculateBeams(reqs, 4, 3)
		if err != nil {
			b.Fatal(err)
		}
		for j := range reqs {
			selReqs[j] = core.SelectRequest{Cand: spec.Trees[j], MinAccept: 1.5}
		}
		selRes, err := sel.Select(selReqs, core.SelectConfig{Budget: 96, Depth: 4, PerRequestMax: 10})
		if err != nil {
			b.Fatal(err)
		}
		for j, r := range reqs {
			items[j] = engine.VerifyItem{Req: r, Sel: selRes.Selections[j]}
		}
		ver := eng.VerifyTrees(items)
		for j, r := range reqs {
			engine.CommitVerify(r, ver.Results[j], 0)
		}
	}
}

// BenchmarkAutoscaleGrid runs a reduced autoscaling grid end to end — the
// equal-peak static fleet against the rate-prop elastic policy under both
// time-varying profiles at one router — reporting the cost-efficiency
// headline (good tokens per replica-second) per cell. This is the macro
// benchmark covering the elastic-fleet machinery: open-loop sources,
// provisioning cold starts, drain migrations, controller decisions.
func BenchmarkAutoscaleGrid(b *testing.B) {
	setup := experiments.Llama70B()
	opts := experiments.RunOptions{Seed: 1, Duration: 20, Parallel: 1}
	for _, profile := range experiments.AutoscaleProfiles() {
		for _, config := range []string{"static", "rate-prop"} {
			b.Run(fmt.Sprintf("%s/%s", profile, config), func(b *testing.B) {
				var sum *metrics.ClusterSummary
				for i := 0; i < b.N; i++ {
					s, err := experiments.AutoscaleCell(setup, config, profile, "least-loaded", opts)
					if err != nil {
						b.Fatal(err)
					}
					sum = s
				}
				b.ReportMetric(sum.Autoscale.GoodputPerReplicaSecond(), "good_tok/replica_s")
				b.ReportMetric(100*sum.Attainment(), "attain%")
				b.ReportMetric(sum.Autoscale.ReplicaSeconds, "replica_s")
			})
		}
	}
}

// BenchmarkFigureGrid runs a shortened Figure 8/9 grid end to end through
// the experiment runner at different worker counts: the macro benchmark for
// both the token hot path (sub-benchmark parallel=1) and the parallel
// runner's scaling (compare parallel=N against it; on multi-core hosts the
// grid speeds up near-linearly for N ≤ cores).
func BenchmarkFigureGrid(b *testing.B) {
	setup := experiments.Llama70B()
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := experiments.RunOptions{
					Seed: 1, Duration: 10, Parallel: par,
					Systems: []experiments.SystemKind{
						experiments.SysAdaServe, experiments.SysVLLMSpec6, experiments.SysVLLM,
					},
				}
				if _, err := experiments.Figure8and9(setup, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFaultGrid runs a reduced chaos grid end to end — every failure
// scenario under no recovery and under full retry+hedge recovery —
// reporting the recovery headlines (goodput, attainment, worst-case TTFT)
// per cell. This is the macro benchmark covering the fault-injection
// machinery: crash harvest and failover retries, clock-divergence hedging,
// link-fault recompute fallback, and autoscale-driven replacement.
func BenchmarkFaultGrid(b *testing.B) {
	setup := experiments.Llama70B()
	opts := experiments.RunOptions{Seed: 1, Duration: 20, Parallel: 1}
	for _, scenario := range experiments.FaultScenarios() {
		for _, recovery := range []string{"none", "retry+hedge"} {
			b.Run(fmt.Sprintf("%s/%s", scenario, recovery), func(b *testing.B) {
				var sum *metrics.ClusterSummary
				for i := 0; i < b.N; i++ {
					s, err := experiments.FaultCell(setup, scenario, recovery, opts)
					if err != nil {
						b.Fatal(err)
					}
					sum = s
				}
				b.ReportMetric(sum.Goodput(), "good_tok/s")
				b.ReportMetric(100*sum.Attainment(), "attain%")
				b.ReportMetric(sum.Aggregate.MaxTTFT, "max_ttft_s")
			})
		}
	}
}

// BenchmarkPrefixGrid runs a reduced prefix-caching grid end to end — the
// closed-loop session workload with caching off and on, under the
// least-loaded baseline and the prefix-affinity router — reporting the
// cache headlines (hit rate, prefill tokens saved, TTFT attainment) per
// cell. This is the macro benchmark covering the shared-prefix machinery:
// block-hash matching at admission, refcounted sharing, cold-block
// eviction to the host tier, and affinity routing probes.
func BenchmarkPrefixGrid(b *testing.B) {
	setup := experiments.Llama70B()
	opts := experiments.RunOptions{Seed: 1, Parallel: 1}
	for _, cached := range []bool{false, true} {
		for _, router := range []string{"least-loaded", "prefix-affinity"} {
			name := fmt.Sprintf("off/%s", router)
			if cached {
				name = fmt.Sprintf("on/%s", router)
			}
			b.Run(name, func(b *testing.B) {
				var sum *metrics.ClusterSummary
				for i := 0; i < b.N; i++ {
					s, err := experiments.PrefixCell(setup, router, cached, opts)
					if err != nil {
						b.Fatal(err)
					}
					sum = s
				}
				if sum.Prefix != nil {
					b.ReportMetric(100*sum.Prefix.HitRate(), "hit%")
					b.ReportMetric(float64(sum.Prefix.HitTokens), "saved_tok")
				}
				b.ReportMetric(100*sum.TTFTAttainment(), "ttft_attain%")
			})
		}
	}
}

// BenchmarkTraceGrid runs a reduced trace-replay grid end to end — every
// committed adversarial workload spec compiled per seed and replayed under
// the static, admission-gated and autoscaled configurations — reporting
// attainment, goodput and the gate's decisions per cell. This is the macro
// benchmark covering the trace subsystem: spec parsing, cohort compilation
// (correlated bursts, heavy-tail length sampling, modulation), replay
// sourcing, and the control loops downstream.
func BenchmarkTraceGrid(b *testing.B) {
	setup := experiments.Llama70B()
	opts := experiments.RunOptions{Seed: 1, Duration: 20, Parallel: 1}
	for _, scenario := range experiments.TraceScenarios() {
		for _, config := range experiments.TraceConfigs() {
			b.Run(scenario+"/"+config, func(b *testing.B) {
				var sum *metrics.ClusterSummary
				for i := 0; i < b.N; i++ {
					s, err := experiments.TraceCell(setup, scenario, config, opts)
					if err != nil {
						b.Fatal(err)
					}
					sum = s
				}
				b.ReportMetric(100*sum.Attainment(), "attain%")
				b.ReportMetric(sum.Goodput(), "goodput")
				if sum.Admission != nil {
					b.ReportMetric(float64(sum.Admission.Rejected), "rejected")
				}
			})
		}
	}
}

// BenchmarkObsOverhead prices the streaming observability layer against the
// observer-free hot path. The bare sub-benchmark runs a two-replica cluster
// with no observers subscribed — the driver's tracking flag stays off, so no
// event values are materialized; any allocs/op growth here is a hot-path
// regression. The observed sub-benchmark subscribes the span recorder and
// metrics exporter (with periodic snapshots) to the identical run, so the
// delta between the two is the full cost of observability.
func BenchmarkObsOverhead(b *testing.B) {
	setup := experiments.Llama70B()
	const obsDuration = 6.0
	run := func(b *testing.B, observe bool) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl, err := experiments.BuildCluster(experiments.SysAdaServe, setup, 2, "slo-aware",
				experiments.BuildOptions{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			sopts := serve.Options{}
			if observe {
				sopts.SnapshotEvery = 1
			}
			srv, err := serve.NewServer(cl, sopts)
			if err != nil {
				b.Fatal(err)
			}
			if observe {
				srv.Subscribe(obs.NewSpanRecorder())
				srv.Subscribe(obs.NewMetricsExporter())
			}
			gen, err := experiments.NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(1, 0xada))
			if err != nil {
				b.Fatal(err)
			}
			rate, maxRate, err := workload.RateProfile("spike", experiments.AdaptiveMeanRPS(setup), obsDuration)
			if err != nil {
				b.Fatal(err)
			}
			src, err := serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(1, 0x7a)), rate, maxRate, obsDuration)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := srv.Run(src); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, false) })
	b.Run("observed", func(b *testing.B) { run(b, true) })
}
