module adaserve

go 1.24
