package mathutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClip(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clip(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clip(%g,%g,%g) = %g, want %g", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClipPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clip(0, 1, 0) did not panic")
		}
	}()
	Clip(0, 1, 0)
}

func TestClipIntProperty(t *testing.T) {
	err := quick.Check(func(x int16, a, b int16) bool {
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		got := ClipInt(int(x), lo, hi)
		return got >= lo && got <= hi
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndSum(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g, want 2", got)
	}
	if got := Sum([]float64{1.5, 2.5}); got != 4 {
		t.Errorf("Sum = %g, want 4", got)
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Error("Stddev of singleton should be 0")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("Stddev = %g, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
}

func TestPercentileDegenerateInputs(t *testing.T) {
	// Empty input: 0 for every p, including the clamped extremes.
	for _, p := range []float64{-1, 0, 50, 100, 101} {
		if got := Percentile(nil, p); got != 0 {
			t.Errorf("Percentile(nil, %g) = %g, want 0", p, got)
		}
		if got := Percentile([]float64{}, p); got != 0 {
			t.Errorf("Percentile([], %g) = %g, want 0", p, got)
		}
	}
	// Single element: that element for every p — rank p/100·(n−1) is always 0.
	for _, p := range []float64{-1, 0, 37.5, 50, 99.9, 100, 101} {
		if got := Percentile([]float64{0.042}, p); got != 0.042 {
			t.Errorf("Percentile([0.042], %g) = %g, want 0.042", p, got)
		}
	}
	// Out-of-range p clamps to min/max.
	xs := []float64{5, 1, 3}
	if Percentile(xs, -10) != 1 || Percentile(xs, 110) != 5 {
		t.Errorf("clamped extremes = %g/%g, want 1/5", Percentile(xs, -10), Percentile(xs, 110))
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	err := quick.Check(func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa := math.Abs(math.Mod(a, 100))
		pb := math.Abs(math.Mod(b, 100))
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Max(xs) != 7 {
		t.Errorf("Max = %g", Max(xs))
	}
	if Min(xs) != -1 {
		t.Errorf("Min = %g", Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("Max/Min of empty should be 0")
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(5, 1.0)
	if math.Abs(Sum(w)-1) > 1e-9 {
		t.Fatalf("weights sum to %g", Sum(w))
	}
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatalf("weights not decreasing at %d: %v", i, w)
		}
	}
	// s=0 gives uniform weights.
	u := ZipfWeights(4, 0)
	for _, x := range u {
		if math.Abs(x-0.25) > 1e-9 {
			t.Fatalf("s=0 not uniform: %v", u)
		}
	}
}

func TestZipfWeightsSharpness(t *testing.T) {
	soft := ZipfWeights(16, 1.0)
	sharp := ZipfWeights(16, 3.0)
	if sharp[0] <= soft[0] {
		t.Fatalf("higher exponent should concentrate mass: %g vs %g", sharp[0], soft[0])
	}
}

func TestZipfWeightsPanics(t *testing.T) {
	for _, bad := range []struct {
		k int
		s float64
	}{{0, 1}, {-1, 1}, {3, -0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ZipfWeights(%d,%g) did not panic", bad.k, bad.s)
				}
			}()
			ZipfWeights(bad.k, bad.s)
		}()
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 6}
	Normalize(xs)
	if xs[0] != 0.25 || xs[1] != 0.75 {
		t.Fatalf("Normalize = %v", xs)
	}
	zeros := []float64{0, 0, 0, 0}
	Normalize(zeros)
	for _, x := range zeros {
		if math.Abs(x-0.25) > 1e-9 {
			t.Fatalf("Normalize of zeros = %v", zeros)
		}
	}
}

func TestCumSum(t *testing.T) {
	got := CumSum([]float64{1, 2, 3})
	want := []float64{1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CumSum = %v", got)
		}
	}
}

func TestSampleDiscrete(t *testing.T) {
	w := []float64{0.5, 0.3, 0.2}
	if SampleDiscrete(w, 0.0) != 0 {
		t.Error("u=0 should pick index 0")
	}
	if SampleDiscrete(w, 0.6) != 1 {
		t.Error("u=0.6 should pick index 1")
	}
	if SampleDiscrete(w, 0.99) != 2 {
		t.Error("u=0.99 should pick index 2")
	}
	if SampleDiscrete(nil, 0.5) != 0 {
		t.Error("empty weights should return 0")
	}
}

func TestSampleDiscreteDistribution(t *testing.T) {
	w := []float64{1, 3}
	r := NewRNG(29)
	counts := [2]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[SampleDiscrete(w, r.Float64())]++
	}
	frac := float64(counts[1]) / n
	if frac < 0.74 || frac > 0.76 {
		t.Fatalf("weight-3 index drawn %.3f of the time, want ~0.75", frac)
	}
}
