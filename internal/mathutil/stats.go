package mathutil

import (
	"math"
	"sort"
)

// Clip constrains x to the closed interval [lo, hi]. It panics if lo > hi.
func Clip(x, lo, hi float64) float64 {
	if lo > hi {
		panic("mathutil: Clip with lo > hi")
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClipInt constrains x to the closed interval [lo, hi]. It panics if lo > hi.
func ClipInt(x, lo, hi int) int {
	if lo > hi {
		panic("mathutil: ClipInt with lo > hi")
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Stddev returns the population standard deviation of xs, or 0 when
// len(xs) < 2.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using the
// linear-interpolation-between-closest-ranks rule: the sorted slice is
// treated as n−1 equal intervals, the target rank is p/100·(n−1), and the
// result interpolates linearly between the two nearest order statistics
// (numpy's default "linear" method). Out-of-range p clamps: p ≤ 0 returns
// the minimum, p ≥ 100 the maximum.
//
// Degenerate inputs are defined: an empty slice returns 0 for every p, and
// a single-element slice returns that element for every p. The input is not
// modified. obs/hist.Histogram.Percentile follows the same rank rule, so
// histogram-backed percentiles agree with this function at the extremes and
// to bucket resolution in between.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// ZipfWeights returns k weights proportional to 1/(i+1)^s for i in [0,k),
// normalized to sum to 1. It panics for k <= 0 or s < 0.
func ZipfWeights(k int, s float64) []float64 {
	if k <= 0 {
		panic("mathutil: ZipfWeights with k <= 0")
	}
	if s < 0 {
		panic("mathutil: ZipfWeights with s < 0")
	}
	w := make([]float64, k)
	var total float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// Normalize rescales xs in place so it sums to 1. If the sum is zero the
// slice becomes uniform. It returns the slice for convenience.
func Normalize(xs []float64) []float64 {
	s := Sum(xs)
	if s <= 0 {
		u := 1 / float64(len(xs))
		for i := range xs {
			xs[i] = u
		}
		return xs
	}
	for i := range xs {
		xs[i] /= s
	}
	return xs
}

// CumSum returns the cumulative sums of xs (same length).
func CumSum(xs []float64) []float64 {
	out := make([]float64, len(xs))
	var acc float64
	for i, x := range xs {
		acc += x
		out[i] = acc
	}
	return out
}

// SampleDiscrete draws an index from the discrete distribution given by
// weights (need not be normalized) using u in [0,1). It returns the last
// index if rounding pushes u past the total.
func SampleDiscrete(weights []float64, u float64) int {
	total := Sum(weights)
	if total <= 0 || len(weights) == 0 {
		return 0
	}
	target := u * total
	var acc float64
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
