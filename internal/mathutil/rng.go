// Package mathutil provides small deterministic numeric helpers shared by the
// AdaServe simulator: a seedable splitmix64/xoshiro-style RNG (so results do
// not depend on the Go version's math/rand internals), summary statistics,
// and Zipf weight tables used by the synthetic language models.
package mathutil

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator based on
// splitmix64. It is not safe for concurrent use; create one per goroutine.
//
// The zero value is a valid generator seeded with 0; prefer NewRNG.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators constructed
// with the same seed produce identical streams on all platforms.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathutil: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with rate 1, via
// inverse-transform sampling.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1 - u)
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1 using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	u2 := r.Float64()
	if u1 <= 0 {
		u1 = math.SmallestNonzeroFloat64
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has the given mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// SplitMix64 advances a splitmix64 state and returns the next output without
// any receiver: handy for cheap stateless hashing of composed seeds.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash2 mixes two 64-bit values into one; used to derive per-context seeds.
func Hash2(a, b uint64) uint64 {
	return SplitMix64(a ^ SplitMix64(b))
}

// Hash3 mixes three 64-bit values into one.
func Hash3(a, b, c uint64) uint64 {
	return SplitMix64(Hash2(a, b) ^ SplitMix64(c))
}
