package mathutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGSeedResets(t *testing.T) {
	r := NewRNG(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, step %d: got %d want %d", i, got, first[i])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("uniform mean %g too far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential draw %g", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.97 || mean > 1.03 {
		t.Fatalf("exponential mean %g too far from 1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	var sum, sumSq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %g too far from 0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("normal variance %g too far from 1", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(3, 0.5); v <= 0 {
			t.Fatalf("non-positive log-normal draw %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	for _, n := range []int{1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitMix64Stateless(t *testing.T) {
	if SplitMix64(1) != SplitMix64(1) {
		t.Fatal("SplitMix64 not deterministic")
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Fatal("SplitMix64 collision on adjacent inputs")
	}
}

func TestHash2Properties(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		// Deterministic and (heuristically) order-sensitive.
		return Hash2(a, b) == Hash2(a, b)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Hash2(1, 2) == Hash2(2, 1) {
		t.Fatal("Hash2 is order-insensitive for (1,2)")
	}
}

func TestHash3Distinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for a := uint64(0); a < 10; a++ {
		for b := uint64(0); b < 10; b++ {
			for c := uint64(0); c < 10; c++ {
				h := Hash3(a, b, c)
				if seen[h] {
					t.Fatalf("Hash3 collision at (%d,%d,%d)", a, b, c)
				}
				seen[h] = true
			}
		}
	}
}
