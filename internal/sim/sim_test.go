package sim

import (
	"strings"
	"testing"

	"adaserve/internal/engine"
	"adaserve/internal/gpu"
	"adaserve/internal/kvcache"
	"adaserve/internal/lm"
	"adaserve/internal/request"
	"adaserve/internal/sched"
)

func testSystem(t *testing.T, kvTokens int) sched.System {
	t.Helper()
	target := lm.MustSyntheticLM("t", 1, 4096, 16, 3.2, 0.02)
	draft := lm.MustDraftLM("d", target, 0.88, 2)
	eng := engine.MustNew(engine.Config{
		Target: target, Draft: draft,
		TargetCost: gpu.MustCostModel(gpu.A100, gpu.Llama70B, 4),
		DraftCost:  gpu.MustCostModel(gpu.A100, gpu.Llama1B, 1),
		Seed:       3,
	})
	sys, err := sched.NewVLLM(sched.Config{
		Engine:   eng,
		KV:       kvcache.MustNew(kvcache.ConfigForTokens(kvTokens, 16)),
		MaxBatch: 32, MaxPrefillTokens: 2048, SchedOverhead: 30e-6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func mkReqs(n int, gap float64) []*request.Request {
	reqs := make([]*request.Request, n)
	for i := range reqs {
		reqs[i] = request.New(i, request.Chat, 0.05, float64(i)*gap, 64, 8, uint64(i)*13+1)
	}
	return reqs
}

func TestRunCompletesAllRequests(t *testing.T) {
	sys := testSystem(t, 100000)
	reqs := mkReqs(10, 0.1)
	res, err := Run(sys, reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Finished != 10 {
		t.Fatalf("finished %d of 10", res.Summary.Finished)
	}
	if res.EndTime <= 0 || res.Iterations <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	for _, r := range reqs {
		if r.Phase != request.Done {
			t.Fatalf("request %d phase %s", r.ID, r.Phase)
		}
	}
}

func TestRunHandlesIdleGaps(t *testing.T) {
	// Arrivals separated by long gaps: the simulator must jump the clock.
	sys := testSystem(t, 100000)
	reqs := mkReqs(3, 100.0)
	res, err := Run(sys, reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EndTime < 200 {
		t.Fatalf("clock did not advance across gaps: end %.1f", res.EndTime)
	}
	// With near-zero load every request should attain.
	if res.Summary.Attainment() != 1 {
		t.Fatalf("attainment %.2f at zero load", res.Summary.Attainment())
	}
}

func TestRunValidatesRequests(t *testing.T) {
	sys := testSystem(t, 100000)
	bad := request.New(1, request.Chat, 0, 0, 64, 8, 1)
	if _, err := Run(sys, []*request.Request{bad}, Options{}); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestRunDetectsDeadlock(t *testing.T) {
	// KV too small for the request: admission can never succeed.
	sys := testSystem(t, 32)
	reqs := []*request.Request{request.New(1, request.Chat, 0.05, 0, 64, 8, 1)}
	_, err := Run(sys, reqs, Options{})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestRunRespectsMaxSimTime(t *testing.T) {
	sys := testSystem(t, 100000)
	reqs := mkReqs(5, 1000.0) // arrivals span 5000s
	_, err := Run(sys, reqs, Options{MaxSimTime: 10})
	if err == nil || !strings.Contains(err.Error(), "max simulated time") {
		t.Fatalf("want max-sim-time error, got %v", err)
	}
}

func TestRunRespectsMaxIterations(t *testing.T) {
	sys := testSystem(t, 100000)
	reqs := mkReqs(5, 0.05)
	_, err := Run(sys, reqs, Options{MaxIterations: 2})
	if err == nil || !strings.Contains(err.Error(), "max iterations") {
		t.Fatalf("want max-iterations error, got %v", err)
	}
}

func TestRunDefaultBoundsPermitNormalRuns(t *testing.T) {
	// Zero-valued Options mean the generous defaults, not zero budgets.
	sys := testSystem(t, 100000)
	if _, err := Run(sys, mkReqs(3, 0.05), Options{}); err != nil {
		t.Fatalf("default bounds aborted a normal run: %v", err)
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() (float64, int) {
		sys := testSystem(t, 100000)
		reqs := mkReqs(20, 0.05)
		res, err := Run(sys, reqs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.EndTime, res.Iterations
	}
	e1, i1 := run()
	e2, i2 := run()
	if e1 != e2 || i1 != i2 {
		t.Fatalf("runs diverged: (%g,%d) vs (%g,%d)", e1, i1, e2, i2)
	}
}

func TestRunBreakdownAccumulates(t *testing.T) {
	sys := testSystem(t, 100000)
	reqs := mkReqs(5, 0.05)
	res, err := Run(sys, reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	if b.Verification <= 0 || b.Prefill <= 0 || b.Scheduling <= 0 {
		t.Fatalf("breakdown %+v", b)
	}
	// vLLM does not speculate.
	if b.Speculation != 0 {
		t.Fatalf("vLLM reported speculation time %g", b.Speculation)
	}
	// Total busy time cannot exceed the simulated span.
	if b.Total() > res.EndTime {
		t.Fatalf("busy %.3fs exceeds wall %.3fs", b.Total(), res.EndTime)
	}
}

func TestRunArrivalsVisibleAtBoundaries(t *testing.T) {
	// A request arriving mid-iteration must not be admitted until the
	// iteration after its arrival: its AdmitTime >= its ArrivalTime.
	sys := testSystem(t, 100000)
	reqs := mkReqs(10, 0.013)
	if _, err := Run(sys, reqs, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.AdmitTime < r.ArrivalTime {
			t.Fatalf("request %d admitted at %.3f before arrival %.3f",
				r.ID, r.AdmitTime, r.ArrivalTime)
		}
	}
}
