// Package sim is the closed-loop trace-replay entry point: it feeds a trace
// of requests into a serving system, advances simulated time by the
// durations the system's iterations report, and aggregates metrics.
//
// Run is a thin compatibility wrapper over the unified event-driven driver
// in internal/serve (a single-instance backend over a TraceSource), kept so
// experiments and examples can replay a closed trace in one call. Semantics
// are the driver's: arrivals become visible at iteration boundaries
// (systems schedule at iteration granularity, as all the compared systems
// do); the run ends when every request has completed, so SLO attainment is
// measured over the entire trace with no truncation bias. Callers that need
// the streaming lifecycle — observers, live snapshots, open-loop or
// programmatic sources — use internal/serve directly.
package sim

import (
	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sched"
	"adaserve/internal/serve"
)

// Options bounds a run. Zero values resolve to the shared driver defaults
// (serve.DefaultMaxSimTime, serve.DefaultMaxIterations).
type Options struct {
	// MaxSimTime aborts runs whose simulated clock exceeds this (0: 24h).
	MaxSimTime float64
	// MaxIterations aborts runaway runs (0: 50 million).
	MaxIterations int
}

// Result reports a completed run.
type Result struct {
	Summary *metrics.Summary
	// Iterations is the number of scheduling iterations executed.
	Iterations int
	// EndTime is the simulated completion time of the last request.
	EndTime float64
	// Breakdown aggregates the per-iteration time components.
	Breakdown metrics.Breakdown
}

// Run drives the system over the request trace until every request is done.
func Run(sys sched.System, reqs []*request.Request, opts Options) (*Result, error) {
	src, err := serve.NewTraceSource(reqs)
	if err != nil {
		return nil, err
	}
	srv, err := serve.NewServer(serve.SingleSystem(sys), serve.Options{
		MaxSimTime:    opts.MaxSimTime,
		MaxIterations: opts.MaxIterations,
	})
	if err != nil {
		return nil, err
	}
	rr, err := srv.Run(src)
	if err != nil {
		return nil, err
	}
	return &Result{
		Summary:    metrics.Summarize(sys.Name(), reqs, rr.Breakdown),
		Iterations: rr.Iterations,
		EndTime:    rr.EndTime,
		Breakdown:  rr.Breakdown,
	}, nil
}
