// Package sim is the discrete-event driver: it feeds a trace of requests
// into a serving system, advances simulated time by the durations the
// system's iterations report, and aggregates metrics.
//
// Semantics: arrivals become visible at iteration boundaries (systems
// schedule at iteration granularity, as all the compared systems do); the
// run ends when every request has completed, so SLO attainment is measured
// over the entire trace with no truncation bias.
package sim

import (
	"fmt"

	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sched"
)

// Options bounds a run.
type Options struct {
	// MaxSimTime aborts runs whose simulated clock exceeds this (0: 24h).
	MaxSimTime float64
	// MaxIterations aborts runaway runs (0: 50 million).
	MaxIterations int
}

// Result reports a completed run.
type Result struct {
	Summary *metrics.Summary
	// Iterations is the number of scheduling iterations executed.
	Iterations int
	// EndTime is the simulated completion time of the last request.
	EndTime float64
	// Breakdown aggregates the per-iteration time components.
	Breakdown metrics.Breakdown
}

// Run drives the system over the request trace until every request is done.
func Run(sys sched.System, reqs []*request.Request, opts Options) (*Result, error) {
	if opts.MaxSimTime == 0 {
		opts.MaxSimTime = 24 * 3600
	}
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 50_000_000
	}
	ordered, err := request.OrderForReplay(reqs)
	if err != nil {
		return nil, err
	}

	pool := sys.Pool()
	res := &Result{}
	now := 0.0
	next := 0
	for {
		for next < len(ordered) && ordered[next].ArrivalTime <= now {
			pool.Enqueue(ordered[next])
			next++
		}
		if pool.NumWaiting() == 0 && pool.NumRunning() == 0 {
			if next >= len(ordered) {
				break // all done
			}
			now = ordered[next].ArrivalTime
			continue
		}
		st := sys.Iterate(now)
		if st.Idle {
			// Nothing runnable. The Iterate call may have just retired the
			// final requests; re-check emptiness at the top of the loop.
			if pool.NumWaiting() == 0 && pool.NumRunning() == 0 {
				continue
			}
			// If arrivals remain, jump to the next one; otherwise the
			// system cannot make progress: a genuine deadlock (e.g. a
			// request that can never fit in KV).
			if next < len(ordered) {
				now = ordered[next].ArrivalTime
				continue
			}
			return nil, fmt.Errorf("sim: %s deadlocked at t=%.3fs with %d waiting / %d running",
				sys.Name(), now, pool.NumWaiting(), pool.NumRunning())
		}
		if st.Elapsed <= 0 {
			return nil, fmt.Errorf("sim: %s reported non-positive elapsed %g", sys.Name(), st.Elapsed)
		}
		now += st.Elapsed
		res.Iterations++
		res.Breakdown.Scheduling += st.SchedCPU
		res.Breakdown.Speculation += st.SpecTime
		res.Breakdown.Verification += st.VerifyTime
		res.Breakdown.Prefill += st.PrefillTime
		if now > opts.MaxSimTime {
			return nil, fmt.Errorf("sim: %s exceeded max simulated time %.0fs", sys.Name(), opts.MaxSimTime)
		}
		if res.Iterations > opts.MaxIterations {
			return nil, fmt.Errorf("sim: %s exceeded max iterations %d", sys.Name(), opts.MaxIterations)
		}
	}
	res.EndTime = now
	res.Summary = metrics.Summarize(sys.Name(), reqs, res.Breakdown)
	return res, nil
}
