package request

import (
	"fmt"
	"sort"
)

// Pool is the request manager's request pool (Figure 6): it holds waiting
// and running requests and exposes the views schedulers iterate over.
// Ordering is deterministic: FIFO by (arrival time, ID).
type Pool struct {
	waiting []*Request
	running []*Request
	done    []*Request
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// OrderForReplay validates a trace and returns a sorted copy in the
// deterministic replay order shared by every driver: FIFO by (arrival
// time, ID). Both internal/sim and internal/cluster replay traces in this
// order, so single-replica results stay comparable to one-replica clusters.
func OrderForReplay(reqs []*Request) ([]*Request, error) {
	for _, r := range reqs {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	ordered := append([]*Request(nil), reqs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].ArrivalTime != ordered[j].ArrivalTime {
			return ordered[i].ArrivalTime < ordered[j].ArrivalTime
		}
		return ordered[i].ID < ordered[j].ID
	})
	return ordered, nil
}

// Enqueue adds a newly arrived request to the waiting queue.
func (p *Pool) Enqueue(r *Request) {
	if r.Phase != Queued && r.Phase != Preempted {
		panic(fmt.Sprintf("request: enqueue of %d in phase %s", r.ID, r.Phase))
	}
	p.waiting = append(p.waiting, r)
	p.sortWaiting()
}

// sortWaiting keeps FIFO order by arrival then ID.
func (p *Pool) sortWaiting() {
	sort.SliceStable(p.waiting, func(i, j int) bool {
		a, b := p.waiting[i], p.waiting[j]
		if a.ArrivalTime != b.ArrivalTime {
			return a.ArrivalTime < b.ArrivalTime
		}
		return a.ID < b.ID
	})
}

// Waiting returns the waiting queue (callers must not mutate ordering).
func (p *Pool) Waiting() []*Request { return p.waiting }

// Running returns the admitted, unfinished requests.
func (p *Pool) Running() []*Request { return p.running }

// Done returns finished requests.
func (p *Pool) Done() []*Request { return p.done }

// Admit moves a waiting request into the running set. The caller is
// responsible for KV allocation.
func (p *Pool) Admit(r *Request, now float64) {
	idx := -1
	for i, w := range p.waiting {
		if w == r {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("request: admit of %d not in waiting queue", r.ID))
	}
	p.waiting = append(p.waiting[:idx], p.waiting[idx+1:]...)
	if r.AdmitTime < 0 {
		r.AdmitTime = now
	}
	if r.Phase == Queued {
		r.Phase = Prefilling
	} else {
		r.Phase = Decoding // resumed from preemption
	}
	p.running = append(p.running, r)
}

// Preempt moves a running request back to the waiting queue (KV retained or
// dropped per the caller), marking it Preempted.
func (p *Pool) Preempt(r *Request) {
	idx := -1
	for i, q := range p.running {
		if q == r {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("request: preempt of %d not running", r.ID))
	}
	p.running = append(p.running[:idx], p.running[idx+1:]...)
	r.Phase = Preempted
	r.PreemptCount++
	p.waiting = append(p.waiting, r)
	p.sortWaiting()
}

// Remove takes a resident (running or waiting) request out of the pool
// without finishing it: the cluster driver migrates prefill-complete
// requests to a decode replica this way, and drain migration moves waiting
// requests off a draining replica. Unlike Preempt it neither re-enqueues
// nor touches the request's phase or preemption count — the caller owns the
// request's onward lifecycle.
func (p *Pool) Remove(r *Request) {
	for i, q := range p.running {
		if q == r {
			p.running = append(p.running[:i], p.running[i+1:]...)
			return
		}
	}
	for i, q := range p.waiting {
		if q == r {
			p.waiting = append(p.waiting[:i], p.waiting[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("request: remove of %d not resident", r.ID))
}

// Finish moves completed running requests into done, returning how many
// moved. Requests mark themselves Done in Commit.
func (p *Pool) Finish() int {
	moved := 0
	kept := p.running[:0]
	for _, r := range p.running {
		if r.Phase == Done {
			p.done = append(p.done, r)
			moved++
		} else {
			kept = append(kept, r)
		}
	}
	p.running = kept
	return moved
}

// AdoptDone appends an already-finished request directly to the done list
// without it ever having waited or run here: hedged re-dispatch resolves this
// way when the duplicate wins — the original adopts the winner's outcome and
// retires through the winning replica's pool, so the serve driver derives its
// lifecycle events at that replica's next iteration boundary.
func (p *Pool) AdoptDone(r *Request) {
	if r.Phase != Done {
		panic(fmt.Sprintf("request: adopt-done of %d in phase %s", r.ID, r.Phase))
	}
	p.done = append(p.done, r)
}

// NumWaiting returns the waiting-queue length.
func (p *Pool) NumWaiting() int { return len(p.waiting) }

// NumRunning returns the running-set size.
func (p *Pool) NumRunning() int { return len(p.running) }

// NumDone returns the finished-request count.
func (p *Pool) NumDone() int { return len(p.done) }

// DecodingRequests returns running requests currently in the decode phase.
func (p *Pool) DecodingRequests() []*Request {
	var out []*Request
	for _, r := range p.running {
		if r.Phase == Decoding {
			out = append(out, r)
		}
	}
	return out
}

// PrefillingRequests returns running requests still prefilling.
func (p *Pool) PrefillingRequests() []*Request {
	var out []*Request
	for _, r := range p.running {
		if r.Phase == Prefilling {
			out = append(out, r)
		}
	}
	return out
}
