package request

import (
	"math"
	"reflect"
	"testing"

	"adaserve/internal/lm"
)

func newReq(t *testing.T) *Request {
	t.Helper()
	r := New(1, Coding, 0.040, 10.0, 128, 64, 42)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCategoryAndPhaseStrings(t *testing.T) {
	if Coding.String() != "coding" || Chat.String() != "chat" || Summarization.String() != "summarization" {
		t.Fatal("category names wrong")
	}
	if Category(9).String() == "" || Phase(9).String() == "" {
		t.Fatal("unknown enum should render")
	}
	for _, p := range []Phase{Queued, Prefilling, Decoding, Preempted, Done} {
		if p.String() == "" {
			t.Fatal("phase name empty")
		}
	}
	if NumCategories != 3 {
		t.Fatalf("NumCategories = %d", NumCategories)
	}
}

func TestNewDefaults(t *testing.T) {
	r := newReq(t)
	if r.Phase != Queued {
		t.Fatal("new request should be queued")
	}
	if r.FirstDecodeTime >= 0 || r.FirstTokenTime >= 0 || r.DoneTime >= 0 || r.AdmitTime >= 0 {
		t.Fatal("timestamps should start unset")
	}
	if r.Priority != int(Coding) {
		t.Fatal("priority should derive from category")
	}
	if r.Ctx.ReqSeed != 42 {
		t.Fatal("context seed not set")
	}
}

func TestValidateRejectsBadRequests(t *testing.T) {
	bad := []*Request{
		New(1, Chat, 0, 0, 10, 10, 1),
		New(2, Chat, 0.05, 0, 0, 10, 1),
		New(3, Chat, 0.05, 0, 10, 0, 1),
	}
	for _, r := range bad {
		if r.Validate() == nil {
			t.Errorf("request %d should not validate", r.ID)
		}
	}
}

func TestCommitLifecycle(t *testing.T) {
	r := New(1, Chat, 0.05, 0, 16, 3, 7)
	r.Phase = Decoding
	r.FirstDecodeTime = 1.0

	kept := r.Commit([]lm.Token{10, 11}, 1.1)
	if kept != 2 || r.OutputLen() != 2 {
		t.Fatalf("kept=%d len=%d", kept, r.OutputLen())
	}
	if r.FirstTokenTime != 1.1 {
		t.Fatal("first token time not stamped")
	}
	if r.Phase != Decoding {
		t.Fatal("phase should stay decoding")
	}

	// Third token completes; fourth is clipped.
	kept = r.Commit([]lm.Token{12, 13}, 1.2)
	if kept != 1 {
		t.Fatalf("clip kept %d", kept)
	}
	if r.Phase != Done || r.DoneTime != 1.2 {
		t.Fatal("completion not recorded")
	}
	if r.OutputLen() != 3 {
		t.Fatalf("output len %d", r.OutputLen())
	}
	if r.AcceptedTokens != 3 {
		t.Fatalf("accepted tokens %d", r.AcceptedTokens)
	}
}

func TestCommitExtendsContext(t *testing.T) {
	r := New(1, Chat, 0.05, 0, 16, 10, 7)
	r.Commit([]lm.Token{5, 6}, 1)
	if w := r.Ctx.Window(); len(w) != 2 || w[1] != 6 {
		t.Fatalf("context window %v", w)
	}
	if r.LastToken() != 6 {
		t.Fatal("LastToken should be the newest")
	}
}

func TestCommit1MatchesCommit(t *testing.T) {
	a := New(1, Chat, 0.05, 0, 16, 3, 7)
	b := New(1, Chat, 0.05, 0, 16, 3, 7)
	a.Commit([]lm.Token{5}, 1)
	b.Commit1(5, 1)
	a.Commit([]lm.Token{6, 8}, 2) // second call clips at MaxNewTokens
	b.Commit1(6, 2)
	b.Commit1(8, 2)
	if a.Phase != b.Phase || a.DoneTime != b.DoneTime ||
		a.FirstTokenTime != b.FirstTokenTime || a.AcceptedTokens != b.AcceptedTokens ||
		a.OutputLen() != b.OutputLen() || a.Ctx != b.Ctx {
		t.Fatalf("Commit1 state diverged from Commit: %+v vs %+v", a, b)
	}
}

func TestLastTokenBeforeOutput(t *testing.T) {
	r := New(1, Chat, 0.05, 0, 16, 10, 300)
	if got := r.LastToken(); got != lm.Token(300%256) {
		t.Fatalf("pre-output LastToken = %d", got)
	}
}

func TestDecodeLatency(t *testing.T) {
	r := newReq(t)
	if r.DecodeLatency(99) != 0 {
		t.Fatal("latency before decoding should be 0")
	}
	r.FirstDecodeTime = 10
	if got := r.DecodeLatency(12.5); got != 2.5 {
		t.Fatalf("latency %g", got)
	}
}

func TestMinAcceptForSLO(t *testing.T) {
	r := newReq(t) // SLO 40ms
	r.FirstDecodeTime = 0
	r.Output = make([]lm.Token, 4) // o_i = 4

	// At now=0.2s with tspec=0.04: A = (0.2+0.04)/0.04 - 4 = 2.
	got := r.MinAcceptForSLO(0.2, 0.04)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("A(r) = %g, want 2", got)
	}
	// Ahead of schedule: negative A.
	r.Output = make([]lm.Token, 10)
	if r.MinAcceptForSLO(0.2, 0.04) >= 0 {
		t.Fatal("ahead-of-SLO request should have negative A")
	}
	// Tighter target raises A.
	if r.MinAcceptFor(0.2, 0.04, 0.020) <= r.MinAcceptFor(0.2, 0.04, 0.040) {
		t.Fatal("halving the target should raise A")
	}
}

func TestAvgTPOTAndAttainment(t *testing.T) {
	r := New(1, Chat, 0.05, 0, 16, 10, 7)
	if r.AvgTPOT(1) != 0 {
		t.Fatal("TPOT before decode should be 0")
	}
	r.FirstDecodeTime = 1.0
	toks := make([]lm.Token, 10)
	r.Commit(toks, 1.4) // 10 tokens in 0.4s -> 40ms/token
	if got := r.AvgTPOT(99); math.Abs(got-0.04) > 1e-9 {
		t.Fatalf("TPOT %g", got)
	}
	if !r.AttainedSLO() {
		t.Fatal("40ms <= 50ms SLO should attain")
	}
	// A slower request violates.
	r2 := New(2, Chat, 0.05, 0, 16, 10, 7)
	r2.FirstDecodeTime = 1.0
	r2.Commit(toks, 1.6) // 60ms/token
	if r2.AttainedSLO() {
		t.Fatal("60ms > 50ms SLO should violate")
	}
}

func TestAttainedSLORequiresCompletion(t *testing.T) {
	r := newReq(t)
	r.FirstDecodeTime = 0
	r.Commit([]lm.Token{1}, 0.001)
	if r.Phase == Done {
		t.Fatal("not done yet")
	}
	if r.AttainedSLO() {
		t.Fatal("incomplete request cannot attain")
	}
}

func TestTTFT(t *testing.T) {
	r := newReq(t) // arrival 10.0
	if r.TTFT() != -1 {
		t.Fatal("TTFT before first token should be -1")
	}
	r.Commit([]lm.Token{1}, 10.7)
	if math.Abs(r.TTFT()-0.7) > 1e-9 {
		t.Fatalf("TTFT %g", r.TTFT())
	}
}

func TestContextAndPrefillAccounting(t *testing.T) {
	r := newReq(t) // prompt 128
	if r.ContextLen() != 128 {
		t.Fatal("context = prompt before output")
	}
	if r.RemainingPrefill() != 128 {
		t.Fatal("nothing prefilled yet")
	}
	r.PrefillDone = 100
	if r.RemainingPrefill() != 28 {
		t.Fatal("remaining prefill wrong")
	}
	r.Commit([]lm.Token{1, 2}, 1)
	if r.ContextLen() != 130 {
		t.Fatal("context should include output")
	}
}

// TestPromptSeedsSegments covers the seg-aware prompt content derivation the
// prefix cache hashes: segment boundaries, clamping, the no-segment fallback
// to request-private content, and the short-segment padding guard.
func TestPromptSeedsSegments(t *testing.T) {
	r := New(1, Chat, 0.05, 0, 8, 4, 99)
	plain := r.PromptSeeds(8)
	if len(plain) != 8 {
		t.Fatalf("got %d seeds, want 8", len(plain))
	}
	if again := r.PromptSeeds(8); !reflect.DeepEqual(plain, again) {
		t.Fatal("PromptSeeds not deterministic")
	}
	if r.PromptSeeds(0) != nil || r.PromptSeeds(-1) != nil {
		t.Fatal("non-positive n must return nil")
	}
	if got := r.PromptSeeds(100); len(got) != 8 {
		t.Fatalf("n beyond PromptLen returned %d seeds, want clamp to 8", len(got))
	}

	// Two requests sharing a segment agree exactly over it and nowhere else.
	shared := PromptSegment{Seed: 0xabc, Len: 5}
	a := New(2, Chat, 0.05, 0, 8, 4, 7)
	a.PromptSegs = []PromptSegment{shared, {Seed: 1, Len: 3}}
	b := New(3, Chat, 0.05, 0, 8, 4, 8)
	b.PromptSegs = []PromptSegment{shared, {Seed: 2, Len: 3}}
	sa, sb := a.PromptSeeds(8), b.PromptSeeds(8)
	if !reflect.DeepEqual(sa[:5], sb[:5]) {
		t.Fatal("shared segment produced different content")
	}
	if reflect.DeepEqual(sa[5:], sb[5:]) {
		t.Fatal("private tails collided")
	}

	// A truncated read stops mid-segment.
	if got := a.PromptSeeds(6); !reflect.DeepEqual(got, sa[:6]) {
		t.Fatal("mid-segment truncation diverged from the full read")
	}

	// Segments shorter than PromptLen pad with request-private content.
	c := New(4, Chat, 0.05, 0, 8, 4, 11)
	c.PromptSegs = []PromptSegment{{Seed: 0xabc, Len: 5}}
	sc := c.PromptSeeds(8)
	if len(sc) != 8 {
		t.Fatalf("padded read returned %d seeds, want 8", len(sc))
	}
	d := New(5, Chat, 0.05, 0, 8, 4, 12)
	d.PromptSegs = []PromptSegment{{Seed: 0xabc, Len: 5}}
	if reflect.DeepEqual(sc[5:], d.PromptSeeds(8)[5:]) {
		t.Fatal("padding aliased across requests")
	}
}
