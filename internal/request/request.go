// Package request defines the serving request model shared by AdaServe and
// every baseline scheduler: application categories with TPOT SLOs, the
// request lifecycle, and the SLO-progress accounting (A(r)) from §3 of the
// paper.
package request

import (
	"fmt"

	"adaserve/internal/lm"
	"adaserve/internal/mathutil"
)

// Category identifies the application class of a request (Table 2).
type Category int

const (
	// Coding is a latency-critical coding-copilot request (SLO = 1.2x
	// baseline decode latency, per the paper / MLPerf interactive).
	Coding Category = iota
	// Chat is a chatbot request (SLO = 50 ms/token).
	Chat
	// Summarization is a relaxed batch-style request (SLO = 150 ms/token).
	Summarization
	numCategories
)

// NumCategories is the number of defined categories.
const NumCategories = int(numCategories)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Coding:
		return "coding"
	case Chat:
		return "chat"
	case Summarization:
		return "summarization"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Phase is a request's lifecycle stage.
type Phase int

const (
	// Queued: arrived, not yet admitted.
	Queued Phase = iota
	// Prefilling: admitted, prompt not fully processed.
	Prefilling
	// Decoding: generating output tokens.
	Decoding
	// Preempted: was decoding, paused by the scheduler (KV retained).
	Preempted
	// Done: finished or dropped.
	Done
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Queued:
		return "queued"
	case Prefilling:
		return "prefilling"
	case Decoding:
		return "decoding"
	case Preempted:
		return "preempted"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Request is one inference request flowing through a serving system.
type Request struct {
	ID       int
	Category Category
	// TPOTSLO is the per-token latency target in seconds.
	TPOTSLO float64
	// TTFTSLO is the time-to-first-token target in seconds; 0 means the
	// request carries no TTFT SLO (AttainedTTFT then reports true). TTFT
	// spans arrival to first committed token, so in a disaggregated
	// deployment it covers prefill queueing, prefill, the KV transfer, and
	// the first decode iteration.
	TTFTSLO float64
	// Priority orders requests when schedulers prioritize; lower is more
	// urgent. Derived from the category by default.
	Priority int

	// ArrivalTime is the trace timestamp, seconds.
	ArrivalTime float64
	// PromptLen is the prompt length in tokens.
	PromptLen int
	// MaxNewTokens is the output length (generation stops there; the
	// synthetic LM has no EOS so traces fix output lengths).
	MaxNewTokens int
	// Seed drives this request's synthetic text; two requests never share
	// token streams.
	Seed uint64
	// PromptSegs optionally decomposes the prompt into content segments for
	// prefix caching: a session turn is [shared system prompt, prior turns...,
	// new user turn], and two requests share KV-cacheable content exactly
	// where their segment decompositions agree position by position. Segment
	// lengths must sum to PromptLen. nil means the whole prompt is one
	// request-private segment derived from Seed, so requests without session
	// structure never alias each other's cache entries.
	PromptSegs []PromptSegment

	// Phase is the current lifecycle stage.
	Phase Phase
	// PrefillDone counts prompt tokens already processed (chunked prefill).
	PrefillDone int
	// Output holds the committed output tokens.
	Output []lm.Token
	// Ctx is the decoding context (history of committed tokens).
	Ctx lm.Context

	// AdmitTime is when the request was first scheduled (prefill start).
	AdmitTime float64
	// FirstDecodeTime is when the first decode step began: the reference
	// point for l_i in the paper's TPOT constraint. Negative until set.
	FirstDecodeTime float64
	// FirstTokenTime is when the first output token was committed (TTFT).
	FirstTokenTime float64
	// DoneTime is when generation finished.
	DoneTime float64

	// VerifySteps counts verification (or decode) iterations this request
	// participated in, and AcceptedTokens the tokens committed by them; their
	// ratio is the paper's "mean accepted tokens per verification step".
	VerifySteps    int
	AcceptedTokens int
	// PreemptCount counts scheduler preemptions (FastServe/priority).
	PreemptCount int

	// Degraded marks a request an overload admission gate relaxed to
	// best-effort service (see Degrade); DegradedFrom records the category it
	// arrived with, so rollups can attribute the degradation to the original
	// SLO class.
	Degraded     bool
	DegradedFrom Category
	// Retries counts recovery re-dispatches after replica failures (see
	// ResetForRetry). TTFT and TPOT keep measuring from the original arrival,
	// so retried requests pay their lost work against their SLOs.
	Retries int
	// Recompute marks a request whose prompt KV was lost in a failed
	// prefill-to-decode transfer: the destination decode replica must admit it
	// despite remaining prefill work and recompute the prompt in place.
	Recompute bool
	// NoSpec disables speculative decoding for this request: engines skip
	// its draft-tree expansion, so verification commits exactly one token
	// per step (plain autoregressive progress).
	NoSpec bool
	// ReloadStall is the pending host-tier reload latency of this request's
	// cached prefix: set at admission when prefix blocks were matched on the
	// host offload tier, and consumed (added to the pass latency, then
	// zeroed) by the engine the first time the request joins a prefill pass
	// — the reload must complete before attention can read those blocks, so
	// the stall lands inside TTFT.
	ReloadStall float64
}

// PromptSegment is a run of prompt tokens with stable content identity: the
// i-th token of the segment has content seed Hash2(Seed, i), independent of
// where the segment sits in a particular request's prompt history. Session
// workloads reuse segments (the tenant's system prompt, earlier turns)
// across requests, which is what makes their KV prefixes shareable.
type PromptSegment struct {
	Seed uint64
	Len  int
}

// PromptSeeds returns the content seeds of the first n prompt tokens
// (clipped to PromptLen): the position-stable token identities prefix
// caching hashes into block fingerprints. Two requests agree on a position's
// seed iff their segment decompositions agree up to that position.
func (r *Request) PromptSeeds(n int) []uint64 {
	if n > r.PromptLen {
		n = r.PromptLen
	}
	if n <= 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	segs := r.PromptSegs
	if segs == nil {
		segs = []PromptSegment{{Seed: r.Seed, Len: r.PromptLen}}
	}
	for _, seg := range segs {
		for i := 0; i < seg.Len && len(out) < n; i++ {
			out = append(out, mathutil.Hash2(seg.Seed, uint64(i)))
		}
		if len(out) == n {
			break
		}
	}
	for len(out) < n {
		// Defensive: segments shorter than PromptLen pad with request-private
		// content rather than aliasing another request's.
		out = append(out, mathutil.Hash2(r.Seed, uint64(len(out))))
	}
	return out
}

// New constructs a queued request with the mandatory fields set and
// bookkeeping initialized.
func New(id int, cat Category, slo float64, arrival float64, promptLen, maxNew int, seed uint64) *Request {
	r := &Request{
		ID: id, Category: cat, TPOTSLO: slo, Priority: int(cat),
		ArrivalTime: arrival, PromptLen: promptLen, MaxNewTokens: maxNew, Seed: seed,
		Phase:           Queued,
		FirstDecodeTime: -1, FirstTokenTime: -1, DoneTime: -1, AdmitTime: -1,
	}
	r.Ctx = lm.Context{ReqSeed: seed}
	return r
}

// Clone returns a fresh Queued copy of the request's immutable trace fields
// (identity, SLO, arrival, lengths, seed) with lifecycle state reset, so the
// same trace can be replayed through multiple configurations without
// sharing mutable state.
func (r *Request) Clone() *Request {
	cp := New(r.ID, r.Category, r.TPOTSLO, r.ArrivalTime, r.PromptLen, r.MaxNewTokens, r.Seed)
	cp.TTFTSLO = r.TTFTSLO
	cp.PromptSegs = r.PromptSegs // immutable once built; safe to share
	return cp
}

// Degrade relaxes the request to best-effort service: the admission gate's
// alternative to rejection under overload. The category becomes
// Summarization (the batch-tolerant class), the TPOT SLO loosens to at
// least bestEffort seconds per token, the TTFT deadline is waived, the
// priority falls to the batch class's, and speculation is disabled — the
// request decodes one guaranteed token per verification step, returning
// its share of the draft budget to requests still on contractual SLOs.
// Idempotent; DegradedFrom keeps the class the request arrived with.
func (r *Request) Degrade(bestEffort float64) {
	if r.Degraded {
		return
	}
	r.Degraded = true
	r.DegradedFrom = r.Category
	r.Category = Summarization
	r.Priority = int(Summarization)
	if bestEffort > r.TPOTSLO {
		r.TPOTSLO = bestEffort
	}
	r.TTFTSLO = 0
	r.NoSpec = true
}

// ResetForRetry rewinds a request lost to a replica failure so recovery can
// re-dispatch it from scratch: all computed state (prompt progress, output,
// decode context) and service timestamps reset, while identity, SLOs and —
// crucially — ArrivalTime survive, so the retried attempt's TTFT and TPOT
// are measured against the original deadline. Retries increments; degradation
// and preemption history are kept.
func (r *Request) ResetForRetry() {
	r.Phase = Queued
	r.PrefillDone = 0
	r.Output = nil
	r.Ctx = lm.Context{ReqSeed: r.Seed}
	r.AdmitTime = -1
	r.FirstDecodeTime = -1
	r.FirstTokenTime = -1
	r.DoneTime = -1
	r.VerifySteps = 0
	r.AcceptedTokens = 0
	r.Recompute = false
	r.ReloadStall = 0 // the freed allocation's pending reload died with it
	r.Retries++
}

// CloneAll clones a whole trace (see Clone).
func CloneAll(reqs []*Request) []*Request {
	cp := make([]*Request, len(reqs))
	for i, r := range reqs {
		cp[i] = r.Clone()
	}
	return cp
}

// Validate checks construction invariants.
func (r *Request) Validate() error {
	if r.TPOTSLO <= 0 {
		return fmt.Errorf("request %d: non-positive TPOT SLO %g", r.ID, r.TPOTSLO)
	}
	if r.PromptLen <= 0 {
		return fmt.Errorf("request %d: non-positive prompt length %d", r.ID, r.PromptLen)
	}
	if r.MaxNewTokens <= 0 {
		return fmt.Errorf("request %d: non-positive output length %d", r.ID, r.MaxNewTokens)
	}
	return nil
}

// OutputLen returns the number of committed output tokens (o_i).
func (r *Request) OutputLen() int { return len(r.Output) }

// LastToken returns the most recent committed token, or a deterministic
// pseudo prompt-final token if none has been generated yet.
func (r *Request) LastToken() lm.Token {
	if n := len(r.Output); n > 0 {
		return r.Output[n-1]
	}
	return lm.Token(r.Seed % 256)
}

// Commit appends tokens produced by one decode/verify iteration ending at
// time now, and marks completion when the output budget is reached. The
// returned count is the number of tokens actually kept (clipped at
// MaxNewTokens). The input slice is not retained.
func (r *Request) Commit(tokens []lm.Token, now float64) int {
	kept := 0
	for _, t := range tokens {
		if len(r.Output) >= r.MaxNewTokens {
			break
		}
		r.Output = append(r.Output, t)
		r.Ctx = r.Ctx.Extend(t)
		kept++
	}
	r.finishCommit(kept, now)
	return kept
}

// Commit1 commits a single token (see Commit) without requiring the caller
// to build a slice.
func (r *Request) Commit1(tok lm.Token, now float64) int {
	kept := 0
	if len(r.Output) < r.MaxNewTokens {
		r.Output = append(r.Output, tok)
		r.Ctx = r.Ctx.Extend(tok)
		kept = 1
	}
	r.finishCommit(kept, now)
	return kept
}

// finishCommit applies the bookkeeping shared by Commit and Commit1.
func (r *Request) finishCommit(kept int, now float64) {
	if kept > 0 && r.FirstTokenTime < 0 {
		r.FirstTokenTime = now
	}
	r.AcceptedTokens += kept
	if len(r.Output) >= r.MaxNewTokens {
		r.Phase = Done
		r.DoneTime = now
	}
}

// DecodeLatency returns l_i: the time elapsed since the first decode step.
// Zero before decoding starts.
func (r *Request) DecodeLatency(now float64) float64 {
	if r.FirstDecodeTime < 0 {
		return 0
	}
	return now - r.FirstDecodeTime
}

// MinAcceptForSLO computes A(r) from the paper:
//
//	A(r) = (l_i + t_spec) / t_TPOT − o_i
//
// the minimum number of tokens this iteration (of projected duration tspec)
// must commit for the request to remain on its TPOT SLO.
func (r *Request) MinAcceptForSLO(now, tspec float64) float64 {
	return r.MinAcceptFor(now, tspec, r.TPOTSLO)
}

// MinAcceptFor is MinAcceptForSLO against an arbitrary per-token target,
// letting schedulers aim below the contractual SLO (a safety margin that
// absorbs prefill interruptions between decode iterations).
func (r *Request) MinAcceptFor(now, tspec, target float64) float64 {
	return (r.DecodeLatency(now)+tspec)/target - float64(r.OutputLen())
}

// AvgTPOT returns the request's average per-token latency measured from the
// first decode step, the quantity compared against the SLO. It returns 0
// until at least one token exists.
func (r *Request) AvgTPOT(now float64) float64 {
	if r.OutputLen() == 0 || r.FirstDecodeTime < 0 {
		return 0
	}
	end := now
	if r.DoneTime >= 0 {
		end = r.DoneTime
	}
	return (end - r.FirstDecodeTime) / float64(r.OutputLen())
}

// AttainedSLO reports whether a finished request met its TPOT SLO.
func (r *Request) AttainedSLO() bool {
	if r.Phase != Done || r.OutputLen() == 0 {
		return false
	}
	return r.AvgTPOT(r.DoneTime) <= r.TPOTSLO
}

// TTFT returns the time-to-first-token, or -1 if no token was produced.
func (r *Request) TTFT() float64 {
	if r.FirstTokenTime < 0 {
		return -1
	}
	return r.FirstTokenTime - r.ArrivalTime
}

// AttainedTTFT reports whether the request met its TTFT SLO. Requests
// without a TTFT SLO (TTFTSLO <= 0) trivially attain; requests that never
// produced a token do not.
func (r *Request) AttainedTTFT() bool {
	if r.TTFTSLO <= 0 {
		return true
	}
	t := r.TTFT()
	return t >= 0 && t <= r.TTFTSLO
}

// ContextLen returns the KV length if all prompt and output tokens are
// cached: prompt + generated.
func (r *Request) ContextLen() int { return r.PromptLen + len(r.Output) }

// RemainingPrefill returns prompt tokens not yet prefilled.
func (r *Request) RemainingPrefill() int { return r.PromptLen - r.PrefillDone }
