package request

import "testing"

func TestPoolFIFOOrder(t *testing.T) {
	p := NewPool()
	r2 := New(2, Chat, 0.05, 5.0, 16, 8, 1)
	r1 := New(1, Chat, 0.05, 3.0, 16, 8, 1)
	r3 := New(3, Chat, 0.05, 5.0, 16, 8, 1) // same time as r2, higher ID
	p.Enqueue(r2)
	p.Enqueue(r1)
	p.Enqueue(r3)
	w := p.Waiting()
	if w[0] != r1 || w[1] != r2 || w[2] != r3 {
		t.Fatalf("waiting order: %d %d %d", w[0].ID, w[1].ID, w[2].ID)
	}
}

func TestAdmitMovesAndStamps(t *testing.T) {
	p := NewPool()
	r := New(1, Chat, 0.05, 0, 16, 8, 1)
	p.Enqueue(r)
	p.Admit(r, 2.5)
	if p.NumWaiting() != 0 || p.NumRunning() != 1 {
		t.Fatal("admit did not move the request")
	}
	if r.AdmitTime != 2.5 || r.Phase != Prefilling {
		t.Fatalf("admit time %g phase %s", r.AdmitTime, r.Phase)
	}
}

func TestAdmitPanicsIfNotWaiting(t *testing.T) {
	p := NewPool()
	r := New(1, Chat, 0.05, 0, 16, 8, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("admit of unqueued request did not panic")
		}
	}()
	p.Admit(r, 0)
}

func TestPreemptAndResume(t *testing.T) {
	p := NewPool()
	r := New(1, Chat, 0.05, 0, 16, 8, 1)
	p.Enqueue(r)
	p.Admit(r, 1)
	r.Phase = Decoding
	p.Preempt(r)
	if r.Phase != Preempted || r.PreemptCount != 1 {
		t.Fatalf("phase %s count %d", r.Phase, r.PreemptCount)
	}
	if p.NumWaiting() != 1 || p.NumRunning() != 0 {
		t.Fatal("preempt did not requeue")
	}
	// Resuming flips straight to Decoding and keeps AdmitTime.
	p.Admit(r, 5)
	if r.Phase != Decoding {
		t.Fatalf("resumed phase %s", r.Phase)
	}
	if r.AdmitTime != 1 {
		t.Fatal("resume should keep the original admit time")
	}
}

func TestFinishRetiresDone(t *testing.T) {
	p := NewPool()
	r1 := New(1, Chat, 0.05, 0, 16, 1, 1)
	r2 := New(2, Chat, 0.05, 0, 16, 8, 1)
	for _, r := range []*Request{r1, r2} {
		p.Enqueue(r)
		p.Admit(r, 0)
		r.Phase = Decoding
	}
	r1.Phase = Done
	if moved := p.Finish(); moved != 1 {
		t.Fatalf("moved %d", moved)
	}
	if p.NumRunning() != 1 || p.NumDone() != 1 {
		t.Fatal("finish bookkeeping wrong")
	}
	if p.Done()[0] != r1 {
		t.Fatal("wrong request retired")
	}
}

func TestPhaseViews(t *testing.T) {
	p := NewPool()
	r1 := New(1, Chat, 0.05, 0, 16, 8, 1)
	r2 := New(2, Chat, 0.05, 0, 16, 8, 1)
	for _, r := range []*Request{r1, r2} {
		p.Enqueue(r)
		p.Admit(r, 0)
	}
	r2.Phase = Decoding
	if got := p.PrefillingRequests(); len(got) != 1 || got[0] != r1 {
		t.Fatal("prefilling view wrong")
	}
	if got := p.DecodingRequests(); len(got) != 1 || got[0] != r2 {
		t.Fatal("decoding view wrong")
	}
}
