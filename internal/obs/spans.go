// Package obs is the streaming observability layer over the serve event
// stream: per-request span timelines (SpanRecorder, exported as
// Chrome/Perfetto trace-event JSON) and metrics exporters (Prometheus text
// exposition and machine-readable JSON series). The bounded-memory
// histogram the metrics package streams percentiles through lives in the
// obs/hist subpackage.
//
// Everything here is derivation-only: observers never mutate serving state,
// and a run with no observers registered never executes any of this code.
// All output is deterministic — timelines are keyed and ordered by request
// ID, marks by event delivery order — so fixed-seed runs export
// byte-identical traces at any experiment-grid parallelism.
package obs

import (
	"fmt"
	"sort"

	"adaserve/internal/request"
	"adaserve/internal/serve"
)

// Phase is one contiguous span of a request's lifecycle on one instance.
type Phase struct {
	// Name is the span taxonomy label: "queued", "prefill", "kv-transfer"
	// or "decode".
	Name string `json:"name"`
	// Start and End are simulated seconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Instance is the serving instance the phase ran on (the destination,
	// for kv-transfer).
	Instance int `json:"instance"`
}

// Mark is one instantaneous annotation on a request's timeline.
type Mark struct {
	// Name labels the annotation: "first-token", "commit", "slo-tpot",
	// "slo-ttft", "degraded", "rejected", "retry" or "hedged".
	Name string  `json:"name"`
	Time float64 `json:"time"`
	// Instance is the serving instance the annotation concerns (-1 when none
	// is involved, e.g. a rejection at the gate).
	Instance int `json:"instance"`
	// Detail carries the human-readable payload (gate reason, retry attempt,
	// degrade transition); Tokens the commit size for "commit" marks.
	Detail string `json:"detail,omitempty"`
	Tokens int    `json:"tokens,omitempty"`
}

// migration is one recorded KV movement, kept until phase assembly.
type migration struct {
	from, to       int
	depart, arrive float64
}

// Timeline is one request's assembled span timeline.
type Timeline struct {
	// ID is the request ID; Class the SLO class the request arrived with
	// (the pre-degradation class for degraded requests).
	ID    int    `json:"id"`
	Class string `json:"class"`
	// DegradedTo is the class an overload gate relaxed the request to
	// ("" when not degraded).
	DegradedTo string  `json:"degradedTo,omitempty"`
	Arrival    float64 `json:"arrival"`
	// Finish is the request's DoneTime (-1 for rejected requests, which
	// never enter service).
	Finish   float64 `json:"finish"`
	Rejected bool    `json:"rejected,omitempty"`
	// Attained/TTFTAttained are the SLO outcomes from RequestFinished.
	Attained     bool `json:"attained"`
	TTFTAttained bool `json:"ttftAttained"`
	// Retries and Hedges count fault-recovery re-dispatches and duplicate
	// dispatches observed for this request.
	Retries int `json:"retries,omitempty"`
	Hedges  int `json:"hedges,omitempty"`
	// Phases are the contiguous lifecycle spans in time order; Marks the
	// instantaneous annotations in event-delivery order.
	Phases []Phase `json:"phases"`
	Marks  []Mark  `json:"marks"`

	admitInstance int
	migrations    []migration
}

// SpanRecorder is a serve.Observer that assembles per-request span
// timelines from the event stream: queued → prefill → KV-transfer → decode,
// with verify-step commits and retry/hedge/degrade/reject annotations.
// Subscribe one to a serve.Server (or pass it through cluster/experiment
// wiring) and export with WriteTrace after the run.
type SpanRecorder struct {
	live map[int]*Timeline
	done []*Timeline
}

// NewSpanRecorder returns an empty recorder.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{live: make(map[int]*Timeline)}
}

// timeline fetches or creates the request's in-flight timeline.
func (sr *SpanRecorder) timeline(r *request.Request) *Timeline {
	tl := sr.live[r.ID]
	if tl == nil {
		tl = &Timeline{ID: r.ID, Class: r.Category.String(), Arrival: r.ArrivalTime, Finish: -1, admitInstance: -1}
		sr.live[r.ID] = tl
	}
	return tl
}

// OnEvent implements serve.Observer.
func (sr *SpanRecorder) OnEvent(ev serve.Event) {
	switch e := ev.(type) {
	case serve.RequestDegraded:
		// Precedes the RequestAdmitted for the same request: pin the class
		// the request arrived with before the gate rewrote it.
		tl := sr.timeline(e.Req)
		tl.Class = e.From.String()
		tl.DegradedTo = e.To.String()
		tl.Marks = append(tl.Marks, Mark{
			Name: "degraded", Time: e.Time, Instance: -1,
			Detail: fmt.Sprintf("%s→%s: %s", e.From, e.To, e.Reason),
		})
	case serve.RequestAdmitted:
		tl := sr.timeline(e.Req)
		tl.admitInstance = e.Instance
	case serve.RequestRejected:
		tl := sr.timeline(e.Req)
		tl.Rejected = true
		tl.Marks = append(tl.Marks, Mark{Name: "rejected", Time: e.Time, Instance: -1, Detail: e.Reason})
		sr.retire(tl)
	case serve.RequestMigrated:
		tl := sr.timeline(e.Req)
		tl.migrations = append(tl.migrations, migration{from: e.From, to: e.To, depart: e.Depart, arrive: e.Time})
	case serve.FirstToken:
		tl := sr.timeline(e.Req)
		tl.Marks = append(tl.Marks, Mark{Name: "first-token", Time: e.Time, Instance: e.Instance})
	case serve.TokensCommitted:
		tl := sr.timeline(e.Req)
		tl.Marks = append(tl.Marks, Mark{Name: "commit", Time: e.Time, Instance: e.Instance, Tokens: e.Tokens})
	case serve.SLOViolated:
		tl := sr.timeline(e.Req)
		tl.Marks = append(tl.Marks, Mark{Name: "slo-" + e.Kind.String(), Time: e.Time, Instance: e.Instance})
	case serve.RequestRetried:
		tl := sr.timeline(e.Req)
		tl.Retries++
		tl.Marks = append(tl.Marks, Mark{
			Name: "retry", Time: e.Time, Instance: e.Instance,
			Detail: fmt.Sprintf("attempt %d", e.Attempt),
		})
	case serve.RequestHedged:
		tl := sr.timeline(e.Req)
		tl.Hedges++
		tl.Marks = append(tl.Marks, Mark{Name: "hedged", Time: e.Time, Instance: e.Instance})
	case serve.RequestFinished:
		tl := sr.timeline(e.Req)
		tl.Finish = e.Req.DoneTime
		tl.Attained = e.Attained
		tl.TTFTAttained = e.TTFTAttained
		tl.assemble(e.Req, e.Instance)
		sr.retire(tl)
	}
}

// retire moves a timeline from the live map to the finished list.
func (sr *SpanRecorder) retire(tl *Timeline) {
	delete(sr.live, tl.ID)
	sr.done = append(sr.done, tl)
}

// assemble derives the phase spans from the request's lifecycle timestamps
// and the recorded migrations:
//
//	queued       arrival → first scheduling (AdmitTime)
//	prefill      AdmitTime → prefill departure (first migration after
//	             AdmitTime, else first decode step)
//	kv-transfer  one per recorded migration, departure → delivery
//	decode       first decode step → DoneTime
//
// On a colocated replica there is no migration, so "prefill" runs to the
// first decode step and covers any wait for decode eligibility. Phases with
// unset timestamps (e.g. a request that produced no tokens) are omitted;
// retried requests report their final attempt's phases, with earlier
// attempts visible through their retry marks.
func (tl *Timeline) assemble(r *request.Request, finishInstance int) {
	if r.AdmitTime >= 0 && r.AdmitTime >= tl.Arrival {
		tl.Phases = append(tl.Phases, Phase{Name: "queued", Start: tl.Arrival, End: r.AdmitTime, Instance: tl.admitInstance})
	}
	prefillEnd := r.FirstDecodeTime
	for _, m := range tl.migrations {
		if m.depart >= r.AdmitTime && m.depart < prefillEnd {
			prefillEnd = m.depart
			break
		}
	}
	if r.AdmitTime >= 0 && prefillEnd >= r.AdmitTime {
		tl.Phases = append(tl.Phases, Phase{Name: "prefill", Start: r.AdmitTime, End: prefillEnd, Instance: tl.admitInstance})
	}
	for _, m := range tl.migrations {
		tl.Phases = append(tl.Phases, Phase{Name: "kv-transfer", Start: m.depart, End: m.arrive, Instance: m.to})
	}
	if r.FirstDecodeTime >= 0 && r.DoneTime >= r.FirstDecodeTime {
		tl.Phases = append(tl.Phases, Phase{Name: "decode", Start: r.FirstDecodeTime, End: r.DoneTime, Instance: finishInstance})
	}
}

// Timelines returns every retired timeline sorted by request ID. Requests
// still in flight (an aborted run) are not included.
func (sr *SpanRecorder) Timelines() []*Timeline {
	out := append([]*Timeline(nil), sr.done...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
