package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"adaserve/internal/metrics"
	"adaserve/internal/obs/hist"
	"adaserve/internal/request"
	"adaserve/internal/serve"
)

// MetricsExporter is a serve.Observer that captures every periodic Snapshot
// grid point and renders the series — plus a terminal metrics.Summary — as
// Prometheus text exposition or as a machine-readable JSON series. Snapshot
// stats are fixed-size (digests, not histograms), so memory is O(grid
// points), independent of request count.
type MetricsExporter struct {
	snaps []metrics.RollingStats
}

// NewMetricsExporter returns an empty exporter.
func NewMetricsExporter() *MetricsExporter { return &MetricsExporter{} }

// OnEvent implements serve.Observer: it retains Snapshot events.
func (e *MetricsExporter) OnEvent(ev serve.Event) {
	if s, ok := ev.(serve.Snapshot); ok {
		e.snaps = append(e.snaps, s.Stats)
	}
}

// Snapshots returns the captured grid points in emission order.
func (e *MetricsExporter) Snapshots() []metrics.RollingStats { return e.snaps }

// fmtFloat renders a float in the shortest round-trip form Prometheus
// accepts — deterministic across runs and platforms.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders the captured snapshot series and the terminal
// summary as Prometheus text exposition. Series metrics carry explicit
// millisecond timestamps (the snapshot's simulated instant), one sample per
// grid point, grouped by metric name as the format requires; terminal
// metrics follow without timestamps, including full log-bucketed histograms
// for TPOT (overall and per class) and TTFT. sum may be nil to export the
// series alone.
func (e *MetricsExporter) WritePrometheus(w io.Writer, sum *metrics.Summary) error {
	series := []struct {
		name, typ, help string
		value           func(s *metrics.RollingStats) float64
	}{
		{"adaserve_queued", "gauge", "Requests waiting across all instances.",
			func(s *metrics.RollingStats) float64 { return float64(s.Queued) }},
		{"adaserve_running", "gauge", "Requests running across all instances.",
			func(s *metrics.RollingStats) float64 { return float64(s.Running) }},
		{"adaserve_admitted_total", "counter", "Requests admitted so far.",
			func(s *metrics.RollingStats) float64 { return float64(s.Admitted) }},
		{"adaserve_finished_total", "counter", "Requests finished so far.",
			func(s *metrics.RollingStats) float64 { return float64(s.Finished) }},
		{"adaserve_attained_total", "counter", "Finished requests that met their TPOT SLO.",
			func(s *metrics.RollingStats) float64 { return float64(s.Attained) }},
		{"adaserve_window_attainment", "gauge", "SLO attainment over the trailing window.",
			(*metrics.RollingStats).WindowAttainment},
		{"adaserve_window_goodput_tokens_per_second", "gauge", "Goodput over the trailing window.",
			func(s *metrics.RollingStats) float64 { return s.WindowGoodput }},
		{"adaserve_window_tpot_seconds_p50", "gauge", "Median per-request TPOT over the trailing window.",
			func(s *metrics.RollingStats) float64 { return s.WindowTPOTTail.P50 }},
		{"adaserve_window_tpot_seconds_p99", "gauge", "99th-percentile per-request TPOT over the trailing window.",
			func(s *metrics.RollingStats) float64 { return s.WindowTPOTTail.P99 }},
		{"adaserve_tpot_seconds_p99", "gauge", "Cumulative 99th-percentile per-request TPOT.",
			func(s *metrics.RollingStats) float64 { return s.TPOTTail.P99 }},
	}
	for _, m := range series {
		if len(e.snaps) == 0 {
			break
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ); err != nil {
			return err
		}
		for i := range e.snaps {
			s := &e.snaps[i]
			ts := int64(s.Time * 1000)
			if _, err := fmt.Fprintf(w, "%s %s %d\n", m.name, fmtFloat(m.value(s)), ts); err != nil {
				return err
			}
		}
	}
	if sum == nil {
		return nil
	}
	finals := []struct {
		name, typ, help string
		value           float64
	}{
		{"adaserve_requests_total", "counter", "Requests offered over the whole run.", float64(sum.Requests)},
		{"adaserve_run_finished_total", "counter", "Requests finished over the whole run.", float64(sum.Finished)},
		{"adaserve_attainment", "gauge", "Terminal SLO attainment fraction.", sum.Attainment()},
		{"adaserve_ttft_attainment", "gauge", "Terminal TTFT attainment fraction.", sum.TTFTAttainment()},
		{"adaserve_goodput_tokens_per_second", "gauge", "Terminal goodput.", sum.Goodput},
		{"adaserve_throughput_tokens_per_second", "gauge", "Terminal throughput.", sum.Throughput},
		{"adaserve_mean_accepted_per_step", "gauge", "Committed tokens per verification step.", sum.MeanAcceptedPerStep},
	}
	for _, m := range finals {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
			m.name, m.help, m.name, m.typ, m.name, fmtFloat(m.value)); err != nil {
			return err
		}
	}
	if err := writePromHistogram(w, "adaserve_tpot_seconds", "Per-request average TPOT.", "", sum.TPOT); err != nil {
		return err
	}
	if err := writePromHistogram(w, "adaserve_ttft_seconds", "Per-request TTFT.", "", sum.TTFT); err != nil {
		return err
	}
	cats := make([]request.Category, 0, len(sum.PerCategory))
	for c := range sum.PerCategory {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for i, c := range cats {
		cs := sum.PerCategory[c]
		help := ""
		if i == 0 {
			help = "Per-request average TPOT by SLO class."
		}
		label := fmt.Sprintf("class=%q", c.String())
		if err := writePromHistogram(w, "adaserve_class_tpot_seconds", help, label, cs.TPOT); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one hist.Histogram as a Prometheus histogram:
// cumulative bucket counts over the non-empty log buckets, then +Inf, sum
// and count. help is emitted only when non-empty (labelled families declare
// their metadata once).
func writePromHistogram(w io.Writer, name, help, label string, h *hist.Histogram) error {
	if h == nil {
		return nil
	}
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
			return err
		}
	}
	sep := func(le string) string {
		if label == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", label, le)
	}
	bare := ""
	if label != "" {
		bare = "{" + label + "}"
	}
	var cum int64
	var err error
	h.Buckets(func(upper float64, count int64) {
		if err != nil {
			return
		}
		cum += count
		_, err = fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(fmtFloat(upper)), cum)
	})
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep("+Inf"), h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, bare, fmtFloat(h.Sum())); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s_count%s %d\n", name, bare, h.Count())
	return err
}

// seriesPoint is one snapshot grid point of the JSON export.
type seriesPoint struct {
	Time             float64     `json:"time"`
	Queued           int         `json:"queued"`
	Running          int         `json:"running"`
	Admitted         int         `json:"admitted"`
	Finished         int         `json:"finished"`
	Attained         int         `json:"attained"`
	Goodput          float64     `json:"goodput"`
	WindowAttainment float64     `json:"windowAttainment"`
	WindowGoodput    float64     `json:"windowGoodput"`
	WindowTPOT       hist.Digest `json:"windowTPOT"`
	CumulativeTPOT   hist.Digest `json:"cumulativeTPOT"`
	CumulativeTTFT   hist.Digest `json:"cumulativeTTFT"`
}

// jsonSummary is the terminal block of the JSON export.
type jsonSummary struct {
	System         string      `json:"system"`
	Requests       int         `json:"requests"`
	Finished       int         `json:"finished"`
	Attainment     float64     `json:"attainment"`
	TTFTAttainment float64     `json:"ttftAttainment"`
	Goodput        float64     `json:"goodput"`
	Throughput     float64     `json:"throughput"`
	MeanTPOT       float64     `json:"meanTPOT"`
	MeanTTFT       float64     `json:"meanTTFT"`
	TPOT           hist.Digest `json:"tpot"`
	TTFT           hist.Digest `json:"ttft"`
	PerClass       []jsonClass `json:"perClass,omitempty"`
}

// jsonClass is one SLO class's terminal stats.
type jsonClass struct {
	Class      string      `json:"class"`
	Requests   int         `json:"requests"`
	Attainment float64     `json:"attainment"`
	MeanTPOT   float64     `json:"meanTPOT"`
	TPOT       hist.Digest `json:"tpot"`
}

// WriteJSON renders the captured series and terminal summary as one JSON
// document: {"series": [...], "summary": {...}}. sum may be nil to export
// the series alone.
func (e *MetricsExporter) WriteJSON(w io.Writer, sum *metrics.Summary) error {
	doc := struct {
		Series  []seriesPoint `json:"series"`
		Summary *jsonSummary  `json:"summary,omitempty"`
	}{Series: []seriesPoint{}}
	for i := range e.snaps {
		s := &e.snaps[i]
		doc.Series = append(doc.Series, seriesPoint{
			Time: s.Time, Queued: s.Queued, Running: s.Running,
			Admitted: s.Admitted, Finished: s.Finished, Attained: s.Attained,
			Goodput: s.Goodput, WindowAttainment: s.WindowAttainment(),
			WindowGoodput: s.WindowGoodput,
			WindowTPOT:    s.WindowTPOTTail, CumulativeTPOT: s.TPOTTail, CumulativeTTFT: s.TTFTTail,
		})
	}
	if sum != nil {
		js := &jsonSummary{
			System: sum.System, Requests: sum.Requests, Finished: sum.Finished,
			Attainment: sum.Attainment(), TTFTAttainment: sum.TTFTAttainment(),
			Goodput: sum.Goodput, Throughput: sum.Throughput,
			MeanTPOT: sum.MeanTPOT, MeanTTFT: sum.MeanTTFT,
			TPOT: sum.TPOTTail, TTFT: sum.TTFTTail,
		}
		cats := make([]request.Category, 0, len(sum.PerCategory))
		for c := range sum.PerCategory {
			cats = append(cats, c)
		}
		sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
		for _, c := range cats {
			cs := sum.PerCategory[c]
			js.PerClass = append(js.PerClass, jsonClass{
				Class: c.String(), Requests: cs.Requests, Attainment: cs.Attainment(),
				MeanTPOT: cs.MeanTPOT, TPOT: cs.TPOT.Digest(),
			})
		}
		doc.Summary = js
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// PercentileTable renders per-class and aggregate TPOT percentiles (plus an
// aggregate TTFT row) as an aligned text table in milliseconds — the
// -percentiles output of adaserve-sim.
func PercentileTable(sum *metrics.Summary) string {
	var b []byte
	app := func(format string, args ...any) { b = append(b, fmt.Sprintf(format, args...)...) }
	app("%-16s %6s %9s %9s %9s %9s %9s\n", "latency (ms)", "n", "p50", "p90", "p99", "p99.9", "max")
	row := func(name string, d hist.Digest) {
		app("%-16s %6d %9.2f %9.2f %9.2f %9.2f %9.2f\n",
			name, d.Count, 1e3*d.P50, 1e3*d.P90, 1e3*d.P99, 1e3*d.P999, 1e3*d.Max)
	}
	cats := make([]request.Category, 0, len(sum.PerCategory))
	for c := range sum.PerCategory {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, c := range cats {
		if cs := sum.PerCategory[c]; cs.TPOT != nil {
			row("tpot/"+c.String(), cs.TPOT.Digest())
		}
	}
	row("tpot/all", sum.TPOTTail)
	row("ttft/all", sum.TTFTTail)
	return string(b)
}
