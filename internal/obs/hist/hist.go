// Package hist implements a deterministic, bounded-memory streaming
// histogram for latency-style values (positive seconds). Values land in a
// fixed array of base-2 logarithmic buckets — 32 linear sub-buckets per
// octave, giving ≤ ~1.6% relative quantile error — so a histogram's memory
// is a small constant regardless of how many observations it absorbs.
//
// Bucketing is integer-exact: the bucket index is derived from math.Frexp
// (the value's binary exponent and mantissa), never from math.Log, so the
// same value maps to the same bucket on every platform and the structure is
// byte-for-byte deterministic. Merging adds bucket counts, which makes
// quantile results independent of merge grouping or order: a histogram
// filled by one worker and one filled by eight workers over the same
// multiset of values produce identical Digests.
package hist

import "math"

const (
	// subBits sub-divides each octave into 1<<subBits linear buckets.
	subBits  = 5
	subCount = 1 << subBits
	// minExp/maxExp bound the covered binary exponents: values below
	// 2^(minExp-1) (~0.5 µs) collapse into the first bucket, values at or
	// above 2^(maxExp-2) (~36 h) into the last. Quantiles at the extremes
	// stay exact regardless, because rank 0 and rank n−1 answer from the
	// tracked exact min/max.
	minExp = -20
	maxExp = 18
	// NumBuckets is the fixed bucket-array length — the histogram's whole
	// memory footprint, independent of observation count.
	NumBuckets = (maxExp - minExp) * subCount
)

// Histogram is a streaming log-bucketed histogram. The zero value is ready
// to use. Histograms are not safe for concurrent use.
type Histogram struct {
	counts [NumBuckets]int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its bucket. The sub-bucket arithmetic is
// exact: frac−0.5 is exact by Sterbenz's lemma and the scale factor is a
// power of two, so truncation is the only rounding and it is deterministic.
func bucketIndex(v float64) int {
	if !(v > 0) {
		return 0 // zero, negative and NaN observations share the first bucket
	}
	if math.IsInf(v, 1) {
		return NumBuckets - 1
	}
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	if exp < minExp {
		return 0
	}
	if exp >= maxExp {
		return NumBuckets - 1
	}
	sub := int((frac - 0.5) * (2 * subCount))
	return (exp-minExp)*subCount + sub
}

// bucketLower returns bucket i's inclusive lower value bound.
func bucketLower(i int) float64 {
	exp := minExp + i/subCount
	sub := i % subCount
	return math.Ldexp(0.5+float64(sub)/(2*subCount), exp)
}

// bucketUpper returns bucket i's exclusive upper value bound.
func bucketUpper(i int) float64 { return bucketLower(i + 1) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
}

// Remove retracts one previously observed value — the eviction half of a
// sliding-window histogram. The exact min/max are not recomputed (they may
// go stale toward the envelope of everything ever observed); quantiles stay
// correct to bucket resolution. Removing a value that was never observed is
// a caller error; the bucket floor at zero keeps the structure consistent.
func (h *Histogram) Remove(v float64) {
	i := bucketIndex(v)
	if h.counts[i] == 0 || h.count == 0 {
		return
	}
	h.counts[i]--
	h.count--
	h.sum -= v
}

// Merge folds o into h: bucket counts add, min/max combine. Because counts
// are integers and min/max combination is order-independent, any merge
// grouping of the same histograms yields identical quantiles.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of live observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the running sum of live observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean of live observations, or 0 when empty.
// Values are summed in observation order, so a histogram fed the same
// sequence as a slice reproduces mathutil.Mean bit-for-bit.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest value observed (exact), or 0 when empty. After
// Remove it may be stale — see Remove.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest value observed (exact), or 0 when empty. After
// Remove it may be stale — see Remove.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// valueAt returns the value at 0-based sorted ordinal k. The extreme
// ordinals answer from the exact min/max; interior ordinals answer with the
// midpoint of the covering bucket, clamped into [min, max].
func (h *Histogram) valueAt(k int64) float64 {
	if k <= 0 {
		return h.min
	}
	if k >= h.count-1 {
		return h.max
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > k {
			mid := (bucketLower(i) + bucketUpper(i)) / 2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// Percentile returns the p-th percentile (p in [0, 100]) of the live
// observations, following mathutil.Percentile's rank rule: rank =
// p/100·(n−1) with linear interpolation between the two closest ordinals.
// It returns 0 when empty; a single observation answers every p exactly.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := p / 100 * float64(h.count-1)
	lo := int64(math.Floor(rank))
	hi := int64(math.Ceil(rank))
	vlo := h.valueAt(lo)
	if lo == hi {
		return vlo
	}
	frac := rank - float64(lo)
	vhi := h.valueAt(hi)
	return vlo*(1-frac) + vhi*frac
}

// Digest is a histogram's fixed-size percentile summary. Every field is
// derived from bucket counts and the exact min/max only, so digests are
// identical across any merge order of the same observations.
type Digest struct {
	// Count is the number of live observations.
	Count int64
	// Min and Max are the exact extreme observations.
	Min, Max float64
	// P50..P999 are the 50th/90th/99th/99.9th percentiles.
	P50, P90, P99, P999 float64
}

// Digest computes the histogram's percentile summary.
func (h *Histogram) Digest() Digest {
	return Digest{
		Count: h.count,
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
	}
}

// Buckets calls fn for every non-empty bucket in increasing value order with
// the bucket's exclusive upper bound and its count — the iteration Prometheus
// histogram exposition builds on.
func (h *Histogram) Buckets(fn func(upper float64, count int64)) {
	for i, c := range h.counts {
		if c != 0 {
			fn(bucketUpper(i), c)
		}
	}
}
