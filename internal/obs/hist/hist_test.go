package hist

import (
	"math"
	"math/rand"
	"testing"

	"adaserve/internal/mathutil"
)

func TestEmpty(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not zero: %+v", h.Digest())
	}
	if p := h.Percentile(50); p != 0 {
		t.Fatalf("empty Percentile(50) = %g, want 0", p)
	}
	d := h.Digest()
	if d != (Digest{}) {
		t.Fatalf("empty Digest = %+v, want zero", d)
	}
}

func TestSingleObservationExact(t *testing.T) {
	h := New()
	h.Observe(0.042)
	for _, p := range []float64{0, 1, 50, 90, 99, 99.9, 100} {
		if got := h.Percentile(p); got != 0.042 {
			t.Fatalf("Percentile(%g) = %g, want exact 0.042", p, got)
		}
	}
	if h.Mean() != 0.042 || h.Min() != 0.042 || h.Max() != 0.042 {
		t.Fatalf("single-value stats: %+v", h.Digest())
	}
}

func TestBucketBounds(t *testing.T) {
	// Every in-range value must land in a bucket whose bounds contain it.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		v := math.Exp(rng.Float64()*20 - 10) // ~[4.5e-5, 2.2e4]
		b := bucketIndex(v)
		if lo, hi := bucketLower(b), bucketUpper(b); v < lo || v >= hi {
			t.Fatalf("v=%g in bucket %d [%g, %g)", v, b, lo, hi)
		}
	}
	// Exact octave boundaries land in the bucket they open.
	for _, v := range []float64{0.5, 1, 2, 1024} {
		b := bucketIndex(v)
		if bucketLower(b) != v {
			t.Fatalf("boundary %g: bucket %d lower %g", v, b, bucketLower(b))
		}
	}
}

func TestOutOfRangeValues(t *testing.T) {
	h := New()
	h.Observe(0)
	h.Observe(-1)
	h.Observe(1e-12)       // below the covered range
	h.Observe(1e9)         // above the covered range
	h.Observe(math.Inf(1)) // clamps to the top bucket
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != -1 || !math.IsInf(h.Max(), 1) {
		t.Fatalf("min/max = %g/%g", h.Min(), h.Max())
	}
	var total int64
	h.Buckets(func(_ float64, c int64) { total += c })
	if total != 5 {
		t.Fatalf("bucket counts sum to %d, want 5", total)
	}
}

func TestPercentileAccuracy(t *testing.T) {
	// Against the exact slice implementation: relative error bounded by the
	// sub-bucket width (plus interpolation), well under 2%.
	rng := rand.New(rand.NewSource(42))
	h := New()
	var xs []float64
	for i := 0; i < 5000; i++ {
		v := 0.01 * math.Exp(rng.NormFloat64()) // lognormal around 10ms
		xs = append(xs, v)
		h.Observe(v)
	}
	for _, p := range []float64{1, 10, 50, 90, 99, 99.9} {
		want := mathutil.Percentile(xs, p)
		got := h.Percentile(p)
		if rel := math.Abs(got-want) / want; rel > 0.02 {
			t.Errorf("p%g: hist %g vs exact %g (rel err %.3f)", p, got, want, rel)
		}
	}
	// Extremes are exact.
	if h.Percentile(0) != mathutil.Min(xs) || h.Percentile(100) != mathutil.Max(xs) {
		t.Fatalf("extremes not exact: %g/%g", h.Percentile(0), h.Percentile(100))
	}
}

func TestMeanMatchesSliceMean(t *testing.T) {
	// Same observation order ⇒ bit-identical mean (the property the metrics
	// package's byte-identical goldens rely on).
	rng := rand.New(rand.NewSource(3))
	h := New()
	var xs []float64
	for i := 0; i < 1000; i++ {
		v := rng.Float64() * 0.3
		xs = append(xs, v)
		h.Observe(v)
	}
	if h.Mean() != mathutil.Mean(xs) {
		t.Fatalf("Mean %v != mathutil.Mean %v", h.Mean(), mathutil.Mean(xs))
	}
}

func TestRemoveWindow(t *testing.T) {
	h := New()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.001)
	}
	for i := 1; i <= 50; i++ {
		h.Remove(float64(i) * 0.001)
	}
	if h.Count() != 50 {
		t.Fatalf("count = %d", h.Count())
	}
	// The live window is (50ms, 100ms]; its median should sit near 75ms to
	// bucket resolution.
	if p := h.Percentile(50); p < 0.070 || p > 0.080 {
		t.Fatalf("windowed p50 = %g", p)
	}
	// Removing everything returns the histogram to empty counts.
	for i := 51; i <= 100; i++ {
		h.Remove(float64(i) * 0.001)
	}
	if h.Count() != 0 {
		t.Fatalf("count after full removal = %d", h.Count())
	}
	var total int64
	h.Buckets(func(_ float64, c int64) { total += c })
	if total != 0 {
		t.Fatalf("bucket counts after full removal = %d", total)
	}
}

func TestMergeOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([]*Histogram, 8)
	all := New()
	for i := range parts {
		parts[i] = New()
		for j := 0; j < 200; j++ {
			v := 0.02 * math.Exp(rng.NormFloat64())
			parts[i].Observe(v)
			all.Observe(v)
		}
	}
	// Sequential merge vs pairwise-tree merge vs reverse order.
	seq := New()
	for _, p := range parts {
		seq.Merge(p)
	}
	rev := New()
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Merge(parts[i])
	}
	tree := make([]*Histogram, len(parts))
	for i, p := range parts {
		tree[i] = New()
		tree[i].Merge(p)
	}
	for len(tree) > 1 {
		var next []*Histogram
		for i := 0; i < len(tree); i += 2 {
			if i+1 < len(tree) {
				tree[i].Merge(tree[i+1])
			}
			next = append(next, tree[i])
		}
		tree = next
	}
	want := all.Digest()
	for name, h := range map[string]*Histogram{"seq": seq, "rev": rev, "tree": tree[0]} {
		if d := h.Digest(); d != want {
			t.Errorf("%s merge digest %+v != direct %+v", name, d, want)
		}
		if h.counts != all.counts {
			t.Errorf("%s merge bucket counts differ from direct observation", name)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	h := New()
	h.Observe(0.1)
	h.Merge(nil)
	h.Merge(New())
	if h.Count() != 1 || h.Min() != 0.1 || h.Max() != 0.1 {
		t.Fatalf("merge with empty changed state: %+v", h.Digest())
	}
	e := New()
	e.Merge(h)
	if e.Digest() != h.Digest() {
		t.Fatalf("empty.Merge(h) digest %+v != %+v", e.Digest(), h.Digest())
	}
}

func TestBucketsCumulative(t *testing.T) {
	h := New()
	vals := []float64{0.001, 0.01, 0.01, 0.1, 1.5}
	for _, v := range vals {
		h.Observe(v)
	}
	var total int64
	last := 0.0
	h.Buckets(func(upper float64, c int64) {
		if upper <= last {
			t.Fatalf("bucket upper bounds not increasing: %g after %g", upper, last)
		}
		last = upper
		total += c
	})
	if total != int64(len(vals)) {
		t.Fatalf("bucket counts sum %d, want %d", total, len(vals))
	}
}

// TestRemoveGuards pins the no-op guards: retracting from an empty histogram
// or from a bucket that was never filled must not drive counters negative.
func TestRemoveGuards(t *testing.T) {
	h := New()
	h.Remove(1.0) // empty histogram: no-op
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("Remove on empty histogram mutated state: count=%d sum=%g", h.Count(), h.Sum())
	}
	h.Observe(1.0)
	h.Remove(1e6) // value in an untouched bucket: no-op
	if h.Count() != 1 {
		t.Fatalf("Remove of never-observed value changed count: %d", h.Count())
	}
	h.Remove(1.0)
	if h.Count() != 0 {
		t.Fatalf("matched Remove did not retract: count=%d", h.Count())
	}
}
