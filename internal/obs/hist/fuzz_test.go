package hist

import (
	"math"
	"testing"
)

// FuzzHistogramMerge checks the merge algebra on arbitrary value multisets:
// merging is commutative and associative up to digest equality (quantiles
// depend only on bucket counts and exact min/max, all order-independent),
// and per-bucket counts are conserved under any merge grouping.
func FuzzHistogramMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Add([]byte{0, 0, 255, 255, 128, 0, 1, 2, 3, 4})
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120})
	f.Add([]byte{255, 0, 0, 255, 7, 7, 7, 7, 200, 1, 199, 2, 31, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode byte pairs as values spread across (and beyond) the covered
		// range; 0 decodes to an exact zero observation.
		var vals []float64
		for i := 0; i+1 < len(data); i += 2 {
			u := uint64(data[i])<<8 | uint64(data[i+1])
			var v float64
			if u != 0 {
				v = math.Exp(float64(u)/65535*40 - 20) // ~[2e-9, 5e8]
			}
			vals = append(vals, v)
		}

		direct := New()
		for _, v := range vals {
			direct.Observe(v)
		}

		// Split into three parts and merge under two different groupings.
		parts := []*Histogram{New(), New(), New()}
		for i, v := range vals {
			parts[i%3].Observe(v)
		}
		ab := New()
		ab.Merge(parts[0])
		ab.Merge(parts[1])
		abc := New()
		abc.Merge(ab)
		abc.Merge(parts[2])

		cba := New()
		cba.Merge(parts[2])
		cba.Merge(parts[1])
		cba.Merge(parts[0])

		if abc.Digest() != cba.Digest() {
			t.Fatalf("merge order changed digest: %+v vs %+v", abc.Digest(), cba.Digest())
		}
		if abc.Digest() != direct.Digest() {
			t.Fatalf("merged digest %+v != direct %+v", abc.Digest(), direct.Digest())
		}
		if abc.counts != direct.counts || cba.counts != direct.counts {
			t.Fatal("bucket counts not conserved across merge groupings")
		}
		if abc.Count() != int64(len(vals)) {
			t.Fatalf("count %d, want %d", abc.Count(), len(vals))
		}
	})
}
