package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"adaserve/internal/metrics"
	"adaserve/internal/obs/hist"
	"adaserve/internal/request"
	"adaserve/internal/serve"
)

func meta(t float64, seq int) serve.EventMeta { return serve.EventMeta{Time: t, Seq: seq} }

func mkReq(id int, arrival float64) *request.Request {
	r := request.New(id, request.Chat, 0.05, arrival, 60, 80, 1)
	r.TTFTSLO = 1
	return r
}

func TestSpanRejectedAtAdmission(t *testing.T) {
	sr := NewSpanRecorder()
	r := mkReq(0, 1.5)
	sr.OnEvent(serve.RequestRejected{EventMeta: meta(1.5, 0), Req: r, Reason: "queue saturated"})
	tls := sr.Timelines()
	if len(tls) != 1 {
		t.Fatalf("timelines = %d", len(tls))
	}
	tl := tls[0]
	if !tl.Rejected || tl.Finish != -1 || len(tl.Phases) != 0 {
		t.Fatalf("rejected timeline = %+v", tl)
	}
	if len(tl.Marks) != 1 || tl.Marks[0].Name != "rejected" || tl.Marks[0].Detail != "queue saturated" || tl.Marks[0].Instance != -1 {
		t.Fatalf("rejected mark = %+v", tl.Marks)
	}
}

func TestSpanDegradeThenServe(t *testing.T) {
	sr := NewSpanRecorder()
	r := mkReq(3, 2)
	r.Degrade(0.5)
	sr.OnEvent(serve.RequestDegraded{EventMeta: meta(2, 0), Req: r, From: r.DegradedFrom, To: r.Category, Reason: "overload"})
	sr.OnEvent(serve.RequestAdmitted{EventMeta: meta(2, 1), Req: r, Instance: 0})
	r.AdmitTime, r.FirstDecodeTime, r.FirstTokenTime, r.DoneTime = 2.1, 2.4, 2.5, 4.0
	sr.OnEvent(serve.FirstToken{EventMeta: meta(2.5, 2), Req: r, Instance: 0, TTFT: 0.5})
	sr.OnEvent(serve.RequestFinished{EventMeta: meta(4, 3), Req: r, Instance: 0, Attained: true, TTFTAttained: true})
	tl := sr.Timelines()[0]
	if tl.Class != "chat" || tl.DegradedTo != r.Category.String() {
		t.Fatalf("degrade classes: class=%q degradedTo=%q", tl.Class, tl.DegradedTo)
	}
	if len(tl.Phases) != 3 {
		t.Fatalf("phases = %+v", tl.Phases)
	}
	wantPhases := []struct {
		name       string
		start, end float64
	}{{"queued", 2, 2.1}, {"prefill", 2.1, 2.4}, {"decode", 2.4, 4.0}}
	for i, w := range wantPhases {
		p := tl.Phases[i]
		if p.Name != w.name || p.Start != w.start || p.End != w.end {
			t.Fatalf("phase %d = %+v, want %+v", i, p, w)
		}
	}
	if tl.Marks[0].Name != "degraded" || !strings.Contains(tl.Marks[0].Detail, "overload") {
		t.Fatalf("degrade mark = %+v", tl.Marks[0])
	}
}

func TestSpanMigrationWindow(t *testing.T) {
	sr := NewSpanRecorder()
	r := mkReq(7, 0)
	sr.OnEvent(serve.RequestAdmitted{EventMeta: meta(0, 0), Req: r, Instance: 2})
	r.AdmitTime = 0.1
	// Prefill completes on instance 2 at t=0.9; KV lands on instance 5 at 1.0.
	sr.OnEvent(serve.RequestMigrated{EventMeta: meta(1.0, 1), Req: r, From: 2, To: 5, Depart: 0.9, Bytes: 1e6})
	r.FirstDecodeTime, r.FirstTokenTime, r.DoneTime = 1.2, 1.3, 3.0
	sr.OnEvent(serve.RequestFinished{EventMeta: meta(3, 2), Req: r, Instance: 5, Attained: true, TTFTAttained: true})
	tl := sr.Timelines()[0]
	var names []string
	for _, p := range tl.Phases {
		names = append(names, p.Name)
	}
	if got := strings.Join(names, ","); got != "queued,prefill,kv-transfer,decode" {
		t.Fatalf("phase order = %s", got)
	}
	pf, kv, dec := tl.Phases[1], tl.Phases[2], tl.Phases[3]
	if pf.End != 0.9 || pf.Instance != 2 {
		t.Fatalf("prefill truncated at migration depart: %+v", pf)
	}
	if kv.Start != 0.9 || kv.End != 1.0 || kv.Instance != 5 {
		t.Fatalf("kv-transfer window: %+v", kv)
	}
	if dec.Start != 1.2 || dec.End != 3.0 || dec.Instance != 5 {
		t.Fatalf("decode span: %+v", dec)
	}
}

func TestSpanRetryHedgeAnnotations(t *testing.T) {
	sr := NewSpanRecorder()
	r := mkReq(1, 0)
	sr.OnEvent(serve.RequestAdmitted{EventMeta: meta(0, 0), Req: r, Instance: 0})
	sr.OnEvent(serve.RequestRetried{EventMeta: meta(2, 1), Req: r, Instance: 1, Attempt: 1})
	sr.OnEvent(serve.RequestHedged{EventMeta: meta(3, 2), Req: r, Instance: 2})
	r.AdmitTime, r.FirstDecodeTime, r.DoneTime = 2, 2.5, 4
	sr.OnEvent(serve.RequestFinished{EventMeta: meta(4, 3), Req: r, Instance: 2, Attained: false, TTFTAttained: false})
	tl := sr.Timelines()[0]
	if tl.Retries != 1 || tl.Hedges != 1 {
		t.Fatalf("retry/hedge counts: %+v", tl)
	}
	// The final attempt's queued span runs from arrival to the retry's
	// scheduling instant.
	if tl.Phases[0].Name != "queued" || tl.Phases[0].End != 2 {
		t.Fatalf("queued phase = %+v", tl.Phases[0])
	}
	var marks []string
	for _, m := range tl.Marks {
		marks = append(marks, m.Name)
	}
	if got := strings.Join(marks, ","); got != "retry,hedged" {
		t.Fatalf("marks = %s", got)
	}
}

func TestWriteTraceValidDeterministicJSON(t *testing.T) {
	build := func() *SpanRecorder {
		sr := NewSpanRecorder()
		// Deliver out of ID order: export must still order by request ID.
		r2 := mkReq(2, 1)
		sr.OnEvent(serve.RequestAdmitted{EventMeta: meta(1, 0), Req: r2, Instance: 0})
		r2.AdmitTime, r2.FirstDecodeTime, r2.DoneTime = 1.1, 1.2, 2
		sr.OnEvent(serve.TokensCommitted{EventMeta: meta(1.5, 1), Req: r2, Instance: 0, Tokens: 4, Total: 4})
		sr.OnEvent(serve.RequestFinished{EventMeta: meta(2, 2), Req: r2, Instance: 0, Attained: true, TTFTAttained: true})
		r1 := mkReq(1, 0.5)
		sr.OnEvent(serve.RequestRejected{EventMeta: meta(0.5, 3), Req: r1, Reason: "ttft unmeetable"})
		return sr
	}
	var a, b bytes.Buffer
	if err := build().WriteTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WriteTrace not deterministic")
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	lastTid := -1
	for _, ev := range doc.TraceEvents {
		if ev.Tid < lastTid {
			t.Fatalf("events not ordered by request ID: tid %d after %d", ev.Tid, lastTid)
		}
		lastTid = ev.Tid
	}
	// The rejected request (ID 1) precedes the served one (ID 2).
	if doc.TraceEvents[0].Tid != 1 || doc.TraceEvents[0].Ph != "M" {
		t.Fatalf("first event = %+v, want req 1 metadata", doc.TraceEvents[0])
	}
}

func finishedReq(id int, cat request.Category, arrival, done float64) *request.Request {
	r := request.New(id, cat, 0.05, arrival, 60, 4, 1)
	r.TTFTSLO = 1
	r.AdmitTime = arrival + 0.05
	r.FirstDecodeTime = arrival + 0.1
	r.FirstTokenTime = arrival + 0.15
	r.DoneTime = done
	r.Phase = request.Done
	r.Output = append(r.Output, 1, 2, 3, 4)
	return r
}

func TestMetricsExporterPrometheus(t *testing.T) {
	e := NewMetricsExporter()
	ro := metrics.NewRolling(30)
	reqs := []*request.Request{
		finishedReq(0, request.Chat, 0, 1),
		finishedReq(1, request.Coding, 0.5, 2),
	}
	for _, r := range reqs {
		ro.Arrived(r)
		ro.Finished(r)
	}
	e.OnEvent(serve.Snapshot{EventMeta: meta(5, 0), Stats: ro.Snapshot(5, 1, 2)})
	e.OnEvent(serve.Snapshot{EventMeta: meta(10, 1), Stats: ro.Snapshot(10, 0, 0), Final: true})
	sum := metrics.Summarize("test", reqs, metrics.Breakdown{})

	var buf bytes.Buffer
	if err := e.WritePrometheus(&buf, sum); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE adaserve_queued gauge",
		"adaserve_queued 1 5000",
		"adaserve_queued 0 10000",
		"adaserve_finished_total 2 10000",
		"# TYPE adaserve_tpot_seconds histogram",
		`adaserve_tpot_seconds_bucket{le="+Inf"} 2`,
		"adaserve_tpot_seconds_count 2",
		`adaserve_class_tpot_seconds_bucket{class="coding",le="+Inf"} 1`,
		"adaserve_attainment ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Deterministic across identical runs.
	var buf2 bytes.Buffer
	if err := e.WritePrometheus(&buf2, sum); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("WritePrometheus not deterministic")
	}
}

func TestMetricsExporterJSON(t *testing.T) {
	e := NewMetricsExporter()
	ro := metrics.NewRolling(30)
	r := finishedReq(0, request.Chat, 0, 1)
	ro.Arrived(r)
	ro.Finished(r)
	e.OnEvent(serve.Snapshot{EventMeta: meta(5, 0), Stats: ro.Snapshot(5, 0, 1)})
	sum := metrics.Summarize("test", []*request.Request{r}, metrics.Breakdown{})
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf, sum); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series []struct {
			Time     float64 `json:"time"`
			Finished int     `json:"finished"`
		} `json:"series"`
		Summary struct {
			Requests int `json:"requests"`
			PerClass []struct {
				Class string `json:"class"`
			} `json:"perClass"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("JSON export invalid: %v", err)
	}
	if len(doc.Series) != 1 || doc.Series[0].Time != 5 || doc.Series[0].Finished != 1 {
		t.Fatalf("series = %+v", doc.Series)
	}
	if doc.Summary.Requests != 1 || len(doc.Summary.PerClass) != 1 || doc.Summary.PerClass[0].Class != "chat" {
		t.Fatalf("summary = %+v", doc.Summary)
	}
}

func TestPercentileTable(t *testing.T) {
	reqs := []*request.Request{
		finishedReq(0, request.Chat, 0, 1),
		finishedReq(1, request.Coding, 0.5, 2),
	}
	sum := metrics.Summarize("test", reqs, metrics.Breakdown{})
	table := PercentileTable(sum)
	for _, want := range []string{"p50", "p99.9", "tpot/chat", "tpot/coding", "tpot/all", "ttft/all"} {
		if !strings.Contains(table, want) {
			t.Errorf("percentile table missing %q:\n%s", want, table)
		}
	}
}

// TestWritePromHistogramEdges pins the unlabeled family rendering and the
// nil-histogram no-op that lets exporters pass through absent summaries.
func TestWritePromHistogramEdges(t *testing.T) {
	var buf bytes.Buffer
	if err := writePromHistogram(&buf, "x", "", "", nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil histogram emitted output: %q", buf.String())
	}
	h := hist.New()
	h.Observe(0.01)
	if err := writePromHistogram(&buf, "x_seconds", "", "", h); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "# HELP") {
		t.Fatalf("empty help still emitted metadata:\n%s", out)
	}
	for _, w := range []string{`x_seconds_bucket{le="+Inf"} 1`, "x_seconds_sum 0.01", "x_seconds_count 1"} {
		if !strings.Contains(out, w) {
			t.Fatalf("unlabeled histogram output missing %q:\n%s", w, out)
		}
	}
}
