package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceEvent is one Chrome/Perfetto trace-event JSON object. Field order is
// fixed by the struct, so exports are byte-deterministic.
type traceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	// Ph is the event phase: "X" complete span, "i" instant, "M" metadata.
	Ph  string  `json:"ph"`
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	Pid int     `json:"pid"`
	Tid int     `json:"tid"`
	// S scopes instant events ("t": thread).
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTrace renders every retired timeline as Chrome/Perfetto trace-event
// JSON (the {"traceEvents": [...]} wrapper chrome://tracing and ui.perfetto.dev
// both load). Each request renders as one thread (tid = request ID) under a
// single process: lifecycle phases become complete ("X") slices, marks
// become thread-scoped instants, and a metadata record names the thread
// with the request's class and outcome. Timestamps are simulated
// microseconds. Output is deterministic: requests in ID order, one event
// per line.
func (sr *SpanRecorder) WriteTrace(w io.Writer) error {
	const pid = 1
	us := func(t float64) float64 { return t * 1e6 }
	if _, err := io.WriteString(w, "{\"traceEvents\": [\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev traceEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep, first = "", false
		}
		if _, err := io.WriteString(w, sep); err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	}
	for _, tl := range sr.Timelines() {
		outcome := "ok"
		switch {
		case tl.Rejected:
			outcome = "rejected"
		case !tl.Attained:
			outcome = "violated"
		}
		name := fmt.Sprintf("req %d [%s] %s", tl.ID, tl.Class, outcome)
		meta := traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tl.ID,
			Args: map[string]any{"name": name},
		}
		if err := emit(meta); err != nil {
			return err
		}
		for _, p := range tl.Phases {
			args := map[string]any{"instance": p.Instance}
			if p.Name == "queued" {
				// Summary annotations ride the first slice.
				args["attained"] = tl.Attained
				args["ttftAttained"] = tl.TTFTAttained
				if tl.DegradedTo != "" {
					args["degradedTo"] = tl.DegradedTo
				}
				if tl.Retries > 0 {
					args["retries"] = tl.Retries
				}
				if tl.Hedges > 0 {
					args["hedges"] = tl.Hedges
				}
			}
			ev := traceEvent{
				Name: p.Name, Cat: tl.Class, Ph: "X",
				Ts: us(p.Start), Dur: us(p.End - p.Start),
				Pid: pid, Tid: tl.ID, Args: args,
			}
			if err := emit(ev); err != nil {
				return err
			}
		}
		for _, m := range tl.Marks {
			args := map[string]any{}
			if m.Instance >= 0 {
				args["instance"] = m.Instance
			}
			if m.Detail != "" {
				args["detail"] = m.Detail
			}
			if m.Tokens != 0 {
				args["tokens"] = m.Tokens
			}
			ev := traceEvent{
				Name: m.Name, Cat: tl.Class, Ph: "i",
				Ts: us(m.Time), Pid: pid, Tid: tl.ID, S: "t",
			}
			if len(args) > 0 {
				ev.Args = args
			}
			if err := emit(ev); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
