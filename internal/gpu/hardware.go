// Package gpu models GPU execution cost for LLM inference with a
// profiling-style roofline model, mirroring the hardware-awareness AdaServe
// derives its token budget from.
//
// The model captures the three effects the paper's algorithms depend on:
//
//  1. Decoding is memory-bound at small batch sizes: per-iteration latency is
//     dominated by streaming the model weights from HBM, so verifying extra
//     speculated tokens is nearly free until the roofline knee.
//  2. Past the knee, latency grows linearly with the number of tokens in the
//     forward pass (compute-bound), so an unbounded token budget hurts.
//  3. Kernel-launch overhead is significant for small draft models and can be
//     amortized with CUDA-graph-style replay when shapes repeat.
//
// All quantities are SI: bytes, FLOP/s, seconds.
package gpu

import "fmt"

// Hardware describes one GPU's relevant roofline characteristics.
type Hardware struct {
	Name string

	// MemBandwidth is the achievable HBM bandwidth in bytes/second.
	MemBandwidth float64
	// FLOPS is the peak dense FP16 tensor throughput in FLOP/second.
	FLOPS float64
	// MemCapacity is the device memory size in bytes.
	MemCapacity float64
	// LaunchOverhead is the fixed per-kernel launch cost in seconds.
	LaunchOverhead float64
	// GraphLaunchOverhead is the per-replay cost when a CUDA graph capturing
	// the whole iteration is reused (shape-identical invocation).
	GraphLaunchOverhead float64
}

// Validate reports whether the hardware description is physically sensible.
func (h Hardware) Validate() error {
	if h.MemBandwidth <= 0 {
		return fmt.Errorf("gpu: %s: non-positive memory bandwidth", h.Name)
	}
	if h.FLOPS <= 0 {
		return fmt.Errorf("gpu: %s: non-positive FLOPS", h.Name)
	}
	if h.MemCapacity <= 0 {
		return fmt.Errorf("gpu: %s: non-positive memory capacity", h.Name)
	}
	if h.LaunchOverhead < 0 || h.GraphLaunchOverhead < 0 {
		return fmt.Errorf("gpu: %s: negative launch overhead", h.Name)
	}
	return nil
}

// Stock hardware profiles. Numbers are public datasheet peaks derated to
// end-to-end achievable rates for multi-GPU LLM serving (~55% of peak
// bandwidth, ~50% of peak tensor FLOPS): with these, Llama-70B FP16 on
// 4-way-TP A100s decodes at ~33 ms/token unloaded, matching published
// measurements (and the paper's ~40 ms MLPerf SLO at 1.2x baseline).
var (
	// A100 is an NVIDIA A100-SXM4-80GB, the GPU used in the paper (Table 1).
	A100 = Hardware{
		Name:                "A100-80GB",
		MemBandwidth:        2.039e12 * 0.55,
		FLOPS:               312e12 * 0.50,
		MemCapacity:         80e9,
		LaunchOverhead:      6e-6,
		GraphLaunchOverhead: 1.5e-6,
	}

	// H100 is an NVIDIA H100-SXM5-80GB, provided for hardware-sensitivity
	// ablations (the paper argues the budget is hardware-dependent).
	H100 = Hardware{
		Name:                "H100-80GB",
		MemBandwidth:        3.35e12 * 0.55,
		FLOPS:               989e12 * 0.50,
		MemCapacity:         80e9,
		LaunchOverhead:      5e-6,
		GraphLaunchOverhead: 1.2e-6,
	}

	// L4 is a small inference GPU; its much lower knee stresses the budget
	// solver in the opposite direction.
	L4 = Hardware{
		Name:                "L4-24GB",
		MemBandwidth:        300e9 * 0.55,
		FLOPS:               121e12 * 0.50,
		MemCapacity:         24e9,
		LaunchOverhead:      8e-6,
		GraphLaunchOverhead: 2e-6,
	}
)

// ModelSpec describes a transformer LLM's cost-relevant dimensions.
type ModelSpec struct {
	Name string
	// Params is the total parameter count.
	Params float64
	// Layers is the number of transformer blocks.
	Layers int
	// Hidden is the model (embedding) dimension.
	Hidden int
	// KVHeads is the number of key/value heads (GQA).
	KVHeads int
	// HeadDim is the per-head dimension.
	HeadDim int
	// BytesPerParam is the weight precision (2 for FP16/BF16).
	BytesPerParam float64
	// VocabSize is the output vocabulary size.
	VocabSize int
}

// WeightBytes returns the total bytes of model weights.
func (m ModelSpec) WeightBytes() float64 {
	return m.Params * m.BytesPerParam
}

// KVBytesPerToken returns the KV-cache bytes appended per token
// (K and V, all layers, FP16).
func (m ModelSpec) KVBytesPerToken() float64 {
	return 2 * float64(m.Layers) * float64(m.KVHeads) * float64(m.HeadDim) * 2
}

// FLOPsPerToken returns the dense FLOPs needed to process one token through
// the model (the standard 2·P approximation).
func (m ModelSpec) FLOPsPerToken() float64 {
	return 2 * m.Params
}

// Validate reports whether the model spec is usable by the cost model.
func (m ModelSpec) Validate() error {
	if m.Params <= 0 {
		return fmt.Errorf("gpu: model %s: non-positive parameter count", m.Name)
	}
	if m.Layers <= 0 || m.Hidden <= 0 || m.KVHeads <= 0 || m.HeadDim <= 0 {
		return fmt.Errorf("gpu: model %s: non-positive dimensions", m.Name)
	}
	if m.BytesPerParam <= 0 {
		return fmt.Errorf("gpu: model %s: non-positive bytes per param", m.Name)
	}
	if m.VocabSize <= 0 {
		return fmt.Errorf("gpu: model %s: non-positive vocab size", m.Name)
	}
	return nil
}

// Model specs matching the paper's evaluation (Table 1) plus the paired
// draft models. Architecture dimensions are the published ones.
var (
	Llama70B = ModelSpec{
		Name: "Llama-3.1-70B-Instruct", Params: 70.6e9, Layers: 80,
		Hidden: 8192, KVHeads: 8, HeadDim: 128, BytesPerParam: 2, VocabSize: 128256,
	}
	Llama1B = ModelSpec{
		Name: "Llama-3.2-1B-Instruct", Params: 1.24e9, Layers: 16,
		Hidden: 2048, KVHeads: 8, HeadDim: 64, BytesPerParam: 2, VocabSize: 128256,
	}
	Qwen32B = ModelSpec{
		Name: "Qwen2.5-32B-Instruct", Params: 32.8e9, Layers: 64,
		Hidden: 5120, KVHeads: 8, HeadDim: 128, BytesPerParam: 2, VocabSize: 152064,
	}
	Qwen05B = ModelSpec{
		Name: "Qwen2.5-0.5B-Instruct", Params: 0.49e9, Layers: 24,
		Hidden: 896, KVHeads: 2, HeadDim: 64, BytesPerParam: 2, VocabSize: 151936,
	}
)
