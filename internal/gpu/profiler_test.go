package gpu

import "testing"

func TestProfileCostModel(t *testing.T) {
	cm := MustCostModel(A100, Llama70B, 4)
	p, err := ProfileCostModel(cm, 2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	if p.ModelName != Llama70B.Name {
		t.Errorf("profile model name %q", p.ModelName)
	}
	if p.Base <= 0 || p.Slope <= 0 || p.Knee <= 0 {
		t.Fatalf("degenerate fit: %+v", p)
	}
	if len(p.Points) < 20 {
		t.Fatalf("too few profile points: %d", len(p.Points))
	}
}

func TestProfileRejectsTinySweep(t *testing.T) {
	cm := MustCostModel(A100, Llama70B, 4)
	if _, err := ProfileCostModel(cm, 4, 0); err == nil {
		t.Fatal("sweep of 4 tokens should be rejected")
	}
}

func TestProfilePredictionsTrackModel(t *testing.T) {
	cm := MustCostModel(A100, Llama70B, 4)
	p, err := ProfileCostModel(cm, 2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range []int{1, 64, 256, 1024} {
		pred := p.Latency(tok)
		actual := cm.ForwardLatencyPure(BatchShape{Tokens: tok, Seqs: tok, KVTokens: tok * 512})
		ratio := pred / actual
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("at %d tokens: predicted %.2fms vs actual %.2fms (ratio %.2f)",
				tok, 1e3*pred, 1e3*actual, ratio)
		}
	}
}

func TestProfileLatencyMonotone(t *testing.T) {
	cm := MustCostModel(A100, Qwen32B, 2)
	p, err := ProfileCostModel(cm, 1024, 256)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for tok := 0; tok <= 1024; tok += 32 {
		l := p.Latency(tok)
		if l < prev {
			t.Fatalf("profile latency decreased at %d tokens", tok)
		}
		prev = l
	}
	if p.Latency(0) != 0 {
		t.Error("zero tokens should cost zero")
	}
}

func TestBudgetForRoundTrips(t *testing.T) {
	cm := MustCostModel(A100, Llama70B, 4)
	p, err := ProfileCostModel(cm, 2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, factor := range []float64{1.2, 1.5, 2.0, 3.0} {
		target := factor * p.Base
		b := p.BudgetFor(target)
		if b < 1 {
			t.Fatalf("factor %.1f: budget %d < 1", factor, b)
		}
		if got := p.Latency(b); got > target*1.02 {
			t.Errorf("factor %.1f: budget %d predicted latency %.2fms exceeds target %.2fms",
				factor, b, 1e3*got, 1e3*target)
		}
	}
	// Infeasible target returns the minimum.
	if b := p.BudgetFor(p.Base / 2); b != 1 {
		t.Errorf("sub-base target should yield budget 1, got %d", b)
	}
}

func TestBudgetGrowsWithTarget(t *testing.T) {
	cm := MustCostModel(A100, Llama70B, 4)
	p, err := ProfileCostModel(cm, 2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	if p.BudgetFor(2*p.Base) <= p.BudgetFor(1.2*p.Base) {
		t.Fatal("looser target should allow a larger budget")
	}
}
