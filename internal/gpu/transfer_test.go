package gpu

import "testing"

func TestInterconnectTransferTime(t *testing.T) {
	ic := Interconnect{Name: "test", Bandwidth: 1e9, Latency: 1e-3}
	if err := ic.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := ic.TransferTime(0); got != 1e-3 {
		t.Fatalf("zero-byte transfer %g, want the fixed latency", got)
	}
	if got, want := ic.TransferTime(2e9), 1e-3+2.0; got != want {
		t.Fatalf("transfer time %g, want %g", got, want)
	}
	bad := Interconnect{Name: "bad", Bandwidth: 0}
	if bad.Validate() == nil {
		t.Fatal("zero bandwidth accepted")
	}
	bad = Interconnect{Name: "bad", Bandwidth: 1, Latency: -1}
	if bad.Validate() == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestKVTransferPricesPromptKV(t *testing.T) {
	tr := KVTransfer{Model: Llama70B, Link: RDMA400}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Bytes(700), Llama70B.KVBytesPerToken()*700; got != want {
		t.Fatalf("bytes %g, want %g", got, want)
	}
	if tr.Bytes(0) != 0 || tr.Bytes(-3) != 0 {
		t.Fatal("non-positive prompt lengths should transfer nothing")
	}
	lat := tr.Latency(700)
	if want := RDMA400.Latency + tr.Bytes(700)/RDMA400.Bandwidth; lat != want {
		t.Fatalf("latency %g, want %g", lat, want)
	}
	// A 700-token Llama-70B prompt over 400 Gb RDMA is ~9 ms: the modeled
	// handoff must land in single-digit milliseconds, not microseconds or
	// seconds.
	if lat < 1e-3 || lat > 0.1 {
		t.Fatalf("implausible migration latency %g s", lat)
	}
	// Faster links migrate faster.
	nv := KVTransfer{Model: Llama70B, Link: NVLink4}
	if nv.Latency(700) >= lat {
		t.Fatal("NVLink migration not faster than cross-node RDMA")
	}
	if (KVTransfer{Model: Llama70B, Link: Interconnect{}}).Validate() == nil {
		t.Fatal("invalid link accepted")
	}
}
