package gpu

import (
	"fmt"
	"sort"
)

// Profile is a fitted piecewise-linear latency model
// lat(T) ≈ Base + Slope·max(0, T − Knee), obtained by "profiling" a cost
// model at a sweep of token counts. AdaServe is described as using
// profiling-based roofline models rather than datasheet numbers; this type
// plays that role: schedulers consume a Profile, never the analytic model
// directly, so a real deployment could swap in measured numbers.
type Profile struct {
	ModelName string
	// Base is the flat-region iteration latency in seconds.
	Base float64
	// Slope is the marginal seconds per extra token past the knee.
	Slope float64
	// Knee is the token count where latency departs the flat region.
	Knee int
	// Points are the raw (tokens, latency) samples the fit came from.
	Points []ProfilePoint
}

// ProfilePoint is one profiling sample.
type ProfilePoint struct {
	Tokens  int
	Latency float64
}

// ProfileCostModel sweeps the cost model across token counts (with kvPerTok
// context tokens of KV per batched token, approximating steady state) and
// fits the piecewise-linear roofline.
func ProfileCostModel(cm *CostModel, maxTokens, kvPerTok int) (*Profile, error) {
	if maxTokens < 8 {
		return nil, fmt.Errorf("gpu: profile sweep needs maxTokens >= 8, got %d", maxTokens)
	}
	var pts []ProfilePoint
	for t := 1; t <= maxTokens; t = nextSweepPoint(t) {
		lat := cm.ForwardLatencyPure(BatchShape{Tokens: t, Seqs: t, KVTokens: t * kvPerTok})
		pts = append(pts, ProfilePoint{Tokens: t, Latency: lat})
	}
	p := fitProfile(pts)
	p.ModelName = cm.Model.Name
	return p, nil
}

// nextSweepPoint yields a geometric-ish sweep: 1,2,3,...,16 then +12.5%.
func nextSweepPoint(t int) int {
	if t < 16 {
		return t + 1
	}
	n := t + t/8
	if n == t {
		n = t + 1
	}
	return n
}

// fitProfile locates the knee as the sample where latency first exceeds the
// flat region by 5%, then least-squares fits the slope on samples past it.
func fitProfile(pts []ProfilePoint) *Profile {
	sort.Slice(pts, func(i, j int) bool { return pts[i].Tokens < pts[j].Tokens })
	base := pts[0].Latency
	knee := pts[len(pts)-1].Tokens
	for _, p := range pts {
		if p.Latency > base*1.05 {
			knee = p.Tokens
			break
		}
	}
	// Least-squares on the linear region.
	var sx, sy, sxx, sxy, n float64
	for _, p := range pts {
		if p.Tokens < knee {
			continue
		}
		x, y := float64(p.Tokens), p.Latency
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	slope := 0.0
	if n >= 2 && sxx*n-sx*sx != 0 {
		slope = (n*sxy - sx*sy) / (n*sxx - sx*sx)
		if slope < 0 {
			slope = 0
		}
	}
	return &Profile{Base: base, Slope: slope, Knee: knee, Points: pts}
}

// Latency evaluates the fitted model at a token count.
func (p *Profile) Latency(tokens int) float64 {
	if tokens <= 0 {
		return 0
	}
	extra := float64(tokens - p.Knee)
	if extra < 0 {
		extra = 0
	}
	return p.Base + p.Slope*extra
}

// BudgetFor inverts the fitted model: the max token count whose predicted
// latency stays within target. Returns at least 1.
func (p *Profile) BudgetFor(target float64) int {
	if target <= p.Base {
		return 1
	}
	if p.Slope <= 0 {
		return p.Knee
	}
	b := p.Knee + int((target-p.Base)/p.Slope)
	if b < 1 {
		return 1
	}
	return b
}
