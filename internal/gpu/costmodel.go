package gpu

import (
	"fmt"
	"math"
)

// BatchShape summarizes one forward pass for costing purposes.
type BatchShape struct {
	// Tokens is the total number of input positions processed in this pass
	// (sum over sequences of new tokens: 1 for plain decode, the tree size
	// for tree verification, the chunk length for prefill).
	Tokens int
	// Seqs is the number of distinct sequences in the batch.
	Seqs int
	// KVTokens is the total context length attended over, summed across
	// sequences (drives KV-cache reads).
	KVTokens int
}

// Validate reports whether the shape is well-formed.
func (b BatchShape) Validate() error {
	if b.Tokens < 0 || b.Seqs < 0 || b.KVTokens < 0 {
		return fmt.Errorf("gpu: negative batch shape %+v", b)
	}
	if b.Seqs > b.Tokens && b.Tokens > 0 {
		return fmt.Errorf("gpu: batch shape has more sequences than tokens: %+v", b)
	}
	return nil
}

// CostModel estimates forward-pass latency for one model on one tensor-
// parallel group of identical GPUs using a roofline:
//
//	latency = max(weight-load time, compute time) + KV-read time + launch overhead
//
// Tensor parallelism divides both bandwidth-bound and compute-bound terms by
// TP and adds a per-layer all-reduce cost.
type CostModel struct {
	HW    Hardware
	Model ModelSpec
	// TP is the tensor-parallel degree (>= 1).
	TP int
	// UseCUDAGraphs enables graph-replay launch-overhead amortization for
	// shape-identical invocations.
	UseCUDAGraphs bool
	// KernelsPerLayer approximates how many kernel launches one transformer
	// layer needs without graph capture.
	KernelsPerLayer int
	// AllReduceLatency is the per-layer collective cost with TP > 1, seconds.
	AllReduceLatency float64
	// BandwidthUtil scales achievable memory bandwidth for this model.
	// Small models cannot saturate HBM (their per-layer tensors are too
	// small to hide latency), which is why ~1B draft models decode at
	// ~5 ms/step rather than the ~1 ms a pure roofline predicts. Defaults
	// to min(1, sqrt(params/8e9)).
	BandwidthUtil float64

	// graphCache remembers shapes already "captured"; replays are cheaper.
	graphCache map[graphKey]struct{}
	// Captures counts graph captures performed (for tests/ablations).
	Captures int
	// Replays counts graph replays performed.
	Replays int
}

type graphKey struct {
	tokens int
	seqs   int
}

// NewCostModel constructs a validated cost model.
func NewCostModel(hw Hardware, model ModelSpec, tp int) (*CostModel, error) {
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if tp < 1 {
		return nil, fmt.Errorf("gpu: tensor parallel degree %d < 1", tp)
	}
	if model.WeightBytes()/float64(tp) > hw.MemCapacity {
		return nil, fmt.Errorf("gpu: model %s (%.0f GB) does not fit on %d x %s",
			model.Name, model.WeightBytes()/1e9, tp, hw.Name)
	}
	util := math.Sqrt(model.Params / 8e9)
	if util > 1 {
		util = 1
	}
	return &CostModel{
		HW:               hw,
		Model:            model,
		TP:               tp,
		UseCUDAGraphs:    true,
		KernelsPerLayer:  8,
		AllReduceLatency: 4e-6,
		BandwidthUtil:    util,
	}, nil
}

// MustCostModel is NewCostModel that panics on error; for tests and fixed
// experiment setups whose parameters are compile-time constants.
func MustCostModel(hw Hardware, model ModelSpec, tp int) *CostModel {
	cm, err := NewCostModel(hw, model, tp)
	if err != nil {
		panic(err)
	}
	return cm
}

// bandwidth is the model-achievable HBM bandwidth across the TP group.
func (c *CostModel) bandwidth() float64 {
	util := c.BandwidthUtil
	if util <= 0 || util > 1 {
		util = 1
	}
	return c.HW.MemBandwidth * util * float64(c.TP)
}

// weightLoadTime is the time to stream all weights from HBM once,
// split across the TP group.
func (c *CostModel) weightLoadTime() float64 {
	return c.Model.WeightBytes() / c.bandwidth()
}

// computeTime is the dense-GEMM time for tokens positions.
func (c *CostModel) computeTime(tokens int) float64 {
	return c.Model.FLOPsPerToken() * float64(tokens) / (c.HW.FLOPS * float64(c.TP))
}

// kvReadTime is the time to stream the attended KV cache.
func (c *CostModel) kvReadTime(kvTokens int) float64 {
	return c.Model.KVBytesPerToken() * float64(kvTokens) / c.bandwidth()
}

// launchTime models kernel-launch overhead, optionally amortized by CUDA
// graph replay for repeated shapes. Capture itself costs one un-graphed
// launch sequence (the paper reuses graphs across iterations with the same
// active-request count).
func (c *CostModel) launchTime(shape BatchShape) float64 {
	kernels := float64(c.KernelsPerLayer*c.Model.Layers + 4)
	plain := kernels * c.HW.LaunchOverhead
	if !c.UseCUDAGraphs {
		return plain
	}
	if c.graphCache == nil {
		c.graphCache = make(map[graphKey]struct{})
	}
	key := graphKey{tokens: shape.Tokens, seqs: shape.Seqs}
	if _, ok := c.graphCache[key]; ok {
		c.Replays++
		return c.HW.GraphLaunchOverhead * kernels / 16
	}
	c.graphCache[key] = struct{}{}
	c.Captures++
	return plain
}

// collectiveTime is the tensor-parallel synchronization cost per pass.
func (c *CostModel) collectiveTime() float64 {
	if c.TP <= 1 {
		return 0
	}
	return float64(c.Model.Layers) * c.AllReduceLatency
}

// ForwardLatency returns the modeled wall time of one forward pass with the
// given shape. An empty shape costs zero.
func (c *CostModel) ForwardLatency(shape BatchShape) float64 {
	if shape.Tokens == 0 {
		return 0
	}
	if err := shape.Validate(); err != nil {
		panic(err)
	}
	roof := math.Max(c.weightLoadTime(), c.computeTime(shape.Tokens))
	return roof + c.kvReadTime(shape.KVTokens) + c.launchTime(shape) + c.collectiveTime()
}

// RooflineKnee returns the token count at which the compute term equals the
// weight-load term: below this, extra tokens in a forward pass are almost
// free. This is the quantity AdaServe's budget is anchored to.
func (c *CostModel) RooflineKnee() int {
	// weightBytes/BW == 2·P·T/FLOPS  =>  T = FLOPS·bytesPerParam/(2·BW)
	t := c.HW.FLOPS * float64(c.TP) * c.Model.BytesPerParam / (2 * c.bandwidth())
	if t < 1 {
		return 1
	}
	return int(t)
}

// BaselineLatency returns the per-token decode latency at batch size 1 with
// context length ctx. The paper uses this (measured near-zero load) as the
// reference for category-1 SLOs (1.2x baseline).
func (c *CostModel) BaselineLatency(ctx int) float64 {
	return c.ForwardLatencyPure(BatchShape{Tokens: 1, Seqs: 1, KVTokens: ctx})
}

// ForwardLatencyPure is ForwardLatency without mutating CUDA-graph cache
// state (always assumes a graph hit when graphs are on). Use for planning
// computations that must not perturb the model's statistics.
func (c *CostModel) ForwardLatencyPure(shape BatchShape) float64 {
	if shape.Tokens == 0 {
		return 0
	}
	roof := math.Max(c.weightLoadTime(), c.computeTime(shape.Tokens))
	kernels := float64(c.KernelsPerLayer*c.Model.Layers + 4)
	var launch float64
	if c.UseCUDAGraphs {
		launch = c.HW.GraphLaunchOverhead * kernels / 16
	} else {
		launch = kernels * c.HW.LaunchOverhead
	}
	return roof + c.kvReadTime(shape.KVTokens) + launch + c.collectiveTime()
}

// TokenBudget solves for the largest per-iteration token budget B such that
// a verification pass over B tokens (with the given total KV context)
// finishes within targetLatency. Returns at least minBudget so systems can
// always make progress (one token per active request).
func (c *CostModel) TokenBudget(targetLatency float64, kvTokens, minBudget int) int {
	if targetLatency <= 0 {
		return minBudget
	}
	lo, hi := 1, 1<<20
	for lo < hi {
		mid := (lo + hi + 1) / 2
		seqs := mid
		lat := c.ForwardLatencyPure(BatchShape{Tokens: mid, Seqs: seqs, KVTokens: kvTokens})
		if lat <= targetLatency {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo < minBudget {
		return minBudget
	}
	return lo
}

// KVCapacityTokens returns how many KV-cache tokens fit in the TP group's
// free memory after weights, with a reserve fraction held back for
// activations and fragmentation.
func (c *CostModel) KVCapacityTokens(reserveFrac float64) int {
	free := c.HW.MemCapacity*float64(c.TP) - c.Model.WeightBytes()
	free *= 1 - reserveFrac
	if free <= 0 {
		return 0
	}
	return int(free / c.Model.KVBytesPerToken())
}

// ResetGraphCache clears captured CUDA graphs (e.g., after a reconfiguration
// that invalidates shapes).
func (c *CostModel) ResetGraphCache() {
	c.graphCache = nil
	c.Captures = 0
	c.Replays = 0
}
