package gpu

import "fmt"

// Interconnect models the link carrying KV-cache pages between serving
// instances in a disaggregated prefill/decode deployment: a fixed
// per-transfer setup latency plus a bandwidth term.
type Interconnect struct {
	Name string
	// Bandwidth is the achievable transfer bandwidth in bytes/second.
	Bandwidth float64
	// Latency is the fixed per-migration cost in seconds (connection setup,
	// page-table handoff, scheduler RPC), paid once per transfer regardless
	// of size.
	Latency float64
}

// Validate reports whether the interconnect description is usable.
func (ic Interconnect) Validate() error {
	if ic.Bandwidth <= 0 {
		return fmt.Errorf("gpu: interconnect %s: non-positive bandwidth", ic.Name)
	}
	if ic.Latency < 0 {
		return fmt.Errorf("gpu: interconnect %s: negative latency", ic.Name)
	}
	return nil
}

// TransferTime returns the modeled wall time to move the given byte count
// across the link.
func (ic Interconnect) TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return ic.Latency
	}
	return ic.Latency + bytes/ic.Bandwidth
}

// Stock interconnect profiles, derated from datasheet peaks the same way the
// Hardware profiles are (sustained large-message rates, not burst peaks).
var (
	// NVLink4 is an intra-node NVLink 4 path (Hopper-class): the
	// disaggregation-is-nearly-free case.
	NVLink4 = Interconnect{Name: "NVLink4", Bandwidth: 450e9, Latency: 5e-6}

	// PCIe4 is a 16-lane PCIe 4.0 path through host memory — the cheapest
	// intra-node fallback and a deliberately punishing link for ablations.
	PCIe4 = Interconnect{Name: "PCIe4-x16", Bandwidth: 25e9, Latency: 20e-6}

	// RDMA400 is a 400 Gb/s RDMA fabric between nodes (sustained ~50 GB/s),
	// the cross-node link disaggregated deployments actually run on; the
	// default for the disaggregation experiments.
	RDMA400 = Interconnect{Name: "RDMA-400Gb", Bandwidth: 50e9, Latency: 30e-6}
)

// KVTransfer prices the prefill-to-decode handoff of a disaggregated
// deployment: moving a request's prompt KV cache from the prefill instance
// to the decode instance costs bytes = KVBytesPerToken x prompt length over
// the interconnect, plus the link's fixed per-migration latency.
type KVTransfer struct {
	Model ModelSpec
	Link  Interconnect
}

// Validate reports whether the transfer model is usable.
func (t KVTransfer) Validate() error {
	if err := t.Model.Validate(); err != nil {
		return err
	}
	return t.Link.Validate()
}

// Bytes returns the KV-cache size of a promptTokens-long prefix.
func (t KVTransfer) Bytes(promptTokens int) float64 {
	if promptTokens <= 0 {
		return 0
	}
	return t.Model.KVBytesPerToken() * float64(promptTokens)
}

// Latency returns the modeled wall time of one prefill-to-decode migration
// for a request with the given prompt length.
func (t KVTransfer) Latency(promptTokens int) float64 {
	return t.Link.TransferTime(t.Bytes(promptTokens))
}
