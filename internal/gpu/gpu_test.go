package gpu

import (
	"math"
	"testing"
)

func TestHardwareValidate(t *testing.T) {
	for _, hw := range []Hardware{A100, H100, L4} {
		if err := hw.Validate(); err != nil {
			t.Errorf("%s: %v", hw.Name, err)
		}
	}
	bad := A100
	bad.MemBandwidth = 0
	if bad.Validate() == nil {
		t.Error("zero bandwidth should not validate")
	}
}

func TestModelSpecDerived(t *testing.T) {
	if got := Llama70B.WeightBytes(); math.Abs(got-70.6e9*2) > 1 {
		t.Errorf("WeightBytes = %g", got)
	}
	// 2 (K,V) x 80 layers x 8 heads x 128 dim x 2 bytes = 327,680 B/token.
	if got := Llama70B.KVBytesPerToken(); got != 327680 {
		t.Errorf("KVBytesPerToken = %g", got)
	}
	if got := Llama70B.FLOPsPerToken(); got != 2*70.6e9 {
		t.Errorf("FLOPsPerToken = %g", got)
	}
	for _, m := range []ModelSpec{Llama70B, Llama1B, Qwen32B, Qwen05B} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestNewCostModelRejectsOversizedModel(t *testing.T) {
	if _, err := NewCostModel(A100, Llama70B, 1); err == nil {
		t.Fatal("70B on one 80GB GPU should not fit")
	}
	if _, err := NewCostModel(A100, Llama70B, 4); err != nil {
		t.Fatalf("70B on 4 GPUs should fit: %v", err)
	}
}

func TestNewCostModelRejectsBadTP(t *testing.T) {
	if _, err := NewCostModel(A100, Llama1B, 0); err == nil {
		t.Fatal("TP=0 should be rejected")
	}
}

func TestBaselineLatencyRealistic(t *testing.T) {
	// Llama-70B FP16 on 4xA100 decodes at roughly 30-40 ms/token in real
	// deployments; the calibrated model must land there for the paper's
	// 40 ms MLPerf SLO (1.2x baseline) to be meaningful.
	cm := MustCostModel(A100, Llama70B, 4)
	base := cm.BaselineLatency(512)
	if base < 0.025 || base > 0.045 {
		t.Fatalf("baseline latency %.1f ms outside the plausible 25-45 ms band", 1e3*base)
	}
}

func TestDraftStepLatencyRealistic(t *testing.T) {
	// A ~1B draft decodes at single-digit milliseconds, NOT the ~1 ms a
	// naive roofline predicts: small kernels cannot saturate HBM.
	cm := MustCostModel(A100, Llama1B, 1)
	step := cm.BaselineLatency(512)
	if step < 0.002 || step > 0.012 {
		t.Fatalf("draft step latency %.2f ms outside the plausible 2-12 ms band", 1e3*step)
	}
}

func TestForwardLatencyMonotoneInTokens(t *testing.T) {
	cm := MustCostModel(A100, Llama70B, 4)
	prev := 0.0
	for _, tok := range []int{1, 10, 100, 500, 2000} {
		lat := cm.ForwardLatencyPure(BatchShape{Tokens: tok, Seqs: tok, KVTokens: tok * 512})
		if lat <= prev {
			t.Fatalf("latency not increasing at %d tokens: %g <= %g", tok, lat, prev)
		}
		prev = lat
	}
}

func TestForwardLatencyFlatBelowKnee(t *testing.T) {
	cm := MustCostModel(A100, Llama70B, 4)
	knee := cm.RooflineKnee()
	if knee < 20 {
		t.Fatalf("knee %d implausibly small", knee)
	}
	l1 := cm.ForwardLatencyPure(BatchShape{Tokens: 1, Seqs: 1})
	lHalf := cm.ForwardLatencyPure(BatchShape{Tokens: knee / 2, Seqs: knee / 2})
	if lHalf > l1*1.05 {
		t.Fatalf("latency below knee should be nearly flat: %.2fms vs %.2fms", 1e3*lHalf, 1e3*l1)
	}
	lPast := cm.ForwardLatencyPure(BatchShape{Tokens: knee * 4, Seqs: knee * 4})
	if lPast < l1*1.5 {
		t.Fatalf("latency far past knee should grow: %.2fms vs %.2fms", 1e3*lPast, 1e3*l1)
	}
}

func TestForwardLatencyZeroTokens(t *testing.T) {
	cm := MustCostModel(A100, Llama70B, 4)
	if cm.ForwardLatency(BatchShape{}) != 0 {
		t.Error("empty shape should cost zero")
	}
}

func TestForwardLatencyPanicsOnInvalidShape(t *testing.T) {
	cm := MustCostModel(A100, Llama70B, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("negative token shape did not panic")
		}
	}()
	cm.ForwardLatency(BatchShape{Tokens: -1})
}

func TestBatchShapeValidate(t *testing.T) {
	if (BatchShape{Tokens: 4, Seqs: 2, KVTokens: 10}).Validate() != nil {
		t.Error("valid shape rejected")
	}
	if (BatchShape{Tokens: 1, Seqs: 2}).Validate() == nil {
		t.Error("seqs > tokens accepted")
	}
	if (BatchShape{Tokens: -1}).Validate() == nil {
		t.Error("negative tokens accepted")
	}
}

func TestCUDAGraphCaptureThenReplay(t *testing.T) {
	cm := MustCostModel(A100, Llama1B, 1)
	shape := BatchShape{Tokens: 8, Seqs: 8, KVTokens: 256}
	first := cm.ForwardLatency(shape)
	second := cm.ForwardLatency(shape)
	if second >= first {
		t.Fatalf("graph replay should be cheaper: first %.3gms then %.3gms", 1e3*first, 1e3*second)
	}
	if cm.Captures != 1 || cm.Replays != 1 {
		t.Fatalf("captures=%d replays=%d, want 1/1", cm.Captures, cm.Replays)
	}
	// A different shape captures anew.
	cm.ForwardLatency(BatchShape{Tokens: 9, Seqs: 9, KVTokens: 256})
	if cm.Captures != 2 {
		t.Fatalf("new shape should capture, got %d captures", cm.Captures)
	}
}

func TestCUDAGraphDisabled(t *testing.T) {
	cm := MustCostModel(A100, Llama1B, 1)
	cm.UseCUDAGraphs = false
	shape := BatchShape{Tokens: 8, Seqs: 8}
	if cm.ForwardLatency(shape) != cm.ForwardLatency(shape) {
		t.Fatal("without graphs, identical shapes should cost the same")
	}
	if cm.Captures != 0 {
		t.Fatal("graphs disabled but captures recorded")
	}
}

func TestResetGraphCache(t *testing.T) {
	cm := MustCostModel(A100, Llama1B, 1)
	cm.ForwardLatency(BatchShape{Tokens: 4, Seqs: 4})
	cm.ResetGraphCache()
	if cm.Captures != 0 || cm.Replays != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestTPScaling(t *testing.T) {
	cm2 := MustCostModel(A100, Qwen32B, 2)
	cm4 := MustCostModel(A100, Qwen32B, 4)
	l2 := cm2.BaselineLatency(512)
	l4 := cm4.BaselineLatency(512)
	if l4 >= l2 {
		t.Fatalf("more TP should be faster: TP2 %.2fms, TP4 %.2fms", 1e3*l2, 1e3*l4)
	}
	// But not perfectly linear (collectives).
	if l4 < l2/2 {
		t.Fatalf("TP scaling better than linear: TP2 %.2fms, TP4 %.2fms", 1e3*l2, 1e3*l4)
	}
}

func TestKVReadCostGrows(t *testing.T) {
	cm := MustCostModel(A100, Llama70B, 4)
	small := cm.ForwardLatencyPure(BatchShape{Tokens: 8, Seqs: 8, KVTokens: 8 * 128})
	large := cm.ForwardLatencyPure(BatchShape{Tokens: 8, Seqs: 8, KVTokens: 8 * 8192})
	if large <= small {
		t.Fatal("longer contexts should cost more")
	}
}

func TestTokenBudgetInvertsLatency(t *testing.T) {
	cm := MustCostModel(A100, Llama70B, 4)
	base := cm.BaselineLatency(512)
	b := cm.TokenBudget(base*2, 0, 1)
	if b < cm.RooflineKnee() {
		t.Fatalf("budget %d below knee %d for a 2x latency target", b, cm.RooflineKnee())
	}
	lat := cm.ForwardLatencyPure(BatchShape{Tokens: b, Seqs: b})
	if lat > base*2*1.01 {
		t.Fatalf("budget %d violates its own target: %.2fms > %.2fms", b, 1e3*lat, 2e3*base)
	}
	if got := cm.TokenBudget(0, 0, 7); got != 7 {
		t.Fatalf("non-positive target should return minBudget, got %d", got)
	}
}

func TestKVCapacityTokens(t *testing.T) {
	cm := MustCostModel(A100, Llama70B, 4)
	cap10 := cm.KVCapacityTokens(0.10)
	cap50 := cm.KVCapacityTokens(0.50)
	if cap10 <= cap50 {
		t.Fatal("larger reserve should shrink capacity")
	}
	// 4x80GB minus 141GB of weights leaves >100GB: several hundred
	// thousand tokens at ~328KB/token.
	if cap10 < 100000 {
		t.Fatalf("KV capacity %d implausibly small", cap10)
	}
}

func TestBandwidthUtilSmallModels(t *testing.T) {
	big := MustCostModel(A100, Llama70B, 4)
	small := MustCostModel(A100, Qwen05B, 1)
	if big.BandwidthUtil != 1 {
		t.Fatalf("70B util = %g, want 1", big.BandwidthUtil)
	}
	if small.BandwidthUtil >= 0.5 {
		t.Fatalf("0.5B util = %g, want < 0.5", small.BandwidthUtil)
	}
}
