package cluster

import (
	"fmt"

	"adaserve/internal/request"
)

// Router assigns requests to replicas. The cluster driver calls Route for
// every trace arrival with the prefill-capable candidate set (all replicas
// in a colocated cluster), and RouteDecode for every prefill-to-decode
// migration with the decode-capable set. The returned index refers to the
// candidate slice it was given.
//
// Implementations must be deterministic: identical replica and router state
// must yield the same pick (ties break by lowest index or by an explicit
// rotating cursor, never by map order or randomness). Routers may keep
// internal state; a Router instance belongs to one Cluster.
type Router interface {
	// Name identifies the policy in reports (e.g. "slo-aware").
	Name() string
	// Route returns the index of the candidate replica that receives the
	// arrival r.
	Route(r *request.Request, replicas []*Replica) int
	// RouteDecode returns the index of the candidate replica that receives
	// the migrating, prefill-complete request r.
	RouteDecode(r *request.Request, replicas []*Replica) int
}

// prefillDispatch reports whether an arrival candidate set should be
// balanced on prompt backlog: true as soon as any candidate is a dedicated
// prefill replica (candidate sets are homogeneous in practice — all mixed or
// all prefill — since the driver filters by role).
func prefillDispatch(replicas []*Replica) bool {
	for _, rep := range replicas {
		if rep.Role() == RolePrefill {
			return true
		}
	}
	return false
}

// RoundRobin cycles through replicas in index order, ignoring load — the
// baseline policy every load balancer implements. Arrival and migration
// dispatch rotate independently.
type RoundRobin struct {
	next       int
	nextDecode int
}

// NewRoundRobin returns a round-robin router starting at replica 0.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Router.
func (rr *RoundRobin) Name() string { return "round-robin" }

// Route implements Router.
func (rr *RoundRobin) Route(_ *request.Request, replicas []*Replica) int {
	i := rr.next % len(replicas)
	rr.next = (rr.next + 1) % len(replicas)
	return i
}

// RouteDecode implements Router.
func (rr *RoundRobin) RouteDecode(_ *request.Request, replicas []*Replica) int {
	i := rr.nextDecode % len(replicas)
	rr.nextDecode = (rr.nextDecode + 1) % len(replicas)
	return i
}

// LeastLoaded routes every request to the replica with the least queued
// work, which corrects the load imbalance round-robin accumulates under
// heterogeneous request sizes. Arrivals dispatched among dedicated prefill
// replicas balance on queued prompt tokens (the only work such a replica
// does); otherwise — and for every migration — the signal is total queued
// tokens (outstanding prefill + ungenerated output).
type LeastLoaded struct{}

// Name implements Router.
func (LeastLoaded) Name() string { return "least-loaded" }

// Route implements Router.
func (LeastLoaded) Route(_ *request.Request, replicas []*Replica) int {
	load := (*Replica).QueuedTokens
	if prefillDispatch(replicas) {
		load = (*Replica).QueuedPrefillTokens
	}
	best, bestTokens := 0, load(replicas[0])
	for i, rep := range replicas[1:] {
		if t := load(rep); t < bestTokens {
			best, bestTokens = i+1, t
		}
	}
	return best
}

// RouteDecode implements Router.
func (LeastLoaded) RouteDecode(_ *request.Request, replicas []*Replica) int {
	best, bestTokens := 0, replicas[0].QueuedTokens()
	for i, rep := range replicas[1:] {
		if t := rep.QueuedTokens(); t < bestTokens {
			best, bestTokens = i+1, t
		}
	}
	return best
}

// DefaultTightSLO is the TPOT-SLO cutoff (seconds) below which SLOAware
// treats a request as latency-critical. 100 ms sits between the chatbot
// SLO (50 ms) and the summarization SLO (150 ms) of Table 2, so the
// default splits the paper's workload into {coding, chat} vs
// {summarization}.
const DefaultTightSLO = 0.100

// SLOAware routes each SLO class separately and adapts to urgent pressure.
//
// In steady state both classes balance independently: a latency-critical
// request goes to the least-contended replica (fewest resident
// latency-critical requests, so tight-TPOT requests avoid diluting each
// other's share of the per-iteration speculation budget), and a
// batch-tolerant request fills the replica with the least batch-tolerant
// work. The contention signal is resident requests, not queued tokens:
// every resident request claims a budget share for its whole decode
// residence. Ties rotate through a per-class cursor (degrading to
// per-class round-robin on equally contended replicas) rather than
// dog-piling the lowest index.
//
// During overload bursts (mean resident tight requests past
// PressureThreshold, clusters of 3+), the policy flips to a sacrificial
// partition: batch-tolerant work consolidates onto an "island" replica —
// the one already holding the most of it — while new tight requests
// exclude the island. Consolidation matters because the engine co-batches
// prefill with verification: a multi-thousand-token summarization prompt
// inflates every co-resident request's iteration times, so spreading such
// work "fairly" during a burst poisons tight requests on every replica,
// while packing it keeps the remaining replicas clean for urgent traffic —
// the relaxed SLOs absorb the co-batching. A headcount cap
// (ConsolidateFactor × the cluster-mean residency) bounds the sacrifice;
// past it, relaxed work spreads again.
//
// Role-awareness: in a disaggregated cluster the per-class residency logic
// owns decode dispatch (migrations), exactly as it owns placement in a
// colocated cluster — residency is a decode-budget signal. Arrival dispatch
// among dedicated prefill replicas instead balances queued prompt tokens
// (prefill is a throughput stage; TTFT is served by draining the shortest
// prompt backlog), with the rotating-cursor tie-break.
type SLOAware struct {
	// TightSLO overrides the latency-critical cutoff (0: DefaultTightSLO).
	TightSLO float64
	// ConsolidateFactor caps a relaxed-consolidation target's total
	// residency at this multiple of the cluster mean, plus constant slack
	// for cold starts (0: DefaultConsolidateFactor).
	ConsolidateFactor float64
	// PressureThreshold is the mean resident tight requests per replica
	// above which relaxed traffic consolidates instead of spreading
	// (0: DefaultPressureThreshold).
	PressureThreshold float64

	tightCursor, relaxedCursor, prefillCursor int
}

// DefaultConsolidateFactor is the relaxed-consolidation headroom: a replica
// may absorb batch-tolerant work until it holds twice the cluster-mean
// residency.
const DefaultConsolidateFactor = 2.0

// DefaultPressureThreshold is the urgent-pressure trigger for relaxed
// consolidation: steady state at the evaluated loads keeps a handful of
// tight requests resident per replica, while overload bursts push well
// past ten.
const DefaultPressureThreshold = 8

// Name implements Router.
func (s *SLOAware) Name() string { return "slo-aware" }

// residency is one replica's (tight, relaxed) resident-request counts,
// snapshotted once per routing decision.
type residency struct {
	tight, relaxed int
}

// Route implements Router.
func (s *SLOAware) Route(r *request.Request, replicas []*Replica) int {
	if prefillDispatch(replicas) {
		return s.routePrefill(replicas)
	}
	return s.routeByResidency(r, replicas)
}

// RouteDecode implements Router.
func (s *SLOAware) RouteDecode(r *request.Request, replicas []*Replica) int {
	return s.routeByResidency(r, replicas)
}

// routeByResidency is the per-class residency policy shared by colocated
// arrival dispatch and disaggregated decode dispatch.
func (s *SLOAware) routeByResidency(r *request.Request, replicas []*Replica) int {
	cutoff := s.TightSLO
	if cutoff <= 0 {
		cutoff = DefaultTightSLO
	}
	// Snapshot every replica's residency once; island/routeTight/
	// routeRelaxed all read this snapshot rather than rescanning pools.
	res := make([]residency, len(replicas))
	for i, rep := range replicas {
		t, x := rep.ActiveRequests(cutoff)
		res[i] = residency{tight: t, relaxed: x}
	}
	island := s.island(res)
	if r.TPOTSLO <= cutoff {
		return s.routeTight(res, island)
	}
	return s.routeRelaxed(res, island)
}

// routePrefill balances arrivals over dedicated prefill replicas by queued
// prompt tokens, rotating the tie-break cursor so equally idle replicas
// share cold starts.
func (s *SLOAware) routePrefill(replicas []*Replica) int {
	best, bestLoad := -1, 0
	for off := 0; off < len(replicas); off++ {
		i := (s.prefillCursor + off) % len(replicas)
		if load := replicas[i].QueuedPrefillTokens(); best < 0 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	s.prefillCursor = (best + 1) % len(replicas)
	return best
}

// island selects the sacrificial replica that absorbs batch-tolerant work
// while urgent pressure is high: the one already holding the most relaxed
// requests (ties prefer fewer resident tight requests, then the lowest
// index, so the target stays stable). It returns -1 — both classes spread
// — when pressure is low (mean resident tight requests per replica under
// the threshold) or the cluster is too small to afford a sacrifice:
// islanding one of two replicas halves urgent capacity exactly when the
// cluster is overloaded, so it needs at least three.
func (s *SLOAware) island(res []residency) int {
	if len(res) < 3 {
		return -1
	}
	pressure := s.PressureThreshold
	if pressure <= 0 {
		pressure = DefaultPressureThreshold
	}
	tightTotal := 0
	for _, r := range res {
		tightTotal += r.tight
	}
	if float64(tightTotal)/float64(len(res)) < pressure {
		return -1
	}
	best, bestRelaxed, bestTight := -1, 0, 0
	for i, r := range res {
		if best < 0 || r.relaxed > bestRelaxed || (r.relaxed == bestRelaxed && r.tight < bestTight) {
			best, bestRelaxed, bestTight = i, r.relaxed, r.tight
		}
	}
	return best
}

// routeTight picks the replica with the fewest resident latency-critical
// requests, tie-breaking on total residency (avoiding replicas thick with
// relaxed work), then on the rotating class cursor. Under urgent pressure
// the island is excluded: keeping new tight requests off the sacrificial
// replica is what preserves clean replicas for urgent traffic.
func (s *SLOAware) routeTight(res []residency, island int) int {
	best, bestTight, bestTotal := -1, 0, 0
	for off := 0; off < len(res); off++ {
		i := (s.tightCursor + off) % len(res)
		if i == island {
			continue
		}
		tight, total := res[i].tight, res[i].tight+res[i].relaxed
		if best < 0 || tight < bestTight || (tight == bestTight && total < bestTotal) {
			best, bestTight, bestTotal = i, tight, total
		}
	}
	s.tightCursor = (best + 1) % len(res)
	return best
}

// routeRelaxed places batch-tolerant work. While urgent pressure is low
// (no island) it spreads by least relaxed residency with the rotating
// cursor — with budget headroom everywhere, filling all replicas maximizes
// throughput. Under urgent pressure it packs onto the island, bounded by
// the consolidation cap; past the cap it spreads again.
func (s *SLOAware) routeRelaxed(res []residency, island int) int {
	if island >= 0 {
		factor := s.ConsolidateFactor
		if factor <= 0 {
			factor = DefaultConsolidateFactor
		}
		total := 0
		for _, r := range res {
			total += r.tight + r.relaxed
		}
		if islandTotal := res[island].tight + res[island].relaxed; float64(islandTotal) < factor*float64(total)/float64(len(res))+4 {
			return island
		}
	}
	// Low pressure (or the island is saturated): spread by least relaxed
	// residency.
	best, bestRelaxed := -1, 0
	for off := 0; off < len(res); off++ {
		i := (s.relaxedCursor + off) % len(res)
		if best < 0 || res[i].relaxed < bestRelaxed {
			best, bestRelaxed = i, res[i].relaxed
		}
	}
	s.relaxedCursor = (best + 1) % len(res)
	return best
}

// PrefixProber is implemented by serving systems whose KV allocator can
// report how many of a request's prompt tokens it already holds cached
// (sched systems promote it from their shared base). The probe must be
// read-only and free of side effects on cache state.
type PrefixProber interface {
	PrefixCachedTokens(r *request.Request) int
}

// PrefixAffinity routes each arrival to the replica holding the longest
// cached prefix of its prompt, so sessions with shared system prompts and
// follow-up turns land where their KV already lives and skip that prefill
// entirely. Replicas tied on cached length — in particular the common cold
// case where nobody holds anything — fall back to least-loaded dispatch, and
// replicas whose systems expose no prefix cache probe as 0, so the policy
// degrades cleanly to LeastLoaded on a prefix-disabled cluster and under
// fault/drain (the driver pre-filters the candidate set). Migrations are
// pure load balancing: the decode side gains nothing from prefix locality,
// its KV moves with it.
type PrefixAffinity struct{}

// Name implements Router.
func (PrefixAffinity) Name() string { return "prefix-affinity" }

// Route implements Router.
func (PrefixAffinity) Route(r *request.Request, replicas []*Replica) int {
	cached := make([]int, len(replicas))
	maxCached := 0
	for i, rep := range replicas {
		if p, ok := rep.System().(PrefixProber); ok {
			cached[i] = p.PrefixCachedTokens(r)
			if cached[i] > maxCached {
				maxCached = cached[i]
			}
		}
	}
	if maxCached == 0 {
		return LeastLoaded{}.Route(r, replicas)
	}
	// Among the replicas holding the longest cached prefix, take the least
	// loaded (lowest index on ties) — affinity must not dog-pile one replica
	// once the hot prefix is resident on several.
	load := (*Replica).QueuedTokens
	if prefillDispatch(replicas) {
		load = (*Replica).QueuedPrefillTokens
	}
	best, bestTokens := -1, 0
	for i, rep := range replicas {
		if cached[i] != maxCached {
			continue
		}
		if t := load(rep); best < 0 || t < bestTokens {
			best, bestTokens = i, t
		}
	}
	return best
}

// RouteDecode implements Router.
func (PrefixAffinity) RouteDecode(r *request.Request, replicas []*Replica) int {
	return LeastLoaded{}.RouteDecode(r, replicas)
}

// RouterNames lists the load-signal policies the standard experiment sweeps
// iterate (prefix-affinity is excluded: it only differentiates itself on
// session workloads with a prefix cache, which have their own sweep — it is
// still accepted by NewRouter).
func RouterNames() []string { return []string{"round-robin", "least-loaded", "slo-aware"} }

// NewRouter builds a built-in router by name.
func NewRouter(name string) (Router, error) {
	switch name {
	case "round-robin":
		return NewRoundRobin(), nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "slo-aware":
		return &SLOAware{}, nil
	case "prefix-affinity":
		return PrefixAffinity{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown router %q (have round-robin, least-loaded, slo-aware, prefix-affinity)", name)
	}
}
