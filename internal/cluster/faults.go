package cluster

import (
	"fmt"

	"adaserve/internal/mathutil"
	"adaserve/internal/request"
	"adaserve/internal/serve"
)

// This file is the cluster half of the fault-injection subsystem: the state
// mutations an internal/faults.Injector drives through event-time callbacks.
// Everything here is gated behind ArmFaults, so un-armed clusters — and
// therefore every pre-existing run — stay byte-identical.

// LinkWindow is one KV-transfer link-fault window: while a prefill-to-decode
// migration's departure instant falls in [From, To), the transfer's latency
// is multiplied by Factor (1: undegraded) and the migration fails outright
// with probability FailProb — the prompt KV is lost in flight and the
// destination admits the request as a recompute fallback, re-prefilling the
// prompt in place. The per-request coin flip is keyed on (Seed, request ID),
// so outcomes are independent of replica interleaving and any -parallel
// width.
type LinkWindow struct {
	From, To float64
	FailProb float64
	Factor   float64
	Seed     uint64
}

// hits reports whether a departure at t falls in the window.
func (w LinkWindow) hits(t float64) bool { return t >= w.From && t < w.To }

// fails flips the window's keyed coin for one migration.
func (w LinkWindow) fails(reqID int) bool {
	if w.FailProb <= 0 {
		return false
	}
	if w.FailProb >= 1 {
		return true
	}
	u := float64(mathutil.Hash2(w.Seed, uint64(reqID))>>11) / float64(uint64(1)<<53)
	return u < w.FailProb
}

// ArmFaults prepares the cluster for fault injection. A static cluster's
// routable sets alias its capability sets (the byte-identity guarantee for
// fault-free runs); arming un-aliases them so failed replicas can leave the
// router's candidate sets. Idempotent.
func (c *Cluster) ArmFaults() {
	if c.faultsArmed {
		return
	}
	c.faultsArmed = true
	if !c.elastic {
		c.routablePrefill = make([]*Replica, 0, len(c.prefillCap))
		c.routableDecode = make([]*Replica, 0, len(c.decodeCap))
		c.rebuildRoutable()
	}
}

// FaultsArmed reports whether ArmFaults has run.
func (c *Cluster) FaultsArmed() bool { return c.faultsArmed }

// SetLinkWindows installs the KV-transfer link-fault windows consulted by
// prefill-to-decode migrations. Drain migrations are unaffected: a drain is
// an orchestrated handoff with retry baked in, not a data-plane transfer
// racing a request's TTFT.
func (c *Cluster) SetLinkWindows(windows []LinkWindow) {
	c.linkWindows = append([]LinkWindow(nil), windows...)
}

// LinkFallbacks returns how many migrations failed in flight and fell back
// to prefill recompute on the destination; LinkDegraded counts migrations
// that paid a degraded (slowed) transfer.
func (c *Cluster) LinkFallbacks() int { return c.linkFallbacks }

// LinkDegraded returns the degraded-transfer count (see LinkFallbacks).
func (c *Cluster) LinkDegraded() int { return c.linkDegraded }

// linkFault prices one prefill-to-decode migration departing at t under the
// installed windows: it returns the (possibly degraded) transfer latency for
// the given base latency and whether the transfer failed in flight.
func (c *Cluster) linkFault(t float64, reqID int, lat float64) (float64, bool) {
	for _, w := range c.linkWindows {
		if !w.hits(t) {
			continue
		}
		if w.Factor > 1 {
			lat *= w.Factor
			c.linkDegraded++
		}
		if w.fails(reqID) {
			c.linkFallbacks++
			return lat, true
		}
		return lat, false
	}
	return lat, false
}

// Fail crashes a replica at event-time instant now: it halts abruptly
// (resident requests freeze in place; HarvestFailed collects them once
// detection fires), its billing span closes, a pending activation is
// invalidated, and it leaves the routable sets. Returns the number of
// resident requests frozen and whether the crash took effect (false when the
// replica is already failed or stopped — a crash against spare capacity is a
// no-op).
func (c *Cluster) Fail(id int, now float64) (lost int, ok bool) {
	if id < 0 || id >= len(c.replicas) {
		return 0, false
	}
	c.ArmFaults() // rebuildRoutable needs un-aliased routable sets
	rep := c.replicas[id]
	if rep.state == StateFailed || rep.state == StateStopped {
		return 0, false
	}
	if now > rep.activeSince {
		rep.consumed += now - rep.activeSince
	}
	rep.readyAt = -1 // invalidates any queued activation delivery
	rep.state = StateFailed
	rep.inst.SetHalted(true)
	rep.inst.SetStepScale(0)
	rep.inst.BumpClock(now)
	c.rebuildRoutable()
	c.noteFleet()
	p := rep.System().Pool()
	return p.NumWaiting() + p.NumRunning(), true
}

// HarvestFailed removes every resident request from a failed replica's
// frozen pool — its KV is gone with the replica — and returns them in
// deterministic pool order (waiting before running), detaching each from the
// replica's placement stats. The caller (failure detection) owns their
// onward lifecycle: requeue through Redispatch, or drop.
func (c *Cluster) HarvestFailed(id int) []*request.Request {
	rep := c.replicas[id]
	if rep.state != StateFailed {
		return nil
	}
	pool := rep.System().Pool()
	lost := append([]*request.Request(nil), pool.Waiting()...)
	lost = append(lost, pool.Running()...)
	for _, r := range lost {
		pool.Remove(r)
		rep.System().Release(r)
		rep.forget(r)
	}
	return lost
}

// Recover returns a crashed replica to service at event-time instant now.
// In a static fleet it resumes active duty immediately (repair delay is the
// whole re-provisioning story); in an elastic fleet it returns as spare
// (StateStopped) capacity — the autoscale controller already provisioned
// replacement capacity through its ordinary ScaleUp path, and the repaired
// machine rejoins the spare pool it came from. Any requests still frozen in
// the pool (repair beat detection) are harvested first and returned for the
// caller to recover or drop.
func (c *Cluster) Recover(id int, now float64) ([]*request.Request, bool) {
	rep := c.replicas[id]
	if rep.state != StateFailed {
		return nil, false
	}
	stranded := c.HarvestFailed(id)
	rep.inst.SetHalted(false)
	rep.inst.BumpClock(now)
	if c.elastic {
		rep.state = StateStopped
	} else {
		rep.state = StateActive
		rep.activeSince = now
	}
	c.rebuildRoutable()
	c.noteFleet()
	return stranded, true
}

// Redispatch places a recovered (retried or hedged) request on an active
// prefill-capable replica, avoiding the given replica ID when another
// candidate exists (-1: no exclusion). Unlike Dispatch it does not record
// the request in the cluster's admitted population — a retry or hedge is a
// second attempt at a request already admitted once.
func (c *Cluster) Redispatch(r *request.Request, now float64, avoid int) (*serve.Instance, error) {
	cands := c.routablePrefill
	if avoid >= 0 && len(cands) > 1 {
		filtered := make([]*Replica, 0, len(cands))
		for _, rep := range cands {
			if rep.ID() != avoid {
				filtered = append(filtered, rep)
			}
		}
		if len(filtered) > 0 {
			cands = filtered
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("cluster: no active prefill-capable replica for re-dispatch")
	}
	idx := c.router.Route(r, cands)
	if idx < 0 || idx >= len(cands) {
		return nil, fmt.Errorf("cluster: router %s picked replica %d of %d",
			c.router.Name(), idx, len(cands))
	}
	rep := cands[idx]
	rep.inst.BumpClock(now)
	rep.System().Pool().Enqueue(r)
	rep.routed = append(rep.routed, r)
	return rep.inst, nil
}

// Evict removes a request from whichever replica it currently resides on
// (pool, KV and placement stats), reporting whether it was found: hedging
// cancels the losing duplicate this way. Finished or in-flight requests are
// not resident and return false.
func (c *Cluster) Evict(r *request.Request) bool {
	for _, rep := range c.replicas {
		pool := rep.System().Pool()
		resident := false
		for _, q := range pool.Waiting() {
			if q == r {
				resident = true
				break
			}
		}
		if !resident {
			for _, q := range pool.Running() {
				if q == r {
					resident = true
					break
				}
			}
		}
		if !resident {
			continue
		}
		pool.Remove(r)
		rep.System().Release(r)
		rep.forget(r)
		return true
	}
	return false
}

// AdoptOutcome resolves a won hedge: the original request adopts the
// duplicate's computed outcome (output, context, timing — so its TTFT
// reflects the winning path), the duplicate leaves the winner's placement
// stats, and the original retires through the winner's pool via AdoptDone,
// where the serve driver derives its lifecycle events at the next iteration
// boundary. The original must already be evicted from its losing replica.
func (c *Cluster) AdoptOutcome(orig, shadow *request.Request, winner int) {
	rep := c.replicas[winner]
	orig.Phase = request.Done
	orig.PrefillDone = shadow.PrefillDone
	orig.Output = shadow.Output
	orig.Ctx = shadow.Ctx
	orig.AdmitTime = shadow.AdmitTime
	orig.FirstDecodeTime = shadow.FirstDecodeTime
	orig.FirstTokenTime = shadow.FirstTokenTime
	orig.DoneTime = shadow.DoneTime
	orig.VerifySteps = shadow.VerifySteps
	orig.AcceptedTokens = shadow.AcceptedTokens
	rep.forget(shadow)
	rep.routed = append(rep.routed, orig)
	rep.System().Pool().AdoptDone(orig)
}
