package cluster

import (
	"strings"
	"testing"

	"adaserve/internal/lm"
	"adaserve/internal/request"
	"adaserve/internal/sched"
)

// fakeSystem is a minimal sched.System for driver tests: it admits every
// waiting request, finishes prefill in one iteration, and commits one token
// per running request per iteration at a fixed per-iteration cost plus a
// small per-sequence cost (so load affects latency, as on a real replica).
type fakeSystem struct {
	name string
	pool *request.Pool
}

func newFake(name string) *fakeSystem {
	return &fakeSystem{name: name, pool: request.NewPool()}
}

func (f *fakeSystem) Name() string             { return f.name }
func (f *fakeSystem) Pool() *request.Pool      { return f.pool }
func (f *fakeSystem) Release(*request.Request) {}

func (f *fakeSystem) Iterate(now float64) sched.IterationStats {
	for _, r := range append([]*request.Request(nil), f.pool.Waiting()...) {
		f.pool.Admit(r, now)
	}
	running := f.pool.Running()
	if len(running) == 0 {
		return sched.IterationStats{Idle: true}
	}
	elapsed := 0.010 + 0.001*float64(len(running))
	end := now + elapsed
	committed := 0
	for _, r := range running {
		if r.Phase == request.Prefilling {
			r.PrefillDone = r.PromptLen
			r.Phase = request.Decoding
		}
		if r.FirstDecodeTime < 0 {
			r.FirstDecodeTime = now
		}
		committed += r.Commit([]lm.Token{lm.Token(r.ID)}, end)
	}
	f.pool.Finish()
	return sched.IterationStats{
		Elapsed:         elapsed,
		VerifyTime:      elapsed,
		TokensCommitted: committed,
	}
}

func fakeCluster(t *testing.T, n int, router Router) *Cluster {
	t.Helper()
	if router == nil {
		router = NewRoundRobin() // placeholder for tests that call Route directly
	}
	systems := make([]sched.System, n)
	for i := range systems {
		systems[i] = newFake("fake")
	}
	c, err := New(systems, router)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mkReqs(n int, gap float64, output int) []*request.Request {
	reqs := make([]*request.Request, n)
	for i := range reqs {
		reqs[i] = request.New(i, request.Chat, 0.05, float64(i)*gap, 16, output, uint64(i)*7+1)
	}
	return reqs
}

func TestRunRoutesEveryRequestOnce(t *testing.T) {
	c := fakeCluster(t, 3, NewRoundRobin())
	reqs := mkReqs(30, 0.01, 4)
	res, err := c.Run(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, rep := range c.Replicas() {
		if rep.Routed() != 10 {
			t.Errorf("replica %d got %d requests, want 10 under round-robin", rep.ID(), rep.Routed())
		}
		total += rep.Routed()
	}
	if total != 30 {
		t.Fatalf("routed %d of 30", total)
	}
	for _, r := range reqs {
		if r.Phase != request.Done {
			t.Fatalf("request %d phase %s", r.ID, r.Phase)
		}
	}
	if res.Summary.Aggregate.Finished != 30 {
		t.Fatalf("aggregate finished %d", res.Summary.Aggregate.Finished)
	}
	perReplica := 0
	for _, rr := range res.PerReplica {
		perReplica += rr.Summary.Requests
	}
	if perReplica != 30 {
		t.Fatalf("per-replica summaries cover %d of 30", perReplica)
	}
}

func TestRunPerReplicaClocksAdvanceIndependently(t *testing.T) {
	// Every request goes to replica 0: replica 1 must stay at clock 0.
	c := fakeCluster(t, 2, routeTo(0))
	reqs := mkReqs(5, 0.001, 8)
	res, err := c.Run(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps := c.Replicas()
	if reps[0].Clock() <= 0 {
		t.Fatalf("replica 0 clock %.3f", reps[0].Clock())
	}
	if reps[1].Clock() != 0 || reps[1].Routed() != 0 {
		t.Fatalf("idle replica advanced: clock %.3f, routed %d", reps[1].Clock(), reps[1].Routed())
	}
	if res.EndTime != reps[0].Clock() {
		t.Fatalf("end time %.3f != busy replica clock %.3f", res.EndTime, reps[0].Clock())
	}
	if res.PerReplica[1].Iterations != 0 {
		t.Fatalf("idle replica iterated %d times", res.PerReplica[1].Iterations)
	}
}

// routeTo is a test router that sends everything to one replica.
type routeTo int

func (routeTo) Name() string                                    { return "route-to" }
func (rt routeTo) Route(*request.Request, []*Replica) int       { return int(rt) }
func (rt routeTo) RouteDecode(*request.Request, []*Replica) int { return int(rt) }

func TestRunHandlesArrivalGaps(t *testing.T) {
	c := fakeCluster(t, 2, LeastLoaded{})
	reqs := mkReqs(4, 50, 4) // arrivals far apart: clocks must jump
	res, err := c.Run(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EndTime < 150 {
		t.Fatalf("clock did not advance across gaps: end %.1f", res.EndTime)
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() (float64, int, []int) {
		c := fakeCluster(t, 4, &SLOAware{})
		reqs := mkReqs(40, 0.007, 6)
		res, err := c.Run(reqs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var routed []int
		for _, rep := range c.Replicas() {
			routed = append(routed, rep.Routed())
		}
		return res.EndTime, res.Iterations, routed
	}
	e1, i1, r1 := run()
	e2, i2, r2 := run()
	if e1 != e2 || i1 != i2 {
		t.Fatalf("runs diverged: (%g,%d) vs (%g,%d)", e1, i1, e2, i2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("routing diverged on replica %d: %d vs %d", i, r1[i], r2[i])
		}
	}
}

func TestRunRejectsBadRouterPick(t *testing.T) {
	c := fakeCluster(t, 2, routeTo(5))
	_, err := c.Run(mkReqs(1, 0, 2), Options{})
	if err == nil || !strings.Contains(err.Error(), "picked replica") {
		t.Fatalf("want router range error, got %v", err)
	}
}

func TestRunValidatesRequests(t *testing.T) {
	c := fakeCluster(t, 2, NewRoundRobin())
	bad := request.New(1, request.Chat, 0, 0, 16, 4, 1)
	if _, err := c.Run([]*request.Request{bad}, Options{}); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestRunRespectsMaxIterations(t *testing.T) {
	c := fakeCluster(t, 2, NewRoundRobin())
	_, err := c.Run(mkReqs(10, 0.001, 50), Options{MaxIterations: 3})
	if err == nil || !strings.Contains(err.Error(), "max iterations") {
		t.Fatalf("want max-iterations error, got %v", err)
	}
}

func TestRunRespectsMaxSimTime(t *testing.T) {
	c := fakeCluster(t, 2, NewRoundRobin())
	reqs := mkReqs(4, 100, 4) // arrivals span 300s
	_, err := c.Run(reqs, Options{MaxSimTime: 10})
	if err == nil || !strings.Contains(err.Error(), "max simulated time") {
		t.Fatalf("want max-sim-time error, got %v", err)
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, NewRoundRobin()); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := New([]sched.System{newFake("f")}, nil); err == nil {
		t.Fatal("nil router accepted")
	}
	if _, err := New([]sched.System{nil}, NewRoundRobin()); err == nil {
		t.Fatal("nil replica accepted")
	}
}

func TestQueuedTokensCountsOutstandingWork(t *testing.T) {
	c := fakeCluster(t, 1, NewRoundRobin())
	rep := c.Replicas()[0]
	if rep.QueuedTokens() != 0 {
		t.Fatalf("empty replica has %d queued tokens", rep.QueuedTokens())
	}
	r := request.New(1, request.Chat, 0.05, 0, 100, 20, 1)
	rep.System().Pool().Enqueue(r)
	if got := rep.QueuedTokens(); got != 120 {
		t.Fatalf("queued tokens %d, want 120 (prompt 100 + output 20)", got)
	}
	tight, relaxed := rep.ActiveRequests(0.1)
	if tight != 1 || relaxed != 0 {
		t.Fatalf("active requests (%d,%d), want (1,0)", tight, relaxed)
	}
	tight, relaxed = rep.ActiveRequests(0.01)
	if tight != 0 || relaxed != 1 {
		t.Fatalf("active requests (%d,%d) with cutoff below SLO, want (0,1)", tight, relaxed)
	}
}
