package cluster

import (
	"reflect"
	"testing"

	"adaserve/internal/gpu"
	"adaserve/internal/request"
	"adaserve/internal/sched"
	"adaserve/internal/serve"
)

// elasticFake builds an elastic all-mixed cluster of fake systems.
func elasticFake(t *testing.T, n int, opts ElasticOptions, router Router) *Cluster {
	t.Helper()
	if router == nil {
		router = NewRoundRobin()
	}
	systems := make([]sched.System, n)
	for i := range systems {
		systems[i] = newFake("fake")
	}
	cl, err := NewElastic(systems, nil, router, testTransfer(1e-4), opts)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestElasticInitialState(t *testing.T) {
	cl := elasticFake(t, 4, ElasticOptions{ColdStart: 1, InitialActive: 2}, nil)
	wantStates := []State{StateActive, StateActive, StateStopped, StateStopped}
	for i, rep := range cl.Replicas() {
		if rep.State() != wantStates[i] {
			t.Errorf("replica %d state %v, want %v", i, rep.State(), wantStates[i])
		}
	}
	if got := cl.CommittedFleet(); got != 2 {
		t.Fatalf("committed fleet %d, want 2", got)
	}
	pc := cl.CountPool(RoleMixed)
	if pc.Active != 2 || pc.Stopped != 2 || pc.Capacity() != 4 || pc.Committed() != 2 {
		t.Fatalf("pool counts wrong: %+v", pc)
	}
	if !cl.Elastic() || cl.ColdStart() != 1 {
		t.Fatal("elastic metadata wrong")
	}
}

func TestElasticValidation(t *testing.T) {
	sys := []sched.System{newFake("a"), newFake("b")}
	if _, err := NewElastic(sys, nil, NewRoundRobin(), testTransfer(1e-4), ElasticOptions{InitialActive: 0}); err == nil {
		t.Error("accepted zero initial actives")
	}
	if _, err := NewElastic(sys, nil, NewRoundRobin(), testTransfer(1e-4), ElasticOptions{ColdStart: -1, InitialActive: 1}); err == nil {
		t.Error("accepted negative cold start")
	}
	if _, err := NewElastic(sys, nil, NewRoundRobin(), gpu.KVTransfer{}, ElasticOptions{InitialActive: 1}); err == nil {
		t.Error("accepted invalid transfer model")
	}
	// InitialActive beyond the pool size clamps rather than failing.
	cl, err := NewElastic(sys, nil, NewRoundRobin(), testTransfer(1e-4), ElasticOptions{InitialActive: 5})
	if err != nil {
		t.Fatal(err)
	}
	if cl.CommittedFleet() != 2 {
		t.Fatalf("committed fleet %d, want 2", cl.CommittedFleet())
	}
}

func TestScaleUpLifecycle(t *testing.T) {
	cl := elasticFake(t, 3, ElasticOptions{ColdStart: 2, InitialActive: 1}, nil)
	var q serve.Queue

	rep, ok := cl.ScaleUp(RoleMixed, 5.0, &q)
	if !ok || rep.ID() != 1 {
		t.Fatalf("scale-up picked %v, want replica 1", rep)
	}
	if rep.State() != StateProvisioning {
		t.Fatalf("state %v, want provisioning", rep.State())
	}
	if q.Len() != 1 {
		t.Fatalf("activation delivery not scheduled: queue len %d", q.Len())
	}
	if got := cl.CommittedFleet(); got != 2 {
		t.Fatalf("committed fleet %d, want 2 (provisioning bills)", got)
	}
	// A provisioning replica is not routable.
	arr := request.New(1, request.Chat, 0.05, 5.0, 16, 4, 7)
	if _, err := cl.Dispatch(arr); err != nil {
		t.Fatal(err)
	}
	if cl.Replicas()[1].Routed() != 0 {
		t.Fatal("arrival routed to a provisioning replica")
	}

	// Zero cold start activates instantly.
	rep2, ok := cl.ScaleUp(RoleMixed, 6.0, &q)
	if !ok || rep2.ID() != 2 {
		t.Fatalf("second scale-up picked %v", rep2)
	}
	cl2 := elasticFake(t, 2, ElasticOptions{ColdStart: 0, InitialActive: 1}, nil)
	repI, ok := cl2.ScaleUp(RoleMixed, 1.0, &q)
	if !ok || repI.State() != StateActive {
		t.Fatalf("zero-cold-start scale-up state %v, want active", repI.State())
	}
	if repI.Clock() != 1.0 {
		t.Fatalf("activated replica clock %g, want bumped to 1.0", repI.Clock())
	}

	// No spares left: refused.
	if _, ok := cl.ScaleUp(RoleMixed, 7.0, &q); ok {
		t.Fatal("scale-up succeeded with no stopped replica")
	}
}

func TestScaleDownCancelsProvisioningFirst(t *testing.T) {
	cl := elasticFake(t, 3, ElasticOptions{ColdStart: 5, InitialActive: 1}, nil)
	var q serve.Queue
	rep, _ := cl.ScaleUp(RoleMixed, 1.0, &q)
	down, ok := cl.ScaleDown(RoleMixed, 2.0, &q)
	if !ok || down != rep {
		t.Fatalf("scale-down picked %v, want the provisioning replica %d", down, rep.ID())
	}
	if down.State() != StateStopped {
		t.Fatalf("canceled replica state %v, want stopped", down.State())
	}
	// Its consumption span covers exactly the provisioning time so far.
	if got := cl.LifecycleStats(10).ReplicaSeconds; got != 10+1 {
		t.Fatalf("replica-seconds %g, want 11 (replica 0 for 10s + canceled provisioning 1s)", got)
	}
	// The stale activation delivery must not resurrect it: re-provision with
	// a different ready time, then deliver both through a driver run — the
	// direct harness can't pop the queue, so check the guard directly.
	cl.activate(down, 6.0)
	if down.State() != StateStopped {
		t.Fatal("stale activation flipped a canceled replica")
	}
}

func TestScaleDownGuardsLastActive(t *testing.T) {
	cl := elasticFake(t, 2, ElasticOptions{ColdStart: 1, InitialActive: 1}, nil)
	var q serve.Queue
	if _, ok := cl.ScaleDown(RoleMixed, 1.0, &q); ok {
		t.Fatal("drained the last active replica")
	}
	// Disaggregated: draining the only prefill replica must be refused even
	// with decode replicas active.
	roles := []Role{RolePrefill, RoleDecode, RoleDecode}
	systems := []sched.System{newFake("p"), newFake("d"), newFake("d")}
	dcl, err := NewElastic(systems, roles, LeastLoaded{}, testTransfer(1e-4), ElasticOptions{ColdStart: 1, InitialActive: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dcl.ScaleDown(RolePrefill, 1.0, &q); ok {
		t.Fatal("drained the only prefill-capable replica")
	}
	if _, ok := dcl.ScaleDown(RoleDecode, 1.0, &q); !ok {
		t.Fatal("refused to drain a redundant decode replica")
	}
}

func TestScaleDownDrainMigratesWaiting(t *testing.T) {
	cl := elasticFake(t, 2, ElasticOptions{ColdStart: 0, InitialActive: 2}, nil)
	var q serve.Queue
	// Replica 0 carries the heavier backlog, so the least-outstanding-work
	// victim rule drains replica 1 — which holds two waiting requests: one
	// untouched arrival (free re-route) and one paused decode with computed
	// KV (pays the transfer).
	cl.Replicas()[0].System().Pool().Enqueue(request.New(0, request.Summarization, 0.15, 0.4, 512, 64, 5))
	fresh := request.New(1, request.Chat, 0.05, 0.5, 16, 4, 7)
	cl.Replicas()[1].System().Pool().Enqueue(fresh)
	resumed := request.New(2, request.Chat, 0.05, 0.6, 16, 4, 8)
	resumed.Phase = request.Preempted
	resumed.PrefillDone = resumed.PromptLen
	cl.Replicas()[1].System().Pool().Enqueue(resumed)

	down, ok := cl.ScaleDown(RoleMixed, 1.0, &q)
	if !ok || down.ID() != 1 {
		t.Fatalf("scale-down picked %v, want replica 1", down)
	}
	if down.State() != StateStopped {
		// Pool was emptied by the drain migration, so the sweep inside drain
		// already retired it.
		t.Fatalf("drained replica state %v, want stopped (pool emptied)", down.State())
	}
	if q.Len() != 2 {
		t.Fatalf("drain scheduled %d deliveries, want 2", q.Len())
	}
	if cl.drainMigrations != 2 {
		t.Fatalf("drain migrations %d, want 2", cl.drainMigrations)
	}
	// Only the computed request pays the transfer model.
	if cl.stats.Count != 1 || cl.stats.Bytes <= 0 {
		t.Fatalf("transfer stats %+v, want exactly one priced migration", cl.stats)
	}
}

func TestScaleDownSkipsPendingDeliveryTarget(t *testing.T) {
	cl := elasticFake(t, 4, ElasticOptions{ColdStart: 0, InitialActive: 4}, routeTo(1))
	var q serve.Queue
	// Replica 0 is heavy; replica 1 holds a computed waiting request whose
	// drain migration targets replica 2 (routeTo(1) over the decode set
	// [0, 2, 3] once replica 1 is draining); replica 3 carries light load.
	cl.Replicas()[0].System().Pool().Enqueue(request.New(0, request.Summarization, 0.15, 0.1, 512, 64, 5))
	resumed := request.New(1, request.Chat, 0.05, 0.2, 64, 8, 7)
	resumed.Phase = request.Preempted
	resumed.PrefillDone = resumed.PromptLen
	cl.Replicas()[1].System().Pool().Enqueue(resumed)
	cl.Replicas()[2].System().Pool().Enqueue(request.New(3, request.Summarization, 0.15, 0.1, 96, 16, 11))
	cl.Replicas()[3].System().Pool().Enqueue(request.New(2, request.Chat, 0.05, 0.3, 16, 4, 9))

	down, ok := cl.ScaleDown(RoleMixed, 1.0, &q)
	if !ok || down.ID() != 1 {
		t.Fatalf("first scale-down picked %v, want replica 1", down)
	}
	if cl.Replicas()[2].pendingDeliveries != 1 {
		t.Fatalf("replica 2 pending deliveries %d, want 1", cl.Replicas()[2].pendingDeliveries)
	}
	// Replica 2 is the least-loaded active replica but has an in-flight
	// inbound delivery: draining it would land the migration on a stopped
	// replica, so the victim must be replica 3 instead.
	down2, ok := cl.ScaleDown(RoleMixed, 1.5, &q)
	if !ok || down2.ID() != 3 {
		t.Fatalf("second scale-down picked %v, want replica 3 (replica 2 has a pending delivery)", down2)
	}
}

func TestDrainMovesPlacementStats(t *testing.T) {
	cl := elasticFake(t, 3, ElasticOptions{ColdStart: 0, InitialActive: 3}, routeTo(1))
	var q serve.Queue
	// Two arrivals dispatch (routeTo(1)) onto replica 1; replicas 0 and 2
	// carry direct load so replica 1 is the drain victim.
	cl.Replicas()[0].System().Pool().Enqueue(request.New(10, request.Summarization, 0.15, 0.1, 512, 64, 5))
	cl.Replicas()[2].System().Pool().Enqueue(request.New(11, request.Summarization, 0.15, 0.1, 96, 16, 6))
	for i := 0; i < 2; i++ {
		r := request.New(i, request.Chat, 0.05, 0.2+0.1*float64(i), 16, 4, uint64(i)+1)
		if _, err := cl.Dispatch(r); err != nil {
			t.Fatal(err)
		}
	}
	if cl.Replicas()[1].Routed() != 2 {
		t.Fatalf("setup: replica 1 routed %d, want 2", cl.Replicas()[1].Routed())
	}
	down, ok := cl.ScaleDown(RoleMixed, 1.0, &q)
	if !ok || down.ID() != 1 {
		t.Fatalf("scale-down picked %v, want replica 1", down)
	}
	// Statistical ownership moved with the migrations: the drainer forgot
	// both requests and the new target (replica 2 via routeTo(1) over the
	// remaining prefill set [0, 2]) will count them as routed arrivals on
	// delivery.
	if cl.Replicas()[1].Routed() != 0 {
		t.Fatalf("drained replica still owns %d routed requests", cl.Replicas()[1].Routed())
	}
	if cl.Replicas()[2].pendingDeliveries != 2 {
		t.Fatalf("replica 2 pending deliveries %d, want 2", cl.Replicas()[2].pendingDeliveries)
	}
	if len(cl.admitted) != 2 {
		t.Fatalf("admitted population %d, want 2 (drain must not change it)", len(cl.admitted))
	}
}

// scriptedScaler is a deterministic test autoscaler: one scale-up at upAt,
// one scale-down at downAt.
type scriptedScaler struct {
	cl           *Cluster
	upAt, downAt float64
	up, down     bool
}

func (s *scriptedScaler) OnEvent(serve.Event) {}

func (s *scriptedScaler) Tick(now float64, q *serve.Queue) []serve.ScaleAction {
	s.cl.SweepDrained()
	var acts []serve.ScaleAction
	if !s.up && now >= s.upAt {
		if rep, ok := s.cl.ScaleUp(RoleMixed, now, q); ok {
			s.up = true
			acts = append(acts, serve.ScaleAction{Up: true, Instance: rep.ID(),
				Role: rep.Role().String(), Policy: "scripted", Fleet: s.cl.CommittedFleet()})
		}
	}
	if !s.down && now >= s.downAt {
		if rep, ok := s.cl.ScaleDown(RoleMixed, now, q); ok {
			s.down = true
			acts = append(acts, serve.ScaleAction{Up: false, Instance: rep.ID(),
				Role: rep.Role().String(), Policy: "scripted", Fleet: s.cl.CommittedFleet()})
		}
	}
	return acts
}

// runScripted drives a 2-capacity elastic cluster over a trace with a
// scale-up at 0.2s and a scale-down at 2.0s, collecting the event stream.
func runScripted(t *testing.T) (*Cluster, *Result, []serve.Event) {
	t.Helper()
	cl := elasticFake(t, 2, ElasticOptions{ColdStart: 0.3, InitialActive: 1}, nil)
	scaler := &scriptedScaler{cl: cl, upAt: 0.2, downAt: 2.0}
	srv, err := serve.NewServer(cl, serve.Options{Autoscaler: scaler})
	if err != nil {
		t.Fatal(err)
	}
	var events []serve.Event
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) { events = append(events, ev) }))
	src, err := serve.NewTraceSource(mkReqs(40, 0.08, 6))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := srv.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	return cl, cl.Results(rr, nil), events
}

func TestElasticEndToEndLifecycle(t *testing.T) {
	cl, res, events := runScripted(t)

	var ups, downs int
	var upSeq, firstRoutedSeq = -1, -1
	for _, ev := range events {
		switch e := ev.(type) {
		case serve.ScaleUp:
			ups++
			upSeq = e.EventSeq()
			if e.Action.Instance != 1 || e.Action.Fleet != 2 || e.Action.Policy != "scripted" {
				t.Fatalf("scale-up event wrong: %+v", e.Action)
			}
		case serve.ScaleDown:
			downs++
		case serve.RequestAdmitted:
			if e.Instance == 1 && firstRoutedSeq < 0 {
				firstRoutedSeq = e.EventSeq()
				// Nothing lands on replica 1 before its cold start elapses.
				if e.Req.ArrivalTime < 0.5 {
					t.Fatalf("request %d routed to replica 1 at t=%.2f, before activation at 0.5",
						e.Req.ID, e.Req.ArrivalTime)
				}
			}
		}
	}
	if ups != 1 || downs != 1 {
		t.Fatalf("saw %d scale-ups and %d scale-downs, want 1 and 1", ups, downs)
	}
	if firstRoutedSeq < 0 {
		t.Fatal("scaled-up replica never received traffic")
	}
	if upSeq > firstRoutedSeq {
		t.Fatal("scale-up event delivered after the replica's first admission")
	}

	// All replicas end stopped or active with empty pools; lifecycle
	// economics are attached and coherent.
	for _, rep := range cl.Replicas() {
		p := rep.System().Pool()
		if p.NumWaiting()+p.NumRunning() != 0 {
			t.Fatalf("replica %d finished the run with resident requests", rep.ID())
		}
	}
	as := res.Summary.Autoscale
	if as == nil {
		t.Fatal("elastic result missing autoscale summary")
	}
	if as.ScaleUps != 1 || as.ScaleDowns != 1 {
		t.Fatalf("lifecycle stats %+v, want 1 up / 1 down", as)
	}
	if as.MinReplicas != 1 || as.PeakReplicas != 2 {
		t.Fatalf("fleet watermarks %d-%d, want 1-2", as.MinReplicas, as.PeakReplicas)
	}
	static := 2 * res.EndTime
	if as.ReplicaSeconds <= res.EndTime || as.ReplicaSeconds >= static {
		t.Fatalf("replica-seconds %g outside (%g, %g)", as.ReplicaSeconds, res.EndTime, static)
	}
	if as.Finished != 40 {
		t.Fatalf("autoscale summary finished %d, want 40", as.Finished)
	}
}

func TestElasticRunDeterminism(t *testing.T) {
	_, a, _ := runScripted(t)
	_, b, _ := runScripted(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("elastic runs with identical scripts diverged")
	}
}

func TestStaticClusterLifecycleStats(t *testing.T) {
	cl := fakeCluster(t, 3, nil)
	res, err := cl.Run(mkReqs(12, 0.05, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	as := res.Summary.Autoscale
	if as == nil {
		t.Fatal("static result missing autoscale summary")
	}
	if as.ScaleUps != 0 || as.ScaleDowns != 0 || as.DrainMigrations != 0 {
		t.Fatalf("static fleet reports scale activity: %+v", as)
	}
	if as.PeakReplicas != 3 || as.MinReplicas != 3 {
		t.Fatalf("static watermarks %d-%d, want 3-3", as.MinReplicas, as.PeakReplicas)
	}
	if want := 3 * res.EndTime; as.ReplicaSeconds != want {
		t.Fatalf("static replica-seconds %g, want size x duration = %g", as.ReplicaSeconds, want)
	}
}

func TestScaleDownRefusedWithoutMigrationTargets(t *testing.T) {
	// A drain needs somewhere to send its waiting requests: when a crash has
	// taken every other active replica, scale-down must refuse rather than
	// route migrations into an empty candidate set.
	cl := elasticFake(t, 3, ElasticOptions{ColdStart: 1, InitialActive: 2}, nil)
	var q serve.Queue
	cl.Replicas()[1].System().Pool().Enqueue(request.New(0, request.Chat, 0.05, 0.1, 16, 4, 3))
	if _, ok := cl.Fail(0, 1.0); !ok {
		t.Fatal("crash refused")
	}
	if _, ok := cl.ScaleDown(RoleMixed, 2.0, &q); ok {
		t.Fatal("drained the last surviving active replica")
	}
	if cl.Replicas()[1].State() != StateActive || q.Len() != 0 {
		t.Fatal("refused scale-down still mutated the fleet")
	}
}

func TestCancelAtActivationInstant(t *testing.T) {
	// A provisioning cancel landing at the exact instant its activation
	// delivery fires: the cancel wins (it ran first at that instant) and the
	// delivery must not resurrect the replica.
	cl := elasticFake(t, 2, ElasticOptions{ColdStart: 2, InitialActive: 1}, nil)
	var q serve.Queue
	rep, ok := cl.ScaleUp(RoleMixed, 1.0, &q)
	if !ok {
		t.Fatal("scale-up refused")
	}
	readyAt := rep.readyAt
	down, ok := cl.ScaleDown(RoleMixed, readyAt, &q)
	if !ok || down != rep {
		t.Fatalf("cancel picked %v, want the provisioning replica", down)
	}
	cl.activate(rep, readyAt) // the queued delivery, same instant
	if rep.State() != StateStopped {
		t.Fatalf("same-instant activation resurrected a canceled replica: %v", rep.State())
	}
	// The full provisioning span was paid for exactly once.
	if got := cl.LifecycleStats(readyAt).ReplicaSeconds; got != readyAt+2 {
		t.Fatalf("replica-seconds %g, want %g", got, readyAt+2)
	}
}

func TestSweepDrainedIdempotentOnStopped(t *testing.T) {
	cl := elasticFake(t, 2, ElasticOptions{ColdStart: 0, InitialActive: 2}, nil)
	var q serve.Queue
	down, ok := cl.ScaleDown(RoleMixed, 1.0, &q)
	if !ok || down.State() != StateStopped {
		t.Fatalf("idle drain did not stop immediately: %v", down)
	}
	before := cl.LifecycleStats(5).ReplicaSeconds
	cl.SweepDrained()
	cl.SweepDrained()
	if down.State() != StateStopped {
		t.Fatalf("sweep changed a stopped replica to %v", down.State())
	}
	if after := cl.LifecycleStats(5).ReplicaSeconds; after != before {
		t.Fatalf("re-sweeping a stopped replica re-billed it: %g != %g", after, before)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StateActive: "active", StateProvisioning: "provisioning",
		StateDraining: "draining", StateStopped: "stopped", StateFailed: "failed",
		State(9): "State(9)",
	} {
		if st.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}
