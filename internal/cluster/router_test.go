package cluster

import (
	"testing"

	"adaserve/internal/request"
	"adaserve/internal/sched"
)

// loadReplica enqueues a synthetic request with the given outstanding
// output tokens and TPOT SLO onto a replica, to set up router-policy
// scenarios (a 1-token prompt keeps QueuedTokens within 1 of the decode
// load, so both token-based policies see the intended ordering).
func loadReplica(rep *Replica, id, tokens int, slo float64) {
	rep.System().Pool().Enqueue(request.New(id, request.Chat, slo, 0, 1, tokens, uint64(id)+1))
}

func tightReq(id int) *request.Request {
	return request.New(id, request.Coding, 0.030, 0, 16, 4, uint64(id)+1)
}

func relaxedReq(id int) *request.Request {
	return request.New(id, request.Summarization, 0.150, 0, 16, 4, uint64(id)+1)
}

func TestRoundRobinCycles(t *testing.T) {
	c := fakeCluster(t, 3, nil)
	rr := NewRoundRobin()
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := rr.Route(tightReq(i), c.Replicas()); got != w {
			t.Fatalf("pick %d: got replica %d, want %d", i, got, w)
		}
	}
}

func TestLeastLoadedPicksFewestQueuedTokens(t *testing.T) {
	c := fakeCluster(t, 3, nil)
	reps := c.Replicas()
	loadReplica(reps[0], 100, 300, 0.05)
	loadReplica(reps[1], 101, 100, 0.05)
	loadReplica(reps[2], 102, 200, 0.05)
	if got := (LeastLoaded{}).Route(tightReq(1), reps); got != 1 {
		t.Fatalf("picked replica %d, want 1 (lightest)", got)
	}
}

func TestLeastLoadedTieBreaksByLowestIndex(t *testing.T) {
	c := fakeCluster(t, 3, nil)
	reps := c.Replicas()
	loadReplica(reps[0], 100, 200, 0.05)
	// Replicas 1 and 2 tie at 100 tokens: lowest index wins.
	loadReplica(reps[1], 101, 100, 0.05)
	loadReplica(reps[2], 102, 100, 0.05)
	if got := (LeastLoaded{}).Route(tightReq(1), reps); got != 1 {
		t.Fatalf("picked replica %d, want 1 (tie broken by index)", got)
	}
	if got := (LeastLoaded{}).Route(tightReq(2), fakeCluster(t, 4, nil).Replicas()); got != 0 {
		t.Fatalf("picked replica %d on empty cluster, want 0", got)
	}
}

func TestSLOAwareSpreadsTightRequestsByUrgentLoad(t *testing.T) {
	c := fakeCluster(t, 3, nil)
	reps := c.Replicas()
	// Replica 0: heavy urgent load. Replica 1: heavy but relaxed load.
	// Replica 2: moderate urgent load. A tight request must avoid urgent
	// contention (replica 1), not total load (replica 2 is lightest).
	loadReplica(reps[0], 100, 400, 0.030)
	loadReplica(reps[1], 101, 500, 0.150)
	loadReplica(reps[2], 102, 200, 0.030)
	s := &SLOAware{}
	if got := s.Route(tightReq(1), reps); got != 1 {
		t.Fatalf("tight request to replica %d, want 1 (zero urgent load)", got)
	}
}

func TestSLOAwareFillsRelaxedWorkByRelaxedLoad(t *testing.T) {
	c := fakeCluster(t, 3, nil)
	reps := c.Replicas()
	// Replica 0: urgent-only load. Replica 1: relaxed load. Replica 2:
	// larger relaxed load. A batch-tolerant request fills the replica with
	// the least batch-tolerant work — replica 0, despite its urgent queue.
	loadReplica(reps[0], 100, 400, 0.030)
	loadReplica(reps[1], 101, 100, 0.150)
	loadReplica(reps[2], 102, 300, 0.150)
	s := &SLOAware{}
	if got := s.Route(relaxedReq(1), reps); got != 0 {
		t.Fatalf("relaxed request to replica %d, want 0 (no relaxed load)", got)
	}
}

func TestSLOAwareTieBreaksOnTotalThenCursor(t *testing.T) {
	c := fakeCluster(t, 3, nil)
	reps := c.Replicas()
	// No replica holds urgent work; replica 0 holds two relaxed requests,
	// replicas 1 and 2 one each. A tight request ties on tight residency
	// (0 everywhere) and must take the lowest total residency, scanning
	// from the class cursor (fresh router: replica 0), so replica 1 wins.
	loadReplica(reps[0], 100, 300, 0.150)
	loadReplica(reps[0], 103, 100, 0.150)
	loadReplica(reps[1], 101, 100, 0.150)
	loadReplica(reps[2], 102, 100, 0.150)
	s := &SLOAware{}
	if got := s.Route(tightReq(1), reps); got != 1 {
		t.Fatalf("tight request to replica %d, want 1 (lowest total residency)", got)
	}
	// Empty cluster: everything ties, and the fresh cursor starts at 0.
	if got := s.Route(relaxedReq(2), fakeCluster(t, 4, nil).Replicas()); got != 0 {
		t.Fatalf("relaxed request to replica %d on empty cluster, want 0", got)
	}
}

func TestSLOAwareCursorRotatesThroughTies(t *testing.T) {
	// On a persistently tied (empty) cluster the per-class cursors must
	// rotate — per-class round-robin — rather than dog-pile replica 0.
	// Fake replicas stay empty because Route alone never enqueues.
	c := fakeCluster(t, 3, nil)
	s := &SLOAware{}
	for i, want := range []int{0, 1, 2, 0} {
		if got := s.Route(tightReq(i), c.Replicas()); got != want {
			t.Fatalf("tight pick %d: replica %d, want %d", i, got, want)
		}
	}
	for i, want := range []int{0, 1, 2, 0} {
		if got := s.Route(relaxedReq(10+i), c.Replicas()); got != want {
			t.Fatalf("relaxed pick %d: replica %d, want %d", i, got, want)
		}
	}
}

func TestSLOAwareCutoffClassifies(t *testing.T) {
	s := &SLOAware{TightSLO: 0.040}
	c := fakeCluster(t, 2, nil)
	reps := c.Replicas()
	loadReplica(reps[0], 100, 100, 0.030) // urgent under the custom cutoff
	loadReplica(reps[1], 101, 50, 0.150)  // relaxed load on replica 1
	// Chat (50 ms) is relaxed under cutoff 40 ms: it balances on relaxed
	// load, and replica 0 has none (its queue is all urgent).
	chat := request.New(1, request.Chat, 0.050, 0, 16, 4, 3)
	if got := s.Route(chat, reps); got != 0 {
		t.Fatalf("chat routed to %d under 40ms cutoff, want 0", got)
	}
	// Coding (30 ms) is tight: it avoids replica 0's urgent queue.
	if got := s.Route(tightReq(2), reps); got != 1 {
		t.Fatalf("coding routed to %d under 40ms cutoff, want 1", got)
	}
}

// pressureCluster builds a 3-replica cluster loaded past the SLO-aware
// pressure threshold: every replica holds `tight` urgent requests, and
// replica `islandIdx` additionally holds `relaxed` batch-tolerant ones,
// making it the consolidation island.
func pressureCluster(t *testing.T, tight, relaxed, islandIdx int) *Cluster {
	t.Helper()
	c := fakeCluster(t, 3, nil)
	id := 1000
	for _, rep := range c.Replicas() {
		for k := 0; k < tight; k++ {
			loadReplica(rep, id, 50, 0.030)
			id++
		}
	}
	for k := 0; k < relaxed; k++ {
		loadReplica(c.Replicas()[islandIdx], id, 50, 0.150)
		id++
	}
	return c
}

func TestSLOAwareIslandConsolidatesRelaxedUnderPressure(t *testing.T) {
	// Mean tight residency 10 >= DefaultPressureThreshold: the island (the
	// replica with the most relaxed work) absorbs new relaxed requests.
	c := pressureCluster(t, 10, 3, 1)
	s := &SLOAware{}
	for i := 0; i < 3; i++ {
		if got := s.Route(relaxedReq(i), c.Replicas()); got != 1 {
			t.Fatalf("relaxed pick %d: replica %d, want island 1", i, got)
		}
	}
}

func TestSLOAwareTightAvoidsIslandUnderPressure(t *testing.T) {
	// Under pressure new tight requests must exclude the island even
	// though the non-island replicas hold equal tight residency.
	c := pressureCluster(t, 10, 3, 1)
	s := &SLOAware{}
	for i, want := range []int{0, 2, 0, 2} {
		if got := s.Route(tightReq(i), c.Replicas()); got != want {
			t.Fatalf("tight pick %d: replica %d, want %d (island 1 excluded)", i, got, want)
		}
	}
}

func TestSLOAwareIslandCapFallsBackToSpreading(t *testing.T) {
	// The island holds far more than ConsolidateFactor x mean residency:
	// relaxed traffic must spread to the least-relaxed replica instead.
	c := pressureCluster(t, 10, 60, 1)
	s := &SLOAware{}
	if got := s.Route(relaxedReq(1), c.Replicas()); got == 1 {
		t.Fatal("relaxed request packed onto a saturated island")
	}
}

func TestSLOAwareNoIslandBelowPressureOrOnSmallClusters(t *testing.T) {
	// Below the pressure threshold the relaxed stream spreads: replica 1
	// holds the most relaxed work but must not attract more.
	c := pressureCluster(t, 3, 2, 1)
	s := &SLOAware{}
	if got := s.Route(relaxedReq(1), c.Replicas()); got == 1 {
		t.Fatal("relaxed request consolidated without urgent pressure")
	}
	// Two-replica clusters never island, whatever the pressure: islanding
	// half the cluster would halve urgent capacity exactly at overload.
	c2 := fakeCluster(t, 2, nil)
	id := 2000
	for _, rep := range c2.Replicas() {
		for k := 0; k < 12; k++ {
			loadReplica(rep, id, 50, 0.030)
			id++
		}
	}
	loadReplica(c2.Replicas()[1], id, 50, 0.150)
	s2 := &SLOAware{}
	if got := s2.Route(relaxedReq(3), c2.Replicas()); got == 1 {
		t.Fatal("two-replica cluster consolidated onto an island")
	}
}

func TestNewRouterNames(t *testing.T) {
	for _, name := range RouterNames() {
		r, err := NewRouter(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Name() != name {
			t.Errorf("router %q reports name %q", name, r.Name())
		}
	}
	if _, err := NewRouter("random"); err == nil {
		t.Fatal("unknown router accepted")
	}
}

// proberSystem is a fakeSystem whose KV cache pretends to hold a fixed
// number of cached prompt tokens, to exercise the prefix-affinity policy
// without a real prefix-enabled allocator.
type proberSystem struct {
	*fakeSystem
	cached int
}

func (p *proberSystem) PrefixCachedTokens(*request.Request) int { return p.cached }

func proberCluster(t *testing.T, cached []int) *Cluster {
	t.Helper()
	systems := make([]sched.System, len(cached))
	for i, c := range cached {
		if c < 0 { // a replica whose system is not a PrefixProber at all
			systems[i] = newFake("fake")
			continue
		}
		systems[i] = &proberSystem{fakeSystem: newFake("fake"), cached: c}
	}
	c, err := New(systems, PrefixAffinity{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPrefixAffinityRoutesToLongestCachedPrefix(t *testing.T) {
	c := proberCluster(t, []int{64, 512, 128})
	reps := c.Replicas()
	// Replica 1 holds the longest cached prefix; pile load on it to prove
	// affinity overrides the load signal.
	loadReplica(reps[1], 100, 500, 0.05)
	if got := (PrefixAffinity{}).Route(tightReq(1), reps); got != 1 {
		t.Fatalf("routed to replica %d, want 1 (longest cached prefix)", got)
	}
}

func TestPrefixAffinityTieBreaksLeastLoaded(t *testing.T) {
	c := proberCluster(t, []int{512, 512, 0})
	reps := c.Replicas()
	loadReplica(reps[0], 100, 300, 0.05)
	loadReplica(reps[1], 101, 100, 0.05)
	if got := (PrefixAffinity{}).Route(tightReq(1), reps); got != 1 {
		t.Fatalf("routed to replica %d, want 1 (cached tie, lighter load)", got)
	}
}

func TestPrefixAffinityColdFleetFallsBackToLeastLoaded(t *testing.T) {
	// Nothing cached anywhere (including a replica that cannot even be
	// probed): the policy must behave exactly like least-loaded.
	c := proberCluster(t, []int{0, 0, -1})
	reps := c.Replicas()
	loadReplica(reps[0], 100, 300, 0.05)
	loadReplica(reps[2], 102, 200, 0.05)
	r := tightReq(1)
	want := (LeastLoaded{}).Route(r, reps)
	if got := (PrefixAffinity{}).Route(r, reps); got != want {
		t.Fatalf("cold-fleet route %d, want least-loaded's %d", got, want)
	}
	if want != 1 {
		t.Fatalf("least-loaded picked %d, scenario wants 1", want)
	}
}

func TestPrefixAffinityDecodeDelegatesToLeastLoaded(t *testing.T) {
	c := proberCluster(t, []int{512, 0, 0})
	reps := c.Replicas()
	loadReplica(reps[0], 100, 300, 0.05)
	r := tightReq(1)
	if got, want := (PrefixAffinity{}).RouteDecode(r, reps), (LeastLoaded{}).RouteDecode(r, reps); got != want {
		t.Fatalf("decode route %d, want least-loaded's %d", got, want)
	}
	if (PrefixAffinity{}).Name() != "prefix-affinity" {
		t.Fatal("wrong router name")
	}
}
