package cluster

import (
	"strings"
	"testing"

	"adaserve/internal/gpu"
	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sched"
)

// roleFake is a role-aware fakeSystem: in prefill mode it only completes
// prompts (never commits output tokens); in decode/mixed mode it behaves
// like fakeSystem. released records Release calls so tests can check the
// driver frees source-side state at migration.
type roleFake struct {
	fakeSystem
	prefillOnly bool
	released    []int
}

func newRoleFake(name string, prefillOnly bool) *roleFake {
	return &roleFake{fakeSystem: *newFake(name), prefillOnly: prefillOnly}
}

func (f *roleFake) Release(r *request.Request) { f.released = append(f.released, r.ID) }

func (f *roleFake) Iterate(now float64) sched.IterationStats {
	if !f.prefillOnly {
		return f.fakeSystem.Iterate(now)
	}
	for _, r := range append([]*request.Request(nil), f.pool.Waiting()...) {
		f.pool.Admit(r, now)
	}
	running := f.pool.Running()
	work := false
	for _, r := range running {
		if r.Phase == request.Prefilling {
			work = true
		}
	}
	if !work {
		return sched.IterationStats{Idle: true}
	}
	elapsed := 0.010 + 0.001*float64(len(running))
	for _, r := range running {
		if r.Phase == request.Prefilling {
			r.PrefillDone = r.PromptLen
			r.Phase = request.Decoding
		}
	}
	return sched.IterationStats{Elapsed: elapsed, PrefillTime: elapsed}
}

// testTransfer is a KV-transfer model with easily predictable latency.
func testTransfer(fixed float64) gpu.KVTransfer {
	return gpu.KVTransfer{
		Model: gpu.Llama1B,
		Link:  gpu.Interconnect{Name: "test", Bandwidth: 1e15, Latency: fixed},
	}
}

func disaggFakes(t *testing.T, roles []Role, router Router, transfer gpu.KVTransfer) (*Cluster, []*roleFake) {
	t.Helper()
	fakes := make([]*roleFake, len(roles))
	systems := make([]sched.System, len(roles))
	for i, role := range roles {
		fakes[i] = newRoleFake("fake", role == RolePrefill)
		systems[i] = fakes[i]
	}
	c, err := NewWithRoles(systems, roles, router, transfer)
	if err != nil {
		t.Fatal(err)
	}
	return c, fakes
}

func TestParseSplit(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want string
		n    int
	}{
		{"2P2D", "2P2D", 4},
		{"1p3d", "1P3D", 4},
		{"3P1D", "3P1D", 4},
		{"mixed4", "colocated", 4},
		{"colocated", "", 0}, // not parseable: ParseSplit wants counts
	} {
		roles, err := ParseSplit(tc.spec)
		if tc.want == "" {
			if err == nil {
				t.Errorf("ParseSplit(%q) accepted", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSplit(%q): %v", tc.spec, err)
			continue
		}
		if len(roles) != tc.n || SplitName(roles) != tc.want {
			t.Errorf("ParseSplit(%q) = %v (%s), want %d roles named %s",
				tc.spec, roles, SplitName(roles), tc.n, tc.want)
		}
	}
	for _, bad := range []string{"", "PD", "0P2D", "2P0D", "2D2P", "xPyD", "mixed0", "2P2D3"} {
		if _, err := ParseSplit(bad); err == nil {
			t.Errorf("ParseSplit(%q) accepted", bad)
		}
	}
}

func TestNewWithRolesValidates(t *testing.T) {
	mk := func(n int) []sched.System {
		systems := make([]sched.System, n)
		for i := range systems {
			systems[i] = newFake("f")
		}
		return systems
	}
	if _, err := NewWithRoles(mk(2), []Role{RolePrefill}, NewRoundRobin(), testTransfer(0)); err == nil {
		t.Error("role/replica count mismatch accepted")
	}
	if _, err := NewWithRoles(mk(2), []Role{RolePrefill, RolePrefill}, NewRoundRobin(), testTransfer(0)); err == nil {
		t.Error("all-prefill cluster accepted (no decode-capable replica)")
	}
	if _, err := NewWithRoles(mk(2), []Role{RoleDecode, RoleDecode}, NewRoundRobin(), testTransfer(0)); err == nil {
		t.Error("all-decode cluster accepted (no prefill-capable replica)")
	}
	if _, err := NewWithRoles(mk(2), []Role{RolePrefill, RoleDecode}, NewRoundRobin(), gpu.KVTransfer{}); err == nil {
		t.Error("disaggregated cluster accepted without a transfer model")
	}
	// All-mixed clusters need no transfer model.
	if _, err := NewWithRoles(mk(2), nil, NewRoundRobin(), gpu.KVTransfer{}); err != nil {
		t.Errorf("colocated cluster rejected: %v", err)
	}
}

func TestDisaggMigratesEveryRequest(t *testing.T) {
	c, fakes := disaggFakes(t, []Role{RolePrefill, RoleDecode, RoleDecode}, NewRoundRobin(), testTransfer(0.001))
	reqs := mkReqs(12, 0.005, 4)
	res, err := c.Run(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if r.Phase != request.Done || r.OutputLen() != 4 {
			t.Fatalf("request %d phase %s len %d", r.ID, r.Phase, r.OutputLen())
		}
	}
	reps := c.Replicas()
	if reps[0].Routed() != 12 || reps[0].Migrated() != 0 {
		t.Fatalf("prefill replica routed %d / migrated %d, want 12 / 0", reps[0].Routed(), reps[0].Migrated())
	}
	if got := reps[1].Migrated() + reps[2].Migrated(); got != 12 {
		t.Fatalf("decode replicas received %d migrations, want 12", got)
	}
	if reps[1].Routed()+reps[2].Routed() != 0 {
		t.Fatal("arrivals routed to decode-only replicas")
	}
	if len(fakes[0].released) != 12 {
		t.Fatalf("source released %d requests, want 12", len(fakes[0].released))
	}
	if res.Summary.Transfer.Count != 12 || res.Summary.Transfer.Time <= 0 || res.Summary.Transfer.Bytes <= 0 {
		t.Fatalf("transfer stats %+v", res.Summary.Transfer)
	}
	// No output token may be committed by the prefill replica: every
	// request's tokens are fake decode tokens carrying its ID, committed on
	// replica 1 or 2 only (structurally guaranteed by roleFake, checked via
	// FirstDecodeTime below).
	for _, r := range reqs {
		if r.FirstDecodeTime < 0 || r.FirstTokenTime < r.FirstDecodeTime {
			t.Fatalf("request %d decode bookkeeping: first decode %g, first token %g",
				r.ID, r.FirstDecodeTime, r.FirstTokenTime)
		}
	}
}

func TestDisaggTransferLatencyDelaysFirstDecode(t *testing.T) {
	// One request, 1P+1D, a 3-second fixed link latency: the decode replica
	// must not start decoding before prefill end + 3s, and the TTFT must
	// absorb the transfer.
	const lat = 3.0
	c, _ := disaggFakes(t, []Role{RolePrefill, RoleDecode}, NewRoundRobin(), testTransfer(lat))
	r := request.New(1, request.Chat, 0.05, 0, 16, 4, 1)
	r.TTFTSLO = 1.0
	if _, err := c.Run([]*request.Request{r}, Options{}); err != nil {
		t.Fatal(err)
	}
	if r.Phase != request.Done {
		t.Fatalf("phase %s", r.Phase)
	}
	// Prefill takes one ~11ms fake iteration; decode must start at >= lat.
	if r.FirstDecodeTime < lat {
		t.Fatalf("first decode at %.3f, before transfer completed at >= %.3f", r.FirstDecodeTime, lat)
	}
	if ttft := r.TTFT(); ttft < lat {
		t.Fatalf("TTFT %.3f does not include the %.1fs transfer", ttft, lat)
	}
	if r.AttainedTTFT() {
		t.Fatal("TTFT SLO of 1s attained despite 3s transfer")
	}
}

func TestDisaggRoleStats(t *testing.T) {
	c, _ := disaggFakes(t, []Role{RolePrefill, RoleDecode}, NewRoundRobin(), testTransfer(0.0001))
	reqs := mkReqs(8, 0.005, 3)
	for _, r := range reqs {
		r.TTFTSLO = 10 // generous: all attain
	}
	res, err := c.Run(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	roles := res.Summary.Roles
	if len(roles) != 2 || roles[0].Role != "prefill" || roles[1].Role != "decode" {
		t.Fatalf("role stats %+v", roles)
	}
	p, d := roles[0], roles[1]
	if p.PrefillRequests != 8 || p.DecodeRequests != 0 || p.TTFTAttained != 8 {
		t.Fatalf("prefill role stats %+v", p)
	}
	if d.DecodeRequests != 8 || d.PrefillRequests != 0 || d.TPOTAttained != 8 {
		t.Fatalf("decode role stats %+v", d)
	}
	if res.Summary.TTFTAttainment() != 1 {
		t.Fatalf("cluster TTFT attainment %g", res.Summary.TTFTAttainment())
	}
}

func TestDisaggDeterminism(t *testing.T) {
	run := func() (float64, int, []int) {
		c, _ := disaggFakes(t, []Role{RolePrefill, RolePrefill, RoleDecode, RoleDecode},
			&SLOAware{}, testTransfer(0.002))
		reqs := mkReqs(40, 0.007, 6)
		res, err := c.Run(reqs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var counts []int
		for _, rep := range c.Replicas() {
			counts = append(counts, rep.Routed(), rep.Migrated())
		}
		return res.EndTime, res.Iterations, counts
	}
	e1, i1, c1 := run()
	e2, i2, c2 := run()
	if e1 != e2 || i1 != i2 {
		t.Fatalf("runs diverged: (%g,%d) vs (%g,%d)", e1, i1, e2, i2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("routing diverged at %d: %v vs %v", i, c1, c2)
		}
	}
}

func TestDisaggClusterName(t *testing.T) {
	c, _ := disaggFakes(t, []Role{RolePrefill, RoleDecode}, NewRoundRobin(), testTransfer(0))
	if name := c.Name(); !strings.Contains(name, "1P1D") {
		t.Fatalf("disaggregated cluster name %q lacks the split", name)
	}
	col := fakeCluster(t, 2, NewRoundRobin())
	if name := col.Name(); strings.Contains(name, "P") && strings.Contains(name, "D") && strings.Contains(name, "colocated") {
		t.Fatalf("colocated cluster name %q should not carry a split", name)
	}
}

func TestQueuedPrefillTokens(t *testing.T) {
	c := fakeCluster(t, 1, NewRoundRobin())
	rep := c.Replicas()[0]
	if rep.QueuedPrefillTokens() != 0 {
		t.Fatalf("empty replica has %d queued prefill tokens", rep.QueuedPrefillTokens())
	}
	r := request.New(1, request.Chat, 0.05, 0, 100, 20, 1)
	rep.System().Pool().Enqueue(r)
	if got := rep.QueuedPrefillTokens(); got != 100 {
		t.Fatalf("queued prefill tokens %d, want 100", got)
	}
	r.PrefillDone = 60
	if got := rep.QueuedPrefillTokens(); got != 40 {
		t.Fatalf("queued prefill tokens %d after partial prefill, want 40", got)
	}
}

func TestHybridMixedReplicaAccountsMigrations(t *testing.T) {
	// A hybrid fleet: one dedicated prefill replica plus one mixed replica.
	// The mixed replica decodes both its own arrivals and every migration,
	// and all of them must show up in its summary and in the mixed role's
	// decode accounting.
	c, _ := disaggFakes(t, []Role{RolePrefill, RoleMixed}, NewRoundRobin(), testTransfer(0.001))
	reqs := mkReqs(10, 0.005, 3)
	res, err := c.Run(reqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps := c.Replicas()
	routedToMixed := reps[1].Routed()
	migrated := reps[1].Migrated()
	if migrated != reps[0].Routed() || migrated == 0 {
		t.Fatalf("migrations %d, want every prefill-replica arrival (%d)", migrated, reps[0].Routed())
	}
	if got := res.PerReplica[1].Summary.Requests; got != routedToMixed+migrated {
		t.Fatalf("mixed replica summary covers %d requests, want routed %d + migrated %d",
			got, routedToMixed, migrated)
	}
	var mixed *metrics.RoleStats
	for i := range res.Summary.Roles {
		if res.Summary.Roles[i].Role == "mixed" {
			mixed = &res.Summary.Roles[i]
		}
	}
	if mixed == nil {
		t.Fatal("no mixed role stats")
	}
	if mixed.DecodeRequests != routedToMixed+migrated {
		t.Fatalf("mixed role decoded %d, want %d (own arrivals + migrations)",
			mixed.DecodeRequests, routedToMixed+migrated)
	}
	if mixed.PrefillRequests != routedToMixed {
		t.Fatalf("mixed role prefilled %d, want its %d arrivals", mixed.PrefillRequests, routedToMixed)
	}
}

func TestRoundRobinDecodeCursorIndependent(t *testing.T) {
	c, _ := disaggFakes(t, []Role{RolePrefill, RoleDecode, RoleDecode}, NewRoundRobin(), testTransfer(0))
	reqs := mkReqs(10, 0.005, 2)
	if _, err := c.Run(reqs, Options{}); err != nil {
		t.Fatal(err)
	}
	reps := c.Replicas()
	// Round-robin over the two decode replicas: migrations alternate 5/5.
	if reps[1].Migrated() != 5 || reps[2].Migrated() != 5 {
		t.Fatalf("decode round-robin split %d/%d, want 5/5", reps[1].Migrated(), reps[2].Migrated())
	}
}
