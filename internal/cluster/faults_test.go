package cluster

import (
	"testing"

	"adaserve/internal/request"
	"adaserve/internal/serve"
)

func TestFailFreezesReplicaAndHarvest(t *testing.T) {
	cl := fakeCluster(t, 2, NewRoundRobin())
	r0 := request.New(0, request.Chat, 0.05, 0.1, 16, 4, 3)
	r1 := request.New(1, request.Chat, 0.05, 0.2, 16, 4, 5)
	pool := cl.Replicas()[0].System().Pool()
	pool.Enqueue(r0)
	pool.Enqueue(r1)

	lost, ok := cl.Fail(0, 1.0)
	if !ok || lost != 2 {
		t.Fatalf("Fail = (%d, %v), want (2, true)", lost, ok)
	}
	rep := cl.Replicas()[0]
	if rep.State() != StateFailed {
		t.Fatalf("state %v, want failed", rep.State())
	}
	if !rep.Instance().Halted() {
		t.Fatal("failed replica's instance not halted")
	}
	if _, ok := cl.Fail(0, 1.5); ok {
		t.Fatal("second crash on a failed replica took effect")
	}

	// A failed replica leaves the committed fleet, the routable sets and the
	// billing integral, but still occupies its pool slot (it is not spare).
	if got := cl.CommittedFleet(); got != 1 {
		t.Fatalf("committed fleet %d, want 1", got)
	}
	pc := cl.CountPool(RoleMixed)
	if pc.Failed != 1 || pc.Active != 1 || pc.Stopped != 0 || pc.Capacity() != 2 {
		t.Fatalf("pool counts %+v, want 1 failed / 1 active", pc)
	}
	if len(cl.routablePrefill) != 1 || cl.routablePrefill[0].ID() != 1 {
		t.Fatalf("routable prefill set wrong after crash: want only replica 1")
	}
	if got := cl.LifecycleStats(10).ReplicaSeconds; got != 11 {
		t.Fatalf("replica-seconds %g, want 11 (replica 1 for 10s + failed span 1s)", got)
	}

	// The frozen pool harvests exactly once, in pool order.
	harvest := cl.HarvestFailed(0)
	if len(harvest) != 2 || harvest[0] != r0 || harvest[1] != r1 {
		t.Fatalf("harvest = %v, want [r0 r1]", harvest)
	}
	if pool.NumWaiting()+pool.NumRunning() != 0 {
		t.Fatal("harvest left residents behind")
	}
	if again := cl.HarvestFailed(0); len(again) != 0 {
		t.Fatalf("second harvest returned %d requests", len(again))
	}
}

func TestRecoverStaticResumesElasticSpares(t *testing.T) {
	// Static fleet: repair returns the replica to active duty, billing from
	// the repair instant, and re-admits it to the routable sets. A request
	// still frozen (repair beat detection) comes back stranded.
	cl := fakeCluster(t, 2, NewRoundRobin())
	r := request.New(0, request.Chat, 0.05, 0.1, 16, 4, 3)
	cl.Replicas()[0].System().Pool().Enqueue(r)
	if _, ok := cl.Fail(0, 1.0); !ok {
		t.Fatal("crash refused")
	}
	stranded, ok := cl.Recover(0, 2.0)
	if !ok || len(stranded) != 1 || stranded[0] != r {
		t.Fatalf("Recover = (%v, %v), want the stranded request", stranded, ok)
	}
	if cl.Replicas()[0].State() != StateActive {
		t.Fatalf("static repair state %v, want active", cl.Replicas()[0].State())
	}
	if len(cl.routablePrefill) != 2 {
		t.Fatal("repaired replica missing from routable set")
	}
	if got := cl.LifecycleStats(3).ReplicaSeconds; got != 5 {
		t.Fatalf("replica-seconds %g, want 5 (3 + pre-crash 1 + post-repair 1)", got)
	}
	if _, ok := cl.Recover(0, 3.0); ok {
		t.Fatal("recover on a healthy replica took effect")
	}

	// Elastic fleet: the repaired machine rejoins the spare pool — the
	// autoscaler already provisioned its replacement.
	ecl := elasticFake(t, 2, ElasticOptions{ColdStart: 1, InitialActive: 2}, nil)
	if _, ok := ecl.Fail(1, 1.0); !ok {
		t.Fatal("elastic crash refused")
	}
	if _, ok := ecl.Recover(1, 2.5); !ok {
		t.Fatal("elastic recover refused")
	}
	if ecl.Replicas()[1].State() != StateStopped {
		t.Fatalf("elastic repair state %v, want stopped (spare)", ecl.Replicas()[1].State())
	}
	if pc := ecl.CountPool(RoleMixed); pc.Stopped != 1 || pc.Failed != 0 {
		t.Fatalf("elastic pool counts %+v after repair", pc)
	}
}

func TestFailInvalidatesPendingActivation(t *testing.T) {
	cl := elasticFake(t, 2, ElasticOptions{ColdStart: 5, InitialActive: 1}, nil)
	var q serve.Queue
	rep, ok := cl.ScaleUp(RoleMixed, 1.0, &q)
	if !ok {
		t.Fatal("scale-up refused")
	}
	if _, ok := cl.Fail(rep.ID(), 2.0); !ok {
		t.Fatal("crash on a provisioning replica refused")
	}
	// The queued activation delivery is stale: it must not resurrect the
	// failed replica.
	cl.activate(rep, 6.0)
	if rep.State() != StateFailed {
		t.Fatalf("stale activation flipped a failed replica to %v", rep.State())
	}
}

func TestRedispatchAvoidsSuspect(t *testing.T) {
	cl := fakeCluster(t, 3, routeTo(0))
	r := request.New(0, request.Chat, 0.05, 0.1, 16, 4, 3)
	in, err := cl.Redispatch(r, 1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.ID() != 1 {
		t.Fatalf("re-dispatch landed on %d, want 1 (replica 0 avoided)", in.ID())
	}
	if cl.Replicas()[1].Routed() != 1 || len(cl.admitted) != 0 {
		t.Fatal("re-dispatch must count as routed but not re-enter the admitted population")
	}
	// Avoidance is best-effort: with every other replica failed, the suspect
	// is still better than dropping the request.
	cl.Fail(1, 2.0)
	cl.Fail(2, 2.0)
	r2 := request.New(1, request.Chat, 0.05, 0.2, 16, 4, 5)
	in2, err := cl.Redispatch(r2, 2.5, 0)
	if err != nil || in2.ID() != 0 {
		t.Fatalf("Redispatch = (%v, %v), want the avoided survivor", in2, err)
	}
	// Total outage: nothing routable.
	cl.Fail(0, 3.0)
	if _, err := cl.Redispatch(r2, 3.5, -1); err == nil {
		t.Fatal("re-dispatch succeeded with every replica failed")
	}
}

func TestEvictAndAdoptOutcome(t *testing.T) {
	cl := fakeCluster(t, 2, routeTo(0))
	orig := request.New(3, request.Chat, 0.05, 0.1, 16, 4, 3)
	if _, err := cl.Dispatch(orig); err != nil {
		t.Fatal(err)
	}
	shadow := orig.Clone()
	shadow.ID = orig.ID + 1<<28
	if _, err := cl.Redispatch(shadow, 0.5, 0); err != nil {
		t.Fatal(err)
	}

	// The shadow finishes first (simulated): the original is cancelled off
	// its losing replica and adopts the shadow's outcome on the winner.
	shadow.Phase = request.Done
	shadow.FirstTokenTime = 0.8
	shadow.DoneTime = 1.2
	cl.Replicas()[1].System().Pool().Remove(shadow) // the scheduler retired it
	if !cl.Evict(orig) {
		t.Fatal("eviction missed the resident original")
	}
	if cl.Replicas()[0].Routed() != 0 {
		t.Fatal("evicted request still in placement stats")
	}
	cl.AdoptOutcome(orig, shadow, 1)
	if orig.Phase != request.Done || orig.DoneTime != 1.2 || orig.FirstTokenTime != 0.8 {
		t.Fatalf("adoption did not copy the outcome: %+v", orig)
	}
	if cl.Replicas()[1].Routed() != 1 {
		t.Fatalf("winner owns %d routed requests, want 1 (shadow swapped for original)", cl.Replicas()[1].Routed())
	}
	done := cl.Replicas()[1].System().Pool().Done()
	if len(done) != 1 || done[0] != orig {
		t.Fatalf("winner pool done list %v, want the adopted original", done)
	}
	if cl.Evict(shadow) {
		t.Fatal("evicted a request that is no longer resident")
	}
	if len(cl.admitted) != 1 {
		t.Fatalf("admitted population %d, want 1", len(cl.admitted))
	}
}

func TestLinkFaultWindows(t *testing.T) {
	cl := fakeCluster(t, 2, nil)
	cl.SetLinkWindows([]LinkWindow{
		{From: 1, To: 2, FailProb: 1, Factor: 2, Seed: 9},
		{From: 5, To: 6, Factor: 3, Seed: 9},
	})
	// Inside the first window every migration fails, after paying the
	// degraded latency.
	lat, failed := cl.linkFault(1.5, 7, 0.1)
	if !failed || lat != 0.2 {
		t.Fatalf("linkFault in window = (%g, %v), want (0.2, true)", lat, failed)
	}
	// The second window only degrades.
	lat, failed = cl.linkFault(5.5, 7, 0.1)
	if failed || lat < 0.29 || lat > 0.31 {
		t.Fatalf("degrade-only window = (%g, %v), want (0.3, false)", lat, failed)
	}
	// Outside every window the transfer is clean.
	lat, failed = cl.linkFault(3.0, 7, 0.1)
	if failed || lat != 0.1 {
		t.Fatalf("clean transfer = (%g, %v), want (0.1, false)", lat, failed)
	}
	if cl.LinkFallbacks() != 1 || cl.LinkDegraded() != 2 {
		t.Fatalf("counters fallbacks=%d degraded=%d, want 1 and 2", cl.LinkFallbacks(), cl.LinkDegraded())
	}
	// The per-request coin is a pure function of (seed, request ID).
	w := LinkWindow{FailProb: 0.5, Seed: 42}
	for id := 0; id < 64; id++ {
		if w.fails(id) != w.fails(id) {
			t.Fatal("link coin not deterministic")
		}
	}
}
