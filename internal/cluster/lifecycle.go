package cluster

import (
	"fmt"

	"adaserve/internal/gpu"
	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sched"
	"adaserve/internal/serve"
)

// State is a replica's lifecycle stage in an elastic cluster. A static
// cluster keeps every replica in the zero state, StateActive, so the state
// machine is invisible to non-autoscaled runs.
//
// Transitions (all at deterministic event-time instants):
//
//	StateStopped ──ScaleUp──▶ StateProvisioning ──cold start elapses──▶ StateActive
//	StateProvisioning ──ScaleDown (cancel)──▶ StateStopped
//	StateActive ──ScaleDown──▶ StateDraining ──pool drains──▶ StateStopped
//	any non-stopped ──Fail (injected crash)──▶ StateFailed
//	StateFailed ──Recover──▶ StateActive (static) / StateStopped (elastic)
//
// Provisioning models model-load plus KV allocation: the replica consumes
// capacity (it is billed) but accepts no work until its cold start elapses.
// Draining takes no new admissions; its waiting requests migrate to active
// replicas over the KV-transfer path and its running requests finish in
// place. Failure (see faults.go) is abrupt: the replica halts mid-flight,
// freezing its resident requests and losing its KV; it is unbilled while
// down (the outage is accounted as unavailability, not capacity), and an
// elastic fleet's recovery returns it as spare capacity — so a crash looks
// like an organic scale-down to the autoscale controller, which provisions
// replacement capacity through the ordinary ScaleUp path.
type State int

const (
	// StateActive serves traffic (the zero value: static replicas are
	// always active).
	StateActive State = iota
	// StateProvisioning is spinning up: billed, not yet routable.
	StateProvisioning
	// StateDraining takes no new admissions; in-flight work finishes or
	// migrates, then the replica stops.
	StateDraining
	// StateStopped is spare capacity: unbilled, not routable.
	StateStopped
	// StateFailed is crashed: halted abruptly by fault injection, resident
	// requests frozen (lost once detection harvests them), KV gone. Unbilled
	// and not routable until recovery.
	StateFailed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateProvisioning:
		return "provisioning"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// scaleDeliveryBase offsets activation-delivery IDs past any request ID, so
// an activation landing at the same instant as a request migration is
// ordered after it — deterministically — in the driver's delivery queue.
const scaleDeliveryBase = 1 << 30

// ElasticOptions configures the replica lifecycle of an autoscaled cluster.
type ElasticOptions struct {
	// ColdStart is the provisioning delay in simulated seconds before a
	// scaled-up replica accepts work (model load + KV allocation). Zero
	// activates instantly.
	ColdStart float64
	// InitialActive is the number of replicas per role pool active at t=0
	// (lowest IDs first); the rest start StateStopped as spare capacity.
	// Clamped to each pool's size; must be at least 1.
	InitialActive int
}

// NewElastic builds a cluster whose fleet an autoscale controller resizes
// mid-run: the systems/roles define the capacity fleet, of which only the
// first InitialActive replicas per role pool start active; the rest are
// spare (StateStopped, unbilled) until scaled up. The transfer model prices
// drain migrations (and the prefill-to-decode handoff of a disaggregated
// fleet) and must validate.
func NewElastic(systems []sched.System, roles []Role, router Router, transfer gpu.KVTransfer, opts ElasticOptions) (*Cluster, error) {
	if opts.InitialActive < 1 {
		return nil, fmt.Errorf("cluster: elastic initial active %d < 1", opts.InitialActive)
	}
	if opts.ColdStart < 0 {
		return nil, fmt.Errorf("cluster: negative cold start %g", opts.ColdStart)
	}
	if err := transfer.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: KV-transfer model: %w", err)
	}
	c, err := NewWithRoles(systems, roles, router, transfer)
	if err != nil {
		return nil, err
	}
	c.elastic = true
	c.coldStart = opts.ColdStart
	// Lowest IDs first per role pool stay active; the rest park as spares.
	activePerRole := map[Role]int{}
	for _, rep := range c.replicas {
		if activePerRole[rep.role] < opts.InitialActive {
			activePerRole[rep.role]++
			continue
		}
		rep.state = StateStopped
	}
	// The routable sets must stop aliasing the capability sets before the
	// first rebuild (rebuild truncates in place).
	c.routablePrefill = make([]*Replica, 0, len(c.prefillCap))
	c.routableDecode = make([]*Replica, 0, len(c.decodeCap))
	c.rebuildRoutable()
	if len(c.routablePrefill) == 0 || len(c.routableDecode) == 0 {
		return nil, fmt.Errorf("cluster: elastic initial fleet lacks an active prefill- or decode-capable replica")
	}
	c.peakFleet = c.CommittedFleet()
	c.minFleet = c.peakFleet
	return c, nil
}

// State returns the replica's lifecycle state.
func (rep *Replica) State() State { return rep.state }

// Elastic reports whether the cluster's fleet can be resized mid-run.
func (c *Cluster) Elastic() bool { return c.elastic }

// ColdStart returns the provisioning delay of an elastic cluster.
func (c *Cluster) ColdStart() float64 { return c.coldStart }

// ActiveServing counts replicas currently serving traffic (StateActive):
// the capacity denominator admission gates normalize queue depth by. While
// a scaled-up replica provisions, CommittedFleet − ActiveServing is the
// cold-start gap the gate covers.
func (c *Cluster) ActiveServing() int {
	n := 0
	for _, rep := range c.replicas {
		if rep.state == StateActive {
			n++
		}
	}
	return n
}

// CommittedFleet counts replicas consuming capacity: provisioning, active
// or draining. Failed replicas are excluded — a crash stops the meter, and
// the outage is accounted as unavailability (metrics.FaultSummary), not
// capacity.
func (c *Cluster) CommittedFleet() int {
	n := 0
	for _, rep := range c.replicas {
		if rep.state != StateStopped && rep.state != StateFailed {
			n++
		}
	}
	return n
}

// PoolCounts reports the lifecycle occupancy of one role pool.
type PoolCounts struct {
	Role                           Role
	Active, Provisioning, Draining int
	Stopped                        int
	// Failed counts crashed replicas: built capacity that is neither billed
	// nor spare — ScaleUp cannot provision it until recovery returns it.
	Failed int
}

// Committed is the pool's capacity-consuming replica count.
func (p PoolCounts) Committed() int { return p.Active + p.Provisioning + p.Draining }

// Capacity is the pool's built replica count.
func (p PoolCounts) Capacity() int { return p.Committed() + p.Stopped + p.Failed }

// CountPool tallies the lifecycle states of the replicas running one role.
func (c *Cluster) CountPool(role Role) PoolCounts {
	pc := PoolCounts{Role: role}
	for _, rep := range c.replicas {
		if rep.role != role {
			continue
		}
		switch rep.state {
		case StateActive:
			pc.Active++
		case StateProvisioning:
			pc.Provisioning++
		case StateDraining:
			pc.Draining++
		case StateFailed:
			pc.Failed++
		default:
			pc.Stopped++
		}
	}
	return pc
}

// rebuildRoutable refreshes the state-filtered router candidate sets after a
// transition. Static clusters never call it (their routable sets alias the
// capability sets).
func (c *Cluster) rebuildRoutable() {
	c.routablePrefill = c.routablePrefill[:0]
	for _, rep := range c.prefillCap {
		if rep.state == StateActive {
			c.routablePrefill = append(c.routablePrefill, rep)
		}
	}
	c.routableDecode = c.routableDecode[:0]
	for _, rep := range c.decodeCap {
		if rep.state == StateActive {
			c.routableDecode = append(c.routableDecode, rep)
		}
	}
}

// noteFleet updates the committed-fleet peak/min watermarks after a
// transition.
func (c *Cluster) noteFleet() {
	n := c.CommittedFleet()
	if n > c.peakFleet {
		c.peakFleet = n
	}
	if n < c.minFleet {
		c.minFleet = n
	}
}

// ScaleUp provisions one stopped replica of the given role: it starts
// consuming capacity immediately and becomes routable once the cold start
// elapses (an activation delivery on the driver's queue flips it at the
// ready instant, interleaved deterministically with arrivals and
// migrations). Returns false when the pool has no spare replica.
func (c *Cluster) ScaleUp(role Role, now float64, q *serve.Queue) (*Replica, bool) {
	if !c.elastic {
		return nil, false
	}
	var rep *Replica
	for _, cand := range c.replicas {
		if cand.role == role && cand.state == StateStopped {
			rep = cand
			break
		}
	}
	if rep == nil {
		return nil, false
	}
	rep.state = StateProvisioning
	rep.activeSince = now
	rep.readyAt = now + c.coldStart
	if c.coldStart <= 0 {
		c.activate(rep, now)
	} else {
		c.scaleSeq++
		ready := rep.readyAt
		q.Schedule(ready, scaleDeliveryBase+c.scaleSeq, func() { c.activate(rep, ready) })
	}
	c.ups++
	c.noteFleet()
	return rep, true
}

// activate flips a provisioning replica to active at its ready instant. A
// stale delivery — the replica was canceled (and possibly re-provisioned
// with a different ready time) since this activation was scheduled — is
// ignored.
func (c *Cluster) activate(rep *Replica, readyAt float64) {
	if rep.state != StateProvisioning || rep.readyAt != readyAt {
		return
	}
	rep.state = StateActive
	rep.inst.BumpClock(readyAt)
	c.rebuildRoutable()
}

// ScaleDown shrinks one role pool by a replica. Provisioning replicas are
// canceled first (most recently provisioned first — the cheapest capacity
// to give back); otherwise the active replica with the least outstanding
// work drains: no new admissions, waiting requests migrate to active
// replicas over the KV-transfer path, running requests finish in place, and
// the replica stops once empty. Refused (false) when removal would leave
// the cluster without an active prefill- or decode-capable replica.
func (c *Cluster) ScaleDown(role Role, now float64, q *serve.Queue) (*Replica, bool) {
	if !c.elastic {
		return nil, false
	}
	// Cancel a provisioning replica first: most recent ready time, then
	// highest ID, so the pick is stable and the longest-cooking replica is
	// kept.
	var cancel *Replica
	for _, rep := range c.replicas {
		if rep.role != role || rep.state != StateProvisioning {
			continue
		}
		if cancel == nil || rep.readyAt > cancel.readyAt ||
			(rep.readyAt == cancel.readyAt && rep.ID() > cancel.ID()) {
			cancel = rep
		}
	}
	if cancel != nil {
		cancel.consumed += now - cancel.activeSince
		cancel.state = StateStopped
		cancel.readyAt = -1 // invalidates the queued activation delivery
		c.downs++
		c.noteFleet()
		return cancel, true
	}
	var victim *Replica
	victimLoad := 0
	for _, rep := range c.replicas {
		if rep.role != role || rep.state != StateActive || rep.pendingDeliveries > 0 {
			// A replica with in-flight inbound deliveries cannot drain:
			// the delivery would otherwise land on a stopped replica and
			// serve unbilled.
			continue
		}
		if load := rep.QueuedTokens(); victim == nil || load < victimLoad ||
			(load == victimLoad && rep.ID() > victim.ID()) {
			victim, victimLoad = rep, load
		}
	}
	if victim == nil || !c.removable(victim) {
		return nil, false
	}
	c.drain(victim, now, q)
	c.downs++
	c.noteFleet()
	return victim, true
}

// removable reports whether draining rep would still leave an active
// prefill-capable and an active decode-capable replica.
func (c *Cluster) removable(rep *Replica) bool {
	prefill, decode := 0, 0
	for _, other := range c.replicas {
		if other == rep || other.state != StateActive {
			continue
		}
		if other.role != RoleDecode {
			prefill++
		}
		if other.role != RolePrefill {
			decode++
		}
	}
	return prefill > 0 && decode > 0
}

// drain starts a replica's shutdown: it leaves the routable sets, its
// waiting requests are re-dispatched to active replicas — requests with
// computed KV (partial prefill or paused decodes) pay the transfer model
// for the handoff, untouched arrivals move free — and its running requests
// finish in place. A migrated request's placement stats move with it (the
// drainer forgets it; the target counts it in the stage it will actually
// serve), so no request is double-counted across per-replica summaries.
// sweepDrained stops the replica once its pool empties.
func (c *Cluster) drain(rep *Replica, now float64, q *serve.Queue) {
	rep.state = StateDraining
	rep.drainedAt = now
	c.rebuildRoutable()
	pool := rep.System().Pool()
	waiting := append([]*request.Request(nil), pool.Waiting()...)
	for _, r := range waiting {
		pool.Remove(r)
		rep.System().Release(r)
		rep.forget(r)
		lat := 0.0
		if computed := r.PrefillDone + r.OutputLen(); computed > 0 {
			lat = c.transfer.Latency(computed)
			c.stats.Count++
			c.stats.Bytes += c.transfer.Bytes(computed)
			c.stats.Time += lat
		}
		c.drainMigrations++
		req, ready := r, now+lat
		bytes := 0.0
		if computed := r.PrefillDone + r.OutputLen(); computed > 0 {
			bytes = c.transfer.Bytes(computed)
		}
		if r.RemainingPrefill() > 0 {
			// Still a prefill-stage arrival: it re-routes like a dispatch
			// and lands in the target's routed list.
			tgt := c.routablePrefill[c.router.Route(r, c.routablePrefill)]
			tgt.pendingDeliveries++
			q.ScheduleMigration(ready, req.ID, serve.Migration{
				Req: req, From: rep.inst.ID(), To: tgt.inst.ID(), Depart: now, Bytes: bytes,
			}, func() { c.deliverRouted(req, tgt, ready) })
		} else {
			// Prefill-complete: a decode-stage migration.
			tgt := c.routableDecode[c.router.RouteDecode(r, c.routableDecode)]
			tgt.pendingDeliveries++
			q.ScheduleMigration(ready, req.ID, serve.Migration{
				Req: req, From: rep.inst.ID(), To: tgt.inst.ID(), Depart: now, Bytes: bytes,
			}, func() { c.deliver(req, tgt, ready) })
		}
	}
	c.sweepDrained()
}

// forget removes r from the replica's placement lists: drain migration
// transfers statistical ownership to the new target.
func (rep *Replica) forget(r *request.Request) {
	for i, q := range rep.routed {
		if q == r {
			rep.routed = append(rep.routed[:i], rep.routed[i+1:]...)
			return
		}
	}
	for i, q := range rep.migrated {
		if q == r {
			rep.migrated = append(rep.migrated[:i], rep.migrated[i+1:]...)
			return
		}
	}
}

// SweepDrained retires draining replicas whose pools have emptied: each
// flips to StateStopped and its consumption span closes at the instant it
// ran out of work (its own clock, or the drain decision for a replica that
// was already idle). The autoscale controller calls this every tick; the
// cluster also sweeps after its own iterations so lifecycle stats stay
// current between controller decisions.
func (c *Cluster) SweepDrained() {
	if c.elastic {
		c.sweepDrained()
	}
}

func (c *Cluster) sweepDrained() {
	for _, rep := range c.replicas {
		if rep.state != StateDraining {
			continue
		}
		p := rep.System().Pool()
		if p.NumWaiting() > 0 || p.NumRunning() > 0 {
			continue
		}
		end := rep.Clock()
		if end < rep.drainedAt {
			end = rep.drainedAt
		}
		rep.consumed += end - rep.activeSince
		rep.state = StateStopped
	}
}

// LifecycleStats reports the fleet's replica-lifecycle economics at
// simulated time end (typically the run's EndTime): scale events, drain
// migrations, committed-fleet watermarks, and total replica-seconds
// consumed — still-committed replicas bill through end. The caller fills
// the request-outcome fields (Finished/Attained/GoodTokens) and Policy.
func (c *Cluster) LifecycleStats(end float64) metrics.AutoscaleSummary {
	s := metrics.AutoscaleSummary{
		ScaleUps:        c.ups,
		ScaleDowns:      c.downs,
		DrainMigrations: c.drainMigrations,
		PeakReplicas:    c.peakFleet,
		MinReplicas:     c.minFleet,
	}
	for _, rep := range c.replicas {
		s.ReplicaSeconds += rep.consumed
		// Failed replicas stopped billing at the crash (their span closed in
		// Fail); the outage shows up as unavailability, not capacity.
		if rep.state != StateStopped && rep.state != StateFailed && end > rep.activeSince {
			s.ReplicaSeconds += end - rep.activeSince
		}
	}
	return s
}
