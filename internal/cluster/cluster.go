// Package cluster simulates a multi-replica serving deployment: N
// independently clocked replicas — each a complete serving system from
// internal/sched with its own engine, KV cache and request pool — fed from
// one global arrival stream by a pluggable Router.
//
// A Cluster is a serve.Backend: the unified event-driven driver in
// internal/serve advances the replicas at per-replica iteration granularity.
// An arrival is routed once every replica that still has runnable work has
// simulated past the arrival instant, so routing observes each replica's
// most recent iteration-boundary state — the same boundary-visibility rule
// the single-replica driver uses, and the (slightly stale) load signal a
// production router in front of independently batching replicas would have.
// All tie-breaking is by lowest replica index, so runs are deterministic
// under a fixed seed. Run replays a closed trace through the driver in one
// call; streaming callers (observers, open-loop sources) hand the Cluster to
// serve.NewServer directly and assemble metrics with Results.
//
// Replicas optionally carry a role. A colocated cluster (every replica
// RoleMixed) serves each request start-to-finish where it was routed. A
// disaggregated cluster splits the fleet into prefill and decode instances:
// arrivals are dispatched among prefill-capable replicas, and when a
// request's prompt completes on a RolePrefill replica the cluster migrates it
// — pricing the prompt-KV handoff with a gpu.KVTransfer model — to a
// decode-capable replica chosen by the router. The transfer latency lands on
// the request's clock between prefill completion and decode eligibility,
// exactly where a real disaggregated deployment pays it (inside TTFT, ahead
// of the first decode token). Migrations ride the driver's delivery queue,
// interleaved with arrivals in global (time, request ID) order, under the
// same boundary-visibility rule.
package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"adaserve/internal/gpu"
	"adaserve/internal/kvcache"
	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sched"
	"adaserve/internal/serve"
)

// Role restricts which lifecycle stage a replica serves.
type Role int

const (
	// RoleMixed serves requests start to finish (colocated).
	RoleMixed Role = iota
	// RolePrefill serves only prompt processing; completed prefills migrate
	// to a decode-capable replica.
	RolePrefill
	// RoleDecode serves only decoding of migrated, prefill-complete
	// requests.
	RoleDecode
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleMixed:
		return "mixed"
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Mode returns the sched admission mode matching the role, for building
// role-restricted replicas.
func (r Role) Mode() sched.Mode {
	switch r {
	case RolePrefill:
		return sched.ModePrefill
	case RoleDecode:
		return sched.ModeDecode
	default:
		return sched.ModeMixed
	}
}

// ParseSplit parses a role-split spec like "2P2D" (two prefill plus two
// decode replicas) into the per-replica role list, prefill replicas first.
// "colocated" or "mixed" followed by a count ("mixed4") yields an all-mixed
// cluster of that size.
func ParseSplit(spec string) ([]Role, error) {
	s := strings.ToUpper(strings.TrimSpace(spec))
	if rest, ok := strings.CutPrefix(s, "MIXED"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("cluster: bad mixed split %q (want e.g. mixed4)", spec)
		}
		return make([]Role, n), nil
	}
	p := strings.IndexByte(s, 'P')
	d := strings.IndexByte(s, 'D')
	if p < 1 || d != len(s)-1 || d <= p {
		return nil, fmt.Errorf("cluster: bad role split %q (want e.g. 2P2D or mixed4)", spec)
	}
	np, err1 := strconv.Atoi(s[:p])
	nd, err2 := strconv.Atoi(s[p+1 : d])
	if err1 != nil || err2 != nil || np < 1 || nd < 1 {
		return nil, fmt.Errorf("cluster: bad role split %q (want e.g. 2P2D)", spec)
	}
	roles := make([]Role, 0, np+nd)
	for i := 0; i < np; i++ {
		roles = append(roles, RolePrefill)
	}
	for i := 0; i < nd; i++ {
		roles = append(roles, RoleDecode)
	}
	return roles, nil
}

// SplitName renders a role list in ParseSplit's notation ("2P2D",
// "colocated" when every replica is mixed).
func SplitName(roles []Role) string {
	np, nd, nm := 0, 0, 0
	for _, r := range roles {
		switch r {
		case RolePrefill:
			np++
		case RoleDecode:
			nd++
		default:
			nm++
		}
	}
	if np == 0 && nd == 0 {
		return "colocated"
	}
	name := fmt.Sprintf("%dP%dD", np, nd)
	if nm > 0 {
		name += fmt.Sprintf("+%dM", nm)
	}
	return name
}

// Replica is one serving instance inside a cluster: a serve.Instance (the
// driver-owned clock and iteration accounting around a sched.System) plus
// the cluster-side placement state — its role and the requests routed or
// migrated to it.
type Replica struct {
	inst *serve.Instance
	role Role
	// routed holds arrivals dispatched here (the prefill stage for
	// role-restricted clusters); migrated holds requests delivered by
	// prefill-to-decode migration or drain migration. pendingDeliveries
	// counts in-flight deliveries targeting this replica — a replica with
	// inbound work cannot be drained.
	routed            []*request.Request
	migrated          []*request.Request
	pendingDeliveries int

	// Lifecycle state (see lifecycle.go). Static clusters leave every
	// replica in the zero state, StateActive, forever.
	state State
	// readyAt is the provisioning-complete instant (valid while
	// StateProvisioning; the activation delivery checks it to ignore stale
	// deliveries after a canceled-and-reprovisioned cycle).
	readyAt float64
	// drainedAt is the drain-decision instant (valid while StateDraining).
	drainedAt float64
	// activeSince starts the current consumption span; consumed accumulates
	// completed spans (replica-seconds billing).
	activeSince float64
	consumed    float64
}

// ID returns the replica's index within the cluster.
func (rep *Replica) ID() int { return rep.inst.ID() }

// Role returns the replica's serving role.
func (rep *Replica) Role() Role { return rep.role }

// System returns the wrapped serving system.
func (rep *Replica) System() sched.System { return rep.inst.System() }

// Instance returns the replica's driver-side serving instance.
func (rep *Replica) Instance() *serve.Instance { return rep.inst }

// Clock returns the replica's local simulated time: the end of its last
// executed iteration (or the last arrival it received while idle).
func (rep *Replica) Clock() float64 { return rep.inst.Clock() }

// Routed returns the number of arrivals routed to this replica so far.
func (rep *Replica) Routed() int { return len(rep.routed) }

// Migrated returns the number of requests migrated to this replica so far.
func (rep *Replica) Migrated() int { return len(rep.migrated) }

// served are the requests whose final stage ran (or will run) on this
// replica: migrations for a decode replica, arrivals for a colocated one —
// and both for a mixed replica inside a hybrid fleet, which decodes its own
// arrivals plus any migrations delivered to it.
func (rep *Replica) served() []*request.Request {
	switch {
	case rep.role == RoleDecode:
		return rep.migrated
	case len(rep.migrated) == 0:
		return rep.routed
	default:
		out := make([]*request.Request, 0, len(rep.routed)+len(rep.migrated))
		out = append(out, rep.routed...)
		return append(out, rep.migrated...)
	}
}

// remainingTokens is a request's outstanding work: prompt tokens not yet
// prefilled plus output tokens not yet generated.
func remainingTokens(r *request.Request) int {
	if r.Phase == request.Done {
		return 0
	}
	return r.RemainingPrefill() + r.MaxNewTokens - r.OutputLen()
}

// QueuedTokens returns the replica's outstanding work in tokens, summed over
// its waiting and running requests. This is the load signal the
// least-loaded router balances on (the SLO-aware router balances resident
// headcount instead — see ActiveRequests).
func (rep *Replica) QueuedTokens() int {
	p := rep.System().Pool()
	n := 0
	for _, r := range p.Waiting() {
		n += remainingTokens(r)
	}
	for _, r := range p.Running() {
		n += remainingTokens(r)
	}
	return n
}

// QueuedPrefillTokens returns the replica's outstanding prompt tokens: the
// backlog a prefill-role replica must chew through before newly routed
// prompts start, and therefore the dispatch signal role-aware routers
// balance prefill traffic on.
func (rep *Replica) QueuedPrefillTokens() int {
	p := rep.System().Pool()
	n := 0
	for _, r := range p.Waiting() {
		n += r.RemainingPrefill()
	}
	for _, r := range p.Running() {
		n += r.RemainingPrefill()
	}
	return n
}

// ActiveRequests counts the replica's resident (waiting or running,
// unfinished) requests split into latency-critical (TPOT SLO <= cutoff) and
// batch-tolerant shares. Headcount — not queued tokens — is the contention
// signal the SLO-aware router balances: every resident request claims a
// share of each iteration's verification budget for its whole decode
// residence, so headcount is what dilutes a tight request's token
// allowance.
func (rep *Replica) ActiveRequests(cutoff float64) (tight, relaxed int) {
	p := rep.System().Pool()
	count := func(r *request.Request) {
		if r.Phase == request.Done {
			return
		}
		if r.TPOTSLO <= cutoff {
			tight++
		} else {
			relaxed++
		}
	}
	for _, r := range p.Waiting() {
		count(r)
	}
	for _, r := range p.Running() {
		count(r)
	}
	return tight, relaxed
}

// Cluster is a set of replicas behind a router. It implements
// serve.Backend, so the unified driver can advance it; like a sched.System,
// a Cluster is single-use: build a fresh one per run.
type Cluster struct {
	replicas []*Replica
	insts    []*serve.Instance
	router   Router
	transfer gpu.KVTransfer
	disagg   bool

	// prefillCap and decodeCap are the role-filtered candidate sets (== all
	// replicas for a colocated cluster). routablePrefill/routableDecode are
	// the state-filtered subsets handed to the router: for a static cluster
	// they alias prefillCap/decodeCap verbatim (so static routing is
	// byte-identical to pre-lifecycle clusters); an elastic cluster rebuilds
	// them on every state transition.
	prefillCap      []*Replica
	decodeCap       []*Replica
	routablePrefill []*Replica
	routableDecode  []*Replica

	// admitted records every dispatched arrival in admission order: the
	// request population Results aggregates over when the caller has none
	// (open-loop runs) — kept cluster-side because drain migration moves
	// requests between replicas' placement lists.
	admitted []*request.Request

	// Elastic-lifecycle state (see lifecycle.go).
	elastic         bool
	coldStart       float64
	scaleSeq        int
	ups, downs      int
	drainMigrations int
	peakFleet       int
	minFleet        int

	// Fault-injection state (see faults.go). All zero — and therefore
	// invisible — until ArmFaults.
	faultsArmed   bool
	linkWindows   []LinkWindow
	linkFallbacks int
	linkDegraded  int

	stats metrics.TransferStats
}

// New builds a colocated cluster (every replica RoleMixed) from
// ready-to-run serving systems and a router.
func New(systems []sched.System, router Router) (*Cluster, error) {
	return NewWithRoles(systems, nil, router, gpu.KVTransfer{})
}

// NewWithRoles builds a cluster with explicit per-replica roles. roles nil
// means all-mixed (colocated). When any replica is RolePrefill the transfer
// model prices the prefill-to-decode handoff and must validate; a
// disaggregated cluster additionally needs at least one prefill-capable and
// one decode-capable replica.
func NewWithRoles(systems []sched.System, roles []Role, router Router, transfer gpu.KVTransfer) (*Cluster, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("cluster: no replicas")
	}
	if router == nil {
		return nil, fmt.Errorf("cluster: router required")
	}
	if roles == nil {
		roles = make([]Role, len(systems))
	}
	if len(roles) != len(systems) {
		return nil, fmt.Errorf("cluster: %d roles for %d replicas", len(roles), len(systems))
	}
	c := &Cluster{router: router, transfer: transfer}
	for i, sys := range systems {
		if sys == nil {
			return nil, fmt.Errorf("cluster: replica %d is nil", i)
		}
		rep := &Replica{inst: serve.NewInstance(i, sys), role: roles[i]}
		c.replicas = append(c.replicas, rep)
		c.insts = append(c.insts, rep.inst)
		if roles[i] != RoleDecode {
			c.prefillCap = append(c.prefillCap, rep)
		}
		if roles[i] != RolePrefill {
			c.decodeCap = append(c.decodeCap, rep)
		}
		if roles[i] == RolePrefill {
			c.disagg = true
		}
	}
	if len(c.prefillCap) == 0 {
		return nil, fmt.Errorf("cluster: no prefill-capable replica")
	}
	if len(c.decodeCap) == 0 {
		return nil, fmt.Errorf("cluster: no decode-capable replica")
	}
	if c.disagg {
		if err := transfer.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: KV-transfer model: %w", err)
		}
	}
	c.routablePrefill = c.prefillCap
	c.routableDecode = c.decodeCap
	c.peakFleet = len(c.replicas)
	c.minFleet = len(c.replicas)
	return c, nil
}

// Replicas returns the cluster's replicas in ID order.
func (c *Cluster) Replicas() []*Replica { return c.replicas }

// Size returns the number of replicas.
func (c *Cluster) Size() int { return len(c.replicas) }

// Roles returns the per-replica roles in ID order.
func (c *Cluster) Roles() []Role {
	roles := make([]Role, len(c.replicas))
	for i, rep := range c.replicas {
		roles[i] = rep.role
	}
	return roles
}

// Name identifies the cluster configuration in reports.
func (c *Cluster) Name() string {
	base := fmt.Sprintf("%s x%d [%s]", c.replicas[0].System().Name(), len(c.replicas), c.router.Name())
	if split := SplitName(c.Roles()); split != "colocated" {
		base += " " + split
	}
	return base
}

// Instances implements serve.Backend.
func (c *Cluster) Instances() []*serve.Instance { return c.insts }

// Dispatch implements serve.Backend: the router places the arrival among
// active prefill-capable replicas (provisioning and draining replicas take
// no new admissions).
func (c *Cluster) Dispatch(r *request.Request) (*serve.Instance, error) {
	cands := c.routablePrefill
	if len(cands) == 0 {
		return nil, fmt.Errorf("cluster: no active prefill-capable replica")
	}
	idx := c.router.Route(r, cands)
	if idx < 0 || idx >= len(cands) {
		return nil, fmt.Errorf("cluster: router %s picked replica %d of %d",
			c.router.Name(), idx, len(cands))
	}
	rep := cands[idx]
	rep.inst.BumpClock(r.ArrivalTime)
	rep.System().Pool().Enqueue(r)
	rep.routed = append(rep.routed, r)
	c.admitted = append(c.admitted, r)
	return rep.inst, nil
}

// AfterIterate implements serve.Backend: it migrates prefill-complete
// requests off a prefill-role replica. Every running request that flipped to
// the Decoding phase during the last iteration leaves the replica (KV freed
// at the source), is priced through the transfer model, and is dispatched to
// a decode-capable replica by the router. The request rides the driver's
// delivery queue until the target's clock reaches the ready instant. Pool
// order makes the migration order deterministic.
func (c *Cluster) AfterIterate(in *serve.Instance, q *serve.Queue) error {
	rep := c.replicas[in.ID()]
	if c.elastic {
		c.sweepDrained()
	}
	if rep.role != RolePrefill {
		return nil
	}
	var done []*request.Request
	for _, r := range rep.System().Pool().Running() {
		if r.Phase == request.Decoding {
			done = append(done, r)
		}
	}
	for _, r := range done {
		rep.System().Pool().Remove(r)
		rep.System().Release(r)
		cands := c.routableDecode
		if len(cands) == 0 {
			return fmt.Errorf("cluster: no active decode-capable replica")
		}
		idx := c.router.RouteDecode(r, cands)
		if idx < 0 || idx >= len(cands) {
			return fmt.Errorf("cluster: router %s picked replica %d of %d decode candidates",
				c.router.Name(), idx, len(cands))
		}
		lat := c.transfer.Latency(r.PromptLen)
		failed := false
		if len(c.linkWindows) > 0 {
			// An armed link fault may degrade the transfer (latency factor)
			// or lose it in flight: the request still pays the attempt's
			// wire time — the failure is detected at the destination — but
			// arrives without its prompt KV and recomputes the prefill there.
			lat, failed = c.linkFault(rep.Clock(), r.ID, lat)
		}
		c.stats.Count++
		c.stats.Bytes += c.transfer.Bytes(r.PromptLen)
		c.stats.Time += lat
		if failed {
			r.Phase = request.Queued
			r.PrefillDone = 0
			r.Recompute = true // decode-mode admission accepts the re-prefill
		} else {
			r.Phase = request.Preempted // re-enqueues as resumable, skipping prefill
		}
		req, target, ready := r, cands[idx], rep.Clock()+lat
		target.pendingDeliveries++
		q.ScheduleMigration(ready, req.ID, serve.Migration{
			Req: req, From: rep.inst.ID(), To: target.inst.ID(),
			Depart: rep.Clock(), Bytes: c.transfer.Bytes(req.PromptLen),
		}, func() { c.deliver(req, target, ready) })
	}
	return nil
}

// deliver lands an arrived migration on its decode replica, bumping an idle
// target's clock to the transfer-completion instant. With faults armed, a
// delivery whose target crashed while the transfer was in flight is
// re-routed to a surviving decode-capable replica (router exclusion of
// failed replicas covers in-flight work, not just new dispatches); with none
// left it lands on the failed replica and is lost with it.
func (c *Cluster) deliver(r *request.Request, target *Replica, ready float64) {
	target.pendingDeliveries--
	if c.faultsArmed && target.state == StateFailed && len(c.routableDecode) > 0 {
		target = c.routableDecode[c.router.RouteDecode(r, c.routableDecode)]
	}
	target.inst.BumpClock(ready)
	target.System().Pool().Enqueue(r)
	target.migrated = append(target.migrated, r)
}

// deliverRouted lands a drain-migrated, still-to-prefill request on its new
// replica as a routed arrival (the prefill stage restarts there, so the
// target owns the request's placement stats). Failed targets re-route like
// deliver.
func (c *Cluster) deliverRouted(r *request.Request, target *Replica, ready float64) {
	target.pendingDeliveries--
	if c.faultsArmed && target.state == StateFailed && len(c.routablePrefill) > 0 {
		target = c.routablePrefill[c.router.Route(r, c.routablePrefill)]
	}
	target.inst.BumpClock(ready)
	target.System().Pool().Enqueue(r)
	target.routed = append(target.routed, r)
}

// Options bounds a cluster run. Zero values resolve to the shared driver
// defaults (serve.DefaultMaxSimTime, serve.DefaultMaxIterations).
type Options struct {
	// MaxSimTime aborts runs when any replica's clock exceeds this (0: 24h).
	MaxSimTime float64
	// MaxIterations aborts runaway runs; it counts iterations summed across
	// replicas (0: 50 million).
	MaxIterations int
}

// ReplicaResult reports one replica's share of a completed run.
type ReplicaResult struct {
	// Summary covers the requests this replica served: arrivals routed to
	// it, or — for a decode-role replica — the requests migrated to it.
	Summary *metrics.Summary
	// Role is the replica's serving role.
	Role Role
	// Iterations is the replica's scheduling-iteration count.
	Iterations int
	// EndTime is the replica's final local clock.
	EndTime float64
}

// Result reports a completed cluster run.
type Result struct {
	// Summary is the cluster-aggregate plus per-replica metric summaries.
	Summary *metrics.ClusterSummary
	// PerReplica holds per-replica simulation results in ID order.
	PerReplica []ReplicaResult
	// Iterations is the total iteration count across replicas.
	Iterations int
	// EndTime is the simulated completion time of the last request on any
	// replica.
	EndTime float64
}

// Run drives the cluster over the request trace until every request is done:
// a serve.Server over a TraceSource with the cluster as backend. Arrivals
// are routed in (arrival time, ID) order among prefill-capable replicas;
// migrations are delivered interleaved with arrivals in event-time order
// (migrations before arrivals only when strictly earlier). Each routed
// request stays on its replica except for the single prefill-to-decode
// migration of a disaggregated cluster.
func (c *Cluster) Run(reqs []*request.Request, opts Options) (*Result, error) {
	src, err := serve.NewTraceSource(reqs)
	if err != nil {
		return nil, err
	}
	srv, err := serve.NewServer(c, serve.Options{
		MaxSimTime:    opts.MaxSimTime,
		MaxIterations: opts.MaxIterations,
	})
	if err != nil {
		return nil, err
	}
	rr, err := srv.Run(src)
	if err != nil {
		return nil, err
	}
	return c.results(reqs, rr), nil
}

// Results assembles the cluster result of a completed serve run driven
// directly through serve.Server (rather than Run). reqs is the request
// population the aggregate summarizes over — pass the trace for closed
// replay so ordering (and therefore order-dependent float sums) matches
// Run exactly; pass nil when the population is not known up front
// (open-loop or programmatic sources) to aggregate over every request
// dispatched into the cluster, in admission order.
func (c *Cluster) Results(rr *serve.Result, reqs []*request.Request) *Result {
	if reqs == nil {
		reqs = c.admitted
	}
	return c.results(reqs, rr)
}

// results builds the Result over the given request population.
func (c *Cluster) results(reqs []*request.Request, rr *serve.Result) *Result {
	res := &Result{Iterations: rr.Iterations, EndTime: rr.EndTime}
	var total metrics.Breakdown
	var perReplica []*metrics.Summary
	for _, rep := range c.replicas {
		b := rep.inst.Breakdown()
		total.Add(b)
		name := fmt.Sprintf("replica %d", rep.ID())
		if rep.role != RoleMixed {
			name = fmt.Sprintf("replica %d (%s)", rep.ID(), rep.role)
		}
		sum := metrics.Summarize(name, rep.served(), b)
		perReplica = append(perReplica, sum)
		res.PerReplica = append(res.PerReplica, ReplicaResult{
			Summary:    sum,
			Role:       rep.role,
			Iterations: rep.inst.Iterations(),
			EndTime:    rep.Clock(),
		})
	}
	as := c.LifecycleStats(rr.EndTime)
	for _, r := range reqs {
		if r.Phase != request.Done {
			continue
		}
		as.Finished++
		if r.AttainedSLO() {
			as.Attained++
			as.GoodTokens += r.OutputLen()
		}
	}
	res.Summary = &metrics.ClusterSummary{
		Aggregate: metrics.Summarize(c.Name(), reqs, total),
		Replicas:  perReplica,
		Roles:     c.roleStats(),
		Transfer:  c.stats,
		Autoscale: &as,
		Prefix:    c.prefixSummary(),
	}
	return res
}

// prefixSummary sums the shared-prefix cache counters over replicas whose
// systems run with prefix caching enabled; nil when none does.
func (c *Cluster) prefixSummary() *metrics.PrefixSummary {
	var out *metrics.PrefixSummary
	for _, rep := range c.replicas {
		p, ok := rep.System().(interface {
			KVPrefixStats() (kvcache.PrefixStats, bool)
		})
		if !ok {
			continue
		}
		st, enabled := p.KVPrefixStats()
		if !enabled {
			continue
		}
		if out == nil {
			out = &metrics.PrefixSummary{}
		}
		out.Add(metrics.PrefixSummary{
			Lookups:         st.Lookups,
			Hits:            st.Hits,
			HitTokens:       st.HitTokens,
			Evictions:       st.Evictions,
			HostEvictions:   st.HostEvictions,
			Reloads:         st.Reloads,
			ReloadedTokens:  st.ReloadedTokens,
			ReloadStallTime: st.ReloadStall,
		})
	}
	return out
}

// roleStats aggregates TTFT/TPOT attainment by replica role: TTFT over the
// requests a role prefilled, TPOT over the requests it decoded (a mixed
// replica owns both stages of its routed requests).
func (c *Cluster) roleStats() []metrics.RoleStats {
	var out []metrics.RoleStats
	for _, role := range []Role{RolePrefill, RoleDecode, RoleMixed} {
		rs := metrics.RoleStats{Role: role.String()}
		for _, rep := range c.replicas {
			if rep.role != role {
				continue
			}
			rs.Replicas++
			if role != RoleDecode {
				rs.PrefillRequests += len(rep.routed)
				for _, r := range rep.routed {
					if r.AttainedTTFT() {
						rs.TTFTAttained++
					}
				}
			}
			if role != RolePrefill {
				for _, r := range rep.served() {
					rs.DecodeRequests++
					if r.AttainedSLO() {
						rs.TPOTAttained++
					}
				}
			}
		}
		if rs.Replicas > 0 {
			out = append(out, rs)
		}
	}
	return out
}
