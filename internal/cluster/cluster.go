// Package cluster simulates a multi-replica serving deployment: N
// independently clocked replicas — each a complete serving system from
// internal/sched with its own engine, KV cache and request pool — fed from
// one global arrival stream by a pluggable Router.
//
// The driver generalizes internal/sim.Run to per-replica clocks. Each
// replica advances at its own iteration granularity; an arrival is routed
// once every replica that still has runnable work has simulated past the
// arrival instant, so routing observes each replica's most recent
// iteration-boundary state — the same boundary-visibility rule the
// single-replica driver uses, and the (slightly stale) load signal a
// production router in front of independently batching replicas would have.
// All tie-breaking is by lowest replica index, so runs are deterministic
// under a fixed seed.
package cluster

import (
	"fmt"

	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sched"
)

// Replica is one serving instance inside a cluster: a sched.System plus the
// per-replica simulation state (local clock, iteration accounting, and the
// requests routed to it).
type Replica struct {
	id         int
	sys        sched.System
	clock      float64
	iterations int
	breakdown  metrics.Breakdown
	routed     []*request.Request
}

// ID returns the replica's index within the cluster.
func (rep *Replica) ID() int { return rep.id }

// System returns the wrapped serving system.
func (rep *Replica) System() sched.System { return rep.sys }

// Clock returns the replica's local simulated time: the end of its last
// executed iteration (or the last arrival it received while idle).
func (rep *Replica) Clock() float64 { return rep.clock }

// Routed returns the number of requests routed to this replica so far.
func (rep *Replica) Routed() int { return len(rep.routed) }

// hasWork reports whether the replica has waiting or running requests.
func (rep *Replica) hasWork() bool {
	p := rep.sys.Pool()
	return p.NumWaiting() > 0 || p.NumRunning() > 0
}

// remainingTokens is a request's outstanding work: prompt tokens not yet
// prefilled plus output tokens not yet generated.
func remainingTokens(r *request.Request) int {
	if r.Phase == request.Done {
		return 0
	}
	return r.RemainingPrefill() + r.MaxNewTokens - r.OutputLen()
}

// QueuedTokens returns the replica's outstanding work in tokens, summed over
// its waiting and running requests. This is the load signal the
// least-loaded router balances on (the SLO-aware router balances resident
// headcount instead — see ActiveRequests).
func (rep *Replica) QueuedTokens() int {
	p := rep.sys.Pool()
	n := 0
	for _, r := range p.Waiting() {
		n += remainingTokens(r)
	}
	for _, r := range p.Running() {
		n += remainingTokens(r)
	}
	return n
}

// ActiveRequests counts the replica's resident (waiting or running,
// unfinished) requests split into latency-critical (TPOT SLO <= cutoff) and
// batch-tolerant shares. Headcount — not queued tokens — is the contention
// signal the SLO-aware router balances: every resident request claims a
// share of each iteration's verification budget for its whole decode
// residence, so headcount is what dilutes a tight request's token
// allowance.
func (rep *Replica) ActiveRequests(cutoff float64) (tight, relaxed int) {
	p := rep.sys.Pool()
	count := func(r *request.Request) {
		if r.Phase == request.Done {
			return
		}
		if r.TPOTSLO <= cutoff {
			tight++
		} else {
			relaxed++
		}
	}
	for _, r := range p.Waiting() {
		count(r)
	}
	for _, r := range p.Running() {
		count(r)
	}
	return tight, relaxed
}

// Cluster is a set of replicas behind a router. Like a sched.System, a
// Cluster is single-use: build a fresh one per run.
type Cluster struct {
	replicas []*Replica
	router   Router
}

// New builds a cluster from ready-to-run serving systems and a router.
func New(systems []sched.System, router Router) (*Cluster, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("cluster: no replicas")
	}
	if router == nil {
		return nil, fmt.Errorf("cluster: router required")
	}
	c := &Cluster{router: router}
	for i, sys := range systems {
		if sys == nil {
			return nil, fmt.Errorf("cluster: replica %d is nil", i)
		}
		c.replicas = append(c.replicas, &Replica{id: i, sys: sys})
	}
	return c, nil
}

// Replicas returns the cluster's replicas in ID order.
func (c *Cluster) Replicas() []*Replica { return c.replicas }

// Size returns the number of replicas.
func (c *Cluster) Size() int { return len(c.replicas) }

// Name identifies the cluster configuration in reports.
func (c *Cluster) Name() string {
	return fmt.Sprintf("%s x%d [%s]", c.replicas[0].sys.Name(), len(c.replicas), c.router.Name())
}

// Options bounds a cluster run.
type Options struct {
	// MaxSimTime aborts runs when any replica's clock exceeds this (0: 24h).
	MaxSimTime float64
	// MaxIterations aborts runaway runs; it counts iterations summed across
	// replicas (0: 50 million).
	MaxIterations int
}

// ReplicaResult reports one replica's share of a completed run.
type ReplicaResult struct {
	// Summary covers the requests routed to this replica.
	Summary *metrics.Summary
	// Iterations is the replica's scheduling-iteration count.
	Iterations int
	// EndTime is the replica's final local clock.
	EndTime float64
}

// Result reports a completed cluster run.
type Result struct {
	// Summary is the cluster-aggregate plus per-replica metric summaries.
	Summary *metrics.ClusterSummary
	// PerReplica holds per-replica simulation results in ID order.
	PerReplica []ReplicaResult
	// Iterations is the total iteration count across replicas.
	Iterations int
	// EndTime is the simulated completion time of the last request on any
	// replica.
	EndTime float64
}

// Run drives the cluster over the request trace until every request is done.
// Arrivals are routed in (arrival time, ID) order; each routed request is
// enqueued on exactly one replica and stays there (no migration).
func (c *Cluster) Run(reqs []*request.Request, opts Options) (*Result, error) {
	if opts.MaxSimTime == 0 {
		opts.MaxSimTime = 24 * 3600
	}
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 50_000_000
	}
	ordered, err := request.OrderForReplay(reqs)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	next := 0
	for {
		// The next replica to act is the busy one with the smallest clock
		// (lowest ID on ties). Arrivals at or before that clock are routed
		// first, so every routing decision sees all replicas advanced past
		// the arrival instant.
		busy := -1
		for i, rep := range c.replicas {
			if rep.hasWork() && (busy < 0 || rep.clock < c.replicas[busy].clock) {
				busy = i
			}
		}
		if next < len(ordered) && (busy < 0 || ordered[next].ArrivalTime <= c.replicas[busy].clock) {
			r := ordered[next]
			idx := c.router.Route(r, c.replicas)
			if idx < 0 || idx >= len(c.replicas) {
				return nil, fmt.Errorf("cluster: router %s picked replica %d of %d",
					c.router.Name(), idx, len(c.replicas))
			}
			rep := c.replicas[idx]
			if rep.clock < r.ArrivalTime {
				rep.clock = r.ArrivalTime
			}
			rep.sys.Pool().Enqueue(r)
			rep.routed = append(rep.routed, r)
			next++
			continue
		}
		if busy < 0 {
			break // every request routed and retired
		}
		rep := c.replicas[busy]
		st := rep.sys.Iterate(rep.clock)
		if st.Idle {
			// The Iterate call may have just retired the replica's final
			// requests; the top of the loop re-checks emptiness. A replica
			// stuck with unrunnable work parks at the next arrival (which
			// may or may not be routed to it); with no arrivals left it can
			// never progress: a genuine deadlock.
			if !rep.hasWork() {
				continue
			}
			if next < len(ordered) {
				if t := ordered[next].ArrivalTime; rep.clock < t {
					rep.clock = t
				}
				continue
			}
			p := rep.sys.Pool()
			return nil, fmt.Errorf("cluster: replica %d (%s) deadlocked at t=%.3fs with %d waiting / %d running",
				rep.id, rep.sys.Name(), rep.clock, p.NumWaiting(), p.NumRunning())
		}
		if st.Elapsed <= 0 {
			return nil, fmt.Errorf("cluster: replica %d (%s) reported non-positive elapsed %g",
				rep.id, rep.sys.Name(), st.Elapsed)
		}
		rep.clock += st.Elapsed
		rep.iterations++
		res.Iterations++
		rep.breakdown.Scheduling += st.SchedCPU
		rep.breakdown.Speculation += st.SpecTime
		rep.breakdown.Verification += st.VerifyTime
		rep.breakdown.Prefill += st.PrefillTime
		if rep.clock > opts.MaxSimTime {
			return nil, fmt.Errorf("cluster: replica %d (%s) exceeded max simulated time %.0fs",
				rep.id, rep.sys.Name(), opts.MaxSimTime)
		}
		if res.Iterations > opts.MaxIterations {
			return nil, fmt.Errorf("cluster: exceeded max iterations %d", opts.MaxIterations)
		}
	}

	var total metrics.Breakdown
	var perReplica []*metrics.Summary
	for _, rep := range c.replicas {
		total.Add(rep.breakdown)
		sum := metrics.Summarize(fmt.Sprintf("replica %d", rep.id), rep.routed, rep.breakdown)
		perReplica = append(perReplica, sum)
		res.PerReplica = append(res.PerReplica, ReplicaResult{
			Summary:    sum,
			Iterations: rep.iterations,
			EndTime:    rep.clock,
		})
		if rep.clock > res.EndTime {
			res.EndTime = rep.clock
		}
	}
	res.Summary = &metrics.ClusterSummary{
		Aggregate: metrics.Summarize(c.Name(), reqs, total),
		Replicas:  perReplica,
	}
	return res, nil
}
