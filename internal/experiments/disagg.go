package experiments

import (
	"fmt"
	"strings"

	"adaserve/internal/cluster"
	"adaserve/internal/gpu"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sched"
	"adaserve/internal/workload"
)

// DisaggLink is the interconnect pricing the prefill-to-decode KV handoff in
// the disaggregation experiment: a cross-node RDMA fabric, the link real
// disaggregated deployments migrate KV over.
var DisaggLink = gpu.RDMA400

// DisaggSplits are the four-replica fleet layouts the disaggregation
// experiment compares at equal aggregate load: the colocated baseline
// against every prefill/decode partition of the same four replicas.
func DisaggSplits() []string { return []string{"colocated", "1P3D", "2P2D", "3P1D"} }

// DisaggMix tags a workload mix swept by the disaggregation experiment.
type DisaggMix struct {
	Name string
	Mix  workload.Mix
}

// DisaggMixes returns the SLO mixes of the disaggregation sweep: the default
// 60/20/20 interactive-heavy mix, and a summarization-heavy mix whose long
// prompts are where prefill interference hurts colocated replicas most.
func DisaggMixes() []DisaggMix {
	return []DisaggMix{
		{Name: "default", Mix: workload.DefaultMix},
		{Name: "summ-heavy", Mix: workload.Mix{0.2, 0.2, 0.6}},
	}
}

// BuildDisagg assembles a role-split cluster of the given system kind: one
// replica per role, each with its own engine, KV cache and pool, admission
// mode matching its role, and per-replica engine randomness derived from the
// base seed exactly as BuildCluster derives it — so replica i's verification
// outcomes do not depend on the fleet layout around it.
func BuildDisagg(kind SystemKind, setup ModelSetup, roles []cluster.Role, routerName string, opts BuildOptions) (*cluster.Cluster, error) {
	if len(roles) == 0 {
		return nil, fmt.Errorf("experiments: no roles")
	}
	router, err := cluster.NewRouter(routerName)
	if err != nil {
		return nil, err
	}
	systems := make([]sched.System, len(roles))
	for i, role := range roles {
		o := opts
		o.Seed = mathutil.Hash2(opts.Seed, 0xc1a0+uint64(i))
		o.Mode = role.Mode()
		sys, err := Build(kind, setup, o)
		if err != nil {
			return nil, fmt.Errorf("experiments: replica %d: %w", i, err)
		}
		systems[i] = sys
	}
	transfer := gpu.KVTransfer{Model: setup.Target, Link: DisaggLink}
	return cluster.NewWithRoles(systems, roles, router, transfer)
}

// DisaggPoint is one (split, router, mix) cell of the disaggregation
// experiment.
type DisaggPoint struct {
	Split  string
	Router string
	Mix    string
	Sum    *metrics.ClusterSummary
}

// DisaggAggregateRPS returns the experiment's fixed aggregate offered load:
// four replicas' worth of the replica-scaling experiment's per-replica rate,
// so every split — colocated or partitioned — faces the identical trace.
func DisaggAggregateRPS(setup ModelSetup) float64 {
	return 4 * ClusterPerReplicaRPS(setup)
}

// Disaggregation runs the prefill/decode-disaggregation experiment: an
// AdaServe fleet of four replicas, colocated vs every P/D partition, under
// each router policy and SLO mix, at equal aggregate load. All cells of one
// mix replay the identical trace, so differences are pure fleet-layout and
// routing effects.
func Disaggregation(setup ModelSetup, opts RunOptions) ([]DisaggPoint, error) {
	opts.fill()
	rps := DisaggAggregateRPS(setup)
	type disaggCell struct {
		split  string
		router string
		mix    string
		reqs   []*request.Request
	}
	var cells []disaggCell
	for _, mix := range DisaggMixes() {
		reqs, err := mixedTrace(setup, mix.Mix, 1.0, rps, opts.Duration, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, split := range DisaggSplits() {
			for _, routerName := range cluster.RouterNames() {
				cells = append(cells, disaggCell{split: split, router: routerName, mix: mix.Name, reqs: reqs})
			}
		}
	}
	sums, err := runJobs(opts.Parallel, len(cells), func(i int) (*metrics.ClusterSummary, error) {
		c := cells[i]
		var cl *cluster.Cluster
		var err error
		if c.split == "colocated" {
			cl, err = BuildCluster(SysAdaServe, setup, 4, c.router, BuildOptions{Seed: opts.Seed})
		} else {
			var roles []cluster.Role
			roles, err = cluster.ParseSplit(c.split)
			if err == nil {
				cl, err = BuildDisagg(SysAdaServe, setup, roles, c.router, BuildOptions{Seed: opts.Seed})
			}
		}
		if err != nil {
			return nil, err
		}
		res, err := cl.Run(request.CloneAll(c.reqs), cluster.Options{})
		if err != nil {
			return nil, fmt.Errorf("disagg %s router=%s mix=%s: %w", c.split, c.router, c.mix, err)
		}
		return res.Summary, nil
	})
	if err != nil {
		return nil, err
	}
	pts := make([]DisaggPoint, len(cells))
	for i, c := range cells {
		pts[i] = DisaggPoint{Split: c.split, Router: c.router, Mix: c.mix, Sum: sums[i]}
	}
	return pts, nil
}

// RenderDisagg formats the disaggregation experiment as aligned tables per
// mix: TTFT attainment, TPOT attainment, goodput and mean KV-transfer
// latency, one row per fleet split and one column per router.
func RenderDisagg(pts []DisaggPoint) string {
	mixes := make([]string, 0)
	seenM := map[string]bool{}
	routers := make([]string, 0)
	seenR := map[string]bool{}
	splits := make([]string, 0)
	seenS := map[string]bool{}
	for _, p := range pts {
		if !seenM[p.Mix] {
			seenM[p.Mix] = true
			mixes = append(mixes, p.Mix)
		}
		if !seenR[p.Router] {
			seenR[p.Router] = true
			routers = append(routers, p.Router)
		}
		if !seenS[p.Split] {
			seenS[p.Split] = true
			splits = append(splits, p.Split)
		}
	}
	cell := func(mix, split, router string, f func(*metrics.ClusterSummary) float64) string {
		for _, p := range pts {
			if p.Mix == mix && p.Split == split && p.Router == router {
				return fmt.Sprintf("%.2f", f(p.Sum))
			}
		}
		return ""
	}
	var b strings.Builder
	for _, mix := range mixes {
		fmt.Fprintf(&b, "== mix %s ==\n", mix)
		for _, m := range []struct {
			name string
			f    func(*metrics.ClusterSummary) float64
		}{
			{"TTFT attainment %", func(s *metrics.ClusterSummary) float64 { return 100 * s.TTFTAttainment() }},
			{"TPOT attainment %", func(s *metrics.ClusterSummary) float64 { return 100 * s.Attainment() }},
			{"goodput tok/s", func(s *metrics.ClusterSummary) float64 { return s.Goodput() }},
			{"KV transfer mean ms", func(s *metrics.ClusterSummary) float64 { return 1e3 * s.Transfer.MeanLatency() }},
		} {
			fmt.Fprintf(&b, "%-10s", "split")
			for _, r := range routers {
				fmt.Fprintf(&b, "%16s", r)
			}
			fmt.Fprintf(&b, "   [%s]\n", m.name)
			for _, s := range splits {
				fmt.Fprintf(&b, "%-10s", s)
				for _, r := range routers {
					fmt.Fprintf(&b, "%16s", cell(mix, s, r, m.f))
				}
				b.WriteString("\n")
			}
			b.WriteString("\n")
		}
	}
	return strings.TrimSuffix(b.String(), "\n")
}
