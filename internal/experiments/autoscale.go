package experiments

import (
	"fmt"
	"strings"

	"adaserve/internal/autoscale"
	"adaserve/internal/cluster"
	"adaserve/internal/gpu"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/sched"
	"adaserve/internal/serve"
	"adaserve/internal/workload"
)

// AutoscaleFleet is the autoscaling experiment's capacity fleet: the static
// baseline runs this many replicas the whole time; elastic configurations
// may scale within it.
const AutoscaleFleet = 4

// AutoscaleProfiles are the arrival shapes of the autoscaling sweep: the
// two time-varying loads where a fixed fleet wastes the most capacity.
func AutoscaleProfiles() []string { return []string{"spike", "diurnal"} }

// AutoscaleConfigs are the fleet-sizing configurations under comparison:
// the equal-peak static fleet plus every built-in scaling policy.
func AutoscaleConfigs() []string {
	return append([]string{"static"}, autoscale.PolicyNames()...)
}

// AutoscaleMeanRPS sizes the experiment's offered load: the profile's peak
// rate equals the capacity fleet running at the replica-scaling experiment's
// contended-but-serviceable per-replica operating point — i.e. the static
// fleet is exactly peak-provisioned, the deployment a peak-capacity planner
// would run.
func AutoscaleMeanRPS(setup ModelSetup, profile string) (float64, error) {
	peak, err := workload.RateProfilePeakFactor(profile)
	if err != nil {
		return 0, err
	}
	return AutoscaleFleet * ClusterPerReplicaRPS(setup) / peak, nil
}

// Autoscale control-loop timing, derived from the run duration so short
// test runs and full-length sweeps keep the same proportions: decisions
// every 1/30th of the run, a cold start of 1/20th (model load + KV
// allocation), rolling windows of 1/8th.
func AutoscaleInterval(duration float64) float64  { return duration / 30 }
func AutoscaleColdStart(duration float64) float64 { return duration / 20 }
func AutoscaleWindow(duration float64) float64    { return duration / 8 }

// elasticTransfer is the KV-handoff model elastic clusters price drain
// migrations (and disaggregated prefill-to-decode handoffs) over.
func elasticTransfer(setup ModelSetup) gpu.KVTransfer {
	return gpu.KVTransfer{Model: setup.Target, Link: DisaggLink}
}

// BuildElasticCluster assembles an n-replica colocated capacity fleet whose
// replica lifecycle an autoscale controller drives. Per-replica engine
// seeding matches BuildCluster exactly, so replica i behaves identically
// whether the fleet around it is static or elastic.
func BuildElasticCluster(kind SystemKind, setup ModelSetup, n int, routerName string,
	eopts cluster.ElasticOptions, opts BuildOptions) (*cluster.Cluster, error) {
	return BuildElasticDisagg(kind, setup, make([]cluster.Role, n), routerName, eopts, opts)
}

// BuildElasticDisagg assembles an elastic role-split capacity fleet: each
// replica's admission mode matches its role, and the autoscale controller
// scales the prefill and decode pools independently under a shared budget.
func BuildElasticDisagg(kind SystemKind, setup ModelSetup, roles []cluster.Role, routerName string,
	eopts cluster.ElasticOptions, opts BuildOptions) (*cluster.Cluster, error) {
	if len(roles) == 0 {
		return nil, fmt.Errorf("experiments: no roles")
	}
	router, err := cluster.NewRouter(routerName)
	if err != nil {
		return nil, err
	}
	systems := make([]sched.System, len(roles))
	for i, role := range roles {
		o := opts
		o.Seed = mathutil.Hash2(opts.Seed, 0xc1a0+uint64(i))
		o.Mode = role.Mode()
		sys, err := Build(kind, setup, o)
		if err != nil {
			return nil, fmt.Errorf("experiments: replica %d: %w", i, err)
		}
		systems[i] = sys
	}
	return cluster.NewElastic(systems, roles, router, elasticTransfer(setup), eopts)
}

// AutoscalePoint is one (config, profile, router) cell of the autoscaling
// experiment. Sum.Autoscale carries the cost-efficiency headline
// (goodput per replica-second) every configuration is compared on.
type AutoscalePoint struct {
	Config  string // "static" or a policy name
	Profile string
	Router  string
	Sum     *metrics.ClusterSummary
}

// Autoscaling runs the elastic-fleet experiment: the equal-peak static
// cluster against every scaling policy, under the spike and diurnal arrival
// profiles and each router, at identical offered load (every cell of one
// profile consumes the identical open-loop arrival stream). The comparison
// metric is goodput per replica-second: a static fleet holds peak capacity
// through the troughs, an autoscaled fleet gives it back.
func Autoscaling(setup ModelSetup, opts RunOptions) ([]AutoscalePoint, error) {
	opts.fill()
	type autoscaleCell struct {
		config  string
		profile string
		router  string
	}
	var cells []autoscaleCell
	for _, profile := range AutoscaleProfiles() {
		for _, config := range AutoscaleConfigs() {
			for _, routerName := range cluster.RouterNames() {
				cells = append(cells, autoscaleCell{config: config, profile: profile, router: routerName})
			}
		}
	}
	sums, err := runJobs(opts.Parallel, len(cells), func(i int) (*metrics.ClusterSummary, error) {
		c := cells[i]
		sum, err := AutoscaleCell(setup, c.config, c.profile, c.router, opts)
		if err != nil {
			return nil, fmt.Errorf("autoscale %s profile=%s router=%s: %w", c.config, c.profile, c.router, err)
		}
		return sum, nil
	})
	if err != nil {
		return nil, err
	}
	pts := make([]AutoscalePoint, len(cells))
	for i, c := range cells {
		pts[i] = AutoscalePoint{Config: c.config, Profile: c.profile, Router: c.router, Sum: sums[i]}
	}
	return pts, nil
}

// AutoscaleCell replays one configuration over the profile's open-loop
// arrival stream. The workload generator and thinning RNG are seeded
// identically across cells (matching adaserve-sim's open-loop seeding), so
// every cell of one profile faces the same requests at the same instants.
func AutoscaleCell(setup ModelSetup, config, profile, routerName string, opts RunOptions) (*metrics.ClusterSummary, error) {
	mean, err := AutoscaleMeanRPS(setup, profile)
	if err != nil {
		return nil, err
	}
	rate, maxRate, err := workload.RateProfile(profile, mean, opts.Duration)
	if err != nil {
		return nil, err
	}
	gen, err := NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(opts.Seed, 0x51e))
	if err != nil {
		return nil, err
	}
	src, err := serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(opts.Seed, 0x7a)), rate, maxRate, opts.Duration)
	if err != nil {
		return nil, err
	}

	var cl *cluster.Cluster
	srvOpts := serve.Options{}
	if config == "static" {
		cl, err = BuildCluster(SysAdaServe, setup, AutoscaleFleet, routerName, BuildOptions{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
	} else {
		cl, err = BuildElasticCluster(SysAdaServe, setup, AutoscaleFleet, routerName,
			cluster.ElasticOptions{ColdStart: AutoscaleColdStart(opts.Duration), InitialActive: 1},
			BuildOptions{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		policy, err := autoscale.NewPolicy(config)
		if err != nil {
			return nil, err
		}
		ctrl, err := autoscale.New(cl, policy, autoscale.Options{
			Interval: AutoscaleInterval(opts.Duration),
			Window:   AutoscaleWindow(opts.Duration),
		})
		if err != nil {
			return nil, err
		}
		srvOpts.Autoscaler = ctrl
	}
	srv, err := serve.NewServer(cl, srvOpts)
	if err != nil {
		return nil, err
	}
	rr, err := srv.Run(src)
	if err != nil {
		return nil, err
	}
	res := cl.Results(rr, nil)
	res.Summary.Autoscale.Policy = config
	return res.Summary, nil
}

// RenderAutoscale formats the autoscaling experiment as aligned tables per
// profile — goodput per replica-second (the headline), attainment,
// replica-seconds consumed, and scale events — one row per configuration
// and one column per router.
func RenderAutoscale(pts []AutoscalePoint) string {
	profiles := make([]string, 0)
	seenP := map[string]bool{}
	routers := make([]string, 0)
	seenR := map[string]bool{}
	configs := make([]string, 0)
	seenC := map[string]bool{}
	for _, p := range pts {
		if !seenP[p.Profile] {
			seenP[p.Profile] = true
			profiles = append(profiles, p.Profile)
		}
		if !seenR[p.Router] {
			seenR[p.Router] = true
			routers = append(routers, p.Router)
		}
		if !seenC[p.Config] {
			seenC[p.Config] = true
			configs = append(configs, p.Config)
		}
	}
	cell := func(profile, config, router string, f func(*metrics.ClusterSummary) float64) string {
		for _, p := range pts {
			if p.Profile == profile && p.Config == config && p.Router == router {
				return fmt.Sprintf("%.2f", f(p.Sum))
			}
		}
		return ""
	}
	var b strings.Builder
	for _, profile := range profiles {
		fmt.Fprintf(&b, "== profile %s ==\n", profile)
		for _, m := range []struct {
			name string
			f    func(*metrics.ClusterSummary) float64
		}{
			{"goodput / replica-second", func(s *metrics.ClusterSummary) float64 { return s.Autoscale.GoodputPerReplicaSecond() }},
			{"attainment %", func(s *metrics.ClusterSummary) float64 { return 100 * s.Attainment() }},
			{"replica-seconds", func(s *metrics.ClusterSummary) float64 { return s.Autoscale.ReplicaSeconds }},
			{"scale events (up+down)", func(s *metrics.ClusterSummary) float64 {
				return float64(s.Autoscale.ScaleUps + s.Autoscale.ScaleDowns)
			}},
		} {
			fmt.Fprintf(&b, "%-14s", "config")
			for _, r := range routers {
				fmt.Fprintf(&b, "%16s", r)
			}
			fmt.Fprintf(&b, "   [%s]\n", m.name)
			for _, cfg := range configs {
				fmt.Fprintf(&b, "%-14s", cfg)
				for _, r := range routers {
					fmt.Fprintf(&b, "%16s", cell(profile, cfg, r, m.f))
				}
				b.WriteString("\n")
			}
			b.WriteString("\n")
		}
	}
	return strings.TrimSuffix(b.String(), "\n")
}
