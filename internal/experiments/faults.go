package experiments

import (
	"fmt"
	"strings"

	"adaserve/internal/autoscale"
	"adaserve/internal/cluster"
	"adaserve/internal/faults"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/serve"
	"adaserve/internal/workload"
)

// FaultFleet is the chaos experiment's capacity fleet for the crash and
// straggler scenarios: an elastic colocated AdaServe deployment sized so
// that losing one replica hurts but recovery has somewhere to send work.
const FaultFleet = 4

// FaultInitialActive is the fleet's steady-state size; the spare capacity
// replica is what autoscale-driven replacement provisions into after a
// crash.
const FaultInitialActive = 3

// FaultRouter fronts every chaos cell; held fixed so cells differ only in
// the fault schedule and recovery mode.
const FaultRouter = "slo-aware"

// FaultScenarios are the failure shapes of the chaos sweep: a replica crash
// with repair, a slowed-but-alive straggler, and a lossy/degraded KV-transfer
// link on a disaggregated fleet.
func FaultScenarios() []string { return []string{"crash", "straggler", "link"} }

// FaultRecoveries are the recovery modes under comparison.
func FaultRecoveries() []string { return []string{"none", "retry", "retry+hedge"} }

// FaultSpec returns the pinned fault schedule for a scenario, scaled to the
// run duration so short CI runs and long sweeps keep the same proportions:
//
//	crash     — replica 0 dies a quarter into the run, repaired after D/6
//	            (requests frozen there are lost unless recovery re-dispatches).
//	straggler — replica 0 runs 6x slow for the middle half of the run: alive,
//	            so timeout detection never fires — only hedging helps.
//	link      — the KV-transfer fabric drops half of all migrations and slows
//	            the survivors 3x for the middle half of the run.
func FaultSpec(scenario string, duration float64) (faults.Spec, error) {
	var raw string
	switch scenario {
	case "crash":
		raw = fmt.Sprintf("crash@%g+%g:r0", duration/4, duration/6)
	case "straggler":
		raw = fmt.Sprintf("slow@%g+%g:r0:x6", duration/4, duration/2)
	case "link":
		raw = fmt.Sprintf("link@%g+%g:p0.5:x3", duration/4, duration/2)
	default:
		return faults.Spec{}, fmt.Errorf("experiments: unknown fault scenario %q (want one of %s)",
			scenario, strings.Join(FaultScenarios(), ", "))
	}
	return faults.ParseSpec(raw)
}

// FaultPoint is one (scenario, recovery) cell of the chaos sweep.
type FaultPoint struct {
	Scenario string
	Recovery string
	Sum      *metrics.ClusterSummary
}

// FaultLoadFactor scales each scenario's offered load against the steady
// fleet's capacity, because the two recovery mechanisms are meaningful in
// different operating regimes. Failover is judged at the contended
// operating point (factor 1): a crash there genuinely backs work up, and
// retry's re-dispatch is what wins it back. Hedging is judged with
// provisioned headroom (factor 0.9): duplicates race in the survivors'
// slack, exactly the regime tail-tolerant hedging is designed for — a
// fleet pinned at saturation would convert every duplicate into queueing
// delay for healthy traffic. Custom schedules get the headroom factor so
// both mechanisms have room to act.
func FaultLoadFactor(scenario string) float64 {
	if scenario == "straggler" || scenario == "custom" {
		return 0.9
	}
	return 1.0
}

// FaultMeanRPS is the chaos sweep's offered load for one scenario.
func FaultMeanRPS(setup ModelSetup, scenario string) float64 {
	return FaultLoadFactor(scenario) * FaultInitialActive * ClusterPerReplicaRPS(setup)
}

// Faults runs the chaos sweep: every failure scenario crossed with every
// recovery mode, each cell replaying the identical arrival stream against the
// identical fault schedule — only the recovery response differs. The headline
// comparisons: under a crash, retry+failover recovers the goodput and
// attainment that no-recovery forfeits to lost requests; under a straggler,
// hedged re-dispatch bounds the worst-case TTFT that retry alone (which never
// triggers — the replica is alive) cannot touch.
func Faults(setup ModelSetup, opts RunOptions) ([]FaultPoint, error) {
	opts.fill()
	type faultCell struct {
		scenario string
		recovery string
	}
	var cells []faultCell
	for _, scenario := range FaultScenarios() {
		for _, recovery := range FaultRecoveries() {
			cells = append(cells, faultCell{scenario: scenario, recovery: recovery})
		}
	}
	sums, err := runJobs(opts.Parallel, len(cells), func(i int) (*metrics.ClusterSummary, error) {
		c := cells[i]
		sum, err := FaultCell(setup, c.scenario, c.recovery, opts)
		if err != nil {
			return nil, fmt.Errorf("faults %s recovery=%s: %w", c.scenario, c.recovery, err)
		}
		return sum, nil
	})
	if err != nil {
		return nil, err
	}
	pts := make([]FaultPoint, len(cells))
	for i, c := range cells {
		pts[i] = FaultPoint{Scenario: c.scenario, Recovery: c.recovery, Sum: sums[i]}
	}
	return pts, nil
}

// FaultsWithSpec runs the recovery-mode comparison on a caller-supplied
// schedule (adaserve-bench's -faults override): every recovery mode replays
// the custom spec as one "custom" scenario on the chaos sweep's elastic
// fleet.
func FaultsWithSpec(setup ModelSetup, spec faults.Spec, opts RunOptions) ([]FaultPoint, error) {
	opts.fill()
	recoveries := FaultRecoveries()
	sums, err := runJobs(opts.Parallel, len(recoveries), func(i int) (*metrics.ClusterSummary, error) {
		sum, err := faultRun(setup, spec, "custom", recoveries[i], opts)
		if err != nil {
			return nil, fmt.Errorf("faults custom recovery=%s: %w", recoveries[i], err)
		}
		return sum, nil
	})
	if err != nil {
		return nil, err
	}
	pts := make([]FaultPoint, len(recoveries))
	for i, recovery := range recoveries {
		pts[i] = FaultPoint{Scenario: "custom", Recovery: recovery, Sum: sums[i]}
	}
	return pts, nil
}

// FaultCell replays one (scenario, recovery) chaos cell. Crash and straggler
// run on the elastic colocated fleet (so a crash also exercises
// autoscale-driven replacement); the link scenario runs on a static 2P2D
// disaggregated fleet where every finished request crossed the faulted
// fabric. Workload seeding is shared across a scenario's cells, so every
// recovery mode faces the same requests at the same instants.
func FaultCell(setup ModelSetup, scenario, recovery string, opts RunOptions) (*metrics.ClusterSummary, error) {
	spec, err := FaultSpec(scenario, opts.Duration)
	if err != nil {
		return nil, err
	}
	return faultRun(setup, spec, scenario, recovery, opts)
}

// faultRun is the shared cell body: build the fleet (elastic colocated, or
// static 2P2D disagg for the link scenario), arm the injector, replay the
// scenario-independent arrival stream at the scenario's operating point.
func faultRun(setup ModelSetup, spec faults.Spec, scenario, recovery string, opts RunOptions) (*metrics.ClusterSummary, error) {
	rec, err := faults.ParseRecovery(recovery)
	if err != nil {
		return nil, err
	}

	var cl *cluster.Cluster
	srvOpts := serve.Options{}
	if scenario == "link" {
		roles, err := cluster.ParseSplit("2P2D")
		if err != nil {
			return nil, err
		}
		cl, err = BuildDisagg(SysAdaServe, setup, roles, FaultRouter, BuildOptions{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
	} else {
		cl, err = BuildElasticCluster(SysAdaServe, setup, FaultFleet, FaultRouter,
			cluster.ElasticOptions{ColdStart: AutoscaleColdStart(opts.Duration), InitialActive: FaultInitialActive},
			BuildOptions{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		policy, err := autoscale.NewPolicy("rate-prop")
		if err != nil {
			return nil, err
		}
		ctrl, err := autoscale.New(cl, policy, autoscale.Options{
			Interval: AutoscaleInterval(opts.Duration),
			Window:   AutoscaleWindow(opts.Duration),
		})
		if err != nil {
			return nil, err
		}
		srvOpts.Autoscaler = ctrl
	}

	inj, err := faults.New(cl, spec, faults.Options{
		Seed:     opts.Seed,
		Horizon:  opts.Duration,
		Recovery: rec,
	})
	if err != nil {
		return nil, err
	}
	srvOpts.Faults = inj

	rate, maxRate, err := workload.RateProfile("constant", FaultMeanRPS(setup, scenario), opts.Duration)
	if err != nil {
		return nil, err
	}
	gen, err := NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(opts.Seed, 0xfa))
	if err != nil {
		return nil, err
	}
	src, err := serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(opts.Seed, 0x7a)), rate, maxRate, opts.Duration)
	if err != nil {
		return nil, err
	}

	srv, err := serve.NewServer(cl, srvOpts)
	if err != nil {
		return nil, err
	}
	rr, err := srv.Run(src)
	if err != nil {
		return nil, err
	}
	res := cl.Results(rr, nil)
	sum := inj.Summary(rr.EndTime)
	res.Summary.Faults = &sum
	return res.Summary, nil
}

// RenderFaults formats the chaos sweep as one aligned table per scenario: a
// row per recovery mode, a column per headline metric. Goodput and attainment
// count lost-and-never-recovered requests as violations, so the recovery rows
// show directly what re-dispatch buys back; maxTTFT is the tail hedging
// exists to bound.
func RenderFaults(pts []FaultPoint) string {
	scenarios := make([]string, 0)
	seenS := map[string]bool{}
	recoveries := make([]string, 0)
	seenR := map[string]bool{}
	for _, p := range pts {
		if !seenS[p.Scenario] {
			seenS[p.Scenario] = true
			scenarios = append(scenarios, p.Scenario)
		}
		if !seenR[p.Recovery] {
			seenR[p.Recovery] = true
			recoveries = append(recoveries, p.Recovery)
		}
	}
	cols := []struct {
		name string
		f    func(*metrics.ClusterSummary) float64
	}{
		{"goodput", func(s *metrics.ClusterSummary) float64 { return s.Goodput() }},
		{"attain%", func(s *metrics.ClusterSummary) float64 { return 100 * s.Attainment() }},
		{"maxTTFT", func(s *metrics.ClusterSummary) float64 { return s.Aggregate.MaxTTFT }},
		{"p99TPOT", func(s *metrics.ClusterSummary) float64 { return s.Aggregate.P99TPOT() }},
		{"lost", func(s *metrics.ClusterSummary) float64 { return float64(s.Faults.LostRequests) }},
		{"retried", func(s *metrics.ClusterSummary) float64 { return float64(s.Faults.Retried) }},
		{"dropped", func(s *metrics.ClusterSummary) float64 { return float64(s.Faults.Dropped) }},
		{"hedged", func(s *metrics.ClusterSummary) float64 { return float64(s.Faults.Hedged) }},
		{"fallback", func(s *metrics.ClusterSummary) float64 { return float64(s.Faults.TransferFallbacks) }},
		{"MTTR", func(s *metrics.ClusterSummary) float64 { return s.Faults.MTTR }},
	}
	var b strings.Builder
	for _, scenario := range scenarios {
		spec := ""
		for _, p := range pts {
			if p.Scenario == scenario && p.Sum.Faults != nil {
				spec = p.Sum.Faults.Spec
				break
			}
		}
		fmt.Fprintf(&b, "== scenario %s (%s) ==\n", scenario, spec)
		fmt.Fprintf(&b, "%-14s", "recovery")
		for _, m := range cols {
			fmt.Fprintf(&b, "%10s", m.name)
		}
		b.WriteString("\n")
		for _, recovery := range recoveries {
			for _, p := range pts {
				if p.Scenario != scenario || p.Recovery != recovery {
					continue
				}
				fmt.Fprintf(&b, "%-14s", recovery)
				for _, m := range cols {
					fmt.Fprintf(&b, "%10.2f", m.f(p.Sum))
				}
				b.WriteString("\n")
			}
		}
		b.WriteString("\n")
	}
	return strings.TrimSuffix(b.String(), "\n")
}
