package experiments

import (
	"reflect"
	"testing"

	"adaserve/internal/adaptive"
	"adaserve/internal/mathutil"
	"adaserve/internal/serve"
	"adaserve/internal/workload"
)

// adaptiveOpts mirrors autoscaleOpts: long enough for the spike's burst to
// saturate the fleet and the controller to calibrate, short enough for CI.
func adaptiveOpts(parallel int) RunOptions {
	return RunOptions{Seed: 1, Duration: 24, Parallel: parallel}
}

// TestAdaptiveControlDeterministic is the flash-crowd sweep's determinism
// guarantee (identical at any worker count) and its reason to exist: the
// closed loop with admission must beat static AdaServe on goodput under the
// burst while bounding the worst-case TTFT the backlog would otherwise grow
// without limit.
func TestAdaptiveControlDeterministic(t *testing.T) {
	setup := Llama70B()
	seq, err := AdaptiveControl(setup, adaptiveOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := AdaptiveControl(setup, adaptiveOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("point count differs: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Config != par[i].Config || seq[i].Profile != par[i].Profile {
			t.Fatalf("point %d coordinates differ: %+v vs %+v", i, seq[i], par[i])
		}
		if !reflect.DeepEqual(seq[i].Sum, par[i].Sum) {
			t.Fatalf("point %d (%s/%s): summaries differ between -parallel 1 and 8",
				i, seq[i].Config, seq[i].Profile)
		}
	}
	t.Logf("\n%s", RenderAdaptive(seq))

	byConfig := map[string]*AdaptivePoint{}
	for i := range seq {
		if seq[i].Profile == "spike" {
			byConfig[seq[i].Config] = &seq[i]
		}
	}
	static, adm := byConfig["static"], byConfig["adaptive+admission"]
	if static == nil || adm == nil {
		t.Fatal("sweep missing static or adaptive+admission cell")
	}
	if static.Sum.Admission != nil {
		t.Error("static cell must not carry an admission summary")
	}
	if adm.Sum.Admission == nil {
		t.Fatal("adaptive+admission cell must carry an admission summary")
	}
	if got := adm.Sum.Admission; got.Degraded+got.Rejected == 0 {
		t.Errorf("the spike never tripped the gate: %+v", got)
	}
	if adm.Sum.Goodput() <= static.Sum.Goodput() {
		t.Errorf("adaptive+admission goodput %.1f did not beat static %.1f",
			adm.Sum.Goodput(), static.Sum.Goodput())
	}
	if adm.Sum.Aggregate.MaxTTFT >= static.Sum.Aggregate.MaxTTFT {
		t.Errorf("admission did not bound worst-case TTFT: %.2fs vs static %.2fs",
			adm.Sum.Aggregate.MaxTTFT, static.Sum.Aggregate.MaxTTFT)
	}
}

// TestAdmissionEventStream is the event-stream consistency contract for the
// gate: every RequestRejected/RequestDegraded fires exactly once per
// request, in dense seq order among all events, consistent with the
// terminal AdmissionSummary; rejected requests never reach a pool, and
// degraded requests never speculate again — every verification step after
// the degrade commits exactly one token.
func TestAdmissionEventStream(t *testing.T) {
	setup := Llama70B()
	opts := adaptiveOpts(1)
	opts.fill()
	rate, maxRate, err := workload.RateProfile("spike", AdaptiveMeanRPS(setup), opts.Duration)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(opts.Seed, 0xada))
	if err != nil {
		t.Fatal(err)
	}
	src, err := serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(opts.Seed, 0x7a)), rate, maxRate, opts.Duration)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := BuildCluster(SysAdaServe, setup, AdaptiveFleet, AdaptiveRouter, BuildOptions{Seed: opts.Seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := AdaptiveConfig("adaptive+admission", opts.Duration)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := adaptive.New(cl, *cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(cl, serve.Options{Adaptive: ctrl})
	if err != nil {
		t.Fatal(err)
	}

	lastSeq := -1
	rejected := map[int]int{}
	degraded := map[int]int{}
	admitted := map[int]int{}
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
		if ev.EventSeq() != lastSeq+1 {
			t.Fatalf("seq gap: %d after %d (%T)", ev.EventSeq(), lastSeq, ev)
		}
		lastSeq = ev.EventSeq()
		switch e := ev.(type) {
		case serve.RequestRejected:
			rejected[e.Req.ID]++
			if e.Reason == "" {
				t.Errorf("request %d rejected without a reason", e.Req.ID)
			}
		case serve.RequestDegraded:
			degraded[e.Req.ID]++
			if e.From != e.Req.DegradedFrom || e.To != e.Req.Category || !e.Req.NoSpec {
				t.Errorf("degrade event inconsistent with request state: %+v vs %+v", e, e.Req)
			}
			if e.Reason == "" {
				t.Errorf("request %d degraded without a reason", e.Req.ID)
			}
		case serve.RequestAdmitted:
			admitted[e.Req.ID]++
			if rejected[e.Req.ID] > 0 {
				t.Errorf("rejected request %d was dispatched anyway", e.Req.ID)
			}
		case serve.SLOViolated:
			if e.Kind == serve.ViolationTTFT && degraded[e.Req.ID] > 0 {
				t.Errorf("degraded request %d (waived TTFT) violated a TTFT SLO", e.Req.ID)
			}
		case serve.TokensCommitted:
			if degraded[e.Req.ID] > 0 && e.Tokens > 1 {
				t.Errorf("degraded request %d committed %d tokens in one step — it speculated",
					e.Req.ID, e.Tokens)
			}
		case serve.RequestFinished:
			if degraded[e.Req.ID] > 0 && e.Req.AcceptedTokens != e.Req.VerifySteps {
				t.Errorf("degraded request %d: %d tokens over %d steps — speculation gain without speculation",
					e.Req.ID, e.Req.AcceptedTokens, e.Req.VerifySteps)
			}
		}
	}))
	if _, err := srv.Run(src); err != nil {
		t.Fatal(err)
	}

	for id, n := range rejected {
		if n != 1 {
			t.Errorf("request %d rejected %d times", id, n)
		}
		if admitted[id] != 0 {
			t.Errorf("request %d both rejected and admitted", id)
		}
	}
	for id, n := range degraded {
		if n != 1 {
			t.Errorf("request %d degraded %d times", id, n)
		}
		if admitted[id] != 1 {
			t.Errorf("degraded request %d admitted %d times, want exactly 1", id, admitted[id])
		}
	}
	sum := ctrl.Summary()
	if sum.Rejected != len(rejected) || sum.Degraded != len(degraded) {
		t.Errorf("AdmissionSummary %d rejected / %d degraded, event stream saw %d / %d",
			sum.Rejected, sum.Degraded, len(rejected), len(degraded))
	}
	if sum.Offered != sum.Admitted+sum.Degraded+sum.Rejected {
		t.Errorf("AdmissionSummary does not partition the offered load: %+v", sum)
	}
	if got := sum.Admitted + sum.Degraded; got != len(admitted) {
		t.Errorf("%d admitted per summary, %d RequestAdmitted events", got, len(admitted))
	}
	if len(rejected) == 0 || len(degraded) == 0 {
		t.Fatalf("spike tripped neither gate action (%d rejected, %d degraded) — the test exercised nothing",
			len(rejected), len(degraded))
	}
}
