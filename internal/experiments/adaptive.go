package experiments

import (
	"fmt"
	"strings"

	"adaserve/internal/adaptive"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/serve"
	"adaserve/internal/workload"
)

// AdaptiveFleet is the flash-crowd experiment's fixed fleet: small enough
// that the burst genuinely saturates it, so the comparison isolates what the
// runtime controller buys when scaling out is not an option (or has not
// happened yet — the cold-start gap admission control covers).
const AdaptiveFleet = 2

// AdaptiveRouter fronts every configuration of the sweep; the router is held
// fixed so the cells differ only in the control loop.
const AdaptiveRouter = "slo-aware"

// AdaptiveProfiles are the arrival shapes of the flash-crowd sweep. The
// spike profile's burst (~5.6x the mean) is the overload the admission gate
// exists for.
func AdaptiveProfiles() []string { return []string{"spike"} }

// AdaptiveConfigs are the control configurations under comparison: the
// static AdaServe baseline, closed-loop speculation tuning alone, and tuning
// plus the overload admission gate.
func AdaptiveConfigs() []string { return []string{"static", "adaptive", "adaptive+admission"} }

// AdaptiveMeanRPS sizes the offered load: the mean sits at the fleet's
// contended-but-serviceable operating point, so the baseline phases are
// healthy and the burst pushes far past capacity.
func AdaptiveMeanRPS(setup ModelSetup) float64 {
	return AdaptiveFleet * ClusterPerReplicaRPS(setup)
}

// AdaptiveInterval is the controller's retune/calibration cadence: twice the
// autoscaler's decision rate, since retuning a scheduler parameter is free
// compared to provisioning a replica.
func AdaptiveInterval(duration float64) float64 { return duration / 60 }

// AdaptivePoint is one (config, profile) cell of the flash-crowd sweep.
type AdaptivePoint struct {
	Config  string
	Profile string
	Sum     *metrics.ClusterSummary
}

// AdaptiveControl runs the flash-crowd experiment: static AdaServe against
// the closed-loop controller (with and without admission) on an identical
// open-loop arrival stream per profile. The headline is goodput under
// overload with a bounded worst-case TTFT: tuning narrows the speculation
// envelope when acceptance drops, and the gate sheds load the fleet provably
// cannot serve instead of letting it poison every queued request behind it.
func AdaptiveControl(setup ModelSetup, opts RunOptions) ([]AdaptivePoint, error) {
	opts.fill()
	type adaptiveCell struct {
		config  string
		profile string
	}
	var cells []adaptiveCell
	for _, profile := range AdaptiveProfiles() {
		for _, config := range AdaptiveConfigs() {
			cells = append(cells, adaptiveCell{config: config, profile: profile})
		}
	}
	sums, err := runJobs(opts.Parallel, len(cells), func(i int) (*metrics.ClusterSummary, error) {
		c := cells[i]
		sum, err := AdaptiveCell(setup, c.config, c.profile, opts)
		if err != nil {
			return nil, fmt.Errorf("adaptive %s profile=%s: %w", c.config, c.profile, err)
		}
		return sum, nil
	})
	if err != nil {
		return nil, err
	}
	pts := make([]AdaptivePoint, len(cells))
	for i, c := range cells {
		pts[i] = AdaptivePoint{Config: c.config, Profile: c.profile, Sum: sums[i]}
	}
	return pts, nil
}

// AdaptiveConfig resolves one sweep configuration to a controller config
// (nil for the static baseline). Shared with adaserve-sim's flag wiring so
// the CLI's -adaptive/-admission run the exact cells the sweep pins.
func AdaptiveConfig(config string, duration float64) (*adaptive.Config, error) {
	switch config {
	case "static":
		return nil, nil
	case "adaptive":
		return &adaptive.Config{
			Interval:         AdaptiveInterval(duration),
			Window:           AutoscaleWindow(duration),
			DisableAdmission: true,
		}, nil
	case "adaptive+admission":
		return &adaptive.Config{
			Interval: AdaptiveInterval(duration),
			Window:   AutoscaleWindow(duration),
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown adaptive config %q (want one of %s)",
			config, strings.Join(AdaptiveConfigs(), ", "))
	}
}

// AdaptiveCell replays one configuration over the profile's open-loop
// arrival stream. Workload and thinning seeding are shared across the
// profile's cells, so every configuration faces the same requests at the
// same instants; what differs is only what the controller does about them.
func AdaptiveCell(setup ModelSetup, config, profile string, opts RunOptions) (*metrics.ClusterSummary, error) {
	rate, maxRate, err := workload.RateProfile(profile, AdaptiveMeanRPS(setup), opts.Duration)
	if err != nil {
		return nil, err
	}
	gen, err := NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(opts.Seed, 0xada))
	if err != nil {
		return nil, err
	}
	src, err := serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(opts.Seed, 0x7a)), rate, maxRate, opts.Duration)
	if err != nil {
		return nil, err
	}
	cl, err := BuildCluster(SysAdaServe, setup, AdaptiveFleet, AdaptiveRouter, BuildOptions{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	cfg, err := AdaptiveConfig(config, opts.Duration)
	if err != nil {
		return nil, err
	}
	srvOpts := serve.Options{}
	var ctrl *adaptive.Controller
	if cfg != nil {
		ctrl, err = adaptive.New(cl, *cfg)
		if err != nil {
			return nil, err
		}
		srvOpts.Adaptive = ctrl
	}
	srv, err := serve.NewServer(cl, srvOpts)
	if err != nil {
		return nil, err
	}
	rr, err := srv.Run(src)
	if err != nil {
		return nil, err
	}
	res := cl.Results(rr, nil)
	if ctrl != nil {
		sum := ctrl.Summary()
		res.Summary.Admission = &sum
	}
	return res.Summary, nil
}

// RenderAdaptive formats the flash-crowd sweep as one aligned table per
// profile: a row per configuration, a column per headline metric. Goodput
// counts only admitted requests (rejected ones never produce tokens), so the
// admission row trades a visible rejected count for goodput and tail bounds.
func RenderAdaptive(pts []AdaptivePoint) string {
	profiles := make([]string, 0)
	seenP := map[string]bool{}
	configs := make([]string, 0)
	seenC := map[string]bool{}
	for _, p := range pts {
		if !seenP[p.Profile] {
			seenP[p.Profile] = true
			profiles = append(profiles, p.Profile)
		}
		if !seenC[p.Config] {
			seenC[p.Config] = true
			configs = append(configs, p.Config)
		}
	}
	metricsCols := []struct {
		name string
		f    func(*metrics.ClusterSummary) float64
	}{
		{"goodput", func(s *metrics.ClusterSummary) float64 { return s.Goodput() }},
		{"attain%", func(s *metrics.ClusterSummary) float64 { return 100 * s.Attainment() }},
		{"maxTTFT", func(s *metrics.ClusterSummary) float64 { return s.Aggregate.MaxTTFT }},
		{"p50TPOT", func(s *metrics.ClusterSummary) float64 { return s.Aggregate.P50TPOT() }},
		{"p99TPOT", func(s *metrics.ClusterSummary) float64 { return s.Aggregate.P99TPOT() }},
		{"p999TPOT", func(s *metrics.ClusterSummary) float64 { return s.Aggregate.P999TPOT() }},
		{"maxTPOT", func(s *metrics.ClusterSummary) float64 { return s.Aggregate.MaxTPOT() }},
		{"degraded", func(s *metrics.ClusterSummary) float64 {
			if s.Admission == nil {
				return 0
			}
			return float64(s.Admission.Degraded)
		}},
		{"rejected", func(s *metrics.ClusterSummary) float64 {
			if s.Admission == nil {
				return 0
			}
			return float64(s.Admission.Rejected)
		}},
	}
	var b strings.Builder
	for _, profile := range profiles {
		fmt.Fprintf(&b, "== profile %s ==\n", profile)
		fmt.Fprintf(&b, "%-20s", "config")
		for _, m := range metricsCols {
			fmt.Fprintf(&b, "%12s", m.name)
		}
		b.WriteString("\n")
		for _, cfg := range configs {
			for _, p := range pts {
				if p.Profile != profile || p.Config != cfg {
					continue
				}
				fmt.Fprintf(&b, "%-20s", cfg)
				for _, m := range metricsCols {
					fmt.Fprintf(&b, "%12.2f", m.f(p.Sum))
				}
				b.WriteString("\n")
			}
		}
		b.WriteString("\n")
	}
	return strings.TrimSuffix(b.String(), "\n")
}
