package experiments

import (
	"fmt"
	"strings"

	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/serve"
	"adaserve/internal/workload"
)

// PrefixFleet is the prefix experiment's cluster size: three mixed replicas,
// the smallest fleet where routing genuinely fragments a tenant's KV (on one
// replica every router trivially hits the cache).
const PrefixFleet = 3

// PrefixHostTier sizes the experiment's host offload pool in KV blocks.
const PrefixHostTier = 2048

// Session-workload shape: enough tenants that every replica serves several
// concurrently, a system prompt long enough that skipping its prefill is
// material, and enough turns that the growing conversation history — which
// only the replica that served the previous turn holds — dominates prompt
// length by the end.
const (
	// PrefixTenants is exported for the CLI banner.
	PrefixTenants      = 12
	prefixSystemPrompt = 1024
	prefixTurns        = 6
	prefixThink        = 0.5
	prefixSpacing      = 0.25
)

// PrefixRouters are the routing policies the prefix experiment compares:
// the two load-signal baselines and the prefix-affinity policy under test
// (slo-aware is omitted — the session workload is single-category, where it
// degrades to least-loaded).
func PrefixRouters() []string { return []string{"round-robin", "least-loaded", "prefix-affinity"} }

// PrefixPoint is one (router, caching) cell of the prefix experiment.
type PrefixPoint struct {
	Router string
	// Cached is false for the prefix-disabled baseline rows.
	Cached bool
	Sum    *metrics.ClusterSummary
}

// NewSessions builds the experiment's session workload for a setup: the
// multi-tenant, multi-turn conversations every cell of the sweep replays
// (shared with adaserve-sim's -prefix wiring).
func NewSessions(setup ModelSetup, seed uint64) (*workload.Sessions, error) {
	return workload.NewSessions(workload.SessionsConfig{
		Seed:            mathutil.Hash2(seed, 0x5e5510),
		Tenants:         PrefixTenants,
		SystemPromptLen: prefixSystemPrompt,
		Turns:           prefixTurns,
		Category:        request.Chat,
		BaselineLatency: setup.BaselineLatency(),
		ArrivalSpacing:  prefixSpacing,
		ThinkTime:       prefixThink,
	})
}

// PrefixCell runs the session workload on one cluster configuration: a
// PrefixFleet-replica AdaServe cluster behind the named router, with
// shared-prefix caching (and the host tier) enabled unless cached is false.
// The run is closed-loop: each tenant's follow-up turn is submitted from the
// finish callback of the previous one, so arrivals react to serving speed
// exactly as a session-bound client would.
func PrefixCell(setup ModelSetup, routerName string, cached bool, opts RunOptions) (*metrics.ClusterSummary, error) {
	sessions, err := NewSessions(setup, opts.Seed)
	if err != nil {
		return nil, err
	}
	bopts := BuildOptions{Seed: opts.Seed}
	if cached {
		bopts.Prefix = true
		bopts.PrefixHostBlocks = PrefixHostTier
	}
	cl, err := BuildCluster(SysAdaServe, setup, PrefixFleet, routerName, bopts)
	if err != nil {
		return nil, err
	}
	srv, err := serve.NewServer(cl, serve.Options{})
	if err != nil {
		return nil, err
	}
	src := serve.NewSubmitSource()
	for _, r := range sessions.InitialRequests() {
		if err := src.Submit(r); err != nil {
			return nil, err
		}
	}
	var submitErr error
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
		e, ok := ev.(serve.RequestFinished)
		if !ok {
			return
		}
		if next := sessions.FollowUp(e.Req, e.Time); next != nil {
			if err := src.Submit(next); err != nil && submitErr == nil {
				submitErr = err
			}
		}
	}))
	rr, err := srv.Run(src)
	if err != nil {
		return nil, err
	}
	if submitErr != nil {
		return nil, submitErr
	}
	return cl.Results(rr, nil).Summary, nil
}

// PrefixCaching runs the prefix experiment: the session workload over every
// router with caching off (the baseline grid, where routers differ only in
// load balance) and on (where prefix-affinity routes turns back to their
// KV). The headline is TTFT attainment at equal load: with caching on, the
// affinity router serves follow-up prompts from cache and skips their
// prefill, which neither load-signal baseline can do once a tenant's blocks
// are fragmented across the fleet.
func PrefixCaching(setup ModelSetup, opts RunOptions) ([]PrefixPoint, error) {
	opts.fill()
	type prefixCell struct {
		router string
		cached bool
	}
	var cells []prefixCell
	for _, cached := range []bool{false, true} {
		for _, routerName := range PrefixRouters() {
			cells = append(cells, prefixCell{router: routerName, cached: cached})
		}
	}
	sums, err := runJobs(opts.Parallel, len(cells), func(i int) (*metrics.ClusterSummary, error) {
		c := cells[i]
		sum, err := PrefixCell(setup, c.router, c.cached, opts)
		if err != nil {
			return nil, fmt.Errorf("prefix router=%s cached=%v: %w", c.router, c.cached, err)
		}
		return sum, nil
	})
	if err != nil {
		return nil, err
	}
	pts := make([]PrefixPoint, len(cells))
	for i, c := range cells {
		pts[i] = PrefixPoint{Router: c.router, Cached: c.cached, Sum: sums[i]}
	}
	return pts, nil
}

// RenderPrefix formats the prefix experiment: one row per (caching, router)
// cell with the TTFT/TPOT attainment headline and the cache economics.
func RenderPrefix(pts []PrefixPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s%-10s%10s%10s%12s%10s%12s%10s%10s\n",
		"router", "prefix", "ttft%", "attain%", "goodput", "hit%", "savedTok", "evict", "reloads")
	for _, p := range pts {
		mode := "off"
		if p.Cached {
			mode = "on"
		}
		hitRate, saved, evict, reloads := 0.0, 0, 0, 0
		if p.Sum.Prefix != nil {
			hitRate = 100 * p.Sum.Prefix.HitRate()
			saved = p.Sum.Prefix.HitTokens
			evict = p.Sum.Prefix.Evictions
			reloads = p.Sum.Prefix.Reloads
		}
		fmt.Fprintf(&b, "%-18s%-10s%10.1f%10.1f%12.1f%10.1f%12d%10d%10d\n",
			p.Router, mode,
			100*p.Sum.TTFTAttainment(), 100*p.Sum.Attainment(), p.Sum.Goodput(),
			hitRate, saved, evict, reloads)
	}
	return strings.TrimSuffix(b.String(), "\n")
}
