package experiments

import (
	"fmt"
	"sort"
	"strings"

	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sim"
	"adaserve/internal/workload"
)

// RunOptions controls a whole experiment sweep.
type RunOptions struct {
	// Seed drives trace synthesis and engine randomness.
	Seed uint64
	// Duration is the trace length in seconds. The paper replays a 20-min
	// trace; the default here (180 s) keeps the full suite tractable while
	// preserving the load dynamics (documented in EXPERIMENTS.md).
	Duration float64
	// Systems defaults to EndToEndSystems.
	Systems []SystemKind
	// Parallel is the number of worker goroutines grid points fan out
	// across (each grid point is an independent deterministic simulation
	// with its own engines and RNGs). <= 1 runs sequentially; results are
	// identical and identically ordered either way.
	Parallel int
}

func (o *RunOptions) fill() {
	if o.Duration == 0 {
		o.Duration = 180
	}
	if o.Systems == nil {
		o.Systems = EndToEndSystems()
	}
	if o.Parallel <= 0 {
		o.Parallel = 1
	}
}

// Point is one (x, system) cell of a figure: the full metric summary for one
// run, tagged with the sweep coordinate.
type Point struct {
	System SystemKind
	X      float64
	Label  string
	Sum    *metrics.Summary
}

// runOne builds the system, replays the trace, and returns its summary.
func runOne(kind SystemKind, setup ModelSetup, reqs []*request.Request, seed uint64, build BuildOptions) (*metrics.Summary, error) {
	build.Seed = seed
	sys, err := Build(kind, setup, build)
	if err != nil {
		return nil, err
	}
	// Each system gets private request copies: runs must not share state.
	res, err := sim.Run(sys, request.CloneAll(reqs), sim.Options{})
	if err != nil {
		return nil, err
	}
	return res.Summary, nil
}

// mixedTrace synthesizes the default real-shape trace at meanRPS with the
// given mix and SLO scale.
func mixedTrace(setup ModelSetup, mix workload.Mix, sloScale, meanRPS, duration float64, seed uint64) ([]*request.Request, error) {
	gen, err := NewGenerator(setup, mix, sloScale, mathutil.Hash2(seed, 0x77a1))
	if err != nil {
		return nil, err
	}
	ts := workload.RealTrace(mathutil.NewRNG(mathutil.Hash2(seed, 0x7071)), meanRPS, duration)
	return gen.FromTimestamps(ts), nil
}

// RPSSweepsForSetup returns the paper's RPS sweep for a setup (Figure 8's
// x-axes: 2.6–4.8 for Llama-70B, 2.4–4.2 for Qwen-32B).
func RPSSweepsForSetup(setup ModelSetup) []float64 {
	if strings.Contains(setup.Name, "Qwen") {
		return []float64{2.4, 2.8, 3.2, 3.6, 4.0, 4.2}
	}
	return []float64{2.6, 3.0, 3.4, 3.8, 4.2, 4.6, 4.8}
}

// Figure8and9 sweeps request rate and reports SLO attainment (Fig. 8) and
// goodput (Fig. 9) for every system; Figure 12's mean-accepted-tokens series
// comes from the same runs.
func Figure8and9(setup ModelSetup, opts RunOptions) ([]Point, error) {
	opts.fill()
	var cells []cell
	for _, rps := range RPSSweepsForSetup(setup) {
		reqs, err := mixedTrace(setup, workload.DefaultMix, 1.0, rps, opts.Duration, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, kind := range opts.Systems {
			cells = append(cells, cell{kind: kind, reqs: reqs, x: rps, label: "rps"})
		}
	}
	pts, err := runCells(setup, opts, cells)
	if err != nil {
		return nil, fmt.Errorf("fig8/9: %w", err)
	}
	return pts, nil
}

// Figure10 fixes RPS at 4.0 and sweeps the urgent-request proportion
// (30–90%), reporting attainment and goodput.
func Figure10(setup ModelSetup, opts RunOptions) ([]Point, error) {
	opts.fill()
	var cells []cell
	for _, urgent := range []float64{0.3, 0.5, 0.7, 0.9} {
		reqs, err := mixedTrace(setup, workload.UrgentMix(urgent), 1.0, 4.0, opts.Duration, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, kind := range opts.Systems {
			cells = append(cells, cell{kind: kind, reqs: reqs, x: urgent, label: "urgent"})
		}
	}
	pts, err := runCells(setup, opts, cells)
	if err != nil {
		return nil, fmt.Errorf("fig10: %w", err)
	}
	return pts, nil
}

// Figure11 fixes RPS at 4.0 with 60% urgent requests and sweeps the SLO
// scale of the most urgent category from 1.6 down to 0.6.
func Figure11(setup ModelSetup, opts RunOptions) ([]Point, error) {
	opts.fill()
	var cells []cell
	for _, scale := range []float64{1.6, 1.4, 1.2, 1.0, 0.8, 0.6} {
		reqs, err := mixedTrace(setup, workload.UrgentMix(0.6), scale, 4.0, opts.Duration, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, kind := range opts.Systems {
			cells = append(cells, cell{kind: kind, reqs: reqs, x: scale, label: "slo-scale"})
		}
	}
	pts, err := runCells(setup, opts, cells)
	if err != nil {
		return nil, fmt.Errorf("fig11: %w", err)
	}
	return pts, nil
}

// Figure12Systems are the speculation systems whose acceptance Figure 12
// compares.
func Figure12Systems() []SystemKind {
	return []SystemKind{SysAdaServe, SysVLLMSpec4, SysVLLMSpec6, SysVLLMSpec8}
}

// Figure12 reports mean accepted tokens per request per verification step
// across the RPS sweep (reuses Figure 8's configuration, speculative
// systems only).
func Figure12(setup ModelSetup, opts RunOptions) ([]Point, error) {
	opts.fill()
	opts.Systems = Figure12Systems()
	return Figure8and9(setup, opts)
}

// Figure1 reproduces the motivating study: per-token latency of five
// baseline systems on a two-SLO workload (categories 1 and 2 only), with the
// SLO-violation percentage annotated per system and category.
func Figure1(setup ModelSetup, opts RunOptions) ([]Point, error) {
	opts.fill()
	mix := workload.Mix{0.5, 0.5, 0}
	reqs, err := mixedTrace(setup, mix, 1.0, 3.0, opts.Duration, opts.Seed)
	if err != nil {
		return nil, err
	}
	var cells []cell
	for _, kind := range Figure1Systems() {
		cells = append(cells, cell{kind: kind, reqs: reqs, x: 0, label: "fig1"})
	}
	pts, err := runCells(setup, opts, cells)
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	return pts, nil
}

// Figure13and14 replays the synthetic trace whose categories peak at
// different times (Fig. 13) and reports each system's SLO attainment under
// it (Fig. 14).
func Figure13and14(setup ModelSetup, opts RunOptions) ([]Point, error) {
	opts.fill()
	gen, err := NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(opts.Seed, 0x1314))
	if err != nil {
		return nil, err
	}
	perCat := workload.SyntheticCategoryTrace(
		mathutil.NewRNG(mathutil.Hash2(opts.Seed, 0x13)), 4.0, opts.Duration)
	reqs := gen.FromCategoryTimestamps(perCat)
	var cells []cell
	for _, kind := range opts.Systems {
		cells = append(cells, cell{kind: kind, reqs: reqs, x: 0, label: "synthetic"})
	}
	pts, err := runCells(setup, opts, cells)
	if err != nil {
		return nil, fmt.Errorf("fig14: %w", err)
	}
	return pts, nil
}

// Figure15 reports AdaServe's serving-time breakdown (scheduling vs
// speculation vs verification) at a fixed moderate load.
func Figure15(setup ModelSetup, opts RunOptions) (*metrics.Summary, error) {
	opts.fill()
	reqs, err := mixedTrace(setup, workload.DefaultMix, 1.0, 3.4, opts.Duration, opts.Seed)
	if err != nil {
		return nil, err
	}
	return runOne(SysAdaServe, setup, reqs, opts.Seed, BuildOptions{})
}

// RenderSeries formats sweep points as an aligned text table with one row
// per x value and one column per system, using the given metric extractor.
func RenderSeries(pts []Point, xName, metric string, f func(*metrics.Summary) float64) string {
	systems := make([]SystemKind, 0)
	seen := map[SystemKind]bool{}
	xs := make([]float64, 0)
	seenX := map[float64]bool{}
	for _, p := range pts {
		if !seen[p.System] {
			seen[p.System] = true
			systems = append(systems, p.System)
		}
		if !seenX[p.X] {
			seenX[p.X] = true
			xs = append(xs, p.X)
		}
	}
	sort.Float64s(xs)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", xName)
	for _, s := range systems {
		fmt.Fprintf(&b, "%18s", s)
	}
	fmt.Fprintf(&b, "   [%s]\n", metric)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-10.2f", x)
		for _, s := range systems {
			val := ""
			for _, p := range pts {
				if p.System == s && p.X == x {
					val = fmt.Sprintf("%.2f", f(p.Sum))
					break
				}
			}
			fmt.Fprintf(&b, "%18s", val)
		}
		b.WriteString("\n")
	}
	return b.String()
}
