package experiments

import (
	"fmt"
	"sort"
	"strings"

	"adaserve/internal/cluster"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sched"
	"adaserve/internal/workload"
)

// BuildCluster assembles an n-replica cluster of the given system kind
// behind the named router policy. Each replica gets its own engine, KV
// cache and pool, with per-replica engine randomness derived from the base
// seed — so a replica's verification outcomes do not depend on which router
// fronts the cluster.
func BuildCluster(kind SystemKind, setup ModelSetup, n int, routerName string, opts BuildOptions) (*cluster.Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: cluster size %d <= 0", n)
	}
	router, err := cluster.NewRouter(routerName)
	if err != nil {
		return nil, err
	}
	systems := make([]sched.System, n)
	for i := range systems {
		o := opts
		o.Seed = mathutil.Hash2(opts.Seed, 0xc1a0+uint64(i))
		sys, err := Build(kind, setup, o)
		if err != nil {
			return nil, fmt.Errorf("experiments: replica %d: %w", i, err)
		}
		systems[i] = sys
	}
	return cluster.New(systems, router)
}

// ClusterPoint is one (replica count, router) cell of the replica-scaling
// experiment.
type ClusterPoint struct {
	Replicas int
	Router   string
	Sum      *metrics.ClusterSummary
}

// ClusterReplicaCounts are the cluster sizes the scaling experiment sweeps.
func ClusterReplicaCounts() []int { return []int{1, 2, 3, 4, 8} }

// ClusterPerReplicaRPS returns the fixed per-replica offered load of the
// scaling experiment: the midpoint of the setup's Figure 8 RPS sweep, a
// contended-but-serviceable operating point where routing quality shows.
func ClusterPerReplicaRPS(setup ModelSetup) float64 {
	sweep := RPSSweepsForSetup(setup)
	return sweep[len(sweep)/2]
}

// ClusterScaling runs the replica-scaling experiment: AdaServe clusters of
// 1, 2, 3, 4 and 8 replicas under each router policy at fixed per-replica
// load (the trace rate scales with the replica count, so every
// configuration sees the same offered load per replica). All
// configurations of one replica count replay the identical trace;
// single-replica rows are a sanity anchor where every router must agree,
// and two-replica clusters are where routing matters least (the SLO-aware
// island needs n >= 3, so at n = 2 it degrades to per-class balancing,
// statistically equivalent to round-robin on homogeneous replicas).
func ClusterScaling(setup ModelSetup, opts RunOptions) ([]ClusterPoint, error) {
	opts.fill()
	perReplica := ClusterPerReplicaRPS(setup)
	type clusterCell struct {
		n      int
		router string
		reqs   []*request.Request
	}
	var cells []clusterCell
	for _, n := range ClusterReplicaCounts() {
		reqs, err := mixedTrace(setup, workload.DefaultMix, 1.0, perReplica*float64(n), opts.Duration, opts.Seed)
		if err != nil {
			return nil, err
		}
		for _, routerName := range cluster.RouterNames() {
			cells = append(cells, clusterCell{n: n, router: routerName, reqs: reqs})
		}
	}
	sums, err := runJobs(opts.Parallel, len(cells), func(i int) (*metrics.ClusterSummary, error) {
		c := cells[i]
		cl, err := BuildCluster(SysAdaServe, setup, c.n, c.router, BuildOptions{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		res, err := cl.Run(request.CloneAll(c.reqs), cluster.Options{})
		if err != nil {
			return nil, fmt.Errorf("cluster n=%d router=%s: %w", c.n, c.router, err)
		}
		return res.Summary, nil
	})
	if err != nil {
		return nil, err
	}
	pts := make([]ClusterPoint, len(cells))
	for i, c := range cells {
		pts[i] = ClusterPoint{Replicas: c.n, Router: c.router, Sum: sums[i]}
	}
	return pts, nil
}

// RenderClusterScaling formats the replica-scaling experiment as aligned
// tables: attainment, goodput and request imbalance, one row per replica
// count and one column per router.
func RenderClusterScaling(pts []ClusterPoint) string {
	routers := make([]string, 0)
	seenR := map[string]bool{}
	counts := make([]int, 0)
	seenN := map[int]bool{}
	for _, p := range pts {
		if !seenR[p.Router] {
			seenR[p.Router] = true
			routers = append(routers, p.Router)
		}
		if !seenN[p.Replicas] {
			seenN[p.Replicas] = true
			counts = append(counts, p.Replicas)
		}
	}
	sort.Ints(counts)
	cell := func(n int, router string, f func(*metrics.ClusterSummary) float64) string {
		for _, p := range pts {
			if p.Replicas == n && p.Router == router {
				return fmt.Sprintf("%.2f", f(p.Sum))
			}
		}
		return ""
	}
	var b strings.Builder
	for _, m := range []struct {
		name string
		f    func(*metrics.ClusterSummary) float64
	}{
		{"attainment %", func(s *metrics.ClusterSummary) float64 { return 100 * s.Attainment() }},
		{"goodput tok/s", func(s *metrics.ClusterSummary) float64 { return s.Goodput() }},
		{"request imbalance (max/mean)", (*metrics.ClusterSummary).RequestImbalance},
	} {
		fmt.Fprintf(&b, "%-10s", "replicas")
		for _, r := range routers {
			fmt.Fprintf(&b, "%16s", r)
		}
		fmt.Fprintf(&b, "   [%s]\n", m.name)
		for _, n := range counts {
			fmt.Fprintf(&b, "%-10d", n)
			for _, r := range routers {
				fmt.Fprintf(&b, "%16s", cell(n, r, m.f))
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return strings.TrimSuffix(b.String(), "\n")
}
