package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates the committed fixtures instead of comparing:
//
//	go test ./internal/experiments -run Golden -update
var updateGolden = flag.Bool("update", false, "rewrite golden fixtures instead of comparing")

// goldenRow is one grid cell of the golden bench run, reduced to the
// metrics the paper reports. Every field is a pure function of the fixed
// seed, so the marshaled fixture is byte-stable across runs, platforms and
// worker counts.
type goldenRow struct {
	Experiment string  `json:"experiment"`
	System     string  `json:"system,omitempty"`
	Split      string  `json:"split,omitempty"`
	Router     string  `json:"router,omitempty"`
	Mix        string  `json:"mix,omitempty"`
	X          float64 `json:"x,omitempty"`

	Requests       int     `json:"requests"`
	Finished       int     `json:"finished"`
	Attainment     float64 `json:"attainment"`
	TTFTAttainment float64 `json:"ttftAttainment"`
	Goodput        float64 `json:"goodput"`
	Throughput     float64 `json:"throughput"`
	MeanAccepted   float64 `json:"meanAccepted"`
	P50TPOT        float64 `json:"p50TPOT"`
	P99TPOT        float64 `json:"p99TPOT"`
	P999TPOT       float64 `json:"p999TPOT"`

	TransferCount  int     `json:"transferCount,omitempty"`
	TransferSec    float64 `json:"transferSec,omitempty"`
	TransferBytes  float64 `json:"transferBytes,omitempty"`
	PrefillTTFTAtt float64 `json:"prefillTTFTAtt,omitempty"`
	DecodeTPOTAtt  float64 `json:"decodeTPOTAtt,omitempty"`

	// Adaptive-grid columns (zero and omitted for every other experiment,
	// so adding them left bench.json byte-identical).
	Config   string  `json:"config,omitempty"`
	Profile  string  `json:"profile,omitempty"`
	MaxTTFT  float64 `json:"maxTTFT,omitempty"`
	Degraded int     `json:"degraded,omitempty"`
	Rejected int     `json:"rejected,omitempty"`

	// Chaos-grid columns (likewise zero and omitted for every other
	// experiment, so adding them left bench.json byte-identical).
	Scenario  string  `json:"scenario,omitempty"`
	Recovery  string  `json:"recovery,omitempty"`
	Lost      int     `json:"lost,omitempty"`
	Retried   int     `json:"retried,omitempty"`
	Dropped   int     `json:"dropped,omitempty"`
	Hedged    int     `json:"hedged,omitempty"`
	Fallbacks int     `json:"fallbacks,omitempty"`
	MTTR      float64 `json:"mttr,omitempty"`

	// Prefix-grid columns (likewise zero and omitted for every other
	// experiment, so adding them left bench.json byte-identical).
	HitRate     float64 `json:"hitRate,omitempty"`
	SavedTokens int     `json:"savedTokens,omitempty"`
	PrefixEvict int     `json:"prefixEvict,omitempty"`
	Reloads     int     `json:"reloads,omitempty"`
	ReloadStall float64 `json:"reloadStall,omitempty"`
}

// goldenOpts is the tiny fixed-seed grid: short enough for CI, long enough
// that every subsystem (speculation, selection, verification, routing,
// migration) executes thousands of times.
func goldenOpts() RunOptions {
	return RunOptions{
		Seed:     1,
		Duration: 6,
		Systems:  []SystemKind{SysAdaServe, SysVLLMSpec6, SysVLLM},
		Parallel: 4,
	}
}

// goldenGrid runs the fixture grid in-process: a Figure 8/9 sweep subset
// plus the full disaggregation experiment, both on the Llama-70B setup.
func goldenGrid(t *testing.T) []goldenRow {
	t.Helper()
	setup := Llama70B()
	var rows []goldenRow

	pts, err := Figure8and9(setup, goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		s := p.Sum
		rows = append(rows, goldenRow{
			Experiment: "fig8-9", System: string(p.System), X: p.X,
			Requests: s.Requests, Finished: s.Finished,
			Attainment: s.Attainment(), TTFTAttainment: s.TTFTAttainment(),
			Goodput: s.Goodput, Throughput: s.Throughput,
			MeanAccepted: s.MeanAcceptedPerStep,
			P50TPOT:      s.P50TPOT(), P99TPOT: s.P99TPOT(), P999TPOT: s.P999TPOT(),
		})
	}

	dpts, err := Disaggregation(setup, goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range dpts {
		s := p.Sum
		row := goldenRow{
			Experiment: "disagg", Split: p.Split, Router: p.Router, Mix: p.Mix,
			Requests: s.Aggregate.Requests, Finished: s.Aggregate.Finished,
			Attainment: s.Attainment(), TTFTAttainment: s.TTFTAttainment(),
			Goodput: s.Goodput(), Throughput: s.Aggregate.Throughput,
			MeanAccepted: s.Aggregate.MeanAcceptedPerStep,
			P50TPOT:      s.Aggregate.P50TPOT(), P99TPOT: s.Aggregate.P99TPOT(), P999TPOT: s.Aggregate.P999TPOT(),
			TransferCount: s.Transfer.Count, TransferSec: s.Transfer.Time,
			TransferBytes: s.Transfer.Bytes,
		}
		for _, rs := range s.Roles {
			switch rs.Role {
			case "prefill":
				row.PrefillTTFTAtt = rs.TTFTAttainment()
			case "decode":
				row.DecodeTPOTAtt = rs.TPOTAttainment()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// compareGolden marshals rows and compares them byte-for-byte against the
// named fixture (or rewrites it under -update).
func compareGolden(t *testing.T, name string, rows []goldenRow) {
	t.Helper()
	got, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d rows)", path, len(rows))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		// Locate the first differing line for a readable failure.
		gl := bytes.Split(got, []byte("\n"))
		wl := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("golden mismatch at line %d:\n got: %s\nwant: %s\n(regenerate with -update if intentional)",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("golden mismatch: output has %d lines, fixture %d (regenerate with -update if intentional)",
			len(gl), len(wl))
	}
}

// TestGoldenBenchGrid replays the fixture grid and compares the marshaled
// result byte-for-byte against the committed fixture. Any intentional
// behavior change must regenerate the fixture with -update and justify the
// diff in review; any unintentional drift — a determinism break, an
// accidental semantic change to a scheduler, router or the migration path —
// fails here first.
func TestGoldenBenchGrid(t *testing.T) {
	compareGolden(t, "bench.json", goldenGrid(t))
}

// TestGoldenAdaptiveGrid pins the flash-crowd sweep the same way: the
// static row certifies the controller-off path still replays the exact
// baseline trajectory, and the adaptive rows pin every gate decision — a
// changed degrade/reject count is a semantic change to the admission law
// and must be justified alongside a fixture regeneration.
func TestGoldenAdaptiveGrid(t *testing.T) {
	// Longer than goldenOpts so the spike genuinely saturates the fleet and
	// the fixture pins non-trivial degrade/reject counts; still sub-second.
	pts, err := AdaptiveControl(Llama70B(), RunOptions{Seed: 1, Duration: 24, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	var rows []goldenRow
	for _, p := range pts {
		s := p.Sum
		row := goldenRow{
			Experiment: "adaptive", Config: p.Config, Profile: p.Profile,
			Requests: s.Aggregate.Requests, Finished: s.Aggregate.Finished,
			Attainment: s.Attainment(), TTFTAttainment: s.TTFTAttainment(),
			Goodput: s.Goodput(), Throughput: s.Aggregate.Throughput,
			MeanAccepted: s.Aggregate.MeanAcceptedPerStep,
			P50TPOT:      s.Aggregate.P50TPOT(), P99TPOT: s.Aggregate.P99TPOT(), P999TPOT: s.Aggregate.P999TPOT(),
			MaxTTFT: s.Aggregate.MaxTTFT,
		}
		if s.Admission != nil {
			row.Degraded = s.Admission.Degraded
			row.Rejected = s.Admission.Rejected
		}
		rows = append(rows, row)
	}
	compareGolden(t, "adaptive.json", rows)
}
