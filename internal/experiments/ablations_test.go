package experiments

import (
	"strings"
	"testing"
)

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation suite is slow")
	}
	rows, err := Ablations(Llama70B(), RunOptions{Seed: 1, Duration: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	byName := map[string]*AblationRow{}
	for i := range rows {
		byName[rows[i].Name] = &rows[i]
	}
	full := byName["AdaServe (full)"]
	if full == nil || full.Sum.Requests == 0 {
		t.Fatal("full configuration missing")
	}

	// Challenge 2: the interleaved Algorithm 1 system must be drastically
	// worse (its iterations cost (B−n) serial draft steps).
	inter := byName["interleaved Algorithm 1"]
	if inter.Sum.Attainment() >= full.Sum.Attainment() {
		t.Fatalf("interleaved attainment %.2f not below full %.2f",
			inter.Sum.Attainment(), full.Sum.Attainment())
	}

	// Over-speculation: static d=8 w=4 must not beat the adaptive
	// controller (at real load it collapses; short test traces may leave
	// both unloaded, so the assertion is non-strict).
	deep := byName["static d=8 w=4 (max trees)"]
	if deep.Sum.Attainment() > full.Sum.Attainment()+1e-9 {
		t.Fatalf("static deep attainment %.2f above adaptive %.2f",
			deep.Sum.Attainment(), full.Sum.Attainment())
	}

	out := RenderAblations(rows)
	if !strings.Contains(out, "configuration") || !strings.Contains(out, "AdaServe (full)") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestInterleavedSystemBuildable(t *testing.T) {
	sys, err := Build(SysAdaServeInterleaved, Llama70B(), BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != string(SysAdaServeInterleaved) {
		t.Fatalf("name %q", sys.Name())
	}
}
