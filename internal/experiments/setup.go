// Package experiments assembles full serving configurations (Table 1) and
// provides one driver per table/figure of the paper's evaluation, each
// returning the rows/series the paper reports.
package experiments

import (
	"fmt"

	"adaserve/internal/core"
	"adaserve/internal/engine"
	"adaserve/internal/gpu"
	"adaserve/internal/kvcache"
	"adaserve/internal/lm"
	"adaserve/internal/mathutil"
	"adaserve/internal/sched"
	"adaserve/internal/workload"
)

// ModelSetup is one row of Table 1: a target model, its tensor parallelism,
// the paired draft model, and the synthetic-LM parameters calibrated for it.
type ModelSetup struct {
	Name     string
	Target   gpu.ModelSpec
	TargetTP int
	Draft    gpu.ModelSpec
	HW       gpu.Hardware

	// Alpha is the draft/target alignment (calibrated so mean accepted
	// tokens per step land in the paper's Figure 12 range).
	Alpha float64
	// Vocab, Branch, Sharpness, Tail parameterize the synthetic LM.
	Vocab     int
	Branch    int
	Sharpness float64
	Tail      float64
}

// Llama70B returns the Llama-3.1-70B-Instruct setup: 4-way TP on 4xA100,
// drafted by Llama-3.2-1B (Table 1, row 1).
func Llama70B() ModelSetup {
	return ModelSetup{
		Name:   "Llama-3.1-70B-Instruct",
		Target: gpu.Llama70B, TargetTP: 4,
		Draft: gpu.Llama1B, HW: gpu.A100,
		Alpha: 0.88, Vocab: 4096, Branch: 16, Sharpness: 3.2, Tail: 0.02,
	}
}

// Qwen32B returns the Qwen2.5-32B-Instruct setup: 2-way TP on 2xA100,
// drafted by Qwen2.5-0.5B (Table 1, row 2).
func Qwen32B() ModelSetup {
	return ModelSetup{
		Name:   "Qwen2.5-32B-Instruct",
		Target: gpu.Qwen32B, TargetTP: 2,
		Draft: gpu.Qwen05B, HW: gpu.A100,
		// The 0.5B Qwen draft is weaker relative to its 32B target than the
		// 1B Llama draft is to the 70B.
		Alpha: 0.84, Vocab: 4096, Branch: 16, Sharpness: 3.0, Tail: 0.02,
	}
}

// Setups returns both Table 1 rows.
func Setups() []ModelSetup { return []ModelSetup{Llama70B(), Qwen32B()} }

// BaselineLatency returns the setup's unloaded per-token decode latency at a
// 512-token reference context: the paper's baseline for category-1 SLOs.
func (m ModelSetup) BaselineLatency() float64 {
	cm := gpu.MustCostModel(m.HW, m.Target, m.TargetTP)
	return cm.BaselineLatency(512)
}

// SystemKind names a serving system configuration.
type SystemKind string

// The systems of the evaluation.
const (
	SysAdaServe     SystemKind = "AdaServe"
	SysVLLM         SystemKind = "vLLM"
	SysVLLMPriority SystemKind = "vLLM + Priority"
	SysSarathi      SystemKind = "Sarathi-Serve"
	SysVLLMSpec4    SystemKind = "vLLM-Spec (4)"
	SysVLLMSpec6    SystemKind = "vLLM-Spec (6)"
	SysVLLMSpec8    SystemKind = "vLLM-Spec (8)"
	SysFastServe    SystemKind = "FastServe"
	SysVTC          SystemKind = "VTC"
	// SysAdaServeInterleaved is the Challenge-2 ablation: Algorithm 1 run
	// directly with interleaved GetTop + draft decoding ((B−n) serial draft
	// steps per iteration) instead of the decoupled speculate-select
	// pipeline.
	SysAdaServeInterleaved SystemKind = "AdaServe (interleaved)"
)

// EndToEndSystems are the systems of Figures 8-12 and 14.
func EndToEndSystems() []SystemKind {
	return []SystemKind{SysAdaServe, SysSarathi, SysVLLM, SysVLLMSpec4, SysVLLMSpec6, SysVLLMSpec8}
}

// Figure1Systems are the systems of the motivating Figure 1.
func Figure1Systems() []SystemKind {
	return []SystemKind{SysVLLM, SysSarathi, SysVLLMPriority, SysFastServe, SysVTC}
}

// KnownSystems lists every system configuration Build accepts.
func KnownSystems() []SystemKind {
	return []SystemKind{
		SysAdaServe, SysVLLM, SysVLLMPriority, SysSarathi,
		SysVLLMSpec4, SysVLLMSpec6, SysVLLMSpec8,
		SysFastServe, SysVTC, SysAdaServeInterleaved,
	}
}

// ParseSystem resolves a CLI system name to a SystemKind, failing with a
// one-line error that lists the valid names — so binaries can reject typos
// up front instead of panicking or erroring deep in setup.
func ParseSystem(name string) (SystemKind, error) {
	for _, k := range KnownSystems() {
		if string(k) == name {
			return k, nil
		}
	}
	return "", fmt.Errorf("experiments: unknown system %q (have %v)", name, KnownSystems())
}

// BuildOptions tunes system construction.
type BuildOptions struct {
	// Seed differentiates runs; it drives the engine's verification RNG.
	Seed uint64
	// Rule selects the verification acceptance rule (default stochastic).
	Rule lm.VerifyRule
	// MaxBatch overrides the running-sequence cap (default 256).
	MaxBatch int
	// Mode restricts admission for role-restricted replicas in a
	// disaggregated cluster (default sched.ModeMixed).
	Mode sched.Mode
	// AdaServe overrides AdaServe's options.
	AdaServe sched.AdaServeOptions
	// StaticController forces AdaServe to fixed (d,w) (ablation) when both
	// are > 0.
	StaticD, StaticW int
	// DisableNMax removes AdaServe's per-request selection cap (ablation).
	DisableNMax bool
	// DisableCUDAGraphs turns off graph-replay amortization (ablation).
	DisableCUDAGraphs bool
	// DisableDistCache turns off the synthetic models' distribution caches:
	// the reference path the byte-identical determinism tests compare
	// cached runs against.
	DisableDistCache bool
	// Prefix enables shared-prefix KV reuse on the system's allocator.
	Prefix bool
	// PrefixHostBlocks sizes the host offload tier in KV blocks (0: no
	// tier — cold prefix blocks evicted under pressure are dropped). Only
	// meaningful with Prefix set; reloads are priced over PCIe4.
	PrefixHostBlocks int
}

// Build assembles a ready-to-run serving system of the given kind on the
// given model setup.
func Build(kind SystemKind, setup ModelSetup, opts BuildOptions) (sched.System, error) {
	target := lm.MustSyntheticLM(setup.Target.Name, mathutil.Hash2(opts.Seed, 0x7a26e7), setup.Vocab, setup.Branch, setup.Sharpness, setup.Tail)
	draft := lm.MustDraftLM(setup.Draft.Name, target, setup.Alpha, mathutil.Hash2(opts.Seed, 0xd12af7))
	if opts.DisableDistCache {
		target.SetDistCacheSize(0)
		draft.SetDistCacheSize(0)
	}

	targetCost, err := gpu.NewCostModel(setup.HW, setup.Target, setup.TargetTP)
	if err != nil {
		return nil, err
	}
	draftCost, err := gpu.NewCostModel(setup.HW, setup.Draft, 1)
	if err != nil {
		return nil, err
	}
	if opts.DisableCUDAGraphs {
		targetCost.UseCUDAGraphs = false
		draftCost.UseCUDAGraphs = false
	}

	eng, err := engine.New(engine.Config{
		Target: target, Draft: draft,
		TargetCost: targetCost, DraftCost: draftCost,
		Rule: opts.Rule, Seed: mathutil.Hash2(opts.Seed, 0xe0617e),
	})
	if err != nil {
		return nil, err
	}

	kvTokens := targetCost.KVCapacityTokens(0.10)
	kv := kvcache.MustNew(kvcache.ConfigForTokens(kvTokens, 16))
	if opts.Prefix {
		reload := gpu.KVTransfer{Model: setup.Target, Link: gpu.PCIe4}
		if err := kv.EnablePrefix(kvcache.PrefixConfig{
			HostBlocks:    opts.PrefixHostBlocks,
			ReloadLatency: reload.Latency,
		}); err != nil {
			return nil, err
		}
	}

	maxBatch := opts.MaxBatch
	if maxBatch == 0 {
		maxBatch = 256
	}
	cfg := sched.Config{
		Engine: eng, KV: kv,
		MaxBatch:         maxBatch,
		MaxPrefillTokens: 2048,
		SchedOverhead:    30e-6,
		Mode:             opts.Mode,
	}

	switch kind {
	case SysAdaServe:
		aopts := opts.AdaServe
		if opts.StaticD > 0 && opts.StaticW > 0 {
			c := core.StaticController(opts.StaticD, opts.StaticW)
			aopts.Controller = &c
		}
		if opts.DisableNMax {
			aopts.NMax = -1
		}
		return sched.NewAdaServe(cfg, aopts)
	case SysVLLM:
		return sched.NewVLLM(cfg)
	case SysVLLMPriority:
		v, err := sched.NewVLLM(cfg)
		if err != nil {
			return nil, err
		}
		v.PriorityAware = true
		return v, nil
	case SysSarathi:
		return sched.NewSarathi(cfg, 0)
	case SysVLLMSpec4:
		return sched.NewVLLMSpec(cfg, 4)
	case SysVLLMSpec6:
		return sched.NewVLLMSpec(cfg, 6)
	case SysVLLMSpec8:
		return sched.NewVLLMSpec(cfg, 8)
	case SysFastServe:
		return sched.NewFastServe(cfg)
	case SysVTC:
		return sched.NewVTC(cfg)
	case SysAdaServeInterleaved:
		return sched.NewAdaServeInterleaved(cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown system %q (have %v)", kind, KnownSystems())
	}
}

// NewGenerator builds the workload generator for a setup with the given mix
// and SLO scale.
func NewGenerator(setup ModelSetup, mix workload.Mix, sloScale float64, seed uint64) (*workload.Generator, error) {
	return workload.NewGenerator(workload.GeneratorConfig{
		Seed:            seed,
		Mix:             mix,
		BaselineLatency: setup.BaselineLatency(),
		SLOScale:        sloScale,
	})
}
