package experiments

import (
	"fmt"
	"strings"

	"adaserve/internal/gpu"
)

// HardwareRow reports how AdaServe's profiling-derived parameters move
// across GPU platforms — the paper's hardware-awareness claim: the token
// budget is a property of the platform's roofline, not a constant.
type HardwareRow struct {
	Hardware string
	// Baseline is the unloaded per-token decode latency (seconds).
	Baseline float64
	// Knee is the profiled roofline knee in tokens.
	Knee int
	// Budget is BudgetFor(1.3 x base): the verification token budget.
	Budget int
	// DraftStep is the draft model's per-step latency (seconds).
	DraftStep float64
}

// HardwareSensitivity profiles one model setup across GPU platforms. The
// model must fit each platform at the setup's TP degree; platforms it does
// not fit are skipped.
func HardwareSensitivity(setup ModelSetup, platforms []gpu.Hardware) ([]HardwareRow, error) {
	if len(platforms) == 0 {
		platforms = []gpu.Hardware{gpu.A100, gpu.H100}
	}
	var rows []HardwareRow
	for _, hw := range platforms {
		cm, err := gpu.NewCostModel(hw, setup.Target, setup.TargetTP)
		if err != nil {
			continue // model does not fit this platform at this TP
		}
		prof, err := gpu.ProfileCostModel(cm, 4096, 512)
		if err != nil {
			return nil, fmt.Errorf("profiling %s on %s: %w", setup.Name, hw.Name, err)
		}
		dc, err := gpu.NewCostModel(hw, setup.Draft, 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HardwareRow{
			Hardware:  hw.Name,
			Baseline:  cm.BaselineLatency(512),
			Knee:      cm.RooflineKnee(),
			Budget:    prof.BudgetFor(1.3 * prof.Base),
			DraftStep: dc.BaselineLatency(512),
		})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("experiments: %s fits no given platform at TP=%d", setup.Name, setup.TargetTP)
	}
	return rows, nil
}

// RenderHardware formats hardware-sensitivity rows.
func RenderHardware(setup ModelSetup, rows []HardwareRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (TP=%d)\n", setup.Name, setup.TargetTP)
	fmt.Fprintf(&b, "%-12s %14s %8s %8s %14s\n", "hardware", "baseline ms", "knee", "budget", "draft step ms")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %14.1f %8d %8d %14.2f\n",
			r.Hardware, 1e3*r.Baseline, r.Knee, r.Budget, 1e3*r.DraftStep)
	}
	return b.String()
}
