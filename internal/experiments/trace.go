package experiments

import (
	"embed"
	"fmt"
	"strings"

	"adaserve/internal/adaptive"
	"adaserve/internal/autoscale"
	"adaserve/internal/cluster"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/serve"
	"adaserve/internal/trace"
)

// traceSpecs holds the committed adversarial workload specs the trace
// experiment sweeps; each is a declarative scenario designed to stress a
// different part of the serving stack.
//
//go:embed testdata/specs/*.spec
var traceSpecs embed.FS

// TraceFleet is the trace experiment's static fleet, matching the
// flash-crowd experiment so the two sweeps are comparable: small enough
// that the committed scenarios genuinely contend.
const TraceFleet = 2

// TraceCapacity is the elastic configuration's capacity fleet: one replica
// of headroom over the static baseline, so the autoscaler has somewhere to
// go when a scenario's transient exceeds the static fleet.
const TraceCapacity = 3

// TraceRouter fronts every cell; held fixed so cells differ only in the
// scenario and control configuration.
const TraceRouter = "slo-aware"

// TracePolicy is the elastic configuration's scaling policy.
const TracePolicy = "rate-prop"

// traceSeedSalt decorrelates the sweep's spec-compilation seed from the
// other experiment seed streams.
const traceSeedSalt = 0x7c5

// TraceScenarios lists the committed spec scenarios, in sweep order:
//
//	bursty    — a steady coding cohort, a chat cohort arriving in
//	            correlated 6-second bursts (the flash crowds routers and
//	            admission see in production), and a diurnally modulated
//	            summarization cohort.
//	heavytail — a ramping chat cohort against a summarization cohort with
//	            Pareto(α=1.1) prompts: a few enormous contexts wedged into
//	            every batch.
func TraceScenarios() []string { return []string{"bursty", "heavytail"} }

// TraceConfigs are the control configurations each scenario replays under:
// the static fleet, the static fleet behind the overload admission gate,
// and the elastic fleet under the scaling policy.
func TraceConfigs() []string { return []string{"static", "admission", "autoscale"} }

// TraceSpec loads and parses a committed scenario spec by name.
func TraceSpec(scenario string) (*trace.Spec, error) {
	data, err := traceSpecs.ReadFile("testdata/specs/" + scenario + ".spec")
	if err != nil {
		return nil, fmt.Errorf("experiments: unknown trace scenario %q (want one of %s)",
			scenario, strings.Join(TraceScenarios(), ", "))
	}
	return trace.ParseSpec(string(data))
}

// CompileTraceSpec compiles a scenario for this sweep's setup and options:
// class SLOs resolve against the setup's baseline decode latency, and the
// run's duration and seed override the spec's, so every config of one
// scenario replays the identical arrival stream.
func CompileTraceSpec(spec *trace.Spec, setup ModelSetup, opts RunOptions) (*trace.Trace, error) {
	return trace.Compile(spec, trace.CompileOptions{
		BaselineLatency: setup.BaselineLatency(),
		Duration:        opts.Duration,
		Seed:            mathutil.Hash2(opts.Seed, traceSeedSalt),
	})
}

// TracePoint is one (scenario, config) cell of the trace-replay sweep.
type TracePoint struct {
	Scenario string
	Config   string
	Sum      *metrics.ClusterSummary
}

// TraceReplay runs the trace experiment: each committed adversarial
// scenario compiles once per seed and replays identically through the
// static fleet, the admission gate, and the autoscaled fleet. The sweep
// shows what each control mechanism buys against workload compositions —
// correlated bursts, heavy-tail prompts — that the synthetic open-loop
// profiles cannot express.
func TraceReplay(setup ModelSetup, opts RunOptions) ([]TracePoint, error) {
	opts.fill()
	type traceCell struct {
		scenario string
		config   string
	}
	var cells []traceCell
	for _, scenario := range TraceScenarios() {
		for _, config := range TraceConfigs() {
			cells = append(cells, traceCell{scenario: scenario, config: config})
		}
	}
	sums, err := runJobs(opts.Parallel, len(cells), func(i int) (*metrics.ClusterSummary, error) {
		c := cells[i]
		sum, err := TraceCell(setup, c.scenario, c.config, opts)
		if err != nil {
			return nil, fmt.Errorf("trace %s config=%s: %w", c.scenario, c.config, err)
		}
		return sum, nil
	})
	if err != nil {
		return nil, err
	}
	pts := make([]TracePoint, len(cells))
	for i, c := range cells {
		pts[i] = TracePoint{Scenario: c.scenario, Config: c.config, Sum: sums[i]}
	}
	return pts, nil
}

// TraceCell compiles one scenario and replays it under one configuration.
// Compilation seeding depends only on (opts.Seed, scenario), so every
// configuration of a scenario faces the same requests at the same
// instants; what differs is only how the fleet responds.
func TraceCell(setup ModelSetup, scenario, config string, opts RunOptions) (*metrics.ClusterSummary, error) {
	spec, err := TraceSpec(scenario)
	if err != nil {
		return nil, err
	}
	tr, err := CompileTraceSpec(spec, setup, opts)
	if err != nil {
		return nil, err
	}
	src, err := trace.NewSource(tr)
	if err != nil {
		return nil, err
	}

	var cl *cluster.Cluster
	srvOpts := serve.Options{}
	var ctrl *adaptive.Controller
	switch config {
	case "static", "admission":
		cl, err = BuildCluster(SysAdaServe, setup, TraceFleet, TraceRouter, BuildOptions{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		if config == "admission" {
			ctrl, err = adaptive.New(cl, adaptive.Config{
				Interval:      AdaptiveInterval(opts.Duration),
				Window:        AutoscaleWindow(opts.Duration),
				DisableTuning: true,
			})
			if err != nil {
				return nil, err
			}
			srvOpts.Adaptive = ctrl
		}
	case "autoscale":
		cl, err = BuildElasticCluster(SysAdaServe, setup, TraceCapacity, TraceRouter,
			cluster.ElasticOptions{ColdStart: AutoscaleColdStart(opts.Duration), InitialActive: TraceFleet},
			BuildOptions{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		policy, err := autoscale.NewPolicy(TracePolicy)
		if err != nil {
			return nil, err
		}
		scaler, err := autoscale.New(cl, policy, autoscale.Options{
			Interval: AutoscaleInterval(opts.Duration),
			Window:   AutoscaleWindow(opts.Duration),
		})
		if err != nil {
			return nil, err
		}
		srvOpts.Autoscaler = scaler
	default:
		return nil, fmt.Errorf("experiments: unknown trace config %q (want one of %s)",
			config, strings.Join(TraceConfigs(), ", "))
	}

	srv, err := serve.NewServer(cl, srvOpts)
	if err != nil {
		return nil, err
	}
	rr, err := srv.Run(src)
	if err != nil {
		return nil, err
	}
	res := cl.Results(rr, nil)
	if ctrl != nil {
		sum := ctrl.Summary()
		res.Summary.Admission = &sum
	}
	return res.Summary, nil
}

// RenderTrace formats the trace-replay sweep as one aligned table per
// scenario: a row per control configuration, a column per headline metric.
func RenderTrace(pts []TracePoint) string {
	scenarios := make([]string, 0)
	seenS := map[string]bool{}
	configs := make([]string, 0)
	seenC := map[string]bool{}
	for _, p := range pts {
		if !seenS[p.Scenario] {
			seenS[p.Scenario] = true
			scenarios = append(scenarios, p.Scenario)
		}
		if !seenC[p.Config] {
			seenC[p.Config] = true
			configs = append(configs, p.Config)
		}
	}
	metricsCols := []struct {
		name string
		f    func(*metrics.ClusterSummary) float64
	}{
		{"goodput", func(s *metrics.ClusterSummary) float64 { return s.Goodput() }},
		{"attain%", func(s *metrics.ClusterSummary) float64 { return 100 * s.Attainment() }},
		{"ttftAtt%", func(s *metrics.ClusterSummary) float64 { return 100 * s.TTFTAttainment() }},
		{"maxTTFT", func(s *metrics.ClusterSummary) float64 { return s.Aggregate.MaxTTFT }},
		{"p50TPOT", func(s *metrics.ClusterSummary) float64 { return s.Aggregate.P50TPOT() }},
		{"p99TPOT", func(s *metrics.ClusterSummary) float64 { return s.Aggregate.P99TPOT() }},
		{"p999TPOT", func(s *metrics.ClusterSummary) float64 { return s.Aggregate.P999TPOT() }},
		{"degraded", func(s *metrics.ClusterSummary) float64 {
			if s.Admission == nil {
				return 0
			}
			return float64(s.Admission.Degraded)
		}},
		{"rejected", func(s *metrics.ClusterSummary) float64 {
			if s.Admission == nil {
				return 0
			}
			return float64(s.Admission.Rejected)
		}},
	}
	var b strings.Builder
	for _, scenario := range scenarios {
		fmt.Fprintf(&b, "== scenario %s ==\n", scenario)
		fmt.Fprintf(&b, "%-20s", "config")
		for _, m := range metricsCols {
			fmt.Fprintf(&b, "%12s", m.name)
		}
		b.WriteString("\n")
		for _, cfg := range configs {
			for _, p := range pts {
				if p.Scenario != scenario || p.Config != cfg {
					continue
				}
				fmt.Fprintf(&b, "%-20s", cfg)
				for _, m := range metricsCols {
					fmt.Fprintf(&b, "%12.2f", m.f(p.Sum))
				}
				b.WriteString("\n")
			}
		}
		b.WriteString("\n")
	}
	return strings.TrimSuffix(b.String(), "\n")
}
