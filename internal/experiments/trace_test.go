package experiments

import (
	"io/fs"
	"reflect"
	"strings"
	"testing"

	"adaserve/internal/mathutil"
	"adaserve/internal/serve"
	"adaserve/internal/trace"
	"adaserve/internal/workload"
)

// TestTraceSpecsCanonical validates every committed scenario spec: each
// must parse and already be in canonical form, so a hand-edit that drifts
// from the grammar fails here rather than at sweep time.
func TestTraceSpecsCanonical(t *testing.T) {
	names := map[string]bool{}
	err := fs.WalkDir(traceSpecs, "testdata/specs", func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := fs.ReadFile(traceSpecs, path)
		if err != nil {
			return err
		}
		s, err := trace.ParseSpec(string(data))
		if err != nil {
			t.Errorf("%s: %v", path, err)
			return nil
		}
		if s.Format() != string(data) {
			t.Errorf("%s: not in canonical form; want:\n%s", path, s.Format())
		}
		names[s.Name] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, scenario := range TraceScenarios() {
		if !names[scenario] {
			t.Errorf("scenario %s has no committed spec (or its #meta name differs)", scenario)
		}
		if _, err := TraceSpec(scenario); err != nil {
			t.Errorf("TraceSpec(%s): %v", scenario, err)
		}
	}
	if _, err := TraceSpec("nope"); err == nil {
		t.Error("TraceSpec should reject unknown scenarios")
	}
}

// TestTraceCellUnknownConfig pins the sweep's config validation.
func TestTraceCellUnknownConfig(t *testing.T) {
	_, err := TraceCell(Llama70B(), "bursty", "chaos", RunOptions{Seed: 1, Duration: 6})
	if err == nil || !strings.Contains(err.Error(), "unknown trace config") {
		t.Fatalf("TraceCell = %v, want unknown-config error", err)
	}
}

// TestGoldenTraceGrid pins the trace-replay sweep byte-for-byte: the
// static rows certify spec compilation and replay stay deterministic, the
// admission rows pin every gate decision against the committed adversarial
// scenarios, and the autoscale rows pin the scaling trajectory.
func TestGoldenTraceGrid(t *testing.T) {
	pts, err := TraceReplay(Llama70B(), RunOptions{Seed: 1, Duration: 24, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "trace.json", traceRows(pts))

	// The rendered table covers every (scenario, config) cell of the same
	// sweep: one section per scenario, one row per config, every headline
	// column present.
	table := RenderTrace(pts)
	for _, scenario := range TraceScenarios() {
		if !strings.Contains(table, "== scenario "+scenario+" ==") {
			t.Errorf("rendered table missing scenario %s:\n%s", scenario, table)
		}
	}
	for _, config := range TraceConfigs() {
		if strings.Count(table, config) < len(TraceScenarios()) {
			t.Errorf("rendered table missing a %s row:\n%s", config, table)
		}
	}
	for _, col := range []string{"goodput", "attain%", "ttftAtt%", "maxTTFT", "p99TPOT", "degraded", "rejected"} {
		if !strings.Contains(table, col) {
			t.Errorf("rendered table missing column %s:\n%s", col, table)
		}
	}
}

func traceRows(pts []TracePoint) []goldenRow {
	var rows []goldenRow
	for _, p := range pts {
		s := p.Sum
		row := goldenRow{
			Experiment: "trace", Scenario: p.Scenario, Config: p.Config,
			Requests: s.Aggregate.Requests, Finished: s.Aggregate.Finished,
			Attainment: s.Attainment(), TTFTAttainment: s.TTFTAttainment(),
			Goodput: s.Goodput(), Throughput: s.Aggregate.Throughput,
			MeanAccepted: s.Aggregate.MeanAcceptedPerStep,
			P50TPOT:      s.Aggregate.P50TPOT(), P99TPOT: s.Aggregate.P99TPOT(), P999TPOT: s.Aggregate.P999TPOT(),
			MaxTTFT: s.Aggregate.MaxTTFT,
		}
		if s.Admission != nil {
			row.Degraded = s.Admission.Degraded
			row.Rejected = s.Admission.Rejected
		}
		rows = append(rows, row)
	}
	return rows
}

// TestTraceReplayParallelDeterminism reruns the sweep at -parallel 1 and 8
// and requires identical results: worker scheduling must not leak into any
// cell.
func TestTraceReplayParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := RunOptions{Seed: 1, Duration: 24}
	opts.Parallel = 1
	a, err := TraceReplay(Llama70B(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 8
	b, err := TraceReplay(Llama70B(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traceRows(a), traceRows(b)) {
		t.Fatal("trace sweep differs between -parallel 1 and 8")
	}
}

// TestExportReplayLoop closes the loop the subsystem exists for: a
// fixed-seed open-loop cluster run is exported to a trace, the trace
// replays through an identically built fresh cluster, and the replayed
// run's admitted arrival stream — timestamps, classes, lengths, SLOs —
// must reproduce the original exactly (pinned by comparing the two
// exports byte-for-byte).
func TestExportReplayLoop(t *testing.T) {
	setup := Llama70B()
	const duration = 8
	runOnce := func(src serve.Source) *trace.Trace {
		t.Helper()
		cl, err := BuildCluster(SysAdaServe, setup, 2, "slo-aware", BuildOptions{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewServer(cl, serve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exp := trace.NewExporter(trace.ExportOptions{Seed: 1, Source: "export:test"})
		srv.Subscribe(exp)
		if _, err := srv.Run(src); err != nil {
			t.Fatal(err)
		}
		tr, err := exp.Trace()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	gen, err := NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(1, 0xada))
	if err != nil {
		t.Fatal(err)
	}
	rate, maxRate, err := workload.RateProfile("spike", AdaptiveMeanRPS(setup), duration)
	if err != nil {
		t.Fatal(err)
	}
	open, err := serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(1, 0x7a)), rate, maxRate, duration)
	if err != nil {
		t.Fatal(err)
	}
	exported := runOnce(open)
	if len(exported.Arrivals) == 0 {
		t.Fatal("open-loop run exported no arrivals")
	}

	// Round-trip the export through its file form, as a CLI user would.
	parsed, err := trace.Parse(exported.Format())
	if err != nil {
		t.Fatalf("exported trace does not parse: %v", err)
	}
	replaySrc, err := trace.NewSource(parsed)
	if err != nil {
		t.Fatal(err)
	}
	replayed := runOnce(replaySrc)
	if replayed.Format() != exported.Format() {
		t.Fatal("replayed admission stream differs from the original export")
	}
}

// TestCompileTraceSpecSeedScoping pins that compilation depends on the run
// seed (cells with different -seed get different traffic) but not on the
// control configuration (every config of one scenario sees identical
// traffic).
func TestCompileTraceSpecSeedScoping(t *testing.T) {
	setup := Llama70B()
	spec, err := TraceSpec("bursty")
	if err != nil {
		t.Fatal(err)
	}
	a, err := CompileTraceSpec(spec, setup, RunOptions{Seed: 1, Duration: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileTraceSpec(spec, setup, RunOptions{Seed: 1, Duration: 12})
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() != b.Format() {
		t.Fatal("same seed compiled different traces")
	}
	c, err := CompileTraceSpec(spec, setup, RunOptions{Seed: 2, Duration: 12})
	if err != nil {
		t.Fatal(err)
	}
	if a.Format() == c.Format() {
		t.Fatal("different seeds compiled identical traces")
	}
}
