package experiments

import (
	"reflect"
	"testing"

	"adaserve/internal/faults"
	"adaserve/internal/metrics"
)

// faultOpts is the chaos grid's fixed-seed configuration: long enough that
// the crash window strands real work and the straggler backlog forces
// hedging, short enough for CI.
func faultOpts(parallel int) RunOptions {
	return RunOptions{Seed: 1, Duration: 24, Parallel: parallel}
}

func faultPoint(t *testing.T, pts []FaultPoint, scenario, recovery string) *metrics.ClusterSummary {
	t.Helper()
	for _, p := range pts {
		if p.Scenario == scenario && p.Recovery == recovery {
			return p.Sum
		}
	}
	t.Fatalf("no %s/%s cell in sweep", scenario, recovery)
	return nil
}

// TestFaultRecoveryHeadlines pins the chaos sweep's qualitative claims: under
// a replica crash, retry+failover beats no-recovery on both goodput and SLO
// attainment (lost requests are violations recovery buys back); and hedged
// re-dispatch bounds the worst-case TTFT that retry alone cannot touch — in
// the straggler scenario retry never even triggers, since a slow replica is
// alive and timeout detection stays quiet.
func TestFaultRecoveryHeadlines(t *testing.T) {
	pts, err := Faults(Llama70B(), faultOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFaults(pts))

	none := faultPoint(t, pts, "crash", "none")
	retry := faultPoint(t, pts, "crash", "retry")
	if retry.Goodput() <= none.Goodput() {
		t.Errorf("crash: retry goodput %.2f does not beat no-recovery %.2f", retry.Goodput(), none.Goodput())
	}
	if retry.Attainment() <= none.Attainment() {
		t.Errorf("crash: retry attainment %.4f does not beat no-recovery %.4f", retry.Attainment(), none.Attainment())
	}
	if none.Faults.LostRequests == 0 || retry.Faults.Retried == 0 {
		t.Errorf("crash window stranded no work: lost=%d retried=%d", none.Faults.LostRequests, retry.Faults.Retried)
	}
	if retry.Faults.MTTR <= 0 {
		t.Errorf("crash repaired but MTTR %.2f", retry.Faults.MTTR)
	}

	slow := faultPoint(t, pts, "straggler", "retry")
	hedge := faultPoint(t, pts, "straggler", "retry+hedge")
	if hedge.Aggregate.MaxTTFT >= slow.Aggregate.MaxTTFT {
		t.Errorf("straggler: hedging maxTTFT %.2f does not beat retry-only %.2f",
			hedge.Aggregate.MaxTTFT, slow.Aggregate.MaxTTFT)
	}
	if hedge.Faults.Hedged == 0 {
		t.Error("straggler cell never hedged")
	}
	if slow.Faults.Retried != 0 {
		t.Errorf("straggler triggered %d retries; a live replica must not trip timeout detection", slow.Faults.Retried)
	}

	link := faultPoint(t, pts, "link", "none")
	if link.Faults.TransferFallbacks == 0 {
		t.Error("link scenario caused no transfer fallbacks")
	}
	if link.Aggregate.Finished == 0 || link.Aggregate.Finished != link.Aggregate.Requests {
		t.Errorf("link scenario: %d/%d finished — recompute fallback must not strand requests",
			link.Aggregate.Finished, link.Aggregate.Requests)
	}
}

// TestParallelFaultsDeterministic extends the runner guarantee to faulted
// runs: the chaos grid at -parallel 1 and -parallel 8 must be identical —
// fault schedules are pure functions of the seed, never of worker timing.
func TestParallelFaultsDeterministic(t *testing.T) {
	seq, err := Faults(Llama70B(), faultOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Faults(Llama70B(), faultOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("cell count differs: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Scenario != par[i].Scenario || seq[i].Recovery != par[i].Recovery ||
			!reflect.DeepEqual(seq[i].Sum, par[i].Sum) {
			t.Fatalf("cell %s/%s differs between -parallel 1 and 8", seq[i].Scenario, seq[i].Recovery)
		}
	}
}

// TestFaultSpecRejectsUnknownScenario covers the sweep's input validation.
func TestFaultSpecRejectsUnknownScenario(t *testing.T) {
	if _, err := FaultSpec("meteor", 24); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := FaultCell(Llama70B(), "crash", "prayer", faultOpts(1)); err == nil {
		t.Fatal("unknown recovery accepted")
	}
}

// TestGoldenFaultsGrid pins the chaos sweep byte-for-byte: every injected
// fault instant, every detection, retry, hedge race and autoscale-driven
// replacement is a pure function of the fixed seed. A drifted lost/retried/
// hedged count is a semantic change to the failure or recovery law and must
// be justified alongside a fixture regeneration.
func TestGoldenFaultsGrid(t *testing.T) {
	pts, err := Faults(Llama70B(), faultOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	var rows []goldenRow
	for _, p := range pts {
		s := p.Sum
		row := goldenRow{
			Experiment: "faults", Scenario: p.Scenario, Recovery: p.Recovery,
			Requests: s.Aggregate.Requests, Finished: s.Aggregate.Finished,
			Attainment: s.Attainment(), TTFTAttainment: s.TTFTAttainment(),
			Goodput: s.Goodput(), Throughput: s.Aggregate.Throughput,
			MeanAccepted: s.Aggregate.MeanAcceptedPerStep,
			P50TPOT:      s.Aggregate.P50TPOT(), P99TPOT: s.Aggregate.P99TPOT(), P999TPOT: s.Aggregate.P999TPOT(),
			MaxTTFT: s.Aggregate.MaxTTFT,
		}
		if f := s.Faults; f != nil {
			row.Lost, row.Retried, row.Dropped = f.LostRequests, f.Retried, f.Dropped
			row.Hedged, row.Fallbacks = f.Hedged, f.TransferFallbacks
			row.MTTR = f.MTTR
		}
		rows = append(rows, row)
	}
	compareGolden(t, "faults.json", rows)
}

// TestFaultsWithSpec runs the custom-schedule path (-faults override): every
// recovery mode replays the caller's spec as one "custom" scenario on the
// elastic chaos fleet, at the headroom operating point.
func TestFaultsWithSpec(t *testing.T) {
	spec, err := faults.ParseSpec("crash@3+2:r0")
	if err != nil {
		t.Fatal(err)
	}
	opts := faultOpts(3)
	opts.Duration = 12
	pts, err := FaultsWithSpec(Llama70B(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(FaultRecoveries()) {
		t.Fatalf("%d points, want one per recovery mode", len(pts))
	}
	for i, p := range pts {
		if p.Scenario != "custom" || p.Recovery != FaultRecoveries()[i] {
			t.Fatalf("point %d = (%s, %s), want custom scenario in recovery order", i, p.Scenario, p.Recovery)
		}
		if p.Sum.Faults == nil || p.Sum.Faults.Crashes != 1 {
			t.Fatalf("recovery %s did not replay the custom crash: %+v", p.Recovery, p.Sum.Faults)
		}
	}
}
