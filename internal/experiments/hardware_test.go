package experiments

import (
	"strings"
	"testing"

	"adaserve/internal/gpu"
)

func TestHardwareSensitivity(t *testing.T) {
	rows, err := HardwareSensitivity(Llama70B(), []gpu.Hardware{gpu.A100, gpu.H100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	var a100, h100 *HardwareRow
	for i := range rows {
		switch {
		case strings.Contains(rows[i].Hardware, "A100"):
			a100 = &rows[i]
		case strings.Contains(rows[i].Hardware, "H100"):
			h100 = &rows[i]
		}
	}
	// H100's higher bandwidth drops the baseline; its higher FLOPs-to-
	// bandwidth ratio pushes the knee (and so the budget) outward — the
	// hardware-awareness the paper motivates.
	if h100.Baseline >= a100.Baseline {
		t.Fatalf("H100 baseline %.1fms not below A100 %.1fms",
			1e3*h100.Baseline, 1e3*a100.Baseline)
	}
	if h100.Knee <= a100.Knee {
		t.Fatalf("H100 knee %d not beyond A100 knee %d", h100.Knee, a100.Knee)
	}
	if h100.Budget <= a100.Budget {
		t.Fatalf("H100 budget %d not beyond A100 budget %d", h100.Budget, a100.Budget)
	}
}

func TestHardwareSensitivitySkipsUnfitPlatforms(t *testing.T) {
	// 70B at TP=4 does not fit 4 L4s (24GB each): the row is skipped, and
	// with only unfit platforms the call errors.
	if _, err := HardwareSensitivity(Llama70B(), []gpu.Hardware{gpu.L4}); err == nil {
		t.Fatal("L4-only platform list should error for a 70B model")
	}
	rows, err := HardwareSensitivity(Llama70B(), []gpu.Hardware{gpu.L4, gpu.A100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !strings.Contains(rows[0].Hardware, "A100") {
		t.Fatalf("rows %+v", rows)
	}
}

func TestRenderHardware(t *testing.T) {
	rows, err := HardwareSensitivity(Qwen32B(), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderHardware(Qwen32B(), rows)
	if !strings.Contains(out, "A100") || !strings.Contains(out, "budget") {
		t.Fatalf("render:\n%s", out)
	}
}
