package experiments

import (
	"reflect"
	"testing"

	"adaserve/internal/cluster"
)

// autoscaleOpts keeps the autoscaling tests fast while leaving the profile
// dynamics intact: decisions every 0.8 s, a 1.2 s cold start, 3 s windows.
func autoscaleOpts(parallel int) RunOptions {
	return RunOptions{Seed: 1, Duration: 24, Parallel: parallel}
}

// TestAutoscalingDeterministic is the autoscaling experiment's determinism
// guarantee: the full sweep — open-loop sources, elastic clusters, scaling
// controllers and all — is byte-identical at any worker count.
func TestAutoscalingDeterministic(t *testing.T) {
	setup := Llama70B()
	seq, err := Autoscaling(setup, autoscaleOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Autoscaling(setup, autoscaleOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("point count differs: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Config != par[i].Config || seq[i].Profile != par[i].Profile || seq[i].Router != par[i].Router {
			t.Fatalf("point %d coordinates differ: %+v vs %+v", i, seq[i], par[i])
		}
		if !reflect.DeepEqual(seq[i].Sum, par[i].Sum) {
			t.Fatalf("point %d (%s/%s/%s): summaries differ between -parallel 1 and 8",
				i, seq[i].Config, seq[i].Profile, seq[i].Router)
		}
	}

	// The sweep's reason to exist: under every time-varying profile, at
	// least one scaling policy must beat the equal-peak static fleet on
	// goodput per replica-second — same router, identical arrival stream.
	static := map[string]float64{} // profile/router -> static headline
	for _, p := range seq {
		if p.Config == "static" {
			static[p.Profile+"/"+p.Router] = p.Sum.Autoscale.GoodputPerReplicaSecond()
		}
	}
	for _, profile := range AutoscaleProfiles() {
		beat := false
		for _, p := range seq {
			if p.Profile != profile || p.Config == "static" {
				continue
			}
			if p.Sum.Autoscale.GoodputPerReplicaSecond() > static[p.Profile+"/"+p.Router] {
				beat = true
				break
			}
		}
		if !beat {
			t.Errorf("profile %s: no policy beat the equal-peak static fleet on goodput/replica-second", profile)
		}
	}
}

// TestAutoscalingCellShape sanity-checks one elastic cell's summary: the
// controller actually moved the fleet, billed fewer replica-seconds than
// the always-on capacity fleet, and the static cell reports exactly
// capacity x duration economics.
func TestAutoscalingCellShape(t *testing.T) {
	setup := Llama70B()
	opts := autoscaleOpts(4)
	opts.fill()
	static, err := AutoscaleCell(setup, "static", "diurnal", "least-loaded", opts)
	if err != nil {
		t.Fatal(err)
	}
	elastic, err := AutoscaleCell(setup, "rate-prop", "diurnal", "least-loaded", opts)
	if err != nil {
		t.Fatal(err)
	}
	sa, ea := static.Autoscale, elastic.Autoscale
	if sa == nil || ea == nil {
		t.Fatal("cluster summaries must carry autoscale economics")
	}
	if sa.Policy != "static" || ea.Policy != "rate-prop" {
		t.Fatalf("policies stamped wrong: %q / %q", sa.Policy, ea.Policy)
	}
	if sa.ScaleUps != 0 || sa.ScaleDowns != 0 || sa.PeakReplicas != AutoscaleFleet || sa.MinReplicas != AutoscaleFleet {
		t.Fatalf("static fleet must not scale: %+v", sa)
	}
	if ea.ScaleUps == 0 || ea.ScaleDowns == 0 {
		t.Fatalf("elastic fleet never moved under a diurnal profile: %+v", ea)
	}
	if ea.PeakReplicas <= ea.MinReplicas {
		t.Fatalf("fleet watermarks did not spread: %+v", ea)
	}
	if ea.ReplicaSeconds >= sa.ReplicaSeconds {
		t.Fatalf("elastic fleet billed %ved replica-seconds, static %v — scaling saved nothing",
			ea.ReplicaSeconds, sa.ReplicaSeconds)
	}
	if ea.Finished == 0 || ea.GoodTokens == 0 {
		t.Fatalf("elastic cell served nothing: %+v", ea)
	}
}

// TestBuildElasticDisagg wires role-aware elastic construction end to end:
// per-role pools with spares, admission modes matching roles.
func TestBuildElasticDisagg(t *testing.T) {
	setup := Llama70B()
	roles, err := cluster.ParseSplit("2P2D")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := BuildElasticDisagg(SysAdaServe, setup, roles, "least-loaded",
		cluster.ElasticOptions{ColdStart: 1.0, InitialActive: 1}, BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Elastic() {
		t.Fatal("cluster not elastic")
	}
	pp := cl.CountPool(cluster.RolePrefill)
	dp := cl.CountPool(cluster.RoleDecode)
	if pp.Active != 1 || pp.Stopped != 1 || dp.Active != 1 || dp.Stopped != 1 {
		t.Fatalf("initial pools wrong: prefill %+v decode %+v", pp, dp)
	}
}
