package experiments

import (
	"fmt"
	"strings"

	"adaserve/internal/lm"
	"adaserve/internal/metrics"
	"adaserve/internal/workload"
)

// AblationRow is one configuration's outcome in an ablation study.
type AblationRow struct {
	Name string
	Sum  *metrics.Summary
}

// Ablations runs the design-choice studies DESIGN.md calls out, all at one
// fixed moderate-high load (RPS 3.8, default mix):
//
//  1. decoupled speculate-select (AdaServe) vs interleaved Algorithm 1;
//  2. adaptive (d, w) control vs static settings;
//  3. per-request cap n_max on vs off;
//  4. CUDA-graph launch amortization on vs off;
//  5. sample-match vs greedy verification rule.
func Ablations(setup ModelSetup, opts RunOptions) ([]AblationRow, error) {
	opts.fill()
	reqs, err := mixedTrace(setup, workload.DefaultMix, 1.0, 3.8, opts.Duration, opts.Seed)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name  string
		kind  SystemKind
		build BuildOptions
	}{
		{"AdaServe (full)", SysAdaServe, BuildOptions{}},
		{"interleaved Algorithm 1", SysAdaServeInterleaved, BuildOptions{}},
		{"static d=4 w=1 (chains)", SysAdaServe, BuildOptions{StaticD: 4, StaticW: 1}},
		{"static d=8 w=4 (max trees)", SysAdaServe, BuildOptions{StaticD: 8, StaticW: 4}},
		{"no n_max cap", SysAdaServe, BuildOptions{DisableNMax: true}},
		{"no CUDA graphs", SysAdaServe, BuildOptions{DisableCUDAGraphs: true}},
		{"greedy verification", SysAdaServe, BuildOptions{Rule: lm.RuleGreedy}},
	}
	sums, err := runJobs(opts.Parallel, len(configs), func(i int) (*metrics.Summary, error) {
		c := configs[i]
		sum, err := runOne(c.kind, setup, reqs, opts.Seed, c.build)
		if err != nil {
			return nil, fmt.Errorf("ablation %q: %w", c.name, err)
		}
		return sum, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, len(configs))
	for i, c := range configs {
		rows[i] = AblationRow{Name: c.name, Sum: sums[i]}
	}
	return rows, nil
}

// RenderAblations formats ablation rows as an aligned table.
func RenderAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %12s %12s %10s %14s\n",
		"configuration", "attain %", "goodput", "mean acc", "sched share %")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %12.1f %12.1f %10.2f %14.3f\n",
			r.Name, 100*r.Sum.Attainment(), r.Sum.Goodput,
			r.Sum.MeanAcceptedPerStep, 100*r.Sum.Breakdown.SchedulingShare())
	}
	return b.String()
}
