package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"adaserve/internal/workload"
)

// shortOpts keeps the determinism tests fast: a brief trace and a reduced
// system set still exercise the full speculate-select-verify pipeline.
func shortOpts(parallel int) RunOptions {
	return RunOptions{
		Seed:     1,
		Duration: 8,
		Systems:  []SystemKind{SysAdaServe, SysVLLMSpec6, SysVLLM},
		Parallel: parallel,
	}
}

// pointsEqual compares sweep points including their full summaries.
func pointsEqual(t *testing.T, a, b []Point) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("point count differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].System != b[i].System || a[i].X != b[i].X || a[i].Label != b[i].Label {
			t.Fatalf("point %d coordinates differ: %+v vs %+v", i, a[i], b[i])
		}
		if !reflect.DeepEqual(a[i].Sum, b[i].Sum) {
			t.Fatalf("point %d (%s x=%v): summaries differ:\n%+v\nvs\n%+v",
				i, a[i].System, a[i].X, a[i].Sum, b[i].Sum)
		}
	}
}

// TestParallelRunnerDeterministic is the runner's core guarantee: the figure
// grid run with 1 worker and with 8 workers produces identical,
// identically-ordered results (share-nothing workers, ordered reassembly).
func TestParallelRunnerDeterministic(t *testing.T) {
	setup := Llama70B()
	seq, err := Figure8and9(setup, shortOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure8and9(setup, shortOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	pointsEqual(t, seq, par)
}

// TestParallelAblationsDeterministic covers the ablation grid, whose cells
// vary BuildOptions rather than workloads.
func TestParallelAblationsDeterministic(t *testing.T) {
	setup := Llama70B()
	opts := RunOptions{Seed: 1, Duration: 6}
	opts.Parallel = 1
	seq, err := Ablations(setup, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 8
	par, err := Ablations(setup, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row count differs: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Name != par[i].Name || !reflect.DeepEqual(seq[i].Sum, par[i].Sum) {
			t.Fatalf("ablation %q differs between -parallel 1 and 8", seq[i].Name)
		}
	}
}

// TestCachedRunMatchesUncached is the hot-path determinism guarantee: the
// distribution caches (and the pooled scratch the default path always uses)
// must leave metrics byte-identical to the uncached reference, seed for
// seed, across systems.
func TestCachedRunMatchesUncached(t *testing.T) {
	setup := Llama70B()
	reqs, err := mixedTrace(setup, workload.DefaultMix, 1.0, 3.4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []SystemKind{SysAdaServe, SysVLLMSpec6, SysVLLM, SysSarathi} {
		t.Run(string(kind), func(t *testing.T) {
			cached, err := runOne(kind, setup, reqs, 1, BuildOptions{})
			if err != nil {
				t.Fatal(err)
			}
			plain, err := runOne(kind, setup, reqs, 1, BuildOptions{DisableDistCache: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cached, plain) {
				t.Fatalf("cached run diverged from uncached reference:\n%+v\nvs\n%+v", cached, plain)
			}
		})
	}
}

// TestRunJobsErrorPropagation checks errors surface (sequentially: the
// first by index; in parallel: one of the failing jobs, since later jobs
// are skipped once any fails) and that worker counts beyond the job count
// are harmless.
func TestRunJobsErrorPropagation(t *testing.T) {
	_, err := runJobs(1, 5, func(i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "job 3 failed" {
		t.Fatalf("sequential: want first error by index (job 3), got %v", err)
	}
	_, err = runJobs(16, 5, func(i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	})
	if err == nil || !strings.HasPrefix(err.Error(), "job ") {
		t.Fatalf("parallel: want a failing job's error, got %v", err)
	}
	got, err := runJobs(16, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
}
