package experiments

import (
	"strings"
	"testing"

	"adaserve/internal/mathutil"

	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/sim"
	"adaserve/internal/workload"
)

func TestSetupsMatchTable1(t *testing.T) {
	setups := Setups()
	if len(setups) != 2 {
		t.Fatalf("%d setups", len(setups))
	}
	l := setups[0]
	if l.TargetTP != 4 || !strings.Contains(l.Name, "70B") {
		t.Fatalf("Llama setup %+v", l)
	}
	q := setups[1]
	if q.TargetTP != 2 || !strings.Contains(q.Name, "32B") {
		t.Fatalf("Qwen setup %+v", q)
	}
	for _, s := range setups {
		if s.Draft.Params >= s.Target.Params {
			t.Errorf("%s: draft not smaller than target", s.Name)
		}
		if s.Alpha <= 0 || s.Alpha > 1 {
			t.Errorf("%s: alpha %g", s.Name, s.Alpha)
		}
	}
}

func TestBaselineLatencyBands(t *testing.T) {
	// The calibration anchors: ~33ms for 70B/4xA100, ~29ms for 32B/2xA100.
	l := Llama70B().BaselineLatency()
	if l < 0.025 || l > 0.045 {
		t.Fatalf("Llama baseline %.1fms", 1e3*l)
	}
	q := Qwen32B().BaselineLatency()
	if q < 0.020 || q > 0.040 {
		t.Fatalf("Qwen baseline %.1fms", 1e3*q)
	}
}

func TestBuildAllSystems(t *testing.T) {
	setup := Llama70B()
	kinds := append(EndToEndSystems(), SysVLLMPriority, SysFastServe, SysVTC)
	for _, kind := range kinds {
		sys, err := Build(kind, setup, BuildOptions{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if sys.Name() != string(kind) {
			t.Errorf("built %q for kind %q", sys.Name(), kind)
		}
	}
	if _, err := Build("nope", setup, BuildOptions{}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBuildSystemsRunEndToEnd(t *testing.T) {
	setup := Llama70B()
	gen, err := NewGenerator(setup, workload.DefaultMix, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	ts := workload.PoissonTrace(mathutil.NewRNG(11), 2.0, 10)
	reqs := gen.FromTimestamps(ts)
	if len(reqs) == 0 {
		t.Fatal("empty trace")
	}
	for _, kind := range []SystemKind{SysAdaServe, SysVLLM, SysVLLMSpec4} {
		sum, err := runOne(kind, setup, reqs, 1, BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if sum.Finished != len(reqs) {
			t.Fatalf("%s finished %d of %d", kind, sum.Finished, len(reqs))
		}
	}
}

func TestRunOneIsolatesRequestState(t *testing.T) {
	setup := Llama70B()
	gen, _ := NewGenerator(setup, workload.DefaultMix, 1.0, 7)
	reqs := gen.FromTimestamps([]float64{0, 0.1, 0.2})
	if _, err := runOne(SysVLLM, setup, reqs, 1, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	// The caller's requests must be untouched (copies were served).
	for _, r := range reqs {
		if r.Phase != request.Queued || r.OutputLen() != 0 {
			t.Fatal("runOne mutated shared requests")
		}
	}
}

func TestFigure15BreakdownShape(t *testing.T) {
	sum, err := Figure15(Llama70B(), RunOptions{Seed: 1, Duration: 15})
	if err != nil {
		t.Fatal(err)
	}
	share := sum.Breakdown.SchedulingShare()
	if share <= 0 || share > 0.01 {
		t.Fatalf("scheduling share %.3f%% outside (0, 1%%]", 100*share)
	}
	if sum.Breakdown.Speculation <= 0 || sum.Breakdown.Verification <= 0 {
		t.Fatal("missing speculation/verification components")
	}
}

func TestFigure1RunsBaselines(t *testing.T) {
	pts, err := Figure1(Llama70B(), RunOptions{Seed: 1, Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Figure1Systems()) {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Sum.Requests == 0 {
			t.Fatalf("%s served nothing", p.System)
		}
		// Figure 1's workload holds only categories 1 and 2.
		if cs, ok := p.Sum.PerCategory[request.Summarization]; ok && cs.Requests > 0 {
			t.Fatalf("%s served summarization requests in a 2-category workload", p.System)
		}
	}
}

func TestFigure13and14TraceShape(t *testing.T) {
	pts, err := Figure13and14(Llama70B(), RunOptions{
		Seed: 1, Duration: 30,
		Systems: []SystemKind{SysAdaServe, SysVLLM},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	var ada, vllm *metrics.Summary
	for _, p := range pts {
		switch p.System {
		case SysAdaServe:
			ada = p.Sum
		case SysVLLM:
			vllm = p.Sum
		}
	}
	// Figure 14's headline: AdaServe tops vLLM under the bursty trace.
	if ada.Attainment() <= vllm.Attainment() {
		t.Fatalf("AdaServe %.2f <= vLLM %.2f under synthetic trace",
			ada.Attainment(), vllm.Attainment())
	}
}

func TestRenderSeries(t *testing.T) {
	pts := []Point{
		{System: SysVLLM, X: 1, Sum: &metrics.Summary{System: "vLLM", Requests: 10, Attained: 5}},
		{System: SysVLLM, X: 2, Sum: &metrics.Summary{System: "vLLM", Requests: 10, Attained: 8}},
	}
	out := RenderSeries(pts, "rps", "attainment", func(s *metrics.Summary) float64 {
		return s.Attainment()
	})
	if !strings.Contains(out, "vLLM") || !strings.Contains(out, "0.50") || !strings.Contains(out, "0.80") {
		t.Fatalf("rendered:\n%s", out)
	}
}

func TestRPSSweeps(t *testing.T) {
	l := RPSSweepsForSetup(Llama70B())
	if l[0] != 2.6 || l[len(l)-1] != 4.8 {
		t.Fatalf("Llama sweep %v", l)
	}
	q := RPSSweepsForSetup(Qwen32B())
	if q[0] != 2.4 || q[len(q)-1] != 4.2 {
		t.Fatalf("Qwen sweep %v", q)
	}
}

// smoke-check one tiny Figure 8 cell end to end through the sim package.
func TestFigure8SingleCell(t *testing.T) {
	setup := Llama70B()
	reqs, err := mixedTrace(setup, workload.DefaultMix, 1.0, 3.0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Build(SysAdaServe, setup, BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sys, request.CloneAll(reqs), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Attainment() < 0.5 {
		t.Fatalf("attainment %.2f at light load", res.Summary.Attainment())
	}
}
