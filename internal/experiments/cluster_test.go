package experiments

import (
	"testing"

	"adaserve/internal/cluster"
	"adaserve/internal/mathutil"
	"adaserve/internal/workload"
)

func TestBuildClusterValidates(t *testing.T) {
	setup := Llama70B()
	if _, err := BuildCluster(SysAdaServe, setup, 0, "round-robin", BuildOptions{Seed: 1}); err == nil {
		t.Fatal("zero-replica cluster accepted")
	}
	if _, err := BuildCluster(SysAdaServe, setup, 2, "random", BuildOptions{Seed: 1}); err == nil {
		t.Fatal("unknown router accepted")
	}
	cl, err := BuildCluster(SysAdaServe, setup, 3, "slo-aware", BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 3 {
		t.Fatalf("cluster size %d", cl.Size())
	}
}

func TestClusterRunEndToEnd(t *testing.T) {
	setup := Llama70B()
	gen, err := NewGenerator(setup, workload.DefaultMix, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	ts := workload.PoissonTrace(mathutil.NewRNG(11), 6.0, 10)
	reqs := gen.FromTimestamps(ts)
	cl, err := BuildCluster(SysAdaServe, setup, 2, "slo-aware", BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Run(reqs, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Aggregate.Finished != len(reqs) {
		t.Fatalf("finished %d of %d", res.Summary.Aggregate.Finished, len(reqs))
	}
	if len(res.PerReplica) != 2 {
		t.Fatalf("%d per-replica results", len(res.PerReplica))
	}
	routed := 0
	for _, rr := range res.PerReplica {
		routed += rr.Summary.Requests
	}
	if routed != len(reqs) {
		t.Fatalf("per-replica summaries cover %d of %d", routed, len(reqs))
	}
}

func TestClusterScalingSLOAwareBeatsRoundRobin(t *testing.T) {
	// The acceptance bar for the replica-scaling experiment: at equal
	// per-replica load, the SLO-aware router attains at least as much as
	// round-robin on multi-replica clusters, deterministically under a
	// fixed seed. The trace must be long enough (120 s, the adaserve-bench
	// default) to develop the sustained overload bursts the island
	// mechanism targets; a 30 s trace is all cold-start ramp.
	if testing.Short() {
		t.Skip("full replica-scaling experiment in -short mode")
	}
	setup := Llama70B()
	run := func() []ClusterPoint {
		pts, err := ClusterScaling(setup, RunOptions{Seed: 1, Duration: 120})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	pts := run()
	att := func(pts []ClusterPoint, n int, router string) float64 {
		for _, p := range pts {
			if p.Replicas == n && p.Router == router {
				return p.Sum.Attainment()
			}
		}
		t.Fatalf("missing point n=%d router=%s", n, router)
		return 0
	}
	// The SLO-aware island mechanism needs n >= 3 replicas; n = 2 degrades
	// to per-class balancing, which is statistically equivalent to
	// round-robin, so the comparison is asserted at n = 3, 4 and 8.
	for _, n := range []int{3, 4, 8} {
		rr, slo := att(pts, n, "round-robin"), att(pts, n, "slo-aware")
		if slo < rr {
			t.Errorf("n=%d: slo-aware attainment %.3f below round-robin %.3f", n, slo, rr)
		}
	}
	// Single replica: routing cannot matter, every policy must agree.
	base := att(pts, 1, "round-robin")
	for _, r := range []string{"least-loaded", "slo-aware"} {
		if got := att(pts, 1, r); got != base {
			t.Errorf("n=1: %s attainment %.3f != round-robin %.3f", r, got, base)
		}
	}
	// Determinism: a second run must reproduce every attainment exactly.
	pts2 := run()
	for i := range pts {
		if pts[i].Sum.Attainment() != pts2[i].Sum.Attainment() {
			t.Errorf("n=%d router=%s not deterministic: %.6f vs %.6f",
				pts[i].Replicas, pts[i].Router, pts[i].Sum.Attainment(), pts2[i].Sum.Attainment())
		}
	}
}
