package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"adaserve/internal/adaptive"
	"adaserve/internal/cluster"
	"adaserve/internal/mathutil"
	"adaserve/internal/obs"
	"adaserve/internal/serve"
	"adaserve/internal/trace"
	"adaserve/internal/workload"
)

// spanCell runs the fixed span-golden cell — a 1P1D disaggregated AdaServe
// pair behind the slo-aware router, flash-crowd spike arrivals, the
// closed-loop controller with its admission gate on — and returns the
// recorder's Perfetto export. The cell crosses every span kind at once:
// queued/prefill/kv-transfer/decode phases from the role split, plus
// degrade and reject annotations from the gate under the burst.
func spanCell(setup ModelSetup) ([]byte, error) {
	const duration = 4
	roles, err := cluster.ParseSplit("1P1D")
	if err != nil {
		return nil, err
	}
	cl, err := BuildDisagg(SysAdaServe, setup, roles, "slo-aware", BuildOptions{Seed: 1})
	if err != nil {
		return nil, err
	}
	cfg, err := AdaptiveConfig("adaptive+admission", duration)
	if err != nil {
		return nil, err
	}
	ctrl, err := adaptive.New(cl, *cfg)
	if err != nil {
		return nil, err
	}
	srv, err := serve.NewServer(cl, serve.Options{Adaptive: ctrl})
	if err != nil {
		return nil, err
	}
	sr := obs.NewSpanRecorder()
	srv.Subscribe(sr)
	rate, maxRate, err := workload.RateProfile("spike", AdaptiveMeanRPS(setup), duration)
	if err != nil {
		return nil, err
	}
	gen, err := NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(1, 0xada))
	if err != nil {
		return nil, err
	}
	src, err := serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(1, 0x7a)), rate, maxRate, duration)
	if err != nil {
		return nil, err
	}
	if _, err := srv.Run(src); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := sr.WriteTrace(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// spanGrid runs four copies of the span cell through the experiment runner
// at the given parallelism and requires them byte-identical: worker
// interleaving must not leak into any recorder's export.
func spanGrid(t *testing.T, parallel int) []byte {
	t.Helper()
	setup := Llama70B()
	outs, err := runJobs(parallel, 4, func(int) ([]byte, error) {
		return spanCell(setup)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(outs); i++ {
		if !bytes.Equal(outs[0], outs[i]) {
			t.Fatalf("span export differs between grid cells 0 and %d at parallel %d", i, parallel)
		}
	}
	return outs[0]
}

// TestGoldenSpanTimelines pins the span-timeline export byte-for-byte: the
// fixture certifies phase boundaries (including the disaggregated
// KV-transfer windows), mark placement and gate annotations all stay
// deterministic. Any intentional change to span assembly must regenerate
// with -update and justify the diff in review.
func TestGoldenSpanTimelines(t *testing.T) {
	got := spanGrid(t, 1)
	path := filepath.Join("testdata", "golden", "spans.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		gl := bytes.Split(got, []byte("\n"))
		wl := bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("span golden mismatch at line %d:\n got: %s\nwant: %s\n(regenerate with -update if intentional)",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("span golden mismatch: output has %d lines, fixture %d", len(gl), len(wl))
	}
	sanitySpanExport(t, got)
}

// sanitySpanExport spot-checks the pinned export actually exercises the
// span taxonomy the cell was built to cross.
func sanitySpanExport(t *testing.T, got []byte) {
	t.Helper()
	for _, want := range []string{
		`"name":"queued"`, `"name":"prefill"`, `"name":"kv-transfer"`,
		`"name":"decode"`, `"name":"commit"`, `"name":"first-token"`,
	} {
		if !bytes.Contains(got, []byte(want)) {
			t.Errorf("span golden never exercises %s", want)
		}
	}
}

// TestSpanTimelineParallelDeterminism reruns the span grid at -parallel 8
// and requires the export identical to the sequential one.
func TestSpanTimelineParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	a := spanGrid(t, 1)
	b := spanGrid(t, 8)
	if !bytes.Equal(a, b) {
		t.Fatal("span export differs between -parallel 1 and 8")
	}
}

// TestSpanReplayIdentity closes the observability loop over trace replay:
// a fixed-seed open-loop run exports its arrival trace, and every replay of
// that trace — including one round-tripped through the file format — must
// reassemble byte-identical span timelines: same phases, same marks, same
// outcomes. (A replay is fully determined by the trace file, which
// re-derives request content seeds from the file header; the generating
// run's own seeds differ by design, so the identity pinned here is
// replay ≡ replay, the property trace-driven debugging relies on.)
func TestSpanReplayIdentity(t *testing.T) {
	setup := Llama70B()
	const duration = 8
	runOnce := func(src serve.Source) (*trace.Trace, []byte) {
		t.Helper()
		cl, err := BuildCluster(SysAdaServe, setup, 2, "slo-aware", BuildOptions{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewServer(cl, serve.Options{})
		if err != nil {
			t.Fatal(err)
		}
		exp := trace.NewExporter(trace.ExportOptions{Seed: 1, Source: "export:spans"})
		sr := obs.NewSpanRecorder()
		srv.Subscribe(exp)
		srv.Subscribe(sr)
		if _, err := srv.Run(src); err != nil {
			t.Fatal(err)
		}
		tr, err := exp.Trace()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sr.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return tr, buf.Bytes()
	}

	gen, err := NewGenerator(setup, workload.DefaultMix, 1.0, mathutil.Hash2(1, 0xada))
	if err != nil {
		t.Fatal(err)
	}
	rate, maxRate, err := workload.RateProfile("spike", AdaptiveMeanRPS(setup), duration)
	if err != nil {
		t.Fatal(err)
	}
	open, err := serve.NewOpenLoop(gen, mathutil.NewRNG(mathutil.Hash2(1, 0x7a)), rate, maxRate, duration)
	if err != nil {
		t.Fatal(err)
	}
	exported, origSpans := runOnce(open)
	if len(origSpans) == 0 {
		t.Fatal("open-loop run recorded no spans")
	}

	replayFrom := func(tr *trace.Trace) (*trace.Trace, []byte) {
		t.Helper()
		src, err := trace.NewSource(tr)
		if err != nil {
			t.Fatal(err)
		}
		return runOnce(src)
	}
	replayTrace, firstSpans := replayFrom(exported)

	// Round-trip the export through its file form, as a CLI user would.
	parsed, err := trace.Parse(exported.Format())
	if err != nil {
		t.Fatalf("exported trace does not parse: %v", err)
	}
	_, secondSpans := replayFrom(parsed)
	if !bytes.Equal(firstSpans, secondSpans) {
		t.Fatal("span timelines differ between two replays of the same trace")
	}
	if replayTrace.Format() != exported.Format() {
		t.Fatal("replay re-export differs from the original trace")
	}
}
