package experiments

import (
	"reflect"
	"testing"

	"adaserve/internal/cluster"
	"adaserve/internal/request"
	"adaserve/internal/workload"
)

// TestDisaggEndToEnd runs a real (engine-backed) disaggregated cluster over
// a short trace and checks the migration pipeline end to end: every request
// finishes, every request migrates exactly once, prefill replicas never
// decode, and the transfer accounting matches the trace's prompt volume.
func TestDisaggEndToEnd(t *testing.T) {
	setup := Llama70B()
	reqs, err := mixedTrace(setup, workload.DefaultMix, 1.0, 8, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	roles, err := cluster.ParseSplit("1P1D")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := BuildDisagg(SysAdaServe, setup, roles, "least-loaded", BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	run := request.CloneAll(reqs)
	res, err := cl.Run(run, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Aggregate.Finished != len(run) {
		t.Fatalf("finished %d of %d", res.Summary.Aggregate.Finished, len(run))
	}
	if res.Summary.Transfer.Count != len(run) {
		t.Fatalf("%d transfers for %d requests", res.Summary.Transfer.Count, len(run))
	}
	var promptBytes float64
	for _, r := range run {
		promptBytes += setup.Target.KVBytesPerToken() * float64(r.PromptLen)
	}
	if res.Summary.Transfer.Bytes != promptBytes {
		t.Fatalf("transfer bytes %.0f, want %.0f (prompt KV volume)", res.Summary.Transfer.Bytes, promptBytes)
	}
	reps := cl.Replicas()
	if reps[0].Migrated() != 0 || reps[1].Routed() != 0 {
		t.Fatal("role filtering violated: arrivals on decode replica or migrations on prefill replica")
	}
	// The prefill replica must have spent zero GPU time in decode/verify.
	pre := res.PerReplica[0].Summary.Breakdown
	if pre.Verification != 0 || pre.Speculation != 0 {
		t.Fatalf("prefill replica spent decode time: %+v", pre)
	}
	if pre.Prefill <= 0 {
		t.Fatal("prefill replica did no prefill work")
	}
	dec := res.PerReplica[1].Summary.Breakdown
	if dec.Prefill != 0 {
		t.Fatalf("decode replica spent prefill time: %+v", dec)
	}
}

// TestDisaggDeterministicAcrossParallel is the acceptance guarantee for the
// disagg experiment: the grid run with 1 worker and with 8 workers produces
// identical, identically-ordered results.
func TestDisaggDeterministicAcrossParallel(t *testing.T) {
	setup := Llama70B()
	opts := RunOptions{Seed: 1, Duration: 6, Parallel: 1}
	seq, err := Disaggregation(setup, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallel = 8
	par, err := Disaggregation(setup, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("point count differs: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Split != par[i].Split || seq[i].Router != par[i].Router || seq[i].Mix != par[i].Mix {
			t.Fatalf("point %d coordinates differ: %+v vs %+v", i, seq[i], par[i])
		}
		if !reflect.DeepEqual(seq[i].Sum, par[i].Sum) {
			t.Fatalf("point %d (%s/%s/%s) differs between -parallel 1 and 8",
				i, seq[i].Split, seq[i].Router, seq[i].Mix)
		}
	}
}

// TestDisaggSplitBeatsColocatedTTFT pins the experiment's headline: at equal
// aggregate load, at least one prefill/decode split beats the colocated
// 4-replica fleet on TTFT attainment (dedicated prefill replicas serve
// prompts monolithically instead of drip-feeding chunks between decode
// iterations).
func TestDisaggSplitBeatsColocatedTTFT(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell cluster grid")
	}
	setup := Llama70B()
	pts, err := Disaggregation(setup, RunOptions{Seed: 1, Duration: 30, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	colocated := map[string]float64{} // router -> TTFT attainment on the default mix
	bestSplit := map[string]float64{}
	for _, p := range pts {
		if p.Mix != "default" {
			continue
		}
		ttft := p.Sum.TTFTAttainment()
		if p.Split == "colocated" {
			colocated[p.Router] = ttft
		} else if ttft > bestSplit[p.Router] {
			bestSplit[p.Router] = ttft
		}
	}
	won := false
	for router, base := range colocated {
		if bestSplit[router] > base {
			won = true
		}
	}
	if !won {
		t.Fatalf("no P/D split beat colocated on TTFT attainment: colocated %v vs best split %v",
			colocated, bestSplit)
	}
}
