package experiments

import (
	"reflect"
	"testing"
)

// prefixGoldenRows runs the prefix sweep and reduces it to golden rows. The
// caching mode lands in the Config column ("off"/"on").
func prefixGoldenRows(t *testing.T, parallel int) []goldenRow {
	t.Helper()
	pts, err := PrefixCaching(Llama70B(), RunOptions{Seed: 1, Duration: 6, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	var rows []goldenRow
	for _, p := range pts {
		s := p.Sum
		mode := "off"
		if p.Cached {
			mode = "on"
		}
		row := goldenRow{
			Experiment: "prefix", Router: p.Router, Config: mode,
			Requests: s.Aggregate.Requests, Finished: s.Aggregate.Finished,
			Attainment: s.Attainment(), TTFTAttainment: s.TTFTAttainment(),
			Goodput: s.Goodput(), Throughput: s.Aggregate.Throughput,
			MeanAccepted: s.Aggregate.MeanAcceptedPerStep,
			P50TPOT:      s.Aggregate.P50TPOT(), P99TPOT: s.Aggregate.P99TPOT(), P999TPOT: s.Aggregate.P999TPOT(),
			MaxTTFT: s.Aggregate.MaxTTFT,
		}
		if s.Prefix != nil {
			row.HitRate = s.Prefix.HitRate()
			row.SavedTokens = s.Prefix.HitTokens
			row.PrefixEvict = s.Prefix.Evictions
			row.Reloads = s.Prefix.Reloads
			row.ReloadStall = s.Prefix.ReloadStallTime
		}
		rows = append(rows, row)
	}
	return rows
}

// TestGoldenPrefixGrid pins the prefix experiment the same way bench.json
// pins the end-to-end grid: the prefix-off rows certify the caching-disabled
// path, and the cached rows pin every hit/eviction/reload count — a changed
// count is a semantic change to the cache or the affinity router and must be
// justified alongside a fixture regeneration.
func TestGoldenPrefixGrid(t *testing.T) {
	compareGolden(t, "prefix.json", prefixGoldenRows(t, 4))
}

// TestPrefixParallelDeterminism reruns the grid sequentially and with more
// workers than cells: every cell is share-nothing, so worker count must not
// change a single byte of the result.
func TestPrefixParallelDeterminism(t *testing.T) {
	seq := prefixGoldenRows(t, 1)
	par := prefixGoldenRows(t, 8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("prefix grid differs between -parallel 1 and -parallel 8")
	}
}

// TestPrefixAffinityWins asserts the experiment's headline: with caching on,
// prefix-affinity routing beats both load-signal baselines on TTFT
// attainment at equal offered load, and actually hits the cache doing it.
func TestPrefixAffinityWins(t *testing.T) {
	pts, err := PrefixCaching(Llama70B(), RunOptions{Seed: 1, Duration: 6, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	ttft := map[string]float64{}
	for _, p := range pts {
		if !p.Cached {
			continue
		}
		ttft[p.Router] = p.Sum.TTFTAttainment()
		if p.Sum.Prefix == nil {
			t.Fatalf("router %s: cached run has no prefix summary", p.Router)
		}
		if p.Sum.Prefix.Hits == 0 {
			t.Errorf("router %s: cached run never hit the prefix cache", p.Router)
		}
	}
	aff := ttft["prefix-affinity"]
	if aff <= ttft["round-robin"] {
		t.Errorf("prefix-affinity TTFT attainment %.3f not above round-robin %.3f", aff, ttft["round-robin"])
	}
	if aff <= ttft["least-loaded"] {
		t.Errorf("prefix-affinity TTFT attainment %.3f not above least-loaded %.3f", aff, ttft["least-loaded"])
	}
}
