package experiments

import (
	"strings"
	"testing"

	"adaserve/internal/metrics"
)

// renderSum builds a small but non-degenerate cluster summary for the
// render tests: enough populated fields that every column formats a real
// number instead of a guard-path zero.
func renderSum(requests, attained int, goodput float64) *metrics.ClusterSummary {
	return &metrics.ClusterSummary{
		Aggregate: &metrics.Summary{
			Requests: requests, Attained: attained, TTFTAttained: attained,
			Goodput: goodput,
		},
		Replicas: []*metrics.Summary{
			{Requests: requests - requests/3},
			{Requests: requests / 3},
		},
		Transfer: metrics.TransferStats{Count: 5, Bytes: 1e9, Time: 0.1},
		Autoscale: &metrics.AutoscaleSummary{
			GoodTokens: int(goodput * 10), ReplicaSeconds: 20,
			ScaleUps: 2, ScaleDowns: 1,
		},
	}
}

func TestRenderAutoscale(t *testing.T) {
	pts := []AutoscalePoint{
		{Config: "static", Profile: "spike", Router: "round-robin", Sum: renderSum(90, 60, 500)},
		{Config: "target-queue", Profile: "spike", Router: "round-robin", Sum: renderSum(90, 80, 620)},
		{Config: "static", Profile: "diurnal", Router: "least-loaded", Sum: renderSum(120, 100, 550)},
	}
	out := RenderAutoscale(pts)
	for _, want := range []string{
		"== profile spike ==", "== profile diurnal ==",
		"round-robin", "least-loaded", "static", "target-queue",
		"goodput / replica-second", "attainment %", "replica-seconds", "scale events",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	// 620 good tokens/s over 20 replica-seconds of a 10s-normalized run.
	if !strings.Contains(out, "310.00") {
		t.Fatalf("goodput-per-replica-second cell missing:\n%s", out)
	}
}

func TestRenderClusterScaling(t *testing.T) {
	pts := []ClusterPoint{
		{Replicas: 4, Router: "slo-aware", Sum: renderSum(100, 75, 400)},
		{Replicas: 1, Router: "slo-aware", Sum: renderSum(25, 20, 110)},
		{Replicas: 1, Router: "round-robin", Sum: renderSum(25, 15, 90)},
	}
	out := RenderClusterScaling(pts)
	for _, want := range []string{"replicas", "slo-aware", "round-robin", "attainment %", "goodput tok/s", "request imbalance", "75.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Replica counts must render sorted regardless of point order.
	if strings.Index(out, "\n1 ") > strings.Index(out, "\n4 ") {
		t.Fatalf("replica rows not sorted:\n%s", out)
	}
}

func TestRenderDisagg(t *testing.T) {
	pts := []DisaggPoint{
		{Split: "3p1d", Router: "slo-aware", Mix: "default", Sum: renderSum(80, 70, 480)},
		{Split: "2p2d", Router: "slo-aware", Mix: "default", Sum: renderSum(80, 64, 510)},
		{Split: "3p1d", Router: "least-loaded", Mix: "prefill-heavy", Sum: renderSum(60, 40, 300)},
	}
	out := RenderDisagg(pts)
	for _, want := range []string{
		"== mix default ==", "== mix prefill-heavy ==",
		"3p1d", "2p2d", "TTFT attainment %", "TPOT attainment %",
		"goodput tok/s", "KV transfer mean ms", "20.00",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestParseSystem(t *testing.T) {
	for _, k := range KnownSystems() {
		got, err := ParseSystem(string(k))
		if err != nil || got != k {
			t.Fatalf("ParseSystem(%q) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseSystem("no-such-system"); err == nil || !strings.Contains(err.Error(), "unknown system") {
		t.Fatalf("typo accepted: %v", err)
	}
}

func TestRenderPrefix(t *testing.T) {
	on := renderSum(72, 72, 360)
	on.Prefix = &metrics.PrefixSummary{
		Lookups: 72, Hits: 60, HitTokens: 87008,
		Evictions: 4, Reloads: 2, ReloadedTokens: 32,
	}
	pts := []PrefixPoint{
		{Router: "least-loaded", Cached: false, Sum: renderSum(72, 44, 310)},
		{Router: "prefix-affinity", Cached: true, Sum: on},
	}
	out := RenderPrefix(pts)
	for _, want := range []string{
		"router", "prefix", "hit%", "savedTok",
		"least-loaded", "off", "prefix-affinity", "on",
		"87008", // tokens saved on the cached row
		"83.3",  // 60/72 hit rate
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
