package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"adaserve/internal/metrics"
	"adaserve/internal/request"
)

// runJobs executes n independent jobs on a pool of `parallel` worker
// goroutines and returns their results in job order — the caller observes
// exactly the sequence a sequential loop would produce, regardless of
// completion order or worker count.
//
// Determinism contract: every job must be self-contained (build its own
// engines, RNGs and request copies — share-nothing, as runOne does), so the
// only cross-job data are read-only inputs. Workers pull job indices from a
// channel; results land in a slice indexed by job, and the first error (by
// job index, not completion time) is returned.
func runJobs[R any](parallel, n int, run func(int) (R, error)) ([]R, error) {
	results := make([]R, n)
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			r, err := run(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	jobs := make(chan int)
	// failed short-circuits the grid once any job errors: in-flight jobs
	// finish, queued ones are skipped — matching the sequential path's
	// stop-at-first-error behavior instead of burning the whole grid.
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(parallel)
	for w := 0; w < parallel; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue
				}
				results[i], errs[i] = run(i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// cell is one grid point of a figure sweep: a system on a workload trace,
// tagged with its sweep coordinate. Cells are enumerated up front (trace
// synthesis is cheap and sequential); the simulations — the expensive part
// — fan out across workers. The trace is a shared read-only template; each
// run clones it (runOne).
type cell struct {
	kind  SystemKind
	reqs  []*request.Request
	x     float64
	label string
}

// runCells fans the cells out across opts.Parallel workers and reassembles
// the Points in cell order. Errors carry the failing cell's coordinates.
// Sweeps needing per-cell BuildOptions (the ablation grid) use runJobs
// directly.
func runCells(setup ModelSetup, opts RunOptions, cells []cell) ([]Point, error) {
	sums, err := runJobs(opts.Parallel, len(cells), func(i int) (*metrics.Summary, error) {
		c := cells[i]
		sum, err := runOne(c.kind, setup, c.reqs, opts.Seed, BuildOptions{})
		if err != nil {
			return nil, fmt.Errorf("%s %s=%g: %w", c.kind, c.label, c.x, err)
		}
		return sum, nil
	})
	if err != nil {
		return nil, err
	}
	pts := make([]Point, len(cells))
	for i, c := range cells {
		pts[i] = Point{System: c.kind, X: c.x, Label: c.label, Sum: sums[i]}
	}
	return pts, nil
}
