package sched

import (
	"fmt"

	"adaserve/internal/engine"
	"adaserve/internal/toktree"
)

// VLLMSpec is the vLLM-Spec(k) baseline: continuous batching plus static
// sequence speculation. Each decode iteration the draft model proposes a
// fixed-length chain of k tokens per request (no tree, no SLO awareness,
// no load adaptation), which the target verifies in one pass.
type VLLMSpec struct {
	base
	// K is the static speculation length.
	K int

	// Per-iteration scratch reused across Iterate calls.
	items []engine.VerifyItem
	sels  []*toktree.Selection
}

// NewVLLMSpec constructs the baseline with speculation length k.
func NewVLLMSpec(cfg Config, k int) (*VLLMSpec, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("sched: vLLM-Spec needs k >= 1, got %d", k)
	}
	if cfg.Engine.Draft() == nil {
		return nil, fmt.Errorf("sched: vLLM-Spec requires a draft model")
	}
	return &VLLMSpec{base: b, K: k}, nil
}

// Name implements System.
func (v *VLLMSpec) Name() string { return fmt.Sprintf("vLLM-Spec (%d)", v.K) }

// Iterate implements System.
func (v *VLLMSpec) Iterate(now float64) IterationStats {
	v.finish()
	v.admitFIFO(now)

	if st, ok := v.prefillWhole(now); ok {
		return st
	}

	decode := v.pool.DecodingRequests()
	if len(decode) == 0 {
		return IterationStats{Idle: true}
	}
	markFirstDecode(decode, now)

	spec, err := v.cfg.Engine.SpeculateBeams(decode, v.K, 1)
	if err != nil {
		panic(err)
	}
	v.items = v.items[:0]
	for len(v.sels) < len(decode) {
		v.sels = append(v.sels, &toktree.Selection{})
	}
	for i, r := range decode {
		sel := v.sels[i]
		sel.Reset(spec.Trees[i])
		// Static speculation verifies the whole chain unconditionally.
		for id := 1; id < spec.Trees[i].Size(); id++ {
			sel.Add(id)
		}
		v.items = append(v.items, engine.VerifyItem{Req: r, Sel: sel})
	}
	ver := v.cfg.Engine.VerifyTrees(v.items)
	st := IterationStats{
		Elapsed:    spec.GPUTime + ver.GPUTime + v.cfg.SchedOverhead,
		SchedCPU:   v.cfg.SchedOverhead,
		SpecTime:   spec.GPUTime,
		VerifyTime: ver.GPUTime,
	}
	end := now + st.Elapsed
	for i, r := range decode {
		st.TokensCommitted += engine.CommitVerify(r, ver.Results[i], end)
	}
	return st
}
