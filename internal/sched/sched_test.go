package sched

import (
	"testing"

	"adaserve/internal/engine"
	"adaserve/internal/gpu"
	"adaserve/internal/kvcache"
	"adaserve/internal/lm"
	"adaserve/internal/request"
)

// testConfig builds a small but realistic substrate shared by the scheduler
// tests: Llama-70B-on-4xA100 cost model with the calibrated synthetic LM.
func testConfig(t *testing.T) Config {
	t.Helper()
	target := lm.MustSyntheticLM("t", 1, 4096, 16, 3.2, 0.02)
	draft := lm.MustDraftLM("d", target, 0.88, 2)
	eng := engine.MustNew(engine.Config{
		Target: target, Draft: draft,
		TargetCost: gpu.MustCostModel(gpu.A100, gpu.Llama70B, 4),
		DraftCost:  gpu.MustCostModel(gpu.A100, gpu.Llama1B, 1),
		Seed:       3,
	})
	return Config{
		Engine:           eng,
		KV:               kvcache.MustNew(kvcache.ConfigForTokens(200000, 16)),
		MaxBatch:         64,
		MaxPrefillTokens: 2048,
		SchedOverhead:    30e-6,
	}
}

// enqueue creates a request and puts it in the system's pool.
func enqueue(sys System, id int, cat request.Category, slo float64, arrival float64, prompt, maxNew int) *request.Request {
	r := request.New(id, cat, slo, arrival, prompt, maxNew, uint64(id)*977+5)
	sys.Pool().Enqueue(r)
	return r
}

// drain iterates until all requests complete or maxIters is hit, returning
// the total simulated time.
func drain(t *testing.T, sys System, maxIters int) float64 {
	t.Helper()
	now := 0.0
	for i := 0; i < maxIters; i++ {
		st := sys.Iterate(now)
		if st.Idle {
			if sys.Pool().NumWaiting() == 0 && sys.Pool().NumRunning() == 0 {
				return now
			}
			t.Fatalf("idle with %d waiting / %d running", sys.Pool().NumWaiting(), sys.Pool().NumRunning())
		}
		now += st.Elapsed
	}
	t.Fatalf("did not drain in %d iterations", maxIters)
	return now
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(t)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Engine = nil
	if bad.Validate() == nil {
		t.Error("nil engine accepted")
	}
	bad = good
	bad.KV = nil
	if bad.Validate() == nil {
		t.Error("nil KV accepted")
	}
	bad = good
	bad.MaxBatch = 0
	if bad.Validate() == nil {
		t.Error("zero batch accepted")
	}
	bad = good
	bad.MaxPrefillTokens = 0
	if bad.Validate() == nil {
		t.Error("zero prefill tokens accepted")
	}
	bad = good
	bad.SchedOverhead = -1
	if bad.Validate() == nil {
		t.Error("negative overhead accepted")
	}
}

func TestVLLMLifecycle(t *testing.T) {
	sys, err := NewVLLM(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "vLLM" {
		t.Fatalf("name %q", sys.Name())
	}
	r := enqueue(sys, 1, request.Chat, 0.05, 0, 64, 8)

	// First iteration must be a prefill pass.
	st := sys.Iterate(0)
	if st.PrefillTime <= 0 || st.TokensCommitted != 0 {
		t.Fatalf("first iteration should prefill: %+v", st)
	}
	if r.Phase != request.Decoding {
		t.Fatalf("phase %s after prefill", r.Phase)
	}

	// Then decode: exactly one token per iteration.
	now := st.Elapsed
	st = sys.Iterate(now)
	if st.TokensCommitted != 1 {
		t.Fatalf("decode committed %d tokens", st.TokensCommitted)
	}
	if r.VerifySteps != 1 || r.OutputLen() != 1 {
		t.Fatal("request not advanced")
	}
	if r.FirstDecodeTime != now {
		t.Fatal("first decode time not stamped")
	}

	drain(t, sys, 100)
	if r.Phase != request.Done || r.OutputLen() != 8 {
		t.Fatalf("final phase %s len %d", r.Phase, r.OutputLen())
	}
	if sys.Pool().NumDone() != 1 {
		t.Fatal("request not retired")
	}
}

func TestVLLMUniformLatencyAcrossBatch(t *testing.T) {
	sys, err := NewVLLM(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	a := enqueue(sys, 1, request.Coding, 0.04, 0, 32, 12)
	b := enqueue(sys, 2, request.Summarization, 0.15, 0, 32, 12)
	drain(t, sys, 200)
	// Continuous batching: both requests decode in the same iterations, so
	// their average TPOTs are essentially identical (uniform service).
	ta, tb := a.AvgTPOT(a.DoneTime), b.AvgTPOT(b.DoneTime)
	if diff := ta - tb; diff > 0.002 || diff < -0.002 {
		t.Fatalf("uniform batching violated: %.1fms vs %.1fms", 1e3*ta, 1e3*tb)
	}
}

func TestVLLMPrefillPriority(t *testing.T) {
	sys, err := NewVLLM(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	enqueue(sys, 1, request.Chat, 0.05, 0, 64, 4)
	sys.Iterate(0) // prefill 1

	// A new arrival's prompt must run before further decodes.
	enqueue(sys, 2, request.Chat, 0.05, 0.01, 64, 4)
	st := sys.Iterate(0.01)
	if st.PrefillTime <= 0 {
		t.Fatal("new prompt should preempt decode (prefill priority)")
	}
}

func TestVLLMAdmissionCaps(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBatch = 2
	sys, err := NewVLLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		enqueue(sys, i, request.Chat, 0.05, 0, 32, 4)
	}
	sys.Iterate(0)
	if sys.Pool().NumRunning() > 2 {
		t.Fatalf("running %d exceeds MaxBatch 2", sys.Pool().NumRunning())
	}
	drain(t, sys, 300)
}

func TestVLLMKVAdmissionControl(t *testing.T) {
	cfg := testConfig(t)
	// Tiny KV: only one small request fits at a time.
	cfg.KV = kvcache.MustNew(kvcache.ConfigForTokens(200, 16))
	sys, err := NewVLLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enqueue(sys, 1, request.Chat, 0.05, 0, 100, 8)
	enqueue(sys, 2, request.Chat, 0.05, 0, 100, 8)
	sys.Iterate(0)
	if sys.Pool().NumRunning() != 1 {
		t.Fatalf("running %d, want 1 (KV-limited)", sys.Pool().NumRunning())
	}
	drain(t, sys, 300)
	if sys.Pool().NumDone() != 2 {
		t.Fatal("second request never served after KV freed")
	}
}

func TestVLLMPriorityTrimsBatch(t *testing.T) {
	cfg := testConfig(t)
	sys, err := NewVLLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.PriorityAware = true
	if sys.Name() != "vLLM + Priority" {
		t.Fatalf("name %q", sys.Name())
	}
	// Decode latency is memory-bound-flat in batch size, so the trim binds
	// only when the urgent SLO sits at (or below) the baseline itself —
	// then every iteration must run the urgent request alone.
	base := cfg.Engine.TargetCost().BaselineLatency(512)
	urgent := enqueue(sys, 1, request.Coding, base*0.95, 0, 32, 6)
	relaxedA := enqueue(sys, 2, request.Summarization, 0.5, 0, 2048, 6)
	relaxedB := enqueue(sys, 3, request.Summarization, 0.5, 0, 2048, 6)
	for i := 0; i < 400; i++ {
		st := sys.Iterate(float64(i))
		if st.Idle {
			break
		}
		_ = st
	}
	_ = urgent
	if relaxedA.PreemptCount+relaxedB.PreemptCount == 0 {
		t.Fatal("priority variant never trimmed the relaxed requests")
	}
}

func TestSarathiTokenBudget(t *testing.T) {
	cfg := testConfig(t)
	sys, err := NewSarathi(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "Sarathi-Serve" {
		t.Fatalf("name %q", sys.Name())
	}
	// A 500-token prompt must be chunked: no single iteration may process
	// more than the 64-token budget.
	r := enqueue(sys, 1, request.Summarization, 0.15, 0, 500, 4)
	iters := 0
	now := 0.0
	for r.Phase != request.Decoding {
		before := r.PrefillDone
		st := sys.Iterate(now)
		now += st.Elapsed
		if got := r.PrefillDone - before; got > 64 {
			t.Fatalf("chunk of %d exceeds budget", got)
		}
		iters++
		if iters > 50 {
			t.Fatal("prefill did not finish")
		}
	}
	if iters < 500/64 {
		t.Fatalf("prompt finished in %d iterations, impossible under budget", iters)
	}
	drain(t, sys, 200)
}

func TestSarathiCoBatchesDecodeAndPrefill(t *testing.T) {
	sys, err := NewSarathi(testConfig(t), 64)
	if err != nil {
		t.Fatal(err)
	}
	a := enqueue(sys, 1, request.Chat, 0.05, 0, 32, 20)
	// Warm up until a is decoding.
	now := 0.0
	for a.Phase != request.Decoding {
		st := sys.Iterate(now)
		now += st.Elapsed
	}
	// Inject a long prompt; the next iteration must BOTH commit a token for
	// a AND advance b's prefill.
	b := enqueue(sys, 2, request.Summarization, 0.15, now, 300, 4)
	st := sys.Iterate(now)
	if st.TokensCommitted < 1 {
		t.Fatal("decode starved by prefill (not co-batched)")
	}
	if b.PrefillDone == 0 {
		t.Fatal("prefill starved by decode (not co-batched)")
	}
}

func TestSarathiDefaultBudget(t *testing.T) {
	sys, err := NewSarathi(testConfig(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sys.TokenBudget != 256 {
		t.Fatalf("default budget %d", sys.TokenBudget)
	}
}

func TestVLLMSpecCommitsMultipleTokens(t *testing.T) {
	sys, err := NewVLLMSpec(testConfig(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "vLLM-Spec (4)" {
		t.Fatalf("name %q", sys.Name())
	}
	r := enqueue(sys, 1, request.Chat, 0.05, 0, 64, 40)
	now := sys.Iterate(0).Elapsed // prefill
	total, iters := 0, 0
	for r.Phase == request.Decoding || r.Phase == request.Prefilling {
		st := sys.Iterate(now)
		now += st.Elapsed
		total += st.TokensCommitted
		iters++
		if st.SpecTime <= 0 {
			t.Fatal("speculative iteration without draft time")
		}
		if iters > 100 {
			t.Fatal("no progress")
		}
	}
	perIter := float64(total) / float64(iters)
	if perIter < 1.5 {
		t.Fatalf("spec(4) committed only %.2f tokens/iteration", perIter)
	}
	if perIter > 5 {
		t.Fatalf("spec(4) committed %.2f tokens/iteration, above k+1", perIter)
	}
}

func TestVLLMSpecValidation(t *testing.T) {
	if _, err := NewVLLMSpec(testConfig(t), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	cfg := testConfig(t)
	eng := engine.MustNew(engine.Config{
		Target:     cfg.Engine.Target(),
		TargetCost: gpu.MustCostModel(gpu.A100, gpu.Llama70B, 4),
		Seed:       3,
	})
	cfg.Engine = eng
	if _, err := NewVLLMSpec(cfg, 4); err == nil {
		t.Fatal("draftless engine accepted")
	}
}

func TestFastServeServesShallowLevelFirst(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBatch = 1 // force the MLFQ ordering to bind
	sys, err := NewFastServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "FastServe" {
		t.Fatalf("name %q", sys.Name())
	}
	old := enqueue(sys, 1, request.Chat, 0.05, 0, 32, 60)
	now := 0.0
	// Let the old request accumulate output (deep MLFQ level).
	for i := 0; i < 20; i++ {
		st := sys.Iterate(now)
		now += st.Elapsed
	}
	if old.OutputLen() < 8 {
		t.Fatalf("warmup produced %d tokens", old.OutputLen())
	}
	// The cap is 1, so the old request must leave the running set before a
	// fresh one can be admitted; preempt it back to the queue to model the
	// FastServe swap, then admit a fresh (level 0) competitor.
	sys.Pool().Preempt(old)
	fresh := enqueue(sys, 2, request.Chat, 0.05, now, 32, 60)
	st := sys.Iterate(now) // admits one; fresh arrived later but is level 0
	now += st.Elapsed
	st = sys.Iterate(now)
	now += st.Elapsed
	_ = st
	// The admission is FIFO, so `old` (earlier arrival) resumes first; but
	// within a shared batch the MLFQ ordering is what the scheduler sorts
	// by. Verify the ordering primitive directly instead of racing
	// admission: a fresh request outranks a deep one.
	if sys.effectiveLevel(fresh, now) >= sys.effectiveLevel(old, now)+1 {
		t.Fatalf("fresh level %d should be shallower than old level %d",
			sys.effectiveLevel(fresh, now), sys.effectiveLevel(old, now))
	}
}

func TestFastServeBatchCapPreempts(t *testing.T) {
	cfg := testConfig(t)
	sys, err := NewFastServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// More decoding requests than the decode cap: deep-level ones must be
	// the preempted tail. Admit everyone under the default cap first, then
	// tighten the cap so the decode set exceeds it.
	for i := 0; i < 6; i++ {
		enqueue(sys, i+1, request.Chat, 0.05, 0, 32, 40)
	}
	st0 := sys.Iterate(0) // admission + prefill
	sys.cfg.MaxBatch = 4
	now := st0.Elapsed
	preempted := false
	for i := 0; i < 60; i++ {
		st := sys.Iterate(now)
		if st.Idle {
			break
		}
		now += st.Elapsed
	}
	for _, r := range append(sys.Pool().Running(), sys.Pool().Done()...) {
		if r.PreemptCount > 0 {
			preempted = true
		}
	}
	if !preempted {
		t.Fatal("batch cap never preempted anyone")
	}
}

func TestFastServeAgingPromotesStarved(t *testing.T) {
	sys, err := NewFastServe(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	r := request.New(1, request.Chat, 0.05, 0, 64, 40, 7)
	r.Commit(make([]lm.Token, 30), 0) // deep level
	r.Phase = request.Decoding
	deep := sys.level(r)
	if deep == 0 {
		t.Fatal("expected a deep base level")
	}
	// Unserved for many quanta: effective level decays to 0.
	if got := sys.effectiveLevel(r, float64(deep+2)*sys.AgingQuantum); got != 0 {
		t.Fatalf("aged level %d, want 0", got)
	}
}

func TestFastServeSkipJoin(t *testing.T) {
	sys, err := NewFastServe(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	short := request.New(1, request.Chat, 0.05, 0, 64, 8, 1)
	long := request.New(2, request.Chat, 0.05, 0, 2048, 8, 2)
	if sys.level(short) >= sys.level(long) {
		t.Fatal("long prompts should skip-join to deeper levels")
	}
}

func TestVTCFavorsUnderservedCategory(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBatch = 1 // force admission contention
	sys, err := NewVTC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "VTC" {
		t.Fatalf("name %q", sys.Name())
	}
	// Serve a chat request fully: the chat counter rises.
	first := enqueue(sys, 1, request.Chat, 0.05, 0, 64, 12)
	now := drain(t, sys, 200)
	if sys.Counter(request.Chat) <= 0 {
		t.Fatal("counter not advanced")
	}
	_ = first
	// Now one chat and one coding request wait; coding (counter 0) must be
	// admitted first despite arriving later.
	chat := enqueue(sys, 2, request.Chat, 0.05, now, 64, 12)
	coding := enqueue(sys, 3, request.Coding, 0.04, now+0.001, 64, 12)
	st := sys.Iterate(now + 0.001)
	now += 0.001 + st.Elapsed
	if coding.Phase == request.Queued {
		t.Fatal("underserved category not admitted first")
	}
	if chat.Phase != request.Queued {
		t.Fatal("overserved category admitted despite contention")
	}
}

func TestAllSystemsDrainMixedWorkload(t *testing.T) {
	builders := map[string]func(Config) (System, error){
		"vllm":     func(c Config) (System, error) { return NewVLLM(c) },
		"sarathi":  func(c Config) (System, error) { return NewSarathi(c, 0) },
		"spec4":    func(c Config) (System, error) { return NewVLLMSpec(c, 4) },
		"fast":     func(c Config) (System, error) { return NewFastServe(c) },
		"vtc":      func(c Config) (System, error) { return NewVTC(c) },
		"adaserve": func(c Config) (System, error) { return NewAdaServe(c, AdaServeOptions{}) },
		"priority": func(c Config) (System, error) {
			v, err := NewVLLM(c)
			if err != nil {
				return nil, err
			}
			v.PriorityAware = true
			return v, nil
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			sys, err := build(testConfig(t))
			if err != nil {
				t.Fatal(err)
			}
			enqueue(sys, 1, request.Coding, 0.04, 0, 64, 12)
			enqueue(sys, 2, request.Chat, 0.05, 0.01, 128, 10)
			enqueue(sys, 3, request.Summarization, 0.15, 0.02, 700, 8)
			drain(t, sys, 2000)
			if sys.Pool().NumDone() != 3 {
				t.Fatalf("%d done", sys.Pool().NumDone())
			}
			for _, r := range sys.Pool().Done() {
				if r.OutputLen() != r.MaxNewTokens {
					t.Fatalf("request %d incomplete: %d/%d", r.ID, r.OutputLen(), r.MaxNewTokens)
				}
			}
		})
	}
}

func TestDecodeModeAdmitsRecompute(t *testing.T) {
	cfg := testConfig(t)
	cfg.Mode = ModeDecode
	sys, err := NewVLLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A decode replica normally rejects requests with prompt work left:
	// their KV is supposed to arrive by migration.
	stuck := enqueue(sys, 1, request.Chat, 0.05, 0, 128, 8)
	st := sys.Iterate(0)
	if !st.Idle || len(sys.Pool().Running()) != 0 {
		t.Fatalf("decode replica admitted un-prefilled request: idle=%v running=%d", st.Idle, len(sys.Pool().Running()))
	}
	// Unless the prompt KV was lost in a failed transfer: the Recompute mark
	// lets the destination rebuild the prefill locally instead of stranding
	// the request forever.
	stuck.Recompute = true
	drain(t, sys, 2000)
	if sys.Pool().NumDone() != 1 || stuck.OutputLen() != stuck.MaxNewTokens {
		t.Fatalf("recompute request did not finish: done=%d output=%d", sys.Pool().NumDone(), stuck.OutputLen())
	}
}
