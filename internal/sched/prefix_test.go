package sched

import (
	"testing"

	"adaserve/internal/kvcache"
	"adaserve/internal/request"
)

// prefixSystem builds an AdaServe system whose KV allocator has shared-prefix
// caching enabled, with a sized host tier and a fixed per-token reload price.
func prefixSystem(t *testing.T) System {
	t.Helper()
	cfg := testConfig(t)
	if err := cfg.KV.EnablePrefix(kvcache.PrefixConfig{
		HostBlocks:    256,
		ReloadLatency: func(tokens int) float64 { return 1e-6 * float64(tokens) },
	}); err != nil {
		t.Fatal(err)
	}
	sys, err := NewAdaServe(cfg, AdaServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// sharedPromptReq builds a request whose prompt starts with a 512-token
// shared segment (same content seed across calls) followed by a per-request
// private tail.
func sharedPromptReq(id int, tail int) *request.Request {
	r := request.New(id, request.Chat, 0.05, 0, 512+tail, 8, uint64(id)*977+5)
	r.PromptSegs = []request.PromptSegment{
		{Seed: 0xc0ffee, Len: 512},
		{Seed: uint64(id) + 1, Len: tail},
	}
	return r
}

// TestSchedPrefixReuseAcrossRequests drives the admission-side prefix flow
// end to end through a real scheduler: the first request registers its
// prompt blocks, the second matches them, jumps PrefillDone past the cached
// prefix, and the stats/probe surfaces agree.
func TestSchedPrefixReuseAcrossRequests(t *testing.T) {
	sys := prefixSystem(t)

	first := sharedPromptReq(1, 64)
	if got := sys.(*AdaServe).PrefixCachedTokens(first); got != 0 {
		t.Fatalf("cold cache probe reports %d cached tokens", got)
	}
	sys.Pool().Enqueue(first)
	drain(t, sys, 10000)

	second := sharedPromptReq(2, 96)
	probe := sys.(*AdaServe).PrefixCachedTokens(second)
	if probe < 256 {
		t.Fatalf("probe reports %d cached tokens after the donor finished, want >= 256", probe)
	}
	sys.Pool().Enqueue(second)
	// One iteration admits the request (applying the cached jump) and runs
	// its first — and, with the jump, only — prefill pass.
	sys.Iterate(0)
	if second.PrefillDone < probe {
		t.Fatalf("PrefillDone %d after admission, want the %d-token cached jump", second.PrefillDone, probe)
	}
	drain(t, sys, 10000)

	st, enabled := sys.(*AdaServe).KVPrefixStats()
	if !enabled {
		t.Fatal("KVPrefixStats reports prefix caching disabled")
	}
	if st.Hits < 1 || st.HitTokens < 256 {
		t.Fatalf("stats %+v, want at least one hit covering the shared prompt", st)
	}
	if st.Lookups < 2 {
		t.Fatalf("stats %+v, want a lookup per admission", st)
	}
	// The PromptLen-1 match cap keeps at least one prefill token: the hit
	// can never swallow the second request's whole prompt.
	if st.HitTokens >= second.PromptLen {
		t.Fatalf("hit tokens %d >= prompt %d; the cap must leave prefill work", st.HitTokens, second.PromptLen)
	}
}

// TestSchedPrefixDisabledStatsOff pins the disabled path: no stats surface
// and no probe signal, so the prefix-affinity router falls back cleanly.
func TestSchedPrefixDisabledStatsOff(t *testing.T) {
	cfg := testConfig(t)
	sys, err := NewAdaServe(cfg, AdaServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, enabled := sys.KVPrefixStats(); enabled {
		t.Fatal("plain allocator reports prefix stats")
	}
	if got := sys.PrefixCachedTokens(sharedPromptReq(1, 64)); got != 0 {
		t.Fatalf("disabled probe reports %d cached tokens", got)
	}
}
