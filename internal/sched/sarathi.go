package sched

import (
	"adaserve/internal/engine"
)

// Sarathi is the Sarathi-Serve baseline: chunked prefill co-batched with
// decode under a fixed per-iteration token budget. Long prompts are split
// into chunks so decoding requests keep making progress instead of stalling
// behind monolithic prefill passes, trading slightly higher (but uniform)
// per-token latency for the absence of prefill latency spikes.
type Sarathi struct {
	base
	// TokenBudget is the per-iteration token budget shared by decode tokens
	// and prefill chunks (Sarathi's "chunk size").
	TokenBudget int
}

// NewSarathi constructs the baseline. tokenBudget <= 0 defaults to 256,
// the paper's Sarathi configuration ballpark for A100-class hardware.
func NewSarathi(cfg Config, tokenBudget int) (*Sarathi, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	if tokenBudget <= 0 {
		tokenBudget = 256
	}
	return &Sarathi{base: b, TokenBudget: tokenBudget}, nil
}

// Name implements System.
func (s *Sarathi) Name() string { return "Sarathi-Serve" }

// Iterate implements System.
func (s *Sarathi) Iterate(now float64) IterationStats {
	s.finish()
	s.admitFIFO(now)

	decode := s.pool.DecodingRequests()
	budget := s.TokenBudget - len(decode)
	if budget < 0 {
		budget = 0
	}
	var prefill []engine.PrefillItem
	for _, r := range s.pool.PrefillingRequests() {
		if budget <= 0 {
			break
		}
		chunk := r.RemainingPrefill()
		if chunk > budget {
			chunk = budget
		}
		prefill = append(prefill, engine.PrefillItem{Req: r, Chunk: chunk})
		budget -= chunk
	}
	if len(decode) == 0 && len(prefill) == 0 {
		return IterationStats{Idle: true}
	}
	markFirstDecode(decode, now)
	res, gpuTime := s.cfg.Engine.Mixed(decode, prefill)
	st := IterationStats{
		Elapsed:    gpuTime + s.cfg.SchedOverhead,
		SchedCPU:   s.cfg.SchedOverhead,
		VerifyTime: gpuTime,
	}
	end := now + st.Elapsed
	for i, r := range decode {
		st.TokensCommitted += r.Commit(res.Tokens[i:i+1], end)
		r.VerifySteps++
	}
	return st
}
