package sched

import (
	"math/bits"

	"adaserve/internal/request"
)

// FastServe is the FastServe baseline: preemptive multi-level feedback queue
// (MLFQ) scheduling at iteration granularity. A request's queue level grows
// with the output tokens it has received (skip-join: long prompts start at a
// deeper level), and each decode iteration serves only the shallowest
// non-empty level, preempting deeper ones. This fights head-of-line blocking
// by long requests but is oblivious to per-request SLOs.
type FastServe struct {
	base
	// Levels caps the MLFQ depth.
	Levels int
	// AgingQuantum promotes a starved request one level per this many
	// seconds without service (FastServe's starvation prevention).
	AgingQuantum float64
	// lastServed tracks each request's most recent decode time.
	lastServed map[int]float64
}

// NewFastServe constructs the baseline.
func NewFastServe(cfg Config) (*FastServe, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &FastServe{
		base: b, Levels: 8, AgingQuantum: 0.25,
		lastServed: make(map[int]float64),
	}, nil
}

// Name implements System.
func (f *FastServe) Name() string { return "FastServe" }

// level assigns a request's MLFQ level: log2 of tokens served, skip-joined
// by prompt length (FastServe demotes long-prompt requests on entry so they
// cannot monopolize the top queue).
func (f *FastServe) level(r *request.Request) int {
	served := r.OutputLen()
	skip := 0
	if r.PromptLen >= 1024 {
		skip = 2
	} else if r.PromptLen >= 512 {
		skip = 1
	}
	lvl := bits.Len(uint(served)) + skip // 0 tokens -> level 0 (+skip)
	if lvl >= f.Levels {
		lvl = f.Levels - 1
	}
	return lvl
}

// effectiveLevel applies starvation prevention: a request unserved for k
// aging quanta is promoted k levels.
func (f *FastServe) effectiveLevel(r *request.Request, now float64) int {
	lvl := f.level(r)
	last, ok := f.lastServed[r.ID]
	if !ok {
		last = r.ArrivalTime
	}
	if f.AgingQuantum > 0 {
		lvl -= int((now - last) / f.AgingQuantum)
	}
	if lvl < 0 {
		lvl = 0
	}
	return lvl
}

// Iterate implements System.
func (f *FastServe) Iterate(now float64) IterationStats {
	f.finish()
	f.admitFIFO(now)

	if st, ok := f.prefillWhole(now); ok {
		return st
	}

	decode := f.pool.DecodingRequests()
	if len(decode) == 0 {
		return IterationStats{Idle: true}
	}
	// Work-conserving MLFQ: fill the decode batch in (aged) level order,
	// shallowest first; requests beyond the batch cap are preempted at
	// iteration granularity. The cap binds under load, which is when MLFQ
	// ordering matters.
	ordered := append([]*request.Request(nil), decode...)
	sortStable(ordered, func(a, c *request.Request) bool {
		la, lc := f.effectiveLevel(a, now), f.effectiveLevel(c, now)
		if la != lc {
			return la < lc
		}
		if a.ArrivalTime != c.ArrivalTime {
			return a.ArrivalTime < c.ArrivalTime
		}
		return a.ID < c.ID
	})
	run := ordered
	if len(run) > f.cfg.MaxBatch {
		run = run[:f.cfg.MaxBatch]
		for _, r := range ordered[f.cfg.MaxBatch:] {
			r.PreemptCount++
		}
	}
	markFirstDecode(run, now)
	res := f.cfg.Engine.DecodeBatch(run)
	st := IterationStats{
		Elapsed:    res.GPUTime + f.cfg.SchedOverhead,
		SchedCPU:   f.cfg.SchedOverhead,
		VerifyTime: res.GPUTime,
	}
	end := now + st.Elapsed
	for i, r := range run {
		st.TokensCommitted += r.Commit(res.Tokens[i:i+1], end)
		r.VerifySteps++
		f.lastServed[r.ID] = end
		if r.Phase == request.Done {
			delete(f.lastServed, r.ID)
		}
	}
	return st
}
