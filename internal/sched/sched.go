// Package sched implements the serving systems under evaluation: AdaServe's
// SLO-customized scheduler and the six baselines the paper compares against
// (vLLM continuous batching, Sarathi-Serve chunked prefill, vLLM+priority,
// vLLM-Spec static speculation, FastServe MLFQ, and VTC fair scheduling).
//
// Every system shares the same substrate — an execution engine, a paged KV
// allocator, and a request pool — and exposes one operation: Iterate, which
// performs one scheduling-plus-execution iteration starting at a given
// simulated time and reports how long it took. The unified event-driven
// driver in internal/serve advances the clock and delivers arrivals
// (internal/sim and internal/cluster replay closed traces through it).
package sched

import (
	"fmt"
	"sort"

	"adaserve/internal/engine"
	"adaserve/internal/gpu"
	"adaserve/internal/kvcache"
	"adaserve/internal/request"
)

// IterationStats reports one iteration of a serving system.
type IterationStats struct {
	// Elapsed is the simulated duration of the iteration (GPU + CPU).
	Elapsed float64
	// SchedCPU is the CPU scheduling/selection time included in Elapsed.
	SchedCPU float64
	// SpecTime, VerifyTime and PrefillTime are the GPU components.
	SpecTime, VerifyTime, PrefillTime float64
	// TokensCommitted counts output tokens committed this iteration.
	TokensCommitted int
	// Idle reports that the system had no work (Elapsed is 0).
	Idle bool
}

// System is one serving system instance.
type System interface {
	// Name identifies the system in reports (e.g. "vLLM-Spec (4)").
	Name() string
	// Pool returns the system's request pool; the driver enqueues arrivals
	// into it.
	Pool() *request.Pool
	// Iterate runs one iteration starting at simulated time now.
	Iterate(now float64) IterationStats
	// Release frees engine-side state (KV reservation) held for a request
	// that leaves the system without finishing — the disaggregated cluster
	// driver calls it when migrating a prefill-complete request to a decode
	// replica. Releasing a request the system holds nothing for is a no-op.
	Release(r *request.Request)
}

// Mode restricts which lifecycle stage a system admits and serves, so an
// unchanged scheduler can run as a role-restricted replica in a
// disaggregated prefill/decode cluster.
type Mode int

const (
	// ModeMixed is the colocated default: admit everything, serve both
	// prefill and decode.
	ModeMixed Mode = iota
	// ModePrefill admits only requests that still need prompt processing and
	// reserves KV for the prompt alone (prefill-replica KV turns over at
	// migration, so output tokens never materialize here). The cluster
	// driver migrates requests away at the iteration boundary where their
	// prefill completes, so decode work never accumulates.
	ModePrefill
	// ModeDecode admits only requests whose prompt is fully processed
	// (migrated in with their KV), reserving full prompt+output capacity.
	ModeDecode
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeMixed:
		return "mixed"
	case ModePrefill:
		return "prefill"
	case ModeDecode:
		return "decode"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config carries the substrate shared by all systems.
type Config struct {
	Engine *engine.Engine
	KV     *kvcache.Allocator
	// MaxBatch caps concurrently running sequences (admission control).
	MaxBatch int
	// MaxPrefillTokens bounds tokens per prefill-focused iteration.
	MaxPrefillTokens int
	// SchedOverhead is the fixed per-iteration CPU cost in seconds,
	// calibrated to a production scheduler's bookkeeping.
	SchedOverhead float64
	// Mode restricts admission for role-restricted replicas (default
	// ModeMixed: no restriction).
	Mode Mode
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Engine == nil {
		return fmt.Errorf("sched: engine required")
	}
	if c.KV == nil {
		return fmt.Errorf("sched: KV allocator required")
	}
	if c.MaxBatch <= 0 {
		return fmt.Errorf("sched: MaxBatch %d <= 0", c.MaxBatch)
	}
	if c.MaxPrefillTokens <= 0 {
		return fmt.Errorf("sched: MaxPrefillTokens %d <= 0", c.MaxPrefillTokens)
	}
	if c.SchedOverhead < 0 {
		return fmt.Errorf("sched: negative scheduler overhead")
	}
	return nil
}

// base holds the machinery common to all systems.
type base struct {
	cfg  Config
	pool *request.Pool
}

func newBase(cfg Config) (base, error) {
	if err := cfg.Validate(); err != nil {
		return base{}, err
	}
	return base{cfg: cfg, pool: request.NewPool()}, nil
}

// Pool implements System.
func (b *base) Pool() *request.Pool { return b.pool }

// Release implements System: it drops the KV reservation of a request
// migrating away (no-op when none is held). The request's prefill progress is
// published to the prefix cache first, so a prefill replica's completed
// prompts stay matchable after the migrant's KV is handed off.
func (b *base) Release(r *request.Request) {
	if b.cfg.KV.Has(r.ID) {
		b.cfg.KV.MarkComputed(r.ID, r.PrefillDone)
		if err := b.cfg.KV.Free(r.ID); err != nil {
			panic(err)
		}
	}
}

// reserveTokens is the KV reservation for a request: the full context it can
// ever need plus slack for in-flight speculative tokens. Reserving up front
// keeps the simulators deterministic (no mid-decode OOM preemption paths,
// which none of the compared policies rely on). A prefill-only replica
// reserves for the prompt alone: its KV is handed off at migration, before
// any output token exists.
func (b *base) reserveTokens(r *request.Request) int {
	if b.cfg.Mode == ModePrefill {
		return r.PromptLen + 16
	}
	return r.PromptLen + r.MaxNewTokens + 16
}

// admits reports whether the system's mode accepts a waiting request:
// prefill replicas take only requests with prompt work left, decode replicas
// only prefill-complete migrants — plus recompute fallbacks, whose prompt KV
// was lost in a failed transfer and must be rebuilt on the destination.
func (b *base) admits(r *request.Request) bool {
	switch b.cfg.Mode {
	case ModePrefill:
		return r.RemainingPrefill() > 0
	case ModeDecode:
		return r.RemainingPrefill() == 0 || r.Recompute
	default:
		return true
	}
}

// admitFIFO admits waiting requests in FIFO order while batch and KV
// capacity allow. Requests resumed from preemption keep their allocation.
func (b *base) admitFIFO(now float64) {
	b.admitOrdered(now, nil)
}

// admitOrdered admits waiting requests in the order induced by less (nil
// means the pool's FIFO order), bounded by MaxBatch and KV capacity.
func (b *base) admitOrdered(now float64, less func(a, c *request.Request) bool) {
	waiting := append([]*request.Request(nil), b.pool.Waiting()...)
	if less != nil {
		sort.SliceStable(waiting, func(i, j int) bool { return less(waiting[i], waiting[j]) })
	}
	for _, r := range waiting {
		if b.pool.NumRunning() >= b.cfg.MaxBatch {
			return
		}
		if !b.admits(r) {
			continue
		}
		if !b.cfg.KV.Has(r.ID) {
			if err := b.allocateKV(r); err != nil {
				// Capacity exhausted: later arrivals cannot help (FIFO), and
				// for ordered admission smaller requests may still fit.
				if less == nil {
					return
				}
				continue
			}
		}
		b.pool.Admit(r, now)
	}
}

// allocateKV reserves KV for a not-yet-admitted request. With prefix caching
// enabled the prompt's token seeds are matched against the cache first: the
// matched prefix is taken by reference instead of allocated, the request's
// PrefillDone jumps past it (the engine then charges only the uncached
// suffix, while still attending over the full cached context), and any
// host-tier reload latency is queued on the request for its first prefill
// pass. The match is capped one token short of the full prompt so every
// request keeps at least one prefill token — admission modes and engine
// phase transitions stay exactly as without caching.
func (b *base) allocateKV(r *request.Request) error {
	if !b.cfg.KV.PrefixEnabled() {
		return b.cfg.KV.Allocate(r.ID, b.reserveTokens(r))
	}
	limit := 0
	if r.PrefillDone == 0 && r.PromptLen > 1 {
		limit = r.PromptLen - 1
	}
	hit, err := b.cfg.KV.AllocateWithPrefix(r.ID, b.reserveTokens(r), r.PromptSeeds(r.PromptLen), limit)
	if err != nil {
		return err
	}
	if hit.Tokens > 0 {
		r.PrefillDone = hit.Tokens
		r.ReloadStall += hit.Stall
	}
	return nil
}

// KVPrefixStats returns the KV allocator's prefix-cache counters; ok is
// false when prefix caching is disabled.
func (b *base) KVPrefixStats() (kvcache.PrefixStats, bool) {
	if !b.cfg.KV.PrefixEnabled() {
		return kvcache.PrefixStats{}, false
	}
	return b.cfg.KV.PrefixStats(), true
}

// PrefixCachedTokens probes how many of r's prompt tokens this system's KV
// cache already holds computed — the signal the cluster's prefix-affinity
// router steers on. Read-only; 0 when prefix caching is off. The probe uses
// the same PromptLen-1 cap as allocation, so it predicts the admission-time
// hit exactly.
func (b *base) PrefixCachedTokens(r *request.Request) int {
	if !b.cfg.KV.PrefixEnabled() || r.PromptLen <= 1 {
		return 0
	}
	return b.cfg.KV.MatchPrefixTokens(r.PromptSeeds(r.PromptLen - 1))
}

// finish retires done requests and releases their KV. Prefill progress is
// published to the prefix cache first (a no-op when caching is off): every
// sequence passes through here at least one iteration after its prefill
// completes, so shared prompt blocks become matchable before — and cold
// rather than dropped when — their last holder retires.
func (b *base) finish() {
	if b.cfg.KV.PrefixEnabled() {
		for _, r := range b.pool.Running() {
			if r.PrefillDone > 0 && b.cfg.KV.Has(r.ID) {
				b.cfg.KV.MarkComputed(r.ID, r.PrefillDone)
			}
		}
	}
	for _, r := range b.pool.Running() {
		if r.Phase == request.Done && b.cfg.KV.Has(r.ID) {
			if err := b.cfg.KV.Free(r.ID); err != nil {
				panic(err)
			}
		}
	}
	b.pool.Finish()
}

// prefillWhole runs one vLLM-style prefill-prioritized iteration: whole
// prompts, FIFO, packing more requests while the token budget lasts (the
// first prompt always runs even if it alone exceeds the budget). Returns
// stats and whether any prefill work was done.
func (b *base) prefillWhole(now float64) (IterationStats, bool) {
	pre := b.pool.PrefillingRequests()
	if len(pre) == 0 {
		return IterationStats{}, false
	}
	budget := b.cfg.MaxPrefillTokens
	var items []engine.PrefillItem
	for _, r := range pre {
		rem := r.RemainingPrefill()
		if len(items) > 0 && rem > budget {
			break
		}
		items = append(items, engine.PrefillItem{Req: r, Chunk: rem})
		budget -= rem
		if budget <= 0 {
			break
		}
	}
	gpuTime := b.cfg.Engine.Prefill(items)
	st := IterationStats{
		Elapsed:     gpuTime + b.cfg.SchedOverhead,
		SchedCPU:    b.cfg.SchedOverhead,
		PrefillTime: gpuTime,
	}
	return st, true
}

// markFirstDecode stamps FirstDecodeTime for requests entering their first
// decode iteration: the reference point of the paper's TPOT accounting.
func markFirstDecode(reqs []*request.Request, now float64) {
	for _, r := range reqs {
		if r.FirstDecodeTime < 0 {
			r.FirstDecodeTime = now
		}
	}
}

// sortStable sorts requests with the given ordering.
func sortStable(reqs []*request.Request, less func(a, c *request.Request) bool) {
	sort.SliceStable(reqs, func(i, j int) bool { return less(reqs[i], reqs[j]) })
}

// shapeFor is a one-token-per-sequence decode batch shape.
func shapeFor(n, kv int) gpu.BatchShape {
	return gpu.BatchShape{Tokens: n, Seqs: n, KVTokens: kv}
}

// minSLO returns the tightest TPOT SLO among reqs (or 0 when empty).
func minSLO(reqs []*request.Request) float64 {
	if len(reqs) == 0 {
		return 0
	}
	m := reqs[0].TPOTSLO
	for _, r := range reqs[1:] {
		if r.TPOTSLO < m {
			m = r.TPOTSLO
		}
	}
	return m
}
