package sched

import (
	"testing"

	"adaserve/internal/core"
	"adaserve/internal/engine"
	"adaserve/internal/gpu"
	"adaserve/internal/request"
)

func newAdaServe(t *testing.T, opts AdaServeOptions) *AdaServe {
	t.Helper()
	sys, err := NewAdaServe(testConfig(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAdaServeConstruction(t *testing.T) {
	a := newAdaServe(t, AdaServeOptions{})
	if a.Name() != "AdaServe" {
		t.Fatalf("name %q", a.Name())
	}
	if a.VerifyBudget <= 0 {
		t.Fatal("no profiled budget")
	}
	if a.Profile == nil || a.Profile.Base <= 0 {
		t.Fatal("no profile")
	}
	if a.Controller.Validate() != nil {
		t.Fatal("invalid controller")
	}
}

// TestAdaServeClampSpecEnvelope pins the actuation contract the adaptive
// controller relies on: retuned ceilings are clipped to the constructed
// envelope (never above it, never below DMin/1), and a later clamp can
// restore what an earlier one took away.
func TestAdaServeClampSpecEnvelope(t *testing.T) {
	a := newAdaServe(t, AdaServeOptions{})
	d0, w0 := a.SpecEnvelope()
	if d0 != a.Controller.DMax || w0 != a.Controller.WMax {
		t.Fatalf("envelope (%d,%d) disagrees with controller (%d,%d)", d0, w0, a.Controller.DMax, a.Controller.WMax)
	}
	a.ClampSpecEnvelope(d0+5, w0+5)
	if d, w := a.SpecEnvelope(); d != d0 || w != w0 {
		t.Fatalf("clamp exceeded the constructed envelope: (%d,%d) vs (%d,%d)", d, w, d0, w0)
	}
	a.ClampSpecEnvelope(-3, 0)
	if d, w := a.SpecEnvelope(); d != a.Controller.DMin || w != 1 {
		t.Fatalf("clamp broke the floor: (%d,%d), want (%d,1)", d, w, a.Controller.DMin)
	}
	a.ClampSpecEnvelope(d0, w0)
	if d, w := a.SpecEnvelope(); d != d0 || w != w0 {
		t.Fatalf("clamp could not restore the envelope: (%d,%d) vs (%d,%d)", d, w, d0, w0)
	}
}

func TestAdaServeRequiresDraft(t *testing.T) {
	cfg := testConfig(t)
	cfg.Engine = engine.MustNew(engine.Config{
		Target:     cfg.Engine.Target(),
		TargetCost: gpu.MustCostModel(gpu.A100, gpu.Llama70B, 4),
		Seed:       3,
	})
	if _, err := NewAdaServe(cfg, AdaServeOptions{}); err == nil {
		t.Fatal("draftless AdaServe accepted")
	}
}

func TestAdaServeRejectsBadFactor(t *testing.T) {
	if _, err := NewAdaServe(testConfig(t), AdaServeOptions{BudgetLatencyFactor: 0.5}); err == nil {
		t.Fatal("factor < 1 accepted")
	}
}

func TestAdaServeBudgetGrowsWithFactor(t *testing.T) {
	small := newAdaServe(t, AdaServeOptions{BudgetLatencyFactor: 1.2})
	large := newAdaServe(t, AdaServeOptions{BudgetLatencyFactor: 3.0})
	if large.VerifyBudget <= small.VerifyBudget {
		t.Fatalf("budgets %d vs %d", small.VerifyBudget, large.VerifyBudget)
	}
}

func TestAdaServeSpeculativeIteration(t *testing.T) {
	a := newAdaServe(t, AdaServeOptions{})
	r := enqueue(a, 1, request.Coding, 0.04, 0, 64, 40)
	st := a.Iterate(0) // prefill
	if st.PrefillTime <= 0 {
		t.Fatal("expected prefill pass first")
	}
	now := st.Elapsed
	st = a.Iterate(now)
	if st.SpecTime <= 0 || st.VerifyTime <= 0 || st.SchedCPU <= 0 {
		t.Fatalf("decode iteration missing phases: %+v", st)
	}
	if st.TokensCommitted < 1 {
		t.Fatal("no tokens committed")
	}
	if r.VerifySteps != 1 {
		t.Fatal("verify steps not counted")
	}
	if a.Debug.DecodeIters != 1 || a.Debug.SumBatch != 1 {
		t.Fatalf("debug stats %+v", a.Debug)
	}
}

func TestAdaServeCommitsMoreThanVLLM(t *testing.T) {
	// The core speedup claim: same request stream, AdaServe finishes with
	// far fewer decode iterations per token than vanilla continuous
	// batching (acc > 1).
	a := newAdaServe(t, AdaServeOptions{})
	ra := enqueue(a, 1, request.Coding, 0.04, 0, 64, 60)
	drain(t, a, 500)
	accA := float64(ra.AcceptedTokens) / float64(ra.VerifySteps)
	if accA < 2.0 {
		t.Fatalf("AdaServe mean accepted %.2f, want > 2", accA)
	}
}

func TestAdaServeBudgetScalesUnderLoad(t *testing.T) {
	a := newAdaServe(t, AdaServeOptions{})
	a.TokensPerRequest = 4
	n := a.VerifyBudget // enough requests that n*4 > profiled budget
	for i := 0; i < n; i++ {
		enqueue(a, i+1, request.Chat, 0.05, 0, 16, 4)
	}
	// Prefill everyone, then one decode iteration.
	now := 0.0
	for a.Pool().NumRunning() == 0 || len(a.Pool().PrefillingRequests()) > 0 {
		st := a.Iterate(now)
		now += st.Elapsed
	}
	a.Debug = AdaServeDebug{}
	st := a.Iterate(now)
	if st.Idle {
		t.Fatal("no decode work")
	}
	batch := a.Debug.SumBatch
	if a.Debug.SumBudget < batch*4 {
		t.Fatalf("budget %d below 4x batch %d", a.Debug.SumBudget, batch)
	}
}

func TestAdaServeAdaptiveDepthShrinksWithLoad(t *testing.T) {
	// Few requests -> deep speculation; many requests -> shallow.
	light := newAdaServe(t, AdaServeOptions{})
	enqueue(light, 1, request.Chat, 0.05, 0, 16, 4)
	now := light.Iterate(0).Elapsed
	light.Iterate(now)
	lightDepth := light.Debug.SumDepth

	heavy := newAdaServe(t, AdaServeOptions{})
	for i := 0; i < 80; i++ {
		enqueue(heavy, i+1, request.Chat, 0.05, 0, 16, 4)
	}
	now = 0.0
	for len(heavy.Pool().PrefillingRequests()) > 0 || heavy.Pool().NumRunning() == 0 {
		st := heavy.Iterate(now)
		now += st.Elapsed
	}
	heavy.Debug = AdaServeDebug{}
	heavy.Iterate(now)
	heavyDepth := heavy.Debug.SumDepth / heavy.Debug.DecodeIters

	if heavyDepth >= lightDepth {
		t.Fatalf("depth did not shrink with load: light %d heavy %d", lightDepth, heavyDepth)
	}
}

func TestAdaServeSLOCustomization(t *testing.T) {
	// Under budget scarcity, urgent requests must receive more verification
	// tokens per iteration than relaxed ones (fine-grained decoding-speed
	// control): force scarcity by capping the budget near one token per
	// request, so only the SLO-customized phase differentiates.
	a := newAdaServe(t, AdaServeOptions{})
	a.VerifyBudget = 15 // 12 roots + only 3 extra tokens per iteration
	a.TokensPerRequest = 1
	var urgent, relaxed []*request.Request
	for i := 0; i < 6; i++ {
		urgent = append(urgent, enqueue(a, i, request.Coding, 0.04, 0, 64, 48))
		relaxed = append(relaxed, enqueue(a, 100+i, request.Summarization, 2.0, 0, 64, 48))
	}
	drain(t, a, 5000)
	acc := func(rs []*request.Request) float64 {
		var tok, steps int
		for _, r := range rs {
			tok += r.AcceptedTokens
			steps += r.VerifySteps
		}
		return float64(tok) / float64(steps)
	}
	accUrgent, accRelaxed := acc(urgent), acc(relaxed)
	if accUrgent <= accRelaxed*1.1 {
		t.Fatalf("urgent served at %.2f tok/step, relaxed at %.2f — no SLO customization",
			accUrgent, accRelaxed)
	}
}

func TestAdaServeCoBatchedPrefillDoesNotStallDecode(t *testing.T) {
	a := newAdaServe(t, AdaServeOptions{})
	r := enqueue(a, 1, request.Coding, 0.04, 0, 32, 30)
	now := a.Iterate(0).Elapsed
	// Get r decoding.
	st := a.Iterate(now)
	now += st.Elapsed
	// A long prompt arrives; decode iterations must continue committing
	// while its prefill advances in the same passes.
	long := enqueue(a, 2, request.Summarization, 0.15, now, 1500, 8)
	sawBoth := false
	for i := 0; i < 30 && (long.Phase == request.Queued || long.Phase == request.Prefilling); i++ {
		before := long.PrefillDone
		st = a.Iterate(now)
		now += st.Elapsed
		if st.TokensCommitted > 0 && long.PrefillDone > before {
			sawBoth = true
		}
	}
	if !sawBoth {
		t.Fatal("no iteration advanced decode and prefill together")
	}
	_ = r
}

func TestAdaServeStaticControllerAblation(t *testing.T) {
	ctrl := core.StaticController(3, 2)
	a := newAdaServe(t, AdaServeOptions{Controller: &ctrl})
	for i := 0; i < 12; i++ {
		enqueue(a, i+1, request.Chat, 0.05, 0, 16, 6)
	}
	now := 0.0
	for len(a.Pool().PrefillingRequests()) > 0 || a.Pool().NumRunning() == 0 {
		st := a.Iterate(now)
		now += st.Elapsed
	}
	a.Debug = AdaServeDebug{}
	a.Iterate(now)
	if a.Debug.SumDepth != 3 || a.Debug.SumWidth != 2 {
		t.Fatalf("static controller produced d=%d w=%d", a.Debug.SumDepth, a.Debug.SumWidth)
	}
}

func TestAdaServeSchedulingOverheadTiny(t *testing.T) {
	// Figure 15: CPU scheduling must be a sub-percent share of serving
	// time.
	a := newAdaServe(t, AdaServeOptions{})
	for i := 0; i < 8; i++ {
		enqueue(a, i+1, request.Chat, 0.05, float64(i)*0.01, 64, 24)
	}
	var sched, total float64
	now := 0.0
	for i := 0; i < 2000; i++ {
		st := a.Iterate(now)
		if st.Idle {
			break
		}
		now += st.Elapsed
		sched += st.SchedCPU
		total += st.Elapsed
	}
	if share := sched / total; share > 0.01 {
		t.Fatalf("scheduling share %.2f%% exceeds 1%%", 100*share)
	}
}
