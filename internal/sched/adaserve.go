package sched

import (
	"fmt"

	"adaserve/internal/core"
	"adaserve/internal/engine"
	"adaserve/internal/gpu"
	"adaserve/internal/mathutil"
)

// AdaServe is the paper's system: SLO-customized speculative decoding with a
// speculate → SLO-customized-select → throughput-optimized-select → verify
// pipeline per decode iteration, a hardware-profiled verification token
// budget, and adaptive speculation parameters (Eq. 8–9).
type AdaServe struct {
	base
	// Controller adapts the speculation depth and width to load.
	Controller core.Controller
	// Profile is the fitted roofline of the verifier (target model).
	Profile *gpu.Profile
	// VerifyBudget is B: the per-iteration verification token budget chosen
	// from the profile ("an optimal budget that balances decoding
	// throughput and latency").
	VerifyBudget int
	// NMax caps one request's draft-tree size during SLO-customized
	// selection (n_max in Algorithm 2); <= 0 disables the cap (ablation).
	NMax int
	// TokensPerRequest floors the budget at n x this under high load, so
	// heavy batches are not starved below what static speculation would
	// spend (the profiled budget governs at low load).
	TokensPerRequest int
	// SelectCPUPerNode models the CPU cost of the selection phases per
	// candidate node (heap operations), in seconds.
	SelectCPUPerNode float64
	// SLOMargin makes A(r) target this fraction of each request's SLO
	// (e.g. 0.75 aims 25% under), absorbing the prefill interruptions that
	// land between a request's decode iterations.
	SLOMargin float64
	// PrefillChunk is the baseline number of prompt tokens co-batched into
	// each verification pass. AdaServe's unified engine rides prefill
	// chunks along with tree verification (the paper's Figure 15 has no
	// separate prefill phase), so prompts never block decode with
	// monolithic passes. The chunk grows with the prefill backlog.
	PrefillChunk int

	// lastIterTime smooths the t_spec estimate used in A(r) with the
	// previous iteration's actual duration.
	lastIterTime float64

	// baseDMax/baseWMax freeze the constructed controller's ceilings:
	// ClampSpecEnvelope may narrow the runtime envelope but never exceed
	// what the system was built (and budgeted) for.
	baseDMax, baseWMax int

	// Per-iteration scratch, reused across Iterate calls so the steady
	// state allocates nothing: the pooled selector plus the selection-input,
	// verify-item and prefill-item slices.
	selector core.Selector
	selReqs  []core.SelectRequest
	items    []engine.VerifyItem
	prefill  []engine.PrefillItem

	// Debug accumulates per-iteration internals for tests and diagnosis.
	Debug AdaServeDebug
}

// AdaServeDebug aggregates scheduler internals across a run.
type AdaServeDebug struct {
	DecodeIters   int
	SumBatch      int
	SumDepth      int
	SumWidth      int
	SumBudget     int
	SumBudgetUsed int
	SumSelected   int
	SumExpected   float64
	SumIterTime   float64
	SLOUnmet      int
}

// AvgBatch returns the mean decode batch size.
func (d AdaServeDebug) AvgBatch() float64 {
	if d.DecodeIters == 0 {
		return 0
	}
	return float64(d.SumBatch) / float64(d.DecodeIters)
}

// AdaServeOptions tunes construction.
type AdaServeOptions struct {
	// BudgetLatencyFactor sets the verification latency target as a
	// multiple of the profile's flat-region latency; the budget B is the
	// largest token count fitting that target. Default 1.5: half again the
	// memory-bound floor, the knee region where verification throughput is
	// nearly free.
	BudgetLatencyFactor float64
	// NMax overrides the per-request selection cap (default 2·(DMax+1)).
	NMax int
	// Controller overrides the adaptive controller (zero value: derived
	// from the budget via core.DefaultController).
	Controller *core.Controller
}

// NewAdaServe profiles the engine's target cost model and assembles the
// system.
func NewAdaServe(cfg Config, opts AdaServeOptions) (*AdaServe, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Engine.Draft() == nil {
		return nil, fmt.Errorf("sched: AdaServe requires a draft model")
	}
	if opts.BudgetLatencyFactor == 0 {
		opts.BudgetLatencyFactor = 1.3
	}
	if opts.BudgetLatencyFactor < 1 {
		return nil, fmt.Errorf("sched: budget latency factor %g < 1", opts.BudgetLatencyFactor)
	}
	prof, err := gpu.ProfileCostModel(cfg.Engine.TargetCost(), 4096, 512)
	if err != nil {
		return nil, fmt.Errorf("sched: profiling target: %w", err)
	}
	budget := prof.BudgetFor(opts.BudgetLatencyFactor * prof.Base)
	var ctrl core.Controller
	if opts.Controller != nil {
		ctrl = *opts.Controller
	} else {
		ctrl = core.DefaultController(budget)
	}
	if err := ctrl.Validate(); err != nil {
		return nil, err
	}
	nmax := opts.NMax
	if nmax == 0 {
		nmax = 2 * (ctrl.DMax + 1)
	}
	return &AdaServe{
		base:             b,
		Controller:       ctrl,
		baseDMax:         ctrl.DMax,
		baseWMax:         ctrl.WMax,
		Profile:          prof,
		VerifyBudget:     budget,
		NMax:             nmax,
		TokensPerRequest: 4,
		SelectCPUPerNode: 150e-9,
		SLOMargin:        1.0,
		PrefillChunk:     128,
	}, nil
}

// Name implements System.
func (a *AdaServe) Name() string { return "AdaServe" }

// SpecEnvelope returns the adaptive controller's current depth and width
// ceilings — the DMax/WMax bounds the per-iteration Eq. 8–9 evaluation
// clips into.
func (a *AdaServe) SpecEnvelope() (dmax, wmax int) {
	return a.Controller.DMax, a.Controller.WMax
}

// ClampSpecEnvelope retunes the speculation envelope at runtime: a
// closed-loop controller narrows (or restores) the Eq. 8–9 ceilings as the
// observed acceptance rate drifts. dmax is clipped to the constructed
// [DMin, DMax] and wmax to [1, WMax], so actuation is always bounded by
// what the system was built for; within the new ceilings the per-iteration
// evaluation keeps adapting to load as before.
func (a *AdaServe) ClampSpecEnvelope(dmax, wmax int) {
	a.Controller.DMax = mathutil.ClipInt(dmax, a.Controller.DMin, a.baseDMax)
	a.Controller.WMax = mathutil.ClipInt(wmax, 1, a.baseWMax)
}

// Iterate implements System: one full SLO-customized speculative decoding
// iteration (Algorithm 2 embedded in the serving loop of Figure 6).
func (a *AdaServe) Iterate(now float64) IterationStats {
	a.finish()
	a.admitFIFO(now)

	decode := a.pool.DecodingRequests()
	n := len(decode)
	if n == 0 {
		// Nothing decoding: run a plain prefill-only pass (no one to hurt
		// with a monolithic pass).
		if st, ok := a.prefillWhole(now); ok {
			return st
		}
		return IterationStats{Idle: true}
	}
	markFirstDecode(decode, now)

	// Budget for this iteration: the profiled budget at low load, scaling
	// with the batch under high load so requests are not starved below
	// plain static speculation.
	budget := a.VerifyBudget
	if scaled := n * a.TokensPerRequest; scaled > budget {
		budget = scaled
	}
	if budget < n {
		budget = n
	}

	// Adaptive control: (d, w) from the active-request count (Eq. 8–9),
	// evaluated at this iteration's effective budget.
	d, w := a.Controller.ParamsWithBudget(n, budget, budget)

	// Step 1: speculation (beam search candidate trees).
	spec, err := a.cfg.Engine.SpeculateBeams(decode, d, w)
	if err != nil {
		panic(err)
	}

	// Estimate t_spec (the iteration's duration) for the TPOT constraint:
	// known speculation time + profiled verification time at the budget,
	// smoothed with the previous iteration's actual duration.
	tspec := spec.GPUTime + a.Profile.Latency(budget) + a.cfg.SchedOverhead
	if a.lastIterTime > tspec {
		tspec = a.lastIterTime
	}

	// Steps 2+3: SLO-customized and throughput-optimized selection.
	a.selReqs = a.selReqs[:0]
	candNodes := 0
	for i, r := range decode {
		minAcc := r.MinAcceptFor(now, tspec, r.TPOTSLO*a.SLOMargin)
		if minAcc < 0 {
			minAcc = 0
		}
		a.selReqs = append(a.selReqs, core.SelectRequest{Cand: spec.Trees[i], MinAccept: minAcc})
		candNodes += spec.Trees[i].Size()
	}
	// n_max prevents requests that are far behind their SLO from
	// monopolizing the budget with low-probability nodes (Algorithm 2). It
	// tracks twice the fair share so catching-up requests can overdraw,
	// bounded by the configured cap and floored at d+1 (a full chain).
	nmax := a.NMax
	if nmax > 0 {
		fair := 3 * budget / (2 * n)
		if fair < d+1 {
			fair = d + 1
		}
		if fair < nmax {
			nmax = fair
		}
	}
	selRes, err := a.selector.Select(a.selReqs, core.SelectConfig{
		Budget: budget, Depth: d, PerRequestMax: nmax,
	})
	if err != nil {
		panic(err)
	}
	selCPU := a.cfg.SchedOverhead + a.SelectCPUPerNode*float64(candNodes)

	// Step 4: tree verification, with prefill chunks co-batched into the
	// same pass. The chunk budget grows with the prefill backlog so prompt
	// processing keeps pace without monolithic latency spikes.
	a.items = a.items[:0]
	for i, r := range decode {
		a.items = append(a.items, engine.VerifyItem{Req: r, Sel: selRes.Selections[i]})
	}
	a.prefill = a.prefill[:0]
	if a.PrefillChunk > 0 {
		backlog := 0
		pre := a.pool.PrefillingRequests()
		for _, r := range pre {
			backlog += r.RemainingPrefill()
		}
		chunkBudget := backlog / 4
		if chunkBudget < a.PrefillChunk {
			chunkBudget = a.PrefillChunk
		}
		if max := a.cfg.MaxPrefillTokens; chunkBudget > max {
			chunkBudget = max
		}
		for _, r := range pre {
			if chunkBudget <= 0 {
				break
			}
			c := r.RemainingPrefill()
			if c > chunkBudget {
				c = chunkBudget
			}
			a.prefill = append(a.prefill, engine.PrefillItem{Req: r, Chunk: c})
			chunkBudget -= c
		}
	}
	ver := a.cfg.Engine.VerifyTreesWithPrefill(a.items, a.prefill)

	st := IterationStats{
		Elapsed:    spec.GPUTime + selCPU + ver.GPUTime,
		SchedCPU:   selCPU,
		SpecTime:   spec.GPUTime,
		VerifyTime: ver.GPUTime,
	}
	end := now + st.Elapsed
	for i, r := range decode {
		st.TokensCommitted += engine.CommitVerify(r, ver.Results[i], end)
	}
	a.lastIterTime = st.Elapsed

	a.Debug.DecodeIters++
	a.Debug.SumBatch += n
	a.Debug.SumDepth += d
	a.Debug.SumWidth += w
	a.Debug.SumBudget += budget
	a.Debug.SumBudgetUsed += selRes.BudgetUsed
	a.Debug.SumIterTime += st.Elapsed
	for i := range selRes.Selections {
		a.Debug.SumSelected += selRes.Selections[i].Size()
		a.Debug.SumExpected += selRes.ExpectedAccept[i]
		if !selRes.SLOSatisfied[i] {
			a.Debug.SLOUnmet++
		}
	}
	return st
}
