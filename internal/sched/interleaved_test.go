package sched

import (
	"testing"

	"adaserve/internal/request"
)

func TestInterleavedConstruction(t *testing.T) {
	sys, err := NewAdaServeInterleaved(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "AdaServe (interleaved)" {
		t.Fatalf("name %q", sys.Name())
	}
	if sys.Budget <= 0 {
		t.Fatal("no budget")
	}
}

func TestInterleavedDrainsAndCommits(t *testing.T) {
	sys, err := NewAdaServeInterleaved(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	r := enqueue(sys, 1, request.Chat, 0.05, 0, 64, 24)
	drain(t, sys, 500)
	if r.Phase != request.Done {
		t.Fatalf("phase %s", r.Phase)
	}
	if acc := float64(r.AcceptedTokens) / float64(r.VerifySteps); acc < 2 {
		t.Fatalf("interleaved optimal trees accepted only %.2f/step", acc)
	}
	if sys.DraftStepsTotal == 0 {
		t.Fatal("no serial draft expansions recorded")
	}
}

func TestInterleavedIsSlowerThanDecoupled(t *testing.T) {
	// The Challenge-2 claim: interleaved Algorithm 1 pays (B−n) serial
	// draft steps per iteration, so the same workload takes far longer in
	// wall-clock than the decoupled pipeline.
	runWith := func(build func(Config) (System, error)) float64 {
		sys, err := build(testConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			enqueue(sys, i+1, request.Chat, 0.05, 0, 64, 24)
		}
		return drain(t, sys, 5000)
	}
	decoupled := runWith(func(c Config) (System, error) { return NewAdaServe(c, AdaServeOptions{}) })
	interleaved := runWith(func(c Config) (System, error) { return NewAdaServeInterleaved(c) })
	if interleaved < decoupled*2 {
		t.Fatalf("interleaved %.2fs not clearly slower than decoupled %.2fs",
			interleaved, decoupled)
	}
}

func TestInterleavedSpecTimeDominates(t *testing.T) {
	sys, err := NewAdaServeInterleaved(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	enqueue(sys, 1, request.Chat, 0.05, 0, 64, 8)
	st := sys.Iterate(0) // prefill
	st = sys.Iterate(st.Elapsed)
	if st.SpecTime <= st.VerifyTime {
		t.Fatalf("serial draft time %.1fms should dominate verify %.1fms",
			1e3*st.SpecTime, 1e3*st.VerifyTime)
	}
}
