package sched

import (
	"fmt"

	"adaserve/internal/request"
)

// VLLM is the vLLM baseline: continuous batching with prefill-prioritized
// iterations and PagedAttention-style KV management. Every decode iteration
// generates exactly one token per running request, so all batched requests
// experience the same per-token latency — the uniform-service limitation the
// paper's Figure 2 illustrates.
type VLLM struct {
	base
	// PriorityAware enables the "vLLM + Priority" variant of Figure 1:
	// admission prefers urgent categories and decode batches are trimmed to
	// the largest prefix (by priority) whose predicted iteration latency
	// fits the tightest SLO in the batch.
	PriorityAware bool
}

// NewVLLM constructs the baseline.
func NewVLLM(cfg Config) (*VLLM, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &VLLM{base: b}, nil
}

// Name implements System.
func (v *VLLM) Name() string {
	if v.PriorityAware {
		return "vLLM + Priority"
	}
	return "vLLM"
}

// Iterate implements System.
func (v *VLLM) Iterate(now float64) IterationStats {
	v.finish()
	if v.PriorityAware {
		v.admitOrdered(now, func(a, c *request.Request) bool {
			if a.Priority != c.Priority {
				return a.Priority < c.Priority
			}
			if a.ArrivalTime != c.ArrivalTime {
				return a.ArrivalTime < c.ArrivalTime
			}
			return a.ID < c.ID
		})
	} else {
		v.admitFIFO(now)
	}

	// Prefill-prioritized: any waiting prompt runs before decode resumes.
	if st, ok := v.prefillWhole(now); ok {
		return st
	}

	decode := v.pool.DecodingRequests()
	if len(decode) == 0 {
		return IterationStats{Idle: true}
	}
	if v.PriorityAware {
		decode = v.trimByPriority(decode)
	}
	markFirstDecode(decode, now)
	res := v.cfg.Engine.DecodeBatch(decode)
	st := IterationStats{
		Elapsed:    res.GPUTime + v.cfg.SchedOverhead,
		SchedCPU:   v.cfg.SchedOverhead,
		VerifyTime: res.GPUTime,
	}
	end := now + st.Elapsed
	for i, r := range decode {
		st.TokensCommitted += r.Commit(res.Tokens[i:i+1], end)
		r.VerifySteps++
	}
	return st
}

// trimByPriority restricts the decode batch when urgent requests are
// present: the most-urgent priority class runs exclusively, and less urgent
// requests join only while the predicted iteration latency keeps a safety
// margin under the tightest SLO. This is the paper's Figure 1 observation:
// priority scheduling protects tight SLOs only by constraining batch
// composition, starving other classes and congesting the system.
func (v *VLLM) trimByPriority(decode []*request.Request) []*request.Request {
	ordered := append([]*request.Request(nil), decode...)
	sortStable(ordered, func(a, c *request.Request) bool {
		if a.Priority != c.Priority {
			return a.Priority < c.Priority
		}
		if a.ArrivalTime != c.ArrivalTime {
			return a.ArrivalTime < c.ArrivalTime
		}
		return a.ID < c.ID
	})
	// Strict class exclusivity: urgent requests preempt all non-urgent
	// decoding (the paper's description of vLLM+Priority). The tight SLO
	// is protected, non-urgent classes starve, and congestion builds — the
	// trade-off Figure 1 documents.
	topPriority := ordered[0].Priority
	best := 0
	for n := 1; n <= len(ordered); n++ {
		if ordered[n-1].Priority != topPriority {
			break
		}
		best = n
	}
	if best < 1 {
		best = 1
	}
	for _, r := range ordered[best:] {
		r.PreemptCount++
	}
	return ordered[:best]
}

func (v *VLLM) String() string { return fmt.Sprintf("%s(batch<=%d)", v.Name(), v.cfg.MaxBatch) }
