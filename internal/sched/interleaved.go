package sched

import (
	"errors"
	"fmt"

	"adaserve/internal/core"
	"adaserve/internal/engine"
	"adaserve/internal/gpu"
	"adaserve/internal/lm"
	"adaserve/internal/toktree"
)

// AdaServeInterleaved is the ablation the paper's Challenge 2 argues
// against: it runs Algorithm 1 directly, interleaving GetTop selection with
// draft-model decoding. Every selected node must be expanded by the draft
// before its children become candidates, so one iteration costs up to
// (B − n) *serial* draft decoding steps — prohibitive next to the decoupled
// speculate-select pipeline, which needs only d parallel steps.
//
// Token trees produced this way are the theoretically optimal ones (given
// the draft's f(v) estimates), so this system trades latency for per-token
// optimality: the ablation quantifies that trade.
type AdaServeInterleaved struct {
	base
	// Budget is the verification token budget per iteration.
	Budget int
	// MaxAccept caps A(r) per iteration (no beam depth exists to cap it).
	MaxAccept float64
	// TopK bounds the children materialized per expansion.
	TopK int
	// Profile is the fitted verifier roofline (for t_spec estimation).
	Profile *gpu.Profile

	lastIterTime float64
	// DraftStepsTotal counts serial draft expansions across the run (the
	// ablation's headline statistic).
	DraftStepsTotal int
}

// NewAdaServeInterleaved builds the ablation system.
func NewAdaServeInterleaved(cfg Config) (*AdaServeInterleaved, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Engine.Draft() == nil {
		return nil, fmt.Errorf("sched: interleaved scheduling requires a draft model")
	}
	prof, err := gpu.ProfileCostModel(cfg.Engine.TargetCost(), 4096, 512)
	if err != nil {
		return nil, err
	}
	return &AdaServeInterleaved{
		base:      b,
		Budget:    prof.BudgetFor(1.3 * prof.Base),
		MaxAccept: 5,
		TopK:      8,
		Profile:   prof,
	}, nil
}

// Name implements System.
func (a *AdaServeInterleaved) Name() string { return "AdaServe (interleaved)" }

// lazyDraftTree implements core.ProbTree by expanding nodes with the draft
// model on demand. Each expansion models one draft decoding step.
type lazyDraftTree struct {
	draft lm.Model
	topK  int
	nodes []lazyNode
	// expansions counts draft decoding steps triggered.
	expansions int
}

type lazyNode struct {
	ctx      lm.Context
	tok      lm.Token
	pathProb float64
	children []int
	expanded bool
}

func newLazyDraftTree(draft lm.Model, ctx lm.Context, rootTok lm.Token, topK int) *lazyDraftTree {
	return &lazyDraftTree{
		draft: draft, topK: topK,
		nodes: []lazyNode{{ctx: ctx, tok: rootTok, pathProb: 1}},
	}
}

// Children implements core.ProbTree, expanding the node if needed.
func (t *lazyDraftTree) Children(id int) []int {
	n := &t.nodes[id]
	if !n.expanded {
		n.expanded = true
		t.expansions++
		dist := t.draft.Dist(n.ctx)
		parentProb := n.pathProb
		parentCtx := n.ctx
		for _, e := range dist.TopK(t.topK) {
			child := lazyNode{
				ctx:      parentCtx.Extend(e.Token),
				tok:      e.Token,
				pathProb: parentProb * e.Prob,
			}
			t.nodes = append(t.nodes, child)
			t.nodes[id].children = append(t.nodes[id].children, len(t.nodes)-1)
		}
		n = &t.nodes[id]
	}
	return n.children
}

// PathProb implements core.ProbTree.
func (t *lazyDraftTree) PathProb(id int) float64 { return t.nodes[id].pathProb }

// materialize converts a selected node set into a toktree Selection for
// verification.
func (t *lazyDraftTree) materialize(ctx lm.Context, rootTok lm.Token, selected []int) *toktree.Selection {
	tree := toktree.NewTree(ctx, rootTok)
	idMap := map[int]int{0: 0} // lazy ID -> toktree ID
	// Selected comes in insertion order, which is parent-before-child
	// (Algorithm 1 only selects nodes whose parents were selected).
	for _, lazyID := range selected {
		if lazyID == 0 {
			continue
		}
		parentLazy := t.parentOf(lazyID)
		parentTok, ok := idMap[parentLazy]
		if !ok {
			panic("sched: interleaved selection out of order")
		}
		n := t.nodes[lazyID]
		cond := n.pathProb / t.nodes[parentLazy].pathProb
		idMap[lazyID] = tree.AddChild(parentTok, n.tok, cond)
	}
	sel := toktree.NewSelection(tree)
	for _, lazyID := range selected {
		if lazyID != 0 {
			sel.Add(idMap[lazyID])
		}
	}
	return sel
}

// parentOf finds a node's parent by scanning children lists (lazy trees are
// small: at most budget x topK nodes).
func (t *lazyDraftTree) parentOf(id int) int {
	for pid := range t.nodes {
		for _, c := range t.nodes[pid].children {
			if c == id {
				return pid
			}
		}
	}
	panic(fmt.Sprintf("sched: lazy node %d has no parent", id))
}

// Iterate implements System.
func (a *AdaServeInterleaved) Iterate(now float64) IterationStats {
	a.finish()
	a.admitFIFO(now)

	if st, ok := a.prefillWhole(now); ok {
		return st
	}
	decode := a.pool.DecodingRequests()
	n := len(decode)
	if n == 0 {
		return IterationStats{Idle: true}
	}
	markFirstDecode(decode, now)

	budget := a.Budget
	if budget < n {
		budget = n
	}

	// Estimate t_spec: the serial draft expansions dominate.
	draftStep := a.cfg.Engine.DraftStepLatency()
	tspec := float64(budget-n)*draftStep + a.Profile.Latency(budget)
	if a.lastIterTime > tspec {
		tspec = a.lastIterTime
	}

	trees := make([]core.ProbTree, n)
	lazies := make([]*lazyDraftTree, n)
	thresholds := make([]float64, n)
	for i, r := range decode {
		lazies[i] = newLazyDraftTree(a.cfg.Engine.Draft(), r.Ctx, r.LastToken(), a.TopK)
		trees[i] = lazies[i]
		A := r.MinAcceptForSLO(now, tspec)
		if A < 0 {
			A = 0
		}
		if A > a.MaxAccept {
			A = a.MaxAccept
		}
		thresholds[i] = A
	}
	selected, err := core.OptimalTrees(trees, thresholds, budget)
	if errors.Is(err, core.ErrInvalid) {
		// Infeasible SLO set this iteration: retry in pure-throughput mode
		// (all thresholds dropped), as the practical system degrades.
		for i := range thresholds {
			thresholds[i] = 0
		}
		selected, err = core.OptimalTrees(trees, thresholds, budget)
	}
	if err != nil {
		panic(err)
	}

	// Draft cost: every expansion is one serial draft decoding step (the
	// (B − n) steps of the paper's Challenge 2).
	expansions := 0
	for _, lt := range lazies {
		expansions += lt.expansions
	}
	a.DraftStepsTotal += expansions
	specTime := float64(expansions) * draftStep

	items := make([]engine.VerifyItem, n)
	for i, r := range decode {
		items[i] = engine.VerifyItem{
			Req: r,
			Sel: lazies[i].materialize(r.Ctx, r.LastToken(), selected[i]),
		}
	}
	ver := a.cfg.Engine.VerifyTrees(items)
	st := IterationStats{
		Elapsed:    specTime + a.cfg.SchedOverhead + ver.GPUTime,
		SchedCPU:   a.cfg.SchedOverhead,
		SpecTime:   specTime,
		VerifyTime: ver.GPUTime,
	}
	end := now + st.Elapsed
	for i, r := range decode {
		st.TokensCommitted += engine.CommitVerify(r, ver.Results[i], end)
	}
	a.lastIterTime = st.Elapsed
	return st
}
