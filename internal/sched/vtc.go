package sched

import (
	"adaserve/internal/request"
)

// VTC is the Virtual Token Counter baseline: fair scheduling across service
// classes (here: the request categories) by tracking a weighted count of
// tokens served per class and always serving the most under-served classes
// first. Fairness is orthogonal to SLOs: a class that needs few tokens but
// tight latency gets no preferential latency treatment.
type VTC struct {
	base
	// WIn weights prompt tokens in the counter (VTC's w_in/w_out ratio).
	WIn float64
	// counters tracks weighted tokens served per category.
	counters [request.NumCategories]float64
}

// NewVTC constructs the baseline.
func NewVTC(cfg Config) (*VTC, error) {
	b, err := newBase(cfg)
	if err != nil {
		return nil, err
	}
	return &VTC{base: b, WIn: 0.5}, nil
}

// Name implements System.
func (v *VTC) Name() string { return "VTC" }

// Counter returns the current fair-share counter for a category (tests).
func (v *VTC) Counter(c request.Category) float64 { return v.counters[c] }

// Iterate implements System.
func (v *VTC) Iterate(now float64) IterationStats {
	v.finish()
	// Admission prefers the most under-served category (lowest counter),
	// the mechanism through which VTC realizes fairness under contention.
	v.admitOrdered(now, func(a, c *request.Request) bool {
		ca, cc := v.counters[a.Category], v.counters[c.Category]
		if ca != cc {
			return ca < cc
		}
		if a.ArrivalTime != c.ArrivalTime {
			return a.ArrivalTime < c.ArrivalTime
		}
		return a.ID < c.ID
	})

	if st, ok := v.prefillWhole(now); ok {
		for _, r := range v.pool.Running() {
			// Count freshly prefilled prompts toward their class.
			if r.Phase == request.Decoding && r.OutputLen() == 0 && r.FirstDecodeTime < 0 {
				v.counters[r.Category] += v.WIn * float64(r.PromptLen)
			}
		}
		return st
	}

	decode := v.pool.DecodingRequests()
	if len(decode) == 0 {
		return IterationStats{Idle: true}
	}
	markFirstDecode(decode, now)
	res := v.cfg.Engine.DecodeBatch(decode)
	st := IterationStats{
		Elapsed:    res.GPUTime + v.cfg.SchedOverhead,
		SchedCPU:   v.cfg.SchedOverhead,
		VerifyTime: res.GPUTime,
	}
	end := now + st.Elapsed
	for i, r := range decode {
		kept := r.Commit(res.Tokens[i:i+1], end)
		st.TokensCommitted += kept
		v.counters[r.Category] += float64(kept)
		r.VerifySteps++
	}
	return st
}
