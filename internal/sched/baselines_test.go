package sched

import (
	"reflect"
	"testing"

	"adaserve/internal/mathutil"
	"adaserve/internal/request"
	"adaserve/internal/workload"
)

// replay is a minimal in-package trace driver (the real drivers live in
// internal/sim and internal/cluster, which import sched and therefore cannot
// be used from these white-box tests): it delivers arrivals at iteration
// boundaries and advances the clock by each iteration's reported duration,
// optionally invoking check after every iteration.
func replay(t *testing.T, sys System, reqs []*request.Request, maxIters int, check func(now float64)) float64 {
	t.Helper()
	ordered, err := request.OrderForReplay(reqs)
	if err != nil {
		t.Fatal(err)
	}
	pool := sys.Pool()
	now := 0.0
	next := 0
	for iter := 0; iter < maxIters; iter++ {
		for next < len(ordered) && ordered[next].ArrivalTime <= now {
			pool.Enqueue(ordered[next])
			next++
		}
		if pool.NumWaiting() == 0 && pool.NumRunning() == 0 {
			if next >= len(ordered) {
				return now
			}
			now = ordered[next].ArrivalTime
			continue
		}
		st := sys.Iterate(now)
		if st.Idle {
			if pool.NumWaiting() == 0 && pool.NumRunning() == 0 {
				continue
			}
			if next < len(ordered) {
				now = ordered[next].ArrivalTime
				continue
			}
			t.Fatalf("%s deadlocked with %d waiting / %d running",
				sys.Name(), pool.NumWaiting(), pool.NumRunning())
		}
		if st.Elapsed <= 0 {
			t.Fatalf("%s reported non-positive elapsed %g", sys.Name(), st.Elapsed)
		}
		now += st.Elapsed
		if check != nil {
			check(now)
		}
	}
	t.Fatalf("%s did not drain in %d iterations", sys.Name(), maxIters)
	return now
}

// mixedSLOTrace synthesizes a short three-category trace through the real
// workload generator, so the baselines face the paper's SLO mix.
func mixedSLOTrace(t *testing.T, n int, rps float64, seed uint64) []*request.Request {
	t.Helper()
	gen, err := workload.NewGenerator(workload.GeneratorConfig{
		Seed:            seed,
		Mix:             workload.DefaultMix,
		BaselineLatency: 0.032, // Llama-70B-on-4xA100 ballpark
		MaxContext:      4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]float64, n)
	rng := mathutil.NewRNG(seed + 99)
	now := 0.0
	for i := range ts {
		now += rng.ExpFloat64() / rps
		ts[i] = now
	}
	return gen.FromTimestamps(ts)
}

// baselineBuilders are the four baselines this file targets directly.
func baselineBuilders() map[string]func(Config) (System, error) {
	return map[string]func(Config) (System, error){
		"FastServe":     func(c Config) (System, error) { return NewFastServe(c) },
		"Sarathi-Serve": func(c Config) (System, error) { return NewSarathi(c, 0) },
		"VTC":           func(c Config) (System, error) { return NewVTC(c) },
		"vLLM-Spec":     func(c Config) (System, error) { return NewVLLMSpec(c, 4) },
	}
}

// TestBaselineDeterminismAtFixedSeed replays the identical trace through two
// independently built instances of each baseline and requires bit-identical
// request outcomes: same token streams, same completion times.
func TestBaselineDeterminismAtFixedSeed(t *testing.T) {
	for name, build := range baselineBuilders() {
		t.Run(name, func(t *testing.T) {
			trace := mixedSLOTrace(t, 20, 8, 7)
			type outcome struct {
				tokens   []int32
				doneTime float64
				preempts int
			}
			run := func() []outcome {
				sys, err := build(testConfig(t))
				if err != nil {
					t.Fatal(err)
				}
				reqs := request.CloneAll(trace)
				replay(t, sys, reqs, 20000, nil)
				out := make([]outcome, len(reqs))
				for i, r := range reqs {
					toks := make([]int32, len(r.Output))
					for j, tok := range r.Output {
						toks[j] = int32(tok)
					}
					out[i] = outcome{tokens: toks, doneTime: r.DoneTime, preempts: r.PreemptCount}
				}
				return out
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Fatal("two runs at the same seed diverged")
			}
		})
	}
}

// TestBaselineAdmissionInvariants drives every baseline under a tight batch
// cap and checks, at every iteration boundary: the running set never exceeds
// MaxBatch, every running request holds a KV allocation, and every retired
// request has released it.
func TestBaselineAdmissionInvariants(t *testing.T) {
	for name, build := range baselineBuilders() {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig(t)
			cfg.MaxBatch = 3
			sys, err := build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reqs := request.CloneAll(mixedSLOTrace(t, 16, 20, 3))
			replay(t, sys, reqs, 20000, func(now float64) {
				if n := sys.Pool().NumRunning(); n > cfg.MaxBatch {
					t.Fatalf("running %d exceeds MaxBatch %d", n, cfg.MaxBatch)
				}
				for _, r := range sys.Pool().Running() {
					if !cfg.KV.Has(r.ID) {
						t.Fatalf("running request %d has no KV allocation", r.ID)
					}
				}
				for _, r := range sys.Pool().Done() {
					if cfg.KV.Has(r.ID) {
						t.Fatalf("done request %d still holds KV", r.ID)
					}
				}
			})
			if sys.Pool().NumDone() != len(reqs) {
				t.Fatalf("%d of %d done", sys.Pool().NumDone(), len(reqs))
			}
		})
	}
}

// TestFastServePreemptedRequestsFinish floods FastServe past its decode cap:
// the MLFQ must preempt at iteration granularity (someone's PreemptCount
// rises) yet every request must still complete — preemption may never strand
// work. Admission itself is bounded by MaxBatch, so the decode cap is
// tightened after everyone is admitted (modeling a capacity reduction), the
// scenario where iteration-granularity preemption binds.
func TestFastServePreemptedRequestsFinish(t *testing.T) {
	sys, err := NewFastServe(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var reqs []*request.Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, request.New(i+1, request.Chat, 0.05, 0, 48, 24, uint64(i)*31+1))
	}
	for _, r := range reqs {
		sys.Pool().Enqueue(r)
	}
	st := sys.Iterate(0) // admit + prefill everyone under the default cap
	sys.cfg.MaxBatch = 2
	now := st.Elapsed
	for iter := 0; ; iter++ {
		st := sys.Iterate(now)
		if st.Idle {
			break
		}
		now += st.Elapsed
		if iter > 20000 {
			t.Fatal("did not drain")
		}
	}
	preempts := 0
	for _, r := range reqs {
		if r.Phase != request.Done || r.OutputLen() != r.MaxNewTokens {
			t.Fatalf("request %d stranded: phase %s, %d/%d tokens", r.ID, r.Phase, r.OutputLen(), r.MaxNewTokens)
		}
		preempts += r.PreemptCount
	}
	if preempts == 0 {
		t.Fatal("cap of 2 with 6 decoding requests never preempted")
	}
}

// TestVTCCountersMonotone pins VTC's fairness bookkeeping: per-category
// counters never decrease, and after a mixed run every category that
// received service has a positive counter.
func TestVTCCountersMonotone(t *testing.T) {
	sys, err := NewVTC(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	reqs := request.CloneAll(mixedSLOTrace(t, 15, 10, 5))
	var last [request.NumCategories]float64
	replay(t, sys, reqs, 20000, func(now float64) {
		for c := 0; c < request.NumCategories; c++ {
			got := sys.Counter(request.Category(c))
			if got < last[c] {
				t.Fatalf("category %d counter decreased: %g -> %g", c, last[c], got)
			}
			last[c] = got
		}
	})
	for c := 0; c < request.NumCategories; c++ {
		served := false
		for _, r := range reqs {
			if r.Category == request.Category(c) && r.OutputLen() > 0 {
				served = true
			}
		}
		if served && sys.Counter(request.Category(c)) <= 0 {
			t.Fatalf("category %d served but counter is %g", c, sys.Counter(request.Category(c)))
		}
	}
}

// TestVLLMSpecCommitBound pins static speculation's structural bound: one
// verification pass commits at most K+1 tokens per request (K accepted
// drafts plus the bonus/correction token).
func TestVLLMSpecCommitBound(t *testing.T) {
	const k = 4
	sys, err := NewVLLMSpec(testConfig(t), k)
	if err != nil {
		t.Fatal(err)
	}
	reqs := request.CloneAll(mixedSLOTrace(t, 8, 15, 11))
	prev := make(map[int]int)
	replay(t, sys, reqs, 20000, func(now float64) {
		for _, r := range reqs {
			if got := r.OutputLen() - prev[r.ID]; got > k+1 {
				t.Fatalf("request %d committed %d tokens in one iteration, above k+1=%d", r.ID, got, k+1)
			}
			prev[r.ID] = r.OutputLen()
		}
	})
}

// TestSarathiIterationTokenBudget checks Sarathi's defining invariant across
// a full mixed run: no iteration processes more than TokenBudget tokens
// (decode tokens plus prefill chunks), except the degenerate
// one-oversized-prompt case the budget explicitly admits.
func TestSarathiIterationTokenBudget(t *testing.T) {
	cfg := testConfig(t)
	sys, err := NewSarathi(cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	reqs := request.CloneAll(mixedSLOTrace(t, 12, 12, 9))
	prevOut := make(map[int]int)
	prevPre := make(map[int]int)
	replay(t, sys, reqs, 20000, func(now float64) {
		tokens := 0
		for _, r := range reqs {
			tokens += r.OutputLen() - prevOut[r.ID]
			tokens += r.PrefillDone - prevPre[r.ID]
			prevOut[r.ID] = r.OutputLen()
			prevPre[r.ID] = r.PrefillDone
		}
		if tokens > sys.TokenBudget {
			t.Fatalf("iteration processed %d tokens, budget %d", tokens, sys.TokenBudget)
		}
	})
}

// TestBaselineMixedSLOAttainment is the per-baseline sanity check: at an
// easy load every baseline finishes the whole mixed-SLO trace and attains a
// sane share of SLOs — and the relaxed summarization SLO (150 ms) is never
// the class that suffers most under uniform batching.
func TestBaselineMixedSLOAttainment(t *testing.T) {
	for name, build := range baselineBuilders() {
		t.Run(name, func(t *testing.T) {
			sys, err := build(testConfig(t))
			if err != nil {
				t.Fatal(err)
			}
			reqs := request.CloneAll(mixedSLOTrace(t, 24, 2, 13))
			replay(t, sys, reqs, 40000, nil)
			attained, total := 0, 0
			summAttained, summ := 0, 0
			for _, r := range reqs {
				total++
				if r.AttainedSLO() {
					attained++
				}
				if r.Category == request.Summarization {
					summ++
					if r.AttainedSLO() {
						summAttained++
					}
				}
			}
			if total != 24 {
				t.Fatalf("trace lost requests: %d", total)
			}
			frac := float64(attained) / float64(total)
			if frac < 0.5 {
				t.Fatalf("%s attained only %.0f%% at trivial load", name, 100*frac)
			}
			if summ > 0 && summAttained == 0 {
				t.Fatalf("%s violated every relaxed-SLO request at trivial load", name)
			}
		})
	}
}
