// Package kvcache implements a PagedAttention-style block allocator for
// KV-cache memory, the substrate vLLM introduced and every system in this
// repository (AdaServe included) runs on.
//
// Tokens are stored in fixed-size blocks; a sequence owns a block table.
// The allocator tracks capacity so the simulator can enforce admission
// control and measure fragmentation (the internal waste of partially filled
// last blocks).
package kvcache

import (
	"fmt"
	"sort"
)

// Config sizes the allocator.
type Config struct {
	// BlockSize is the tokens per block (vLLM default: 16).
	BlockSize int
	// NumBlocks is the total block pool size.
	NumBlocks int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.BlockSize <= 0 {
		return fmt.Errorf("kvcache: block size %d <= 0", c.BlockSize)
	}
	if c.NumBlocks <= 0 {
		return fmt.Errorf("kvcache: block count %d <= 0", c.NumBlocks)
	}
	return nil
}

// ConfigForTokens returns a Config able to hold capacityTokens with the
// given block size.
func ConfigForTokens(capacityTokens, blockSize int) Config {
	blocks := (capacityTokens + blockSize - 1) / blockSize
	if blocks < 1 {
		blocks = 1
	}
	return Config{BlockSize: blockSize, NumBlocks: blocks}
}

// seq tracks one sequence's allocation. With prefix caching enabled, hashes
// runs parallel to blocks over the prompt's full blocks: a non-zero entry is
// the fingerprint of a registry-backed (shared or shareable) block, 0 marks a
// private block. hashes is always at most as long as blocks and empty when
// prefix caching is off.
type seq struct {
	blocks []int
	tokens int
	hashes []uint64
}

// Allocator manages the block pool. It is not safe for concurrent use; the
// simulator is single-threaded per serving instance.
type Allocator struct {
	cfg  Config
	free []int
	seqs map[int]*seq

	// prefix is nil unless EnablePrefix was called; every shared-prefix path
	// gates on it so the disabled allocator behaves exactly as before.
	prefix *prefixState

	// PeakUsedBlocks records the allocation high-water mark.
	PeakUsedBlocks int
	// Failures counts rejected allocations (capacity exhausted).
	Failures int
}

// New creates an allocator with all blocks free.
func New(cfg Config) (*Allocator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Allocator{cfg: cfg, seqs: make(map[int]*seq)}
	a.free = make([]int, cfg.NumBlocks)
	for i := range a.free {
		a.free[i] = cfg.NumBlocks - 1 - i // pop from the end → ascending IDs
	}
	return a, nil
}

// MustNew panics on config error.
func MustNew(cfg Config) *Allocator {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// Config returns the allocator's configuration.
func (a *Allocator) Config() Config { return a.cfg }

// blocksFor returns the blocks needed for n tokens.
func (a *Allocator) blocksFor(n int) int {
	return (n + a.cfg.BlockSize - 1) / a.cfg.BlockSize
}

// CanAllocate reports whether extending/creating a sequence to hold
// additional tokens would succeed, given its current token count.
func (a *Allocator) CanAllocate(seqID, additional int) bool {
	cur := 0
	if s, ok := a.seqs[seqID]; ok {
		cur = s.tokens
	}
	need := a.blocksFor(cur+additional) - a.blocksFor(cur)
	return need <= a.availableBlocks()
}

// Allocate registers a new sequence with tokens tokens. It fails if the
// sequence exists or capacity is insufficient.
func (a *Allocator) Allocate(seqID, tokens int) error {
	if _, ok := a.seqs[seqID]; ok {
		return fmt.Errorf("kvcache: sequence %d already allocated", seqID)
	}
	if tokens < 0 {
		return fmt.Errorf("kvcache: negative token count %d", tokens)
	}
	need := a.blocksFor(tokens)
	if avail := a.availableBlocks(); need > avail {
		a.Failures++
		return fmt.Errorf("kvcache: need %d blocks, %d free", need, avail)
	}
	s := &seq{tokens: tokens}
	for i := 0; i < need; i++ {
		id, _ := a.popAvailable()
		s.blocks = append(s.blocks, id)
	}
	a.seqs[seqID] = s
	a.updatePeak()
	return nil
}

// Extend grows a sequence by n tokens, allocating blocks as needed.
func (a *Allocator) Extend(seqID, n int) error {
	s, ok := a.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvcache: sequence %d not allocated", seqID)
	}
	if n < 0 {
		return fmt.Errorf("kvcache: negative extension %d", n)
	}
	// Copy-on-write: appending tokens into a partially filled block that is
	// registry-backed would diverge from the cached content every sharer
	// sees, so the sequence must take a private copy of that block first.
	cow := -1
	if n > 0 && s.tokens%a.cfg.BlockSize != 0 {
		if i := len(s.blocks) - 1; i >= 0 && i < len(s.hashes) && s.hashes[i] != 0 {
			cow = i
		}
	}
	need := a.blocksFor(s.tokens+n) - a.blocksFor(s.tokens)
	extra := 0
	if cow >= 0 {
		extra = 1
	}
	if avail := a.availableBlocks(); need+extra > avail {
		a.Failures++
		return fmt.Errorf("kvcache: need %d blocks, %d free", need+extra, avail)
	}
	if cow >= 0 {
		id, _ := a.popAvailable()
		a.release(s.hashes[cow])
		s.blocks[cow] = id
		s.hashes[cow] = 0
	}
	for i := 0; i < need; i++ {
		id, _ := a.popAvailable()
		s.blocks = append(s.blocks, id)
	}
	s.tokens += n
	a.updatePeak()
	return nil
}

// Shrink releases tokens from the tail of a sequence (e.g. discarded
// speculative tokens), freeing now-empty blocks.
func (a *Allocator) Shrink(seqID, n int) error {
	s, ok := a.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvcache: sequence %d not allocated", seqID)
	}
	if n < 0 || n > s.tokens {
		return fmt.Errorf("kvcache: shrink %d out of range (have %d)", n, s.tokens)
	}
	s.tokens -= n
	keep := a.blocksFor(s.tokens)
	for len(s.blocks) > keep {
		i := len(s.blocks) - 1
		last := s.blocks[i]
		s.blocks = s.blocks[:i]
		var h uint64
		if i < len(s.hashes) {
			h = s.hashes[i]
			s.hashes = s.hashes[:i]
		}
		if h != 0 {
			a.release(h)
		} else {
			a.free = append(a.free, last)
		}
	}
	return nil
}

// Free releases all blocks of a sequence.
func (a *Allocator) Free(seqID int) error {
	s, ok := a.seqs[seqID]
	if !ok {
		return fmt.Errorf("kvcache: sequence %d not allocated", seqID)
	}
	if len(s.hashes) == 0 {
		a.free = append(a.free, s.blocks...)
	} else {
		for i, b := range s.blocks {
			if i < len(s.hashes) && s.hashes[i] != 0 {
				a.release(s.hashes[i])
			} else {
				a.free = append(a.free, b)
			}
		}
	}
	delete(a.seqs, seqID)
	return nil
}

// Has reports whether the sequence is registered.
func (a *Allocator) Has(seqID int) bool {
	_, ok := a.seqs[seqID]
	return ok
}

// SeqTokens returns the token count of a sequence (0 if absent).
func (a *Allocator) SeqTokens(seqID int) int {
	if s, ok := a.seqs[seqID]; ok {
		return s.tokens
	}
	return 0
}

// UsedBlocks returns the number of allocated blocks.
func (a *Allocator) UsedBlocks() int { return a.cfg.NumBlocks - len(a.free) }

// FreeBlocks returns the number of free blocks.
func (a *Allocator) FreeBlocks() int { return len(a.free) }

// FreeTokens returns how many more tokens could be stored in free blocks.
func (a *Allocator) FreeTokens() int { return len(a.free) * a.cfg.BlockSize }

// NumSeqs returns the number of registered sequences.
func (a *Allocator) NumSeqs() int { return len(a.seqs) }

// TotalTokens returns the total tokens held across sequences.
func (a *Allocator) TotalTokens() int {
	t := 0
	for _, s := range a.seqs {
		t += s.tokens
	}
	return t
}

// InternalFragmentation returns the fraction of allocated block capacity
// that holds no token (waste inside partially filled last blocks).
func (a *Allocator) InternalFragmentation() float64 {
	used := a.UsedBlocks() * a.cfg.BlockSize
	if used == 0 {
		return 0
	}
	return float64(used-a.TotalTokens()) / float64(used)
}

// BlockTable returns a copy of the block IDs owned by a sequence, in order.
func (a *Allocator) BlockTable(seqID int) []int {
	s, ok := a.seqs[seqID]
	if !ok {
		return nil
	}
	out := make([]int, len(s.blocks))
	copy(out, s.blocks)
	return out
}

// SeqIDs returns the registered sequence IDs in ascending order.
func (a *Allocator) SeqIDs() []int {
	ids := make([]int, 0, len(a.seqs))
	for id := range a.seqs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (a *Allocator) pop() int {
	b := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	return b
}

func (a *Allocator) updatePeak() {
	if u := a.UsedBlocks(); u > a.PeakUsedBlocks {
		a.PeakUsedBlocks = u
	}
}
