package kvcache

import (
	"testing"
	"testing/quick"

	"adaserve/internal/mathutil"
)

// newPrefixAlloc builds an allocator with prefix caching on.
func newPrefixAlloc(t *testing.T, blockSize, numBlocks int, cfg PrefixConfig) *Allocator {
	t.Helper()
	a := newAlloc(t, blockSize, numBlocks)
	if err := a.EnablePrefix(cfg); err != nil {
		t.Fatal(err)
	}
	return a
}

// prompt fabricates deterministic token seeds for n tokens of "document" doc.
func prompt(doc uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = mathutil.Hash2(doc, uint64(i))
	}
	return out
}

// check fails the test on the first invariant violation.
func check(t *testing.T, a *Allocator) {
	t.Helper()
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkToZeroKeepsSeqRegistered(t *testing.T) {
	a := newAlloc(t, 16, 4)
	if err := a.Allocate(1, 40); err != nil {
		t.Fatal(err)
	}
	if err := a.Shrink(1, 40); err != nil {
		t.Fatal(err)
	}
	if !a.Has(1) || a.SeqTokens(1) != 0 {
		t.Fatalf("shrunk-to-zero sequence gone: has=%v tokens=%d", a.Has(1), a.SeqTokens(1))
	}
	if bt := a.BlockTable(1); len(bt) != 0 {
		t.Fatalf("shrunk-to-zero sequence still holds blocks %v", bt)
	}
	if a.UsedBlocks() != 0 {
		t.Fatalf("used %d blocks after shrink to zero", a.UsedBlocks())
	}
	// The empty registration must still extend and free normally.
	if err := a.Extend(1, 17); err != nil {
		t.Fatal(err)
	}
	if a.UsedBlocks() != 2 {
		t.Fatalf("used %d blocks after re-extend, want 2", a.UsedBlocks())
	}
	if err := a.Free(1); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateZeroTokens(t *testing.T) {
	a := newAlloc(t, 16, 4)
	if err := a.Allocate(1, 0); err != nil {
		t.Fatal(err)
	}
	if !a.Has(1) || a.UsedBlocks() != 0 {
		t.Fatalf("zero-token allocation: has=%v used=%d", a.Has(1), a.UsedBlocks())
	}
	if err := a.Allocate(1, 0); err == nil {
		t.Fatal("duplicate zero-token allocation accepted")
	}
	if err := a.Free(1); err != nil {
		t.Fatal(err)
	}
	if a.Has(1) {
		t.Fatal("zero-token sequence survived Free")
	}
}

func TestCanAllocateUnknownSeq(t *testing.T) {
	a := newAlloc(t, 16, 4)
	// An unknown sequence starts from zero tokens: the answer depends only on
	// pool headroom, and asking must not register anything.
	if !a.CanAllocate(42, 64) || a.CanAllocate(42, 65) {
		t.Fatal("unknown-sequence headroom wrong")
	}
	if a.Has(42) || a.NumSeqs() != 0 {
		t.Fatal("CanAllocate registered a sequence")
	}
}

func TestPrefixMatchSkipsSharedBlocks(t *testing.T) {
	a := newPrefixAlloc(t, 4, 16, PrefixConfig{})
	doc := prompt(7, 12)

	hit, err := a.AllocateWithPrefix(1, 12, doc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Tokens != 0 {
		t.Fatalf("first arrival hit %d tokens", hit.Tokens)
	}
	check(t, a)

	// Until prefill completes the registered blocks are not matchable.
	if n := a.MatchPrefixTokens(doc); n != 0 {
		t.Fatalf("uncomputed blocks matched %d tokens", n)
	}
	a.MarkComputed(1, 12)
	if n := a.MatchPrefixTokens(doc); n != 12 {
		t.Fatalf("computed prefix matches %d tokens, want 12", n)
	}
	n, blocks := a.MatchPrefix(doc)
	if n != 12 || len(blocks) != 3 {
		t.Fatalf("MatchPrefix = %d tokens, %v", n, blocks)
	}

	used := a.UsedBlocks()
	hit, err = a.AllocateWithPrefix(2, 12, doc, 12)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Tokens != 12 || hit.Reloaded != 0 || hit.Stall != 0 {
		t.Fatalf("second arrival hit %+v, want 12 cached tokens", hit)
	}
	if a.UsedBlocks() != used {
		t.Fatalf("full-prefix hit consumed blocks: %d -> %d", used, a.UsedBlocks())
	}
	bt1, bt2 := a.BlockTable(1), a.BlockTable(2)
	for i := range bt2 {
		if bt1[i] != bt2[i] {
			t.Fatalf("shared prefix maps to different blocks: %v vs %v", bt1, bt2)
		}
	}
	check(t, a)

	st := a.PrefixStats()
	if st.Lookups != 1 || st.Hits != 1 || st.HitTokens != 12 {
		t.Fatalf("stats %+v", st)
	}

	// matchLimit caps the hit at full blocks below the limit: with limit 11
	// only the first two 4-token blocks may match.
	hit, err = a.AllocateWithPrefix(3, 12, doc, 11)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Tokens != 8 {
		t.Fatalf("limit-11 hit %d tokens, want 8", hit.Tokens)
	}
	check(t, a)
}

func TestPrefixCopyOnWriteDiverges(t *testing.T) {
	a := newPrefixAlloc(t, 4, 16, PrefixConfig{})
	doc := prompt(3, 8)
	if _, err := a.AllocateWithPrefix(1, 8, doc, 0); err != nil {
		t.Fatal(err)
	}
	a.MarkComputed(1, 8)
	if _, err := a.AllocateWithPrefix(2, 8, doc, 8); err != nil {
		t.Fatal(err)
	}
	check(t, a)

	// Speculative decode discards a token and re-extends: the sequence's last
	// block is now partially filled AND shared, so appending must first take
	// a private copy instead of mutating the block sequence 1 still reads.
	if err := a.Shrink(2, 1); err != nil {
		t.Fatal(err)
	}
	check(t, a)
	if err := a.Extend(2, 2); err != nil {
		t.Fatal(err)
	}
	check(t, a)
	bt1, bt2 := a.BlockTable(1), a.BlockTable(2)
	if bt1[0] != bt2[0] {
		t.Fatalf("untouched prefix block diverged: %v vs %v", bt1, bt2)
	}
	if bt1[1] == bt2[1] {
		t.Fatalf("shared block written without copy: %v vs %v", bt1, bt2)
	}
	// Sequence 1's copy is untouched and still matchable in full.
	if n := a.MatchPrefixTokens(doc); n != 8 {
		t.Fatalf("donor prefix matches %d tokens after COW, want 8", n)
	}
	if err := a.Free(1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(2); err != nil {
		t.Fatal(err)
	}
	check(t, a)
	if a.UsedBlocks() != a.ColdBlocks() {
		t.Fatalf("used %d != cold %d after freeing everything", a.UsedBlocks(), a.ColdBlocks())
	}
}

func TestPrefixEvictionDemotionAndReload(t *testing.T) {
	stall := 0.0125
	a := newPrefixAlloc(t, 4, 4, PrefixConfig{
		HostBlocks:    2,
		ReloadLatency: func(tokens int) float64 { return stall * float64(tokens) / 4 },
	})
	docA, docB := prompt(1, 8), prompt(2, 16)

	// A's two blocks go cold on Free: still GPU-resident and matchable.
	if _, err := a.AllocateWithPrefix(1, 8, docA, 0); err != nil {
		t.Fatal(err)
	}
	a.MarkComputed(1, 8)
	if err := a.Free(1); err != nil {
		t.Fatal(err)
	}
	check(t, a)
	if a.ColdBlocks() != 2 || a.MatchPrefixTokens(docA) != 8 {
		t.Fatalf("cold=%d match=%d after free", a.ColdBlocks(), a.MatchPrefixTokens(docA))
	}

	// B needs the whole pool: both cold blocks are reclaimed and demote to
	// the host tier, where they remain matchable.
	if _, err := a.AllocateWithPrefix(2, 16, docB, 0); err != nil {
		t.Fatal(err)
	}
	check(t, a)
	st := a.PrefixStats()
	if st.Evictions != 2 || st.HostEvictions != 0 || a.HostBlocksResident() != 2 {
		t.Fatalf("after pressure: %+v, host %d", st, a.HostBlocksResident())
	}
	if a.MatchPrefixTokens(docA) != 8 {
		t.Fatal("host-resident prefix no longer matchable")
	}
	n, blocks := a.MatchPrefix(docA)
	if n != 8 || blocks[0] != -1 || blocks[1] != -1 {
		t.Fatalf("MatchPrefix on host tier = %d, %v (want -1 markers)", n, blocks)
	}
	if err := a.Free(2); err != nil {
		t.Fatal(err)
	}
	check(t, a)

	// A's return pays the reload: both blocks promote back to the GPU and the
	// hit carries the priced stall.
	hit, err := a.AllocateWithPrefix(3, 8, docA, 8)
	if err != nil {
		t.Fatal(err)
	}
	check(t, a)
	if hit.Tokens != 8 || hit.Reloaded != 8 {
		t.Fatalf("reload hit %+v, want 8 tokens all reloaded", hit)
	}
	if want := stall * 2; hit.Stall != want {
		t.Fatalf("stall %g, want %g", hit.Stall, want)
	}
	st = a.PrefixStats()
	if st.Reloads != 2 || st.ReloadedTokens != 8 || st.ReloadStall != stall*2 {
		t.Fatalf("reload stats %+v", st)
	}
	if a.HostBlocksResident() != 0 {
		t.Fatalf("host tier still holds %d after reload", a.HostBlocksResident())
	}
}

func TestPrefixHostTierOverflowDrops(t *testing.T) {
	a := newPrefixAlloc(t, 4, 2, PrefixConfig{HostBlocks: 1})
	if _, err := a.AllocateWithPrefix(1, 8, prompt(1, 8), 0); err != nil {
		t.Fatal(err)
	}
	a.MarkComputed(1, 8)
	if err := a.Free(1); err != nil {
		t.Fatal(err)
	}
	// Reclaiming both cold blocks demotes both, but the 1-block tier can only
	// keep the newer one: the older demotion is dropped for good.
	if _, err := a.AllocateWithPrefix(2, 8, prompt(2, 8), 0); err != nil {
		t.Fatal(err)
	}
	check(t, a)
	st := a.PrefixStats()
	if st.Evictions != 2 || st.HostEvictions != 1 || a.HostBlocksResident() != 1 {
		t.Fatalf("overflow: %+v, host %d", st, a.HostBlocksResident())
	}
	// The drop took the chain's FIRST block (demoted earliest, so oldest on
	// the host LRU); the surviving second block is unreachable without its
	// predecessor, because a chained fingerprint match must be contiguous
	// from the prompt start.
	if n := a.MatchPrefixTokens(prompt(1, 8)); n != 0 {
		t.Fatalf("broken chain still matches %d tokens", n)
	}
}

func TestPrefixNoTierDropsOnEviction(t *testing.T) {
	a := newPrefixAlloc(t, 4, 2, PrefixConfig{})
	if _, err := a.AllocateWithPrefix(1, 8, prompt(1, 8), 0); err != nil {
		t.Fatal(err)
	}
	a.MarkComputed(1, 8)
	if err := a.Free(1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocateWithPrefix(2, 8, prompt(2, 8), 0); err != nil {
		t.Fatal(err)
	}
	check(t, a)
	st := a.PrefixStats()
	if st.Evictions != 2 || a.HostBlocksResident() != 0 {
		t.Fatalf("tier-less eviction: %+v, host %d", st, a.HostBlocksResident())
	}
	if a.MatchPrefixTokens(prompt(1, 8)) != 0 {
		t.Fatal("dropped blocks still match")
	}
}

func TestEnablePrefixValidation(t *testing.T) {
	a := newAlloc(t, 4, 4)
	if err := a.EnablePrefix(PrefixConfig{HostBlocks: -1}); err == nil {
		t.Fatal("negative host tier accepted")
	}
	if err := a.EnablePrefix(PrefixConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := a.EnablePrefix(PrefixConfig{}); err == nil {
		t.Fatal("double enable accepted")
	}
	b := newAlloc(t, 4, 4)
	if err := b.Allocate(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.EnablePrefix(PrefixConfig{}); err == nil {
		t.Fatal("enable on a non-empty allocator accepted")
	}
}

// TestPrefixInvariantProperty drives random allocator operations — prefix
// allocations over a tiny document alphabet (forcing heavy sharing), extends,
// shrinks, frees and prefill completions — and runs the full CheckInvariants
// accounting after every single mutation: refcounts equal actual holders,
// every block has exactly one owner, LRU lists agree with entry states, and
// the host tier respects its bound.
func TestPrefixInvariantProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := mathutil.NewRNG(seed)
		a := MustNew(Config{BlockSize: 4, NumBlocks: 24})
		if err := a.EnablePrefix(PrefixConfig{HostBlocks: int(rng.Intn(3)) * 4}); err != nil {
			return false
		}
		live := map[int]bool{}
		next := 0
		for op := 0; op < 300; op++ {
			switch rng.Intn(6) {
			case 0, 1: // allocate with prefix matching
				id := next
				next++
				tokens := rng.Intn(40)
				doc := prompt(uint64(rng.Intn(3)), tokens)
				limit := tokens
				if limit > 0 {
					limit = rng.Intn(tokens + 1)
				}
				if _, err := a.AllocateWithPrefix(id, tokens, doc, limit); err == nil {
					live[id] = true
				}
			case 2: // extend
				for id := range live {
					_ = a.Extend(id, rng.Intn(12))
					break
				}
			case 3: // shrink
				for id := range live {
					if n := a.SeqTokens(id); n > 0 {
						_ = a.Shrink(id, rng.Intn(n+1))
					}
					break
				}
			case 4: // prefill progress makes blocks matchable
				for id := range live {
					a.MarkComputed(id, rng.Intn(a.SeqTokens(id)+1))
					break
				}
			case 5: // free
				for id := range live {
					if a.Free(id) == nil {
						delete(live, id)
					}
					break
				}
			}
			if err := a.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPrefixEnabledReporting(t *testing.T) {
	a := newAlloc(t, 4, 8)
	if a.PrefixEnabled() {
		t.Fatal("fresh allocator reports prefix caching enabled")
	}
	if err := a.EnablePrefix(PrefixConfig{}); err != nil {
		t.Fatal(err)
	}
	if !a.PrefixEnabled() {
		t.Fatal("enabled allocator reports prefix caching disabled")
	}
}

// TestPrefixReloadSurvivesHostOverflow regression-tests an eviction race
// inside AllocateWithPrefix: reloading a matched host-tier block can itself
// demote cold blocks to the host tier, and the resulting overflow drop used
// to claim the oldest host entry — which could be the very entry being
// reloaded, leaving the new sequence chained to a deleted fingerprint and
// the host LRU corrupted by a double remove.
func TestPrefixReloadSurvivesHostOverflow(t *testing.T) {
	a := newPrefixAlloc(t, 4, 3, PrefixConfig{HostBlocks: 1})

	// doc1's single block: computed, freed to cold, then forced to the host
	// tier by a private allocation that drains the pool.
	if _, err := a.AllocateWithPrefix(1, 4, prompt(1, 4), 4); err != nil {
		t.Fatal(err)
	}
	a.MarkComputed(1, 4)
	if err := a.Free(1); err != nil {
		t.Fatal(err)
	}
	if err := a.Allocate(90, 12); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(90); err != nil {
		t.Fatal(err)
	}
	if a.HostBlocksResident() != 1 {
		t.Fatalf("host tier holds %d, want doc1's block", a.HostBlocksResident())
	}
	check(t, a)

	// Two more cold single-block entries and a private holder so the free
	// list is empty: the doc1 reload below must evict cold blocks, and each
	// eviction demotes into the already-full host tier.
	for doc := uint64(2); doc <= 3; doc++ {
		id := int(doc)
		if _, err := a.AllocateWithPrefix(id, 4, prompt(doc, 4), 4); err != nil {
			t.Fatal(err)
		}
		a.MarkComputed(id, 4)
		if err := a.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Allocate(91, 4); err != nil {
		t.Fatal(err)
	}
	if a.FreeBlocks() != 0 || a.ColdBlocks() != 2 {
		t.Fatalf("free %d cold %d, want 0/2", a.FreeBlocks(), a.ColdBlocks())
	}
	check(t, a)

	// Match doc1's host-resident block and extend past it: the reload's own
	// evictions overflow the host tier, but must drop the unmatched cold
	// demotions, never the matched entry.
	hit, err := a.AllocateWithPrefix(4, 8, prompt(1, 8), 8)
	if err != nil {
		t.Fatal(err)
	}
	check(t, a)
	if hit.Tokens != 4 || hit.Reloaded != 4 {
		t.Fatalf("hit %+v, want 4 cached tokens, all reloaded", hit)
	}
	a.MarkComputed(4, 8)
	if got := a.MatchPrefixTokens(prompt(1, 8)); got != 8 {
		t.Fatalf("donor prefix matches %d tokens after reload, want 8", got)
	}
}
