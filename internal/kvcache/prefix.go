// Shared-prefix reuse: content-addressed block hashing over prompt token
// seeds, refcounted shared blocks with copy-on-write divergence, and a tiered
// host-offload pool for evicted cold prefixes.
//
// The scheme follows vLLM's automatic prefix caching: only FULL prompt blocks
// are shareable, each identified by a chained fingerprint — the hash of the
// block's token content mixed with the previous block's fingerprint — so a
// block match implies the entire prefix up to and including that block
// matches. A newly allocated sequence registers its full prompt blocks in the
// fingerprint table; a later sequence whose prompt chains to the same
// fingerprints takes references on the same physical blocks and skips prefill
// for the matched tokens. Blocks whose last reference drops join a cold LRU:
// still GPU-resident and instantly matchable, reclaimed only under allocation
// pressure. With a host tier configured, reclaimed cold blocks demote to a
// bounded host pool instead of vanishing; matching a host-resident block
// costs a reload priced by the configured interconnect latency, charged to
// the admitted request ahead of its first prefill pass.
//
// Everything here is deterministic: LRU order is maintained with intrusive
// lists (never map iteration), fingerprints are pure functions of token
// content, and matching is strictly leftmost-contiguous over computed blocks.
package kvcache

import (
	"fmt"

	"adaserve/internal/mathutil"
)

// PrefixConfig enables shared-prefix reuse on an allocator.
type PrefixConfig struct {
	// HostBlocks caps the host offload tier in blocks. 0 disables the tier:
	// cold blocks reclaimed under allocation pressure are dropped outright.
	HostBlocks int
	// ReloadLatency prices moving n reloaded tokens from the host tier back
	// onto the GPU (typically gpu.KVTransfer.Latency over a PCIe link). nil
	// makes reloads free; the reload still counts in the stats.
	ReloadLatency func(tokens int) float64
}

// PrefixStats counts what the prefix cache did over the allocator's life.
type PrefixStats struct {
	// Lookups counts admissions that attempted a prefix match; Hits those
	// that matched at least one block.
	Lookups, Hits int
	// HitTokens is the total prompt tokens served from cache — prefill work
	// the admitted requests skipped.
	HitTokens int
	// Evictions counts cold blocks reclaimed from the GPU (demoted to the
	// host tier, or dropped when no tier is configured); HostEvictions
	// counts host-tier entries dropped at host-capacity pressure.
	Evictions, HostEvictions int
	// Reloads counts host-resident blocks promoted back to the GPU on a
	// match, covering ReloadedTokens tokens and stalling admitted requests
	// for ReloadStall seconds in total.
	Reloads        int
	ReloadedTokens int
	ReloadStall    float64
}

// PrefixHit reports what AllocateWithPrefix reused for one sequence.
type PrefixHit struct {
	// Tokens is the cached prefix length: prompt tokens whose prefill the
	// sequence skips.
	Tokens int
	// Reloaded is the subset of Tokens that had to be reloaded from the
	// host tier; Stall is the priced reload latency the caller must charge
	// before the sequence's first prefill pass.
	Reloaded int
	Stall    float64
}

// shared is one fingerprint-table entry: a physical block holding one full
// block of some prompt's KV, shared by refs sequences. refs == 0 means cold:
// GPU-resident on the cold LRU (matchable, reclaimable) or demoted to the
// host tier (matchable via reload). The prev/next links thread the entry
// into whichever LRU list currently owns it.
type shared struct {
	hash       uint64
	id         int
	refs       int
	computed   bool
	onHost     bool
	prev, next *shared
}

// lruList is an intrusive doubly linked list of shared entries, front = least
// recently used. Deterministic by construction: order depends only on the
// sequence of push/remove operations, never on map iteration.
type lruList struct {
	head, tail *shared
	n          int
}

func (l *lruList) pushBack(e *shared) {
	e.prev, e.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
	l.n++
}

func (l *lruList) remove(e *shared) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.n--
}

func (l *lruList) popFront() *shared {
	e := l.head
	l.remove(e)
	return e
}

// prefixState is the allocator's prefix-cache side table.
type prefixState struct {
	cfg   PrefixConfig
	table map[uint64]*shared
	cold  lruList // refs == 0, GPU-resident, LRU reclaim order
	host  lruList // offloaded entries, LRU drop order
	stats PrefixStats
}

// prefixChainSeed anchors the block fingerprint chain.
const prefixChainSeed uint64 = 0x70726566697843 // "prefixC"

// blockChainHash extends the fingerprint chain over one full block of token
// seeds. It never returns 0: seq.hashes uses 0 as the "private block"
// sentinel.
func blockChainHash(prev uint64, tokens []uint64) uint64 {
	h := mathutil.Hash2(prev, uint64(len(tokens)))
	for _, t := range tokens {
		h = mathutil.Hash2(h, t)
	}
	if h == 0 {
		h = 1
	}
	return h
}

// EnablePrefix turns on shared-prefix reuse. It must be called on an empty
// allocator (no sequences registered), before any allocation.
func (a *Allocator) EnablePrefix(cfg PrefixConfig) error {
	if a.prefix != nil {
		return fmt.Errorf("kvcache: prefix caching already enabled")
	}
	if len(a.seqs) != 0 || a.UsedBlocks() != 0 {
		return fmt.Errorf("kvcache: prefix caching must be enabled on an empty allocator")
	}
	if cfg.HostBlocks < 0 {
		return fmt.Errorf("kvcache: negative host tier size %d", cfg.HostBlocks)
	}
	a.prefix = &prefixState{cfg: cfg, table: make(map[uint64]*shared)}
	return nil
}

// PrefixEnabled reports whether shared-prefix reuse is on.
func (a *Allocator) PrefixEnabled() bool { return a.prefix != nil }

// PrefixStats returns a copy of the prefix-cache counters (zero when
// disabled).
func (a *Allocator) PrefixStats() PrefixStats {
	if a.prefix == nil {
		return PrefixStats{}
	}
	return a.prefix.stats
}

// ColdBlocks returns the GPU-resident cold (refcount zero, reclaimable)
// shared blocks.
func (a *Allocator) ColdBlocks() int {
	if a.prefix == nil {
		return 0
	}
	return a.prefix.cold.n
}

// HostBlocksResident returns the host-tier entries currently held.
func (a *Allocator) HostBlocksResident() int {
	if a.prefix == nil {
		return 0
	}
	return a.prefix.host.n
}

// availableBlocks is the allocation headroom: free-list blocks plus cold
// shared blocks that can be reclaimed on demand.
func (a *Allocator) availableBlocks() int {
	n := len(a.free)
	if a.prefix != nil {
		n += a.prefix.cold.n
	}
	return n
}

// popAvailable takes one GPU block: from the free list, or by reclaiming the
// least-recently-used cold shared block (demoting it to the host tier when
// one is configured, dropping it otherwise).
func (a *Allocator) popAvailable() (int, bool) {
	if len(a.free) > 0 {
		return a.pop(), true
	}
	p := a.prefix
	if p == nil || p.cold.n == 0 {
		return 0, false
	}
	e := p.cold.popFront()
	id := e.id
	p.stats.Evictions++
	if p.cfg.HostBlocks > 0 {
		e.onHost = true
		e.id = -1
		p.host.pushBack(e)
		if p.host.n > p.cfg.HostBlocks {
			v := p.host.popFront()
			delete(p.table, v.hash)
			p.stats.HostEvictions++
		}
	} else {
		delete(p.table, e.hash)
	}
	return id, true
}

// acquire takes a reference on a GPU-resident shared entry, pulling it off
// the cold list when this is the first reference back.
func (a *Allocator) acquire(e *shared) {
	if e.refs == 0 {
		a.prefix.cold.remove(e)
	}
	e.refs++
}

// release drops one reference on a registry-backed block. The last release
// of a computed block parks it on the cold LRU (still matchable, reclaimed
// only under pressure); a block whose prefill never completed is worthless
// as a cache entry and returns straight to the free list.
func (a *Allocator) release(h uint64) {
	p := a.prefix
	e := p.table[h]
	if e == nil || e.refs <= 0 || e.onHost {
		panic(fmt.Sprintf("kvcache: release of unowned shared block (hash %#x)", h))
	}
	e.refs--
	if e.refs > 0 {
		return
	}
	if !e.computed {
		delete(p.table, h)
		a.free = append(a.free, e.id)
		return
	}
	p.cold.pushBack(e)
}

// MatchPrefix returns the longest computed cached prefix of the given prompt
// token seeds: the cached length in tokens (a multiple of the block size)
// and the matched block IDs in position order, -1 marking blocks resident on
// the host tier (matchable, but an allocation against them pays a reload).
// Read-only: no reference counts, LRU positions or stats change.
func (a *Allocator) MatchPrefix(tokens []uint64) (int, []int) {
	if a.prefix == nil {
		return 0, nil
	}
	bs := a.cfg.BlockSize
	var blocks []int
	h := prefixChainSeed
	for b := 0; (b+1)*bs <= len(tokens); b++ {
		h = blockChainHash(h, tokens[b*bs:(b+1)*bs])
		e := a.prefix.table[h]
		if e == nil || !e.computed {
			break
		}
		id := e.id
		if e.onHost {
			id = -1
		}
		blocks = append(blocks, id)
	}
	return len(blocks) * bs, blocks
}

// MatchPrefixTokens is the allocation-free probe routers use: the cached
// prefix length MatchPrefix would report, without materializing the block
// list.
func (a *Allocator) MatchPrefixTokens(tokens []uint64) int {
	if a.prefix == nil {
		return 0
	}
	bs := a.cfg.BlockSize
	matched := 0
	h := prefixChainSeed
	for b := 0; (b+1)*bs <= len(tokens); b++ {
		h = blockChainHash(h, tokens[b*bs:(b+1)*bs])
		e := a.prefix.table[h]
		if e == nil || !e.computed {
			break
		}
		matched += bs
	}
	return matched
}

// AllocateWithPrefix registers a new sequence reserving tokens tokens, like
// Allocate, but first matches the prompt's token seeds against the prefix
// cache: the longest computed cached prefix (capped at matchLimit tokens,
// rounded down to full blocks) is taken by reference instead of from the
// free list, and the sequence's own remaining full prompt blocks are
// registered as shareable for later arrivals. Capacity is only needed for
// the unmatched remainder (plus one GPU slot per host-resident match), which
// is how prefix reuse stretches KV capacity. With prefix caching disabled it
// degrades to plain Allocate.
func (a *Allocator) AllocateWithPrefix(seqID, tokens int, prompt []uint64, matchLimit int) (PrefixHit, error) {
	var hit PrefixHit
	if a.prefix == nil {
		return hit, a.Allocate(seqID, tokens)
	}
	if _, ok := a.seqs[seqID]; ok {
		return hit, fmt.Errorf("kvcache: sequence %d already allocated", seqID)
	}
	if tokens < 0 {
		return hit, fmt.Errorf("kvcache: negative token count %d", tokens)
	}
	p := a.prefix
	bs := a.cfg.BlockSize
	if matchLimit > tokens {
		matchLimit = tokens
	}
	if matchLimit > len(prompt) {
		matchLimit = len(prompt)
	}

	// Match: walk the fingerprint chain over full blocks while computed
	// entries exist.
	var matched []*shared
	var chain []uint64
	h := prefixChainSeed
	b := 0
	for ; (b+1)*bs <= matchLimit; b++ {
		h2 := blockChainHash(h, prompt[b*bs:(b+1)*bs])
		e := p.table[h2]
		if e == nil || !e.computed {
			break
		}
		matched = append(matched, e)
		chain = append(chain, h2)
		h = h2
	}
	if matchLimit > 0 {
		p.stats.Lookups++
	}

	// Capacity: fresh blocks for the unmatched remainder plus one GPU slot
	// per host-resident match — with cold blocks that are themselves matched
	// excluded from the reclaimable pool.
	totalBlocks := a.blocksFor(tokens)
	hostMatched, coldMatched := 0, 0
	for _, e := range matched {
		switch {
		case e.onHost:
			hostMatched++
		case e.refs == 0:
			coldMatched++
		}
	}
	need := totalBlocks - len(matched) + hostMatched
	if avail := len(a.free) + p.cold.n - coldMatched; need > avail {
		a.Failures++
		return PrefixHit{}, fmt.Errorf("kvcache: need %d blocks, %d free", need, avail)
	}
	if len(matched) > 0 {
		p.stats.Hits++
		p.stats.HitTokens += len(matched) * bs
		hit.Tokens = len(matched) * bs
	}

	// Acquire GPU-resident matches first: that pulls matched cold entries
	// off the reclaim list before popAvailable can evict them.
	s := &seq{tokens: tokens}
	s.blocks = make([]int, 0, totalBlocks)
	s.hashes = append(s.hashes, chain...)
	for _, e := range matched {
		if e.onHost {
			s.blocks = append(s.blocks, -1) // reload slot, filled below
			continue
		}
		a.acquire(e)
		s.blocks = append(s.blocks, e.id)
	}
	// Pull matched host entries off the host LRU before any popAvailable
	// call: reloads and fresh allocations below can themselves demote cold
	// blocks to the host tier, and the resulting overflow drop must never
	// claim an entry this very allocation matched (it would leave the
	// sequence chained to a deleted fingerprint).
	for _, e := range matched {
		if e.onHost {
			p.host.remove(e)
		}
	}
	for i, e := range matched {
		if !e.onHost {
			continue
		}
		id, ok := a.popAvailable()
		if !ok {
			panic("kvcache: prefix capacity check missed a reload slot")
		}
		e.onHost = false
		e.id = id
		e.refs = 1
		s.blocks[i] = id
		p.stats.Reloads++
		p.stats.ReloadedTokens += bs
		hit.Reloaded += bs
	}
	for len(s.blocks) < totalBlocks {
		id, ok := a.popAvailable()
		if !ok {
			panic("kvcache: prefix capacity check missed a block")
		}
		s.blocks = append(s.blocks, id)
	}

	// Register the sequence's remaining full prompt blocks as shareable.
	// The fingerprint chain continues across blocks whose hash is already
	// claimed (content is content); such blocks simply stay private here.
	for ; (b+1)*bs <= len(prompt) && (b+1)*bs <= tokens; b++ {
		h = blockChainHash(h, prompt[b*bs:(b+1)*bs])
		if p.table[h] == nil {
			p.table[h] = &shared{hash: h, id: s.blocks[b], refs: 1}
			s.hashes = append(s.hashes, h)
		} else {
			s.hashes = append(s.hashes, 0)
		}
	}

	a.seqs[seqID] = s
	a.updatePeak()
	if hit.Reloaded > 0 && p.cfg.ReloadLatency != nil {
		hit.Stall = p.cfg.ReloadLatency(hit.Reloaded)
		p.stats.ReloadStall += hit.Stall
	}
	return hit, nil
}

// MarkComputed records that a sequence's prompt KV is materialized up to
// doneTokens: its registry-backed blocks fully covered by that length become
// matchable by later allocations. Schedulers call this as prefill
// progresses; blocks acquired from the cache were computed already, so
// re-marking them is a no-op.
func (a *Allocator) MarkComputed(seqID, doneTokens int) {
	if a.prefix == nil {
		return
	}
	s, ok := a.seqs[seqID]
	if !ok {
		return
	}
	bs := a.cfg.BlockSize
	for i, h := range s.hashes {
		if (i+1)*bs > doneTokens {
			break
		}
		if h == 0 {
			continue
		}
		if e := a.prefix.table[h]; e != nil {
			e.computed = true
		}
	}
}

// CheckInvariants verifies the allocator's full accounting: every block is
// exactly one of free, privately owned by one sequence, or registry-backed
// with a reference count equal to the sequences actually holding it; cold and
// host LRU lists agree with entry states; and the host tier respects its
// bound. Tests call it after every mutation step; it is read-only and
// order-independent.
func (a *Allocator) CheckInvariants() error {
	claim := make(map[int]string, a.cfg.NumBlocks)
	take := func(id int, who string) error {
		if id < 0 || id >= a.cfg.NumBlocks {
			return fmt.Errorf("kvcache: block %d out of range (%s)", id, who)
		}
		if prev, ok := claim[id]; ok {
			return fmt.Errorf("kvcache: block %d claimed by both %s and %s", id, prev, who)
		}
		claim[id] = who
		return nil
	}
	for _, id := range a.free {
		if err := take(id, "free list"); err != nil {
			return err
		}
	}

	refCount := make(map[uint64]int)
	for seqID, s := range a.seqs {
		if len(s.blocks) != a.blocksFor(s.tokens) {
			return fmt.Errorf("kvcache: seq %d holds %d blocks for %d tokens", seqID, len(s.blocks), s.tokens)
		}
		if len(s.hashes) > len(s.blocks) {
			return fmt.Errorf("kvcache: seq %d has %d hashes for %d blocks", seqID, len(s.hashes), len(s.blocks))
		}
		for i, id := range s.blocks {
			if i < len(s.hashes) && s.hashes[i] != 0 {
				h := s.hashes[i]
				e := a.prefix.table[h]
				if e == nil {
					return fmt.Errorf("kvcache: seq %d block %d references unregistered hash %#x", seqID, i, h)
				}
				if e.onHost {
					return fmt.Errorf("kvcache: seq %d block %d references host-resident hash %#x", seqID, i, h)
				}
				if e.id != id {
					return fmt.Errorf("kvcache: seq %d block %d is %d but entry %#x holds %d", seqID, i, id, h, e.id)
				}
				refCount[h]++
				continue
			}
			if err := take(id, fmt.Sprintf("seq %d", seqID)); err != nil {
				return err
			}
		}
	}

	if a.prefix != nil {
		p := a.prefix
		inCold := make(map[*shared]bool, p.cold.n)
		for e := p.cold.head; e != nil; e = e.next {
			inCold[e] = true
		}
		if len(inCold) != p.cold.n {
			return fmt.Errorf("kvcache: cold list count %d != %d", len(inCold), p.cold.n)
		}
		inHost := make(map[*shared]bool, p.host.n)
		for e := p.host.head; e != nil; e = e.next {
			inHost[e] = true
		}
		if len(inHost) != p.host.n {
			return fmt.Errorf("kvcache: host list count %d != %d", len(inHost), p.host.n)
		}
		if p.cfg.HostBlocks > 0 && p.host.n > p.cfg.HostBlocks {
			return fmt.Errorf("kvcache: host tier holds %d > cap %d", p.host.n, p.cfg.HostBlocks)
		}
		for h, e := range p.table {
			if e.hash != h {
				return fmt.Errorf("kvcache: entry keyed %#x carries hash %#x", h, e.hash)
			}
			if e.onHost {
				if e.refs != 0 || !inHost[e] {
					return fmt.Errorf("kvcache: host entry %#x refs=%d inHost=%v", h, e.refs, inHost[e])
				}
				continue
			}
			if e.refs != refCount[h] {
				return fmt.Errorf("kvcache: entry %#x refs=%d but %d sequences hold it", h, e.refs, refCount[h])
			}
			if (e.refs == 0) != inCold[e] {
				return fmt.Errorf("kvcache: entry %#x refs=%d inCold=%v", h, e.refs, inCold[e])
			}
			if err := take(e.id, fmt.Sprintf("shared %#x", h)); err != nil {
				return err
			}
		}
	}

	if len(claim) != a.cfg.NumBlocks {
		return fmt.Errorf("kvcache: %d of %d blocks accounted for", len(claim), a.cfg.NumBlocks)
	}
	return nil
}
