package kvcache

import (
	"testing"
	"testing/quick"

	"adaserve/internal/mathutil"
)

func newAlloc(t *testing.T, blockSize, numBlocks int) *Allocator {
	t.Helper()
	a, err := New(Config{BlockSize: blockSize, NumBlocks: numBlocks})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidate(t *testing.T) {
	if (Config{BlockSize: 0, NumBlocks: 1}).Validate() == nil {
		t.Error("zero block size accepted")
	}
	if (Config{BlockSize: 16, NumBlocks: 0}).Validate() == nil {
		t.Error("zero block count accepted")
	}
	if (Config{BlockSize: 16, NumBlocks: 8}).Validate() != nil {
		t.Error("valid config rejected")
	}
}

func TestConfigForTokens(t *testing.T) {
	c := ConfigForTokens(100, 16)
	if c.NumBlocks != 7 {
		t.Fatalf("100 tokens / 16 per block = 7 blocks, got %d", c.NumBlocks)
	}
	if ConfigForTokens(0, 16).NumBlocks != 1 {
		t.Fatal("zero capacity should still allocate one block")
	}
}

func TestAllocateAndFree(t *testing.T) {
	a := newAlloc(t, 16, 8)
	if err := a.Allocate(1, 40); err != nil { // 3 blocks
		t.Fatal(err)
	}
	if a.UsedBlocks() != 3 || a.FreeBlocks() != 5 {
		t.Fatalf("used=%d free=%d", a.UsedBlocks(), a.FreeBlocks())
	}
	if a.SeqTokens(1) != 40 {
		t.Fatalf("seq tokens %d", a.SeqTokens(1))
	}
	if err := a.Free(1); err != nil {
		t.Fatal(err)
	}
	if a.UsedBlocks() != 0 || a.NumSeqs() != 0 {
		t.Fatal("free did not release blocks")
	}
}

func TestAllocateDuplicateFails(t *testing.T) {
	a := newAlloc(t, 16, 8)
	if err := a.Allocate(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := a.Allocate(1, 10); err == nil {
		t.Fatal("duplicate allocation accepted")
	}
}

func TestAllocateCapacityExhausted(t *testing.T) {
	a := newAlloc(t, 16, 4)
	if err := a.Allocate(1, 64); err != nil { // exactly 4 blocks
		t.Fatal(err)
	}
	if err := a.Allocate(2, 1); err == nil {
		t.Fatal("over-capacity allocation accepted")
	}
	if a.Failures != 1 {
		t.Fatalf("failures = %d", a.Failures)
	}
}

func TestExtendAcrossBlockBoundary(t *testing.T) {
	a := newAlloc(t, 16, 4)
	if err := a.Allocate(1, 15); err != nil {
		t.Fatal(err)
	}
	if a.UsedBlocks() != 1 {
		t.Fatal("15 tokens should use 1 block")
	}
	if err := a.Extend(1, 1); err != nil { // 16 tokens, still 1 block
		t.Fatal(err)
	}
	if a.UsedBlocks() != 1 {
		t.Fatal("16 tokens should still use 1 block")
	}
	if err := a.Extend(1, 1); err != nil { // 17 tokens -> 2 blocks
		t.Fatal(err)
	}
	if a.UsedBlocks() != 2 {
		t.Fatal("17 tokens should use 2 blocks")
	}
}

func TestExtendUnknownSeq(t *testing.T) {
	a := newAlloc(t, 16, 4)
	if err := a.Extend(9, 1); err == nil {
		t.Fatal("extend of unknown sequence accepted")
	}
}

func TestShrinkReleasesBlocks(t *testing.T) {
	a := newAlloc(t, 16, 8)
	if err := a.Allocate(1, 48); err != nil {
		t.Fatal(err)
	}
	if err := a.Shrink(1, 33); err != nil { // 15 tokens -> 1 block
		t.Fatal(err)
	}
	if a.UsedBlocks() != 1 || a.SeqTokens(1) != 15 {
		t.Fatalf("used=%d tokens=%d", a.UsedBlocks(), a.SeqTokens(1))
	}
	if err := a.Shrink(1, 100); err == nil {
		t.Fatal("over-shrink accepted")
	}
}

func TestCanAllocate(t *testing.T) {
	a := newAlloc(t, 16, 4)
	if !a.CanAllocate(1, 64) {
		t.Fatal("64 tokens should fit in 4 blocks")
	}
	if a.CanAllocate(1, 65) {
		t.Fatal("65 tokens should not fit")
	}
	if err := a.Allocate(1, 16); err != nil {
		t.Fatal(err)
	}
	// Sequence 1 holds 1 block; extending by 48 needs 3 more: OK.
	if !a.CanAllocate(1, 48) {
		t.Fatal("extension should fit")
	}
	if a.CanAllocate(1, 49) {
		t.Fatal("extension should not fit")
	}
}

func TestBlockTableStable(t *testing.T) {
	a := newAlloc(t, 16, 8)
	if err := a.Allocate(1, 33); err != nil {
		t.Fatal(err)
	}
	bt := a.BlockTable(1)
	if len(bt) != 3 {
		t.Fatalf("block table %v", bt)
	}
	seen := map[int]bool{}
	for _, b := range bt {
		if b < 0 || b >= 8 || seen[b] {
			t.Fatalf("invalid block table %v", bt)
		}
		seen[b] = true
	}
	if a.BlockTable(99) != nil {
		t.Fatal("unknown sequence should have nil table")
	}
}

func TestFragmentationAccounting(t *testing.T) {
	a := newAlloc(t, 16, 8)
	if err := a.Allocate(1, 1); err != nil { // 1 token in a 16-token block
		t.Fatal(err)
	}
	frag := a.InternalFragmentation()
	if frag < 0.9 {
		t.Fatalf("fragmentation %g, want ~0.94", frag)
	}
	if err := a.Extend(1, 15); err != nil {
		t.Fatal(err)
	}
	if a.InternalFragmentation() != 0 {
		t.Fatal("full block should have zero fragmentation")
	}
}

func TestPeakTracking(t *testing.T) {
	a := newAlloc(t, 16, 8)
	_ = a.Allocate(1, 64)
	_ = a.Free(1)
	_ = a.Allocate(2, 16)
	if a.PeakUsedBlocks != 4 {
		t.Fatalf("peak %d, want 4", a.PeakUsedBlocks)
	}
}

func TestSeqIDsSorted(t *testing.T) {
	a := newAlloc(t, 16, 8)
	for _, id := range []int{5, 1, 3} {
		if err := a.Allocate(id, 8); err != nil {
			t.Fatal(err)
		}
	}
	ids := a.SeqIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Fatalf("SeqIDs = %v", ids)
	}
}

// TestAllocatorInvariantProperty drives random operations and checks the
// conservation invariant: used + free == total, no block owned twice.
func TestAllocatorInvariantProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := mathutil.NewRNG(seed)
		a := MustNew(Config{BlockSize: 8, NumBlocks: 32})
		live := map[int]bool{}
		next := 0
		for op := 0; op < 200; op++ {
			switch rng.Intn(4) {
			case 0: // allocate
				id := next
				next++
				if a.Allocate(id, rng.Intn(60)) == nil {
					live[id] = true
				}
			case 1: // extend
				for id := range live {
					_ = a.Extend(id, rng.Intn(20))
					break
				}
			case 2: // shrink
				for id := range live {
					n := a.SeqTokens(id)
					if n > 0 {
						_ = a.Shrink(id, rng.Intn(n+1))
					}
					break
				}
			case 3: // free
				for id := range live {
					if a.Free(id) == nil {
						delete(live, id)
					}
					break
				}
			}
			if a.UsedBlocks()+a.FreeBlocks() != 32 {
				return false
			}
			owned := map[int]bool{}
			for _, id := range a.SeqIDs() {
				for _, b := range a.BlockTable(id) {
					if owned[b] {
						return false
					}
					owned[b] = true
				}
			}
			if len(owned) != a.UsedBlocks() {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}
