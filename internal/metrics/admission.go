package metrics

import (
	"fmt"

	"adaserve/internal/request"
)

// AdmissionClass is one SLO class's share of an admission summary, keyed by
// the category the requests ARRIVED with (degraded requests count under
// their original class, which is the contract the gate relaxed).
type AdmissionClass struct {
	Offered, Admitted, Degraded, Rejected int
}

// AdmissionSummary reports what an overload admission gate did to a run's
// offered load. Every offered request lands in exactly one bucket:
// Offered = Admitted + Degraded + Rejected. Degraded requests enter the
// serving system (at best-effort service), so Admitted + Degraded is the
// population the serving-side Summary aggregates over; Rejected requests
// never reach a pool.
type AdmissionSummary struct {
	// Offered counts every arrival presented to the gate.
	Offered int
	// Admitted were served as submitted; Degraded were admitted at
	// best-effort service (relaxed class, speculation disabled); Rejected
	// were turned away.
	Admitted, Degraded, Rejected int
	// PerClass splits the counters by original request category.
	PerClass [request.NumCategories]AdmissionClass
}

// Add merges one decision into the summary (helper for controllers).
func (a *AdmissionSummary) Add(original request.Category, admitted, degraded, rejected bool) {
	cls := &a.PerClass[original]
	a.Offered++
	cls.Offered++
	switch {
	case rejected:
		a.Rejected++
		cls.Rejected++
	case degraded:
		a.Degraded++
		cls.Degraded++
	case admitted:
		a.Admitted++
		cls.Admitted++
	}
}

// RejectRate returns the fraction of offered requests turned away.
func (a AdmissionSummary) RejectRate() float64 {
	if a.Offered == 0 {
		return 0
	}
	return float64(a.Rejected) / float64(a.Offered)
}

// DegradeRate returns the fraction of offered requests admitted at reduced
// service.
func (a AdmissionSummary) DegradeRate() float64 {
	if a.Offered == 0 {
		return 0
	}
	return float64(a.Degraded) / float64(a.Offered)
}

// String renders the one-line admission rollup.
func (a AdmissionSummary) String() string {
	return fmt.Sprintf("admission: %d offered = %d admitted + %d degraded + %d rejected (%.1f%% degraded, %.1f%% rejected)",
		a.Offered, a.Admitted, a.Degraded, a.Rejected,
		100*a.DegradeRate(), 100*a.RejectRate())
}
