package metrics

import (
	"adaserve/internal/obs/hist"
	"adaserve/internal/request"
)

// RollingClass is one SLO class's (request category's) share of a rolling
// view: cumulative counters over the whole run so far plus counters over the
// trailing window.
type RollingClass struct {
	// Finished/Attained/GoodTokens accumulate over every finish so far.
	Finished, Attained int
	GoodTokens         int
	// WindowFinished/WindowAttained/WindowGoodTokens cover requests that
	// finished inside the trailing window.
	WindowFinished, WindowAttained int
	WindowGoodTokens               int
}

// Attainment returns the class's cumulative SLO attainment fraction.
func (c RollingClass) Attainment() float64 {
	if c.Finished == 0 {
		return 0
	}
	return float64(c.Attained) / float64(c.Finished)
}

// WindowAttainment returns the class's attainment over the trailing window.
func (c RollingClass) WindowAttainment() float64 {
	if c.WindowFinished == 0 {
		return 0
	}
	return float64(c.WindowAttained) / float64(c.WindowFinished)
}

// RollingStats is one point-in-time view of a run in progress: occupancy,
// cumulative attainment/goodput (converging to the terminal Summary as the
// run drains), and windowed attainment/goodput over the trailing window —
// overall and per SLO class. Produced incrementally by Rolling; carried by
// the serving driver's periodic Snapshot events.
type RollingStats struct {
	// Time is the simulated instant of the snapshot; Window the trailing
	// window width the Window* fields cover.
	Time, Window float64
	// Queued/Running are the instantaneous occupancy across all serving
	// instances at snapshot time.
	Queued, Running int
	// Admitted counts every request that entered the system so far;
	// Finished/Attained/TTFTAttained those that retired (and met their
	// TPOT/TTFT SLOs).
	Admitted, Finished, Attained, TTFTAttained int
	// GoodTokens/AllTokens are output tokens from attaining / all finished
	// requests.
	GoodTokens, AllTokens int
	// Goodput and Throughput are tokens/second over the span from first
	// arrival to the latest finish, matching the terminal Summary's
	// definitions.
	Goodput, Throughput float64
	// MeanAcceptedPerStep is committed tokens per verification step over
	// finished requests.
	MeanAcceptedPerStep float64
	// WindowFinished/WindowAttained/WindowGoodput cover requests finishing
	// inside the trailing window; WindowTTFTAttained of them met their TTFT
	// SLO (the responsiveness signal SLO-feedback autoscaling scales prefill
	// capacity on).
	WindowFinished, WindowAttained int
	WindowTTFTAttained             int
	WindowGoodput                  float64
	// TPOTTail and TTFTTail digest the cumulative per-request TPOT / TTFT
	// distributions over every finish so far; at the final snapshot they
	// equal the terminal Summary's TPOTTail/TTFTTail (digests depend only on
	// bucket counts and exact extremes, both order-independent).
	// WindowTPOTTail covers only the finishes still inside the trailing
	// window; its Min/Max report the cumulative envelope, not the window's
	// (sliding-window eviction does not re-scan for new extremes).
	TPOTTail, TTFTTail, WindowTPOTTail hist.Digest
	// PerClass indexes the per-category split by request.Category.
	PerClass [request.NumCategories]RollingClass
}

// Attainment returns the cumulative SLO attainment over finished requests.
// As the run drains (every request finished) it equals the terminal
// Summary.Attainment, whose denominator is all requests.
func (s RollingStats) Attainment() float64 {
	if s.Finished == 0 {
		return 0
	}
	return float64(s.Attained) / float64(s.Finished)
}

// TTFTAttainment returns the cumulative TTFT attainment over finished
// requests.
func (s RollingStats) TTFTAttainment() float64 {
	if s.Finished == 0 {
		return 0
	}
	return float64(s.TTFTAttained) / float64(s.Finished)
}

// WindowAttainment returns the attainment over the trailing window.
func (s RollingStats) WindowAttainment() float64 {
	if s.WindowFinished == 0 {
		return 0
	}
	return float64(s.WindowAttained) / float64(s.WindowFinished)
}

// WindowTTFTAttainment returns the TTFT attainment over the trailing window.
func (s RollingStats) WindowTTFTAttainment() float64 {
	if s.WindowFinished == 0 {
		return 0
	}
	return float64(s.WindowTTFTAttained) / float64(s.WindowFinished)
}

// finishRec is one finished request's contribution, kept until it ages out
// of the window.
type finishRec struct {
	time     float64
	cat      request.Category
	attained bool
	ttft     bool
	tokens   int
	tpot     float64
}

// Rolling computes RollingStats incrementally from request arrival and
// finish notifications, so online drivers get windowed attainment and
// goodput without re-scanning the request population. It is the streaming
// counterpart of Summarize: at end of run (every admitted request finished)
// its cumulative fields equal the terminal Summary's.
//
// Finish notifications may arrive slightly out of global time order (a
// multi-instance driver reports at per-instance iteration boundaries);
// Rolling keeps its window index sorted, so eviction stays exact.
type Rolling struct {
	window       float64
	firstArrival float64
	haveArrival  bool
	lastDone     float64

	admitted     int
	finished     int
	attained     int
	ttftAttained int
	goodTokens   int
	allTokens    int
	totalSteps   int
	totalAccept  int
	perClass     [request.NumCategories]RollingClass

	// recent holds the finishes still inside the window, sorted by time in
	// recent[head:]; window counters are maintained on insert and evict.
	// Eviction advances head and compaction moves the live window to the
	// front once the dead prefix dominates, so a long run's backing array
	// stays proportional to the window population instead of growing with
	// (and retaining) every finish ever recorded.
	recent        []finishRec
	head          int
	winFinished   int
	winAttained   int
	winTTFT       int
	winGoodTokens int

	// tpotHist/ttftHist stream the cumulative per-request TPOT/TTFT
	// distributions; winTPOT covers only the trailing window (evictions
	// retract their TPOT). All three are fixed-size, so rolling-metrics
	// memory stays bounded no matter how many requests finish.
	tpotHist *hist.Histogram
	ttftHist *hist.Histogram
	winTPOT  *hist.Histogram
}

// NewRolling returns a Rolling with the given trailing-window width in
// simulated seconds (window must be positive).
func NewRolling(window float64) *Rolling {
	if window <= 0 {
		panic("metrics: rolling window must be positive")
	}
	return &Rolling{
		window:   window,
		tpotHist: hist.New(),
		ttftHist: hist.New(),
		winTPOT:  hist.New(),
	}
}

// Window returns the trailing-window width.
func (ro *Rolling) Window() float64 { return ro.window }

// Arrived records a request entering the system. It pins the span start
// (first arrival) the goodput denominators use.
func (ro *Rolling) Arrived(r *request.Request) {
	ro.admitted++
	if !ro.haveArrival || r.ArrivalTime < ro.firstArrival {
		ro.firstArrival = r.ArrivalTime
		ro.haveArrival = true
	}
}

// Finished records a retired request (Phase Done). Call exactly once per
// request.
func (ro *Rolling) Finished(r *request.Request) {
	ro.finished++
	if r.DoneTime > ro.lastDone {
		ro.lastDone = r.DoneTime
	}
	attained := r.AttainedSLO()
	tokens := r.OutputLen()
	cls := &ro.perClass[r.Category]
	cls.Finished++
	ro.allTokens += tokens
	if attained {
		ro.attained++
		ro.goodTokens += tokens
		cls.Attained++
		cls.GoodTokens += tokens
	}
	ttft := r.AttainedTTFT()
	if ttft {
		ro.ttftAttained++
		ro.winTTFT++
	}
	ro.totalSteps += r.VerifySteps
	ro.totalAccept += r.AcceptedTokens
	tpot := r.AvgTPOT(r.DoneTime)
	ro.tpotHist.Observe(tpot)
	ro.winTPOT.Observe(tpot)
	if t := r.TTFT(); t >= 0 {
		ro.ttftHist.Observe(t)
	}

	rec := finishRec{time: r.DoneTime, cat: r.Category, attained: attained, ttft: ttft, tokens: tokens, tpot: tpot}
	ro.insert(rec)
	ro.winFinished++
	cls.WindowFinished++
	if attained {
		ro.winAttained++
		ro.winGoodTokens += tokens
		cls.WindowAttained++
		cls.WindowGoodTokens += tokens
	}
}

// insert keeps recent[head:] sorted by finish time (stable for equal times:
// new records go after existing ones, so eviction order is deterministic).
func (ro *Rolling) insert(rec finishRec) {
	at := len(ro.recent)
	for at > ro.head && ro.recent[at-1].time > rec.time {
		at--
	}
	ro.recent = append(ro.recent, finishRec{})
	copy(ro.recent[at+1:], ro.recent[at:])
	ro.recent[at] = rec
}

// compact moves the live window to the front of the backing array when the
// evicted prefix is at least as long as the live tail, keeping eviction
// amortized O(1) while bounding retention at ~2× the window population.
func (ro *Rolling) compact() {
	if ro.head == 0 || ro.head < len(ro.recent)-ro.head {
		return
	}
	n := copy(ro.recent, ro.recent[ro.head:])
	tail := ro.recent[n:]
	for i := range tail {
		tail[i] = finishRec{}
	}
	ro.recent = ro.recent[:n]
	ro.head = 0
}

// evict drops finishes that aged out of the window ending at now.
func (ro *Rolling) evict(now float64) {
	cutoff := now - ro.window
	for ro.head < len(ro.recent) && ro.recent[ro.head].time < cutoff {
		rec := ro.recent[ro.head]
		ro.recent[ro.head] = finishRec{}
		ro.head++
		cls := &ro.perClass[rec.cat]
		ro.winFinished--
		ro.winTPOT.Remove(rec.tpot)
		cls.WindowFinished--
		if rec.ttft {
			ro.winTTFT--
		}
		if rec.attained {
			ro.winAttained--
			ro.winGoodTokens -= rec.tokens
			cls.WindowAttained--
			cls.WindowGoodTokens -= rec.tokens
		}
	}
	ro.compact()
}

// Snapshot materializes the rolling view at simulated time now. queued and
// running are the caller's instantaneous occupancy counts (the driver sums
// them over instance pools).
func (ro *Rolling) Snapshot(now float64, queued, running int) RollingStats {
	ro.evict(now)
	st := RollingStats{
		Time:   now,
		Window: ro.window,
		Queued: queued, Running: running,
		Admitted: ro.admitted, Finished: ro.finished,
		Attained: ro.attained, TTFTAttained: ro.ttftAttained,
		GoodTokens: ro.goodTokens, AllTokens: ro.allTokens,
		WindowFinished: ro.winFinished, WindowAttained: ro.winAttained,
		WindowTTFTAttained: ro.winTTFT,
		TPOTTail:           ro.tpotHist.Digest(),
		TTFTTail:           ro.ttftHist.Digest(),
		WindowTPOTTail:     ro.winTPOT.Digest(),
		PerClass:           ro.perClass,
	}
	// Span and division mirror Summarize exactly, so the terminal snapshot's
	// goodput/throughput are bit-equal to the terminal Summary's.
	if ro.haveArrival {
		if dur := ro.lastDone - ro.firstArrival; dur > 0 {
			st.Goodput = float64(ro.goodTokens) / dur
			st.Throughput = float64(ro.allTokens) / dur
		}
	}
	if ro.totalSteps > 0 {
		st.MeanAcceptedPerStep = float64(ro.totalAccept) / float64(ro.totalSteps)
	}
	if span := ro.window; span > 0 {
		if ro.haveArrival && now-ro.firstArrival < span {
			span = now - ro.firstArrival
		}
		if span > 0 {
			st.WindowGoodput = float64(ro.winGoodTokens) / span
		}
	}
	return st
}
