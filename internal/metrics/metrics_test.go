package metrics

import (
	"math"
	"strings"
	"testing"

	"adaserve/internal/lm"
	"adaserve/internal/request"
)

// finished builds a completed request with the given decode span.
func finished(id int, cat request.Category, slo, start, end float64, tokens int) *request.Request {
	r := request.New(id, cat, slo, start, 64, tokens, uint64(id))
	r.Phase = request.Decoding
	r.FirstDecodeTime = start
	toks := make([]lm.Token, tokens)
	r.Commit(toks, end)
	r.VerifySteps = tokens / 2
	return r
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize("x", nil, Breakdown{})
	if s.Requests != 0 || s.Attainment() != 0 || s.ViolationRate() != 0 {
		t.Fatal("empty summary should be zero-valued")
	}
}

func TestSummarizeAttainment(t *testing.T) {
	reqs := []*request.Request{
		finished(1, request.Chat, 0.05, 0, 0.4, 10), // 40ms <= 50ms: attained
		finished(2, request.Chat, 0.05, 0, 0.8, 10), // 80ms: violated
	}
	s := Summarize("sys", reqs, Breakdown{})
	if s.Requests != 2 || s.Finished != 2 || s.Attained != 1 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Attainment()-0.5) > 1e-12 {
		t.Fatalf("attainment %g", s.Attainment())
	}
	if s.Violations() != 1 {
		t.Fatalf("violations %d", s.Violations())
	}
}

func TestSummarizeUnfinishedCountsAsViolation(t *testing.T) {
	r := request.New(1, request.Chat, 0.05, 0, 64, 10, 1)
	s := Summarize("sys", []*request.Request{r}, Breakdown{})
	if s.Finished != 0 || s.Attained != 0 || s.Requests != 1 {
		t.Fatal("unfinished request mishandled")
	}
	if s.ViolationRate() != 1 {
		t.Fatal("unfinished should count as violation")
	}
}

func TestSummarizeGoodputExcludesViolators(t *testing.T) {
	reqs := []*request.Request{
		finished(1, request.Chat, 0.05, 0, 0.4, 10), // attained, 10 tokens
		finished(2, request.Chat, 0.05, 0, 0.9, 20), // violated (45ms? no: 0.9/20=45ms attained!) — use tighter
	}
	// Recompute: r2 at 45ms < 50 attains. Force a violation instead.
	reqs[1] = finished(2, request.Chat, 0.05, 0, 1.2, 20) // 60ms violates
	s := Summarize("sys", reqs, Breakdown{})
	// Duration = last done (1.2) - first arrival (0) = 1.2.
	if math.Abs(s.Duration-1.2) > 1e-12 {
		t.Fatalf("duration %g", s.Duration)
	}
	wantGood := 10 / 1.2
	if math.Abs(s.Goodput-wantGood) > 1e-9 {
		t.Fatalf("goodput %g, want %g", s.Goodput, wantGood)
	}
	wantThroughput := 30 / 1.2
	if math.Abs(s.Throughput-wantThroughput) > 1e-9 {
		t.Fatalf("throughput %g, want %g", s.Throughput, wantThroughput)
	}
}

func TestSummarizePerCategory(t *testing.T) {
	reqs := []*request.Request{
		finished(1, request.Coding, 0.04, 0, 0.3, 10),        // 30ms attained
		finished(2, request.Coding, 0.04, 0, 0.5, 10),        // 50ms violated
		finished(3, request.Summarization, 0.15, 0, 1.0, 10), // 100ms attained
	}
	s := Summarize("sys", reqs, Breakdown{})
	c := s.PerCategory[request.Coding]
	if c.Requests != 2 || c.Attained != 1 || c.Violations != 1 {
		t.Fatalf("coding stats %+v", c)
	}
	if math.Abs(c.MeanTPOT-0.04) > 1e-9 {
		t.Fatalf("coding mean TPOT %g", c.MeanTPOT)
	}
	sm := s.PerCategory[request.Summarization]
	if sm.Attainment() != 1 {
		t.Fatalf("summarization attainment %g", sm.Attainment())
	}
}

func TestSummarizeMeanAccepted(t *testing.T) {
	r := finished(1, request.Chat, 0.05, 0, 0.4, 10)
	r.VerifySteps = 4 // 10 tokens / 4 steps = 2.5
	s := Summarize("sys", []*request.Request{r}, Breakdown{})
	if math.Abs(s.MeanAcceptedPerStep-2.5) > 1e-12 {
		t.Fatalf("mean accepted %g", s.MeanAcceptedPerStep)
	}
}

func TestSummarizeTTFT(t *testing.T) {
	r := finished(1, request.Chat, 0.05, 2.0, 2.4, 10) // arrival 2.0, first commit 2.4
	s := Summarize("sys", []*request.Request{r}, Breakdown{})
	if math.Abs(s.MeanTTFT-0.4) > 1e-9 {
		t.Fatalf("mean TTFT %g", s.MeanTTFT)
	}
}

func TestTPOTPercentiles(t *testing.T) {
	var reqs []*request.Request
	for i := 1; i <= 100; i++ {
		// TPOT = i milliseconds.
		reqs = append(reqs, finished(i, request.Summarization, 0.15, 0, float64(i)*0.001*10, 10))
	}
	s := Summarize("sys", reqs, Breakdown{})
	if p := s.P50TPOT(); p < 0.045 || p > 0.055 {
		t.Fatalf("p50 %g", p)
	}
	if p := s.P99TPOT(); p < 0.095 || p > 0.101 {
		t.Fatalf("p99 %g", p)
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{Scheduling: 1, Speculation: 2, Verification: 6, Prefill: 1}
	if b.Total() != 10 {
		t.Fatalf("total %g", b.Total())
	}
	if math.Abs(b.SchedulingShare()-0.1) > 1e-12 {
		t.Fatalf("share %g", b.SchedulingShare())
	}
	if (Breakdown{}).SchedulingShare() != 0 {
		t.Fatal("empty breakdown share should be 0")
	}
}

func TestSummaryString(t *testing.T) {
	reqs := []*request.Request{finished(1, request.Coding, 0.04, 0, 0.3, 10)}
	s := Summarize("MySystem", reqs, Breakdown{})
	out := s.String()
	if !strings.Contains(out, "MySystem") || !strings.Contains(out, "coding") {
		t.Fatalf("summary string %q", out)
	}
}
