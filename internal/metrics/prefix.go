package metrics

import "fmt"

// PrefixSummary aggregates the shared-prefix KV cache activity of a run:
// how often admissions found their prompt's prefix already resident, how
// much prefill work that saved, and what the cold-block eviction / host-tier
// reload economics cost. Summed across replicas for cluster runs.
type PrefixSummary struct {
	// Lookups counts admissions that attempted a prefix match; Hits those
	// that matched at least one block.
	Lookups, Hits int
	// HitTokens is the prompt tokens served from cache — prefill the
	// admitted requests skipped.
	HitTokens int
	// Evictions counts cold shared blocks reclaimed from GPUs (demoted to
	// the host tier or dropped); HostEvictions counts host-tier entries
	// dropped under host-capacity pressure.
	Evictions, HostEvictions int
	// Reloads counts host-resident blocks promoted back to a GPU on a
	// match, covering ReloadedTokens tokens; ReloadStallTime is the summed
	// interconnect latency those reloads charged to admitted requests.
	Reloads         int
	ReloadedTokens  int
	ReloadStallTime float64
}

// HitRate returns the fraction of prefix lookups that hit.
func (p PrefixSummary) HitRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Lookups)
}

// Add accumulates another replica's prefix counters into p.
func (p *PrefixSummary) Add(o PrefixSummary) {
	p.Lookups += o.Lookups
	p.Hits += o.Hits
	p.HitTokens += o.HitTokens
	p.Evictions += o.Evictions
	p.HostEvictions += o.HostEvictions
	p.Reloads += o.Reloads
	p.ReloadedTokens += o.ReloadedTokens
	p.ReloadStallTime += o.ReloadStallTime
}

// String renders the one-line prefix-cache rollup.
func (p PrefixSummary) String() string {
	return fmt.Sprintf("prefix: %.1f%% hit (%d/%d), %d tokens saved, %d evictions (%d host drops), %d reloads (%d tokens, %.1f ms stall)",
		100*p.HitRate(), p.Hits, p.Lookups, p.HitTokens,
		p.Evictions, p.HostEvictions, p.Reloads, p.ReloadedTokens, 1e3*p.ReloadStallTime)
}
