package metrics

import (
	"fmt"
	"strings"
)

// Add accumulates another breakdown into b (used when merging per-replica
// accounting into a cluster total).
func (b *Breakdown) Add(o Breakdown) {
	b.Scheduling += o.Scheduling
	b.Speculation += o.Speculation
	b.Verification += o.Verification
	b.Prefill += o.Prefill
}

// RoleStats splits a disaggregated cluster's attainment by replica role:
// TTFT attainment over the requests whose prompt a replica of this role
// prefilled, and TPOT attainment over the requests it decoded. In a
// colocated cluster every replica owns both stages, so the single "mixed"
// row carries both numbers.
type RoleStats struct {
	// Role is the replica role name ("prefill", "decode", "mixed").
	Role string
	// Replicas is how many replicas run this role.
	Replicas int
	// PrefillRequests counts prompts served by this role; TTFTAttained of
	// them met their TTFT SLO.
	PrefillRequests int
	TTFTAttained    int
	// DecodeRequests counts requests whose decode ran on this role;
	// TPOTAttained of them finished within their TPOT SLO.
	DecodeRequests int
	TPOTAttained   int
}

// TTFTAttainment returns the role's TTFT attainment fraction.
func (r RoleStats) TTFTAttainment() float64 {
	if r.PrefillRequests == 0 {
		return 0
	}
	return float64(r.TTFTAttained) / float64(r.PrefillRequests)
}

// TPOTAttainment returns the role's TPOT attainment fraction.
func (r RoleStats) TPOTAttainment() float64 {
	if r.DecodeRequests == 0 {
		return 0
	}
	return float64(r.TPOTAttained) / float64(r.DecodeRequests)
}

// TransferStats aggregates the prefill-to-decode KV handoffs of a
// disaggregated run. A colocated run has none.
type TransferStats struct {
	// Count is the number of migrations (one per request that prefilled on
	// a prefill-role replica).
	Count int
	// Bytes is the total KV bytes moved across the interconnect.
	Bytes float64
	// Time is the summed transfer latency in seconds — simulated time each
	// request spent in flight between prefill completion and decode
	// eligibility.
	Time float64
}

// MeanLatency returns the average per-migration transfer latency.
func (t TransferStats) MeanLatency() float64 {
	if t.Count == 0 {
		return 0
	}
	return t.Time / float64(t.Count)
}

// AutoscaleSummary reports the replica-lifecycle economics of a cluster run:
// how much capacity the fleet consumed and what it bought. Replica-seconds —
// the integral of committed replicas (provisioning, active or draining) over
// simulated time — is the cost denominator; goodput and attainment per
// replica-second are the cost-efficiency headlines the autoscaling
// experiments compare policies on. A static cluster consumes
// size × run-duration replica-seconds with no scale events.
type AutoscaleSummary struct {
	// Policy names the autoscaling policy ("static" for a fixed fleet).
	Policy string
	// ScaleUps/ScaleDowns count autoscaler actions (a canceled provisioning
	// counts as a scale-down).
	ScaleUps, ScaleDowns int
	// DrainMigrations counts requests moved off draining replicas.
	DrainMigrations int
	// ReplicaSeconds is the total capacity consumed: committed replicas
	// integrated over simulated time (provisioning cold-start time counts —
	// the machine is paid for while the model loads).
	ReplicaSeconds float64
	// PeakReplicas/MinReplicas bound the committed fleet size over the run.
	PeakReplicas, MinReplicas int
	// Finished/Attained count retired requests (and those meeting their
	// SLOs); GoodTokens are output tokens from attaining requests.
	Finished, Attained int
	GoodTokens         int
}

// GoodputPerReplicaSecond returns good output tokens per replica-second
// consumed: the cost-normalized goodput autoscaling optimizes.
func (a AutoscaleSummary) GoodputPerReplicaSecond() float64 {
	if a.ReplicaSeconds <= 0 {
		return 0
	}
	return float64(a.GoodTokens) / a.ReplicaSeconds
}

// AttainedPerReplicaSecond returns SLO-attaining requests per
// replica-second consumed.
func (a AutoscaleSummary) AttainedPerReplicaSecond() float64 {
	if a.ReplicaSeconds <= 0 {
		return 0
	}
	return float64(a.Attained) / a.ReplicaSeconds
}

// String renders the one-line lifecycle economics summary.
func (a AutoscaleSummary) String() string {
	policy := a.Policy
	if policy == "" {
		policy = "static"
	}
	return fmt.Sprintf("%s: %d up / %d down, %d drain migrations, fleet %d-%d, %.1f replica-s, %.2f good tok/replica-s",
		policy, a.ScaleUps, a.ScaleDowns, a.DrainMigrations,
		a.MinReplicas, a.PeakReplicas, a.ReplicaSeconds, a.GoodputPerReplicaSecond())
}

// FaultSummary reports what an injected fault schedule did to a cluster run
// and what recovery bought back. Attainment-under-faults is read off the
// ordinary aggregate summary — every lost-and-never-recovered request counts
// as a violation there — so this rollup carries the failure-specific counts
// the chaos experiments compare recovery modes on.
type FaultSummary struct {
	// Spec is the canonical fault-schedule spec string; Recovery names the
	// recovery mode ("none", "retry", "retry+hedge").
	Spec     string
	Recovery string
	// Crashes, Stragglers and LinkWindows count injected fault events;
	// Repairs counts crashes whose replica returned.
	Crashes, Stragglers, LinkWindows, Repairs int
	// LostRequests counts requests frozen on crashed replicas (harvested at
	// detection); Retried of them were re-dispatched, and Dropped exhausted
	// their retry budget.
	LostRequests, Retried, Dropped int
	// Hedged counts duplicate dispatches for TTFT-at-risk requests on
	// suspect replicas; DuplicateCancelled counts resolved races (the losing
	// attempt is cancelled but was billed).
	Hedged, DuplicateCancelled int
	// TransferFallbacks counts prefill-to-decode migrations lost in flight
	// (prompt KV recomputed on the destination); TransferDegraded counts
	// migrations that paid a slowed link.
	TransferFallbacks, TransferDegraded int
	// UnavailableReplicaSeconds integrates failed-replica downtime over the
	// run; MTTR is the mean time-to-recovery over repaired crashes.
	UnavailableReplicaSeconds float64
	MTTR                      float64
}

// String renders the one-line fault rollup.
func (f FaultSummary) String() string {
	return fmt.Sprintf("%s [%s]: %d crashes (%d repaired, MTTR %.2fs, %.1f replica-s down), %d stragglers, %d link windows; lost %d, retried %d, dropped %d, hedged %d (%d dup cancelled), %d transfer fallbacks",
		f.Spec, f.Recovery, f.Crashes, f.Repairs, f.MTTR, f.UnavailableReplicaSeconds,
		f.Stragglers, f.LinkWindows, f.LostRequests, f.Retried, f.Dropped,
		f.Hedged, f.DuplicateCancelled, f.TransferFallbacks)
}

// ClusterSummary aggregates a multi-replica run: the cluster-wide summary
// over every request of the trace plus one summary per replica over the
// requests routed to it.
type ClusterSummary struct {
	// Aggregate summarizes all requests with the summed breakdown; its
	// Attainment and Goodput are the cluster-level SLO attainment and
	// goodput the replica-scaling experiments report.
	Aggregate *Summary
	// Replicas holds one summary per replica, in replica-ID order.
	Replicas []*Summary
	// Roles splits attainment by replica role, in role order
	// prefill/decode/mixed (only roles present appear). Empty only for
	// summaries predating role-aware runs.
	Roles []RoleStats
	// Transfer reports the KV-handoff overhead of a disaggregated run.
	Transfer TransferStats
	// Autoscale reports the fleet's replica-lifecycle economics (filled for
	// every cluster run; a static fleet shows size × duration
	// replica-seconds and no scale events). Nil only for summaries predating
	// elastic clusters.
	Autoscale *AutoscaleSummary
	// Admission reports what the overload admission gate did to the offered
	// load. Nil when no gate ran (the aggregate then covers every offered
	// request).
	Admission *AdmissionSummary
	// Faults reports what an injected fault schedule did and what recovery
	// bought back. Nil when no faults ran.
	Faults *FaultSummary
	// Prefix reports the shared-prefix KV cache activity summed over
	// replicas. Nil when prefix caching is disabled.
	Prefix *PrefixSummary
}

// TTFTAttainment returns the cluster-wide TTFT attainment fraction.
func (c *ClusterSummary) TTFTAttainment() float64 { return c.Aggregate.TTFTAttainment() }

// Attainment returns the cluster-wide SLO attainment fraction.
func (c *ClusterSummary) Attainment() float64 { return c.Aggregate.Attainment() }

// Goodput returns the cluster-wide goodput in tokens/second.
func (c *ClusterSummary) Goodput() float64 { return c.Aggregate.Goodput }

// RequestImbalance returns max/mean requests routed per replica: 1 is a
// perfectly balanced cluster, N means one replica received every request.
func (c *ClusterSummary) RequestImbalance() float64 {
	if len(c.Replicas) == 0 {
		return 0
	}
	max, total := 0, 0
	for _, r := range c.Replicas {
		total += r.Requests
		if r.Requests > max {
			max = r.Requests
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(c.Replicas))
	return float64(max) / mean
}

// String renders the aggregate summary followed by one line per replica.
// Replicas that received no traffic render as idle rather than as 0%
// attainment (an empty denominator is not a violation).
func (c *ClusterSummary) String() string {
	var b strings.Builder
	b.WriteString(c.Aggregate.String())
	for _, r := range c.Replicas {
		if r.Requests == 0 {
			fmt.Fprintf(&b, "\n  %-14s idle (no requests routed)", r.System)
			continue
		}
		fmt.Fprintf(&b, "\n  %-14s %4d reqs, attain %.1f%%, goodput %.1f tok/s, mean TPOT %.1f ms",
			r.System, r.Requests, 100*r.Attainment(), r.Goodput, 1e3*r.MeanTPOT)
	}
	return b.String()
}
