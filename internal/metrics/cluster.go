package metrics

import (
	"fmt"
	"strings"

	"adaserve/internal/mathutil"
)

// Add accumulates another breakdown into b (used when merging per-replica
// accounting into a cluster total).
func (b *Breakdown) Add(o Breakdown) {
	b.Scheduling += o.Scheduling
	b.Speculation += o.Speculation
	b.Verification += o.Verification
	b.Prefill += o.Prefill
}

// ClusterSummary aggregates a multi-replica run: the cluster-wide summary
// over every request of the trace plus one summary per replica over the
// requests routed to it.
type ClusterSummary struct {
	// Aggregate summarizes all requests with the summed breakdown; its
	// Attainment and Goodput are the cluster-level SLO attainment and
	// goodput the replica-scaling experiments report.
	Aggregate *Summary
	// Replicas holds one summary per replica, in replica-ID order.
	Replicas []*Summary
}

// Attainment returns the cluster-wide SLO attainment fraction.
func (c *ClusterSummary) Attainment() float64 { return c.Aggregate.Attainment() }

// Goodput returns the cluster-wide goodput in tokens/second.
func (c *ClusterSummary) Goodput() float64 { return c.Aggregate.Goodput }

// RequestImbalance returns max/mean requests routed per replica: 1 is a
// perfectly balanced cluster, N means one replica received every request.
func (c *ClusterSummary) RequestImbalance() float64 {
	if len(c.Replicas) == 0 {
		return 0
	}
	max, total := 0, 0
	for _, r := range c.Replicas {
		total += r.Requests
		if r.Requests > max {
			max = r.Requests
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(c.Replicas))
	return float64(max) / mean
}

// String renders the aggregate summary followed by one line per replica.
// Replicas that received no traffic render as idle rather than as 0%
// attainment (an empty denominator is not a violation).
func (c *ClusterSummary) String() string {
	var b strings.Builder
	b.WriteString(c.Aggregate.String())
	for _, r := range c.Replicas {
		if r.Requests == 0 {
			fmt.Fprintf(&b, "\n  %-14s idle (no requests routed)", r.System)
			continue
		}
		fmt.Fprintf(&b, "\n  %-14s %4d reqs, attain %.1f%%, goodput %.1f tok/s, mean TPOT %.1f ms",
			r.System, r.Requests, 100*r.Attainment(), r.Goodput, 1e3*mathutil.Mean(r.TPOTs))
	}
	return b.String()
}
