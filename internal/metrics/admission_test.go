package metrics

import (
	"strings"
	"testing"

	"adaserve/internal/request"
)

func TestAdmissionSummaryAdd(t *testing.T) {
	var s AdmissionSummary
	s.Add(request.Chat, true, false, false)
	s.Add(request.Chat, false, true, false)
	s.Add(request.Coding, false, false, true)
	s.Add(request.Summarization, true, false, false)
	// Reject wins over degrade when a controller reports both.
	s.Add(request.Coding, false, true, true)

	if s.Offered != 5 || s.Admitted != 2 || s.Degraded != 1 || s.Rejected != 2 {
		t.Fatalf("totals %+v", s)
	}
	if s.Offered != s.Admitted+s.Degraded+s.Rejected {
		t.Fatalf("summary does not partition the offered load: %+v", s)
	}
	chat := s.PerClass[request.Chat]
	if chat.Offered != 2 || chat.Admitted != 1 || chat.Degraded != 1 || chat.Rejected != 0 {
		t.Fatalf("chat split %+v", chat)
	}
	coding := s.PerClass[request.Coding]
	if coding.Offered != 2 || coding.Rejected != 2 {
		t.Fatalf("coding split %+v", coding)
	}
	var perClass int
	for _, cls := range s.PerClass {
		perClass += cls.Offered
		if cls.Offered != cls.Admitted+cls.Degraded+cls.Rejected {
			t.Fatalf("class split does not partition: %+v", cls)
		}
	}
	if perClass != s.Offered {
		t.Fatalf("per-class offered %d, total %d", perClass, s.Offered)
	}
}

func TestAdmissionSummaryRates(t *testing.T) {
	var empty AdmissionSummary
	if empty.RejectRate() != 0 || empty.DegradeRate() != 0 {
		t.Fatal("empty summary must report zero rates")
	}
	s := AdmissionSummary{Offered: 8, Admitted: 4, Degraded: 1, Rejected: 3}
	if got := s.RejectRate(); got != 0.375 {
		t.Fatalf("reject rate %v", got)
	}
	if got := s.DegradeRate(); got != 0.125 {
		t.Fatalf("degrade rate %v", got)
	}
}

func TestAdmissionSummaryString(t *testing.T) {
	s := AdmissionSummary{Offered: 10, Admitted: 7, Degraded: 1, Rejected: 2}
	out := s.String()
	for _, want := range []string{"10 offered", "7 admitted", "1 degraded", "2 rejected", "10.0% degraded", "20.0% rejected"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary %q missing %q", out, want)
		}
	}
}
