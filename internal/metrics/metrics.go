// Package metrics computes the paper's evaluation metrics from finished
// requests: SLO attainment, goodput, violation counts, mean accepted tokens
// per verification step, TPOT percentiles, and the Figure 15 latency
// breakdown.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"adaserve/internal/obs/hist"
	"adaserve/internal/request"
)

// Breakdown splits a run's serving time by phase (Figure 15).
type Breakdown struct {
	// Scheduling is CPU time spent in selection/scheduling.
	Scheduling float64
	// Speculation is GPU time in draft-model decoding.
	Speculation float64
	// Verification is GPU time in target verification/decode.
	Verification float64
	// Prefill is GPU time prefilling prompts.
	Prefill float64
}

// Total returns the summed serving time.
func (b Breakdown) Total() float64 {
	return b.Scheduling + b.Speculation + b.Verification + b.Prefill
}

// SchedulingShare returns scheduling's fraction of total serving time.
func (b Breakdown) SchedulingShare() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Scheduling / t
}

// CategoryStats summarizes one request category.
type CategoryStats struct {
	Category   request.Category
	Requests   int
	Attained   int
	Violations int
	// MeanTPOT is the average per-token latency across requests, seconds.
	MeanTPOT float64
	// P50TPOT/P99TPOT are the median and 99th-percentile per-request average
	// TPOT, computed once at Summarize time from the class histogram.
	P50TPOT float64
	P99TPOT float64
	// TPOT is the class's streaming TPOT histogram over finished requests —
	// fixed-size, so per-class metric memory is independent of request count.
	TPOT *hist.Histogram
	// Goodput is output tokens/second from SLO-attaining requests.
	Goodput float64
}

// Attainment returns the category's SLO attainment fraction.
func (c CategoryStats) Attainment() float64 {
	if c.Requests == 0 {
		return 0
	}
	return float64(c.Attained) / float64(c.Requests)
}

// Summary aggregates a full run.
type Summary struct {
	System   string
	Requests int
	Finished int
	Attained int
	// TTFTAttained counts requests that met their TTFT SLO (requests
	// without one trivially attain, so on TPOT-only traces this equals
	// Requests).
	TTFTAttained int

	// Duration is the wall-clock span from first arrival to last completion.
	Duration float64
	// Goodput is output tokens/second counting only SLO-attaining requests.
	Goodput float64
	// Throughput is output tokens/second counting all requests.
	Throughput float64
	// MeanAcceptedPerStep is committed tokens per verification step per
	// request (Figure 12's metric).
	MeanAcceptedPerStep float64
	// MeanTTFT is the average time-to-first-token; MaxTTFT the worst case
	// over finished requests (the tail bound overload admission protects).
	MeanTTFT float64
	MaxTTFT  float64
	// MeanTPOT is the average per-request TPOT over finished requests.
	MeanTPOT float64
	// TPOT and TTFT are bounded-memory streaming histograms over finished
	// requests (per-request average TPOT; TTFT where measured). They replace
	// the retained per-request latency slices: a Summary's memory is a small
	// constant regardless of how many requests the run served.
	TPOT *hist.Histogram
	TTFT *hist.Histogram
	// TPOTTail and TTFTTail are the histograms' percentile digests, computed
	// once at Summarize time; the percentile accessors read them.
	TPOTTail hist.Digest
	TTFTTail hist.Digest

	PerCategory map[request.Category]*CategoryStats
	Breakdown   Breakdown
}

// Attainment returns the overall SLO attainment fraction.
func (s *Summary) Attainment() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Attained) / float64(s.Requests)
}

// TTFTAttainment returns the fraction of requests meeting their TTFT SLO.
func (s *Summary) TTFTAttainment() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.TTFTAttained) / float64(s.Requests)
}

// ViolationRate returns 1 − attainment.
func (s *Summary) ViolationRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return 1 - s.Attainment()
}

// Violations returns the number of requests that missed their SLO
// (unfinished requests count as violations).
func (s *Summary) Violations() int { return s.Requests - s.Attained }

// P50TPOT returns the median per-request average TPOT.
func (s *Summary) P50TPOT() float64 { return s.TPOTTail.P50 }

// P90TPOT returns the 90th-percentile per-request average TPOT.
func (s *Summary) P90TPOT() float64 { return s.TPOTTail.P90 }

// P99TPOT returns the 99th-percentile per-request average TPOT.
func (s *Summary) P99TPOT() float64 { return s.TPOTTail.P99 }

// P999TPOT returns the 99.9th-percentile per-request average TPOT.
func (s *Summary) P999TPOT() float64 { return s.TPOTTail.P999 }

// MaxTPOT returns the worst per-request average TPOT of the run (exact).
func (s *Summary) MaxTPOT() float64 { return s.TPOTTail.Max }

// Summarize computes a Summary over all requests of a run. done should
// contain every generated request (finished or not); breakdown comes from
// the scheduler's accounting.
func Summarize(system string, reqs []*request.Request, breakdown Breakdown) *Summary {
	s := &Summary{
		System:      system,
		Requests:    len(reqs),
		PerCategory: make(map[request.Category]*CategoryStats),
		Breakdown:   breakdown,
	}
	s.TPOT = hist.New()
	s.TTFT = hist.New()
	if len(reqs) == 0 {
		return s
	}
	firstArrival := reqs[0].ArrivalTime
	lastDone := 0.0
	var totalSteps, totalAccepted int
	for _, r := range reqs {
		if r.ArrivalTime < firstArrival {
			firstArrival = r.ArrivalTime
		}
		cs := s.PerCategory[r.Category]
		if cs == nil {
			cs = &CategoryStats{Category: r.Category, TPOT: hist.New()}
			s.PerCategory[r.Category] = cs
		}
		cs.Requests++
		if r.AttainedTTFT() {
			s.TTFTAttained++
		}
		if r.Phase != request.Done {
			cs.Violations++
			continue
		}
		s.Finished++
		if r.DoneTime > lastDone {
			lastDone = r.DoneTime
		}
		tpot := r.AvgTPOT(r.DoneTime)
		s.TPOT.Observe(tpot)
		cs.TPOT.Observe(tpot)
		if t := r.TTFT(); t >= 0 {
			s.TTFT.Observe(t)
			if t > s.MaxTTFT {
				s.MaxTTFT = t
			}
		}
		totalSteps += r.VerifySteps
		totalAccepted += r.AcceptedTokens
		if r.AttainedSLO() {
			s.Attained++
			cs.Attained++
		} else {
			cs.Violations++
		}
	}
	s.Duration = lastDone - firstArrival
	if s.Duration > 0 {
		var goodTokens, allTokens int
		for _, r := range reqs {
			if r.Phase != request.Done {
				continue
			}
			allTokens += r.OutputLen()
			if r.AttainedSLO() {
				goodTokens += r.OutputLen()
			}
		}
		s.Goodput = float64(goodTokens) / s.Duration
		s.Throughput = float64(allTokens) / s.Duration
		for cat, cs := range s.PerCategory {
			var good int
			for _, r := range reqs {
				if r.Category == cat && r.Phase == request.Done && r.AttainedSLO() {
					good += r.OutputLen()
				}
			}
			cs.Goodput = float64(good) / s.Duration
		}
	}
	if totalSteps > 0 {
		s.MeanAcceptedPerStep = float64(totalAccepted) / float64(totalSteps)
	}
	// Means divide running sums accumulated in the same order the retained
	// slices used to be appended, so these values are bit-identical to the
	// slice-backed implementation; percentiles come from the histograms.
	s.MeanTTFT = s.TTFT.Mean()
	s.MeanTPOT = s.TPOT.Mean()
	s.TPOTTail = s.TPOT.Digest()
	s.TTFTTail = s.TTFT.Digest()
	for _, cs := range s.PerCategory {
		cs.MeanTPOT = cs.TPOT.Mean()
		d := cs.TPOT.Digest()
		cs.P50TPOT = d.P50
		cs.P99TPOT = d.P99
	}
	return s
}

// String renders a compact human-readable summary.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d reqs, attainment %.1f%%, goodput %.1f tok/s, mean acc %.2f",
		s.System, s.Requests, 100*s.Attainment(), s.Goodput, s.MeanAcceptedPerStep)
	cats := make([]request.Category, 0, len(s.PerCategory))
	for c := range s.PerCategory {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, c := range cats {
		cs := s.PerCategory[c]
		fmt.Fprintf(&b, "\n  %-14s %4d reqs, attain %.1f%%, mean TPOT %.1f ms",
			c, cs.Requests, 100*cs.Attainment(), 1e3*cs.MeanTPOT)
	}
	return b.String()
}
