package metrics

import (
	"math"
	"strings"
	"testing"
)

// sum builds a minimal per-replica summary with the given request count.
func sum(system string, requests int) *Summary {
	return &Summary{System: system, Requests: requests}
}

func TestRequestImbalance(t *testing.T) {
	cases := []struct {
		name     string
		requests []int
		want     float64
	}{
		{name: "balanced", requests: []int{10, 10, 10, 10}, want: 1},
		{name: "one hot", requests: []int{40, 0, 0, 0}, want: 4},
		{name: "skewed", requests: []int{30, 10}, want: 1.5},
		{name: "single replica", requests: []int{7}, want: 1},
		{name: "no traffic", requests: []int{0, 0}, want: 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cs := &ClusterSummary{}
			for i, n := range c.requests {
				cs.Replicas = append(cs.Replicas, sum("r", n))
				_ = i
			}
			if got := cs.RequestImbalance(); math.Abs(got-c.want) > 1e-12 {
				t.Fatalf("imbalance = %g, want %g", got, c.want)
			}
		})
	}
	empty := &ClusterSummary{}
	if got := empty.RequestImbalance(); got != 0 {
		t.Fatalf("imbalance of replica-less summary = %g, want 0", got)
	}
}

func TestClusterSummaryDelegates(t *testing.T) {
	cs := &ClusterSummary{Aggregate: &Summary{
		Requests: 10, Attained: 8, TTFTAttained: 9, Goodput: 123.5,
	}}
	if got := cs.Attainment(); got != 0.8 {
		t.Fatalf("attainment %g, want 0.8", got)
	}
	if got := cs.TTFTAttainment(); got != 0.9 {
		t.Fatalf("TTFT attainment %g, want 0.9", got)
	}
	if got := cs.Goodput(); got != 123.5 {
		t.Fatalf("goodput %g, want 123.5", got)
	}
}

func TestRoleStatsAttainment(t *testing.T) {
	rs := RoleStats{
		Role: "prefill", Replicas: 2,
		PrefillRequests: 40, TTFTAttained: 30,
		DecodeRequests: 0, TPOTAttained: 0,
	}
	if got := rs.TTFTAttainment(); got != 0.75 {
		t.Fatalf("TTFT attainment %g, want 0.75", got)
	}
	// A role that never served a stage reports 0, not NaN.
	if got := rs.TPOTAttainment(); got != 0 {
		t.Fatalf("decode-less TPOT attainment %g, want 0", got)
	}
	dec := RoleStats{Role: "decode", Replicas: 1, DecodeRequests: 8, TPOTAttained: 6}
	if got := dec.TPOTAttainment(); got != 0.75 {
		t.Fatalf("TPOT attainment %g, want 0.75", got)
	}
	if got := dec.TTFTAttainment(); got != 0 {
		t.Fatalf("prefill-less TTFT attainment %g, want 0", got)
	}
}

func TestTransferStatsMeanLatency(t *testing.T) {
	ts := TransferStats{Count: 4, Bytes: 4e9, Time: 0.2}
	if got := ts.MeanLatency(); got != 0.05 {
		t.Fatalf("mean latency %g, want 0.05", got)
	}
	if got := (TransferStats{}).MeanLatency(); got != 0 {
		t.Fatalf("mean latency of no transfers %g, want 0", got)
	}
}

func TestAutoscaleSummary(t *testing.T) {
	a := AutoscaleSummary{
		Policy: "rate-prop", ScaleUps: 3, ScaleDowns: 2, DrainMigrations: 5,
		ReplicaSeconds: 200, PeakReplicas: 4, MinReplicas: 1,
		Finished: 100, Attained: 90, GoodTokens: 50000,
	}
	if got := a.GoodputPerReplicaSecond(); got != 250 {
		t.Fatalf("goodput per replica-second %g, want 250", got)
	}
	if got := a.AttainedPerReplicaSecond(); got != 0.45 {
		t.Fatalf("attained per replica-second %g, want 0.45", got)
	}
	zero := AutoscaleSummary{GoodTokens: 10, Attained: 10}
	if zero.GoodputPerReplicaSecond() != 0 || zero.AttainedPerReplicaSecond() != 0 {
		t.Fatal("zero replica-seconds must not divide")
	}
	s := a.String()
	for _, want := range []string{"rate-prop", "3 up", "2 down", "5 drain", "1-4", "250.00 good tok/replica-s"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	// The zero policy renders as static.
	if !strings.HasPrefix((AutoscaleSummary{}).String(), "static:") {
		t.Fatalf("unnamed policy renders as %q, want static prefix", (AutoscaleSummary{}).String())
	}
}

func TestClusterSummaryStringIdleReplica(t *testing.T) {
	cs := &ClusterSummary{
		Aggregate: &Summary{System: "agg", Requests: 4, Attained: 4},
		Replicas: []*Summary{
			{System: "replica 0", Requests: 4, Attained: 4},
			{System: "replica 1", Requests: 0},
		},
	}
	s := cs.String()
	if !strings.Contains(s, "replica 1") || !strings.Contains(s, "idle (no requests routed)") {
		t.Fatalf("String() = %q, want the idle replica rendered as idle", s)
	}
	if strings.Contains(strings.Split(s, "replica 1")[1], "attain 0.0%") {
		t.Fatalf("idle replica rendered as a 0%% attainment failure: %q", s)
	}
}
