package metrics

import (
	"testing"

	"adaserve/internal/request"
)

// finishedReq fabricates a retired request with the given timing.
func finishedReq(id int, cat request.Category, slo, arrival, firstDecode, done float64, tokens int) *request.Request {
	r := request.New(id, cat, slo, arrival, 16, tokens, uint64(id)+1)
	r.FirstDecodeTime = firstDecode
	r.FirstTokenTime = firstDecode
	for i := 0; i < tokens; i++ {
		r.Commit1(1, done)
	}
	if r.Phase != request.Done {
		panic("fabricated request did not finish")
	}
	return r
}

func TestRollingZeroValues(t *testing.T) {
	ro := NewRolling(10)
	if ro.Window() != 10 {
		t.Fatalf("window %g", ro.Window())
	}
	st := ro.Snapshot(0, 0, 0)
	if st.Attainment() != 0 || st.TTFTAttainment() != 0 || st.WindowAttainment() != 0 {
		t.Fatalf("empty snapshot has non-zero rates: %+v", st)
	}
	var cls RollingClass
	if cls.Attainment() != 0 || cls.WindowAttainment() != 0 {
		t.Fatalf("empty class has non-zero rates: %+v", cls)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive window accepted")
		}
	}()
	NewRolling(0)
}

func TestRollingWindowAttainmentRates(t *testing.T) {
	ro := NewRolling(10)
	good := finishedReq(0, request.Chat, 0.05, 0, 0.5, 1, 20)
	bad := finishedReq(1, request.Chat, 0.05, 0, 2, 8, 20)
	ro.Arrived(good)
	ro.Arrived(bad)
	ro.Finished(good)
	ro.Finished(bad)
	st := ro.Snapshot(9, 3, 4)
	if st.WindowAttainment() != 0.5 || st.Attainment() != 0.5 {
		t.Fatalf("attainment %.2f window %.2f, want 0.5", st.Attainment(), st.WindowAttainment())
	}
	if st.Queued != 3 || st.Running != 4 {
		t.Fatalf("occupancy %d/%d", st.Queued, st.Running)
	}
	cls := st.PerClass[request.Chat]
	if cls.Attainment() != 0.5 || cls.WindowAttainment() != 0.5 {
		t.Fatalf("class rates %.2f/%.2f", cls.Attainment(), cls.WindowAttainment())
	}
}

func TestRollingWindowEviction(t *testing.T) {
	ro := NewRolling(10)
	// One attained finish at t=1 (fast decode), one violating at t=8 (slow).
	a := finishedReq(0, request.Chat, 0.05, 0, 0.5, 1, 20) // 25 ms/tok: attains
	b := finishedReq(1, request.Chat, 0.05, 0, 2, 8, 20)   // 300 ms/tok: violates
	ro.Arrived(a)
	ro.Arrived(b)
	ro.Finished(a)
	ro.Finished(b)

	st := ro.Snapshot(9, 0, 0)
	if st.Finished != 2 || st.Attained != 1 {
		t.Fatalf("cumulative %d/%d", st.Attained, st.Finished)
	}
	if st.WindowFinished != 2 || st.WindowAttained != 1 {
		t.Fatalf("window before eviction %d/%d", st.WindowAttained, st.WindowFinished)
	}

	// At t=12 the window [2,12] has dropped the t=1 finish.
	st = ro.Snapshot(12, 0, 0)
	if st.WindowFinished != 1 || st.WindowAttained != 0 {
		t.Fatalf("window after eviction %d/%d", st.WindowAttained, st.WindowFinished)
	}
	if st.Finished != 2 || st.Attained != 1 {
		t.Fatalf("eviction touched cumulative counters: %d/%d", st.Attained, st.Finished)
	}
	cls := st.PerClass[request.Chat]
	if cls.WindowFinished != 1 || cls.Finished != 2 {
		t.Fatalf("per-class window %d cumulative %d", cls.WindowFinished, cls.Finished)
	}

	// Far future: the window is empty, cumulative view intact.
	st = ro.Snapshot(100, 0, 0)
	if st.WindowFinished != 0 || st.WindowAttained != 0 || st.WindowGoodput != 0 {
		t.Fatalf("stale window %+v", st)
	}
}

// TestRollingOutOfOrderFinishes feeds finishes with non-monotone times (as
// a multi-instance driver does) and expects exact window membership.
func TestRollingOutOfOrderFinishes(t *testing.T) {
	ro := NewRolling(5)
	times := []float64{4, 2, 6, 1, 5}
	for i, done := range times {
		r := finishedReq(i, request.Coding, 1.0, 0, done-0.5, done, 4)
		ro.Arrived(r)
		ro.Finished(r)
	}
	// Window [2,7]: finishes at 2,4,5,6 stay, 1 is evicted.
	st := ro.Snapshot(7, 0, 0)
	if st.WindowFinished != 4 {
		t.Fatalf("window %d, want 4", st.WindowFinished)
	}
	// Window [3.5, 8.5]: 4, 5, 6 remain.
	st = ro.Snapshot(8.5, 0, 0)
	if st.WindowFinished != 3 {
		t.Fatalf("window %d, want 3", st.WindowFinished)
	}
}

// TestRollingMatchesSummarize requires the terminal rolling view to equal
// Summarize over the same population — the convergence contract Snapshot
// events advertise.
func TestRollingMatchesSummarize(t *testing.T) {
	var reqs []*request.Request
	ro := NewRolling(30)
	cats := []request.Category{request.Coding, request.Chat, request.Summarization}
	for i := 0; i < 12; i++ {
		slo := 0.05
		if i%3 == 0 {
			slo = 0.01 // a third violate
		}
		r := finishedReq(i, cats[i%3], slo, float64(i)*0.3, float64(i)*0.3+0.2, float64(i)*0.3+1.5, 8+i)
		reqs = append(reqs, r)
		ro.Arrived(r)
		ro.Finished(r)
	}
	sum := Summarize("test", reqs, Breakdown{})
	st := ro.Snapshot(100, 0, 0)
	if st.Finished != sum.Finished || st.Attained != sum.Attained {
		t.Fatalf("finished/attained %d/%d vs %d/%d", st.Finished, st.Attained, sum.Finished, sum.Attained)
	}
	if st.Attainment() != sum.Attainment() {
		t.Fatalf("attainment %.9f vs %.9f", st.Attainment(), sum.Attainment())
	}
	if st.TTFTAttainment() != sum.TTFTAttainment() {
		t.Fatalf("ttft %.9f vs %.9f", st.TTFTAttainment(), sum.TTFTAttainment())
	}
	if st.Goodput != sum.Goodput || st.Throughput != sum.Throughput {
		t.Fatalf("goodput %.9f/%.9f vs %.9f/%.9f", st.Goodput, st.Throughput, sum.Goodput, sum.Throughput)
	}
	for cat, cs := range sum.PerCategory {
		cls := st.PerClass[cat]
		if cls.Finished != cs.Requests || cls.Attained != cs.Attained {
			t.Fatalf("class %v: %d/%d vs %d/%d", cat, cls.Attained, cls.Finished, cs.Attained, cs.Requests)
		}
		if cls.Attainment() != cs.Attainment() {
			t.Fatalf("class %v attainment %.9f vs %.9f", cat, cls.Attainment(), cs.Attainment())
		}
	}
}

// TestRollingBoundedRetention regression-tests the eviction leak: evict must
// zero aged-out records and compaction must keep the backing array
// proportional to the window population, so a long run's Rolling does not
// accumulate every finish ever recorded. Before the fix, evict resliced from
// the head and the array grew without bound.
func TestRollingBoundedRetention(t *testing.T) {
	const window, step = 1.0, 0.01
	ro := NewRolling(window)
	pop := int(window/step) + 1 // finishes alive inside one window
	maxLen := 0
	for i := 0; i < 20_000; i++ {
		done := float64(i) * step
		r := finishedReq(i, request.Chat, 1, done-0.5, done-0.2, done, 4)
		ro.Arrived(r)
		ro.Finished(r)
		ro.Snapshot(done, 0, 0) // evicts everything older than done-window
		if n := len(ro.recent); n > maxLen {
			maxLen = n
		}
		if ro.winFinished > pop {
			t.Fatalf("window holds %d finishes, expected at most %d", ro.winFinished, pop)
		}
	}
	// Compaction bounds the slice at ~2× the window population, independent
	// of run length.
	if bound := 2*pop + 2; maxLen > bound {
		t.Fatalf("backing slice grew to %d with window population %d (bound %d)", maxLen, pop, bound)
	}
}

// TestRollingBoundedMemorySmoke streams one million finishes through a
// rolling view and pins the bounded-memory contract: the cumulative
// distributions live in fixed-size histograms and the window index retains
// ~2x the window population, so retention never scales with run length.
func TestRollingBoundedMemorySmoke(t *testing.T) {
	ro := NewRolling(30)
	r := finishedReq(0, request.Chat, 0.05, 0, 0.5, 1, 20)
	ro.Arrived(r)
	const n = 1_000_000
	for i := 0; i < n; i++ {
		// 10ms apart: ~3000 finishes live in the 30s window at any time.
		r.DoneTime = 1 + float64(i)*0.01
		ro.Finished(r)
		if i%4096 == 0 {
			ro.Snapshot(r.DoneTime, 0, 0)
		}
	}
	st := ro.Snapshot(1+float64(n)*0.01, 0, 0)
	if st.Finished != n {
		t.Fatalf("finished %d, want %d", st.Finished, n)
	}
	if st.TPOTTail.Count != n {
		t.Fatalf("TPOT digest count %d, want %d", st.TPOTTail.Count, n)
	}
	if st.WindowFinished > 3001 {
		t.Fatalf("window population %d never evicted", st.WindowFinished)
	}
	// The backing array holds the live window plus the batch admitted since
	// the last eviction, compacted at 2x — far below the 1M finishes seen.
	if c := cap(ro.recent); c > 1<<14 {
		t.Fatalf("rolling view retained %d records for a bounded window", c)
	}
}
