package metrics

import (
	"strings"
	"testing"
)

func TestPrefixSummaryHitRate(t *testing.T) {
	var p PrefixSummary
	if got := p.HitRate(); got != 0 {
		t.Fatalf("zero-lookup hit rate %g, want 0", got)
	}
	p = PrefixSummary{Lookups: 8, Hits: 6}
	if got := p.HitRate(); got != 0.75 {
		t.Fatalf("hit rate %g, want 0.75", got)
	}
}

func TestPrefixSummaryAdd(t *testing.T) {
	a := PrefixSummary{
		Lookups: 10, Hits: 6, HitTokens: 640,
		Evictions: 3, HostEvictions: 1,
		Reloads: 2, ReloadedTokens: 128, ReloadStallTime: 0.5,
	}
	b := PrefixSummary{
		Lookups: 5, Hits: 5, HitTokens: 320,
		Evictions: 1, HostEvictions: 2,
		Reloads: 1, ReloadedTokens: 64, ReloadStallTime: 0.25,
	}
	a.Add(b)
	want := PrefixSummary{
		Lookups: 15, Hits: 11, HitTokens: 960,
		Evictions: 4, HostEvictions: 3,
		Reloads: 3, ReloadedTokens: 192, ReloadStallTime: 0.75,
	}
	if a != want {
		t.Fatalf("Add gave %+v, want %+v", a, want)
	}
}

func TestPrefixSummaryString(t *testing.T) {
	p := PrefixSummary{
		Lookups: 12, Hits: 9, HitTokens: 4096,
		Evictions: 2, HostEvictions: 1,
		Reloads: 3, ReloadedTokens: 96, ReloadStallTime: 0.0105,
	}
	s := p.String()
	for _, want := range []string{
		"75.0% hit", "(9/12)", "4096 tokens saved",
		"2 evictions", "1 host drops", "3 reloads", "96 tokens", "10.5 ms stall",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() missing %q: %s", want, s)
		}
	}
}
