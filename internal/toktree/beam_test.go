package toktree

import (
	"testing"

	"adaserve/internal/lm"
	"adaserve/internal/mathutil"
)

func beamModels(t *testing.T) (*lm.SyntheticLM, *lm.DraftLM) {
	t.Helper()
	target := lm.MustSyntheticLM("t", 11, 4096, 16, 3.2, 0.02)
	return target, lm.MustDraftLM("d", target, 0.85, 12)
}

func TestBeamSearchShape(t *testing.T) {
	_, draft := beamModels(t)
	for _, c := range []struct{ d, w int }{{1, 1}, {3, 2}, {5, 4}, {8, 1}} {
		br, err := BeamSearch(draft, lm.Context{ReqSeed: 3}, 7, c.d, c.w)
		if err != nil {
			t.Fatal(err)
		}
		tr := br.Tree
		if err := tr.Validate(); err != nil {
			t.Fatalf("d=%d w=%d: %v", c.d, c.w, err)
		}
		if got := tr.Depth(); got != c.d {
			t.Errorf("d=%d w=%d: depth %d", c.d, c.w, got)
		}
		// Level sizes: level 1..d hold at most w nodes; total ≤ 1 + d*w.
		perLevel := make(map[int]int)
		for _, n := range tr.Nodes[1:] {
			perLevel[n.Depth]++
		}
		for lvl := 1; lvl <= c.d; lvl++ {
			if perLevel[lvl] > c.w {
				t.Errorf("d=%d w=%d: level %d has %d nodes", c.d, c.w, lvl, perLevel[lvl])
			}
			if perLevel[lvl] == 0 {
				t.Errorf("d=%d w=%d: level %d empty", c.d, c.w, lvl)
			}
		}
		if tr.Size() > 1+c.d*c.w {
			t.Errorf("d=%d w=%d: size %d exceeds 1+d*w", c.d, c.w, tr.Size())
		}
	}
}

func TestBeamSearchDepthZero(t *testing.T) {
	_, draft := beamModels(t)
	br, err := BeamSearch(draft, lm.Context{ReqSeed: 3}, 7, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if br.Tree.Size() != 1 || br.DraftTokensProcessed != 0 {
		t.Fatal("depth-0 beam should produce a bare root at no cost")
	}
}

func TestBeamSearchRejectsBadParams(t *testing.T) {
	_, draft := beamModels(t)
	if _, err := BeamSearch(draft, lm.Context{}, 0, -1, 2); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := BeamSearch(draft, lm.Context{}, 0, 2, 0); err == nil {
		t.Error("zero width accepted")
	}
}

func TestBeamSearchCostAccounting(t *testing.T) {
	_, draft := beamModels(t)
	br, err := BeamSearch(draft, lm.Context{ReqSeed: 5}, 7, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Step 1 expands the root (1 token); steps 2..4 expand ≤3 beam nodes.
	want := 1 + 3*3
	if br.DraftTokensProcessed > want || br.DraftTokensProcessed < 4 {
		t.Fatalf("draft tokens %d outside [4, %d]", br.DraftTokensProcessed, want)
	}
	if br.Steps != 4 {
		t.Fatalf("steps %d, want 4", br.Steps)
	}
}

func TestBeamSearchKeepsHighestPathProbs(t *testing.T) {
	// Every node in the beam tree at level L must have path probability at
	// least as high as any non-expanded alternative at that level would —
	// spot-check: the level-1 nodes are exactly the draft's top-w.
	_, draft := beamModels(t)
	ctx := lm.Context{ReqSeed: 17}
	br, err := BeamSearch(draft, ctx, 7, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	top := draft.Dist(ctx).TopK(3)
	var level1 []lm.Token
	for _, n := range br.Tree.Nodes[1:] {
		if n.Depth == 1 {
			level1 = append(level1, n.Token)
		}
	}
	if len(level1) != 3 {
		t.Fatalf("level 1 has %d nodes", len(level1))
	}
	for _, e := range top {
		found := false
		for _, tok := range level1 {
			if tok == e.Token {
				found = true
			}
		}
		if !found {
			t.Fatalf("draft top token %d missing from level 1", e.Token)
		}
	}
}

func TestChainSpeculateIsWidthOne(t *testing.T) {
	_, draft := beamModels(t)
	br, err := ChainSpeculate(draft, lm.Context{ReqSeed: 5}, 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	if br.Tree.Size() != 7 {
		t.Fatalf("chain size %d, want 7", br.Tree.Size())
	}
	for _, n := range br.Tree.Nodes {
		if len(n.Children) > 1 {
			t.Fatal("chain has branching")
		}
	}
	// The chain follows the draft argmax at each step.
	ctx := lm.Context{ReqSeed: 5}
	cur := 0
	for depth := 0; depth < 6; depth++ {
		want := draft.Dist(ctx).Argmax()
		child := br.Tree.Nodes[cur].Children[0]
		if got := br.Tree.Nodes[child].Token; got != want {
			t.Fatalf("depth %d: chain token %d, draft argmax %d", depth, got, want)
		}
		ctx = ctx.Extend(want)
		cur = child
	}
}

// TestTheorem41 checks the candidate-tree covering property: the optimal
// budget-B draft tree (greedy by true path probability) is a subtree of the
// beam-search candidate tree with width B and the optimal tree's depth.
func TestTheorem41(t *testing.T) {
	target := lm.MustSyntheticLM("t", 23, 4096, 16, 2.4, 0.02)
	draft := lm.MustDraftLM("d", target, 1.0, 24)
	for seed := uint64(0); seed < 20; seed++ {
		ctx := lm.Context{ReqSeed: seed}
		const budget = 8
		// Reference: greedily grow the optimal tree against the draft
		// (known-f oracle), unconstrained by beams.
		type node struct {
			ctx  lm.Context
			path []lm.Token
			f    float64
		}
		selected := []node{{ctx: ctx, f: 1}}
		frontier := []node{}
		expand := func(n node) {
			for _, e := range draft.Dist(n.ctx).TopK(16) {
				frontier = append(frontier, node{
					ctx:  n.ctx.Extend(e.Token),
					path: append(append([]lm.Token(nil), n.path...), e.Token),
					f:    n.f * e.Prob,
				})
			}
		}
		expand(selected[0])
		for len(selected) < budget {
			best := -1
			for i := range frontier {
				if best < 0 || frontier[i].f > frontier[best].f {
					best = i
				}
			}
			n := frontier[best]
			frontier = append(frontier[:best], frontier[best+1:]...)
			selected = append(selected, n)
			expand(n)
		}
		maxDepth := 0
		for _, n := range selected {
			if len(n.path) > maxDepth {
				maxDepth = len(n.path)
			}
		}

		// Candidate tree: beam search with width = budget, depth = D_opt.
		br, err := BeamSearch(draft, ctx, 0, maxDepth, budget)
		if err != nil {
			t.Fatal(err)
		}
		// Every optimal node's path must exist in the candidate tree.
		for _, n := range selected[1:] {
			if !containsPath(br.Tree, n.path) {
				t.Fatalf("seed %d: optimal path %v missing from beam(%d, %d) candidate tree",
					seed, n.path, maxDepth, budget)
			}
		}
	}
}

func containsPath(t *Tree, path []lm.Token) bool {
	cur := 0
	for _, tok := range path {
		next := -1
		for _, c := range t.Nodes[cur].Children {
			if t.Nodes[c].Token == tok {
				next = c
				break
			}
		}
		if next < 0 {
			return false
		}
		cur = next
	}
	return true
}

func TestVerifyCommitsAtLeastOneToken(t *testing.T) {
	target, draft := beamModels(t)
	v := lm.NewVerifier(target, draft, lm.RuleSampleMatch, mathutil.NewRNG(9))
	br, err := BeamSearch(draft, lm.Context{ReqSeed: 31}, 7, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sel := NewSelection(br.Tree)
	for i := 0; i < 200; i++ {
		res := Verify(sel, v)
		if res.NumNewTokens() < 1 {
			t.Fatal("verification committed zero tokens")
		}
		if res.TokensVerified != sel.Size() {
			t.Fatalf("verified %d tokens, selection size %d", res.TokensVerified, sel.Size())
		}
	}
}

func TestVerifyAcceptedPathIsTreePath(t *testing.T) {
	target, draft := beamModels(t)
	v := lm.NewVerifier(target, draft, lm.RuleSampleMatch, mathutil.NewRNG(9))
	br, err := BeamSearch(draft, lm.Context{ReqSeed: 33}, 7, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	sel := NewSelection(br.Tree)
	for id := 1; id < br.Tree.Size(); id++ {
		if sel.Has(br.Tree.Nodes[id].Parent) {
			sel.Add(id)
		}
	}
	for i := 0; i < 100; i++ {
		res := Verify(sel, v)
		if len(res.Accepted) != len(res.AcceptedNodeIDs) {
			t.Fatal("accepted tokens/IDs length mismatch")
		}
		// The accepted node IDs must form a root-descending path.
		prev := 0
		for j, id := range res.AcceptedNodeIDs {
			if br.Tree.Nodes[id].Parent != prev {
				t.Fatalf("accepted node %d at position %d is not a child of %d", id, j, prev)
			}
			if br.Tree.Nodes[id].Token != res.Accepted[j] {
				t.Fatal("accepted token mismatch")
			}
			prev = id
		}
	}
}

func TestVerifyGreedyDeterministic(t *testing.T) {
	target, draft := beamModels(t)
	v := lm.NewVerifier(target, draft, lm.RuleGreedy, mathutil.NewRNG(9))
	br, _ := BeamSearch(draft, lm.Context{ReqSeed: 35}, 7, 4, 2)
	sel := NewSelection(br.Tree)
	for id := 1; id < br.Tree.Size(); id++ {
		if sel.Has(br.Tree.Nodes[id].Parent) {
			sel.Add(id)
		}
	}
	a := Verify(sel, v)
	b := Verify(sel, v)
	if a.NumNewTokens() != b.NumNewTokens() || a.Correction != b.Correction {
		t.Fatal("greedy verification should be deterministic")
	}
}
