package toktree

import (
	"adaserve/internal/lm"
)

// VerifyResult reports one tree-verification pass for one request.
type VerifyResult struct {
	// Accepted are the accepted draft tokens along the root path, in order.
	Accepted []lm.Token
	// Correction is the token the target committed after the accepted
	// prefix: the resampled correction when a branch was rejected, or the
	// bonus token when the walk ran past the last selected node.
	Correction lm.Token
	// AcceptedNodeIDs are the candidate-tree node IDs of Accepted.
	AcceptedNodeIDs []int
	// TokensVerified is the number of tree positions the target processed
	// (== selection size), for cost accounting.
	TokensVerified int
}

// NumNewTokens returns the number of tokens committed by this pass: the
// accepted prefix plus the correction/bonus token. This equals acc(T) in the
// paper's formulation (which counts the root).
func (r *VerifyResult) NumNewTokens() int { return len(r.Accepted) + 1 }

// VerifyScratch holds the per-level buffers of a verification walk so
// repeated verifies — one per request per iteration — allocate nothing once
// warm. The zero value is ready to use. Not safe for concurrent use.
type VerifyScratch struct {
	children []int
	branches []lm.Branch
}

// Verify runs tree-based parallel verification of the selected subtree.
//
// Semantically the target scores every selected node in one batched pass
// (cost = selection size); the commit walk then descends from the root: at
// each node the verifier adjudicates among the selected children (ordered by
// descending draft probability). Descent stops at the first rejection — the
// rule's correction token is committed — or past the last selected node,
// where the bonus token is drawn from the target distribution at that
// context.
func Verify(sel *Selection, v *lm.Verifier) *VerifyResult {
	res := &VerifyResult{}
	var sc VerifyScratch
	VerifyInto(res, sel, v, &sc)
	return res
}

// VerifyInto is Verify with caller-owned result and scratch storage: res is
// reset and refilled in place (its Accepted/AcceptedNodeIDs capacity is
// reused), sc provides the walk buffers. The engine pools both across
// iterations; results are identical to Verify's.
func VerifyInto(res *VerifyResult, sel *Selection, v *lm.Verifier, sc *VerifyScratch) {
	t := sel.Tree()
	res.Accepted = res.Accepted[:0]
	res.AcceptedNodeIDs = res.AcceptedNodeIDs[:0]
	res.Correction = 0
	res.TokensVerified = sel.Size()
	cur := 0
	ctx := t.Ctx
	for {
		sc.children = sc.children[:0]
		sc.branches = sc.branches[:0]
		for _, c := range t.Nodes[cur].Children {
			if sel.Has(c) {
				sc.children = append(sc.children, c)
				sc.branches = append(sc.branches, lm.Branch{Token: t.Nodes[c].Token})
			}
		}
		if len(sc.children) == 0 {
			// Past the last selected node: commit the bonus token.
			res.Correction = bonusToken(v, ctx)
			return
		}
		idx, correction := v.AcceptAmong(ctx, sc.branches)
		if idx < 0 {
			res.Correction = correction
			return
		}
		chosen := sc.children[idx]
		res.Accepted = append(res.Accepted, t.Nodes[chosen].Token)
		res.AcceptedNodeIDs = append(res.AcceptedNodeIDs, chosen)
		ctx = ctx.Extend(t.Nodes[chosen].Token)
		cur = chosen
	}
}

// bonusToken draws the extra token the target emits at the end of a fully
// accepted path. Under the greedy rule it is the argmax; under the
// stochastic rule it is a sample.
func bonusToken(v *lm.Verifier, ctx lm.Context) lm.Token {
	dist := v.Target.Dist(ctx)
	if v.Rule == lm.RuleGreedy {
		return dist.Argmax()
	}
	return dist.Sample(v.RNG)
}
