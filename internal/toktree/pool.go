package toktree

import "adaserve/internal/lm"

// TreePool recycles candidate trees across engine iterations. Trees handed
// out by Get stay valid until they are Put back; the engine Puts the
// previous iteration's trees at the start of the next one, matching the
// schedulers' use-within-one-iteration lifetime. Not safe for concurrent
// use.
type TreePool struct {
	free []*Tree
}

// Get returns a rooted tree, reusing a recycled one when available.
func (p *TreePool) Get(ctx lm.Context, rootTok lm.Token) *Tree {
	if n := len(p.free); n > 0 {
		t := p.free[n-1]
		p.free = p.free[:n-1]
		t.Reset(ctx, rootTok)
		return t
	}
	return NewTree(ctx, rootTok)
}

// Put returns a tree to the pool. The caller must hold no live references
// into it (nodes, selections) past this point.
func (p *TreePool) Put(t *Tree) {
	if t != nil {
		p.free = append(p.free, t)
	}
}
