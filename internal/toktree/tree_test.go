package toktree

import (
	"testing"
	"testing/quick"

	"adaserve/internal/lm"
	"adaserve/internal/mathutil"
)

func buildSmallTree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree(lm.Context{ReqSeed: 1}, 42)
	a := tr.AddChild(0, 100, 0.7)
	b := tr.AddChild(0, 101, 0.2)
	c := tr.AddChild(a, 102, 0.6)
	tr.AddChild(a, 103, 0.3)
	tr.AddChild(b, 104, 0.5)
	tr.AddChild(c, 105, 0.9)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTreeRoot(t *testing.T) {
	tr := NewTree(lm.Context{ReqSeed: 1}, 42)
	if tr.Size() != 1 || tr.Depth() != 0 {
		t.Fatalf("fresh tree size=%d depth=%d", tr.Size(), tr.Depth())
	}
	root := tr.Nodes[0]
	if root.Parent != -1 || root.PathProb != 1 || root.Token != 42 {
		t.Fatalf("bad root %+v", root)
	}
}

func TestAddChildPathProbs(t *testing.T) {
	tr := buildSmallTree(t)
	// Node 3 (token 102) is child of node 1 (0.7): path = 0.42.
	var found bool
	for _, n := range tr.Nodes {
		if n.Token == 102 {
			found = true
			if diff := n.PathProb - 0.42; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("path prob %g, want 0.42", n.PathProb)
			}
			if n.Depth != 2 {
				t.Fatalf("depth %d, want 2", n.Depth)
			}
		}
	}
	if !found {
		t.Fatal("node 102 missing")
	}
}

func TestChildrenSortedByDraftProb(t *testing.T) {
	tr := buildSmallTree(t)
	ch := tr.Nodes[0].Children
	if len(ch) != 2 {
		t.Fatalf("root children %v", ch)
	}
	if tr.Nodes[ch[0]].DraftProb < tr.Nodes[ch[1]].DraftProb {
		t.Fatal("children not sorted by descending draft prob")
	}
}

func TestAddChildManyNodesKeepsParentLinks(t *testing.T) {
	// Regression test for the slice-reallocation aliasing bug: adding many
	// nodes must keep every child list reachable from its (possibly moved)
	// parent.
	tr := NewTree(lm.Context{ReqSeed: 2}, 0)
	parent := 0
	for i := 0; i < 200; i++ {
		parent = tr.AddChild(parent, lm.Token(i), 0.9)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The chain must be fully connected: 200 nodes of strictly increasing
	// depth, each the sole child of its parent.
	cur := 0
	for depth := 0; depth < 200; depth++ {
		ch := tr.Nodes[cur].Children
		if len(ch) != 1 {
			t.Fatalf("node %d at depth %d has %d children", cur, depth, len(ch))
		}
		cur = ch[0]
	}
}

func TestNodeCtxAndPathTokens(t *testing.T) {
	tr := buildSmallTree(t)
	// Find node 105: root -> 100 -> 102 -> 105.
	var id int
	for _, n := range tr.Nodes {
		if n.Token == 105 {
			id = n.ID
		}
	}
	path := tr.PathTokens(id)
	want := []lm.Token{100, 102, 105}
	if len(path) != len(want) {
		t.Fatalf("path %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
	ctx := tr.NodeCtx(id)
	// Context at 105 includes tokens up to but excluding 105.
	if w := ctx.Window(); len(w) != 2 || w[0] != 100 || w[1] != 102 {
		t.Fatalf("node ctx window %v", w)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := buildSmallTree(t)
	tr.Nodes[2].PathProb = 2.0 // exceeds parent
	if tr.Validate() == nil {
		t.Fatal("validation missed excessive path prob")
	}
}

func TestSelectionBasics(t *testing.T) {
	tr := buildSmallTree(t)
	sel := NewSelection(tr)
	if !sel.Has(0) || sel.Size() != 1 || sel.ExpectedAccept() != 1 {
		t.Fatal("fresh selection should hold only the root")
	}
	sel.Add(1)
	sel.Add(3)
	if sel.Size() != 3 {
		t.Fatalf("size %d", sel.Size())
	}
	wantE := 1 + tr.Nodes[1].PathProb + tr.Nodes[3].PathProb
	if diff := sel.ExpectedAccept() - wantE; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("E[acc] %g, want %g", sel.ExpectedAccept(), wantE)
	}
	if err := sel.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectionRejectsOrphanAdd(t *testing.T) {
	tr := buildSmallTree(t)
	sel := NewSelection(tr)
	defer func() {
		if recover() == nil {
			t.Fatal("adding a node before its parent did not panic")
		}
	}()
	// Node with token 105 is at depth 3; its parent is unselected.
	for _, n := range tr.Nodes {
		if n.Token == 105 {
			sel.Add(n.ID)
		}
	}
}

func TestSelectionRejectsDoubleAdd(t *testing.T) {
	tr := buildSmallTree(t)
	sel := NewSelection(tr)
	sel.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double add did not panic")
		}
	}()
	sel.Add(1)
}

func TestSelectedChildrenOrder(t *testing.T) {
	tr := buildSmallTree(t)
	sel := NewSelection(tr)
	sel.Add(1)
	sel.Add(2)
	ch := sel.SelectedChildren(0)
	if len(ch) != 2 || tr.Nodes[ch[0]].DraftProb < tr.Nodes[ch[1]].DraftProb {
		t.Fatalf("selected children %v out of order", ch)
	}
}

// TestTheorem31 verifies E[acc(T)] = Σ f(v) by Monte Carlo: the expected
// number of tokens committed by sample-match verification over a selected
// tree equals the sum of true path probabilities of selected nodes.
func TestTheorem31(t *testing.T) {
	target := lm.MustSyntheticLM("t", 3, 4096, 16, 3.2, 0.02)
	draft := lm.MustDraftLM("d", target, 1.0, 4) // perfect draft: q = p = f
	ctx := lm.Context{ReqSeed: 77}

	br, err := BeamSearch(draft, ctx, 5, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := br.Tree
	sel := NewSelection(tr)
	for id := 1; id < tr.Size(); id++ {
		if sel.Has(tr.Nodes[id].Parent) {
			sel.Add(id)
		}
	}
	want := sel.ExpectedAccept() // Σ f(v) with calibrated f

	rng := mathutil.NewRNG(123)
	v := lm.NewVerifier(target, draft, lm.RuleSampleMatch, rng)
	var total int
	const n = 30000
	for i := 0; i < n; i++ {
		res := Verify(sel, v)
		total += res.NumNewTokens()
	}
	got := float64(total) / n
	if diff := got - want; diff > 0.05 || diff < -0.05 {
		t.Fatalf("Monte-Carlo E[acc] = %.3f, Theorem 3.1 predicts %.3f", got, want)
	}
}

// TestSelectionConnectivityProperty is the Appendix B property: any
// selection built by repeatedly adding the highest-f frontier node is a
// connected subtree.
func TestSelectionConnectivityProperty(t *testing.T) {
	target := lm.MustSyntheticLM("t", 5, 4096, 16, 2.0, 0.02)
	draft := lm.MustDraftLM("d", target, 0.8, 6)
	err := quick.Check(func(seed uint64, budgetRaw uint8) bool {
		budget := int(budgetRaw%20) + 1
		br, err := BeamSearch(draft, lm.Context{ReqSeed: seed}, 0, 4, 3)
		if err != nil {
			return false
		}
		sel := NewSelection(br.Tree)
		for i := 0; i < budget; i++ {
			// Greedy: highest-PathProb unselected node whose parent is in.
			best, bestP := -1, -1.0
			for _, n := range br.Tree.Nodes[1:] {
				if !sel.Has(n.ID) && sel.Has(n.Parent) && n.PathProb > bestP {
					best, bestP = n.ID, n.PathProb
				}
			}
			if best < 0 {
				break
			}
			sel.Add(best)
		}
		return sel.Validate() == nil
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
