package toktree

import (
	"fmt"
	"sort"

	"adaserve/internal/lm"
)

// BeamResult is the outcome of candidate-tree construction for one request.
type BeamResult struct {
	Tree *Tree
	// DraftTokensProcessed counts draft-model forward positions consumed,
	// for cost accounting: 1 (root) at step one, then the beam nodes
	// expanded at each later step.
	DraftTokensProcessed int
	// Steps is the number of draft decoding steps actually executed (≤ the
	// requested depth; construction stops early if the beam empties).
	Steps int
}

// beamEntry is one live beam node: its tree ID plus the decoding context
// under which its children are proposed. lm.Context is a value type, so the
// beam carries no heap references.
type beamEntry struct {
	nodeID int
	ctx    lm.Context
}

// beamCand is one candidate child during a beam step.
type beamCand struct {
	parentID  int
	parentCtx lm.Context
	tok       lm.Token
	draftProb float64
	pathProb  float64
}

// BeamBuilder runs beam searches with reusable scratch (beam and candidate
// buffers), so repeated searches — one per request per iteration — allocate
// nothing once warm. The zero value is ready to use. Not safe for concurrent
// use; engines own one each.
type BeamBuilder struct {
	beam  []beamEntry
	next  []beamEntry
	cands []beamCand
}

// BeamBuilder implements sort.Interface over its candidate buffer so the
// per-step ranking runs through sort.Sort without the reflection closures
// (and their allocations) of sort.Slice. The (parentID, tok) pair is unique,
// so the ordering is total and algorithm-independent.

// Len implements sort.Interface.
func (bb *BeamBuilder) Len() int { return len(bb.cands) }

// Less implements sort.Interface: descending path probability, ties by
// (parent node ID, token) ascending.
func (bb *BeamBuilder) Less(i, j int) bool {
	a, b := &bb.cands[i], &bb.cands[j]
	if a.pathProb != b.pathProb {
		return a.pathProb > b.pathProb
	}
	if a.parentID != b.parentID {
		return a.parentID < b.parentID
	}
	return a.tok < b.tok
}

// Swap implements sort.Interface.
func (bb *BeamBuilder) Swap(i, j int) { bb.cands[i], bb.cands[j] = bb.cands[j], bb.cands[i] }

// Search grows a candidate token tree of depth d and beam width w into t,
// which must contain only a root (fresh from NewTree, TreePool.Get, or
// Reset). It returns the number of draft steps executed and draft forward
// positions consumed. The algorithm matches BeamSearch exactly; only the
// scratch storage is reused.
func (bb *BeamBuilder) Search(t *Tree, draft lm.Model, d, w int) (steps, draftTokens int, err error) {
	if d < 0 {
		return 0, 0, fmt.Errorf("toktree: negative beam depth %d", d)
	}
	if w < 1 && d > 0 {
		return 0, 0, fmt.Errorf("toktree: beam width %d < 1", w)
	}
	if d == 0 {
		return 0, 0, nil
	}

	bb.beam = append(bb.beam[:0], beamEntry{nodeID: 0, ctx: t.Ctx})

	for step := 0; step < d; step++ {
		bb.cands = bb.cands[:0]
		for _, be := range bb.beam {
			draftTokens++
			dist := draft.Dist(be.ctx)
			parentPath := t.Nodes[be.nodeID].PathProb
			top := dist.Entries
			if len(top) > w {
				top = top[:w]
			}
			for _, e := range top {
				bb.cands = append(bb.cands, beamCand{
					parentID: be.nodeID, parentCtx: be.ctx, tok: e.Token,
					draftProb: e.Prob, pathProb: parentPath * e.Prob,
				})
			}
		}
		if len(bb.cands) == 0 {
			break
		}
		sort.Sort(bb)
		cands := bb.cands
		if len(cands) > w {
			cands = cands[:w]
		}
		bb.next = bb.next[:0]
		for _, c := range cands {
			id := t.AddChild(c.parentID, c.tok, c.draftProb)
			bb.next = append(bb.next, beamEntry{nodeID: id, ctx: c.parentCtx.Extend(c.tok)})
		}
		bb.beam, bb.next = bb.next, bb.beam
		steps++
	}
	return steps, draftTokens, nil
}

// BeamSearch constructs a candidate token tree of depth d and beam width w
// for a request whose decoding context is ctx and whose last committed token
// is rootTok (Algorithm 2's speculation phase).
//
// Step 1 expands the root and keeps the w highest-DraftProb children. Each
// subsequent step expands all beam nodes and keeps the w children with the
// highest *path* probability (global per request, as in Eagle-2-style beam
// search), so every non-root level holds at most w nodes.
//
// This convenience form allocates fresh scratch per call; the engine's hot
// path reuses a BeamBuilder and pooled trees instead. Both produce identical
// trees.
func BeamSearch(draft lm.Model, ctx lm.Context, rootTok lm.Token, d, w int) (*BeamResult, error) {
	t := NewTree(ctx, rootTok)
	var bb BeamBuilder
	steps, draftTokens, err := bb.Search(t, draft, d, w)
	if err != nil {
		return nil, err
	}
	return &BeamResult{Tree: t, DraftTokensProcessed: draftTokens, Steps: steps}, nil
}

// ChainSpeculate builds a depth-k chain (beam width 1): the draft greedily
// decodes k tokens. This is the static sequence speculation used by the
// vLLM-Spec baselines.
func ChainSpeculate(draft lm.Model, ctx lm.Context, rootTok lm.Token, k int) (*BeamResult, error) {
	return BeamSearch(draft, ctx, rootTok, k, 1)
}
