package toktree

import (
	"fmt"
	"sort"

	"adaserve/internal/lm"
)

// BeamResult is the outcome of candidate-tree construction for one request.
type BeamResult struct {
	Tree *Tree
	// DraftTokensProcessed counts draft-model forward positions consumed,
	// for cost accounting: 1 (root) at step one, then the beam nodes
	// expanded at each later step.
	DraftTokensProcessed int
	// Steps is the number of draft decoding steps actually executed (≤ the
	// requested depth; construction stops early if the beam empties).
	Steps int
}

// BeamSearch constructs a candidate token tree of depth d and beam width w
// for a request whose decoding context is ctx and whose last committed token
// is rootTok (Algorithm 2's speculation phase).
//
// Step 1 expands the root and keeps the w highest-DraftProb children. Each
// subsequent step expands all beam nodes and keeps the w children with the
// highest *path* probability (global per request, as in Eagle-2-style beam
// search), so every non-root level holds at most w nodes.
func BeamSearch(draft lm.Model, ctx lm.Context, rootTok lm.Token, d, w int) (*BeamResult, error) {
	if d < 0 {
		return nil, fmt.Errorf("toktree: negative beam depth %d", d)
	}
	if w < 1 && d > 0 {
		return nil, fmt.Errorf("toktree: beam width %d < 1", w)
	}
	t := NewTree(ctx, rootTok)
	res := &BeamResult{Tree: t}
	if d == 0 {
		return res, nil
	}

	type beamEntry struct {
		nodeID int
		ctx    lm.Context
	}
	beam := []beamEntry{{nodeID: 0, ctx: ctx}}

	for step := 0; step < d; step++ {
		type cand struct {
			parent    beamEntry
			tok       lm.Token
			draftProb float64
			pathProb  float64
		}
		var cands []cand
		for _, be := range beam {
			res.DraftTokensProcessed++
			dist := draft.Dist(be.ctx)
			parentPath := t.Nodes[be.nodeID].PathProb
			for _, e := range dist.TopK(w) {
				cands = append(cands, cand{
					parent: be, tok: e.Token,
					draftProb: e.Prob, pathProb: parentPath * e.Prob,
				})
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].pathProb != cands[j].pathProb {
				return cands[i].pathProb > cands[j].pathProb
			}
			if cands[i].parent.nodeID != cands[j].parent.nodeID {
				return cands[i].parent.nodeID < cands[j].parent.nodeID
			}
			return cands[i].tok < cands[j].tok
		})
		if len(cands) > w {
			cands = cands[:w]
		}
		next := make([]beamEntry, 0, len(cands))
		for _, c := range cands {
			id := t.AddChild(c.parent.nodeID, c.tok, c.draftProb)
			next = append(next, beamEntry{nodeID: id, ctx: c.parent.ctx.Extend(c.tok)})
		}
		beam = next
		res.Steps++
	}
	return res, nil
}

// ChainSpeculate builds a depth-k chain (beam width 1): the draft greedily
// decodes k tokens. This is the static sequence speculation used by the
// vLLM-Spec baselines.
func ChainSpeculate(draft lm.Model, ctx lm.Context, rootTok lm.Token, k int) (*BeamResult, error) {
	return BeamSearch(draft, ctx, rootTok, k, 1)
}
