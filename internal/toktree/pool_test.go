package toktree

import (
	"sort"
	"testing"

	"adaserve/internal/lm"
	"adaserve/internal/mathutil"
)

func poolTestDraft(t *testing.T) lm.Model {
	t.Helper()
	target := lm.MustSyntheticLM("t", 1, 4096, 16, 3.2, 0.02)
	return lm.MustDraftLM("d", target, 0.85, 2)
}

// treesEqual compares full tree structure node by node.
func treesEqual(a, b *Tree) bool {
	if len(a.Nodes) != len(b.Nodes) || a.Ctx != b.Ctx {
		return false
	}
	for i := range a.Nodes {
		x, y := &a.Nodes[i], &b.Nodes[i]
		if x.ID != y.ID || x.Token != y.Token || x.Parent != y.Parent ||
			x.Depth != y.Depth || x.DraftProb != y.DraftProb || x.PathProb != y.PathProb ||
			len(x.Children) != len(y.Children) {
			return false
		}
		for k := range x.Children {
			if x.Children[k] != y.Children[k] {
				return false
			}
		}
	}
	return true
}

// TestPooledBeamMatchesFresh drives a pooled tree + reused BeamBuilder
// through many searches and checks every tree is byte-identical to a fresh
// BeamSearch of the same inputs — the pooling-determinism contract the
// engine relies on.
func TestPooledBeamMatchesFresh(t *testing.T) {
	draft := poolTestDraft(t)
	var pool TreePool
	var bb BeamBuilder
	rng := mathutil.NewRNG(42)
	var prev *Tree
	for i := 0; i < 200; i++ {
		ctx := lm.NewContext(uint64(i%13), []lm.Token{lm.Token(rng.Intn(64))})
		root := lm.Token(rng.Intn(256))
		d, w := 1+rng.Intn(7), 1+rng.Intn(4)

		if prev != nil {
			pool.Put(prev)
		}
		pooled := pool.Get(ctx, root)
		if _, _, err := bb.Search(pooled, draft, d, w); err != nil {
			t.Fatal(err)
		}
		prev = pooled

		fresh, err := BeamSearch(draft, ctx, root, d, w)
		if err != nil {
			t.Fatal(err)
		}
		if !treesEqual(pooled, fresh.Tree) {
			t.Fatalf("iteration %d (d=%d w=%d): pooled tree differs from fresh", i, d, w)
		}
		if err := pooled.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// TestTreeResetReusesStorage checks Reset produces a root-only tree and that
// warm rebuilds do not grow node storage.
func TestTreeResetReusesStorage(t *testing.T) {
	draft := poolTestDraft(t)
	tr := NewTree(lm.Context{ReqSeed: 1}, 7)
	var bb BeamBuilder
	if _, _, err := bb.Search(tr, draft, 6, 4); err != nil {
		t.Fatal(err)
	}
	grown := cap(tr.Nodes)
	tr.Reset(lm.Context{ReqSeed: 2}, 9)
	if tr.Size() != 1 || tr.Nodes[0].Token != 9 || tr.Nodes[0].Parent != -1 {
		t.Fatalf("reset tree malformed: %+v", tr.Nodes[0])
	}
	if cap(tr.Nodes) != grown {
		t.Fatal("Reset dropped node capacity")
	}
	if _, _, err := bb.Search(tr, draft, 6, 4); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAddChildInsertionMatchesSort fuzzes AddChild's insertion step against
// a reference stable sort over random child orders.
func TestAddChildInsertionMatchesSort(t *testing.T) {
	rng := mathutil.NewRNG(7)
	for trial := 0; trial < 200; trial++ {
		tr := NewTree(lm.Context{ReqSeed: uint64(trial)}, 0)
		n := 2 + rng.Intn(8)
		for i := 0; i < n; i++ {
			// Coarse probabilities force ties; tokens may repeat across
			// children to exercise the secondary key.
			tr.AddChild(0, lm.Token(rng.Intn(4)), float64(rng.Intn(3))/4)
		}
		got := append([]int(nil), tr.Nodes[0].Children...)
		want := append([]int(nil), got...)
		sort.SliceStable(want, func(i, j int) bool {
			a, b := &tr.Nodes[want[i]], &tr.Nodes[want[j]]
			if a.DraftProb != b.DraftProb {
				return a.DraftProb > b.DraftProb
			}
			return a.Token < b.Token
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: children %v, want %v", trial, got, want)
			}
		}
	}
}

// TestVerifyIntoMatchesVerify runs pooled-scratch verification against the
// allocating form over many trees and seeds.
func TestVerifyIntoMatchesVerify(t *testing.T) {
	target := lm.MustSyntheticLM("t", 1, 4096, 16, 3.2, 0.02)
	draft := lm.MustDraftLM("d", target, 0.8, 2)
	var sc VerifyScratch
	var res VerifyResult
	for i := 0; i < 100; i++ {
		br, err := BeamSearch(draft, lm.Context{ReqSeed: uint64(i)}, 5, 5, 3)
		if err != nil {
			t.Fatal(err)
		}
		sel := NewSelection(br.Tree)
		for id := 1; id < br.Tree.Size(); id++ {
			if sel.Has(br.Tree.Nodes[id].Parent) && id%3 != 0 {
				sel.Add(id)
			}
		}
		// Identical RNG state for both walks.
		v1 := lm.NewVerifier(target, draft, lm.RuleSampleMatch, mathutil.NewRNG(uint64(i)))
		v2 := lm.NewVerifier(target, draft, lm.RuleSampleMatch, mathutil.NewRNG(uint64(i)))
		want := Verify(sel, v1)
		VerifyInto(&res, sel, v2, &sc)
		if want.Correction != res.Correction || len(want.Accepted) != len(res.Accepted) {
			t.Fatalf("tree %d: pooled verify diverged: %+v vs %+v", i, want, res)
		}
		for k := range want.Accepted {
			if want.Accepted[k] != res.Accepted[k] || want.AcceptedNodeIDs[k] != res.AcceptedNodeIDs[k] {
				t.Fatalf("tree %d: accepted prefix differs at %d", i, k)
			}
		}
		if want.TokensVerified != res.TokensVerified {
			t.Fatalf("tree %d: TokensVerified %d vs %d", i, want.TokensVerified, res.TokensVerified)
		}
	}
}
