package toktree

import (
	"reflect"
	"testing"

	"adaserve/internal/lm"
	"adaserve/internal/mathutil"
)

// chainLM is a scripted target model for white-box verification tests: at
// any context its argmax (and essentially all its mass) sits on
// lastToken+1, so the "correct" continuation of token t is t+1. That makes
// accepted prefixes fully predictable under the greedy rule.
type chainLM struct{ vocab int }

func (m chainLM) Name() string { return "chain" }
func (m chainLM) Vocab() int   { return m.vocab }

func (m chainLM) Dist(ctx lm.Context) lm.Dist {
	last := lm.Token(0)
	if w := ctx.Window(); len(w) > 0 {
		last = w[len(w)-1]
	}
	next := (last + 1) % lm.Token(m.vocab)
	other := (next + 1) % lm.Token(m.vocab)
	return lm.Dist{
		Entries: []lm.TokenProb{{Token: next, Prob: 0.9}, {Token: other, Prob: 0.1}},
		Tail:    0,
		Vocab:   m.vocab,
	}.Indexed()
}

// greedyVerifier builds a verifier over chainLM with the deterministic rule.
func greedyVerifier() *lm.Verifier {
	return lm.NewVerifier(chainLM{vocab: 256}, nil, lm.RuleGreedy, mathutil.NewRNG(1))
}

// chainCtx is a context whose history ends in the root token, matching how
// the engine roots trees at the request's last committed token.
func chainCtx(root lm.Token) lm.Context {
	return lm.NewContext(7, []lm.Token{root})
}

func TestVerifyAcceptsLongestCorrectPrefix(t *testing.T) {
	// Tree rooted at 10. Chain 11 -> 12 is the "correct" continuation;
	// siblings 99 (depth 1) and 77 (depth 2) are wrong. Node 13 hangs off
	// the WRONG sibling 99, so it must never be reached even though its
	// token would be acceptable elsewhere.
	tr := NewTree(chainCtx(10), 10)
	n11 := tr.AddChild(0, 11, 0.6)
	n99 := tr.AddChild(0, 99, 0.3)
	n12 := tr.AddChild(n11, 12, 0.7)
	tr.AddChild(n11, 77, 0.2)
	tr.AddChild(n99, 13, 0.5)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	sel := NewSelection(tr)
	for id := 1; id < tr.Size(); id++ {
		sel.Add(id)
	}
	res := Verify(sel, greedyVerifier())
	if want := []lm.Token{11, 12}; !reflect.DeepEqual(res.Accepted, want) {
		t.Fatalf("accepted %v, want %v", res.Accepted, want)
	}
	if want := []int{n11, n12}; !reflect.DeepEqual(res.AcceptedNodeIDs, want) {
		t.Fatalf("accepted node IDs %v, want %v", res.AcceptedNodeIDs, want)
	}
	// Past the last selected node on the accepted path: bonus = argmax
	// after ...11,12 = 13.
	if res.Correction != 13 {
		t.Fatalf("bonus token %d, want 13", res.Correction)
	}
	if res.TokensVerified != sel.Size() {
		t.Fatalf("tokens verified %d, want selection size %d", res.TokensVerified, sel.Size())
	}
	if res.NumNewTokens() != 3 {
		t.Fatalf("new tokens %d, want 3 (accepted 2 + bonus)", res.NumNewTokens())
	}
}

func TestVerifyRejectionEmitsCorrection(t *testing.T) {
	// No child carries the correct token 11: the walk stops at the root and
	// the correction is the target argmax there.
	tr := NewTree(chainCtx(10), 10)
	tr.AddChild(0, 99, 0.6)
	tr.AddChild(0, 50, 0.3)
	sel := NewSelection(tr)
	sel.Add(1)
	sel.Add(2)
	res := Verify(sel, greedyVerifier())
	if len(res.Accepted) != 0 {
		t.Fatalf("accepted %v, want none", res.Accepted)
	}
	if res.Correction != 11 {
		t.Fatalf("correction %d, want target argmax 11", res.Correction)
	}
	if res.NumNewTokens() != 1 {
		t.Fatalf("new tokens %d, want 1", res.NumNewTokens())
	}
}

func TestVerifyRespectsSelection(t *testing.T) {
	// The correct child 11 exists in the candidate tree but is NOT
	// selected: verification must not see it and must reject the selected
	// sibling.
	tr := NewTree(chainCtx(10), 10)
	tr.AddChild(0, 11, 0.6)
	n99 := tr.AddChild(0, 99, 0.3)
	sel := NewSelection(tr)
	sel.Add(n99)
	res := Verify(sel, greedyVerifier())
	if len(res.Accepted) != 0 || res.Correction != 11 {
		t.Fatalf("selection leak: accepted %v correction %d", res.Accepted, res.Correction)
	}
	if res.TokensVerified != 2 {
		t.Fatalf("tokens verified %d, want 2 (root + one child)", res.TokensVerified)
	}
}

func TestVerifyRootOnlyTree(t *testing.T) {
	// Empty tree (root only, nothing speculated): verification degenerates
	// to plain decoding — no accepted tokens, bonus from the root context.
	tr := NewTree(chainCtx(10), 10)
	sel := NewSelection(tr)
	res := Verify(sel, greedyVerifier())
	if len(res.Accepted) != 0 || len(res.AcceptedNodeIDs) != 0 {
		t.Fatalf("root-only tree accepted %v", res.Accepted)
	}
	if res.Correction != 11 {
		t.Fatalf("bonus %d, want 11", res.Correction)
	}
	if res.TokensVerified != 1 {
		t.Fatalf("tokens verified %d, want 1", res.TokensVerified)
	}
}

func TestVerifyFullAcceptanceChain(t *testing.T) {
	// A fully correct selected chain of depth 4: everything accepted plus
	// the bonus token at the end.
	tr := NewTree(chainCtx(10), 10)
	parent := 0
	for d := 1; d <= 4; d++ {
		parent = tr.AddChild(parent, lm.Token(10+d), 0.9)
	}
	sel := NewSelection(tr)
	for id := 1; id < tr.Size(); id++ {
		sel.Add(id)
	}
	res := Verify(sel, greedyVerifier())
	if want := []lm.Token{11, 12, 13, 14}; !reflect.DeepEqual(res.Accepted, want) {
		t.Fatalf("accepted %v, want %v", res.Accepted, want)
	}
	if res.Correction != 15 {
		t.Fatalf("bonus %d, want 15", res.Correction)
	}
	if res.NumNewTokens() != 5 {
		t.Fatalf("new tokens %d, want depth+1 = 5", res.NumNewTokens())
	}
}

// buildRandomTreeAndSelection grows a random candidate tree via the real
// beam builder over a synthetic draft model and selects a random connected
// subset, so equivalence tests cover realistic shapes.
func buildRandomTreeAndSelection(t *testing.T, seed uint64) (*Tree, *Selection) {
	t.Helper()
	target := lm.MustSyntheticLM("t", seed, 512, 8, 2.5, 0.05)
	draft := lm.MustDraftLM("d", target, 0.8, seed+1)
	tr := NewTree(lm.Context{ReqSeed: seed}, lm.Token(seed%256))
	var bb BeamBuilder
	if _, _, err := bb.Search(tr, draft, 4, 3); err != nil {
		t.Fatal(err)
	}
	sel := NewSelection(tr)
	rng := mathutil.NewRNG(seed ^ 0xbeef)
	for id := 1; id < tr.Size(); id++ {
		if sel.Has(tr.Nodes[id].Parent) && rng.Float64() < 0.7 {
			sel.Add(id)
		}
	}
	return tr, sel
}

// TestVerifyIntoMatchesFresh is the pooling guarantee: VerifyInto with
// recycled result/scratch storage must produce results identical to a fresh
// Verify, across rules and many random trees, even when the recycled result
// previously held larger walks.
func TestVerifyIntoMatchesFresh(t *testing.T) {
	for _, rule := range []lm.VerifyRule{lm.RuleGreedy, lm.RuleSampleMatch, lm.RuleRejection} {
		t.Run(rule.String(), func(t *testing.T) {
			target := lm.MustSyntheticLM("t", 42, 512, 8, 2.5, 0.05)
			draft := lm.MustDraftLM("d", target, 0.8, 43)
			var pooled VerifyResult
			var sc VerifyScratch
			for seed := uint64(1); seed <= 25; seed++ {
				_, sel := buildRandomTreeAndSelection(t, seed)
				// Identical RNG streams for the two walks.
				vFresh := lm.NewVerifier(target, draft, rule, mathutil.NewRNG(seed))
				vPooled := lm.NewVerifier(target, draft, rule, mathutil.NewRNG(seed))
				fresh := Verify(sel, vFresh)
				VerifyInto(&pooled, sel, vPooled, &sc)
				// Element-wise comparison: the pooled result reuses non-nil
				// zero-length slices where a fresh walk may hold nil ones.
				same := len(fresh.Accepted) == len(pooled.Accepted) &&
					len(fresh.AcceptedNodeIDs) == len(pooled.AcceptedNodeIDs) &&
					fresh.Correction == pooled.Correction &&
					fresh.TokensVerified == pooled.TokensVerified
				for i := 0; same && i < len(fresh.Accepted); i++ {
					same = fresh.Accepted[i] == pooled.Accepted[i] &&
						fresh.AcceptedNodeIDs[i] == pooled.AcceptedNodeIDs[i]
				}
				if !same {
					t.Fatalf("seed %d: pooled result diverged:\nfresh  %+v\npooled %+v", seed, fresh, pooled)
				}
			}
		})
	}
}
