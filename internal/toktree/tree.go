// Package toktree implements draft token trees: the beam-search candidate
// trees produced during AdaServe's speculation phase, the selected draft
// trees submitted for verification, and tree-based parallel verification.
//
// Conventions (following the paper, §3):
//
//   - Every tree is rooted at the request's last generated token. The root
//     has path probability f(root) = 1: verification always commits at least
//     one new token (the bonus/correction token), so the root counts toward
//     acc(T) and toward the token budget.
//   - A node's path probability is the product of conditional draft
//     probabilities along the root path — the approximation of f(v) from
//     Eq. (7).
//   - acc(T) = 1 + number of accepted draft tokens = tokens committed by one
//     verification pass, so E[acc(T)] = Σ_{v∈T} f(v) (Theorem 3.1).
package toktree

import (
	"fmt"

	"adaserve/internal/lm"
)

// Node is one token in a candidate tree.
type Node struct {
	// ID indexes Tree.Nodes; the root is always ID 0.
	ID int
	// Token is the draft token at this node (for the root: the request's
	// last committed token, informational only).
	Token lm.Token
	// Parent is the parent node ID, or -1 for the root.
	Parent int
	// Depth is 0 for the root.
	Depth int
	// DraftProb is q(token | path to parent), 1 for the root.
	DraftProb float64
	// PathProb is the product of DraftProb along the root path (the
	// approximated f(v)); 1 for the root.
	PathProb float64
	// Children lists child node IDs in descending DraftProb order.
	Children []int
}

// Tree is a candidate token tree for one request, as produced by the
// speculation phase. Selection marks a subset of its nodes; the marked
// subset is the draft token tree T submitted for verification.
type Tree struct {
	Nodes []Node
	// Ctx is the request's decoding context at the root (history includes
	// the root token).
	Ctx lm.Context

	// spareChildren stashes child-ID slices recovered by Reset so reused
	// trees stop allocating once warm.
	spareChildren [][]int
}

// NewTree creates a tree holding only a root for the given context. rootTok
// should be the last committed token of the request.
func NewTree(ctx lm.Context, rootTok lm.Token) *Tree {
	return &Tree{
		Nodes: []Node{{ID: 0, Token: rootTok, Parent: -1, Depth: 0, DraftProb: 1, PathProb: 1}},
		Ctx:   ctx,
	}
}

// Reset re-roots the tree in place for reuse: node storage and the child-ID
// slices of the previous occupancy are retained, so a warm tree builds
// without allocating. Any outstanding references into the old tree
// (Selections, node pointers) become invalid.
func (t *Tree) Reset(ctx lm.Context, rootTok lm.Token) {
	for i := range t.Nodes {
		if c := t.Nodes[i].Children; cap(c) > 0 {
			t.spareChildren = append(t.spareChildren, c[:0])
		}
	}
	t.Nodes = t.Nodes[:0]
	t.Nodes = append(t.Nodes, Node{ID: 0, Token: rootTok, Parent: -1, Depth: 0, DraftProb: 1, PathProb: 1})
	t.Ctx = ctx
}

// AddChild appends a node under parent and returns its ID. Children are kept
// sorted by descending DraftProb (ties by token) so verification considers
// likelier branches first.
func (t *Tree) AddChild(parent int, tok lm.Token, draftProb float64) int {
	if parent < 0 || parent >= len(t.Nodes) {
		panic(fmt.Sprintf("toktree: AddChild parent %d out of range", parent))
	}
	id := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{
		ID: id, Token: tok, Parent: parent, Depth: t.Nodes[parent].Depth + 1,
		DraftProb: draftProb, PathProb: t.Nodes[parent].PathProb * draftProb,
	})
	// Take the parent pointer only after append: append may reallocate
	// t.Nodes, and a pointer captured earlier would mutate the stale array.
	p := &t.Nodes[parent]
	if p.Children == nil {
		if n := len(t.spareChildren); n > 0 {
			p.Children = t.spareChildren[n-1]
			t.spareChildren = t.spareChildren[:n-1]
		}
	}
	p.Children = append(p.Children, id)
	// The existing children are already sorted (this is the only insertion
	// point), so one insertion pass from the tail replaces a full sort; beam
	// search appends in sorted order, making this a no-op there.
	ch := p.Children
	for k := len(ch) - 1; k > 0; k-- {
		prev, cur := &t.Nodes[ch[k-1]], &t.Nodes[ch[k]]
		if cur.DraftProb > prev.DraftProb ||
			(cur.DraftProb == prev.DraftProb && cur.Token < prev.Token) {
			ch[k-1], ch[k] = ch[k], ch[k-1]
			continue
		}
		break
	}
	return id
}

// Size returns the number of nodes including the root.
func (t *Tree) Size() int { return len(t.Nodes) }

// Depth returns the maximum node depth.
func (t *Tree) Depth() int {
	d := 0
	for i := range t.Nodes {
		if t.Nodes[i].Depth > d {
			d = t.Nodes[i].Depth
		}
	}
	return d
}

// NodeCtx returns the decoding context at node id: the root context extended
// by the draft tokens along the path (excluding the node's own token), i.e.
// the context under which the node's token was proposed.
func (t *Tree) NodeCtx(id int) lm.Context {
	var path []int
	for n := id; n != 0; n = t.Nodes[n].Parent {
		path = append(path, n)
	}
	ctx := t.Ctx
	for i := len(path) - 1; i >= 1; i-- {
		ctx = ctx.Extend(t.Nodes[path[i]].Token)
	}
	return ctx
}

// PathTokens returns the draft tokens from (excluding) the root to node id.
func (t *Tree) PathTokens(id int) []lm.Token {
	var rev []lm.Token
	for n := id; n != 0; n = t.Nodes[n].Parent {
		rev = append(rev, t.Nodes[n].Token)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Validate checks structural invariants: parent links, depths, sorted
// children, and path-probability monotonicity (child ≤ parent).
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("toktree: empty tree")
	}
	if t.Nodes[0].Parent != -1 || t.Nodes[0].Depth != 0 || t.Nodes[0].PathProb != 1 {
		return fmt.Errorf("toktree: malformed root %+v", t.Nodes[0])
	}
	for i := 1; i < len(t.Nodes); i++ {
		n := &t.Nodes[i]
		if n.ID != i {
			return fmt.Errorf("toktree: node %d has ID %d", i, n.ID)
		}
		if n.Parent < 0 || n.Parent >= len(t.Nodes) {
			return fmt.Errorf("toktree: node %d parent %d out of range", i, n.Parent)
		}
		p := &t.Nodes[n.Parent]
		if n.Depth != p.Depth+1 {
			return fmt.Errorf("toktree: node %d depth %d, parent depth %d", i, n.Depth, p.Depth)
		}
		if n.PathProb > p.PathProb+1e-12 {
			return fmt.Errorf("toktree: node %d path prob %g exceeds parent %g", i, n.PathProb, p.PathProb)
		}
		if n.DraftProb < 0 || n.DraftProb > 1+1e-12 {
			return fmt.Errorf("toktree: node %d draft prob %g out of range", i, n.DraftProb)
		}
	}
	for i := range t.Nodes {
		ch := t.Nodes[i].Children
		for k := 1; k < len(ch); k++ {
			if t.Nodes[ch[k-1]].DraftProb < t.Nodes[ch[k]].DraftProb {
				return fmt.Errorf("toktree: node %d children not sorted", i)
			}
		}
		for _, c := range ch {
			if t.Nodes[c].Parent != i {
				return fmt.Errorf("toktree: child %d of %d has parent %d", c, i, t.Nodes[c].Parent)
			}
		}
	}
	return nil
}

// Selection marks which nodes of a candidate tree form the draft token tree
// submitted for verification. The root is always selected.
type Selection struct {
	tree *Tree
	// mask[i] reports whether node i is selected.
	mask []bool
	// count is the number of selected nodes (>= 1 for the root).
	count int
	// sumPathProb is Σ f(v) over selected nodes (== E[acc(T)]).
	sumPathProb float64
}

// NewSelection creates a selection over t containing only the root.
func NewSelection(t *Tree) *Selection {
	s := &Selection{}
	s.Reset(t)
	return s
}

// Reset re-targets the selection at tree t with only the root selected,
// reusing the mask's capacity so pooled selections stop allocating once
// warm.
func (s *Selection) Reset(t *Tree) {
	s.tree = t
	if cap(s.mask) < len(t.Nodes) {
		s.mask = make([]bool, len(t.Nodes))
	} else {
		s.mask = s.mask[:len(t.Nodes)]
		for i := range s.mask {
			s.mask[i] = false
		}
	}
	s.mask[0] = true
	s.count = 1
	s.sumPathProb = 1
}

// Add marks node id as selected. It panics if the node's parent is not
// already selected (selections must be connected subtrees) or if the node is
// already selected.
func (s *Selection) Add(id int) {
	if id <= 0 || id >= len(s.mask) {
		panic(fmt.Sprintf("toktree: Selection.Add id %d out of range", id))
	}
	if s.mask[id] {
		panic(fmt.Sprintf("toktree: node %d already selected", id))
	}
	if !s.mask[s.tree.Nodes[id].Parent] {
		panic(fmt.Sprintf("toktree: node %d selected before parent %d", id, s.tree.Nodes[id].Parent))
	}
	s.mask[id] = true
	s.count++
	s.sumPathProb += s.tree.Nodes[id].PathProb
}

// Has reports whether node id is selected.
func (s *Selection) Has(id int) bool { return id >= 0 && id < len(s.mask) && s.mask[id] }

// Size returns the number of selected nodes including the root.
func (s *Selection) Size() int { return s.count }

// ExpectedAccept returns Σ f(v) over the selection: the expected number of
// tokens this verification will commit (Theorem 3.1).
func (s *Selection) ExpectedAccept() float64 { return s.sumPathProb }

// Tree returns the underlying candidate tree.
func (s *Selection) Tree() *Tree { return s.tree }

// SelectedChildren returns the selected children of node id, in the tree's
// (descending DraftProb) order.
func (s *Selection) SelectedChildren(id int) []int {
	var out []int
	for _, c := range s.tree.Nodes[id].Children {
		if s.mask[c] {
			out = append(out, c)
		}
	}
	return out
}

// Validate checks the connectivity invariant (Appendix B): every selected
// node's parent is selected.
func (s *Selection) Validate() error {
	if !s.mask[0] {
		return fmt.Errorf("toktree: root not selected")
	}
	n, sum := 0, 0.0
	for i, sel := range s.mask {
		if !sel {
			continue
		}
		n++
		sum += s.tree.Nodes[i].PathProb
		if i != 0 && !s.mask[s.tree.Nodes[i].Parent] {
			return fmt.Errorf("toktree: selected node %d has unselected parent", i)
		}
	}
	if n != s.count {
		return fmt.Errorf("toktree: count %d != recount %d", s.count, n)
	}
	if diff := sum - s.sumPathProb; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("toktree: sumPathProb %g != recount %g", s.sumPathProb, sum)
	}
	return nil
}
