package adaptive

import (
	"strings"
	"testing"

	"adaserve/internal/engine"
	"adaserve/internal/gpu"
	"adaserve/internal/kvcache"
	"adaserve/internal/lm"
	"adaserve/internal/request"
	"adaserve/internal/sched"
	"adaserve/internal/serve"
)

// schedConfig builds the small scheduler substrate the controller tests run
// on (mirrors the sched package's own test fixture).
func schedConfig(t *testing.T) sched.Config {
	t.Helper()
	target := lm.MustSyntheticLM("t", 1, 4096, 16, 3.2, 0.02)
	draft := lm.MustDraftLM("d", target, 0.88, 2)
	eng := engine.MustNew(engine.Config{
		Target: target, Draft: draft,
		TargetCost: gpu.MustCostModel(gpu.A100, gpu.Llama70B, 4),
		DraftCost:  gpu.MustCostModel(gpu.A100, gpu.Llama1B, 1),
		Seed:       3,
	})
	return sched.Config{
		Engine:           eng,
		KV:               kvcache.MustNew(kvcache.ConfigForTokens(200000, 16)),
		MaxBatch:         64,
		MaxPrefillTokens: 2048,
		SchedOverhead:    30e-6,
	}
}

func adaServe(t *testing.T) *sched.AdaServe {
	t.Helper()
	sys, err := sched.NewAdaServe(schedConfig(t), sched.AdaServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestNewValidation covers controller construction: backend required, a
// tuning controller needs a tunable system, an admission-only controller
// does not, and unset envelope bounds resolve from the controlled system.
func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil || !strings.Contains(err.Error(), "backend") {
		t.Fatalf("nil backend: %v", err)
	}
	cfg := schedConfig(t)
	vllm, err := sched.NewVLLM(sched.Config{
		Engine: cfg.Engine, KV: cfg.KV, MaxBatch: cfg.MaxBatch,
		MaxPrefillTokens: cfg.MaxPrefillTokens, SchedOverhead: cfg.SchedOverhead,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(serve.SingleSystem(vllm), Config{}); err == nil || !strings.Contains(err.Error(), "no tunable") {
		t.Fatalf("tuning over vLLM: %v", err)
	}
	admOnly, err := New(serve.SingleSystem(vllm), Config{DisableTuning: true})
	if err != nil {
		t.Fatalf("admission-only over vLLM: %v", err)
	}
	if d, w := admOnly.Envelope(); d < 1 || w < 1 {
		t.Fatalf("admission-only envelope (%d,%d) unresolved", d, w)
	}
	sys := adaServe(t)
	ctrl, err := New(serve.SingleSystem(sys), Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantD, wantW := sys.SpecEnvelope()
	if got := ctrl.Config(); got.DepthMax != wantD || got.WidthMax != wantW {
		t.Fatalf("bounds (%d,%d) not resolved from the system's (%d,%d)",
			got.DepthMax, got.WidthMax, wantD, wantW)
	}
	if _, err := New(serve.SingleSystem(adaServe(t)), Config{DisableTuning: true, DisableAdmission: true}); err == nil {
		t.Fatal("fully disabled controller accepted")
	}
}

// TestControllerClosedLoop drives a real single-replica run through the
// controller with tight thresholds: a burst of simultaneous arrivals must
// walk the gate through admit -> degrade -> reject as the queue builds, a
// later provably-unmeetable deadline must be rejected by the calibrated
// bound, the summary must partition the offered load, and the retuned
// envelope must stay inside its bounds.
func TestControllerClosedLoop(t *testing.T) {
	sys := adaServe(t)
	backend := serve.SingleSystem(sys)
	ctrl, err := New(backend, Config{
		Interval: 0.05, Window: 1.0,
		QueueDegrade: 2, QueueReject: 6,
	})
	if err != nil {
		t.Fatal(err)
	}

	var reqs []*request.Request
	for i := 0; i < 24; i++ {
		r := request.New(i, request.Category(i%request.NumCategories), 0.05, 0, 64, 24, uint64(i)*977+5)
		r.TTFTSLO = 10.0
		reqs = append(reqs, r)
	}
	// A late arrival with an absurd TTFT deadline: by its arrival the gate
	// has calibrated a prefill rate, so the optimistic bound condemns it.
	doomed := request.New(24, request.Chat, 0.05, 3.0, 2048, 24, 99)
	doomed.TTFTSLO = 1e-4
	reqs = append(reqs, doomed)

	src, err := serve.NewTraceSource(reqs)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(backend, serve.Options{Adaptive: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	var degradeEvents, rejectEvents int
	var unmeetable bool
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) {
		switch e := ev.(type) {
		case serve.RequestDegraded:
			degradeEvents++
		case serve.RequestRejected:
			rejectEvents++
			if strings.Contains(e.Reason, "ttft unmeetable") {
				unmeetable = true
				if e.Req.ID != doomed.ID {
					t.Errorf("unmeetable reject hit request %d, want %d", e.Req.ID, doomed.ID)
				}
			}
		}
	}))
	if _, err := srv.Run(src); err != nil {
		t.Fatal(err)
	}

	sum := ctrl.Summary()
	if sum.Offered != len(reqs) {
		t.Fatalf("offered %d, want %d", sum.Offered, len(reqs))
	}
	if sum.Offered != sum.Admitted+sum.Degraded+sum.Rejected {
		t.Fatalf("summary does not partition the offered load: %+v", sum)
	}
	if sum.Degraded == 0 || sum.Rejected == 0 {
		t.Fatalf("burst tripped neither gate action: %+v", sum)
	}
	if sum.Degraded != degradeEvents || sum.Rejected != rejectEvents {
		t.Fatalf("events (%d degraded, %d rejected) disagree with summary %+v",
			degradeEvents, rejectEvents, sum)
	}
	if !unmeetable {
		t.Error("calibrated gate never rejected the provably unmeetable deadline")
	}
	var perClass int
	for _, cls := range sum.PerClass {
		perClass += cls.Offered
	}
	if perClass != sum.Offered {
		t.Fatalf("per-class split %d does not cover %d offered", perClass, sum.Offered)
	}
	cfg := ctrl.Config()
	d, w := ctrl.Envelope()
	if d < cfg.DepthMin || d > cfg.DepthMax || w < cfg.WidthMin || w > cfg.WidthMax {
		t.Fatalf("actuated envelope (%d,%d) escaped bounds [%d,%d]x[%d,%d]",
			d, w, cfg.DepthMin, cfg.DepthMax, cfg.WidthMin, cfg.WidthMax)
	}
	sd, sw := sys.SpecEnvelope()
	if sd != d || sw != w {
		t.Fatalf("system envelope (%d,%d) disagrees with controller (%d,%d)", sd, sw, d, w)
	}
}

// TestControllerTuningShrinksOnLowAcceptance feeds the controller synthetic
// finish events directly: a class finishing with near-zero acceptance must
// pull the actuated envelope below the constructed ceilings, and recovered
// acceptance must widen it again — never beyond the bounds.
func TestControllerTuningShrinksOnLowAcceptance(t *testing.T) {
	sys := adaServe(t)
	ctrl, err := New(serve.SingleSystem(sys), Config{Interval: 1.0, Window: 4.0, DisableAdmission: true})
	if err != nil {
		t.Fatal(err)
	}
	d0, w0 := ctrl.Envelope()

	finish := func(id int, at float64, steps, accepted int) {
		r := request.New(id, request.Chat, 0.05, at-1, 64, 8, uint64(id))
		r.DoneTime = at
		r.VerifySteps = steps
		r.AcceptedTokens = accepted
		ctrl.OnEvent(serve.RequestFinished{
			EventMeta: serve.EventMeta{Time: at},
			Req:       r, Attained: true, TTFTAttained: true,
		})
	}
	for i := 0; i < 10; i++ {
		finish(i, 0.5, 10, 11) // acceptance ~1.1: barely worth drafting deep
	}
	ctrl.Tick(1.0)
	d1, w1 := ctrl.Envelope()
	if d1 >= d0 {
		t.Fatalf("low acceptance did not shrink depth: %d -> %d", d0, d1)
	}
	if w1 > w0 {
		t.Fatalf("low acceptance widened the envelope: %d -> %d", w0, w1)
	}
	if sd, sw := sys.SpecEnvelope(); sd != d1 || sw != w1 {
		t.Fatalf("system not actuated: (%d,%d) vs (%d,%d)", sd, sw, d1, w1)
	}

	// Recovery: the old window ages out, high acceptance takes over.
	for i := 100; i < 110; i++ {
		finish(i, 6.0, 10, 60) // acceptance 6.0
	}
	ctrl.Tick(7.0)
	d2, w2 := ctrl.Envelope()
	if d2 <= d1 || w2 < w1 {
		t.Fatalf("recovered acceptance did not widen the envelope: (%d,%d) -> (%d,%d)", d1, w1, d2, w2)
	}
	if d2 > d0 || w2 > w0 {
		t.Fatalf("envelope (%d,%d) escaped the constructed ceilings (%d,%d)", d2, w2, d0, w0)
	}
}
