// Package adaptive closes the serving control loop the paper's Eq. 8–9
// leaves open: AdaServe sizes speculation per iteration against STATIC
// SLOs, but acceptance rates drift with workload and no speculation policy
// survives genuine overload. The package provides a runtime
// serve.AdmissionController with two coupled halves:
//
//   - Speculation tuning: per SLO class, rolling acceptance rate and
//     windowed TPOT attainment map to a (depth, width) envelope; the
//     controller clamps every tunable system's Eq. 8–9 ceilings to the
//     tightest envelope any active class justifies
//     (sched.AdaServe.ClampSpecEnvelope). Drafting deeper than the measured
//     acceptance supports wastes draft time and verification budget.
//
//   - Overload admission: every arrival is decided against fleet saturation
//     signals (queued requests per active replica, windowed arrival rate vs
//     calibrated service rate) before it is routed. Saturated fleets admit
//     at reduced service — request degraded to the best-effort class with
//     speculation disabled — and past the reject threshold turn arrivals
//     away, recorded as RequestDegraded/RequestRejected events with
//     metrics.AdmissionSummary rollups. Requests whose TTFT deadline is
//     already provably unmeetable are rejected outright: their SLO is lost
//     either way, and shedding them protects everyone behind them.
//
// The admission gate also covers the autoscaler's cold-start gap: queue
// pressure is normalized by ACTIVE replicas, so while a scaled-up replica
// provisions (committed > active) the gate tightens exactly when capacity
// is promised but not yet serving, and relaxes by itself the moment the
// replica warms.
//
// The decision laws are pure functions of explicit signal structs
// (Config.Envelope, Config.Decide), which is what the property and fuzz
// tests pin: monotonicity (lower acceptance never raises a cap, more
// saturation never loosens admission), bounded actuation, and
// never-reject-below-saturation / never-admit-provably-unmeetable.
package adaptive

import (
	"fmt"
	"math"

	"adaserve/internal/mathutil"
	"adaserve/internal/request"
	"adaserve/internal/serve"
)

// Defaults for Config.
const (
	// DefaultInterval is the retune cadence in simulated seconds.
	DefaultInterval = 1.0
	// DefaultDepthTail is the end-to-end chain acceptance probability below
	// which deeper drafting stops paying.
	DefaultDepthTail = 0.2
	// DefaultQueueDegrade/DefaultQueueReject are the saturation thresholds
	// in queued (waiting, unstarted) requests per active replica.
	DefaultQueueDegrade = 3.0
	DefaultQueueReject  = 10.0
	// DefaultBestEffortTPOT is the TPOT SLO degraded requests relax to: the
	// batch-tolerant summarization class's 150 ms/token.
	DefaultBestEffortTPOT = 0.150
	// DefaultAttainLow is the windowed TPOT attainment below which a class's
	// width cap loses a lane (budget goes to guaranteed tokens instead of
	// wide trees).
	DefaultAttainLow = 0.9
)

// Config tunes the closed-loop controller. The zero value resolves to the
// defaults above; envelope bounds default to the controlled system's
// constructed ceilings.
type Config struct {
	// Interval is the retune cadence in simulated seconds
	// (0: DefaultInterval). Decisions land on the interval grid, evaluated
	// at the first iteration boundary past each grid instant.
	Interval float64
	// Window is the trailing-window width for rolling signals
	// (0: serve.DefaultSnapshotWindow).
	Window float64

	// DepthMin/DepthMax bound the depth ceiling the tuner may set;
	// WidthMin/WidthMax bound the width ceiling (0: resolved from the first
	// tunable system's constructed envelope, with DepthMin/WidthMin 1).
	DepthMin, DepthMax int
	WidthMin, WidthMax int
	// DepthTail is the per-chain end-to-end acceptance probability below
	// which deeper drafting stops paying (0: DefaultDepthTail).
	DepthTail float64
	// AttainLow is the windowed attainment floor under which the width cap
	// shrinks by one lane (0: DefaultAttainLow).
	AttainLow float64

	// QueueDegrade and QueueReject are the saturation thresholds in queued
	// requests per active replica: at QueueDegrade the gate degrades
	// degradable arrivals (when offered load also exceeds calibrated
	// capacity), at QueueReject it rejects
	// (0: DefaultQueueDegrade / DefaultQueueReject).
	QueueDegrade, QueueReject float64
	// BestEffortTPOT is the TPOT SLO degraded requests relax to
	// (0: DefaultBestEffortTPOT).
	BestEffortTPOT float64

	// DisableTuning turns off the speculation half of the loop;
	// DisableAdmission turns off the gate (every arrival admitted as
	// submitted). At most one may be set.
	DisableTuning    bool
	DisableAdmission bool
}

// fill resolves zero values to the defaults. Envelope bounds are resolved
// separately by New against the controlled systems.
func (c *Config) fill() {
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.Window == 0 {
		c.Window = serve.DefaultSnapshotWindow
	}
	if c.DepthTail == 0 {
		c.DepthTail = DefaultDepthTail
	}
	if c.AttainLow == 0 {
		c.AttainLow = DefaultAttainLow
	}
	if c.QueueDegrade == 0 {
		c.QueueDegrade = DefaultQueueDegrade
	}
	if c.QueueReject == 0 {
		c.QueueReject = DefaultQueueReject
	}
	if c.BestEffortTPOT == 0 {
		c.BestEffortTPOT = DefaultBestEffortTPOT
	}
	if c.DepthMin == 0 {
		c.DepthMin = 1
	}
	if c.WidthMin == 0 {
		c.WidthMin = 1
	}
}

// validate checks a filled config.
func (c Config) validate() error {
	if c.Interval < 0 || c.Window < 0 {
		return fmt.Errorf("adaptive: negative interval or window")
	}
	if c.DepthTail <= 0 || c.DepthTail >= 1 {
		return fmt.Errorf("adaptive: depth tail %g outside (0,1)", c.DepthTail)
	}
	if c.QueueDegrade <= 0 || c.QueueReject < c.QueueDegrade {
		return fmt.Errorf("adaptive: saturation thresholds degrade=%g reject=%g (want 0 < degrade <= reject)",
			c.QueueDegrade, c.QueueReject)
	}
	if c.DepthMin < 1 || c.DepthMax < c.DepthMin || c.WidthMin < 1 || c.WidthMax < c.WidthMin {
		return fmt.Errorf("adaptive: envelope bounds depth [%d,%d] width [%d,%d]",
			c.DepthMin, c.DepthMax, c.WidthMin, c.WidthMax)
	}
	if c.DisableTuning && c.DisableAdmission {
		return fmt.Errorf("adaptive: both tuning and admission disabled; drop the controller instead")
	}
	return nil
}

// ClassSignals are one SLO class's windowed measurements, the input to the
// envelope law.
type ClassSignals struct {
	// Finished is the class's windowed finish count; zero means the class
	// is uncalibrated and keeps the full envelope.
	Finished int
	// Acceptance is the class's mean accepted tokens per verification step
	// over the window.
	Acceptance float64
	// Attainment is the class's windowed TPOT attainment fraction.
	Attainment float64
}

// Envelope maps one class's rolling signals to its speculation ceilings —
// the pure law behind the tuner, exercised directly by the property tests.
//
// Depth follows a geometric-chain view of acceptance: mean accepted tokens
// per step m implies a per-position acceptance probability p = m/(1+m)
// (the mean of a truncated geometric), and the deepest chain worth
// drafting keeps its end-to-end acceptance p^d above DepthTail. Width
// grants one lane per accepted token per step, minus one while the class
// misses its windowed attainment floor (budget is better spent on
// guaranteed tokens than wide trees).
//
// The law is monotone — lower acceptance never raises either cap — and
// bounded: results always lie in [DepthMin,DepthMax] x [WidthMin,WidthMax].
func (c Config) Envelope(sig ClassSignals) (dmax, wmax int) {
	if sig.Finished <= 0 {
		return c.DepthMax, c.WidthMax
	}
	m := sig.Acceptance
	if m < 0 {
		m = 0
	}
	p := m / (1 + m)
	d := c.DepthMin
	if p > 0 {
		switch est := math.Log(c.DepthTail) / math.Log(p); {
		case est >= float64(c.DepthMax):
			d = c.DepthMax
		case est > float64(c.DepthMin):
			d = int(est)
		}
	}
	w := 1 + int(m)
	if sig.Attainment < c.AttainLow {
		w--
	}
	return d, mathutil.ClipInt(w, c.WidthMin, c.WidthMax)
}

// Signals is the fleet-level saturation view one admission decision is
// made against.
type Signals struct {
	// Queued counts waiting (not yet scheduled) requests across serving
	// instances.
	Queued int
	// Active counts replicas serving traffic now; Committed counts replicas
	// consuming capacity (committed − active is the autoscaler's in-flight
	// cold-start gap — provisioning replicas are paid for but not serving,
	// so pressure is normalized by Active and the gate tightens exactly
	// through the gap).
	Active, Committed int
	// ArrivalRate is the offered load over the trailing window in req/s;
	// ServiceRate is the calibrated sustainable per-replica finish rate
	// (0 until calibrated).
	ArrivalRate, ServiceRate float64
	// PrefillBacklog is the queued prompt tokens across serving instances;
	// PrefillRate is the calibrated per-replica prompt-processing rate in
	// tokens/s (0 until calibrated). Together they lower-bound any new
	// arrival's achievable TTFT.
	PrefillBacklog int
	PrefillRate    float64
}

// QueuePressure returns queued requests per active replica: the primary
// saturation signal.
func (s Signals) QueuePressure() float64 {
	active := s.Active
	if active < 1 {
		active = 1
	}
	return float64(s.Queued) / float64(active)
}

// Overloaded reports whether windowed offered load exceeds the calibrated
// fleet capacity. An uncalibrated gate (ServiceRate 0) trusts queue
// pressure alone and reports true.
func (s Signals) Overloaded() bool {
	if s.ServiceRate <= 0 || s.Active <= 0 {
		return true
	}
	return s.ArrivalRate > s.ServiceRate*float64(s.Active)
}

// UnmeetableTTFT returns a conservative lower bound on the request's
// achievable TTFT and whether that bound already exceeds its TTFT SLO. The
// bound assumes the most optimistic schedule the fleet could possibly run:
// the entire active fleet prefilling at its calibrated peak rate, the
// queued prompt backlog ahead of the request, then the request's own
// prompt, with a free first decode step. A request this bound condemns
// cannot meet its deadline under ANY real schedule, so rejecting it sheds
// load without costing a single attainable SLO. Uncalibrated gates
// (PrefillRate 0) and requests without a TTFT SLO are never condemned.
func (c Config) UnmeetableTTFT(sig Signals, r *request.Request) (float64, bool) {
	if r.TTFTSLO <= 0 || sig.PrefillRate <= 0 || sig.Active <= 0 {
		return 0, false
	}
	fleetRate := sig.PrefillRate * float64(sig.Active)
	bound := (float64(sig.PrefillBacklog) + float64(r.PromptLen)) / fleetRate
	return bound, bound > r.TTFTSLO
}

// Decide classifies one arrival against the saturation signals: the pure
// law behind Controller.Decide, exercised directly by the property and
// fuzz tests. It is monotone in saturation — raising Queued (or shrinking
// the active fleet, or raising the arrival rate) never loosens the
// outcome — and it rejects below the QueueReject saturation threshold only
// when the request's TTFT deadline is provably unmeetable.
func (c Config) Decide(sig Signals, r *request.Request) (serve.AdmissionDecision, string) {
	if bound, doomed := c.UnmeetableTTFT(sig, r); doomed {
		return serve.AdmissionReject,
			fmt.Sprintf("ttft unmeetable: lower bound %.2fs > slo %.2fs (backlog %d tok / %d active)",
				bound, r.TTFTSLO, sig.PrefillBacklog, sig.Active)
	}
	qp := sig.QueuePressure()
	switch {
	case qp >= c.QueueReject:
		return serve.AdmissionReject,
			fmt.Sprintf("saturated: %.1f queued/active replica >= %.1f", qp, c.QueueReject)
	case qp >= c.QueueDegrade && sig.Overloaded() && !r.Degraded:
		return serve.AdmissionDegrade,
			fmt.Sprintf("overloaded: %.1f queued/active replica >= %.1f, %.2f req/s offered",
				qp, c.QueueDegrade, sig.ArrivalRate)
	default:
		return serve.AdmissionAdmit, ""
	}
}
