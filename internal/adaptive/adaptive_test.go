package adaptive

import (
	"strings"
	"testing"

	"adaserve/internal/request"
	"adaserve/internal/serve"
)

// testConfig returns a filled, validated config with explicit envelope
// bounds (New normally resolves them from the controlled system).
func testConfig(t *testing.T) Config {
	t.Helper()
	cfg := Config{DepthMax: 8, WidthMax: 4}
	cfg.fill()
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// strictness ranks decisions for the monotonicity properties: admit <
// degrade < reject.
func strictness(d serve.AdmissionDecision) int {
	switch d {
	case serve.AdmissionAdmit:
		return 0
	case serve.AdmissionDegrade:
		return 1
	case serve.AdmissionReject:
		return 2
	}
	return -1
}

// chatReq builds a fresh admission candidate.
func chatReq() *request.Request {
	r := request.New(1, request.Chat, 0.05, 0, 512, 128, 1)
	r.TTFTSLO = 4.0
	return r
}

// TestEnvelopeMonotoneAndBounded is the tuner's core property: sweeping the
// rolling acceptance upward never lowers either cap, sweeping it downward
// never raises one, and every output lies inside the configured bounds —
// for attaining and for struggling classes alike.
func TestEnvelopeMonotoneAndBounded(t *testing.T) {
	cfg := testConfig(t)
	for _, attain := range []float64{0, 0.5, 0.89, 0.9, 1.0} {
		prevD, prevW := 0, 0
		for m := 0.0; m <= 8.0; m += 0.05 {
			d, w := cfg.Envelope(ClassSignals{Finished: 10, Acceptance: m, Attainment: attain})
			if d < cfg.DepthMin || d > cfg.DepthMax || w < cfg.WidthMin || w > cfg.WidthMax {
				t.Fatalf("envelope (%d,%d) at m=%.2f attain=%.2f escapes bounds [%d,%d]x[%d,%d]",
					d, w, m, attain, cfg.DepthMin, cfg.DepthMax, cfg.WidthMin, cfg.WidthMax)
			}
			if d < prevD || w < prevW {
				t.Fatalf("envelope shrank as acceptance rose: (%d,%d) -> (%d,%d) at m=%.2f attain=%.2f",
					prevD, prevW, d, w, m, attain)
			}
			prevD, prevW = d, w
		}
	}
}

// TestEnvelopeAttainmentPenalty: missing the windowed attainment floor costs
// exactly one width lane and never touches depth.
func TestEnvelopeAttainmentPenalty(t *testing.T) {
	cfg := testConfig(t)
	for m := 0.0; m <= 8.0; m += 0.25 {
		dHi, wHi := cfg.Envelope(ClassSignals{Finished: 10, Acceptance: m, Attainment: 1.0})
		dLo, wLo := cfg.Envelope(ClassSignals{Finished: 10, Acceptance: m, Attainment: 0.0})
		if dLo != dHi {
			t.Fatalf("attainment moved depth at m=%.2f: %d vs %d", m, dLo, dHi)
		}
		if wLo > wHi || wHi-wLo > 1 {
			t.Fatalf("low attainment must cost at most one lane at m=%.2f: %d vs %d", m, wLo, wHi)
		}
	}
}

// TestEnvelopeUncalibrated: a class with no windowed finishes keeps the full
// constructed envelope — the tuner only ever acts on evidence.
func TestEnvelopeUncalibrated(t *testing.T) {
	cfg := testConfig(t)
	d, w := cfg.Envelope(ClassSignals{})
	if d != cfg.DepthMax || w != cfg.WidthMax {
		t.Fatalf("uncalibrated class got (%d,%d), want the full (%d,%d)", d, w, cfg.DepthMax, cfg.WidthMax)
	}
}

// TestDecideMonotoneInQueue: raising queue depth with everything else fixed
// never loosens the outcome.
func TestDecideMonotoneInQueue(t *testing.T) {
	cfg := testConfig(t)
	for _, serviceRate := range []float64{0, 2.0} {
		prev := 0
		for q := 0; q <= 60; q++ {
			sig := Signals{Queued: q, Active: 2, Committed: 2, ArrivalRate: 10, ServiceRate: serviceRate}
			dec, reason := cfg.Decide(sig, chatReq())
			if s := strictness(dec); s < prev {
				t.Fatalf("queue %d loosened the decision to %v (serviceRate=%g)", q, dec, serviceRate)
			} else {
				prev = s
			}
			if dec != serve.AdmissionAdmit && reason == "" {
				t.Fatalf("non-admit decision %v carries no reason", dec)
			}
		}
	}
}

// TestDecideMonotoneInFleet: shrinking the active fleet (the autoscaler's
// cold-start gap) never loosens the outcome for a fixed backlog.
func TestDecideMonotoneInFleet(t *testing.T) {
	cfg := testConfig(t)
	prev := -1
	for active := 8; active >= 1; active-- {
		sig := Signals{Queued: 12, Active: active, Committed: 8, ArrivalRate: 10, ServiceRate: 2,
			PrefillBacklog: 4096, PrefillRate: 2000}
		dec, _ := cfg.Decide(sig, chatReq())
		if s := strictness(dec); s < prev {
			t.Fatalf("shrinking fleet to %d active loosened the decision to %v", active, dec)
		} else {
			prev = s
		}
	}
}

// TestDecideNeverRejectsBelowSaturation pins the gate's contract with
// healthy fleets: under the reject threshold, with a meetable (or absent)
// TTFT deadline, an arrival is never turned away.
func TestDecideNeverRejectsBelowSaturation(t *testing.T) {
	cfg := testConfig(t)
	for q := 0; float64(q)/2 < cfg.QueueReject; q++ {
		for _, rate := range []float64{0, 5, 500} {
			sig := Signals{Queued: q, Active: 2, Committed: 2, ArrivalRate: rate, ServiceRate: 1}
			dec, _ := cfg.Decide(sig, chatReq())
			if dec == serve.AdmissionReject {
				t.Fatalf("rejected at pressure %.1f < %.1f with no unmeetable deadline (rate %g)",
					sig.QueuePressure(), cfg.QueueReject, rate)
			}
		}
	}
}

// TestDecideRejectsUnmeetable: a calibrated gate turns away a request whose
// TTFT deadline is provably lost, even on an otherwise quiet fleet; waiving
// the deadline or losing calibration withdraws the proof.
func TestDecideRejectsUnmeetable(t *testing.T) {
	cfg := testConfig(t)
	sig := Signals{Queued: 0, Active: 1, Committed: 1, ServiceRate: 2,
		PrefillBacklog: 100_000, PrefillRate: 10_000}
	r := chatReq() // TTFT SLO 4s; bound is (100000+512)/10000 > 10s
	dec, reason := cfg.Decide(sig, r)
	if dec != serve.AdmissionReject || !strings.Contains(reason, "ttft unmeetable") {
		t.Fatalf("provably unmeetable request got %v (%q)", dec, reason)
	}
	r2 := chatReq()
	r2.TTFTSLO = 0
	if dec, _ := cfg.Decide(sig, r2); dec != serve.AdmissionAdmit {
		t.Fatalf("request without a TTFT SLO got %v on a quiet fleet", dec)
	}
	sig.PrefillRate = 0
	if dec, _ := cfg.Decide(sig, chatReq()); dec != serve.AdmissionAdmit {
		t.Fatalf("uncalibrated gate condemned a request: %v", dec)
	}
}

// TestDecideDegradedPassThrough: an already-degraded request is never
// degraded again — in the degrade band it is simply admitted.
func TestDecideDegradedPassThrough(t *testing.T) {
	cfg := testConfig(t)
	sig := Signals{Queued: 10, Active: 2, Committed: 2, ArrivalRate: 50, ServiceRate: 1}
	fresh := chatReq()
	if dec, _ := cfg.Decide(sig, fresh); dec != serve.AdmissionDegrade {
		t.Fatalf("degrade band did not degrade a fresh request: %v", dec)
	}
	degraded := chatReq()
	degraded.Degrade(cfg.BestEffortTPOT)
	if dec, _ := cfg.Decide(sig, degraded); dec != serve.AdmissionAdmit {
		t.Fatalf("already-degraded request got %v in the degrade band", dec)
	}
}

// TestDegradeActuation: Degrade reclasses to the best-effort category,
// relaxes TPOT, waives TTFT, disables speculation — and is idempotent.
func TestDegradeActuation(t *testing.T) {
	r := request.New(7, request.Coding, 0.016, 0, 256, 64, 1)
	r.TTFTSLO = 2.0
	r.Degrade(0.150)
	if !r.Degraded || !r.NoSpec || r.Category != request.Summarization || r.DegradedFrom != request.Coding {
		t.Fatalf("degrade state wrong: %+v", r)
	}
	if r.TPOTSLO != 0.150 || r.TTFTSLO != 0 {
		t.Fatalf("degrade did not relax SLOs: tpot %g ttft %g", r.TPOTSLO, r.TTFTSLO)
	}
	r.Degrade(99)
	if r.DegradedFrom != request.Coding || r.TPOTSLO != 0.150 {
		t.Fatal("second degrade must be a no-op")
	}
}

// TestConfigValidate covers the rejected configurations.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"both disabled", func(c *Config) { c.DisableTuning = true; c.DisableAdmission = true }, "both"},
		{"depth tail", func(c *Config) { c.DepthTail = 1.5 }, "depth tail"},
		{"inverted thresholds", func(c *Config) { c.QueueDegrade = 8; c.QueueReject = 2 }, "thresholds"},
		{"inverted envelope", func(c *Config) { c.DepthMin = 6; c.DepthMax = 2 }, "envelope bounds"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{DepthMax: 8, WidthMax: 4}
			c.mut(&cfg)
			cfg.fill()
			err := cfg.validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("validate = %v, want error containing %q", err, c.want)
			}
		})
	}
}
