package adaptive

import (
	"math"
	"testing"

	"adaserve/internal/request"
	"adaserve/internal/serve"
)

// FuzzAdmission throws arbitrary saturation states and arrivals at the pure
// admission law and checks the contracts the property tests pin pointwise:
//
//   - the decision is always one of admit/degrade/reject, with a reason
//     exactly when it is not admit;
//   - below the reject saturation threshold, a request is rejected only if
//     its TTFT deadline is provably unmeetable;
//   - a provably unmeetable deadline is always rejected — the gate never
//     admits a request whose SLO is already lost;
//   - one more queued request never loosens the decision;
//   - the envelope law stays inside its bounds for the same class mix.
func FuzzAdmission(f *testing.F) {
	f.Add(0, 2, 2, 0, 512, 4.0, 2.0, 0.0, 4.0, 1.0, uint8(1), false)
	f.Add(24, 2, 2, 8192, 512, 40.0, 2.0, 2000.0, 4.0, 0.5, uint8(0), false)
	f.Add(7, 1, 4, 100000, 2048, 12.0, 1.5, 10000.0, 0.25, 0.9, uint8(2), false)
	f.Add(10, 2, 2, 0, 128, 50.0, 1.0, 0.0, 0.0, 0.0, uint8(1), true)
	f.Add(200, 1, 1, 65536, 4096, 500.0, 0.0, 0.0, 4.0, 1.0, uint8(0), false)
	f.Fuzz(func(t *testing.T, queued, active, committed, backlog, promptLen int,
		arrivalRate, serviceRate, prefillRate, ttftSLO, attain float64,
		classIdx uint8, degraded bool) {
		for _, v := range []float64{arrivalRate, serviceRate, prefillRate, ttftSLO, attain} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1e12 {
				t.Skip("out of the signal domain")
			}
		}
		if queued < 0 || queued > 1e6 || active < 0 || active > 1e4 || committed < active ||
			committed > 1e4 || backlog < 0 || backlog > 1e9 || promptLen < 1 || promptLen > 1e6 {
			t.Skip("out of the signal domain")
		}

		cfg := Config{DepthMax: 8, WidthMax: 4}
		cfg.fill()
		if err := cfg.validate(); err != nil {
			t.Fatal(err)
		}
		cat := request.Category(int(classIdx) % request.NumCategories)
		r := request.New(1, cat, 0.05, 0, promptLen, 64, 1)
		r.TTFTSLO = ttftSLO
		if degraded {
			r.Degrade(cfg.BestEffortTPOT)
		}
		sig := Signals{Queued: queued, Active: active, Committed: committed,
			ArrivalRate: arrivalRate, ServiceRate: serviceRate,
			PrefillBacklog: backlog, PrefillRate: prefillRate}

		dec, reason := cfg.Decide(sig, r)
		if s := strictness(dec); s < 0 {
			t.Fatalf("decision %v outside the enum", dec)
		} else if (reason == "") != (dec == serve.AdmissionAdmit) {
			t.Fatalf("decision %v with reason %q", dec, reason)
		}
		_, doomed := cfg.UnmeetableTTFT(sig, r)
		if doomed && dec != serve.AdmissionReject {
			t.Fatalf("admitted a provably unmeetable deadline: %v (%+v)", dec, sig)
		}
		if !doomed && sig.QueuePressure() < cfg.QueueReject && dec == serve.AdmissionReject {
			t.Fatalf("rejected below saturation with a meetable deadline: %q (%+v)", reason, sig)
		}

		busier := sig
		busier.Queued++
		decBusier, _ := cfg.Decide(busier, r)
		if strictness(decBusier) < strictness(dec) {
			t.Fatalf("one more queued request loosened %v to %v (%+v)", dec, decBusier, sig)
		}

		d, w := cfg.Envelope(ClassSignals{Finished: queued, Acceptance: arrivalRate, Attainment: attain})
		if d < cfg.DepthMin || d > cfg.DepthMax || w < cfg.WidthMin || w > cfg.WidthMax {
			t.Fatalf("envelope (%d,%d) escapes bounds", d, w)
		}
	})
}
