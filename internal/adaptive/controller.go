package adaptive

import (
	"fmt"

	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/serve"
)

// SpecTunable is a serving system whose speculation envelope the controller
// can actuate at runtime. sched.AdaServe implements it.
type SpecTunable interface {
	// SpecEnvelope returns the current depth and width ceilings.
	SpecEnvelope() (dmax, wmax int)
	// ClampSpecEnvelope retunes the ceilings, clipped to the system's
	// constructed bounds.
	ClampSpecEnvelope(dmax, wmax int)
}

// Fleet is the optional replica-lifecycle view an elastic backend exposes
// (*cluster.Cluster implements it): how many replicas serve traffic now
// versus how many consume capacity. Backends without it (single systems,
// static clusters) count every instance as active.
type Fleet interface {
	ActiveServing() int
	CommittedFleet() int
}

// classRec is one finished request's contribution to the per-class
// windows, kept until it ages out.
type classRec struct {
	time     float64
	cat      request.Category
	steps    int
	accepted int
	attained bool
}

// classWin accumulates one class's windowed signals.
type classWin struct {
	finished int
	attained int
	steps    int
	accepted int
}

// signals materializes the class's windowed view.
func (w classWin) signals() ClassSignals {
	sig := ClassSignals{Finished: w.finished}
	if w.steps > 0 {
		sig.Acceptance = float64(w.accepted) / float64(w.steps)
	}
	if w.finished > 0 {
		sig.Attainment = float64(w.attained) / float64(w.finished)
	}
	return sig
}

// Controller implements serve.AdmissionController: wire it into a run via
// serve.Options.Adaptive. It observes the event stream through per-class
// rolling windows, retunes every tunable system's speculation envelope at
// each interval-grid instant, and gates every arrival against the fleet's
// saturation signals. All decisions happen at deterministic instants in
// event-time order, so runs are reproducible under a fixed seed.
//
// Like the backends it controls, a Controller is single-use.
type Controller struct {
	cfg   Config
	insts []*serve.Instance
	tuned []SpecTunable
	fleet Fleet

	next float64

	// Per-class finish windows (recs sorted by finish time; wins maintained
	// on insert and evict).
	recs []classRec
	wins [request.NumCategories]classWin

	// Offered-load window: every gated arrival's timestamp, head-indexed.
	arrivals []float64
	head     int

	// Capacity calibration: finishes and prompt tokens are counted between
	// ticks; the peak observed per-replica rate estimates sustainable
	// capacity (underestimating capacity only over-gates, so the peak is
	// the safe side for the unmeetable-TTFT proof: a HIGHER assumed rate
	// condemns FEWER requests).
	finishedSinceTick int
	promptSinceTick   int
	lastTick          float64
	serviceRate       float64
	prefillRate       float64

	// Current actuated envelope (the constructed ceilings until the first
	// calibrated retune).
	curD, curW int

	sum metrics.AdmissionSummary
}

// New builds a controller over a backend's instances. Unless tuning is
// disabled, at least one instance's system must be SpecTunable (AdaServe);
// envelope bounds left zero resolve to the first tunable system's
// constructed ceilings. If the backend is a Fleet (elastic cluster), the
// gate normalizes saturation by its live active-replica count.
func New(backend serve.Backend, cfg Config) (*Controller, error) {
	if backend == nil {
		return nil, fmt.Errorf("adaptive: backend required")
	}
	insts := backend.Instances()
	if len(insts) == 0 {
		return nil, fmt.Errorf("adaptive: backend has no instances")
	}
	var tuned []SpecTunable
	for _, in := range insts {
		if t, ok := in.System().(SpecTunable); ok {
			tuned = append(tuned, t)
		}
	}
	if !cfg.DisableTuning && len(tuned) == 0 {
		return nil, fmt.Errorf("adaptive: no tunable system (speculation tuning needs AdaServe; set DisableTuning for admission-only control)")
	}
	if len(tuned) > 0 {
		d, w := tuned[0].SpecEnvelope()
		if cfg.DepthMax == 0 {
			cfg.DepthMax = d
		}
		if cfg.WidthMax == 0 {
			cfg.WidthMax = w
		}
	}
	// Admission-only controllers over non-tunable backends never actuate the
	// envelope; default the unresolved bounds so validation stays meaningful.
	if cfg.DepthMax == 0 {
		cfg.DepthMax = 8
	}
	if cfg.WidthMax == 0 {
		cfg.WidthMax = 4
	}
	cfg.fill()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	fleet, _ := backend.(Fleet)
	c := &Controller{
		cfg:   cfg,
		insts: insts,
		tuned: tuned,
		fleet: fleet,
		next:  cfg.Interval,
		curD:  cfg.DepthMax,
		curW:  cfg.WidthMax,
	}
	return c, nil
}

// Config returns the resolved configuration.
func (c *Controller) Config() Config { return c.cfg }

// Envelope returns the currently actuated speculation ceilings.
func (c *Controller) Envelope() (dmax, wmax int) { return c.curD, c.curW }

// Summary returns the admission rollup so far.
func (c *Controller) Summary() metrics.AdmissionSummary { return c.sum }

// OnEvent implements serve.Observer: request finishes feed the per-class
// windows and the capacity calibration.
func (c *Controller) OnEvent(ev serve.Event) {
	e, ok := ev.(serve.RequestFinished)
	if !ok {
		return
	}
	r := e.Req
	rec := classRec{
		time: r.DoneTime, cat: r.Category,
		steps: r.VerifySteps, accepted: r.AcceptedTokens,
		attained: e.Attained,
	}
	// Insert sorted by finish time (stable: equal times append after, so
	// eviction order is deterministic).
	at := len(c.recs)
	for at > 0 && c.recs[at-1].time > rec.time {
		at--
	}
	c.recs = append(c.recs, classRec{})
	copy(c.recs[at+1:], c.recs[at:])
	c.recs[at] = rec
	w := &c.wins[rec.cat]
	w.finished++
	w.steps += rec.steps
	w.accepted += rec.accepted
	if rec.attained {
		w.attained++
	}
	c.finishedSinceTick++
	c.promptSinceTick += r.PromptLen
}

// evict drops window entries older than now − Window.
func (c *Controller) evict(now float64) {
	cutoff := now - c.cfg.Window
	for len(c.recs) > 0 && c.recs[0].time < cutoff {
		rec := c.recs[0]
		c.recs = c.recs[1:]
		w := &c.wins[rec.cat]
		w.finished--
		w.steps -= rec.steps
		w.accepted -= rec.accepted
		if rec.attained {
			w.attained--
		}
	}
	for c.head < len(c.arrivals) && c.arrivals[c.head] < cutoff {
		c.head++
	}
	if c.head > len(c.arrivals)/2 {
		c.arrivals = append(c.arrivals[:0], c.arrivals[c.head:]...)
		c.head = 0
	}
}

// billed returns the capacity-consuming replica count (calibration
// denominator).
func (c *Controller) billed() int {
	if c.fleet != nil {
		return c.fleet.CommittedFleet()
	}
	return len(c.insts)
}

// Tick implements serve.AdmissionController: between grid instants it does
// nothing; at each grid instant it recalibrates capacity and retunes every
// tunable system's speculation envelope.
func (c *Controller) Tick(now float64) {
	if now < c.next {
		return
	}
	for c.next <= now {
		c.next += c.cfg.Interval
	}
	// Calibrate: peak observed per-replica rates since the last tick.
	if dt := now - c.lastTick; dt > 0 {
		if b := c.billed(); b > 0 {
			if rate := float64(c.finishedSinceTick) / dt / float64(b); rate > c.serviceRate {
				c.serviceRate = rate
			}
			if rate := float64(c.promptSinceTick) / dt / float64(b); rate > c.prefillRate {
				c.prefillRate = rate
			}
		}
	}
	c.finishedSinceTick = 0
	c.promptSinceTick = 0
	c.lastTick = now

	if c.cfg.DisableTuning {
		return
	}
	c.evict(now)
	// Each class with windowed traffic proposes an envelope; the fleet gets
	// the widest proposal (max is monotone in every class's signals, so the
	// per-class monotonicity law lifts to the actuated envelope). With no
	// calibrated class the constructed envelope stands.
	d, w, calibrated := c.cfg.DepthMin, c.cfg.WidthMin, false
	for cat := 0; cat < request.NumCategories; cat++ {
		win := c.wins[cat]
		if win.finished == 0 {
			continue
		}
		cd, cw := c.cfg.Envelope(win.signals())
		if cd > d {
			d = cd
		}
		if cw > w {
			w = cw
		}
		calibrated = true
	}
	if !calibrated {
		d, w = c.cfg.DepthMax, c.cfg.WidthMax
	}
	c.curD, c.curW = d, w
	for _, t := range c.tuned {
		t.ClampSpecEnvelope(d, w)
	}
}

// signals assembles the live saturation view for one admission decision.
func (c *Controller) signals(now float64) Signals {
	c.evict(now)
	queued, backlog := 0, 0
	for _, in := range c.insts {
		p := in.System().Pool()
		for _, r := range p.Waiting() {
			queued++
			backlog += r.RemainingPrefill()
		}
		for _, r := range p.Running() {
			backlog += r.RemainingPrefill()
		}
	}
	active, committed := len(c.insts), len(c.insts)
	if c.fleet != nil {
		active, committed = c.fleet.ActiveServing(), c.fleet.CommittedFleet()
	}
	span := c.cfg.Window
	if now < span {
		span = now
	}
	rate := 0.0
	if span > 0 {
		rate = float64(len(c.arrivals)-c.head) / span
	}
	return Signals{
		Queued: queued, Active: active, Committed: committed,
		ArrivalRate: rate, ServiceRate: c.serviceRate,
		PrefillBacklog: backlog, PrefillRate: c.prefillRate,
	}
}

// Decide implements serve.AdmissionController: it records the offered
// arrival, evaluates the pure admission law against live signals, and
// applies the outcome (degrading the request in place when admitted at
// reduced service).
func (c *Controller) Decide(r *request.Request) (serve.AdmissionDecision, string) {
	c.arrivals = append(c.arrivals, r.ArrivalTime)
	original := r.Category
	if c.cfg.DisableAdmission {
		c.sum.Add(original, true, false, false)
		return serve.AdmissionAdmit, ""
	}
	dec, reason := c.cfg.Decide(c.signals(r.ArrivalTime), r)
	switch dec {
	case serve.AdmissionReject:
		c.sum.Add(original, false, false, true)
	case serve.AdmissionDegrade:
		r.Degrade(c.cfg.BestEffortTPOT)
		c.sum.Add(original, false, true, false)
	default:
		c.sum.Add(original, true, false, false)
	}
	return dec, reason
}
