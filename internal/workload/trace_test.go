package workload

import (
	"math"
	"testing"

	"adaserve/internal/mathutil"
)

func TestPoissonTraceRate(t *testing.T) {
	rng := mathutil.NewRNG(1)
	ts := PoissonTrace(rng, 10, 1000)
	rate := float64(len(ts)) / 1000
	if math.Abs(rate-10) > 0.5 {
		t.Fatalf("empirical rate %.2f, want ~10", rate)
	}
	if err := ValidateSorted(ts); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonTraceEmptyEdge(t *testing.T) {
	rng := mathutil.NewRNG(1)
	if PoissonTrace(rng, 0, 10) != nil {
		t.Fatal("zero rate should produce nothing")
	}
	if PoissonTrace(rng, 5, 0) != nil {
		t.Fatal("zero duration should produce nothing")
	}
}

func TestNonHomogeneousPoissonFollowsRate(t *testing.T) {
	rng := mathutil.NewRNG(2)
	// Step function: rate 2 in the first half, 8 in the second.
	rate := func(tm float64) float64 {
		if tm < 500 {
			return 2
		}
		return 8
	}
	ts := NonHomogeneousPoisson(rng, rate, 8, 1000)
	var early, late int
	for _, x := range ts {
		if x < 500 {
			early++
		} else {
			late++
		}
	}
	ratio := float64(late) / float64(early)
	if ratio < 3.2 || ratio > 4.8 {
		t.Fatalf("late/early ratio %.2f, want ~4", ratio)
	}
}

func TestRealTraceShapeNormalized(t *testing.T) {
	shape := RealTraceShape()
	var sum float64
	const steps = 2400
	for i := 0; i < steps; i++ {
		v := shape(1200 * float64(i) / steps)
		if v < 0 {
			t.Fatal("negative rate")
		}
		sum += v
	}
	mean := sum / steps
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("shape mean %.3f, want 1", mean)
	}
}

func TestRealTraceShapeIsBursty(t *testing.T) {
	shape := RealTraceShape()
	var peak, trough float64 = 0, math.Inf(1)
	for i := 0; i < 2400; i++ {
		v := shape(1200 * float64(i) / 2400)
		if v > peak {
			peak = v
		}
		if v < trough {
			trough = v
		}
	}
	// Figure 7 swings between roughly 20 and 100+ requests per bin.
	if peak/trough < 3 {
		t.Fatalf("peak/trough %.1f, want >= 3 (bursty)", peak/trough)
	}
}

func TestRealTraceMeanRPS(t *testing.T) {
	for _, rps := range []float64{2.0, 4.0} {
		rng := mathutil.NewRNG(7)
		ts := RealTrace(rng, rps, 300)
		got := float64(len(ts)) / 300
		if math.Abs(got-rps) > rps*0.2 {
			t.Fatalf("target %.1f rps, got %.2f", rps, got)
		}
		if err := ValidateSorted(ts); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRealTraceCompressesShape(t *testing.T) {
	// The full 20-minute shape must play out within any duration: the
	// compressed trace stays bursty (interior peak well above the median
	// bin), rather than flattening or truncating to the shape's quiet head.
	rng := mathutil.NewRNG(9)
	ts := RealTrace(rng, 10, 120)
	bins := BinCounts(ts, 120, 10)
	peakBin := 0
	var counts []float64
	for i, c := range bins {
		if c > bins[peakBin] {
			peakBin = i
		}
		counts = append(counts, float64(c))
	}
	if peakBin == 0 || peakBin == len(bins)-1 {
		t.Fatalf("peak bin %d at the window edge", peakBin)
	}
	med := mathutil.Percentile(counts, 50)
	if float64(bins[peakBin]) < 1.8*med {
		t.Fatalf("peak bin %d count %d not bursty vs median %.0f", peakBin, bins[peakBin], med)
	}
}

func TestSyntheticCategoryTracePeaks(t *testing.T) {
	rng := mathutil.NewRNG(11)
	perCat := SyntheticCategoryTrace(rng, 4.0, 360)
	if len(perCat) != 3 {
		t.Fatalf("%d categories", len(perCat))
	}
	peakOf := func(ts []float64) float64 {
		bins := BinCounts(ts, 360, 30)
		best := 0
		for i, c := range bins {
			if c > bins[best] {
				best = i
			}
		}
		return (float64(best) + 0.5) * 30
	}
	chatPeak := peakOf(perCat[1])          // early
	codingPeak := peakOf(perCat[0])        // middle
	summarizationPeak := peakOf(perCat[2]) // late
	if !(chatPeak < codingPeak && codingPeak < summarizationPeak) {
		t.Fatalf("peaks chat=%.0f coding=%.0f summarization=%.0f not ordered",
			chatPeak, codingPeak, summarizationPeak)
	}
}

func TestBinCounts(t *testing.T) {
	bins := BinCounts([]float64{0.5, 1.5, 1.9, 5}, 6, 2)
	if len(bins) != 3 {
		t.Fatalf("bins %v", bins)
	}
	if bins[0] != 3 || bins[1] != 0 || bins[2] != 1 {
		t.Fatalf("bins %v", bins)
	}
	if BinCounts(nil, 0, 1) != nil {
		t.Fatal("degenerate inputs should return nil")
	}
}

func TestBinCountsBoundary(t *testing.T) {
	// An arrival exactly at the duration boundary clamps into the final
	// bin; arrivals outside [0, duration] drop.
	bins := BinCounts([]float64{-0.1, 0, 6, 6.1}, 6, 2)
	if bins[0] != 1 || bins[1] != 0 || bins[2] != 1 {
		t.Fatalf("bins %v, want [1 0 1]", bins)
	}
	// A ragged final bin (duration not a multiple of binWidth) still
	// catches its boundary arrival.
	bins = BinCounts([]float64{5}, 5, 2)
	if len(bins) != 3 || bins[2] != 1 {
		t.Fatalf("ragged bins %v", bins)
	}
}

func TestMergeSorted(t *testing.T) {
	out := MergeSorted([]float64{1, 3}, []float64{2}, nil)
	want := []float64{1, 2, 3}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("merged %v", out)
		}
	}
}

func TestValidateSorted(t *testing.T) {
	if ValidateSorted([]float64{1, 2, 2, 3}) != nil {
		t.Fatal("sorted slice rejected")
	}
	if ValidateSorted([]float64{2, 1}) == nil {
		t.Fatal("unsorted slice accepted")
	}
}
