package workload

import (
	"fmt"

	"adaserve/internal/mathutil"
	"adaserve/internal/request"
)

// SessionsConfig parameterizes multi-turn session synthesis.
type SessionsConfig struct {
	// Seed drives all sampling and prompt-content seeds.
	Seed uint64
	// Tenants is the number of concurrent tenants. Each tenant owns one
	// shared system prompt: every turn of every one of its sessions starts
	// with the same SystemPromptLen tokens, the prefix a shared-prefix KV
	// cache can serve without prefill.
	Tenants int
	// SystemPromptLen is the per-tenant system prompt length in tokens.
	SystemPromptLen int
	// Turns is the conversation length per tenant: one initial turn plus
	// Turns-1 follow-ups, each extending the prompt with the full prior
	// conversation (turn k re-sends everything turn k-1 saw plus its reply).
	Turns int
	// Category is the request category every turn carries (the chat
	// category in the default specs).
	Category request.Category
	// Categories defaults to DefaultCategories; the Category entry supplies
	// the SLOs and the per-turn user/assistant length distributions.
	Categories []CategorySpec
	// BaselineLatency resolves factor-based SLOs, as in GeneratorConfig.
	BaselineLatency float64
	// ArrivalSpacing staggers the tenants' initial turns (tenant i arrives
	// at i × ArrivalSpacing seconds).
	ArrivalSpacing float64
	// ThinkTime is the gap between a turn finishing and the tenant's
	// follow-up arriving.
	ThinkTime float64
	// MaxContext bounds prompt+output per request; a session whose next turn
	// would exceed it ends early. 0 means 8192.
	MaxContext int
	// FirstID numbers the generated requests starting here (IDs must be
	// unique across everything submitted to one driver).
	FirstID int
}

// session is one tenant's conversation state: the segments every future turn
// re-sends (system prompt plus completed turns), the turn counter, and the
// tenant's private length RNG — per-session sampling keeps a tenant's turn
// sizes identical across runs that finish turns in different global orders
// (e.g. the same workload behind different routers), so compared cells face
// equal offered load.
type session struct {
	tenant int
	seed   uint64
	turn   int
	segs   []request.PromptSegment
	rng    *mathutil.RNG
}

// Sessions synthesizes multi-turn, multi-tenant conversations for closed-loop
// session serving: tenants share a per-tenant system prompt across turns, and
// each follow-up turn's prompt extends the full prior conversation, so both
// cross-request (same tenant, shared system prompt and history) and
// within-session prefix reuse are exactly reconstructible from the requests'
// PromptSegs. Drive it with InitialRequests to start the run, then call
// FollowUp from a RequestFinished observer to submit each next turn.
//
// All sampling is deterministic given the config seed and the (deterministic)
// order of FollowUp calls.
type Sessions struct {
	cfg      SessionsConfig
	spec     CategorySpec
	nextID   int
	open     map[int]*session // outstanding turn's request ID → session
	issued   int
	finished int
}

// NewSessions validates and builds a session generator.
func NewSessions(cfg SessionsConfig) (*Sessions, error) {
	if cfg.Tenants <= 0 {
		return nil, fmt.Errorf("workload: sessions need at least one tenant, got %d", cfg.Tenants)
	}
	if cfg.SystemPromptLen < 0 {
		return nil, fmt.Errorf("workload: negative system prompt length %d", cfg.SystemPromptLen)
	}
	if cfg.Turns <= 0 {
		return nil, fmt.Errorf("workload: sessions need at least one turn, got %d", cfg.Turns)
	}
	if cfg.BaselineLatency <= 0 {
		return nil, fmt.Errorf("workload: baseline latency %g must be positive", cfg.BaselineLatency)
	}
	if cfg.ThinkTime < 0 || cfg.ArrivalSpacing < 0 {
		return nil, fmt.Errorf("workload: negative session timing")
	}
	if cfg.Categories == nil {
		cfg.Categories = DefaultCategories()
	}
	if cfg.MaxContext == 0 {
		cfg.MaxContext = 8192
	}
	var spec CategorySpec
	found := false
	for _, s := range cfg.Categories {
		if s.Category == cfg.Category {
			spec, found = s, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("workload: no spec for session category %v", cfg.Category)
	}
	return &Sessions{
		cfg:  cfg,
		spec: spec,
		open: make(map[int]*session),
	}, nil
}

// MustSessions panics on error.
func MustSessions(cfg SessionsConfig) *Sessions {
	s, err := NewSessions(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// slo mirrors Generator.slo without SLO scaling.
func (ss *Sessions) slo() float64 {
	if ss.spec.SLOFactor > 0 {
		return ss.spec.SLOFactor * ss.cfg.BaselineLatency
	}
	return ss.spec.SLOAbs
}

// makeTurn materializes a session's next turn arriving at time t: the prompt
// is the conversation so far plus a freshly sampled user segment.
func (ss *Sessions) makeTurn(s *session, t float64) *request.Request {
	userLen := ss.spec.Prompt.Sample(s.rng)
	output := ss.spec.Output.Sample(s.rng)
	segs := make([]request.PromptSegment, 0, len(s.segs)+1)
	segs = append(segs, s.segs...)
	segs = append(segs, request.PromptSegment{
		Seed: mathutil.Hash2(s.seed, uint64(2*s.turn)),
		Len:  userLen,
	})
	promptLen := 0
	for _, seg := range segs {
		promptLen += seg.Len
	}
	if promptLen+output > ss.cfg.MaxContext {
		return nil // conversation outgrew the context window: session ends
	}
	id := ss.cfg.FirstID + ss.nextID
	ss.nextID++
	r := request.New(id, ss.cfg.Category, ss.slo(), t, promptLen, output,
		mathutil.Hash2(s.seed, uint64(s.turn)+0x7a31))
	r.TTFTSLO = ss.spec.TTFTSLOAbs
	r.PromptSegs = segs
	ss.open[id] = s
	ss.issued++
	return r
}

// InitialRequests returns every tenant's first turn, tenant i arriving at
// i × ArrivalSpacing. Call once, before the run.
func (ss *Sessions) InitialRequests() []*request.Request {
	out := make([]*request.Request, 0, ss.cfg.Tenants)
	for tenant := 0; tenant < ss.cfg.Tenants; tenant++ {
		s := &session{
			tenant: tenant,
			seed:   mathutil.Hash2(ss.cfg.Seed, uint64(tenant)+0x5e55),
		}
		s.rng = mathutil.NewRNG(mathutil.Hash2(s.seed, 0x17e6))
		if ss.cfg.SystemPromptLen > 0 {
			s.segs = append(s.segs, request.PromptSegment{
				Seed: mathutil.Hash2(s.seed, 0xa11ce),
				Len:  ss.cfg.SystemPromptLen,
			})
		}
		if r := ss.makeTurn(s, float64(tenant)*ss.cfg.ArrivalSpacing); r != nil {
			out = append(out, r)
		}
	}
	return out
}

// FollowUp consumes a finished turn and returns the tenant's next one,
// arriving ThinkTime after now — or nil when the conversation is over (turn
// budget spent, context window full, or r was not an outstanding session
// turn). The finished turn's user segment and the assistant's actual reply
// length extend the conversation, so the next prompt is a strict
// continuation of everything the KV cache just computed.
func (ss *Sessions) FollowUp(r *request.Request, now float64) *request.Request {
	s, ok := ss.open[r.ID]
	if !ok {
		return nil
	}
	delete(ss.open, r.ID)
	ss.finished++
	// The conversation absorbs the finished turn: its full prompt (already
	// seg-aligned in r.PromptSegs) plus the assistant reply.
	s.segs = s.segs[:0]
	s.segs = append(s.segs, r.PromptSegs...)
	if out := r.OutputLen(); out > 0 {
		s.segs = append(s.segs, request.PromptSegment{
			Seed: mathutil.Hash2(s.seed, uint64(2*s.turn+1)),
			Len:  out,
		})
	}
	s.turn++
	if s.turn >= ss.cfg.Turns {
		return nil
	}
	return ss.makeTurn(s, now+ss.cfg.ThinkTime)
}

// Issued returns the number of turn requests generated so far; Outstanding
// the turns issued but not yet consumed by FollowUp.
func (ss *Sessions) Issued() int      { return ss.issued }
func (ss *Sessions) Outstanding() int { return len(ss.open) }
