package workload

import (
	"math"
	"testing"
)

// TestRateProfilesNormalized checks every profile's mean lands on the
// requested RPS and the thinning envelope bounds the rate everywhere.
func TestRateProfilesNormalized(t *testing.T) {
	const meanRPS, duration = 3.0, 120.0
	for _, name := range RateProfileNames() {
		rate, maxRate, err := RateProfile(name, meanRPS, duration)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		const steps = 10000
		sum := 0.0
		for i := 0; i < steps; i++ {
			x := duration * (float64(i) + 0.5) / steps
			v := rate(x)
			if v < 0 {
				t.Fatalf("%s: negative rate %g at t=%g", name, v, x)
			}
			if v > maxRate {
				t.Fatalf("%s: rate %g exceeds envelope %g at t=%g", name, v, maxRate, x)
			}
			sum += v
		}
		mean := sum / steps
		if math.Abs(mean-meanRPS) > 0.01*meanRPS {
			t.Fatalf("%s: mean %.4f, want %.4f", name, mean, meanRPS)
		}
	}
}

// TestRateProfileShapes pins the qualitative shape of each non-constant
// profile.
func TestRateProfileShapes(t *testing.T) {
	const meanRPS, duration = 2.0, 100.0
	ramp, _, _ := RateProfile("ramp", meanRPS, duration)
	if ramp(90) <= ramp(10) {
		t.Fatalf("ramp does not climb: %g at t=10, %g at t=90", ramp(10), ramp(90))
	}
	spike, _, _ := RateProfile("spike", meanRPS, duration)
	if spike(50) < 5*spike(10) {
		t.Fatalf("spike peak %g not sharp vs base %g", spike(50), spike(10))
	}
	diurnal, _, _ := RateProfile("diurnal", meanRPS, duration)
	if diurnal(50) <= diurnal(1) {
		t.Fatalf("diurnal does not peak mid-window: %g vs %g", diurnal(50), diurnal(1))
	}
}

func TestRateProfileErrors(t *testing.T) {
	if _, _, err := RateProfile("wavy", 1, 10); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, _, err := RateProfile("ramp", 0, 10); err == nil {
		t.Fatal("zero mean accepted")
	}
	if _, _, err := RateProfile("ramp", 1, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}
