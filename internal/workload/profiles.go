package workload

import (
	"fmt"
	"math"
)

// RateProfileNames lists the built-in open-loop arrival-rate shapes
// accepted by RateProfile.
func RateProfileNames() []string {
	return []string{"constant", "ramp", "spike", "diurnal"}
}

// profileShape returns the named profile's raw shape over normalized
// x in [0,1), or nil for "constant".
func profileShape(name string) (func(x float64) float64, error) {
	switch name {
	case "constant":
		return nil, nil
	case "ramp":
		return func(x float64) float64 { return 0.25 + 1.5*x }, nil
	case "spike":
		return func(x float64) float64 {
			d := (x - 0.5) / 0.025
			return 0.7 + 5.0*math.Exp(-d*d/2)
		}, nil
	case "diurnal":
		return func(x float64) float64 { return 1 - 0.6*math.Cos(2*math.Pi*x) }, nil
	default:
		return nil, fmt.Errorf("workload: unknown rate profile %q (have %v)", name, RateProfileNames())
	}
}

// shapeMeanPeak numerically normalizes a shape: its mean and peak over
// [0,1) by the midpoint rule (the shapes are smooth, so a fine grid
// bounds them tightly).
func shapeMeanPeak(raw func(x float64) float64) (mean, peak float64) {
	const steps = 4096
	sum := 0.0
	for i := 0; i < steps; i++ {
		v := raw((float64(i) + 0.5) / steps)
		sum += v
		if v > peak {
			peak = v
		}
	}
	return sum / steps, peak
}

// RateProfile returns the named open-loop arrival-rate shape scaled so its
// mean over [0, duration) is meanRPS, plus a thinning envelope maxRate that
// upper-bounds the rate everywhere — the pair an open-loop Poisson source
// (serve.OpenLoop) samples from.
//
// Shapes:
//
//	constant — flat at meanRPS: the classic open-loop benchmark.
//	ramp     — linear climb from 0.25x to 1.75x the mean: a load test that
//	           walks the system across its saturation knee in one run.
//	spike    — steady 0.7x base with a sharp 5x burst around mid-run: the
//	           overload transient that separates routers and admission
//	           policies (recovery is visible in the windowed snapshots).
//	diurnal  — one sinusoidal day compressed onto the window, 0.4x to 1.6x:
//	           the daily traffic swell capacity planning sizes against.
func RateProfile(name string, meanRPS, duration float64) (RateFn, float64, error) {
	if meanRPS <= 0 {
		return nil, 0, fmt.Errorf("workload: rate profile mean %g must be positive", meanRPS)
	}
	if duration <= 0 {
		return nil, 0, fmt.Errorf("workload: rate profile duration %g must be positive", duration)
	}
	raw, err := profileShape(name)
	if err != nil {
		return nil, 0, err
	}
	if raw == nil {
		return func(float64) float64 { return meanRPS }, meanRPS, nil
	}
	// Normalize the shape's mean to 1 and bound its peak for the thinning
	// envelope, with a small safety margin.
	mean, peak := shapeMeanPeak(raw)
	rate := func(t float64) float64 { return meanRPS * raw(t/duration) / mean }
	maxRate := meanRPS * peak / mean * 1.02
	return rate, maxRate, nil
}

// RateProfilePeakFactor returns the named profile's peak-to-mean rate
// ratio: the factor capacity planning multiplies a mean load by to size an
// equal-peak static fleet (1 for "constant"). The autoscaling experiments
// use it to pit elastic fleets against the static cluster a peak-capacity
// planner would deploy.
func RateProfilePeakFactor(name string) (float64, error) {
	raw, err := profileShape(name)
	if err != nil {
		return 0, err
	}
	if raw == nil {
		return 1, nil
	}
	mean, peak := shapeMeanPeak(raw)
	return peak / mean, nil
}
