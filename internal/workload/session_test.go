package workload

import (
	"testing"

	"adaserve/internal/lm"
	"adaserve/internal/request"
)

func sessionConfig() SessionsConfig {
	return SessionsConfig{
		Seed:            7,
		Tenants:         3,
		SystemPromptLen: 64,
		Turns:           3,
		Category:        request.Chat,
		BaselineLatency: 0.033,
		ArrivalSpacing:  0.25,
		ThinkTime:       0.5,
	}
}

func TestNewSessionsValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*SessionsConfig)
	}{
		{"no tenants", func(c *SessionsConfig) { c.Tenants = 0 }},
		{"negative system prompt", func(c *SessionsConfig) { c.SystemPromptLen = -1 }},
		{"no turns", func(c *SessionsConfig) { c.Turns = 0 }},
		{"no baseline", func(c *SessionsConfig) { c.BaselineLatency = 0 }},
		{"negative think time", func(c *SessionsConfig) { c.ThinkTime = -1 }},
		{"negative spacing", func(c *SessionsConfig) { c.ArrivalSpacing = -1 }},
		{"unknown category", func(c *SessionsConfig) { c.Category = request.Category(99) }},
	}
	for _, tc := range cases {
		cfg := sessionConfig()
		tc.mutate(&cfg)
		if _, err := NewSessions(cfg); err == nil {
			t.Errorf("%s: NewSessions accepted invalid config", tc.name)
		}
	}
	if _, err := NewSessions(sessionConfig()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestMustSessionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSessions did not panic on invalid config")
		}
	}()
	MustSessions(SessionsConfig{})
}

// finishTurn simulates the engine serving a turn: commit `out` output tokens
// so FollowUp sees the assistant reply it should fold into the conversation.
func finishTurn(r *request.Request, out int) {
	for i := 0; i < out; i++ {
		r.Output = append(r.Output, lm.Token(i+1))
	}
}

func TestSessionsConversationGrowth(t *testing.T) {
	ss := MustSessions(sessionConfig())
	initial := ss.InitialRequests()
	if len(initial) != 3 {
		t.Fatalf("got %d initial turns, want 3", len(initial))
	}
	for i, r := range initial {
		// Tenant i's opening turn: staggered arrival, system prompt as the
		// first segment, exactly one user segment after it.
		if want := float64(i) * 0.25; r.ArrivalTime != want {
			t.Errorf("tenant %d arrival %g, want %g", i, r.ArrivalTime, want)
		}
		if len(r.PromptSegs) != 2 {
			t.Fatalf("tenant %d: %d prompt segments, want 2", i, len(r.PromptSegs))
		}
		if r.PromptSegs[0].Len != 64 {
			t.Errorf("tenant %d system prompt len %d, want 64", i, r.PromptSegs[0].Len)
		}
		if r.TTFTSLO == 0 {
			t.Errorf("tenant %d turn missing TTFT SLO", i)
		}
	}
	if ss.Issued() != 3 || ss.Outstanding() != 3 {
		t.Fatalf("issued %d outstanding %d, want 3/3", ss.Issued(), ss.Outstanding())
	}

	// Tenants 0 and 1 share no segments (different seeds), but a tenant's
	// follow-up strictly extends its own finished turn.
	r0 := initial[0]
	finishTurn(r0, 10)
	next := ss.FollowUp(r0, 5.0)
	if next == nil {
		t.Fatal("FollowUp returned nil with turn budget remaining")
	}
	if next.ArrivalTime != 5.5 {
		t.Errorf("follow-up arrival %g, want now+think=5.5", next.ArrivalTime)
	}
	// prior prompt segs + assistant reply + new user turn
	if want := len(r0.PromptSegs) + 2; len(next.PromptSegs) != want {
		t.Fatalf("follow-up has %d segs, want %d", len(next.PromptSegs), want)
	}
	for i, seg := range r0.PromptSegs {
		if next.PromptSegs[i] != seg {
			t.Fatalf("follow-up seg %d diverged from finished turn", i)
		}
	}
	if reply := next.PromptSegs[len(r0.PromptSegs)]; reply.Len != 10 {
		t.Errorf("assistant reply segment len %d, want the 10 committed tokens", reply.Len)
	}
	if ss.Outstanding() != 3 {
		t.Fatalf("outstanding %d after one finish+follow-up, want 3", ss.Outstanding())
	}

	// A request the generator never issued (or one already consumed) is
	// ignored.
	if ss.FollowUp(r0, 6.0) != nil {
		t.Error("FollowUp accepted an already-consumed turn")
	}
	stranger := request.New(999, request.Chat, 1, 0, 16, 4, 1)
	if ss.FollowUp(stranger, 6.0) != nil {
		t.Error("FollowUp accepted a foreign request")
	}

	// Drain tenant 0's conversation: the turn budget (3) ends it.
	finishTurn(next, 4)
	last := ss.FollowUp(next, 8.0)
	if last == nil {
		t.Fatal("turn 3 of 3 should still be issued")
	}
	if ss.FollowUp(last, 10.0) != nil {
		t.Error("conversation continued past the turn budget")
	}
}

func TestSessionsZeroOutputReply(t *testing.T) {
	// A finished turn with no committed output contributes no assistant
	// segment — the next prompt is exactly the previous one plus a new user
	// turn.
	ss := MustSessions(sessionConfig())
	r := ss.InitialRequests()[0]
	next := ss.FollowUp(r, 1.0)
	if next == nil {
		t.Fatal("FollowUp returned nil")
	}
	if want := len(r.PromptSegs) + 1; len(next.PromptSegs) != want {
		t.Fatalf("got %d segs, want %d (no assistant segment)", len(next.PromptSegs), want)
	}
}

func TestSessionsContextWindowEndsSession(t *testing.T) {
	cfg := sessionConfig()
	cfg.Tenants = 1
	cfg.Turns = 100
	cfg.MaxContext = 256 // system prompt 64 + a couple of turns
	ss := MustSessions(cfg)
	initial := ss.InitialRequests()
	if len(initial) != 1 {
		t.Fatalf("got %d initial turns, want 1", len(initial))
	}
	r := initial[0]
	turns := 1
	for {
		finishTurn(r, 64)
		next := ss.FollowUp(r, float64(turns))
		if next == nil {
			break
		}
		if next.PromptLen+64 > cfg.MaxContext {
			t.Fatalf("turn %d prompt %d exceeds the context budget", turns, next.PromptLen)
		}
		r = next
		turns++
		if turns > 100 {
			t.Fatal("session never hit the context window")
		}
	}
	if turns >= 100 {
		t.Fatal("expected the context window, not the turn budget, to end the session")
	}
	if ss.Outstanding() != 0 {
		t.Fatalf("outstanding %d after session end, want 0", ss.Outstanding())
	}
}

func TestSessionsDeterministicAcrossFinishOrder(t *testing.T) {
	// Two runs finishing turns in different global orders produce identical
	// per-tenant turn sequences: sampling is per-session, so routing (which
	// reorders finishes) cannot change the offered load.
	type turnKey struct {
		prompt, output int
	}
	collect := func(order []int) map[int][]turnKey {
		ss := MustSessions(sessionConfig())
		byTenant := map[int][]turnKey{}
		live := ss.InitialRequests()
		for i, r := range live {
			byTenant[i] = append(byTenant[i], turnKey{r.PromptLen, r.MaxNewTokens})
		}
		tenantOf := map[*request.Request]int{live[0]: 0, live[1]: 1, live[2]: 2}
		for turn := 0; turn < 2; turn++ {
			next := make([]*request.Request, len(live))
			for _, i := range order {
				r := live[i]
				finishTurn(r, 8)
				n := ss.FollowUp(r, float64(10*turn+i))
				if n == nil {
					t.Fatalf("tenant %d turn %d ended early", i, turn)
				}
				tenant := tenantOf[r]
				tenantOf[n] = tenant
				byTenant[tenant] = append(byTenant[tenant], turnKey{n.PromptLen, n.MaxNewTokens})
				next[i] = n
			}
			live = next
		}
		return byTenant
	}
	a := collect([]int{0, 1, 2})
	b := collect([]int{2, 0, 1})
	for tenant, turns := range a {
		got := b[tenant]
		if len(got) != len(turns) {
			t.Fatalf("tenant %d: %d turns vs %d", tenant, len(got), len(turns))
		}
		for i := range turns {
			if got[i] != turns[i] {
				t.Fatalf("tenant %d turn %d differs across finish orders: %+v vs %+v",
					tenant, i, turns[i], got[i])
			}
		}
	}
}
