package workload

import (
	"math"
	"testing"

	"adaserve/internal/mathutil"
	"adaserve/internal/request"
)

func TestLengthDistClipping(t *testing.T) {
	d := LengthDist{Median: 100, Sigma: 2.0, Min: 50, Max: 150}
	rng := mathutil.NewRNG(1)
	for i := 0; i < 1000; i++ {
		n := d.Sample(rng)
		if n < 50 || n > 150 {
			t.Fatalf("sample %d outside clip range", n)
		}
	}
}

func TestLengthDistMedian(t *testing.T) {
	d := LengthDist{Median: 200, Sigma: 0.5, Min: 1, Max: 10000}
	rng := mathutil.NewRNG(2)
	var samples []float64
	for i := 0; i < 20000; i++ {
		samples = append(samples, float64(d.Sample(rng)))
	}
	med := mathutil.Percentile(samples, 50)
	if med < 180 || med > 220 {
		t.Fatalf("sample median %g, want ~200", med)
	}
}

func TestDefaultCategoriesComplete(t *testing.T) {
	cats := DefaultCategories()
	if len(cats) != request.NumCategories {
		t.Fatalf("%d categories", len(cats))
	}
	seen := map[request.Category]bool{}
	for _, c := range cats {
		seen[c.Category] = true
		if c.SLOFactor <= 0 && c.SLOAbs <= 0 {
			t.Errorf("%s has no SLO", c.App)
		}
	}
	if len(seen) != request.NumCategories {
		t.Fatal("duplicate category specs")
	}
}

func TestCategoryTPOTResolution(t *testing.T) {
	cats := DefaultCategories()
	base := 0.033
	// Coding: 1.2x baseline; chat 50ms; summarization 150ms (Table 2).
	if got := cats[0].TPOT(base); math.Abs(got-1.2*base) > 1e-12 {
		t.Errorf("coding SLO %g", got)
	}
	if got := cats[1].TPOT(base); got != 0.050 {
		t.Errorf("chat SLO %g", got)
	}
	if got := cats[2].TPOT(base); got != 0.150 {
		t.Errorf("summarization SLO %g", got)
	}
}

func TestMixValidate(t *testing.T) {
	if DefaultMix.Validate() != nil {
		t.Error("default mix invalid")
	}
	if (Mix{0.5, 0.2, 0.2}).Validate() == nil {
		t.Error("non-normalized mix accepted")
	}
	if (Mix{-0.2, 0.6, 0.6}).Validate() == nil {
		t.Error("negative mix accepted")
	}
}

func TestUrgentMix(t *testing.T) {
	m := UrgentMix(0.7)
	if m[0] != 0.7 || math.Abs(m[1]-0.15) > 1e-12 || math.Abs(m[2]-0.15) > 1e-12 {
		t.Fatalf("urgent mix %v", m)
	}
	if m.Validate() != nil {
		t.Fatal("urgent mix should validate")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(GeneratorConfig{Mix: DefaultMix}); err == nil {
		t.Error("zero baseline accepted")
	}
	if _, err := NewGenerator(GeneratorConfig{Mix: Mix{1, 1, 1}, BaselineLatency: 0.03}); err == nil {
		t.Error("bad mix accepted")
	}
	if _, err := NewGenerator(GeneratorConfig{Mix: DefaultMix, BaselineLatency: 0.03, SLOScale: -1}); err == nil {
		t.Error("negative SLO scale accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	mk := func() []*request.Request {
		g := MustGenerator(GeneratorConfig{Seed: 9, Mix: DefaultMix, BaselineLatency: 0.033})
		ts := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
		return g.FromTimestamps(ts)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Category != b[i].Category || a[i].PromptLen != b[i].PromptLen ||
			a[i].MaxNewTokens != b[i].MaxNewTokens || a[i].Seed != b[i].Seed {
			t.Fatalf("request %d differs between identical generators", i)
		}
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	g := MustGenerator(GeneratorConfig{Seed: 3, Mix: Mix{0.6, 0.2, 0.2}, BaselineLatency: 0.033})
	ts := make([]float64, 20000)
	for i := range ts {
		ts[i] = float64(i) * 0.01
	}
	reqs := g.FromTimestamps(ts)
	st := StreamStats(reqs)
	frac := float64(st.PerCategory[request.Coding]) / float64(st.Requests)
	if math.Abs(frac-0.6) > 0.02 {
		t.Fatalf("coding fraction %.3f, want 0.6", frac)
	}
}

func TestGeneratorSLOScaleOnlyAffectsCoding(t *testing.T) {
	base := 0.033
	g1 := MustGenerator(GeneratorConfig{Seed: 3, Mix: DefaultMix, BaselineLatency: base, SLOScale: 1.0})
	g2 := MustGenerator(GeneratorConfig{Seed: 3, Mix: DefaultMix, BaselineLatency: base, SLOScale: 0.6})
	r1c := g1.MakeAt(request.Coding, 0)
	r2c := g2.MakeAt(request.Coding, 0)
	if math.Abs(r1c.TPOTSLO-1.2*base) > 1e-12 {
		t.Fatalf("scale 1.0 coding SLO %g", r1c.TPOTSLO)
	}
	if math.Abs(r2c.TPOTSLO-0.6*1.2*base) > 1e-12 {
		t.Fatalf("scale 0.6 coding SLO %g", r2c.TPOTSLO)
	}
	r1s := g1.MakeAt(request.Summarization, 0)
	r2s := g2.MakeAt(request.Summarization, 0)
	if r1s.TPOTSLO != r2s.TPOTSLO {
		t.Fatal("SLO scale must not affect absolute-SLO categories")
	}
}

func TestGeneratorClipsContext(t *testing.T) {
	g := MustGenerator(GeneratorConfig{
		Seed: 3, Mix: DefaultMix, BaselineLatency: 0.033, MaxContext: 600,
	})
	for i := 0; i < 500; i++ {
		r := g.MakeAt(request.Summarization, 0)
		if r.PromptLen+r.MaxNewTokens > 600 {
			t.Fatalf("request exceeds context clip: %d+%d", r.PromptLen, r.MaxNewTokens)
		}
	}
}

func TestFromCategoryTimestampsSorted(t *testing.T) {
	g := MustGenerator(GeneratorConfig{Seed: 5, Mix: DefaultMix, BaselineLatency: 0.033})
	perCat := [][]float64{{3, 1}, {2}, {0.5}}
	// FromCategoryTimestamps does not require sorted inputs per category.
	reqs := g.FromCategoryTimestamps(perCat)
	if len(reqs) != 4 {
		t.Fatalf("%d requests", len(reqs))
	}
	for i := 1; i < len(reqs); i++ {
		if reqs[i].ArrivalTime < reqs[i-1].ArrivalTime {
			t.Fatal("stream not sorted by arrival")
		}
	}
	// Categories must match their source lists.
	for _, r := range reqs {
		switch r.ArrivalTime {
		case 3, 1:
			if r.Category != request.Coding {
				t.Fatal("category 0 timestamps mislabeled")
			}
		case 2:
			if r.Category != request.Chat {
				t.Fatal("category 1 timestamps mislabeled")
			}
		case 0.5:
			if r.Category != request.Summarization {
				t.Fatal("category 2 timestamps mislabeled")
			}
		}
	}
}

func TestStreamStats(t *testing.T) {
	g := MustGenerator(GeneratorConfig{Seed: 5, Mix: DefaultMix, BaselineLatency: 0.033})
	reqs := g.FromTimestamps([]float64{0, 1, 2, 3, 4})
	st := StreamStats(reqs)
	if st.Requests != 5 {
		t.Fatalf("requests %d", st.Requests)
	}
	if math.Abs(st.MeanRPS-5.0/4.0) > 1e-9 {
		t.Fatalf("mean RPS %g", st.MeanRPS)
	}
	if st.MeanPrompt <= 0 || st.MeanOutput <= 0 {
		t.Fatal("degenerate stream stats")
	}
	if StreamStats(nil).Requests != 0 {
		t.Fatal("empty stream stats")
	}
}

// TestSampleCategoryDegenerateMixes regression-tests the fallback branch of
// sampleCategory: float accumulation can leave the drawn u past the summed
// weights (the mix validates at 1±0.001), and the fallback must then land on
// a category the mix actually allows. Before the fix it blindly took the
// last index, so a mix like {1, 0, 0} could emit a probability-zero
// category. Each mix below undershoots 1 so the fallback genuinely fires
// over 200k draws.
func TestSampleCategoryDegenerateMixes(t *testing.T) {
	cases := []struct {
		name    string
		mix     Mix
		allowed map[request.Category]bool
	}{
		{"only-first", Mix{0.9995, 0, 0}, map[request.Category]bool{0: true}},
		{"only-middle", Mix{0, 0.9995, 0}, map[request.Category]bool{1: true}},
		{"trailing-zero", Mix{0.5, 0.4995, 0}, map[request.Category]bool{0: true, 1: true}},
		{"leading-zero", Mix{0, 0.0005, 0.999}, map[request.Category]bool{1: true, 2: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.mix.Validate(); err != nil {
				t.Fatalf("test mix does not validate: %v", err)
			}
			g := MustGenerator(GeneratorConfig{Seed: 5, Mix: c.mix, BaselineLatency: 0.033})
			for i := 0; i < 200_000; i++ {
				if cat := g.sampleCategory(); !c.allowed[cat] {
					t.Fatalf("draw %d emitted probability-zero category %v", i, cat)
				}
			}
		})
	}
}
