package workload

import (
	"fmt"
	"sort"

	"adaserve/internal/mathutil"
	"adaserve/internal/request"
)

// GeneratorConfig parameterizes request-stream synthesis.
type GeneratorConfig struct {
	// Seed drives all sampling (categories, lengths, request text seeds).
	Seed uint64
	// Categories defaults to DefaultCategories.
	Categories []CategorySpec
	// Mix is the category distribution for mixed traces.
	Mix Mix
	// BaselineLatency is the model's unloaded per-token decode latency,
	// used to resolve factor-based SLOs (category 1).
	BaselineLatency float64
	// SLOScale scales category 1's SLO factor (Figure 11's x-axis); 0
	// means 1.0 (no scaling: factor stays at its spec value).
	SLOScale float64
	// MaxContext clips prompt+output so requests always fit KV capacity.
	MaxContext int
}

// Generator synthesizes requests.
type Generator struct {
	cfg  GeneratorConfig
	rng  *mathutil.RNG
	next int
}

// NewGenerator validates and builds a generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) {
	if cfg.Categories == nil {
		cfg.Categories = DefaultCategories()
	}
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}
	if cfg.BaselineLatency <= 0 {
		return nil, fmt.Errorf("workload: baseline latency %g must be positive", cfg.BaselineLatency)
	}
	if cfg.SLOScale == 0 {
		cfg.SLOScale = 1
	}
	if cfg.SLOScale < 0 {
		return nil, fmt.Errorf("workload: negative SLO scale %g", cfg.SLOScale)
	}
	if cfg.MaxContext == 0 {
		cfg.MaxContext = 8192
	}
	return &Generator{cfg: cfg, rng: mathutil.NewRNG(cfg.Seed)}, nil
}

// MustGenerator panics on error.
func MustGenerator(cfg GeneratorConfig) *Generator {
	g, err := NewGenerator(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// slo resolves the SLO for a category, applying SLOScale to category 1.
// Per Figure 11, the scale stretches or tightens the most urgent SLO
// relative to the baseline latency (scale < 1 demands per-token latency
// below the unloaded baseline — only speculation can deliver that).
func (g *Generator) slo(spec CategorySpec) float64 {
	t := spec.TPOT(g.cfg.BaselineLatency)
	if spec.SLOFactor > 0 {
		t = spec.SLOFactor * g.cfg.SLOScale * g.cfg.BaselineLatency
	}
	return t
}

// MakeAt synthesizes one request of the given category arriving at time t.
func (g *Generator) MakeAt(cat request.Category, t float64) *request.Request {
	var spec CategorySpec
	found := false
	for _, s := range g.cfg.Categories {
		if s.Category == cat {
			spec = s
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("workload: no spec for category %v", cat))
	}
	prompt := spec.Prompt.Sample(g.rng)
	output := spec.Output.Sample(g.rng)
	if prompt+output > g.cfg.MaxContext {
		prompt = g.cfg.MaxContext - output
		if prompt < 1 {
			prompt, output = 1, g.cfg.MaxContext-1
		}
	}
	id := g.next
	g.next++
	seed := mathutil.Hash2(g.cfg.Seed, uint64(id)+0x5151)
	r := request.New(id, cat, g.slo(spec), t, prompt, output, seed)
	r.TTFTSLO = spec.TTFTSLOAbs
	return r
}

// MakeMixedAt synthesizes one request arriving at time t with its category
// sampled from the configured mix: the incremental counterpart of
// FromTimestamps, for open-loop sources that materialize arrivals on the
// fly. Given the same timestamps it consumes the generator's RNG in the
// same order as FromTimestamps, so lazily and eagerly built streams are
// identical.
func (g *Generator) MakeMixedAt(t float64) *request.Request {
	return g.MakeAt(g.sampleCategory(), t)
}

// sampleCategory draws a category from the mix. Float accumulation can
// leave u >= acc even though the mix validates (weights summing to 1±0.001
// need not reach u); the fallback must land on a category the mix actually
// allows, so it scans back to the last positive-weight category rather than
// blindly taking the last index — with a mix like {1, 0, 0} the last index
// has probability zero and must never be emitted.
func (g *Generator) sampleCategory() request.Category {
	u := g.rng.Float64()
	var acc float64
	for i, p := range g.cfg.Mix {
		acc += p
		if u < acc {
			return request.Category(i)
		}
	}
	for i := len(g.cfg.Mix) - 1; i >= 0; i-- {
		if g.cfg.Mix[i] > 0 {
			return request.Category(i)
		}
	}
	return request.Category(len(g.cfg.Mix) - 1)
}

// FromTimestamps builds a mixed-category request stream over the given
// (sorted) arrival timestamps: for each arrival the category is sampled from
// the mix, then lengths from that category's distributions — exactly the
// paper's trace construction.
func (g *Generator) FromTimestamps(ts []float64) []*request.Request {
	reqs := make([]*request.Request, 0, len(ts))
	for _, t := range ts {
		reqs = append(reqs, g.MakeMixedAt(t))
	}
	return reqs
}

// FromCategoryTimestamps builds a request stream from per-category timestamp
// slices (Figure 13's synthetic trace).
func (g *Generator) FromCategoryTimestamps(perCat [][]float64) []*request.Request {
	var reqs []*request.Request
	for ci, ts := range perCat {
		for _, t := range ts {
			reqs = append(reqs, g.MakeAt(request.Category(ci), t))
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].ArrivalTime != reqs[j].ArrivalTime {
			return reqs[i].ArrivalTime < reqs[j].ArrivalTime
		}
		return reqs[i].ID < reqs[j].ID
	})
	return reqs
}

// Stats summarizes a generated stream for logging and tests.
type Stats struct {
	Requests    int
	PerCategory [request.NumCategories]int
	MeanPrompt  float64
	MeanOutput  float64
	MeanRPS     float64
}

// StreamStats computes Stats for a request stream.
func StreamStats(reqs []*request.Request) Stats {
	var st Stats
	st.Requests = len(reqs)
	if len(reqs) == 0 {
		return st
	}
	var prompt, output float64
	minT, maxT := reqs[0].ArrivalTime, reqs[0].ArrivalTime
	for _, r := range reqs {
		st.PerCategory[r.Category]++
		prompt += float64(r.PromptLen)
		output += float64(r.MaxNewTokens)
		if r.ArrivalTime < minT {
			minT = r.ArrivalTime
		}
		if r.ArrivalTime > maxT {
			maxT = r.ArrivalTime
		}
	}
	st.MeanPrompt = prompt / float64(len(reqs))
	st.MeanOutput = output / float64(len(reqs))
	if maxT > minT {
		st.MeanRPS = float64(len(reqs)) / (maxT - minT)
	}
	return st
}
