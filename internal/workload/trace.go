package workload

import (
	"fmt"
	"math"
	"sort"

	"adaserve/internal/mathutil"
)

// RateFn is a time-varying arrival rate in requests/second.
type RateFn func(t float64) float64

// NonHomogeneousPoisson samples arrival timestamps on [0, duration) from a
// time-varying rate via Lewis thinning. maxRate must upper-bound rate over
// the window.
func NonHomogeneousPoisson(rng *mathutil.RNG, rate RateFn, maxRate, duration float64) []float64 {
	if maxRate <= 0 || duration <= 0 {
		return nil
	}
	var out []float64
	t := 0.0
	for {
		t += rng.ExpFloat64() / maxRate
		if t >= duration {
			break
		}
		if rng.Float64() < rate(t)/maxRate {
			out = append(out, t)
		}
	}
	return out
}

// PoissonTrace samples a homogeneous Poisson arrival process.
func PoissonTrace(rng *mathutil.RNG, rps, duration float64) []float64 {
	return NonHomogeneousPoisson(rng, func(float64) float64 { return rps }, rps, duration)
}

// RealTraceShape reproduces the bursty shape of the paper's real-world trace
// (Figure 7): a slowly drifting base load with several sharp bursts, over a
// 20-minute window, normalized so its mean is 1 (scale by target RPS).
func RealTraceShape() RateFn {
	type burst struct{ center, width, height float64 }
	bursts := []burst{
		{center: 90, width: 25, height: 2.6},
		{center: 260, width: 35, height: 1.8},
		{center: 430, width: 20, height: 3.1},
		{center: 620, width: 45, height: 1.5},
		{center: 800, width: 25, height: 2.2},
		{center: 950, width: 30, height: 2.8},
		{center: 1100, width: 20, height: 1.9},
	}
	raw := func(t float64) float64 {
		v := 0.55 + 0.25*math.Sin(2*math.Pi*t/700)
		for _, b := range bursts {
			d := (t - b.center) / b.width
			v += b.height * math.Exp(-d*d/2)
		}
		return v
	}
	// Normalize mean to 1 over the 20-minute window.
	const window = 1200.0
	var sum float64
	const steps = 2400
	for i := 0; i < steps; i++ {
		sum += raw(window * float64(i) / steps)
	}
	mean := sum / steps
	return func(t float64) float64 { return raw(t) / mean }
}

// RealTrace samples timestamps over duration seconds whose time-varying
// rate follows the Figure 7 shape rescaled to the target mean RPS. The
// 20-minute shape is compressed (or stretched) onto the requested duration,
// as the paper truncates and rescales its trace to different average RPS.
func RealTrace(rng *mathutil.RNG, meanRPS, duration float64) []float64 {
	shape := RealTraceShape()
	rate := func(t float64) float64 {
		return meanRPS * shape(1200*t/duration)
	}
	// Conservative bound: shape peaks below 6x mean.
	return NonHomogeneousPoisson(rng, rate, meanRPS*6, duration)
}

// SyntheticCategoryTrace reproduces Figure 13: over a 6-minute window, the
// three categories peak at different times (chat early, coding mid,
// summarization late), each a Gaussian bump over a small base rate.
// It returns per-category timestamp slices indexed by category.
func SyntheticCategoryTrace(rng *mathutil.RNG, peakRPS float64, duration float64) [][]float64 {
	type bump struct{ center, width float64 }
	bumps := []bump{
		{center: duration * 3 / 6, width: duration / 12}, // coding (cat 1) mid
		{center: duration * 1 / 6, width: duration / 12}, // chat (cat 2) early
		{center: duration * 5 / 6, width: duration / 12}, // summarization late
	}
	out := make([][]float64, len(bumps))
	for i, b := range bumps {
		rate := func(t float64) float64 {
			d := (t - b.center) / b.width
			return 0.2 + peakRPS*math.Exp(-d*d/2)
		}
		out[i] = NonHomogeneousPoisson(rng, rate, peakRPS+0.2, duration)
	}
	return out
}

// BinCounts histograms timestamps into fixed-width bins for rendering trace
// shapes (Figures 7 and 13). Timestamps in [0, duration] all land in a bin
// — an arrival exactly on the duration boundary (common in imported
// traces, whose last arrival defines the duration) clamps into the final
// bin rather than vanishing; only timestamps outside the window drop.
func BinCounts(ts []float64, duration, binWidth float64) []int {
	if binWidth <= 0 || duration <= 0 {
		return nil
	}
	n := int(math.Ceil(duration / binWidth))
	bins := make([]int, n)
	for _, t := range ts {
		if t < 0 || t > duration {
			continue
		}
		i := int(t / binWidth)
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}

// MergeSorted merges pre-sorted timestamp slices into one sorted slice.
func MergeSorted(lists ...[]float64) []float64 {
	var out []float64
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Float64s(out)
	return out
}

// ValidateSorted reports whether ts is non-decreasing.
func ValidateSorted(ts []float64) error {
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			return fmt.Errorf("workload: timestamps not sorted at %d", i)
		}
	}
	return nil
}
