// Package workload generates the paper's evaluation workloads: the three
// application categories of Table 2 with their TPOT SLOs and length
// distributions, mixed-category request streams, and the arrival traces of
// Figures 7 and 13.
package workload

import (
	"fmt"
	"math"

	"adaserve/internal/mathutil"
	"adaserve/internal/request"
)

// LengthDist is a clipped log-normal over token counts.
type LengthDist struct {
	// Median is exp(mu) of the underlying normal.
	Median float64
	// Sigma is the log-space standard deviation.
	Sigma float64
	// Min and Max clip the samples.
	Min, Max int
}

// Sample draws one length.
func (l LengthDist) Sample(rng *mathutil.RNG) int {
	v := rng.LogNormal(logOf(l.Median), l.Sigma)
	n := int(v + 0.5)
	return mathutil.ClipInt(n, l.Min, l.Max)
}

func logOf(x float64) float64 {
	if x <= 0 {
		panic(fmt.Sprintf("workload: non-positive median %g", x))
	}
	return math.Log(x)
}

// CategorySpec defines one application category (Table 2).
type CategorySpec struct {
	Category request.Category
	// App is the paper's application name.
	App string
	// Dataset names the dataset the lengths were matched to.
	Dataset string
	// SLOFactor, when > 0, sets TPOT SLO = SLOFactor × baseline decode
	// latency (category 1: 1.2× baseline, per MLPerf interactive).
	SLOFactor float64
	// SLOAbs, when > 0, sets an absolute TPOT SLO in seconds.
	SLOAbs float64
	// TTFTSLOAbs, when > 0, sets an absolute time-to-first-token SLO in
	// seconds (arrival to first committed output token). Zero leaves the
	// category without a TTFT SLO.
	TTFTSLOAbs float64
	// Prompt and Output are token-length distributions matched to the
	// dataset's statistics.
	Prompt LengthDist
	Output LengthDist
}

// TPOT resolves the category's SLO given the model's baseline per-token
// decode latency.
func (c CategorySpec) TPOT(baseline float64) float64 {
	if c.SLOFactor > 0 {
		return c.SLOFactor * baseline
	}
	return c.SLOAbs
}

// DefaultCategories returns the Table 2 categories:
//
//	Cat 1  coding copilot   SLO = 1.2 × baseline   (HumanEval-like)
//	Cat 2  chatbot          SLO = 50 ms/token      (Alpaca-like)
//	Cat 3  summarization    SLO = 150 ms/token     (CNN/DailyMail-like)
//
// Length distributions are matched to the public statistics of the
// referenced datasets (HumanEval prompts ≈ 150–450 tokens; Alpaca turns are
// short; CNN/DailyMail articles run to a few thousand tokens), which is the
// only property of the datasets the serving layer observes.
//
// TTFT SLOs follow the interactive targets multi-SLO serving work uses
// (MLPerf-interactive-style: sub-second first token for interactive
// categories, a few seconds for batch-style summarization whose prompts are
// an order of magnitude longer).
func DefaultCategories() []CategorySpec {
	return []CategorySpec{
		{
			Category: request.Coding, App: "coding copilot", Dataset: "HumanEval",
			SLOFactor: 1.2, TTFTSLOAbs: 1.0,
			Prompt: LengthDist{Median: 160, Sigma: 0.45, Min: 32, Max: 1024},
			Output: LengthDist{Median: 90, Sigma: 0.50, Min: 16, Max: 512},
		},
		{
			Category: request.Chat, App: "chatbot", Dataset: "Alpaca",
			SLOAbs: 0.050, TTFTSLOAbs: 1.0,
			Prompt: LengthDist{Median: 60, Sigma: 0.70, Min: 16, Max: 1024},
			Output: LengthDist{Median: 80, Sigma: 0.60, Min: 16, Max: 512},
		},
		{
			Category: request.Summarization, App: "summarization", Dataset: "CNN/DailyMail",
			SLOAbs: 0.150, TTFTSLOAbs: 4.0,
			Prompt: LengthDist{Median: 700, Sigma: 0.40, Min: 256, Max: 4096},
			Output: LengthDist{Median: 80, Sigma: 0.35, Min: 32, Max: 512},
		},
	}
}

// Mix is a probability distribution over the categories.
type Mix [request.NumCategories]float64

// Validate checks the mix sums to ~1.
func (m Mix) Validate() error {
	var s float64
	for _, p := range m {
		if p < 0 {
			return fmt.Errorf("workload: negative mix weight %g", p)
		}
		s += p
	}
	if s < 0.999 || s > 1.001 {
		return fmt.Errorf("workload: mix sums to %g", s)
	}
	return nil
}

// DefaultMix is the end-to-end evaluation mix: 60% category 1, 20% each of
// categories 2 and 3 ("a peak load scenario for latency-critical tasks").
var DefaultMix = Mix{0.6, 0.2, 0.2}

// UrgentMix returns the Figure 10 mix: urgent fraction of category-1
// requests, remainder split evenly between categories 2 and 3.
func UrgentMix(urgent float64) Mix {
	rest := (1 - urgent) / 2
	return Mix{urgent, rest, rest}
}
