package faults

import (
	"fmt"
	"math"

	"adaserve/internal/cluster"
	"adaserve/internal/mathutil"
	"adaserve/internal/metrics"
	"adaserve/internal/request"
	"adaserve/internal/serve"
)

// Recovery selects how the injector responds to the failures it causes.
type Recovery int

const (
	// RecoveryNone injects faults and recovers nothing: lost requests stay
	// lost (the chaos baseline).
	RecoveryNone Recovery = iota
	// RecoveryRetry detects crashes by timeout, harvests the lost requests
	// and re-dispatches each to a surviving replica under a per-request
	// retry budget with exponential backoff; crashed replicas are repaired
	// per the schedule and elastic fleets re-provision replacements.
	RecoveryRetry
	// RecoveryRetryHedge adds hedged re-dispatch: a request whose TTFT
	// deadline is at risk on a suspect (stalled) replica races a duplicate
	// on another replica — first finish wins, the loser is cancelled and
	// billed.
	RecoveryRetryHedge
)

// String implements fmt.Stringer.
func (r Recovery) String() string {
	switch r {
	case RecoveryNone:
		return "none"
	case RecoveryRetry:
		return "retry"
	case RecoveryRetryHedge:
		return "retry+hedge"
	default:
		return fmt.Sprintf("Recovery(%d)", int(r))
	}
}

// ParseRecovery parses a recovery-mode name.
func ParseRecovery(s string) (Recovery, error) {
	switch s {
	case "none":
		return RecoveryNone, nil
	case "retry":
		return RecoveryRetry, nil
	case "retry+hedge", "hedge":
		return RecoveryRetryHedge, nil
	default:
		return 0, fmt.Errorf("faults: unknown recovery mode %q (want none, retry or retry+hedge)", s)
	}
}

// hedgeIDBase offsets hedge-duplicate request IDs past every real request ID
// (and below the delivery-queue ID bases), so duplicates never collide with
// tracked requests and their deliveries order deterministically.
const hedgeIDBase = 1 << 28

// faultDeliveryBase offsets fault-lifecycle delivery IDs past both request
// IDs and the cluster's activation-delivery IDs (1<<30 + seq), so a fault
// instant colliding with a migration or activation orders after it,
// deterministically.
const faultDeliveryBase = 3 << 29

// Options configures the recovery side of an Injector.
type Options struct {
	// Seed drives replica binding, hazard expansion and link-fault coin
	// flips; fault schedules are pure functions of it.
	Seed uint64
	// Horizon bounds hazard expansion (required when the spec has a hazard
	// term; typically the run duration).
	Horizon float64
	// Recovery selects the response mode (default RecoveryNone).
	Recovery Recovery
	// DetectDelay is the failure-detection timeout: the gap between a crash
	// and recovery noticing it from the replica's silent clock (no oracle —
	// injection and detection are separate instants). Default 0.25s.
	DetectDelay float64
	// RetryBudget bounds re-dispatches per request (default 3); Backoff is
	// the first retry's delay, doubling per attempt (default DetectDelay/2).
	RetryBudget int
	Backoff     float64
	// HedgeRisk is the fraction of a request's TTFT SLO after which, still
	// tokenless on a suspect replica, it is hedged (default 0.6).
	HedgeRisk float64
	// SuspectAfter is the clock-divergence patience window (default
	// DetectDelay/2): a replica whose clock has drifted from the fleet's
	// observed time by more than this span is suspect — a straggler's clock
	// lurches ahead of the fleet, a crashed replica's freezes behind it,
	// while a merely loaded replica tracks the fleet closely. Observational
	// only: no oracle, so suspicion can fire before detection confirms a
	// crash.
	SuspectAfter float64
	// HedgeSlots caps concurrently racing duplicates (default 2). A hedge
	// launches only while fewer than this many races still have both copies
	// running, so a straggler's whole backlog cannot convert into a duplicate
	// storm that overloads the healthy replicas it is racing on — the
	// hedge-budget discipline of tail-tolerant systems. A race stops
	// occupying a slot at the winner's first token, when the loser is
	// cancelled, so slots recycle at the healthy replicas' response time.
	HedgeSlots int
}

// fill resolves zero values to defaults.
func (o *Options) fill() {
	if o.DetectDelay == 0 {
		o.DetectDelay = 0.25
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 3
	}
	if o.Backoff == 0 {
		o.Backoff = o.DetectDelay / 2
	}
	if o.HedgeRisk == 0 {
		o.HedgeRisk = 0.6
	}
	if o.SuspectAfter == 0 {
		o.SuspectAfter = o.DetectDelay / 2
	}
	if o.HedgeSlots == 0 {
		o.HedgeSlots = 2
	}
}

// validate rejects unusable options.
func (o Options) validate() error {
	if o.DetectDelay <= 0 {
		return fmt.Errorf("faults: non-positive detect delay %g", o.DetectDelay)
	}
	if o.Backoff <= 0 {
		return fmt.Errorf("faults: non-positive retry backoff %g", o.Backoff)
	}
	if o.RetryBudget < 1 {
		return fmt.Errorf("faults: retry budget %d < 1", o.RetryBudget)
	}
	if o.HedgeRisk <= 0 || o.HedgeRisk > 1 {
		return fmt.Errorf("faults: hedge risk %g outside (0, 1]", o.HedgeRisk)
	}
	if o.SuspectAfter <= 0 {
		return fmt.Errorf("faults: non-positive suspect-after %g", o.SuspectAfter)
	}
	if o.HedgeSlots < 1 {
		return fmt.Errorf("faults: hedge slots %d < 1", o.HedgeSlots)
	}
	return nil
}

// crashRec tracks one injected crash through detection and repair.
type crashRec struct {
	replica  int
	failAt   float64
	repairAt float64
	detected bool
}

// hedgeRec tracks one outstanding hedge race.
type hedgeRec struct {
	orig, shadow *request.Request
	winnerInst   int
	origLost     bool // original harvested off a crashed replica
	shadowWon    bool // original cancelled at the shadow's first token
	resolved     bool
}

// Injector implements serve.FaultInjector over a cluster backend: wire it
// into a run via serve.Options.Faults. It schedules the bound fault events
// on the driver's delivery queue at exact instants, mutates the cluster
// through its fault hooks (Fail/Recover/Redispatch), and drives recovery —
// timeout detection, budgeted retry with exponential backoff, hedged
// re-dispatch — entirely at deterministic event-time instants, so faulted
// runs are reproducible under a fixed seed at any parallelism.
//
// Like the backends it disrupts, an Injector is single-use.
type Injector struct {
	cl      *cluster.Cluster
	spec    Spec
	opts    Options
	events  []Event
	windows []cluster.LinkWindow

	armed   bool
	q       *serve.Queue
	seq     int
	lastNow float64
	pending []serve.FaultAction

	crashes    []*crashRec
	hedges     map[int]*hedgeRec
	hedgeOrder []int

	sum metrics.FaultSummary
}

// New binds a fault spec against a cluster and builds its injector. The
// cluster is armed immediately (failed replicas can leave the routable sets;
// link windows install); injection itself starts when the driver first
// ticks the injector.
func New(cl *cluster.Cluster, spec Spec, opts Options) (*Injector, error) {
	if cl == nil {
		return nil, fmt.Errorf("faults: cluster required")
	}
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	bound, err := spec.Bind(opts.Seed, cl.Size(), opts.Horizon)
	if err != nil {
		return nil, err
	}
	inj := &Injector{
		cl: cl, spec: spec, opts: opts,
		hedges: make(map[int]*hedgeRec),
	}
	for i, ev := range bound {
		if ev.Kind == KindLink {
			inj.windows = append(inj.windows, cluster.LinkWindow{
				From: ev.Time, To: ev.Time + ev.Duration,
				FailProb: ev.FailProb, Factor: ev.Factor,
				Seed: mathutil.Hash2(opts.Seed, 0x117c+uint64(i)),
			})
			continue
		}
		inj.events = append(inj.events, ev)
	}
	cl.ArmFaults()
	cl.SetLinkWindows(inj.windows)
	inj.sum.LinkWindows = len(inj.windows)
	return inj, nil
}

// Summary reports the fault rollup of a completed run; end is the run's
// simulated end time (unrepaired crashes bill unavailability through it).
func (inj *Injector) Summary(end float64) metrics.FaultSummary {
	s := inj.sum
	s.Spec = inj.spec.String()
	s.Recovery = inj.opts.Recovery.String()
	s.TransferFallbacks = inj.cl.LinkFallbacks()
	s.TransferDegraded = inj.cl.LinkDegraded()
	mttr, repaired := 0.0, 0
	for _, rec := range inj.crashes {
		to := rec.repairAt
		if to < 0 {
			to = math.Max(end, rec.failAt)
		}
		s.UnavailableReplicaSeconds += to - rec.failAt
		if rec.repairAt >= 0 {
			mttr += rec.repairAt - rec.failAt
			repaired++
		}
	}
	if repaired > 0 {
		s.MTTR = mttr / float64(repaired)
	}
	return s
}

// OnEvent implements serve.Observer. Suspicion is derived from per-replica
// clocks at tick time, so the injector needs no event state; subscribing
// first still guarantees it could react before downstream controllers.
func (inj *Injector) OnEvent(serve.Event) {}

// Tick implements serve.FaultInjector: the first tick arms the schedule on
// the delivery queue; every tick resolves hedge races, launches new hedges
// for at-risk requests, and drains the actions taken since the last tick.
func (inj *Injector) Tick(now float64, q *serve.Queue) []serve.FaultAction {
	if !inj.armed {
		inj.armed = true
		inj.q = q
		inj.arm()
	}
	if now > inj.lastNow {
		inj.lastNow = now
	}
	if inj.opts.Recovery == RecoveryRetryHedge {
		inj.resolveHedges()
		inj.maybeHedge(now)
	}
	acts := inj.pending
	inj.pending = nil
	return acts
}

// nextID returns the next fault-delivery queue ID.
func (inj *Injector) nextID() int {
	inj.seq++
	return faultDeliveryBase + inj.seq
}

// arm schedules every bound crash and straggler event on the delivery
// queue at its exact instant.
func (inj *Injector) arm() {
	for _, ev := range inj.events {
		ev := ev
		switch ev.Kind {
		case KindCrash:
			inj.q.Schedule(ev.Time, inj.nextID(), func() { inj.injectCrash(ev) })
		case KindSlow:
			inst := inj.cl.Replicas()[ev.Replica].Instance()
			inj.q.Schedule(ev.Time, inj.nextID(), func() {
				inj.sum.Stragglers++
				inst.SetStepScale(ev.Factor)
			})
			inj.q.Schedule(ev.Time+ev.Duration, inj.nextID(), func() { inst.SetStepScale(0) })
		}
	}
}

// injectCrash halts the target replica at the scheduled instant and
// schedules detection (and repair, when the event has one).
func (inj *Injector) injectCrash(ev Event) {
	lost, ok := inj.cl.Fail(ev.Replica, ev.Time)
	if !ok {
		return // already failed or spare: the crash hit nothing
	}
	inj.sum.Crashes++
	rec := &crashRec{replica: ev.Replica, failAt: ev.Time, repairAt: -1}
	inj.crashes = append(inj.crashes, rec)
	inj.pending = append(inj.pending, serve.FaultAction{
		Kind: serve.FaultReplicaFailed, Time: ev.Time, Instance: ev.Replica,
		Lost: lost, Reason: "injected crash",
	})
	detectAt := ev.Time + inj.opts.DetectDelay
	inj.q.Schedule(detectAt, inj.nextID(), func() { inj.detect(rec, detectAt) })
	if ev.Duration > 0 {
		repairAt := ev.Time + ev.Duration
		inj.q.Schedule(repairAt, inj.nextID(), func() { inj.repair(rec, repairAt) })
	}
}

// detect fires when the replica's silence exceeds the detection timeout: the
// frozen pool is harvested — its requests are lost with the replica's KV —
// and, under retry recovery, each loss is requeued with backoff. A request
// with a live hedge skips the requeue: the racing duplicate is its recovery.
func (inj *Injector) detect(rec *crashRec, now float64) {
	if rec.detected {
		return
	}
	rec.detected = true
	for _, r := range inj.cl.HarvestFailed(rec.replica) {
		if r.ID >= hedgeIDBase {
			// A hedge duplicate died with the replica it raced on: the
			// original falls back to ordinary recovery — unless it is still
			// racing somewhere, in which case it simply wins by forfeit.
			if h := inj.hedges[r.ID-hedgeIDBase]; h != nil && !h.resolved {
				h.resolved = true
				if (h.origLost || h.shadowWon) && h.orig.Phase != request.Done {
					inj.scheduleRetry(h.orig, now)
				}
			}
			continue
		}
		inj.sum.LostRequests++
		if h := inj.hedges[r.ID]; h != nil && !h.resolved {
			h.origLost = true // the live duplicate is the recovery path
			continue
		}
		inj.scheduleRetry(r, now)
	}
}

// scheduleRetry queues a lost request's next re-dispatch after its
// exponential backoff, or drops it when the budget is spent.
func (inj *Injector) scheduleRetry(r *request.Request, now float64) {
	if inj.opts.Recovery == RecoveryNone {
		return
	}
	attempt := r.Retries + 1
	if attempt > inj.opts.RetryBudget {
		inj.sum.Dropped++
		return
	}
	ready := now + inj.opts.Backoff*math.Pow(2, float64(attempt-1))
	inj.q.Schedule(ready, r.ID, func() { inj.redispatch(r, ready) })
}

// redispatch re-enters a lost request from scratch on a surviving replica.
func (inj *Injector) redispatch(r *request.Request, now float64) {
	if r.Phase == request.Done {
		return // a hedge resolved it while the retry waited
	}
	r.ResetForRetry()
	in, err := inj.cl.Redispatch(r, now, -1)
	if err != nil {
		// No routable replica right now (mass outage): burn the attempt and
		// back off again.
		inj.scheduleRetry(r, now)
		return
	}
	inj.sum.Retried++
	inj.pending = append(inj.pending, serve.FaultAction{
		Kind: serve.FaultRequestRetried, Time: now, Instance: in.ID(),
		Req: r, Attempt: r.Retries,
	})
}

// repair returns a crashed replica to service at the scheduled instant.
// Repair implies detection (the repair crew found the corpse): a not-yet-
// fired detection runs first so stranded requests recover rather than
// resurrecting with stale state.
func (inj *Injector) repair(rec *crashRec, now float64) {
	if rec.repairAt >= 0 {
		return
	}
	inj.detect(rec, now)
	if _, ok := inj.cl.Recover(rec.replica, now); !ok {
		return
	}
	rec.repairAt = now
	inj.sum.Repairs++
	inj.pending = append(inj.pending, serve.FaultAction{
		Kind: serve.FaultReplicaRecovered, Time: now, Instance: rec.replica,
		Downtime: now - rec.failAt,
	})
}

// resolveHedges settles races in launch order: the first copy to respond —
// to commit a token — wins, and the loser is cancelled immediately (evicted,
// but billed for the capacity it consumed). Cancelling at first token rather
// than completion bounds the duplicate's cost to queueing plus prefill; full
// double-decode would let a hedge storm starve the healthy replicas of the
// very capacity the hedges came for. A winning shadow's original is
// cancelled at once, and the shadow's outcome is handed back to it at
// completion via the cluster's adoption path, so the driver still emits the
// original's lifecycle events.
func (inj *Injector) resolveHedges() {
	for _, id := range inj.hedgeOrder {
		h := inj.hedges[id]
		if h == nil || h.resolved {
			continue
		}
		if h.origLost || h.shadowWon {
			// The shadow runs alone (the original crashed away or was
			// cancelled at the shadow's first token): adopt at completion.
			if h.shadow.Phase == request.Done {
				inj.cl.AdoptOutcome(h.orig, h.shadow, h.winnerInst)
				h.resolved = true
			}
			continue
		}
		origTok := h.orig.FirstTokenTime >= 0
		shadTok := h.shadow.FirstTokenTime >= 0
		switch {
		case h.orig.Phase == request.Done,
			origTok && (!shadTok || h.orig.FirstTokenTime <= h.shadow.FirstTokenTime):
			// The original responded first (ties break its way — it keeps
			// its billing span): the duplicate is cancelled.
			inj.cl.Evict(h.shadow)
			inj.sum.DuplicateCancelled++
			h.resolved = true
		case shadTok:
			inj.cl.Evict(h.orig)
			inj.sum.DuplicateCancelled++
			if h.shadow.Phase == request.Done {
				inj.cl.AdoptOutcome(h.orig, h.shadow, h.winnerInst)
				h.resolved = true
			} else {
				h.shadowWon = true
			}
		}
	}
}

// maybeHedge launches duplicates for TTFT-at-risk requests on suspect
// replicas. A replica is suspect when its clock has diverged from the
// fleet's observed time — the minimum clock over active working replicas —
// by more than SuspectAfter: a straggler's clock lurches ahead by its
// inflated iterations, a crashed replica's freezes while the fleet runs on.
// Of a suspect replica's resident requests, those still tokenless past the
// HedgeRisk fraction of their TTFT SLO get a duplicate raced on a healthy
// replica, budgeted by the HedgeSlots cap on concurrent races. Both signals
// are per-replica clocks: no failure oracle.
func (inj *Injector) maybeHedge(now float64) {
	slots := inj.opts.HedgeSlots
	for _, h := range inj.hedges {
		if !h.resolved && !h.origLost && !h.shadowWon {
			slots--
		}
	}
	if slots <= 0 {
		return
	}
	reps := inj.cl.Replicas()
	fleetNow := -1.0
	activeOthers := make([]int, len(reps))
	for i, rep := range reps {
		if rep.State() != cluster.StateActive {
			continue
		}
		for j := range reps {
			if j != i {
				activeOthers[j]++
			}
		}
		pool := rep.System().Pool()
		if rep.Instance().Halted() || pool.NumWaiting()+pool.NumRunning() == 0 {
			continue
		}
		if c := rep.Clock(); fleetNow < 0 || c < fleetNow {
			fleetNow = c
		}
	}
	if fleetNow < 0 {
		fleetNow = now
	}
	for i, rep := range reps {
		if activeOthers[i] == 0 {
			continue // nowhere to race a duplicate
		}
		pool := rep.System().Pool()
		if pool.NumWaiting()+pool.NumRunning() == 0 {
			continue
		}
		// The replica-level gate: a healthy replica's clock tracks the fleet
		// (the driver always serves whoever is furthest behind), so a clock
		// diverging past the patience window marks a fault — a straggler's
		// lurches ahead by its inflated iteration, a crashed replica's freezes
		// while the fleet runs on. Mere queueing delay never diverges the
		// clock, so loaded-but-healthy replicas are not suspect and hedging
		// cannot storm a saturated fleet with duplicates.
		if math.Abs(rep.Clock()-fleetNow) <= inj.opts.SuspectAfter {
			continue
		}
		obs := math.Max(rep.Clock(), fleetNow) // earliest instant this replica could serve its queue
		inj.hedgePool(pool.Waiting(), i, obs, fleetNow, &slots)
		inj.hedgePool(pool.Running(), i, obs, fleetNow, &slots)
		if slots <= 0 {
			return
		}
	}
}

// hedgePool races duplicates for the at-risk requests of one suspect
// replica's pool slice: obs is the replica's observed service time, at is
// the launch instant for the duplicates, slots the remaining hedge budget.
func (inj *Injector) hedgePool(reqs []*request.Request, suspect int, obs, at float64, slots *int) {
	for _, r := range reqs {
		if *slots <= 0 {
			return
		}
		if r.ID >= hedgeIDBase || r.TTFTSLO <= 0 || r.FirstTokenTime >= 0 {
			continue
		}
		if inj.hedges[r.ID] != nil {
			continue
		}
		if obs <= r.ArrivalTime+inj.opts.SuspectAfter {
			continue // too fresh to have been hurt by the divergence
		}
		if obs <= r.ArrivalTime+inj.opts.HedgeRisk*r.TTFTSLO {
			continue // deadline not yet at risk
		}
		shadow := r.Clone()
		shadow.ID = hedgeIDBase + r.ID
		in, err := inj.cl.Redispatch(shadow, at, suspect)
		if err != nil {
			return // nowhere to race: every other replica is down too
		}
		inj.hedges[r.ID] = &hedgeRec{orig: r, shadow: shadow, winnerInst: in.ID()}
		inj.hedgeOrder = append(inj.hedgeOrder, r.ID)
		inj.sum.Hedged++
		*slots--
		inj.pending = append(inj.pending, serve.FaultAction{
			Kind: serve.FaultRequestHedged, Time: at, Instance: in.ID(), Req: r,
		})
	}
}
