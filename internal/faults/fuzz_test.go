package faults

import (
	"reflect"
	"testing"
)

// FuzzFaultSpec checks that any accepted spec renders canonically: parse →
// String → parse is the identity, and String is a fixed point. Rejections
// must come back as errors, never panics.
func FuzzFaultSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"crash@5",
		"crash@5+2:r1",
		"slow@1+2:x3",
		"slow@1.25+2:r3:x1.5",
		"link@1+2:p0.5",
		"link@2+3:p0.25:x2",
		"hazard@0.01+5",
		"crash@5; slow@1+2:x3; link@1+2:p1; hazard@0.1+3",
		"crash@1e-3",
		"crash@5:q1",
		"slow@1+2:x0.5",
		"hazard@0.1; hazard@1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSpec(in)
		if err != nil {
			return
		}
		rendered := s.String()
		back, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", rendered, in, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("round trip of %q changed the spec:\n  first:  %+v\n  second: %+v", in, s, back)
		}
		if again := back.String(); again != rendered {
			t.Fatalf("String is not a fixed point for %q: %q then %q", in, rendered, again)
		}
	})
}
