package faults

import (
	"reflect"
	"testing"

	"adaserve/internal/cluster"
	"adaserve/internal/gpu"
	"adaserve/internal/lm"
	"adaserve/internal/request"
	"adaserve/internal/sched"
	"adaserve/internal/serve"
)

// fakeSystem is a minimal sched.System for injector tests (the same idiom as
// the cluster package's driver-test fake): it admits every waiting request,
// finishes prefill in one iteration, and commits one token per running
// request per iteration. prefillOnly systems never commit output tokens, so
// they model a disaggregated prefill replica.
type fakeSystem struct {
	name        string
	pool        *request.Pool
	prefillOnly bool
}

func newFake(name string, prefillOnly bool) *fakeSystem {
	return &fakeSystem{name: name, pool: request.NewPool(), prefillOnly: prefillOnly}
}

func (f *fakeSystem) Name() string             { return f.name }
func (f *fakeSystem) Pool() *request.Pool      { return f.pool }
func (f *fakeSystem) Release(*request.Request) {}

func (f *fakeSystem) Iterate(now float64) sched.IterationStats {
	for _, r := range append([]*request.Request(nil), f.pool.Waiting()...) {
		f.pool.Admit(r, now)
	}
	running := f.pool.Running()
	work := false
	for _, r := range running {
		if !f.prefillOnly || r.Phase == request.Prefilling {
			work = true
		}
	}
	if !work {
		return sched.IterationStats{Idle: true}
	}
	elapsed := 0.010 + 0.001*float64(len(running))
	end := now + elapsed
	committed := 0
	for _, r := range running {
		if r.Phase == request.Prefilling {
			r.PrefillDone = r.PromptLen
			r.Phase = request.Decoding
		}
		if f.prefillOnly {
			continue
		}
		if r.FirstDecodeTime < 0 {
			r.FirstDecodeTime = now
		}
		committed += r.Commit([]lm.Token{lm.Token(r.ID)}, end)
	}
	f.pool.Finish()
	return sched.IterationStats{Elapsed: elapsed, VerifyTime: elapsed, TokensCommitted: committed}
}

func staticFakes(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	systems := make([]sched.System, n)
	for i := range systems {
		systems[i] = newFake("fake", false)
	}
	cl, err := cluster.New(systems, cluster.NewRoundRobin())
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func mkReqs(n int, gap float64, output int, ttft float64) []*request.Request {
	reqs := make([]*request.Request, n)
	for i := range reqs {
		reqs[i] = request.New(i, request.Chat, 0.05, float64(i)*gap, 16, output, uint64(i)*7+1)
		reqs[i].TTFTSLO = ttft
	}
	return reqs
}

// runFaulted drives a faulted run end to end and returns everything the
// assertions need.
func runFaulted(t *testing.T, cl *cluster.Cluster, spec string, opts Options, reqs []*request.Request) (*Injector, *serve.Result, []serve.Event) {
	t.Helper()
	sp, err := ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := New(cl, sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(cl, serve.Options{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	var events []serve.Event
	srv.Subscribe(serve.ObserverFunc(func(ev serve.Event) { events = append(events, ev) }))
	src, err := serve.NewTraceSource(reqs)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := srv.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	return inj, rr, events
}

func countEvents(events []serve.Event) map[string]int {
	n := map[string]int{}
	for _, ev := range events {
		switch ev.(type) {
		case serve.ReplicaFailed:
			n["failed"]++
		case serve.ReplicaRecovered:
			n["recovered"]++
		case serve.RequestRetried:
			n["retried"]++
		case serve.RequestHedged:
			n["hedged"]++
		}
	}
	return n
}

func TestCrashWithoutRecoveryLosesRequests(t *testing.T) {
	reqs := mkReqs(16, 0.01, 6, 0)
	inj, rr, events := runFaulted(t, staticFakes(t, 2), "crash@0.06:r0",
		Options{Seed: 7, Recovery: RecoveryNone, DetectDelay: 0.05, Backoff: 0.02}, reqs)

	lost := 0
	for _, r := range reqs {
		if r.Phase != request.Done {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("no requests lost despite an unrepaired crash with no recovery")
	}
	sum := inj.Summary(rr.EndTime)
	if sum.Crashes != 1 || sum.Repairs != 0 || sum.LostRequests != lost || sum.Retried != 0 {
		t.Fatalf("fault summary %+v, want 1 crash and %d lost", sum, lost)
	}
	if sum.Recovery != "none" || sum.Spec != "crash@0.06:r0" {
		t.Fatalf("summary identity wrong: %+v", sum)
	}
	if sum.UnavailableReplicaSeconds < rr.EndTime-0.06-1e-9 {
		t.Fatalf("unavailability %g, want at least end-crash = %g", sum.UnavailableReplicaSeconds, rr.EndTime-0.06)
	}
	if n := countEvents(events); n["failed"] != 1 || n["recovered"] != 0 || n["retried"] != 0 {
		t.Fatalf("event counts %v", n)
	}
}

func TestCrashWithRetryRecoversEveryRequest(t *testing.T) {
	reqs := mkReqs(16, 0.01, 6, 0)
	inj, rr, events := runFaulted(t, staticFakes(t, 2), "crash@0.06+0.8:r0",
		Options{Seed: 7, Recovery: RecoveryRetry, DetectDelay: 0.05, Backoff: 0.02}, reqs)

	retried := 0
	for _, r := range reqs {
		if r.Phase != request.Done {
			t.Fatalf("request %d not recovered: phase %s", r.ID, r.Phase)
		}
		if r.Retries > 0 {
			retried++
			if r.OutputLen() != 6 {
				t.Fatalf("retried request %d finished with %d tokens", r.ID, r.OutputLen())
			}
		}
	}
	if retried == 0 {
		t.Fatal("crash lost nothing — the scenario tests no recovery path")
	}
	sum := inj.Summary(rr.EndTime)
	if sum.Crashes != 1 || sum.Repairs != 1 || sum.Retried != retried || sum.Dropped != 0 {
		t.Fatalf("fault summary %+v, want 1 repaired crash and %d retried", sum, retried)
	}
	if sum.MTTR < 0.8-1e-9 || sum.MTTR > 0.8+1e-9 {
		t.Fatalf("MTTR %g, want 0.8", sum.MTTR)
	}
	if sum.UnavailableReplicaSeconds < 0.8-1e-9 || sum.UnavailableReplicaSeconds > 0.8+1e-9 {
		t.Fatalf("unavailability %g, want the repair window 0.8", sum.UnavailableReplicaSeconds)
	}
	n := countEvents(events)
	if n["failed"] != 1 || n["recovered"] != 1 || n["retried"] != retried {
		t.Fatalf("event counts %v, want 1 failed / 1 recovered / %d retried", n, retried)
	}
	// Detection is timeout-based: the retry events stamp after crash+detect.
	for _, ev := range events {
		if e, ok := ev.(serve.RequestRetried); ok && e.When() < 0.06+0.05 {
			t.Fatalf("retry at %g, before detection at %g", e.When(), 0.11)
		}
	}
}

func TestRetryBudgetDropsRequests(t *testing.T) {
	// A single replica that crashes and never repairs: retries have nowhere
	// to land, burn their budget against the outage and drop.
	reqs := mkReqs(4, 0.005, 6, 0)
	inj, rr, _ := runFaulted(t, staticFakes(t, 1), "crash@0.03:r0",
		Options{Seed: 7, Recovery: RecoveryRetry, DetectDelay: 0.02, Backoff: 0.01, RetryBudget: 2}, reqs)
	sum := inj.Summary(rr.EndTime)
	if sum.LostRequests == 0 || sum.Dropped != sum.LostRequests {
		t.Fatalf("fault summary %+v, want every lost request dropped", sum)
	}
	for _, r := range reqs {
		if r.Phase == request.Done && r.ArrivalTime >= 0.03 {
			t.Fatalf("request %d finished on a dead cluster", r.ID)
		}
	}
}

func TestStragglerHedgingCutsWorstCaseTTFT(t *testing.T) {
	run := func(rec Recovery) (*Injector, *serve.Result, []serve.Event, []*request.Request, float64) {
		reqs := mkReqs(10, 0.01, 6, 0.1)
		inj, rr, events := runFaulted(t, staticFakes(t, 2), "slow@0.005+2:r0:x100",
			Options{Seed: 7, Recovery: rec, DetectDelay: 0.05, Backoff: 0.02,
				SuspectAfter: 0.03, HedgeRisk: 0.5}, reqs)
		maxTTFT := 0.0
		for _, r := range reqs {
			if ttft := r.TTFT(); ttft > maxTTFT {
				maxTTFT = ttft
			}
		}
		return inj, rr, events, reqs, maxTTFT
	}

	_, _, _, baseReqs, baseMax := run(RecoveryNone)
	for _, r := range baseReqs {
		if r.Phase != request.Done {
			t.Fatalf("straggler baseline lost request %d (stragglers lose nothing)", r.ID)
		}
	}
	inj, rr, events, hedgeReqs, hedgeMax := run(RecoveryRetryHedge)
	for _, r := range hedgeReqs {
		if r.Phase != request.Done {
			t.Fatalf("hedged run lost request %d", r.ID)
		}
	}
	sum := inj.Summary(rr.EndTime)
	if sum.Stragglers != 1 || sum.Crashes != 0 {
		t.Fatalf("fault summary %+v, want exactly the straggler window", sum)
	}
	if sum.Hedged == 0 || sum.DuplicateCancelled != sum.Hedged {
		t.Fatalf("fault summary %+v, want every hedge race resolved", sum)
	}
	if n := countEvents(events); n["hedged"] != sum.Hedged {
		t.Fatalf("event counts %v vs summary %d hedges", n, sum.Hedged)
	}
	if hedgeMax >= baseMax {
		t.Fatalf("hedging did not cut worst-case TTFT: %g vs baseline %g", hedgeMax, baseMax)
	}
}

func TestLinkFaultFallsBackToRecompute(t *testing.T) {
	mk := func() *cluster.Cluster {
		systems := []sched.System{newFake("p", true), newFake("d", false)}
		transfer := gpu.KVTransfer{Model: gpu.Llama1B,
			Link: gpu.Interconnect{Name: "test", Bandwidth: 1e15, Latency: 1e-4}}
		cl, err := cluster.NewWithRoles(systems, []cluster.Role{cluster.RolePrefill, cluster.RoleDecode},
			cluster.NewRoundRobin(), transfer)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	reqs := mkReqs(6, 0.01, 4, 0)
	inj, rr, _ := runFaulted(t, mk(), "link@0+10:p1:x3",
		Options{Seed: 7, Recovery: RecoveryNone, DetectDelay: 0.05, Backoff: 0.02}, reqs)
	for _, r := range reqs {
		if r.Phase != request.Done || r.OutputLen() != 4 {
			t.Fatalf("request %d phase %s len %d", r.ID, r.Phase, r.OutputLen())
		}
		if !r.Recompute {
			t.Fatalf("request %d finished without the recompute fallback", r.ID)
		}
	}
	sum := inj.Summary(rr.EndTime)
	if sum.TransferFallbacks != 6 || sum.TransferDegraded != 6 || sum.LinkWindows != 1 {
		t.Fatalf("fault summary %+v, want 6 fallbacks over 1 window", sum)
	}
}

func TestFaultedRunDeterminism(t *testing.T) {
	run := func() (*serve.Result, []int, []float64) {
		reqs := mkReqs(16, 0.01, 6, 0.1)
		_, rr, _ := runFaulted(t, staticFakes(t, 3), "crash@0.05+0.5; slow@0.02+0.3:x5",
			Options{Seed: 11, Recovery: RecoveryRetryHedge, DetectDelay: 0.04, Backoff: 0.02,
				SuspectAfter: 0.03, HedgeRisk: 0.5}, reqs)
		retries := make([]int, len(reqs))
		done := make([]float64, len(reqs))
		for i, r := range reqs {
			retries[i] = r.Retries
			done[i] = r.DoneTime
		}
		return rr, retries, done
	}
	r1, ret1, done1 := run()
	r2, ret2, done2 := run()
	if r1.EndTime != r2.EndTime || r1.Iterations != r2.Iterations || r1.Events != r2.Events {
		t.Fatalf("faulted runs diverged: (%g,%d,%d) vs (%g,%d,%d)",
			r1.EndTime, r1.Iterations, r1.Events, r2.EndTime, r2.Iterations, r2.Events)
	}
	if !reflect.DeepEqual(ret1, ret2) || !reflect.DeepEqual(done1, done2) {
		t.Fatal("per-request fault outcomes diverged between identical runs")
	}
}

func TestInjectorOptionValidation(t *testing.T) {
	cl := staticFakes(t, 2)
	if _, err := New(nil, Spec{}, Options{}); err == nil {
		t.Error("accepted nil cluster")
	}
	if _, err := New(cl, Spec{}, Options{DetectDelay: -1}); err == nil {
		t.Error("accepted negative detect delay")
	}
	if _, err := New(cl, Spec{}, Options{Backoff: -1}); err == nil {
		t.Error("accepted negative backoff")
	}
	if _, err := New(cl, Spec{}, Options{RetryBudget: -2}); err == nil {
		t.Error("accepted negative retry budget")
	}
	if _, err := New(cl, Spec{}, Options{HedgeRisk: 1.5}); err == nil {
		t.Error("accepted hedge risk above 1")
	}
	if _, err := New(cl, Spec{}, Options{SuspectAfter: -1}); err == nil {
		t.Error("accepted negative suspect-after")
	}
	// A hazard spec needs a horizon.
	sp, _ := ParseSpec("hazard@0.1+1")
	if _, err := New(cl, sp, Options{}); err == nil {
		t.Error("accepted hazard without horizon")
	}
	// Valid options arm the cluster immediately.
	if _, err := New(cl, Spec{}, Options{Horizon: 10}); err != nil {
		t.Errorf("rejected valid options: %v", err)
	}
	if !cl.FaultsArmed() {
		t.Error("New did not arm the cluster")
	}
}
