package faults

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSpecValid(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Spec
	}{
		{"", Spec{}},
		{"crash@5", Spec{Events: []Event{{Kind: KindCrash, Time: 5, Replica: -1}}}},
		{"crash@5+2:r1", Spec{Events: []Event{{Kind: KindCrash, Time: 5, Duration: 2, Replica: 1}}}},
		{"slow@1+2:x3", Spec{Events: []Event{{Kind: KindSlow, Time: 1, Duration: 2, Replica: -1, Factor: 3}}}},
		{"slow@1+2:r0:x1.5", Spec{Events: []Event{{Kind: KindSlow, Time: 1, Duration: 2, Replica: 0, Factor: 1.5}}}},
		{"link@1+2:p0.5", Spec{Events: []Event{{Kind: KindLink, Time: 1, Duration: 2, Replica: -1, FailProb: 0.5}}}},
		{"link@1+2:p0:x4", Spec{Events: []Event{{Kind: KindLink, Time: 1, Duration: 2, Replica: -1, Factor: 4}}}},
		{"hazard@0.1+3", Spec{Hazard: &Hazard{Rate: 0.1, MTTR: 3}}},
		{"hazard@0.1", Spec{Hazard: &Hazard{Rate: 0.1}}},
		{" crash@5 ; slow@1+2:x3 ", Spec{Events: []Event{
			{Kind: KindCrash, Time: 5, Replica: -1},
			{Kind: KindSlow, Time: 1, Duration: 2, Replica: -1, Factor: 3},
		}}},
	} {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// The canonical rendering must reparse to the same value.
		back, err := ParseSpec(got.String())
		if err != nil {
			t.Errorf("reparse of %q (from %q): %v", got.String(), tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, back) {
			t.Errorf("round trip of %q changed the spec: %+v vs %+v", tc.in, got, back)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, bad := range []string{
		"crash",                // no @time
		"crash@",               // empty time
		"crash@-1",             // negative time
		"crash@NaN",            // non-finite time
		"crash@Inf",            // non-finite time
		"crash@5:x2",           // crash takes no factor
		"crash@5:p0.5",         // crash takes no probability
		"crash@5:q1",           // unknown option
		"crash@5:",             // empty option
		"crash@5:r-1",          // negative replica
		"crash@5:rx",           // non-numeric replica
		"slow@1:x3",            // slow needs a duration
		"slow@1+0:x3",          // zero-length window
		"slow@1+2",             // no factor
		"slow@1+2:x1",          // factor must exceed 1
		"slow@1+2:x3:p0.5",     // slow takes no probability
		"link@1:p0.5",          // link needs a duration
		"link@1+2",             // needs p or x
		"link@1+2:p2",          // probability above 1
		"link@1+2:p0.5:r1",     // link is cluster-wide
		"link@1+2:x0.5",        // degrade factor must exceed 1
		"hazard@0+1",           // rate must be positive
		"hazard@0.1:r1",        // hazard takes no options
		"hazard@0.1; hazard@1", // duplicate hazard
		"flood@1",              // unknown kind
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecString(t *testing.T) {
	s, err := ParseSpec("slow@1.25+2:r3:x1.5; crash@10+0.5; link@2+3:p0.25:x2; hazard@0.01+5")
	if err != nil {
		t.Fatal(err)
	}
	want := "slow@1.25+2:r3:x1.5; crash@10+0.5; link@2+3:p0.25:x2; hazard@0.01+5"
	if got := s.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if Empty := (Spec{}).Empty(); !Empty || s.Empty() {
		t.Fatal("Empty() wrong")
	}
}

func TestBindResolvesAndSorts(t *testing.T) {
	s, err := ParseSpec("crash@5; slow@1+2:x3; crash@1+1:r2")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := s.Bind(7, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bound) != 3 {
		t.Fatalf("bound %d events, want 3", len(bound))
	}
	for i, e := range bound {
		if e.Replica < 0 || e.Replica >= 4 {
			t.Fatalf("event %d bound to replica %d", i, e.Replica)
		}
		if i > 0 && bound[i-1].Time > e.Time {
			t.Fatalf("bound schedule unsorted at %d", i)
		}
	}
	// Binding is a pure function of (spec, seed, replicas, horizon).
	again, _ := s.Bind(7, 4, 0)
	if !reflect.DeepEqual(bound, again) {
		t.Fatal("bind not deterministic")
	}
	other, _ := s.Bind(8, 4, 0)
	if reflect.DeepEqual(bound, other) {
		t.Fatal("bind ignores the seed")
	}
	// Explicit out-of-range targets are rejected.
	if _, err := s.Bind(7, 2, 0); err == nil {
		t.Fatal("bound replica 2 on a 2-replica fleet")
	}
}

func TestBindExpandsHazard(t *testing.T) {
	s, err := ParseSpec("hazard@0.5+2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Bind(7, 4, 0); err == nil {
		t.Fatal("hazard bound without a horizon")
	}
	bound, err := s.Bind(7, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(bound) < 20 || len(bound) > 120 {
		t.Fatalf("rate 0.5 over 100s expanded to %d crashes", len(bound))
	}
	for i, e := range bound {
		if e.Kind != KindCrash || e.Duration != 2 || e.Time >= 100 {
			t.Fatalf("hazard event %d wrong: %+v", i, e)
		}
		if i > 0 && bound[i-1].Time > e.Time {
			t.Fatalf("hazard schedule unsorted at %d", i)
		}
	}
	again, _ := s.Bind(7, 4, 100)
	if !reflect.DeepEqual(bound, again) {
		t.Fatal("hazard expansion not deterministic")
	}
}

func TestParseRecovery(t *testing.T) {
	for in, want := range map[string]Recovery{
		"none": RecoveryNone, "retry": RecoveryRetry,
		"retry+hedge": RecoveryRetryHedge, "hedge": RecoveryRetryHedge,
	} {
		got, err := ParseRecovery(in)
		if err != nil || got != want {
			t.Errorf("ParseRecovery(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParseRecovery("prayer"); err == nil || !strings.Contains(err.Error(), "prayer") {
		t.Fatalf("ParseRecovery accepted garbage: %v", err)
	}
	if RecoveryRetryHedge.String() != "retry+hedge" || Recovery(9).String() != "Recovery(9)" {
		t.Fatal("Recovery.String wrong")
	}
	if KindLink.String() != "link" || Kind(9).String() != "Kind(9)" {
		t.Fatal("Kind.String wrong")
	}
}
