// Package faults is the deterministic fault-injection and recovery subsystem
// over the event-driven cluster: a seed-scheduled Spec of replica crashes,
// straggler windows and KV-transfer link faults, and an Injector that drives
// injection and recovery (timeout detection, retry with backoff, hedged
// re-dispatch, failover) through the serve driver's delivery queue at exact
// event-time instants. Schedules are pure functions of the seed, so faulted
// runs stay byte-identical at any -parallel width.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"adaserve/internal/mathutil"
)

// Kind discriminates fault events.
type Kind int

const (
	// KindCrash halts a replica abruptly at Time, losing its resident
	// requests and KV; Duration is the repair delay (0: never repaired).
	KindCrash Kind = iota
	// KindSlow multiplies one replica's iteration step time by Factor for
	// the window [Time, Time+Duration).
	KindSlow
	// KindLink degrades the prefill-to-decode KV-transfer link for the
	// window [Time, Time+Duration): migrations fail with probability
	// FailProb (prompt KV lost in flight, recomputed on the destination)
	// and surviving transfers pay Factor× latency when Factor > 1.
	KindLink
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindSlow:
		return "slow"
	case KindLink:
		return "link"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	Kind Kind
	// Time is the injection instant in simulated seconds.
	Time float64
	// Duration is the slow/link window length, or the crash repair delay
	// (0: the crash is never repaired).
	Duration float64
	// Replica is the target replica ID; -1 binds deterministically from the
	// seed at Bind time. Link faults are cluster-wide (always -1).
	Replica int
	// Factor is the slow-down multiplier (slow: > 1; link: ≥ 1 latency
	// degradation on surviving transfers, 0 meaning none).
	Factor float64
	// FailProb is the link fault's per-migration loss probability.
	FailProb float64
}

// Hazard derives crash events from a seeded exponential process instead of
// explicit instants: crashes arrive at Rate per second (expanded over the
// bind horizon), each repaired after MTTR (0: never).
type Hazard struct {
	Rate float64
	MTTR float64
}

// Spec is a parsed fault schedule: explicit events plus an optional hazard
// process, both bound to concrete replicas by Bind.
type Spec struct {
	Events []Event
	Hazard *Hazard
}

// num renders a float in the canonical spec form: shortest exact decimal,
// never exponent notation (so String output always reparses).
func num(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// String renders the canonical spec: terms joined by "; ", options in fixed
// order, numbers in shortest exact decimal form. ParseSpec(s.String()) is
// the identity on parsed values.
func (s Spec) String() string {
	var terms []string
	for _, e := range s.Events {
		var b strings.Builder
		b.WriteString(e.Kind.String())
		b.WriteByte('@')
		b.WriteString(num(e.Time))
		if e.Kind != KindCrash || e.Duration > 0 {
			b.WriteByte('+')
			b.WriteString(num(e.Duration))
		}
		if e.Kind != KindLink && e.Replica >= 0 {
			b.WriteString(":r")
			b.WriteString(strconv.Itoa(e.Replica))
		}
		if e.Kind == KindLink {
			b.WriteString(":p")
			b.WriteString(num(e.FailProb))
		}
		if e.Kind == KindSlow || (e.Kind == KindLink && e.Factor > 1) {
			b.WriteString(":x")
			b.WriteString(num(e.Factor))
		}
		terms = append(terms, b.String())
	}
	if s.Hazard != nil {
		terms = append(terms, "hazard@"+num(s.Hazard.Rate)+"+"+num(s.Hazard.MTTR))
	}
	return strings.Join(terms, "; ")
}

// parseNum parses a finite, non-negative spec number.
func parseNum(s, what string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("faults: bad %s %q", what, s)
	}
	return v, nil
}

// ParseSpec parses a fault-schedule spec string: ";"-separated terms, each
//
//	crash@T[+R][:rN]     crash at T, repaired after R (omitted: never), on
//	                     replica N (omitted: seed-bound at Bind time)
//	slow@T+D[:rN]:xF     straggler: replica N runs F× slower over [T, T+D)
//	link@T+D:pP[:xF]     KV-transfer link fault over [T, T+D): migrations
//	                     fail with probability P, survivors pay F× latency
//	hazard@R+M           seeded exponential crash process: rate R per
//	                     second, each crash repaired after M (0: never)
//
// An empty spec is valid (no faults). Whitespace around terms is ignored.
func ParseSpec(spec string) (Spec, error) {
	var s Spec
	for _, term := range strings.Split(spec, ";") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		kind, rest, ok := strings.Cut(term, "@")
		if !ok {
			return Spec{}, fmt.Errorf("faults: bad term %q (want kind@time...)", term)
		}
		parts := strings.Split(rest, ":")
		head, opts := parts[0], parts[1:]
		t, dur := head, ""
		if at := strings.IndexByte(head, '+'); at >= 0 {
			t, dur = head[:at], head[at+1:]
		}
		tv, err := parseNum(t, "time")
		if err != nil {
			return Spec{}, err
		}
		dv := 0.0
		if dur != "" {
			if dv, err = parseNum(dur, "duration"); err != nil {
				return Spec{}, err
			}
		}
		ev := Event{Time: tv, Duration: dv, Replica: -1}
		for _, opt := range opts {
			if opt == "" {
				return Spec{}, fmt.Errorf("faults: empty option in %q", term)
			}
			val := opt[1:]
			switch opt[0] {
			case 'r':
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return Spec{}, fmt.Errorf("faults: bad replica %q in %q", val, term)
				}
				ev.Replica = n
			case 'x':
				if ev.Factor, err = parseNum(val, "factor"); err != nil {
					return Spec{}, err
				}
			case 'p':
				if ev.FailProb, err = parseNum(val, "probability"); err != nil {
					return Spec{}, err
				}
			default:
				return Spec{}, fmt.Errorf("faults: unknown option %q in %q", opt, term)
			}
		}
		switch kind {
		case "crash":
			if ev.Factor != 0 || ev.FailProb != 0 {
				return Spec{}, fmt.Errorf("faults: crash takes no :x/:p option in %q", term)
			}
			ev.Kind = KindCrash
		case "slow":
			if dur == "" || dv <= 0 {
				return Spec{}, fmt.Errorf("faults: slow needs a positive +duration in %q", term)
			}
			if ev.Factor <= 1 {
				return Spec{}, fmt.Errorf("faults: slow needs a slowdown factor :x > 1 in %q", term)
			}
			if ev.FailProb != 0 {
				return Spec{}, fmt.Errorf("faults: slow takes no :p option in %q", term)
			}
			ev.Kind = KindSlow
		case "link":
			if dur == "" || dv <= 0 {
				return Spec{}, fmt.Errorf("faults: link needs a positive +duration in %q", term)
			}
			if ev.Replica >= 0 {
				return Spec{}, fmt.Errorf("faults: link faults are cluster-wide (no :r option) in %q", term)
			}
			if ev.FailProb > 1 {
				return Spec{}, fmt.Errorf("faults: link probability %g > 1 in %q", ev.FailProb, term)
			}
			if ev.Factor != 0 && ev.Factor <= 1 {
				return Spec{}, fmt.Errorf("faults: link degrade factor :x must exceed 1 in %q", term)
			}
			if ev.FailProb == 0 && ev.Factor == 0 {
				return Spec{}, fmt.Errorf("faults: link needs :p > 0 or :x > 1 in %q", term)
			}
			ev.Kind = KindLink
		case "hazard":
			if s.Hazard != nil {
				return Spec{}, fmt.Errorf("faults: duplicate hazard term %q", term)
			}
			if tv <= 0 {
				return Spec{}, fmt.Errorf("faults: hazard needs a positive rate in %q", term)
			}
			if len(opts) > 0 {
				return Spec{}, fmt.Errorf("faults: hazard takes no options in %q", term)
			}
			s.Hazard = &Hazard{Rate: tv, MTTR: dv}
			continue
		default:
			return Spec{}, fmt.Errorf("faults: unknown fault kind %q in %q", kind, term)
		}
		s.Events = append(s.Events, ev)
	}
	return s, nil
}

// Empty reports whether the spec schedules nothing.
func (s Spec) Empty() bool { return len(s.Events) == 0 && s.Hazard == nil }

// Bind resolves the spec against a concrete fleet: hazard crashes expand
// over [0, horizon) from the seeded exponential process, unbound replicas
// resolve deterministically from the seed, explicit replica IDs are
// validated against the fleet size, and the result is sorted by (time, kind,
// replica). Bound schedules are pure functions of (spec, seed, replicas,
// horizon) — the determinism contract the chaos experiments rely on.
func (s Spec) Bind(seed uint64, replicas int, horizon float64) ([]Event, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("faults: bind against %d replicas", replicas)
	}
	bound := append([]Event(nil), s.Events...)
	if h := s.Hazard; h != nil {
		if horizon <= 0 {
			return nil, fmt.Errorf("faults: hazard needs a positive bind horizon")
		}
		rng := mathutil.NewRNG(mathutil.Hash2(seed, 0xfa17))
		for t := rng.ExpFloat64() / h.Rate; t < horizon; t += rng.ExpFloat64() / h.Rate {
			bound = append(bound, Event{
				Kind: KindCrash, Time: t, Duration: h.MTTR,
				Replica: rng.Intn(replicas),
			})
		}
	}
	for i := range bound {
		e := &bound[i]
		if e.Kind == KindLink {
			continue
		}
		if e.Replica < 0 {
			e.Replica = int(mathutil.Hash2(seed, 0xb1bd+uint64(i)) % uint64(replicas))
		}
		if e.Replica >= replicas {
			return nil, fmt.Errorf("faults: event %s targets replica %d of a %d-replica fleet",
				e.Kind, e.Replica, replicas)
		}
	}
	sort.SliceStable(bound, func(i, j int) bool {
		a, b := bound[i], bound[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Replica < b.Replica
	})
	return bound, nil
}
