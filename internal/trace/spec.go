package trace

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"adaserve/internal/request"
	"adaserve/internal/workload"
)

// SpecVersion is the workload-spec format version this package reads and
// writes.
const SpecVersion = 1

// specMagic is the first token of every spec file.
const specMagic = "#adaserve-spec"

// A Spec is a declarative workload: a set of client cohorts, each with its
// own arrival process, length distributions, SLO class and tagging, that
// Compile turns deterministically into a trace. Format v1:
//
//	#adaserve-spec v1
//	#meta seed 42
//	#meta duration 120
//	#meta name bursty
//	cohort ide class=coding rate=2 arrival=poisson prompt=lognormal:160,0.45,32,1024 output=lognormal:90,0.5,16,512
//	cohort chat class=chat arrival=bursts:6,30,1 prompt=fixed:60 output=uniform:16,256 tenants=4 sessions=16
//
// Cohort options in canonical order: class, rate, arrival, prompt, output,
// tenants, sessions, diurnal, weekly, tpot, ttft. Arrival processes:
// "poisson" (constant rate), "poisson:<profile>" (rate-profile-modulated:
// ramp, spike, diurnal), "bursts:interval,size,width" (a burst of ~size
// Poisson arrivals every interval seconds, spread over width seconds).
// Length distributions: "lognormal:median,sigma,min,max",
// "pareto:min,alpha,max" (heavy tail), "uniform:min,max", "fixed:n".
// "diurnal=amp:period" / "weekly=amp:period" multiply the cohort's rate by
// 1−amp·cos(2πt/period) (defaults: 86400s and 604800s periods). tpot/ttft
// override the class's default SLOs in seconds.
type Spec struct {
	Version  int
	Seed     uint64
	Duration float64
	// Name is an optional slug recorded as trace provenance ("spec:<name>").
	Name    string
	Cohorts []Cohort
}

// Cohort is one client population of a spec.
type Cohort struct {
	Name  string
	Class request.Category
	// Rate is the mean arrival rate in req/s (poisson kinds only).
	Rate    float64
	Arrival ArrivalSpec
	Prompt  LengthSpec
	Output  LengthSpec
	// Tenants/Sessions > 0 tag each arrival with a tenant/session drawn
	// uniformly from a cohort-private ID range (0: untagged).
	Tenants  int
	Sessions int
	Diurnal  Modulation
	Weekly   Modulation
	// TPOT/TTFT override the class's default SLOs (-1: use defaults;
	// TTFT 0 is expressible and waives the TTFT deadline).
	TPOT float64
	TTFT float64
}

// ArrivalSpec is a cohort's arrival process.
type ArrivalSpec struct {
	// Kind is "poisson" or "bursts".
	Kind string
	// Profile shapes a poisson cohort's rate over time (a
	// workload.RateProfile name; "constant" is the plain-poisson default).
	Profile string
	// Interval, Size, Width parameterize bursts: every Interval seconds a
	// burst of ~Size arrivals lands, spread over Width seconds.
	Interval, Size, Width float64
}

// LengthSpec is a prompt/output token-length distribution.
type LengthSpec struct {
	// Kind is "lognormal", "pareto", "uniform" or "fixed".
	Kind string
	// Median and Sigma parameterize lognormal.
	Median, Sigma float64
	// Alpha is the pareto tail index (smaller: heavier tail).
	Alpha float64
	// Min and Max clip every sample (fixed: Min == Max).
	Min, Max int
}

// Modulation is a sinusoidal rate multiplier 1−Amp·cos(2πt/Period).
type Modulation struct {
	Amp, Period float64
}

// Default modulation periods (seconds).
const (
	diurnalPeriod = 86400
	weeklyPeriod  = 604800
)

// specErr formats a spec parse error carrying the 1-based line number.
func specErr(n int, format string, args ...any) error {
	return fmt.Errorf("spec: line %d: %s", n, fmt.Sprintf(format, args...))
}

// Format renders the canonical spec form: meta in fixed order, cohorts in
// file order, options in canonical order with defaults omitted.
func (s *Spec) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s v%d\n", specMagic, s.Version)
	fmt.Fprintf(&b, "#meta seed %d\n", s.Seed)
	fmt.Fprintf(&b, "#meta duration %s\n", num(s.Duration))
	if s.Name != "" {
		fmt.Fprintf(&b, "#meta name %s\n", s.Name)
	}
	for _, c := range s.Cohorts {
		b.WriteString(c.format())
		b.WriteByte('\n')
	}
	return b.String()
}

// String implements fmt.Stringer (the canonical form).
func (s *Spec) String() string { return s.Format() }

func (c *Cohort) format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cohort %s class=%s", c.Name, c.Class)
	if c.Arrival.Kind == "poisson" {
		fmt.Fprintf(&b, " rate=%s", num(c.Rate))
	}
	b.WriteString(" arrival=")
	b.WriteString(c.Arrival.format())
	fmt.Fprintf(&b, " prompt=%s output=%s", c.Prompt.format(), c.Output.format())
	if c.Tenants > 0 {
		fmt.Fprintf(&b, " tenants=%d", c.Tenants)
	}
	if c.Sessions > 0 {
		fmt.Fprintf(&b, " sessions=%d", c.Sessions)
	}
	if c.Diurnal.Amp > 0 {
		fmt.Fprintf(&b, " diurnal=%s:%s", num(c.Diurnal.Amp), num(c.Diurnal.Period))
	}
	if c.Weekly.Amp > 0 {
		fmt.Fprintf(&b, " weekly=%s:%s", num(c.Weekly.Amp), num(c.Weekly.Period))
	}
	if c.TPOT >= 0 {
		fmt.Fprintf(&b, " tpot=%s", num(c.TPOT))
	}
	if c.TTFT >= 0 {
		fmt.Fprintf(&b, " ttft=%s", num(c.TTFT))
	}
	return b.String()
}

func (a *ArrivalSpec) format() string {
	switch a.Kind {
	case "poisson":
		if a.Profile == "constant" {
			return "poisson"
		}
		return "poisson:" + a.Profile
	case "bursts":
		return fmt.Sprintf("bursts:%s,%s,%s", num(a.Interval), num(a.Size), num(a.Width))
	}
	return a.Kind
}

func (l *LengthSpec) format() string {
	switch l.Kind {
	case "lognormal":
		return fmt.Sprintf("lognormal:%s,%s,%d,%d", num(l.Median), num(l.Sigma), l.Min, l.Max)
	case "pareto":
		return fmt.Sprintf("pareto:%d,%s,%d", l.Min, num(l.Alpha), l.Max)
	case "uniform":
		return fmt.Sprintf("uniform:%d,%d", l.Min, l.Max)
	case "fixed":
		return fmt.Sprintf("fixed:%d", l.Min)
	}
	return l.Kind
}

// ParseSpec reads a workload spec. Like the trace parser it is strict with
// line-numbered errors, tolerates blank and comment lines, and the result
// round-trips: ParseSpec(s.Format()) equals s.
func ParseSpec(data string) (*Spec, error) {
	s := &Spec{Version: SpecVersion}
	sawVersion, sawDuration := false, false
	seenMeta := map[string]bool{}
	names := map[string]bool{}
	for i, line := range strings.Split(data, "\n") {
		n := i + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if !sawVersion {
			rest, ok := strings.CutPrefix(line, specMagic+" ")
			if !ok {
				return nil, specErr(n, "not a workload spec (want %q first)", specMagic+" v1")
			}
			vs, _ := strings.CutPrefix(rest, "v")
			v, err := strconv.Atoi(vs)
			if err != nil {
				return nil, specErr(n, "bad version %q (want v<N>)", rest)
			}
			if v != SpecVersion {
				return nil, specErr(n, "unsupported spec format version %d (this build reads v%d)", v, SpecVersion)
			}
			sawVersion = true
			continue
		}
		if line[0] == '#' {
			fields := strings.Fields(line[1:])
			if len(fields) > 0 && fields[0] == "meta" {
				sawD, err := s.parseMeta(n, fields[1:], seenMeta)
				if err != nil {
					return nil, err
				}
				sawDuration = sawDuration || sawD
			}
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "cohort" {
			return nil, specErr(n, "expected a cohort line, got %q", fields[0])
		}
		c, err := parseCohort(n, fields[1:])
		if err != nil {
			return nil, err
		}
		if names[c.Name] {
			return nil, specErr(n, "duplicate cohort name %q", c.Name)
		}
		names[c.Name] = true
		s.Cohorts = append(s.Cohorts, c)
	}
	if !sawVersion {
		return nil, fmt.Errorf("spec: empty input (want %q first)", specMagic+" v1")
	}
	if !sawDuration {
		return nil, fmt.Errorf("spec: missing #meta duration")
	}
	if len(s.Cohorts) == 0 {
		return nil, fmt.Errorf("spec: no cohorts")
	}
	return s, nil
}

func (s *Spec) parseMeta(n int, kv []string, seen map[string]bool) (sawDuration bool, err error) {
	if len(kv) != 2 {
		return false, specErr(n, "#meta wants a key and one value")
	}
	key, val := kv[0], kv[1]
	if seen[key] {
		return false, specErr(n, "duplicate #meta %s", key)
	}
	seen[key] = true
	switch key {
	case "seed":
		s.Seed, err = strconv.ParseUint(val, 10, 64)
		if err != nil {
			return false, specErr(n, "bad seed %q", val)
		}
	case "duration":
		s.Duration, err = strconv.ParseFloat(val, 64)
		if err != nil || !(s.Duration > 0) || math.IsInf(s.Duration, 0) {
			return false, specErr(n, "bad duration %q (want seconds > 0)", val)
		}
		return true, nil
	case "name":
		if err := validClassName(val); err != nil {
			return false, specErr(n, "bad name %q", val)
		}
		s.Name = val
	default:
		return false, specErr(n, "unknown #meta key %q (seed, duration, name)", key)
	}
	return false, nil
}

func parseCohort(n int, fields []string) (Cohort, error) {
	if len(fields) < 1 {
		return Cohort{}, specErr(n, "cohort wants a name")
	}
	c := Cohort{Name: fields[0], Class: -1, TPOT: -1, TTFT: -1}
	if err := validClassName(c.Name); err != nil {
		return Cohort{}, specErr(n, "bad cohort name %q", c.Name)
	}
	seen := map[string]bool{}
	for _, opt := range fields[1:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok || val == "" {
			return Cohort{}, specErr(n, "bad cohort option %q (want key=value)", opt)
		}
		if seen[key] {
			return Cohort{}, specErr(n, "duplicate cohort option %q", key)
		}
		seen[key] = true
		if err := c.setOption(n, key, val); err != nil {
			return Cohort{}, err
		}
	}
	return c, c.validate(n)
}

func (c *Cohort) setOption(n int, key, val string) error {
	var err error
	switch key {
	case "class":
		for i := 0; i < request.NumCategories; i++ {
			if request.Category(i).String() == val {
				c.Class = request.Category(i)
				return nil
			}
		}
		return specErr(n, "unknown class %q", val)
	case "rate":
		c.Rate, err = strconv.ParseFloat(val, 64)
		if err != nil || !(c.Rate > 0) || math.IsInf(c.Rate, 0) {
			return specErr(n, "bad rate %q (want req/s > 0)", val)
		}
	case "arrival":
		c.Arrival, err = parseArrivalSpec(n, val)
		return err
	case "prompt":
		c.Prompt, err = parseLengthSpec(n, "prompt", val)
		return err
	case "output":
		c.Output, err = parseLengthSpec(n, "output", val)
		return err
	case "tenants":
		c.Tenants, err = strconv.Atoi(val)
		if err != nil || c.Tenants <= 0 {
			return specErr(n, "bad tenants %q (want count > 0)", val)
		}
	case "sessions":
		c.Sessions, err = strconv.Atoi(val)
		if err != nil || c.Sessions <= 0 {
			return specErr(n, "bad sessions %q (want count > 0)", val)
		}
	case "diurnal":
		c.Diurnal, err = parseModulation(n, key, val, diurnalPeriod)
		return err
	case "weekly":
		c.Weekly, err = parseModulation(n, key, val, weeklyPeriod)
		return err
	case "tpot":
		c.TPOT, err = strconv.ParseFloat(val, 64)
		if err != nil || !(c.TPOT > 0) || math.IsInf(c.TPOT, 0) {
			return specErr(n, "bad tpot %q (want seconds > 0)", val)
		}
	case "ttft":
		c.TTFT, err = strconv.ParseFloat(val, 64)
		if err != nil || c.TTFT < 0 || math.IsNaN(c.TTFT) || math.IsInf(c.TTFT, 0) {
			return specErr(n, "bad ttft %q (want seconds >= 0; 0 waives it)", val)
		}
	default:
		return specErr(n, "unknown cohort option %q", key)
	}
	return nil
}

func parseArrivalSpec(n int, val string) (ArrivalSpec, error) {
	kind, args, _ := strings.Cut(val, ":")
	switch kind {
	case "poisson":
		a := ArrivalSpec{Kind: "poisson", Profile: "constant"}
		if args != "" {
			a.Profile = args
			ok := false
			for _, p := range workload.RateProfileNames() {
				if p == args {
					ok = true
					break
				}
			}
			if !ok {
				return ArrivalSpec{}, specErr(n, "unknown rate profile %q (%s)", args, strings.Join(workload.RateProfileNames(), ", "))
			}
		}
		return a, nil
	case "bursts":
		parts := strings.Split(args, ",")
		if len(parts) != 3 {
			return ArrivalSpec{}, specErr(n, "bursts wants bursts:interval,size,width")
		}
		var v [3]float64
		for i, p := range parts {
			f, err := strconv.ParseFloat(p, 64)
			if err != nil || !(f > 0) || math.IsInf(f, 0) {
				return ArrivalSpec{}, specErr(n, "bad bursts parameter %q (want > 0)", p)
			}
			v[i] = f
		}
		if v[2] > v[0] {
			return ArrivalSpec{}, specErr(n, "burst width %s exceeds interval %s", num(v[2]), num(v[0]))
		}
		return ArrivalSpec{Kind: "bursts", Interval: v[0], Size: v[1], Width: v[2]}, nil
	}
	return ArrivalSpec{}, specErr(n, "unknown arrival process %q (poisson, poisson:<profile>, bursts:interval,size,width)", kind)
}

func parseLengthSpec(n int, which, val string) (LengthSpec, error) {
	kind, args, _ := strings.Cut(val, ":")
	parts := strings.Split(args, ",")
	bad := func(format string, a ...any) (LengthSpec, error) {
		return LengthSpec{}, specErr(n, "%s: %s", which, fmt.Sprintf(format, a...))
	}
	pFloat := func(s string) (float64, error) {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("bad number %q", s)
		}
		return f, nil
	}
	pInt := func(s string) (int, error) { return strconv.Atoi(s) }
	switch kind {
	case "lognormal":
		if len(parts) != 4 {
			return bad("lognormal wants lognormal:median,sigma,min,max")
		}
		l := LengthSpec{Kind: "lognormal"}
		var err error
		if l.Median, err = pFloat(parts[0]); err != nil || !(l.Median > 0) {
			return bad("bad median %q", parts[0])
		}
		if l.Sigma, err = pFloat(parts[1]); err != nil || l.Sigma < 0 {
			return bad("bad sigma %q", parts[1])
		}
		if l.Min, err = pInt(parts[2]); err != nil || l.Min <= 0 {
			return bad("bad min %q", parts[2])
		}
		if l.Max, err = pInt(parts[3]); err != nil || l.Max < l.Min {
			return bad("bad max %q (want >= min)", parts[3])
		}
		return l, nil
	case "pareto":
		if len(parts) != 3 {
			return bad("pareto wants pareto:min,alpha,max")
		}
		l := LengthSpec{Kind: "pareto"}
		var err error
		if l.Min, err = pInt(parts[0]); err != nil || l.Min <= 0 {
			return bad("bad min %q", parts[0])
		}
		if l.Alpha, err = pFloat(parts[1]); err != nil || !(l.Alpha > 0) {
			return bad("bad alpha %q (want > 0)", parts[1])
		}
		if l.Max, err = pInt(parts[2]); err != nil || l.Max < l.Min {
			return bad("bad max %q (want >= min)", parts[2])
		}
		return l, nil
	case "uniform":
		if len(parts) != 2 {
			return bad("uniform wants uniform:min,max")
		}
		l := LengthSpec{Kind: "uniform"}
		var err error
		if l.Min, err = pInt(parts[0]); err != nil || l.Min <= 0 {
			return bad("bad min %q", parts[0])
		}
		if l.Max, err = pInt(parts[1]); err != nil || l.Max < l.Min {
			return bad("bad max %q (want >= min)", parts[1])
		}
		return l, nil
	case "fixed":
		v, err := pInt(args)
		if err != nil || v <= 0 {
			return bad("fixed wants fixed:<tokens > 0>")
		}
		return LengthSpec{Kind: "fixed", Min: v, Max: v}, nil
	}
	return bad("unknown distribution %q (lognormal, pareto, uniform, fixed)", kind)
}

func parseModulation(n int, key, val string, defPeriod float64) (Modulation, error) {
	ampS, periodS, hasPeriod := strings.Cut(val, ":")
	m := Modulation{Period: defPeriod}
	amp, err := strconv.ParseFloat(ampS, 64)
	if err != nil || amp < 0 || amp >= 1 || math.IsNaN(amp) {
		return Modulation{}, specErr(n, "bad %s amplitude %q (want 0 <= amp < 1)", key, ampS)
	}
	m.Amp = amp
	if hasPeriod {
		p, err := strconv.ParseFloat(periodS, 64)
		if err != nil || !(p > 0) || math.IsInf(p, 0) {
			return Modulation{}, specErr(n, "bad %s period %q (want seconds > 0)", key, periodS)
		}
		m.Period = p
	}
	if m.Amp == 0 {
		// Canonical form omits zero-amplitude modulation entirely.
		return Modulation{}, nil
	}
	return m, nil
}

func (c *Cohort) validate(n int) error {
	if c.Class < 0 {
		return specErr(n, "cohort %s: missing class=", c.Name)
	}
	switch c.Arrival.Kind {
	case "poisson":
		if c.Rate <= 0 {
			return specErr(n, "cohort %s: poisson arrival needs rate=", c.Name)
		}
	case "bursts":
		if c.Rate != 0 {
			return specErr(n, "cohort %s: bursts arrival takes no rate= (size/interval set the rate)", c.Name)
		}
	case "":
		return specErr(n, "cohort %s: missing arrival=", c.Name)
	}
	if c.Prompt.Kind == "" {
		return specErr(n, "cohort %s: missing prompt=", c.Name)
	}
	if c.Output.Kind == "" {
		return specErr(n, "cohort %s: missing output=", c.Name)
	}
	return nil
}
