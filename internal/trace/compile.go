package trace

import (
	"fmt"
	"math"
	"sort"

	"adaserve/internal/mathutil"
	"adaserve/internal/workload"
)

// compileSalt decorrelates per-cohort RNG streams from other uses of the
// same seed.
const compileSalt = 0x5bec

// CompileOptions configures spec compilation.
type CompileOptions struct {
	// BaselineLatency is the model's per-token decode latency in seconds,
	// needed to resolve factor-style class SLOs (required).
	BaselineLatency float64
	// Duration overrides the spec's duration (0: use the spec's).
	Duration float64
	// Seed overrides the spec's seed (0: use the spec's). The same spec
	// and seed always compile to the same trace.
	Seed uint64
	// MaxContext clips prompt+output per request (0: 8192, matching the
	// synthetic generator).
	MaxContext int
}

// Compile turns a spec into a trace, deterministically per seed: each
// cohort samples its arrival process and lengths from a private RNG stream
// derived from the seed and the cohort's position, then the streams merge
// in time order. Class SLOs come from the cohort's tpot/ttft overrides or
// the category defaults (Table 2) resolved against BaselineLatency;
// cohorts sharing a class must agree on its SLOs.
func Compile(s *Spec, opts CompileOptions) (*Trace, error) {
	if !(opts.BaselineLatency > 0) {
		return nil, fmt.Errorf("trace: compile: BaselineLatency must be positive")
	}
	seed := opts.Seed
	if seed == 0 {
		seed = s.Seed
	}
	duration := opts.Duration
	if duration == 0 {
		duration = s.Duration
	}
	if !(duration > 0) {
		return nil, fmt.Errorf("trace: compile: non-positive duration %g", duration)
	}
	maxContext := opts.MaxContext
	if maxContext == 0 {
		maxContext = 8192
	}

	classes, err := resolveClasses(s, opts.BaselineLatency)
	if err != nil {
		return nil, err
	}

	type tagged struct {
		a      Arrival
		cohort int
	}
	var all []tagged
	tenantBase, sessionBase := 0, 0
	for ci := range s.Cohorts {
		c := &s.Cohorts[ci]
		rng := mathutil.NewRNG(mathutil.Hash3(seed, compileSalt, uint64(ci)))
		ts, err := cohortArrivals(c, rng, duration)
		if err != nil {
			return nil, fmt.Errorf("trace: compile: cohort %s: %w", c.Name, err)
		}
		for _, t := range ts {
			a := Arrival{At: t, Class: int(c.Class), Tenant: -1, Session: -1}
			a.Prompt = sampleLength(&c.Prompt, rng)
			a.Output = sampleLength(&c.Output, rng)
			// Clip to the context window like the synthetic generator.
			if a.Prompt+a.Output > maxContext {
				a.Prompt = maxContext - a.Output
				if a.Prompt < 1 {
					a.Prompt, a.Output = 1, maxContext-1
				}
			}
			if c.Tenants > 0 {
				a.Tenant = tenantBase + rng.Intn(c.Tenants)
			}
			if c.Sessions > 0 {
				a.Session = sessionBase + rng.Intn(c.Sessions)
			}
			all = append(all, tagged{a: a, cohort: ci})
		}
		tenantBase += c.Tenants
		sessionBase += c.Sessions
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].a.At != all[j].a.At {
			return all[i].a.At < all[j].a.At
		}
		return all[i].cohort < all[j].cohort
	})

	source := "spec"
	if s.Name != "" {
		source = "spec:" + s.Name
	}
	t := &Trace{Header: Header{
		Version:  Version,
		TimeUnit: "s",
		Seed:     seed,
		Source:   source,
		Classes:  classes,
	}}
	t.Arrivals = make([]Arrival, len(all))
	for i, ta := range all {
		t.Arrivals[i] = ta.a
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("trace: compile: %w", err)
	}
	return t, nil
}

// NewSpecSource compiles a spec and wraps the result as a replay source.
func NewSpecSource(s *Spec, opts CompileOptions) (*Source, error) {
	t, err := Compile(s, opts)
	if err != nil {
		return nil, err
	}
	return NewSource(t)
}

// resolveClasses builds the class map from the cohorts' categories,
// applying tpot/ttft overrides over the Table 2 defaults.
func resolveClasses(s *Spec, baseline float64) ([]ClassDef, error) {
	defaults := workload.DefaultCategories()
	byID := map[int]ClassDef{}
	owner := map[int]string{}
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		id := int(c.Class)
		spec := defaults[id]
		def := ClassDef{
			ID:   id,
			Name: c.Class.String(),
			TPOT: spec.TPOT(baseline),
			TTFT: spec.TTFTSLOAbs,
		}
		if c.TPOT >= 0 {
			def.TPOT = c.TPOT
		}
		if c.TTFT >= 0 {
			def.TTFT = c.TTFT
		}
		if prev, ok := byID[id]; ok {
			if prev != def {
				return nil, fmt.Errorf("trace: compile: cohorts %s and %s disagree on class %s SLOs",
					owner[id], c.Name, def.Name)
			}
			continue
		}
		byID[id] = def
		owner[id] = c.Name
	}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	classes := make([]ClassDef, len(ids))
	for i, id := range ids {
		classes[i] = byID[id]
	}
	return classes, nil
}

// cohortArrivals samples one cohort's arrival timestamps on [0, duration).
func cohortArrivals(c *Cohort, rng *mathutil.RNG, duration float64) ([]float64, error) {
	mod := modulationFn(c)
	switch c.Arrival.Kind {
	case "poisson":
		base, baseMax, err := workload.RateProfile(c.Arrival.Profile, c.Rate, duration)
		if err != nil {
			return nil, err
		}
		rate := func(t float64) float64 { return base(t) * mod(t) }
		maxRate := baseMax * (1 + c.Diurnal.Amp) * (1 + c.Weekly.Amp)
		return workload.NonHomogeneousPoisson(rng, rate, maxRate, duration), nil
	case "bursts":
		interval, size, width := c.Arrival.Interval, c.Arrival.Size, c.Arrival.Width
		var out []float64
		for k := 0; ; k++ {
			center := (float64(k) + 0.5) * interval
			if center >= duration {
				break
			}
			// One burst: ~size·mod(center) correlated arrivals spread
			// Poisson-uniformly over width seconds around the center.
			burst := workload.PoissonTrace(rng, size*mod(center)/width, width)
			for _, b := range burst {
				t := center - width/2 + b
				if t >= 0 && t < duration {
					out = append(out, t)
				}
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("unknown arrival kind %q", c.Arrival.Kind)
}

// modulationFn composes the cohort's diurnal and weekly multipliers.
func modulationFn(c *Cohort) func(t float64) float64 {
	d, w := c.Diurnal, c.Weekly
	if d.Amp == 0 && w.Amp == 0 {
		return func(float64) float64 { return 1 }
	}
	return func(t float64) float64 {
		v := 1.0
		if d.Amp > 0 {
			v *= 1 - d.Amp*math.Cos(2*math.Pi*t/d.Period)
		}
		if w.Amp > 0 {
			v *= 1 - w.Amp*math.Cos(2*math.Pi*t/w.Period)
		}
		return v
	}
}

// sampleLength draws one token length from a cohort length distribution.
func sampleLength(l *LengthSpec, rng *mathutil.RNG) int {
	switch l.Kind {
	case "lognormal":
		return workload.LengthDist{Median: l.Median, Sigma: l.Sigma, Min: l.Min, Max: l.Max}.Sample(rng)
	case "pareto":
		// Inverse-CDF Pareto: X = min / U^(1/alpha) with U in (0,1].
		u := 1 - rng.Float64()
		v := float64(l.Min) / math.Pow(u, 1/l.Alpha)
		if v > float64(l.Max) {
			return l.Max
		}
		return mathutil.ClipInt(int(v+0.5), l.Min, l.Max)
	case "uniform":
		return l.Min + rng.Intn(l.Max-l.Min+1)
	case "fixed":
		return l.Min
	}
	panic(fmt.Sprintf("trace: unknown length distribution %q", l.Kind))
}
